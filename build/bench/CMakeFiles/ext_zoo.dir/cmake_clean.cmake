file(REMOVE_RECURSE
  "CMakeFiles/ext_zoo.dir/ext_zoo.cpp.o"
  "CMakeFiles/ext_zoo.dir/ext_zoo.cpp.o.d"
  "ext_zoo"
  "ext_zoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
