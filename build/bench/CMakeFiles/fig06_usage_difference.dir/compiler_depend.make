# Empty compiler generated dependencies file for fig06_usage_difference.
# This may be replaced when dependencies are built.
