file(REMOVE_RECURSE
  "CMakeFiles/fig06_usage_difference.dir/fig06_usage_difference.cpp.o"
  "CMakeFiles/fig06_usage_difference.dir/fig06_usage_difference.cpp.o.d"
  "fig06_usage_difference"
  "fig06_usage_difference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_usage_difference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
