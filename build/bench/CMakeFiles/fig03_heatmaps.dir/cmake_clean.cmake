file(REMOVE_RECURSE
  "CMakeFiles/fig03_heatmaps.dir/fig03_heatmaps.cpp.o"
  "CMakeFiles/fig03_heatmaps.dir/fig03_heatmaps.cpp.o.d"
  "fig03_heatmaps"
  "fig03_heatmaps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_heatmaps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
