# Empty compiler generated dependencies file for fig03_heatmaps.
# This may be replaced when dependencies are built.
