file(REMOVE_RECURSE
  "CMakeFiles/abl_dataflow.dir/abl_dataflow.cpp.o"
  "CMakeFiles/abl_dataflow.dir/abl_dataflow.cpp.o.d"
  "abl_dataflow"
  "abl_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
