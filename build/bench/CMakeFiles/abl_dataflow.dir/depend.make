# Empty dependencies file for abl_dataflow.
# This may be replaced when dependencies are built.
