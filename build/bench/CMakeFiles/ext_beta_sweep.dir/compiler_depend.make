# Empty compiler generated dependencies file for ext_beta_sweep.
# This may be replaced when dependencies are built.
