# Empty compiler generated dependencies file for fig09_upper_bound.
# This may be replaced when dependencies are built.
