file(REMOVE_RECURSE
  "CMakeFiles/fig09_upper_bound.dir/fig09_upper_bound.cpp.o"
  "CMakeFiles/fig09_upper_bound.dir/fig09_upper_bound.cpp.o.d"
  "fig09_upper_bound"
  "fig09_upper_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_upper_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
