# Empty compiler generated dependencies file for ext_multinet.
# This may be replaced when dependencies are built.
