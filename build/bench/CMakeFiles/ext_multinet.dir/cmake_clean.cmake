file(REMOVE_RECURSE
  "CMakeFiles/ext_multinet.dir/ext_multinet.cpp.o"
  "CMakeFiles/ext_multinet.dir/ext_multinet.cpp.o.d"
  "ext_multinet"
  "ext_multinet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_multinet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
