file(REMOVE_RECURSE
  "CMakeFiles/fig08_lifetime_improvement.dir/fig08_lifetime_improvement.cpp.o"
  "CMakeFiles/fig08_lifetime_improvement.dir/fig08_lifetime_improvement.cpp.o.d"
  "fig08_lifetime_improvement"
  "fig08_lifetime_improvement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_lifetime_improvement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
