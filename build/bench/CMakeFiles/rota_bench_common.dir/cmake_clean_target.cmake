file(REMOVE_RECURSE
  "../lib/librota_bench_common.a"
)
