# Empty dependencies file for rota_bench_common.
# This may be replaced when dependencies are built.
