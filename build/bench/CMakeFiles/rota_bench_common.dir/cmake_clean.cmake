file(REMOVE_RECURSE
  "../lib/librota_bench_common.a"
  "../lib/librota_bench_common.pdb"
  "CMakeFiles/rota_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/rota_bench_common.dir/bench_common.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rota_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
