# Empty dependencies file for ext_roofline.
# This may be replaced when dependencies are built.
