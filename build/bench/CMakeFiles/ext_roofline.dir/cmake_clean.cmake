file(REMOVE_RECURSE
  "CMakeFiles/ext_roofline.dir/ext_roofline.cpp.o"
  "CMakeFiles/ext_roofline.dir/ext_roofline.cpp.o.d"
  "ext_roofline"
  "ext_roofline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_roofline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
