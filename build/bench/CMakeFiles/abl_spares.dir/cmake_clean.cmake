file(REMOVE_RECURSE
  "CMakeFiles/abl_spares.dir/abl_spares.cpp.o"
  "CMakeFiles/abl_spares.dir/abl_spares.cpp.o.d"
  "abl_spares"
  "abl_spares.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_spares.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
