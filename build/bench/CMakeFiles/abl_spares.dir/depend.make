# Empty dependencies file for abl_spares.
# This may be replaced when dependencies are built.
