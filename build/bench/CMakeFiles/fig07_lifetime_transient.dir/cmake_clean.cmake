file(REMOVE_RECURSE
  "CMakeFiles/fig07_lifetime_transient.dir/fig07_lifetime_transient.cpp.o"
  "CMakeFiles/fig07_lifetime_transient.dir/fig07_lifetime_transient.cpp.o.d"
  "fig07_lifetime_transient"
  "fig07_lifetime_transient.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_lifetime_transient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
