# Empty dependencies file for fig07_lifetime_transient.
# This may be replaced when dependencies are built.
