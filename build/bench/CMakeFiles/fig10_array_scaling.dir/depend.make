# Empty dependencies file for fig10_array_scaling.
# This may be replaced when dependencies are built.
