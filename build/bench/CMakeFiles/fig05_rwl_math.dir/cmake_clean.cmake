file(REMOVE_RECURSE
  "CMakeFiles/fig05_rwl_math.dir/fig05_rwl_math.cpp.o"
  "CMakeFiles/fig05_rwl_math.dir/fig05_rwl_math.cpp.o.d"
  "fig05_rwl_math"
  "fig05_rwl_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_rwl_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
