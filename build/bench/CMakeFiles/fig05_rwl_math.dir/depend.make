# Empty dependencies file for fig05_rwl_math.
# This may be replaced when dependencies are built.
