file(REMOVE_RECURSE
  "CMakeFiles/ext_aspect.dir/ext_aspect.cpp.o"
  "CMakeFiles/ext_aspect.dir/ext_aspect.cpp.o.d"
  "ext_aspect"
  "ext_aspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_aspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
