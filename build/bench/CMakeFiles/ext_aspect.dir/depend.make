# Empty dependencies file for ext_aspect.
# This may be replaced when dependencies are built.
