file(REMOVE_RECURSE
  "CMakeFiles/abl_noc_wear.dir/abl_noc_wear.cpp.o"
  "CMakeFiles/abl_noc_wear.dir/abl_noc_wear.cpp.o.d"
  "abl_noc_wear"
  "abl_noc_wear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_noc_wear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
