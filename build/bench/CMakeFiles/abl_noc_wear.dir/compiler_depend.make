# Empty compiler generated dependencies file for abl_noc_wear.
# This may be replaced when dependencies are built.
