file(REMOVE_RECURSE
  "CMakeFiles/abl_weighting.dir/abl_weighting.cpp.o"
  "CMakeFiles/abl_weighting.dir/abl_weighting.cpp.o.d"
  "abl_weighting"
  "abl_weighting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_weighting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
