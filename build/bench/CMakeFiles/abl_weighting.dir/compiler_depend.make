# Empty compiler generated dependencies file for abl_weighting.
# This may be replaced when dependencies are built.
