file(REMOVE_RECURSE
  "CMakeFiles/abl_mapper.dir/abl_mapper.cpp.o"
  "CMakeFiles/abl_mapper.dir/abl_mapper.cpp.o.d"
  "abl_mapper"
  "abl_mapper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_mapper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
