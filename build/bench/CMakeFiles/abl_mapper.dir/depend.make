# Empty dependencies file for abl_mapper.
# This may be replaced when dependencies are built.
