# Empty compiler generated dependencies file for abl_thermal.
# This may be replaced when dependencies are built.
