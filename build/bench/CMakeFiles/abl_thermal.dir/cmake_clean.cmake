file(REMOVE_RECURSE
  "CMakeFiles/abl_thermal.dir/abl_thermal.cpp.o"
  "CMakeFiles/abl_thermal.dir/abl_thermal.cpp.o.d"
  "abl_thermal"
  "abl_thermal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
