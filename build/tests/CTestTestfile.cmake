# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/arch_test[1]_include.cmake")
include("/root/repo/build/tests/cli_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/nn_test[1]_include.cmake")
include("/root/repo/build/tests/reliability_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/thermal_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/wear_test[1]_include.cmake")
