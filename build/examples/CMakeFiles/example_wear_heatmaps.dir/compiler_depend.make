# Empty compiler generated dependencies file for example_wear_heatmaps.
# This may be replaced when dependencies are built.
