file(REMOVE_RECURSE
  "CMakeFiles/example_wear_heatmaps.dir/wear_heatmaps.cpp.o"
  "CMakeFiles/example_wear_heatmaps.dir/wear_heatmaps.cpp.o.d"
  "wear_heatmaps"
  "wear_heatmaps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_wear_heatmaps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
