# Empty compiler generated dependencies file for example_lifetime_study.
# This may be replaced when dependencies are built.
