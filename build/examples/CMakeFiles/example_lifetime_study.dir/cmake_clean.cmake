file(REMOVE_RECURSE
  "CMakeFiles/example_lifetime_study.dir/lifetime_study.cpp.o"
  "CMakeFiles/example_lifetime_study.dir/lifetime_study.cpp.o.d"
  "lifetime_study"
  "lifetime_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_lifetime_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
