# Empty dependencies file for example_external_schedule.
# This may be replaced when dependencies are built.
