file(REMOVE_RECURSE
  "CMakeFiles/example_external_schedule.dir/external_schedule.cpp.o"
  "CMakeFiles/example_external_schedule.dir/external_schedule.cpp.o.d"
  "external_schedule"
  "external_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_external_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
