
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/layer.cpp" "src/nn/CMakeFiles/rota_nn.dir/layer.cpp.o" "gcc" "src/nn/CMakeFiles/rota_nn.dir/layer.cpp.o.d"
  "/root/repo/src/nn/network.cpp" "src/nn/CMakeFiles/rota_nn.dir/network.cpp.o" "gcc" "src/nn/CMakeFiles/rota_nn.dir/network.cpp.o.d"
  "/root/repo/src/nn/workloads/efficientnet_b0.cpp" "src/nn/CMakeFiles/rota_nn.dir/workloads/efficientnet_b0.cpp.o" "gcc" "src/nn/CMakeFiles/rota_nn.dir/workloads/efficientnet_b0.cpp.o.d"
  "/root/repo/src/nn/workloads/extra.cpp" "src/nn/CMakeFiles/rota_nn.dir/workloads/extra.cpp.o" "gcc" "src/nn/CMakeFiles/rota_nn.dir/workloads/extra.cpp.o.d"
  "/root/repo/src/nn/workloads/inception_v4.cpp" "src/nn/CMakeFiles/rota_nn.dir/workloads/inception_v4.cpp.o" "gcc" "src/nn/CMakeFiles/rota_nn.dir/workloads/inception_v4.cpp.o.d"
  "/root/repo/src/nn/workloads/llama2_7b.cpp" "src/nn/CMakeFiles/rota_nn.dir/workloads/llama2_7b.cpp.o" "gcc" "src/nn/CMakeFiles/rota_nn.dir/workloads/llama2_7b.cpp.o.d"
  "/root/repo/src/nn/workloads/mobilenet_v3.cpp" "src/nn/CMakeFiles/rota_nn.dir/workloads/mobilenet_v3.cpp.o" "gcc" "src/nn/CMakeFiles/rota_nn.dir/workloads/mobilenet_v3.cpp.o.d"
  "/root/repo/src/nn/workloads/mobilevit_s.cpp" "src/nn/CMakeFiles/rota_nn.dir/workloads/mobilevit_s.cpp.o" "gcc" "src/nn/CMakeFiles/rota_nn.dir/workloads/mobilevit_s.cpp.o.d"
  "/root/repo/src/nn/workloads/registry.cpp" "src/nn/CMakeFiles/rota_nn.dir/workloads/registry.cpp.o" "gcc" "src/nn/CMakeFiles/rota_nn.dir/workloads/registry.cpp.o.d"
  "/root/repo/src/nn/workloads/resnet50.cpp" "src/nn/CMakeFiles/rota_nn.dir/workloads/resnet50.cpp.o" "gcc" "src/nn/CMakeFiles/rota_nn.dir/workloads/resnet50.cpp.o.d"
  "/root/repo/src/nn/workloads/squeezenet.cpp" "src/nn/CMakeFiles/rota_nn.dir/workloads/squeezenet.cpp.o" "gcc" "src/nn/CMakeFiles/rota_nn.dir/workloads/squeezenet.cpp.o.d"
  "/root/repo/src/nn/workloads/vit_b16.cpp" "src/nn/CMakeFiles/rota_nn.dir/workloads/vit_b16.cpp.o" "gcc" "src/nn/CMakeFiles/rota_nn.dir/workloads/vit_b16.cpp.o.d"
  "/root/repo/src/nn/workloads/yolo_v3.cpp" "src/nn/CMakeFiles/rota_nn.dir/workloads/yolo_v3.cpp.o" "gcc" "src/nn/CMakeFiles/rota_nn.dir/workloads/yolo_v3.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rota_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
