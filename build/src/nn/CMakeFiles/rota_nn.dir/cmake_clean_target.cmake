file(REMOVE_RECURSE
  "librota_nn.a"
)
