file(REMOVE_RECURSE
  "CMakeFiles/rota_nn.dir/layer.cpp.o"
  "CMakeFiles/rota_nn.dir/layer.cpp.o.d"
  "CMakeFiles/rota_nn.dir/network.cpp.o"
  "CMakeFiles/rota_nn.dir/network.cpp.o.d"
  "CMakeFiles/rota_nn.dir/workloads/efficientnet_b0.cpp.o"
  "CMakeFiles/rota_nn.dir/workloads/efficientnet_b0.cpp.o.d"
  "CMakeFiles/rota_nn.dir/workloads/extra.cpp.o"
  "CMakeFiles/rota_nn.dir/workloads/extra.cpp.o.d"
  "CMakeFiles/rota_nn.dir/workloads/inception_v4.cpp.o"
  "CMakeFiles/rota_nn.dir/workloads/inception_v4.cpp.o.d"
  "CMakeFiles/rota_nn.dir/workloads/llama2_7b.cpp.o"
  "CMakeFiles/rota_nn.dir/workloads/llama2_7b.cpp.o.d"
  "CMakeFiles/rota_nn.dir/workloads/mobilenet_v3.cpp.o"
  "CMakeFiles/rota_nn.dir/workloads/mobilenet_v3.cpp.o.d"
  "CMakeFiles/rota_nn.dir/workloads/mobilevit_s.cpp.o"
  "CMakeFiles/rota_nn.dir/workloads/mobilevit_s.cpp.o.d"
  "CMakeFiles/rota_nn.dir/workloads/registry.cpp.o"
  "CMakeFiles/rota_nn.dir/workloads/registry.cpp.o.d"
  "CMakeFiles/rota_nn.dir/workloads/resnet50.cpp.o"
  "CMakeFiles/rota_nn.dir/workloads/resnet50.cpp.o.d"
  "CMakeFiles/rota_nn.dir/workloads/squeezenet.cpp.o"
  "CMakeFiles/rota_nn.dir/workloads/squeezenet.cpp.o.d"
  "CMakeFiles/rota_nn.dir/workloads/vit_b16.cpp.o"
  "CMakeFiles/rota_nn.dir/workloads/vit_b16.cpp.o.d"
  "CMakeFiles/rota_nn.dir/workloads/yolo_v3.cpp.o"
  "CMakeFiles/rota_nn.dir/workloads/yolo_v3.cpp.o.d"
  "librota_nn.a"
  "librota_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rota_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
