# Empty compiler generated dependencies file for rota_nn.
# This may be replaced when dependencies are built.
