
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wear/policy.cpp" "src/wear/CMakeFiles/rota_wear.dir/policy.cpp.o" "gcc" "src/wear/CMakeFiles/rota_wear.dir/policy.cpp.o.d"
  "/root/repo/src/wear/rwl_math.cpp" "src/wear/CMakeFiles/rota_wear.dir/rwl_math.cpp.o" "gcc" "src/wear/CMakeFiles/rota_wear.dir/rwl_math.cpp.o.d"
  "/root/repo/src/wear/simulator.cpp" "src/wear/CMakeFiles/rota_wear.dir/simulator.cpp.o" "gcc" "src/wear/CMakeFiles/rota_wear.dir/simulator.cpp.o.d"
  "/root/repo/src/wear/trace.cpp" "src/wear/CMakeFiles/rota_wear.dir/trace.cpp.o" "gcc" "src/wear/CMakeFiles/rota_wear.dir/trace.cpp.o.d"
  "/root/repo/src/wear/usage_tracker.cpp" "src/wear/CMakeFiles/rota_wear.dir/usage_tracker.cpp.o" "gcc" "src/wear/CMakeFiles/rota_wear.dir/usage_tracker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sched/CMakeFiles/rota_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/rota_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rota_util.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/rota_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
