file(REMOVE_RECURSE
  "librota_wear.a"
)
