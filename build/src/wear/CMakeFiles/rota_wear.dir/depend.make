# Empty dependencies file for rota_wear.
# This may be replaced when dependencies are built.
