file(REMOVE_RECURSE
  "CMakeFiles/rota_wear.dir/policy.cpp.o"
  "CMakeFiles/rota_wear.dir/policy.cpp.o.d"
  "CMakeFiles/rota_wear.dir/rwl_math.cpp.o"
  "CMakeFiles/rota_wear.dir/rwl_math.cpp.o.d"
  "CMakeFiles/rota_wear.dir/simulator.cpp.o"
  "CMakeFiles/rota_wear.dir/simulator.cpp.o.d"
  "CMakeFiles/rota_wear.dir/trace.cpp.o"
  "CMakeFiles/rota_wear.dir/trace.cpp.o.d"
  "CMakeFiles/rota_wear.dir/usage_tracker.cpp.o"
  "CMakeFiles/rota_wear.dir/usage_tracker.cpp.o.d"
  "librota_wear.a"
  "librota_wear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rota_wear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
