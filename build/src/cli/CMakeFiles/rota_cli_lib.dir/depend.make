# Empty dependencies file for rota_cli_lib.
# This may be replaced when dependencies are built.
