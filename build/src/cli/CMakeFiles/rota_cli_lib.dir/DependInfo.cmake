
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cli/commands.cpp" "src/cli/CMakeFiles/rota_cli_lib.dir/commands.cpp.o" "gcc" "src/cli/CMakeFiles/rota_cli_lib.dir/commands.cpp.o.d"
  "/root/repo/src/cli/options.cpp" "src/cli/CMakeFiles/rota_cli_lib.dir/options.cpp.o" "gcc" "src/cli/CMakeFiles/rota_cli_lib.dir/options.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rota_core.dir/DependInfo.cmake"
  "/root/repo/build/src/thermal/CMakeFiles/rota_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rota_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/reliability/CMakeFiles/rota_rel.dir/DependInfo.cmake"
  "/root/repo/build/src/wear/CMakeFiles/rota_wear.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/rota_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/rota_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/rota_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rota_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
