file(REMOVE_RECURSE
  "librota_cli_lib.a"
)
