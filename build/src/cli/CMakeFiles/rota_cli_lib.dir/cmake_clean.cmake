file(REMOVE_RECURSE
  "CMakeFiles/rota_cli_lib.dir/commands.cpp.o"
  "CMakeFiles/rota_cli_lib.dir/commands.cpp.o.d"
  "CMakeFiles/rota_cli_lib.dir/options.cpp.o"
  "CMakeFiles/rota_cli_lib.dir/options.cpp.o.d"
  "librota_cli_lib.a"
  "librota_cli_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rota_cli_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
