# Empty compiler generated dependencies file for rota_cli.
# This may be replaced when dependencies are built.
