file(REMOVE_RECURSE
  "CMakeFiles/rota_cli.dir/main.cpp.o"
  "CMakeFiles/rota_cli.dir/main.cpp.o.d"
  "rota"
  "rota.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rota_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
