# Empty compiler generated dependencies file for rota_thermal.
# This may be replaced when dependencies are built.
