file(REMOVE_RECURSE
  "librota_thermal.a"
)
