file(REMOVE_RECURSE
  "CMakeFiles/rota_thermal.dir/thermal.cpp.o"
  "CMakeFiles/rota_thermal.dir/thermal.cpp.o.d"
  "librota_thermal.a"
  "librota_thermal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rota_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
