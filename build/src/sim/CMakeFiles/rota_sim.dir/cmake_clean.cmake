file(REMOVE_RECURSE
  "CMakeFiles/rota_sim.dir/engine.cpp.o"
  "CMakeFiles/rota_sim.dir/engine.cpp.o.d"
  "CMakeFiles/rota_sim.dir/noc_traffic.cpp.o"
  "CMakeFiles/rota_sim.dir/noc_traffic.cpp.o.d"
  "CMakeFiles/rota_sim.dir/pipeline.cpp.o"
  "CMakeFiles/rota_sim.dir/pipeline.cpp.o.d"
  "librota_sim.a"
  "librota_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rota_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
