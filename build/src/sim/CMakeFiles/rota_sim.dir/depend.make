# Empty dependencies file for rota_sim.
# This may be replaced when dependencies are built.
