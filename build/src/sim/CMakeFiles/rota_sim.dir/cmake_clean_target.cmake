file(REMOVE_RECURSE
  "librota_sim.a"
)
