
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/engine.cpp" "src/sim/CMakeFiles/rota_sim.dir/engine.cpp.o" "gcc" "src/sim/CMakeFiles/rota_sim.dir/engine.cpp.o.d"
  "/root/repo/src/sim/noc_traffic.cpp" "src/sim/CMakeFiles/rota_sim.dir/noc_traffic.cpp.o" "gcc" "src/sim/CMakeFiles/rota_sim.dir/noc_traffic.cpp.o.d"
  "/root/repo/src/sim/pipeline.cpp" "src/sim/CMakeFiles/rota_sim.dir/pipeline.cpp.o" "gcc" "src/sim/CMakeFiles/rota_sim.dir/pipeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/wear/CMakeFiles/rota_wear.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/rota_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/rota_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rota_util.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/rota_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
