file(REMOVE_RECURSE
  "librota_util.a"
)
