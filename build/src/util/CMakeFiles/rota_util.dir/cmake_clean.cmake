file(REMOVE_RECURSE
  "CMakeFiles/rota_util.dir/csv.cpp.o"
  "CMakeFiles/rota_util.dir/csv.cpp.o.d"
  "CMakeFiles/rota_util.dir/heatmap.cpp.o"
  "CMakeFiles/rota_util.dir/heatmap.cpp.o.d"
  "CMakeFiles/rota_util.dir/math.cpp.o"
  "CMakeFiles/rota_util.dir/math.cpp.o.d"
  "CMakeFiles/rota_util.dir/stats.cpp.o"
  "CMakeFiles/rota_util.dir/stats.cpp.o.d"
  "CMakeFiles/rota_util.dir/table.cpp.o"
  "CMakeFiles/rota_util.dir/table.cpp.o.d"
  "librota_util.a"
  "librota_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rota_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
