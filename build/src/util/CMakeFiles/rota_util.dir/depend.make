# Empty dependencies file for rota_util.
# This may be replaced when dependencies are built.
