file(REMOVE_RECURSE
  "CMakeFiles/rota_core.dir/experiment.cpp.o"
  "CMakeFiles/rota_core.dir/experiment.cpp.o.d"
  "librota_core.a"
  "librota_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rota_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
