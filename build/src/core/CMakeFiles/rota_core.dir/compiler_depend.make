# Empty compiler generated dependencies file for rota_core.
# This may be replaced when dependencies are built.
