file(REMOVE_RECURSE
  "librota_core.a"
)
