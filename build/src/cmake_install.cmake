# Install script for directory: /root/repo/src

# Set the install prefix
if(NOT DEFINED CMAKE_INSTALL_PREFIX)
  set(CMAKE_INSTALL_PREFIX "/usr/local")
endif()
string(REGEX REPLACE "/$" "" CMAKE_INSTALL_PREFIX "${CMAKE_INSTALL_PREFIX}")

# Set the install configuration name.
if(NOT DEFINED CMAKE_INSTALL_CONFIG_NAME)
  if(BUILD_TYPE)
    string(REGEX REPLACE "^[^A-Za-z0-9_]+" ""
           CMAKE_INSTALL_CONFIG_NAME "${BUILD_TYPE}")
  else()
    set(CMAKE_INSTALL_CONFIG_NAME "Release")
  endif()
  message(STATUS "Install configuration: \"${CMAKE_INSTALL_CONFIG_NAME}\"")
endif()

# Set the component getting installed.
if(NOT CMAKE_INSTALL_COMPONENT)
  if(COMPONENT)
    message(STATUS "Install component: \"${COMPONENT}\"")
    set(CMAKE_INSTALL_COMPONENT "${COMPONENT}")
  else()
    set(CMAKE_INSTALL_COMPONENT)
  endif()
endif()

# Install shared libraries without execute permission?
if(NOT DEFINED CMAKE_INSTALL_SO_NO_EXE)
  set(CMAKE_INSTALL_SO_NO_EXE "1")
endif()

# Is this installation the result of a crosscompile?
if(NOT DEFINED CMAKE_CROSSCOMPILING)
  set(CMAKE_CROSSCOMPILING "FALSE")
endif()

# Set default install directory permissions.
if(NOT DEFINED CMAKE_OBJDUMP)
  set(CMAKE_OBJDUMP "/usr/bin/objdump")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/util/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/nn/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/arch/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/sched/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/wear/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/reliability/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/sim/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/thermal/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/core/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/cli/cmake_install.cmake")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/util/librota_util.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/nn/librota_nn.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/arch/librota_arch.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/sched/librota_sched.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/wear/librota_wear.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/reliability/librota_rel.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/sim/librota_sim.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/thermal/librota_thermal.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/core/librota_core.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/cli/librota_cli_lib.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  if(EXISTS "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/rota" AND
     NOT IS_SYMLINK "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/rota")
    file(RPATH_CHECK
         FILE "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/rota"
         RPATH "")
  endif()
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/bin" TYPE EXECUTABLE FILES "/root/repo/build/src/cli/rota")
  if(EXISTS "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/rota" AND
     NOT IS_SYMLINK "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/rota")
    if(CMAKE_INSTALL_DO_STRIP)
      execute_process(COMMAND "/usr/bin/strip" "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/rota")
    endif()
  endif()
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/rota" TYPE DIRECTORY FILES
    "/root/repo/src/util"
    "/root/repo/src/nn"
    "/root/repo/src/arch"
    "/root/repo/src/sched"
    "/root/repo/src/wear"
    "/root/repo/src/reliability"
    "/root/repo/src/sim"
    "/root/repo/src/thermal"
    "/root/repo/src/core"
    "/root/repo/src/cli"
    FILES_MATCHING REGEX "/[^/]*\\.hpp$")
endif()

