file(REMOVE_RECURSE
  "librota_sched.a"
)
