file(REMOVE_RECURSE
  "CMakeFiles/rota_sched.dir/cost.cpp.o"
  "CMakeFiles/rota_sched.dir/cost.cpp.o.d"
  "CMakeFiles/rota_sched.dir/mapper.cpp.o"
  "CMakeFiles/rota_sched.dir/mapper.cpp.o.d"
  "CMakeFiles/rota_sched.dir/mapping.cpp.o"
  "CMakeFiles/rota_sched.dir/mapping.cpp.o.d"
  "CMakeFiles/rota_sched.dir/rs_mapper.cpp.o"
  "CMakeFiles/rota_sched.dir/rs_mapper.cpp.o.d"
  "CMakeFiles/rota_sched.dir/schedule.cpp.o"
  "CMakeFiles/rota_sched.dir/schedule.cpp.o.d"
  "CMakeFiles/rota_sched.dir/serialize.cpp.o"
  "CMakeFiles/rota_sched.dir/serialize.cpp.o.d"
  "librota_sched.a"
  "librota_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rota_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
