
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/cost.cpp" "src/sched/CMakeFiles/rota_sched.dir/cost.cpp.o" "gcc" "src/sched/CMakeFiles/rota_sched.dir/cost.cpp.o.d"
  "/root/repo/src/sched/mapper.cpp" "src/sched/CMakeFiles/rota_sched.dir/mapper.cpp.o" "gcc" "src/sched/CMakeFiles/rota_sched.dir/mapper.cpp.o.d"
  "/root/repo/src/sched/mapping.cpp" "src/sched/CMakeFiles/rota_sched.dir/mapping.cpp.o" "gcc" "src/sched/CMakeFiles/rota_sched.dir/mapping.cpp.o.d"
  "/root/repo/src/sched/rs_mapper.cpp" "src/sched/CMakeFiles/rota_sched.dir/rs_mapper.cpp.o" "gcc" "src/sched/CMakeFiles/rota_sched.dir/rs_mapper.cpp.o.d"
  "/root/repo/src/sched/schedule.cpp" "src/sched/CMakeFiles/rota_sched.dir/schedule.cpp.o" "gcc" "src/sched/CMakeFiles/rota_sched.dir/schedule.cpp.o.d"
  "/root/repo/src/sched/serialize.cpp" "src/sched/CMakeFiles/rota_sched.dir/serialize.cpp.o" "gcc" "src/sched/CMakeFiles/rota_sched.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arch/CMakeFiles/rota_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/rota_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rota_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
