# Empty compiler generated dependencies file for rota_sched.
# This may be replaced when dependencies are built.
