file(REMOVE_RECURSE
  "librota_rel.a"
)
