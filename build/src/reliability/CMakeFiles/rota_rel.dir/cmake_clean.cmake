file(REMOVE_RECURSE
  "CMakeFiles/rota_rel.dir/array_reliability.cpp.o"
  "CMakeFiles/rota_rel.dir/array_reliability.cpp.o.d"
  "CMakeFiles/rota_rel.dir/monte_carlo.cpp.o"
  "CMakeFiles/rota_rel.dir/monte_carlo.cpp.o.d"
  "CMakeFiles/rota_rel.dir/spares.cpp.o"
  "CMakeFiles/rota_rel.dir/spares.cpp.o.d"
  "CMakeFiles/rota_rel.dir/weibull.cpp.o"
  "CMakeFiles/rota_rel.dir/weibull.cpp.o.d"
  "librota_rel.a"
  "librota_rel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rota_rel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
