
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reliability/array_reliability.cpp" "src/reliability/CMakeFiles/rota_rel.dir/array_reliability.cpp.o" "gcc" "src/reliability/CMakeFiles/rota_rel.dir/array_reliability.cpp.o.d"
  "/root/repo/src/reliability/monte_carlo.cpp" "src/reliability/CMakeFiles/rota_rel.dir/monte_carlo.cpp.o" "gcc" "src/reliability/CMakeFiles/rota_rel.dir/monte_carlo.cpp.o.d"
  "/root/repo/src/reliability/spares.cpp" "src/reliability/CMakeFiles/rota_rel.dir/spares.cpp.o" "gcc" "src/reliability/CMakeFiles/rota_rel.dir/spares.cpp.o.d"
  "/root/repo/src/reliability/weibull.cpp" "src/reliability/CMakeFiles/rota_rel.dir/weibull.cpp.o" "gcc" "src/reliability/CMakeFiles/rota_rel.dir/weibull.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rota_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
