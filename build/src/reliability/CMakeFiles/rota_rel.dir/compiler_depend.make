# Empty compiler generated dependencies file for rota_rel.
# This may be replaced when dependencies are built.
