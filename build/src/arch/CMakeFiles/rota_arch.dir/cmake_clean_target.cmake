file(REMOVE_RECURSE
  "librota_arch.a"
)
