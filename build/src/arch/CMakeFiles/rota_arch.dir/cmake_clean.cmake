file(REMOVE_RECURSE
  "CMakeFiles/rota_arch.dir/area.cpp.o"
  "CMakeFiles/rota_arch.dir/area.cpp.o.d"
  "CMakeFiles/rota_arch.dir/config.cpp.o"
  "CMakeFiles/rota_arch.dir/config.cpp.o.d"
  "CMakeFiles/rota_arch.dir/energy.cpp.o"
  "CMakeFiles/rota_arch.dir/energy.cpp.o.d"
  "CMakeFiles/rota_arch.dir/topology.cpp.o"
  "CMakeFiles/rota_arch.dir/topology.cpp.o.d"
  "librota_arch.a"
  "librota_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rota_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
