# Empty dependencies file for rota_arch.
# This may be replaced when dependencies are built.
