#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arch/config.hpp"
#include "nn/network.hpp"
#include "reliability/array_reliability.hpp"
#include "sched/mapper.hpp"
#include "wear/policy.hpp"
#include "wear/simulator.hpp"

/// \file experiment.hpp
/// The top-level experiment driver: schedule a workload with the
/// energy-optimal mapper, run N inference iterations under each
/// wear-leveling policy, and evaluate per-PE usage and lifetime
/// reliability. This is the API the examples and every bench build on.

namespace rota {

/// Configuration of one experiment.
struct ExperimentConfig {
  arch::AcceleratorConfig accel = arch::rota_like();
  std::int64_t iterations = 1000;   ///< inference passes (paper: 1,000)
  double beta = rel::kJedecShape;   ///< Weibull shape parameter
  std::uint64_t seed = 0x526f5441;  ///< for stochastic policies ("RoTA")
  /// Wear accounting: allocation counts (the paper's A_PE) or
  /// busy-cycle-weighted counts (extension).
  wear::WearMetric metric = wear::WearMetric::kAllocations;
  /// Worker lanes for scheduling and policy/workload cells: 1 = serial
  /// (default, the historical path), 0 = one lane per hardware thread.
  /// Results are bit-identical for any value (DESIGN.md §9).
  int threads = 1;
};

/// Outcome of running one policy over the workload.
struct PolicyRun {
  wear::PolicyKind kind = wear::PolicyKind::kBaseline;
  std::string policy_name;
  util::Grid<std::int64_t> usage;  ///< final per-PE usage counters
  wear::UsageStats stats;          ///< D_max, min/max A_PE, R_diff
};

/// Outcome of a full experiment on one network.
struct ExperimentResult {
  std::string network_name;
  std::string network_abbr;
  sched::NetworkSchedule schedule;
  std::int64_t iterations = 0;
  double beta = rel::kJedecShape;
  std::vector<PolicyRun> runs;

  /// The run for a given policy, or nullptr if the policy was not part of
  /// this experiment. The non-throwing lookup used by the v1 API and the
  /// service layer.
  [[nodiscard]] const PolicyRun* find_run(wear::PolicyKind kind) const noexcept;

  /// The run for a given policy; throws util::precondition_error if the
  /// policy was not included. Deprecated in favor of find_run(): new code
  /// (and everything behind rota::api::v1) must use the non-throwing
  /// lookup. Kept as a thin shim for source compatibility; scheduled for
  /// removal with the v1 API's first breaking release.
  [[nodiscard]] const PolicyRun& run(wear::PolicyKind kind) const;

  /// Relative lifetime improvement of `kind` over the baseline run
  /// (Eq. 4). Requires both runs to be present.
  [[nodiscard]] double improvement_over_baseline(wear::PolicyKind kind) const;
};

/// One transient sample (Figs. 6 and 7).
struct TransientSample {
  std::int64_t iteration = 0;
  std::int64_t max_usage_diff = 0;  ///< D_max
  double r_diff = 0.0;
  double improvement = 0.0;  ///< lifetime vs. baseline at same iteration
};

/// Experiment driver bound to one accelerator configuration. Scheduling
/// results are memoized across calls through the embedded mapper.
class Experiment {
 public:
  explicit Experiment(ExperimentConfig config = {});

  [[nodiscard]] const ExperimentConfig& config() const { return config_; }
  sched::Mapper& mapper() { return mapper_; }

  /// Schedule (memoized) a network on this experiment's accelerator.
  sched::NetworkSchedule schedule(const nn::Network& net);

  /// Run `config().iterations` passes of `net` under each policy.
  ExperimentResult run(const nn::Network& net,
                       const std::vector<wear::PolicyKind>& policies);

  /// Multi-network serving (§IV-D: the stride state relays "across layers
  /// and networks"): each iteration executes every network in `mix` once,
  /// in order, without resetting policy state between them.
  ExperimentResult run_mix(const std::vector<nn::Network>& mix,
                           const std::vector<wear::PolicyKind>& policies);

  /// Full evaluation sweep: every network under every policy, one result
  /// per network in input order. With config().threads != 1 the
  /// policy×workload cells run concurrently (each cell owns its policy
  /// and simulator, so cells are independent); outputs are identical to
  /// calling run() per network.
  std::vector<ExperimentResult> run_sweep(
      const std::vector<nn::Network>& nets,
      const std::vector<wear::PolicyKind>& policies);

  /// Run one policy and sample D_max / R_diff / improvement-vs-baseline
  /// after every iteration. The baseline usage needed for the improvement
  /// series is computed analytically per iteration (the baseline anchors
  /// every space at the corner, so its usage is iteration-linear).
  std::vector<TransientSample> run_transient(const nn::Network& net,
                                             wear::PolicyKind kind,
                                             std::int64_t iterations);

 private:
  /// Run every policy over one fixed schedule, one PolicyRun per policy
  /// in input order (cells run concurrently when threads != 1).
  std::vector<PolicyRun> run_policies(
      const sched::NetworkSchedule& ns,
      const std::vector<wear::PolicyKind>& policies);

  ExperimentConfig config_;
  sched::Mapper mapper_;
};

}  // namespace rota
