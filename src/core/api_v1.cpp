#include "core/api_v1.hpp"

#include <exception>

#include "nn/workloads.hpp"
#include "util/check.hpp"

namespace rota::api::v1 {

namespace {

/// Translate the historical throwing surface into the v1 error taxonomy.
/// The entry points are noexcept, so the net must be total: the final
/// catch-all turns even non-std exceptions into an internal error rather
/// than letting them cross the facade and terminate.
/// rota-lint: allow(pre-require)
template <typename Fn>
auto guarded(Fn&& fn) noexcept -> Result<decltype(fn())> {
  try {
    return fn();
  } catch (const util::precondition_error& e) {
    return Error{ErrorCode::kInvalidArgument, e.what()};
  } catch (const util::io_error& e) {
    return Error{ErrorCode::kIo, e.what()};
  } catch (const std::bad_alloc&) {
    return Error{ErrorCode::kResourceExhausted, "allocation failed"};
  } catch (const std::exception& e) {
    return Error{ErrorCode::kInternal, e.what()};
  } catch (...) {
    return Error{ErrorCode::kInternal, "unknown non-standard exception"};
  }
}

}  // namespace

Result<nn::Network> find_workload(const std::string& abbr) noexcept {
  return guarded([&] { return nn::workload_by_abbr(abbr); });
}

Result<sched::NetworkSchedule> schedule_workload(
    const ExperimentConfig& config, const nn::Network& net) noexcept {
  return guarded([&] {
    Experiment exp(config);
    return exp.schedule(net);
  });
}

Result<sched::NetworkSchedule> schedule_network_with_objective(
    const ExperimentConfig& config, const nn::Network& net,
    const sched::ObjectiveSpec& objective,
    const sched::ArrayState& array_state) noexcept {
  return guarded([&] {
    sched::Mapper mapper(config.accel, objective, {},
                         sched::MapperOptions{true, config.threads},
                         array_state);
    return mapper.schedule_network(net);
  });
}

Result<sched::NetworkParetoFront> pareto_network(
    const ExperimentConfig& config, const nn::Network& net,
    const sched::ObjectiveSpec& objective,
    const sched::ArrayState& array_state) noexcept {
  return guarded([&] {
    sched::Mapper mapper(config.accel, objective, {},
                         sched::MapperOptions{true, config.threads},
                         array_state);
    return mapper.pareto_network(net);
  });
}

Result<ExperimentResult> run_experiment(
    const ExperimentConfig& config, const nn::Network& net,
    const std::vector<wear::PolicyKind>& policies) noexcept {
  return guarded([&] {
    Experiment exp(config);
    return exp.run(net, policies);
  });
}

Result<PolicyRun> find_run(const ExperimentResult& result,
                           wear::PolicyKind kind) noexcept {
  const PolicyRun* run = result.find_run(kind);
  if (run == nullptr) {
    return Error{ErrorCode::kNotFound,
                 "policy " + wear::to_string(kind) +
                     " was not part of this experiment"};
  }
  return *run;
}

Result<double> lifetime_improvement(const ExperimentResult& result,
                                    wear::PolicyKind kind) noexcept {
  if (result.find_run(wear::PolicyKind::kBaseline) == nullptr ||
      result.find_run(kind) == nullptr) {
    return Error{ErrorCode::kNotFound,
                 "lifetime_improvement requires both the baseline run and "
                 "the " +
                     wear::to_string(kind) + " run to be present"};
  }
  return result.improvement_over_baseline(kind);
}

}  // namespace rota::api::v1
