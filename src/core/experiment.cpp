#include "core/experiment.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "par/parallel.hpp"
#include "util/check.hpp"

namespace rota {

const PolicyRun* ExperimentResult::find_run(
    wear::PolicyKind kind) const noexcept {
  for (const auto& r : runs) {
    if (r.kind == kind) return &r;
  }
  return nullptr;
}

const PolicyRun& ExperimentResult::run(wear::PolicyKind kind) const {
  const PolicyRun* found = find_run(kind);
  ROTA_REQUIRE(found != nullptr, "policy " + wear::to_string(kind) +
                                     " was not part of this experiment");
  return *found;
}

double ExperimentResult::improvement_over_baseline(
    wear::PolicyKind kind) const {
  const PolicyRun* base_ptr = find_run(wear::PolicyKind::kBaseline);
  const PolicyRun* wl_ptr = find_run(kind);
  ROTA_REQUIRE(base_ptr != nullptr && wl_ptr != nullptr,
               "improvement_over_baseline requires both the baseline run "
               "and the " +
                   wear::to_string(kind) + " run to be present");
  const PolicyRun& base = *base_ptr;
  const PolicyRun& wl = *wl_ptr;
  std::vector<double> base_alphas;
  std::vector<double> wl_alphas;
  base_alphas.reserve(base.usage.size());
  wl_alphas.reserve(wl.usage.size());
  for (std::int64_t v : base.usage.cells())
    base_alphas.push_back(static_cast<double>(v));
  for (std::int64_t v : wl.usage.cells())
    wl_alphas.push_back(static_cast<double>(v));
  return rel::lifetime_improvement(base_alphas, wl_alphas, beta);
}

Experiment::Experiment(ExperimentConfig config)
    : config_(std::move(config)),
      mapper_(config_.accel, sched::ObjectiveSpec{}, {},
              sched::MapperOptions{true, config_.threads}) {
  config_.accel.validate();
  ROTA_REQUIRE(config_.iterations >= 0,
               "iteration count must be non-negative");
}

sched::NetworkSchedule Experiment::schedule(const nn::Network& net) {
  return mapper_.schedule_network(net);
}

std::vector<PolicyRun> Experiment::run_policies(
    const sched::NetworkSchedule& ns,
    const std::vector<wear::PolicyKind>& policies) {
  // Each cell owns its policy object and simulator; the shared schedule
  // is read-only, so cells are independent and results land in the slot
  // named by the policy's input position — identical for any lane count.
  std::vector<PolicyRun> runs(policies.size());
  par::parallel_for(
      static_cast<std::int64_t>(policies.size()), config_.threads,
      [this, &ns, &policies, &runs](std::int64_t i) {
        const wear::PolicyKind kind = policies[static_cast<std::size_t>(i)];
        const obs::TraceSpan policy_span(wear::to_string(kind),
                                         "experiment.policy");
        obs::MetricsRegistry::global().add("experiment.policy_runs");
        auto policy =
            wear::make_policy(kind, config_.accel.array_width,
                              config_.accel.array_height, config_.seed);
        wear::WearSimulator sim(config_.accel, {true, config_.metric});
        sim.run_iterations(ns, *policy, config_.iterations);
        PolicyRun run;
        run.kind = kind;
        run.policy_name = policy->name();
        run.usage = sim.tracker().usage();
        run.stats = sim.tracker().stats();
        runs[static_cast<std::size_t>(i)] = std::move(run);
      });
  return runs;
}

ExperimentResult Experiment::run(
    const nn::Network& net, const std::vector<wear::PolicyKind>& policies) {
  const obs::TraceSpan exp_span(net.abbr(), "experiment");
  ExperimentResult result;
  result.network_name = net.name();
  result.network_abbr = net.abbr();
  result.schedule = schedule(net);
  result.iterations = config_.iterations;
  result.beta = config_.beta;
  result.runs = run_policies(result.schedule, policies);
  return result;
}

ExperimentResult Experiment::run_mix(
    const std::vector<nn::Network>& mix,
    const std::vector<wear::PolicyKind>& policies) {
  ROTA_REQUIRE(!mix.empty(), "network mix must be non-empty");
  const obs::TraceSpan exp_span("mix", "experiment");

  // Concatenate the mix into one super-schedule: an "iteration" then means
  // one pass over every model, and layer transitions between models are
  // handled by the same RO relay as transitions inside a model.
  ExperimentResult result;
  sched::NetworkSchedule combined;
  combined.config = config_.accel;
  std::string names;
  std::string abbrs;
  for (const nn::Network& net : mix) {
    const sched::NetworkSchedule ns = schedule(net);
    for (const auto& layer : ns.layers) {
      combined.layers.push_back(layer);
      combined.layers.back().layer_name =
          net.abbr() + ":" + layer.layer_name;
    }
    names += (names.empty() ? "" : " + ") + net.name();
    abbrs += (abbrs.empty() ? "" : "+") + net.abbr();
  }
  combined.network_name = names;
  combined.network_abbr = abbrs;
  result.network_name = names;
  result.network_abbr = abbrs;
  result.schedule = std::move(combined);
  result.iterations = config_.iterations;
  result.beta = config_.beta;
  result.runs = run_policies(result.schedule, policies);
  return result;
}

std::vector<ExperimentResult> Experiment::run_sweep(
    const std::vector<nn::Network>& nets,
    const std::vector<wear::PolicyKind>& policies) {
  ROTA_REQUIRE(!nets.empty(), "sweep needs at least one network");
  const obs::TraceSpan sweep_span("sweep", "experiment");

  // Schedule every network first (schedule_network fans distinct shapes
  // out on its own, and the shared mapper memo carries shapes repeated
  // across networks), then flatten the policy×workload grid into
  // independent cells.
  std::vector<ExperimentResult> results(nets.size());
  for (std::size_t n = 0; n < nets.size(); ++n) {
    results[n].network_name = nets[n].name();
    results[n].network_abbr = nets[n].abbr();
    results[n].schedule = schedule(nets[n]);
    results[n].iterations = config_.iterations;
    results[n].beta = config_.beta;
    results[n].runs.resize(policies.size());
  }
  const std::int64_t cells =
      static_cast<std::int64_t>(nets.size() * policies.size());
  par::parallel_for(
      cells, config_.threads, [this, &policies, &results](std::int64_t cell) {
        const std::size_t n =
            static_cast<std::size_t>(cell) / policies.size();
        const std::size_t p =
            static_cast<std::size_t>(cell) % policies.size();
        const wear::PolicyKind kind = policies[p];
        const obs::TraceSpan policy_span(results[n].network_abbr + ":" +
                                             wear::to_string(kind),
                                         "experiment.policy");
        obs::MetricsRegistry::global().add("experiment.policy_runs");
        auto policy =
            wear::make_policy(kind, config_.accel.array_width,
                              config_.accel.array_height, config_.seed);
        wear::WearSimulator sim(config_.accel, {true, config_.metric});
        sim.run_iterations(results[n].schedule, *policy, config_.iterations);
        PolicyRun run;
        run.kind = kind;
        run.policy_name = policy->name();
        run.usage = sim.tracker().usage();
        run.stats = sim.tracker().stats();
        results[n].runs[p] = std::move(run);
      });
  return results;
}

std::vector<TransientSample> Experiment::run_transient(
    const nn::Network& net, wear::PolicyKind kind, std::int64_t iterations) {
  ROTA_REQUIRE(iterations >= 1, "transient run needs at least one iteration");
  const obs::TraceSpan span(net.abbr(), "experiment.transient");
  const sched::NetworkSchedule ns = schedule(net);

  // Baseline usage after one iteration; the baseline is iteration-linear
  // (same corner anchoring every pass), so iteration i's baseline usage is
  // i × the one-iteration counters.
  wear::WearSimulator base_sim(config_.accel, {true, config_.metric});
  auto base_policy =
      wear::make_policy(wear::PolicyKind::kBaseline, config_.accel.array_width,
                        config_.accel.array_height, config_.seed);
  base_sim.run_iteration(ns, *base_policy);
  const std::vector<double> base_once = base_sim.tracker().usage_as_doubles();

  auto policy = wear::make_policy(kind, config_.accel.array_width,
                                  config_.accel.array_height, config_.seed);
  wear::WearSimulator sim(config_.accel, {true, config_.metric});

  std::vector<TransientSample> samples;
  samples.reserve(static_cast<std::size_t>(iterations));
  sim.run_iterations(
      ns, *policy, iterations,
      [&](std::int64_t it, const wear::UsageTracker& tracker) {
        TransientSample s;
        s.iteration = it;
        const wear::UsageStats st = tracker.stats();
        s.max_usage_diff = st.max_diff;
        s.r_diff = st.r_diff;
        std::vector<double> base_now(base_once.size());
        for (std::size_t i = 0; i < base_once.size(); ++i)
          base_now[i] = base_once[i] * static_cast<double>(it);
        s.improvement = rel::lifetime_improvement(
            base_now, tracker.usage_as_doubles(), config_.beta);
        samples.push_back(s);
      });
  return samples;
}

}  // namespace rota
