#pragma once

/// \file rota.hpp
/// Umbrella header of the RoTA library. Including this gives the full
/// public API:
///
///   - rota::nn        — layer / network model and the Table II workload zoo
///   - rota::arch      — accelerator configuration, energy, area, topology
///   - rota::sched     — the NeuroSpector-lite energy-optimal mapper
///   - rota::wear      — usage tracking, RWL math, policies, wear simulator
///   - rota::rel       — Weibull lifetime-reliability model
///   - rota::sim       — tile pipeline timing and the RWL+RO controller
///   - rota::obs       — metrics, Chrome-trace spans, run manifests
///   - rota (core)     — Experiment: the one-call driver used by examples
///
/// Quickstart:
/// \code
///   rota::Experiment exp;                       // 14×12 torus, 1000 iters
///   auto net = rota::nn::make_squeezenet();
///   auto res = exp.run(net, {rota::wear::PolicyKind::kBaseline,
///                            rota::wear::PolicyKind::kRwlRo});
///   double gain = res.improvement_over_baseline(
///       rota::wear::PolicyKind::kRwlRo);        // ≈ paper's Fig. 8
/// \endcode

#include "arch/area.hpp"
#include "arch/config.hpp"
#include "arch/energy.hpp"
#include "arch/topology.hpp"
#include "core/experiment.hpp"
#include "nn/layer.hpp"
#include "nn/network.hpp"
#include "nn/workloads.hpp"
#include "obs/build_info.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "reliability/array_reliability.hpp"
#include "reliability/monte_carlo.hpp"
#include "reliability/spares.hpp"
#include "reliability/weibull.hpp"
#include "sched/mapper.hpp"
#include "sched/rs_mapper.hpp"
#include "sched/schedule.hpp"
#include "sched/serialize.hpp"
#include "sim/controller.hpp"
#include "sim/engine.hpp"
#include "sim/noc_traffic.hpp"
#include "thermal/thermal.hpp"
#include "util/heatmap.hpp"
#include "util/table.hpp"
#include "wear/policy.hpp"
#include "wear/rwl_math.hpp"
#include "wear/trace.hpp"
#include "wear/simulator.hpp"
#include "wear/usage_tracker.hpp"
