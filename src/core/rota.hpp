#pragma once

/// \file rota.hpp
/// Umbrella header of the RoTA library. Including this gives the full
/// public API:
///
///   - rota::api::v1   — the versioned, non-throwing facade (api_v1.hpp):
///                       Result<T> returns, stable error codes, JSON
///                       envelopes stamped with schema_version. New
///                       integrations should target this surface.
///   - rota::nn        — layer / network model and the Table II workload zoo
///   - rota::arch      — accelerator configuration, energy, area, topology
///   - rota::sched     — the NeuroSpector-lite energy-optimal mapper
///   - rota::wear      — usage tracking, RWL math, policies, wear simulator
///   - rota::rel       — Weibull lifetime-reliability model
///   - rota::sim       — tile pipeline timing and the RWL+RO controller
///   - rota::obs       — metrics, Chrome-trace spans, run manifests
///   - rota::svc       — embeddable batch-request engine + schedule cache
///                       (src/svc; behind `rota serve`, not pulled in here)
///   - rota (core)     — Experiment: the one-call driver used by examples
///
/// Versioning and deprecation policy: the module namespaces above are the
/// historical throwing surface and remain supported for in-process use.
/// `rota::api::v1` wraps them without forking the implementation; it only
/// grows compatibly, and a breaking change opens `rota::api::v2` while v1
/// lives on for two releases. Members documented as deprecated (e.g. the
/// throwing ExperimentResult::run, replaced by find_run) are removed with
/// the next generation bump, never silently.
///
/// Quickstart (v1 facade):
/// \code
///   namespace api = rota::api::v1;
///   rota::ExperimentConfig cfg;                 // 14×12 torus, 1000 iters
///   auto net = api::find_workload("Sqz");
///   auto res = api::run_experiment(cfg, net.value(),
///                                  {rota::wear::PolicyKind::kBaseline,
///                                   rota::wear::PolicyKind::kRwlRo});
///   auto gain = api::lifetime_improvement(
///       res.value(), rota::wear::PolicyKind::kRwlRo);  // ≈ Fig. 8
///   if (!gain.ok()) { /* gain.error().code, .message */ }
/// \endcode

#include "arch/area.hpp"
#include "arch/config.hpp"
#include "arch/energy.hpp"
#include "arch/topology.hpp"
#include "core/api_v1.hpp"
#include "core/experiment.hpp"
#include "nn/layer.hpp"
#include "nn/network.hpp"
#include "nn/workloads.hpp"
#include "obs/build_info.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "reliability/array_reliability.hpp"
#include "reliability/monte_carlo.hpp"
#include "reliability/spares.hpp"
#include "reliability/weibull.hpp"
#include "sched/mapper.hpp"
#include "sched/rs_mapper.hpp"
#include "sched/schedule.hpp"
#include "sched/serialize.hpp"
#include "sim/controller.hpp"
#include "sim/engine.hpp"
#include "sim/noc_traffic.hpp"
#include "thermal/thermal.hpp"
#include "util/heatmap.hpp"
#include "util/table.hpp"
#include "wear/policy.hpp"
#include "wear/rwl_math.hpp"
#include "wear/trace.hpp"
#include "wear/simulator.hpp"
#include "wear/usage_tracker.hpp"
