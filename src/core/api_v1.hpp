#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "nn/network.hpp"
#include "obs/json.hpp"
#include "sched/array_state.hpp"
#include "sched/objective.hpp"
#include "sched/schedule.hpp"
#include "util/result.hpp"
#include "wear/policy.hpp"

/// \file api_v1.hpp
/// `rota::api::v1` — the versioned, non-throwing public facade of the
/// RoTA library, and the surface the svc engine is built on.
///
/// Contract (the v1 API policy, DESIGN.md §10):
///
///   - Entry points return `Result<T>` / `Status` and are `noexcept`
///     (enforced by the api-noexcept lint rule): they never throw for
///     data errors (unknown workload, bad geometry, absent policy run),
///     and implementation exceptions are translated to Error values at
///     the boundary. The one escape is allocation failure while already
///     building the error reply, which terminates — a process that
///     cannot allocate an error string has no useful recovery.
///     Programming errors — violated precondition contracts on types
///     reached *through* a returned value — still assert via ROTA_REQUIRE.
///   - Every JSON envelope produced anywhere in the repo is stamped with
///     `schema_version` (obs::kSchemaVersion, re-exported here); readers
///     reject unknown versions instead of guessing.
///   - Additions are backward compatible within v1. Breaking changes get
///     a `rota::api::v2` namespace; v1 then remains for two releases with
///     deprecation notes before removal. Deprecated members of the
///     historical (unversioned) surface — e.g. the throwing
///     ExperimentResult::run — say so in their doc comment and have a
///     non-throwing v1 replacement.
///
/// The historical throwing surface (`rota::Experiment`, free functions in
/// module namespaces) remains available for in-process callers that want
/// exceptions; v1 wraps it rather than forking the implementation, so the
/// numbers are identical by construction.

namespace rota::api::v1 {

// The error channel, re-exported so v1 callers need only this header.
using util::Error;
using util::ErrorCode;
using util::Result;
using util::Status;
using util::Unit;

/// Version stamped into every JSON envelope (obs::kSchemaVersion).
inline constexpr int kSchemaVersion = obs::kSchemaVersion;

/// Look up a workload by its Table II / extended-zoo abbreviation.
[[nodiscard]] Result<nn::Network> find_workload(
    const std::string& abbr) noexcept;

/// Schedule one workload on `config.accel` with the energy-optimal
/// mapper. Errors: invalid geometry (invalid_argument).
[[nodiscard]] Result<sched::NetworkSchedule> schedule_workload(
    const ExperimentConfig& config, const nn::Network& net) noexcept;

/// Schedule one workload under an explicit mapper objective and (optional)
/// degraded array state. With the default-constructed arguments this is
/// byte-identical to schedule_workload. Errors: invalid geometry or an
/// array state whose dimensions disagree with config.accel
/// (invalid_argument), no feasible mapping on the degraded array
/// (invalid_argument).
[[nodiscard]] Result<sched::NetworkSchedule> schedule_network_with_objective(
    const ExperimentConfig& config, const nn::Network& net,
    const sched::ObjectiveSpec& objective,
    const sched::ArrayState& array_state = sched::ArrayState()) noexcept;

/// Per-layer Pareto fronts over (energy, projected MTTF, cycles) for one
/// workload, with the `objective`-selected member flagged in each front.
/// Deterministic for fixed inputs at any config.threads. Errors: as
/// schedule_network_with_objective.
[[nodiscard]] Result<sched::NetworkParetoFront> pareto_network(
    const ExperimentConfig& config, const nn::Network& net,
    const sched::ObjectiveSpec& objective,
    const sched::ArrayState& array_state = sched::ArrayState()) noexcept;

/// Run a full experiment (schedule + N wear iterations per policy).
/// Errors: invalid geometry or iteration count (invalid_argument).
[[nodiscard]] Result<ExperimentResult> run_experiment(
    const ExperimentConfig& config, const nn::Network& net,
    const std::vector<wear::PolicyKind>& policies) noexcept;

/// The run for `kind` inside `result`. Errors: not_found when the policy
/// was not part of the experiment. (Non-throwing replacement for the
/// deprecated ExperimentResult::run.)
[[nodiscard]] Result<PolicyRun> find_run(const ExperimentResult& result,
                                         wear::PolicyKind kind) noexcept;

/// Lifetime improvement of `kind` over the baseline run (Eq. 4).
/// Errors: not_found when either run is absent.
[[nodiscard]] Result<double> lifetime_improvement(
    const ExperimentResult& result, wear::PolicyKind kind) noexcept;

}  // namespace rota::api::v1

namespace rota::api {
/// Alias for the current stable generation; code that wants "latest" can
/// say rota::api::stable and recompile across generation bumps.
namespace stable = v1;
}  // namespace rota::api
