#include "thermal/thermal.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace rota::thermal {

namespace {

constexpr double kKelvinOffset = 273.15;
constexpr double kBoltzmannEv = 8.617333262e-5;  // eV/K

}  // namespace

ThermalModel::ThermalModel(ThermalParams params) : params_(params) {
  ROTA_REQUIRE(params_.sink_c_per_w > 0.0,
               "vertical thermal resistance must be positive");
  ROTA_REQUIRE(params_.lateral_coupling >= 0.0,
               "lateral coupling must be non-negative");
  ROTA_REQUIRE(params_.pe_peak_power_w > 0.0,
               "peak PE power must be positive");
  ROTA_REQUIRE(params_.max_iterations > 0 && params_.tolerance_c > 0.0,
               "solver parameters must be positive");
}

util::Grid<double> ThermalModel::steady_state(
    const util::Grid<double>& power_w) const {
  ROTA_REQUIRE(!power_w.empty(), "power map must be non-empty");
  for (double p : power_w.cells())
    ROTA_REQUIRE(p >= 0.0, "power must be non-negative");

  const std::size_t w = power_w.width();
  const std::size_t h = power_w.height();
  const double g_v = 1.0 / params_.sink_c_per_w;
  const double g_l = g_v * params_.lateral_coupling;

  util::Grid<double> temp(w, h, params_.ambient_c);
  util::Grid<double> next(w, h, params_.ambient_c);

  for (int iter = 0; iter < params_.max_iterations; ++iter) {
    double worst = 0.0;
    for (std::size_t r = 0; r < h; ++r) {
      for (std::size_t c = 0; c < w; ++c) {
        double num = g_v * params_.ambient_c + power_w(c, r);
        double den = g_v;
        auto couple = [&](std::size_t nc, std::size_t nr) {
          num += g_l * temp(nc, nr);
          den += g_l;
        };
        if (c > 0) couple(c - 1, r);
        if (c + 1 < w) couple(c + 1, r);
        if (r > 0) couple(c, r - 1);
        if (r + 1 < h) couple(c, r + 1);
        const double t = num / den;
        worst = std::max(worst, std::abs(t - temp(c, r)));
        next(c, r) = t;
      }
    }
    std::swap(temp, next);
    if (worst < params_.tolerance_c) return temp;
  }
  return temp;  // iteration cap reached; solution is near-converged
}

util::Grid<double> ThermalModel::power_from_usage(
    const util::Grid<std::int64_t>& usage,
    std::int64_t reference_peak) const {
  ROTA_REQUIRE(!usage.empty(), "usage map must be non-empty");
  ROTA_REQUIRE(reference_peak >= 0, "reference peak must be non-negative");
  double peak = static_cast<double>(reference_peak);
  for (std::int64_t v : usage.cells()) {
    ROTA_REQUIRE(v >= 0, "usage must be non-negative");
    if (reference_peak == 0) peak = std::max(peak, static_cast<double>(v));
    ROTA_REQUIRE(reference_peak == 0 ||
                     static_cast<double>(v) <= peak + 0.5,
                 "usage exceeds the stated reference peak");
  }
  util::Grid<double> power(usage.width(), usage.height(), 0.0);
  if (peak <= 0.0) return power;
  for (std::size_t r = 0; r < usage.height(); ++r) {
    for (std::size_t c = 0; c < usage.width(); ++c) {
      power(c, r) = params_.pe_peak_power_w *
                    static_cast<double>(usage(c, r)) / peak;
    }
  }
  return power;
}

double arrhenius_factor(double temp_c, double ref_c,
                        double activation_energy_ev) {
  ROTA_REQUIRE(activation_energy_ev > 0.0,
               "activation energy must be positive");
  const double t = temp_c + kKelvinOffset;
  const double t_ref = ref_c + kKelvinOffset;
  ROTA_REQUIRE(t > 0.0 && t_ref > 0.0,
               "temperatures must be above absolute zero");
  return std::exp(activation_energy_ev / kBoltzmannEv *
                  (1.0 / t_ref - 1.0 / t));
}

std::vector<double> accelerated_alphas(
    const util::Grid<std::int64_t>& usage, const ThermalModel& model,
    double activation_energy_ev, std::int64_t reference_peak) {
  const util::Grid<double> power =
      model.power_from_usage(usage, reference_peak);
  const util::Grid<double> temp = model.steady_state(power);
  double mean_t = 0.0;
  for (double t : temp.cells()) mean_t += t;
  mean_t /= static_cast<double>(temp.size());

  std::vector<double> alphas;
  alphas.reserve(usage.size());
  for (std::size_t r = 0; r < usage.height(); ++r) {
    for (std::size_t c = 0; c < usage.width(); ++c) {
      alphas.push_back(static_cast<double>(usage(c, r)) *
                       arrhenius_factor(temp(c, r), mean_t,
                                        activation_energy_ev));
    }
  }
  return alphas;
}

}  // namespace rota::thermal
