#pragma once

#include <cstdint>
#include <vector>

#include "util/grid.hpp"

/// \file thermal.hpp
/// Steady-state thermal model of the PE array and Arrhenius wear
/// acceleration (extension beyond the paper). The paper's Weibull model
/// takes the relative active duration α_ij as the whole stress story; in
/// silicon, concentrated activity also raises local temperature, and most
/// wear-out mechanisms (electromigration, BTI, TDDB — JEDEC JEP122H)
/// accelerate exponentially with it. This module closes that loop:
/// usage → power density → temperature field → Arrhenius-accelerated
/// effective stress, which the existing reliability model consumes
/// unchanged. Wear-leveling then helps twice: it equalizes time under
/// stress *and* removes the hotspot that superlinearly burned the corner.

namespace rota::thermal {

/// Lumped-RC parameters of the array's thermal network.
struct ThermalParams {
  double ambient_c = 45.0;        ///< package/board ambient (°C)
  /// Vertical junction-to-ambient resistance of one PE's footprint (°C/W).
  /// A PE occupies ~2,400 µm², so its share of the package resistance is
  /// large; 8 kC/W puts a fully-active PE ~32 °C over ambient.
  double sink_c_per_w = 8000.0;
  double lateral_coupling = 1.0;  ///< lateral vs vertical conductance ratio
  double pe_peak_power_w = 0.004; ///< power of a 100%-active PE (W)
  int max_iterations = 20000;     ///< Jacobi iteration cap
  double tolerance_c = 1e-7;      ///< convergence threshold (°C)
};

/// Steady-state temperature solver on the PE grid.
///
/// Each PE node connects to ambient through its vertical resistance and
/// to its 4-neighbors through lateral conductances; the steady state of
///   g_v·(T_ij − T_amb) = p_ij + g_l·Σ_n (T_n − T_ij)
/// is found by Jacobi iteration (diagonally dominant, always converges).
class ThermalModel {
 public:
  explicit ThermalModel(ThermalParams params = {});

  [[nodiscard]] const ThermalParams& params() const { return params_; }

  /// Temperature field (°C) for a per-PE power map (W).
  /// \pre all powers non-negative.
  [[nodiscard]] util::Grid<double> steady_state(const util::Grid<double>& power_w) const;

  /// Convenience: power map from usage counters. Activity is normalized by
  /// `reference_peak` — the counter value of a PE that would be active the
  /// whole run — which dissipates pe_peak_power_w. Pass 0 to use the
  /// grid's own maximum. When comparing two schemes that performed the
  /// same work, pass a COMMON reference (e.g. the max across both grids)
  /// or the comparison is meaningless.
  util::Grid<double> power_from_usage(
      const util::Grid<std::int64_t>& usage,
      std::int64_t reference_peak = 0) const;

 private:
  ThermalParams params_;
};

/// Arrhenius acceleration factor at `temp_c` relative to `ref_c`:
/// AF = exp(Ea/k · (1/T_ref − 1/T)), temperatures in Kelvin internally.
/// AF(ref) = 1; hotter-than-reference gives AF > 1.
/// \pre activation energy positive; temperatures above absolute zero.
[[nodiscard]] double arrhenius_factor(double temp_c, double ref_c = 55.0,
                        double activation_energy_ev = 0.7);

/// Thermally-accelerated effective activity: α'_ij = α_ij · AF(T_ij),
/// where T is the steady-state field of the usage-derived power map and
/// the reference temperature is the *mean* of that field, so a perfectly
/// level design is unaffected. Row-major, ready for rel::*.
/// `reference_peak` follows power_from_usage() semantics.
[[nodiscard]] std::vector<double> accelerated_alphas(
    const util::Grid<std::int64_t>& usage, const ThermalModel& model,
    double activation_energy_ev = 0.7, std::int64_t reference_peak = 0);

}  // namespace rota::thermal
