#include "obs/trace.hpp"

#include <ostream>
#include <sstream>

#include "obs/json.hpp"
#include "util/io.hpp"

namespace rota::obs {

namespace {

/// Small dense thread ids (0, 1, 2, …) so the Perfetto track list stays
/// readable; std::thread::id would render as opaque large numbers.
std::int32_t this_thread_index() {
  static std::atomic<std::int32_t> next{0};
  thread_local std::int32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

std::int64_t Tracer::now_us() const {
  const auto elapsed = std::chrono::steady_clock::now() - epoch_;
  return std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
      .count();
}

void Tracer::complete(std::string_view name, std::string_view category,
                      std::int64_t ts_us, std::int64_t dur_us,
                      std::uint64_t request_seq) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name = std::string(name);
  ev.category = std::string(category);
  ev.phase = 'X';
  ev.ts_us = ts_us;
  ev.dur_us = dur_us;
  ev.tid = this_thread_index();
  ev.request_seq = request_seq;
  const util::MutexLock lock(mu_);
  events_.push_back(std::move(ev));
}

void Tracer::instant(std::string_view name, std::string_view category) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name = std::string(name);
  ev.category = std::string(category);
  ev.phase = 'i';
  ev.ts_us = now_us();
  ev.tid = this_thread_index();
  const util::MutexLock lock(mu_);
  events_.push_back(std::move(ev));
}

std::size_t Tracer::event_count() const {
  const util::MutexLock lock(mu_);
  return events_.size();
}

void Tracer::reset() {
  const util::MutexLock lock(mu_);
  events_.clear();
}

void Tracer::write_json(std::ostream& out) const {
  std::vector<TraceEvent> events;
  {
    const util::MutexLock lock(mu_);
    events = events_;
  }
  // The object form of the trace-event format (still loadable by
  // chrome://tracing and Perfetto), so the envelope can carry
  // schema_version like every other JSON artifact this repo emits.
  out << "{\"schema_version\":" << kSchemaVersion << ",\"traceEvents\":"
      << "[{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
         "\"args\":{\"name\":\"rota\"}}";
  for (const TraceEvent& ev : events) {
    out << ",{\"name\":" << json_quote(ev.name)
        << ",\"cat\":" << json_quote(ev.category) << ",\"ph\":\"" << ev.phase
        << "\",\"ts\":" << ev.ts_us;
    if (ev.phase == 'X') out << ",\"dur\":" << ev.dur_us;
    if (ev.phase == 'i') out << ",\"s\":\"t\"";
    if (ev.request_seq != 0)
      out << ",\"args\":{\"request\":" << ev.request_seq << '}';
    out << ",\"pid\":1,\"tid\":" << ev.tid << '}';
  }
  out << "]}\n";
}

std::string Tracer::json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

void Tracer::write_file(const std::string& path) const {
  // Atomic (temp + fsync + rename): a crash mid-write leaves the previous
  // trace or none, never a torn JSON file.
  util::write_file_atomic(path, json());
}

TraceSpan::TraceSpan(std::string_view name, std::string_view category,
                     Tracer& tracer)
    : tracer_(tracer) {
  if (!tracer_.enabled()) return;
  name_ = std::string(name);
  category_ = std::string(category);
  start_us_ = tracer_.now_us();
}

TraceSpan::~TraceSpan() {
  if (start_us_ < 0) return;
  tracer_.complete(name_, category_, start_us_, tracer_.now_us() - start_us_,
                   request_seq_);
}

}  // namespace rota::obs
