#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <thread>

#include "obs/metrics.hpp"
#include "util/retry.hpp"
#include "util/thread_annotations.hpp"

/// \file snapshot.hpp
/// Live metrics snapshots: a consistent capture of the whole
/// MetricsRegistry rendered as (a) a schema_version-stamped JSON envelope
/// and (b) OpenMetrics text exposition — both from the same MetricsExport,
/// so the two forms agree by construction — plus a SnapshotPublisher that
/// samples the registry on a timer thread and atomically publishes both
/// files (temp + fsync + rename via util::write_file_atomic, transient
/// faults absorbed by util::retry_io). This is what `--stats-interval`
/// wires up, what the svc `{"op":"stats"}` verb returns in-band, and what
/// the ROADMAP's loadgen soak will scrape.

namespace rota::obs {

/// One captured instant of the registry.
struct MetricsSnapshot {
  std::uint64_t seq = 0;        ///< Publisher sequence (0 for ad-hoc captures).
  double uptime_seconds = 0.0;  ///< Steady-clock seconds since process anchor.
  MetricsExport metrics;
};

/// Steady-clock seconds since the first call in this process (the anchor
/// is a function-local static, so "uptime" means time since observability
/// first looked, which for armed runs is process start for all practical
/// purposes).
[[nodiscard]] double process_uptime_seconds();

/// Capture the registry now (single lock acquisition; see
/// MetricsRegistry::export_all). `seq` is stamped by the caller.
[[nodiscard]] MetricsSnapshot capture_snapshot(
    const MetricsRegistry& registry = MetricsRegistry::global(),
    std::uint64_t seq = 0);

/// The snapshot as a JSON envelope:
/// {"schema_version":N,"kind":"metrics_snapshot","seq":...,
///  "uptime_seconds":...,"metrics":{...}} where "metrics" is the exact
/// object MetricsRegistry::write_json emits.
[[nodiscard]] std::string snapshot_json(const MetricsSnapshot& snapshot);

/// The snapshot in OpenMetrics text exposition format, `# EOF`-terminated.
/// Registry names are mangled to the OpenMetrics charset by
/// openmetrics_name(); counters additionally get the spec's `_total`
/// sample suffix; histograms render as summaries with quantile labels
/// 0.5 / 0.95 / 0.99 plus `_sum`/`_count`. The envelope fields ride along
/// as `rota_snapshot_seq` / `rota_uptime_seconds` /
/// `rota_snapshot_schema_version` gauges so a scrape is self-describing.
[[nodiscard]] std::string snapshot_openmetrics(const MetricsSnapshot& snapshot);

/// Registry metric name mangled for OpenMetrics: characters outside
/// [a-zA-Z0-9_:] become '_' and the result is prefixed with "rota_"
/// (e.g. "svc.queue_wait_ms" -> "rota_svc_queue_wait_ms").
[[nodiscard]] std::string openmetrics_name(std::string_view name);

/// Samples the registry every `interval` on a dedicated thread and
/// publishes the snapshot to `json_path` + `openmetrics_path`, each write
/// atomic (temp + fsync + rename) and retried on transient util::io_error.
/// stop() (and the destructor) joins the thread and publishes one final
/// snapshot so the exit state is always on disk. Publish outcomes are
/// visible in the registry itself as obs.snapshot.published /
/// obs.snapshot.retries / obs.snapshot.failures (each lagging one
/// snapshot, since a capture precedes its own write).
class SnapshotPublisher {
 public:
  struct Options {
    std::string json_path;         ///< Required.
    std::string openmetrics_path;  ///< Required.
    std::chrono::milliseconds interval{1000};
    util::RetryOptions retry;  ///< Transient-fault policy for file writes.
  };

  explicit SnapshotPublisher(
      Options options, MetricsRegistry& registry = MetricsRegistry::global());
  ~SnapshotPublisher();
  SnapshotPublisher(const SnapshotPublisher&) = delete;
  SnapshotPublisher& operator=(const SnapshotPublisher&) = delete;

  /// Spawn the sampler thread (no-op if already running or stopped).
  void start() ROTA_EXCLUDES(mu_);

  /// Signal, join, then publish the final snapshot — even when start()
  /// was never called, so an exit-only publisher still leaves the final
  /// state on disk. Idempotent: only the first call publishes.
  void stop() ROTA_EXCLUDES(mu_);

  /// Capture + write both files now (also called by the sampler loop).
  /// Returns false when the write still failed after the retry budget;
  /// the failure is recorded in the registry and the EventLog, never
  /// thrown — telemetry must not take down the serving path.
  bool publish_now();

  [[nodiscard]] std::uint64_t published() const {
    return published_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t failed() const {
    return failed_.load(std::memory_order_relaxed);
  }

 private:
  void run() ROTA_EXCLUDES(mu_);

  Options options_;
  MetricsRegistry& registry_;
  std::thread thread_;
  util::Mutex mu_;
  util::CondVar cv_;
  bool stop_requested_ ROTA_GUARDED_BY(mu_) = false;
  bool stopped_ ROTA_GUARDED_BY(mu_) = false;  ///< stop() already ran
  std::atomic<std::uint64_t> next_seq_{0};
  std::atomic<std::uint64_t> published_{0};
  std::atomic<std::uint64_t> failed_{0};
};

}  // namespace rota::obs
