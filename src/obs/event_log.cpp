#include "obs/event_log.hpp"

#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <system_error>
#include <utility>

#include "obs/json.hpp"

namespace rota::obs {

std::string_view to_string(Severity severity) {
  switch (severity) {
    case Severity::kDebug:
      return "debug";
    case Severity::kInfo:
      return "info";
    case Severity::kWarn:
      return "warn";
    case Severity::kError:
      return "error";
  }
  return "info";
}

std::string to_json_line(const Event& event) {
  std::ostringstream os;
  os << "{\"schema_version\":" << kSchemaVersion << ",\"seq\":" << event.seq
     << ",\"t_s\":" << json_number(event.t_s)
     << ",\"severity\":" << json_quote(to_string(event.severity))
     << ",\"component\":" << json_quote(event.component)
     << ",\"message\":" << json_quote(event.message);
  if (event.request_seq != 0)
    os << ",\"request_seq\":" << event.request_seq;
  if (!event.request_id.empty())
    os << ",\"request_id\":" << json_quote(event.request_id);
  os << '}';
  return os.str();
}

EventLog::EventLog() : epoch_(std::chrono::steady_clock::now()) {}

EventLog& EventLog::global() {
  static EventLog log;
  return log;
}

void EventLog::set_sink(std::string path, std::uint64_t rotate_bytes) {
  const util::MutexLock lock(mu_);
  sink_path_ = std::move(path);
  rotate_bytes_ = rotate_bytes == 0 ? kDefaultRotateBytes : rotate_bytes;
  std::error_code ec;
  const auto existing = std::filesystem::file_size(sink_path_, ec);
  sink_bytes_ = ec ? 0 : static_cast<std::uint64_t>(existing);
  if (ec) {
    // Create the file eagerly so quiet runs still leave a (possibly
    // empty) sink behind and `tail -f` works from the start.
    std::ofstream touch(sink_path_, std::ios::binary | std::ios::app);
    if (!touch) ++sink_errors_;
  }
  set_enabled(true);
}

void EventLog::clear_sink() {
  const util::MutexLock lock(mu_);
  sink_path_.clear();
  sink_bytes_ = 0;
}

void EventLog::set_echo_stderr(bool on) {
  const util::MutexLock lock(mu_);
  echo_stderr_ = on;
}

void EventLog::append_to_sink(const std::string& line) {
  if (sink_bytes_ > 0 && sink_bytes_ + line.size() > rotate_bytes_) {
    // Size-based rotation: one previous generation is kept at `path.1`.
    std::error_code ec;
    std::filesystem::rename(sink_path_, sink_path_ + ".1", ec);
    if (!ec) {
      ++rotations_;
      sink_bytes_ = 0;
    }
  }
  std::ofstream out(sink_path_, std::ios::binary | std::ios::app);
  out << line << '\n';
  out.flush();
  if (!out) {
    ++sink_errors_;  // A logger cannot usefully log its own failure.
    return;
  }
  sink_bytes_ += line.size() + 1;
}

void EventLog::log_slow(Severity severity, std::string_view component,
                        std::string_view message, std::uint64_t request_seq,
                        std::string_view request_id) {
  Event ev;
  const auto elapsed = std::chrono::steady_clock::now() - epoch_;
  ev.t_s = std::chrono::duration_cast<std::chrono::duration<double>>(elapsed)
               .count();
  ev.severity = severity;
  ev.component = std::string(component);
  ev.message = std::string(message);
  ev.request_seq = request_seq;
  ev.request_id = std::string(request_id);

  const util::MutexLock lock(mu_);
  ev.seq = next_seq_++;
  if (ring_.size() < kRingCapacity) {
    ring_.push_back(ev);
  } else {
    ring_[ring_next_] = ev;
  }
  ring_next_ = (ring_next_ + 1) % kRingCapacity;
  if (!sink_path_.empty()) append_to_sink(to_json_line(ev));
  if (echo_stderr_ && severity >= Severity::kWarn) {
    // The one sanctioned terminal rendering (CLI front-ends opt in);
    // stderr so protocol stdout (rota serve) stays machine-clean.
    std::cerr << "rota: [" << ev.component << "] " << ev.message << '\n';
  }
}

std::vector<Event> EventLog::recent() const {
  const util::MutexLock lock(mu_);
  std::vector<Event> out;
  out.reserve(ring_.size());
  if (ring_.size() < kRingCapacity) {
    out = ring_;
  } else {
    for (std::size_t i = 0; i < kRingCapacity; ++i)
      out.push_back(ring_[(ring_next_ + i) % kRingCapacity]);
  }
  return out;
}

std::uint64_t EventLog::total_logged() const {
  const util::MutexLock lock(mu_);
  return next_seq_ - 1;
}

std::uint64_t EventLog::rotations() const {
  const util::MutexLock lock(mu_);
  return rotations_;
}

std::uint64_t EventLog::sink_errors() const {
  const util::MutexLock lock(mu_);
  return sink_errors_;
}

void EventLog::reset() {
  const util::MutexLock lock(mu_);
  next_seq_ = 1;
  ring_.clear();
  ring_next_ = 0;
  sink_path_.clear();
  sink_bytes_ = 0;
  rotations_ = 0;
  sink_errors_ = 0;
  echo_stderr_ = false;
}

}  // namespace rota::obs
