#pragma once

#include <string>

/// \file build_info.hpp
/// Build identity baked in at CMake configure time (see src/obs/
/// CMakeLists.txt): project version, git commit and build type. Stamped
/// into every RunManifest and printed by `rota --version` so any result
/// file can be traced back to the exact tree that produced it.

namespace rota::obs {

/// Project version ("1.0.0").
[[nodiscard]] const char* version();

/// Short git commit hash of the configured tree ("unknown" outside git).
[[nodiscard]] const char* git_sha();

/// CMAKE_BUILD_TYPE of this binary ("Release", "Debug", …).
[[nodiscard]] const char* build_type();

/// One-line identity: "rota <version> (<git sha>, <build type>)".
[[nodiscard]] std::string build_info_line();

}  // namespace rota::obs
