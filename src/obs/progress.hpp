#pragma once

#include <chrono>
#include <cstdint>
#include <string>

/// \file progress.hpp
/// Rate-limited ETA reporting for long runs (thousand-iteration wear
/// simulations, Monte Carlo batches). Reports go to stderr so they never
/// contaminate piped stdout, and only when BOTH the global gate is open
/// (CLI --progress) AND stderr is a terminal (or force_tty(), used by
/// tests) — a cron job or CI log never sees carriage-return spinners.
/// A reporter that fails the gate at construction makes tick() a single
/// branch.

namespace rota::obs {

class ProgressReporter {
 public:
  /// \param label prefix shown on the progress line ("wear SN").
  /// \param total total units of work (must be >= 0; 0 disables output).
  ProgressReporter(std::string label, std::int64_t total);
  ~ProgressReporter();
  ProgressReporter(const ProgressReporter&) = delete;
  ProgressReporter& operator=(const ProgressReporter&) = delete;

  /// Record `delta` completed units; prints at most ~4 times/second.
  void tick(std::int64_t delta = 1);

  /// Print the final 100% line and a newline (idempotent; the destructor
  /// calls it too).
  void finish();

  /// Global gate, default off (wired to the CLI --progress flag).
  static void set_enabled(bool on);
  [[nodiscard]] static bool enabled();

  /// Pretend stderr is a TTY (tests capture std::cerr through rdbuf).
  static void force_tty(bool on);

 private:
  void print_line(bool final_line);

  std::string label_;
  std::int64_t total_;
  std::int64_t done_ = 0;
  bool active_ = false;
  bool printed_ = false;
  std::chrono::steady_clock::time_point start_{};
  std::chrono::steady_clock::time_point last_print_{};
};

}  // namespace rota::obs
