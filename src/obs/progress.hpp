#pragma once

#include <chrono>
#include <cstdint>
#include <string>

/// \file progress.hpp
/// Rate-limited ETA reporting for long runs (thousand-iteration wear
/// simulations, Monte Carlo batches). Reports go to stderr so they never
/// contaminate piped stdout, and only when BOTH the global gate is open
/// (CLI --progress) AND stderr is a terminal (or force_tty(), used by
/// tests) — a cron job or CI log never sees carriage-return spinners.
/// A reporter that fails the gate at construction makes tick() a single
/// branch.
///
/// When stderr is NOT a terminal but the structured EventLog is enabled,
/// the reporter degrades to a heartbeat: every few seconds (see
/// set_heartbeat_interval_ms) it logs one info event with percentage,
/// rate, ETA and — when note_checkpoint() is being called — the age of
/// the last checkpoint, so a headless sweep/mc run is observable from its
/// event stream instead of invisible until exit.

namespace rota::obs {

class ProgressReporter {
 public:
  /// \param label prefix shown on the progress line ("wear SN").
  /// \param total total units of work (must be >= 0; 0 disables output).
  ProgressReporter(std::string label, std::int64_t total);
  ~ProgressReporter();
  ProgressReporter(const ProgressReporter&) = delete;
  ProgressReporter& operator=(const ProgressReporter&) = delete;

  /// Record `delta` completed units; prints at most ~4 times/second
  /// (TTY) or logs a heartbeat event per interval (non-TTY + EventLog).
  void tick(std::int64_t delta = 1);

  /// Record that a checkpoint was just persisted; the heartbeat then
  /// reports the last-checkpoint age (sweep/mc call this after each
  /// fi::Checkpoint save).
  void note_checkpoint();

  /// Print the final 100% line and a newline (idempotent; the destructor
  /// calls it too). In heartbeat mode, logs a final completion event.
  void finish();

  /// Global gate, default off (wired to the CLI --progress flag).
  static void set_enabled(bool on);
  [[nodiscard]] static bool enabled();

  /// Pretend stderr is a TTY (tests capture std::cerr through rdbuf).
  static void force_tty(bool on);

  /// Minimum milliseconds between heartbeat events (default 5000;
  /// tests shrink it). Values < 1 clamp to 1.
  static void set_heartbeat_interval_ms(std::int64_t ms);

 private:
  void print_line(bool final_line);
  void log_heartbeat(bool final_line);

  std::string label_;
  std::int64_t total_;
  std::int64_t done_ = 0;
  bool active_ = false;     ///< TTY spinner armed
  bool heartbeat_ = false;  ///< EventLog heartbeat armed
  bool printed_ = false;
  bool heartbeat_logged_ = false;
  bool has_checkpoint_ = false;
  std::chrono::steady_clock::time_point start_{};
  std::chrono::steady_clock::time_point last_print_{};
  std::chrono::steady_clock::time_point last_heartbeat_{};
  std::chrono::steady_clock::time_point last_checkpoint_{};
};

}  // namespace rota::obs
