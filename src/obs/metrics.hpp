#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/thread_annotations.hpp"

/// \file metrics.hpp
/// A process-wide registry of named counters, gauges and value histograms
/// — the measurement layer underneath every expensive path (mapper search,
/// wear fast-forward, Monte Carlo sampling). Designed so that leaving the
/// instrumentation compiled in costs one relaxed atomic load and a branch
/// per call site while disabled (the default): callers pass string_views
/// (no allocation) and every slow path lives behind the enabled() check.
///
/// Thread safety: enabling/recording/reading may happen concurrently from
/// any thread; the registry serializes mutation with a mutex (the
/// instrumented sites are per-layer / per-batch, not per-tile, so lock
/// cost is irrelevant — the disabled fast path is what matters).

namespace rota::obs {

/// Summary of a recorded value distribution (percentiles are computed
/// from all recorded samples, nearest-rank).
struct HistogramSummary {
  std::int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// A consistent copy of the whole registry taken under one lock: the
/// substrate for live snapshots (obs/snapshot.hpp), which need the JSON
/// and OpenMetrics renderings of one instant to agree exactly.
struct MetricsExport {
  std::map<std::string, std::int64_t, std::less<>> counters;
  std::map<std::string, double, std::less<>> gauges;
  std::map<std::string, HistogramSummary, std::less<>> histograms;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The registry the built-in instrumentation reports to.
  static MetricsRegistry& global();

  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Add `delta` to counter `name` (created at zero on first use).
  void add(std::string_view name, std::int64_t delta = 1) {
    if (!enabled()) return;
    add_slow(name, delta);
  }

  /// Set gauge `name` to `value` (last write wins).
  void gauge(std::string_view name, double value) {
    if (!enabled()) return;
    gauge_slow(name, value);
  }

  /// Record one sample into histogram `name`.
  void observe(std::string_view name, double value) {
    if (!enabled()) return;
    observe_slow(name, value);
  }

  /// Current value of a counter (0 if never written).
  [[nodiscard]] std::int64_t counter(std::string_view name) const;

  /// Current value of a gauge (0.0 if never written).
  [[nodiscard]] double gauge_value(std::string_view name) const;

  /// Summary of a histogram (all-zero if never written).
  [[nodiscard]] HistogramSummary histogram(std::string_view name) const;

  /// Every counter, gauge and summarized histogram, copied under a single
  /// lock acquisition so the result is one consistent instant.
  [[nodiscard]] MetricsExport export_all() const;

  /// Sorted names of every metric recorded so far.
  [[nodiscard]] std::vector<std::string> names() const;

  /// Drop all recorded metrics (the enabled flag is untouched).
  void reset();

  /// Emit one JSON object: name -> {"type": "counter"|"gauge"|"histogram",
  /// ...}. Counters carry "value"; gauges "value"; histograms
  /// "count"/"sum"/"min"/"max"/"p50"/"p95"/"p99".
  void write_json(std::ostream& out) const;
  [[nodiscard]] std::string json() const;

  /// Human-readable rendering via util::TextTable (one row per metric).
  [[nodiscard]] std::string table() const;

 private:
  void add_slow(std::string_view name, std::int64_t delta)
      ROTA_EXCLUDES(mu_);
  void gauge_slow(std::string_view name, double value) ROTA_EXCLUDES(mu_);
  void observe_slow(std::string_view name, double value) ROTA_EXCLUDES(mu_);

  /// Lock-free fast-path flag (read before every record); deliberately
  /// outside the capability model — it guards *cost*, not data.
  std::atomic<bool> enabled_{false};
  mutable util::Mutex mu_;
  std::map<std::string, std::int64_t, std::less<>> counters_
      ROTA_GUARDED_BY(mu_);
  std::map<std::string, double, std::less<>> gauges_ ROTA_GUARDED_BY(mu_);
  std::map<std::string, std::vector<double>, std::less<>> histograms_
      ROTA_GUARDED_BY(mu_);
};

/// Emit `ex` as the canonical metrics JSON object (the exact body of
/// MetricsRegistry::write_json). Shared by the exit-time report and the
/// live snapshot publisher so the two renderings can never drift.
void write_metrics_json(std::ostream& out, const MetricsExport& ex);

/// RAII timer: records the elapsed wall time in seconds into histogram
/// `name` on destruction (or stop()). Arms itself only if the registry is
/// enabled at construction, so the disabled cost is one branch.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string_view name,
                       MetricsRegistry& registry = MetricsRegistry::global());
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Record now instead of at scope exit; further calls are no-ops.
  void stop();

 private:
  MetricsRegistry& registry_;
  std::string name_;
  std::chrono::steady_clock::time_point start_{};
  bool armed_ = false;
};

}  // namespace rota::obs
