#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "obs/metrics.hpp"

/// \file manifest.hpp
/// The RunManifest: a reproducibility stamp attached to every experiment,
/// CLI metrics file and bench JSON — accelerator geometry, workload,
/// policy, seed, iteration count, build identity (version / git SHA /
/// build type), UTC start time and wall-clock duration. Two results are
/// comparable across PRs exactly when their manifests say they measured
/// the same thing.

namespace rota::obs {

struct RunManifest {
  std::string tool;      ///< producing binary ("rota", "perf_micro", …)
  std::string command;   ///< the argv tail, joined with spaces
  std::string workload;  ///< Table II abbreviation ("" if n/a)
  std::string policy;    ///< wear policy name ("" if n/a)
  std::string metric;    ///< wear accounting ("alloc"/"cycles", "" if n/a)
  std::int64_t array_width = 0;
  std::int64_t array_height = 0;
  std::int64_t iterations = 0;
  std::uint64_t seed = 0;
  std::string version;        ///< obs::version()
  std::string git_sha;        ///< obs::git_sha()
  std::string build_type;     ///< obs::build_type()
  std::string timestamp_utc;  ///< ISO-8601 UTC start time
  double wall_seconds = 0.0;  ///< run duration, filled before writing
  /// Free-form additions (e.g. "spares", "beta", bench repetitions).
  std::map<std::string, std::string> extra;

  /// One JSON object with every field above (extra keys inlined under
  /// "extra").
  [[nodiscard]] std::string to_json() const;
};

/// Manifest pre-filled with build identity and the current UTC wall
/// clock; callers fill the workload-specific fields.
[[nodiscard]] RunManifest make_run_manifest(std::string tool,
                                            std::string command);

/// The standard machine-readable report: {"manifest": <manifest>,
/// "metrics": <registry contents>}. This is what `rota --metrics FILE`
/// and BENCH_perf.json contain.
[[nodiscard]] std::string metrics_report_json(const RunManifest& manifest,
                                              const MetricsRegistry& registry);

}  // namespace rota::obs
