#include "obs/snapshot.hpp"

#include <functional>
#include <sstream>
#include <utility>

#include "obs/event_log.hpp"
#include "obs/json.hpp"
#include "util/check.hpp"
#include "util/io.hpp"

namespace rota::obs {

double process_uptime_seconds() {
  static const std::chrono::steady_clock::time_point anchor =
      std::chrono::steady_clock::now();
  const auto elapsed = std::chrono::steady_clock::now() - anchor;
  return std::chrono::duration_cast<std::chrono::duration<double>>(elapsed)
      .count();
}

MetricsSnapshot capture_snapshot(const MetricsRegistry& registry,
                                 std::uint64_t seq) {
  MetricsSnapshot snap;
  snap.seq = seq;
  snap.uptime_seconds = process_uptime_seconds();
  snap.metrics = registry.export_all();
  return snap;
}

std::string snapshot_json(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  os << "{\"schema_version\":" << kSchemaVersion
     << ",\"kind\":\"metrics_snapshot\",\"seq\":" << snapshot.seq
     << ",\"uptime_seconds\":" << json_number(snapshot.uptime_seconds)
     << ",\"metrics\":";
  write_metrics_json(os, snapshot.metrics);
  os << "}\n";
  return os.str();
}

std::string openmetrics_name(std::string_view name) {
  std::string out = "rota_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string snapshot_openmetrics(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  // Envelope fields as gauges so a scrape is self-describing without the
  // JSON twin.
  os << "# TYPE rota_snapshot_schema_version gauge\n"
     << "rota_snapshot_schema_version " << kSchemaVersion << '\n'
     << "# TYPE rota_snapshot_seq gauge\n"
     << "rota_snapshot_seq " << snapshot.seq << '\n'
     << "# TYPE rota_uptime_seconds gauge\n"
     << "rota_uptime_seconds " << json_number(snapshot.uptime_seconds) << '\n';
  for (const auto& [name, value] : snapshot.metrics.counters) {
    const std::string om = openmetrics_name(name);
    os << "# TYPE " << om << " counter\n" << om << "_total " << value << '\n';
  }
  for (const auto& [name, value] : snapshot.metrics.gauges) {
    const std::string om = openmetrics_name(name);
    os << "# TYPE " << om << " gauge\n" << om << ' ' << json_number(value)
       << '\n';
  }
  for (const auto& [name, s] : snapshot.metrics.histograms) {
    const std::string om = openmetrics_name(name);
    os << "# TYPE " << om << " summary\n"
       << om << "{quantile=\"0.5\"} " << json_number(s.p50) << '\n'
       << om << "{quantile=\"0.95\"} " << json_number(s.p95) << '\n'
       << om << "{quantile=\"0.99\"} " << json_number(s.p99) << '\n'
       << om << "_sum " << json_number(s.sum) << '\n'
       << om << "_count " << s.count << '\n';
  }
  os << "# EOF\n";
  return os.str();
}

SnapshotPublisher::SnapshotPublisher(Options options,
                                     MetricsRegistry& registry)
    : options_(std::move(options)), registry_(registry) {
  ROTA_REQUIRE(!options_.json_path.empty(),
               "SnapshotPublisher needs a JSON path");
  ROTA_REQUIRE(!options_.openmetrics_path.empty(),
               "SnapshotPublisher needs an OpenMetrics path");
  ROTA_REQUIRE(options_.interval.count() > 0,
               "snapshot interval must be positive");
}

SnapshotPublisher::~SnapshotPublisher() { stop(); }

void SnapshotPublisher::start() {
  {
    const util::MutexLock lock(mu_);
    if (stopped_) return;
  }
  if (thread_.joinable()) return;
  thread_ = std::thread([this] { run(); });
}

void SnapshotPublisher::stop() {
  {
    const util::MutexLock lock(mu_);
    if (stopped_) return;
    stopped_ = true;
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) {
    thread_.join();
    thread_ = std::thread();
  }
  // The final snapshot: the exit state is always on disk, even when the
  // publisher ran in exit-only mode (start() never called) or the
  // interval never elapsed.
  publish_now();
}

void SnapshotPublisher::run() {
  util::MutexLock lock(mu_);
  while (!stop_requested_) {
    // A spurious or notify-driven early wakeup just re-checks the stop
    // flag; an extra sample is harmless, a missed stop is not.
    cv_.wait_for(lock, mu_, options_.interval);
    if (stop_requested_) break;
    lock.unlock();
    publish_now();
    lock.lock();
  }
}

bool SnapshotPublisher::publish_now() {
  const std::uint64_t seq =
      next_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  const MetricsSnapshot snap = capture_snapshot(registry_, seq);
  const std::string json = snapshot_json(snap);
  const std::string om = snapshot_openmetrics(snap);
  const auto write_one = [&](const std::string& path,
                             const std::string& body) {
    util::retry_io(
        options_.retry, std::hash<std::string>{}(path),
        [&] { util::write_file_atomic(path, body); },
        [&](int, const util::io_error&) {
          registry_.add("obs.snapshot.retries");
        });
  };
  try {
    write_one(options_.json_path, json);
    write_one(options_.openmetrics_path, om);
  } catch (const util::io_error& e) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    registry_.add("obs.snapshot.failures");
    log_event(Severity::kWarn, "obs",
              std::string("snapshot publish failed: ") + e.what());
    return false;
  }
  published_.fetch_add(1, std::memory_order_relaxed);
  registry_.add("obs.snapshot.published");
  return true;
}

}  // namespace rota::obs
