#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace rota::obs {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char ch : text) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

std::string json_quote(std::string_view text) {
  return '"' + json_escape(text) + '"';
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

namespace {

/// Cursor over the document; each parse_* consumes one construct and
/// returns false on the first violation.
struct Parser {
  std::string_view text;
  std::size_t pos = 0;

  [[nodiscard]] bool done() const { return pos >= text.size(); }
  [[nodiscard]] char peek() const { return text[pos]; }

  void skip_ws() {
    while (!done() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                       peek() == '\r'))
      ++pos;
  }

  bool parse_value() {  // NOLINT(misc-no-recursion)
    skip_ws();
    if (done()) return false;
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return parse_string();
      case 't':
        return parse_literal("true");
      case 'f':
        return parse_literal("false");
      case 'n':
        return parse_literal("null");
      default:
        return parse_number();
    }
  }

  bool parse_literal(std::string_view lit) {
    if (text.substr(pos, lit.size()) != lit) return false;
    pos += lit.size();
    return true;
  }

  bool parse_string() {
    if (done() || peek() != '"') return false;
    ++pos;
    while (!done()) {
      const char ch = peek();
      if (ch == '"') {
        ++pos;
        return true;
      }
      if (static_cast<unsigned char>(ch) < 0x20) return false;
      if (ch == '\\') {
        ++pos;
        if (done()) return false;
        const char esc = peek();
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos;
            if (done() || std::isxdigit(static_cast<unsigned char>(peek())) == 0)
              return false;
          }
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return false;
        }
      }
      ++pos;
    }
    return false;  // unterminated
  }

  bool parse_number() {
    const std::size_t start = pos;
    if (!done() && peek() == '-') ++pos;
    if (done() || std::isdigit(static_cast<unsigned char>(peek())) == 0)
      return false;
    if (peek() == '0') {
      ++pos;
    } else {
      while (!done() && std::isdigit(static_cast<unsigned char>(peek())) != 0)
        ++pos;
    }
    if (!done() && peek() == '.') {
      ++pos;
      if (done() || std::isdigit(static_cast<unsigned char>(peek())) == 0)
        return false;
      while (!done() && std::isdigit(static_cast<unsigned char>(peek())) != 0)
        ++pos;
    }
    if (!done() && (peek() == 'e' || peek() == 'E')) {
      ++pos;
      if (!done() && (peek() == '+' || peek() == '-')) ++pos;
      if (done() || std::isdigit(static_cast<unsigned char>(peek())) == 0)
        return false;
      while (!done() && std::isdigit(static_cast<unsigned char>(peek())) != 0)
        ++pos;
    }
    return pos > start;
  }

  bool parse_array() {  // NOLINT(misc-no-recursion)
    ++pos;  // '['
    skip_ws();
    if (!done() && peek() == ']') {
      ++pos;
      return true;
    }
    while (true) {
      if (!parse_value()) return false;
      skip_ws();
      if (done()) return false;
      if (peek() == ']') {
        ++pos;
        return true;
      }
      if (peek() != ',') return false;
      ++pos;
    }
  }

  bool parse_object() {  // NOLINT(misc-no-recursion)
    ++pos;  // '{'
    skip_ws();
    if (!done() && peek() == '}') {
      ++pos;
      return true;
    }
    while (true) {
      skip_ws();
      if (!parse_string()) return false;
      skip_ws();
      if (done() || peek() != ':') return false;
      ++pos;
      if (!parse_value()) return false;
      skip_ws();
      if (done()) return false;
      if (peek() == '}') {
        ++pos;
        return true;
      }
      if (peek() != ',') return false;
      ++pos;
    }
  }
};

}  // namespace

bool json_valid(std::string_view text) {
  Parser p{text};
  if (!p.parse_value()) return false;
  p.skip_ws();
  return p.done();
}

}  // namespace rota::obs
