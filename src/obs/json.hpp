#pragma once

#include <string>
#include <string_view>

/// \file json.hpp
/// Minimal JSON emission helpers shared by the observability sinks
/// (metrics, trace events, run manifests) plus a strict validator used by
/// the test suite and the CI smoke checks. No external dependency: the
/// JSON we emit is flat and machine-generated, so a small hand-rolled
/// writer is both sufficient and auditable.

namespace rota::obs {

/// Version of every JSON envelope this repo emits or accepts: the
/// {manifest, metrics} report, BENCH_perf.json, the trace envelope and
/// the svc request/reply protocol. Unversioned envelopes from before the
/// v1 API redesign are retroactively version 1; bump this whenever any
/// envelope's layout changes so downstream tooling (tools/bench_compare.py,
/// CI smoke checks, svc clients) fails loudly on drift instead of
/// misreading fields.
inline constexpr int kSchemaVersion = 2;

/// Escape a string for use inside a JSON string literal (quotes, control
/// characters and backslashes; UTF-8 passes through untouched).
[[nodiscard]] std::string json_escape(std::string_view text);

/// `text` escaped and wrapped in double quotes.
[[nodiscard]] std::string json_quote(std::string_view text);

/// Format a double as a JSON number. Non-finite values (which JSON cannot
/// represent) render as `null`.
[[nodiscard]] std::string json_number(double value);

/// Strict recursive-descent validation of a complete JSON document
/// (object, array, string, number, true/false/null; no trailing garbage).
/// Used by tests to prove the emitted metrics/trace files parse.
[[nodiscard]] bool json_valid(std::string_view text);

}  // namespace rota::obs
