#include "obs/manifest.hpp"

#include <ctime>
#include <sstream>

#include "kern/kern.hpp"
#include "obs/build_info.hpp"
#include "obs/json.hpp"

namespace rota::obs {

namespace {

std::string utc_now_iso8601() {
  const std::time_t now = std::time(nullptr);
  std::tm tm_utc{};
#if defined(_WIN32)
  gmtime_s(&tm_utc, &now);
#else
  gmtime_r(&now, &tm_utc);
#endif
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  return buf;
}

}  // namespace

std::string RunManifest::to_json() const {
  std::ostringstream os;
  os << '{' << "\"tool\":" << json_quote(tool)
     << ",\"command\":" << json_quote(command)
     << ",\"workload\":" << json_quote(workload)
     << ",\"policy\":" << json_quote(policy)
     << ",\"metric\":" << json_quote(metric)
     << ",\"array_width\":" << array_width
     << ",\"array_height\":" << array_height
     << ",\"iterations\":" << iterations << ",\"seed\":" << seed
     << ",\"version\":" << json_quote(version)
     << ",\"git_sha\":" << json_quote(git_sha)
     << ",\"build_type\":" << json_quote(build_type)
     << ",\"timestamp_utc\":" << json_quote(timestamp_utc)
     << ",\"wall_seconds\":" << json_number(wall_seconds) << ",\"extra\":{";
  bool first = true;
  for (const auto& [key, value] : extra) {
    if (!first) os << ',';
    first = false;
    os << json_quote(key) << ':' << json_quote(value);
  }
  os << "}}";
  return os.str();
}

RunManifest make_run_manifest(std::string tool, std::string command) {
  RunManifest m;
  m.tool = std::move(tool);
  m.command = std::move(command);
  m.version = version();
  m.git_sha = git_sha();
  m.build_type = build_type();
  m.timestamp_utc = utc_now_iso8601();
  // Which SIMD kernels this binary carries and which it actually runs
  // (DESIGN.md §14): results are bit-identical either way, but perf
  // numbers are only comparable between manifests that agree here.
  m.extra["kern.simd_compiled"] = std::string(kern::compiled_simd());
  m.extra["kern.simd_active"] = std::string(kern::isa_name(kern::active_isa()));
  // Mapper objective provenance (DESIGN.md §15). "energy" is the
  // historical default; producers running another objective overwrite
  // this, and perf numbers are only comparable between manifests that
  // agree here (bench_compare.py skips gating on a mismatch).
  m.extra["objective.id"] = "energy";
  return m;
}

std::string metrics_report_json(const RunManifest& manifest,
                                const MetricsRegistry& registry) {
  std::ostringstream os;
  os << "{\"schema_version\":" << kSchemaVersion
     << ",\"manifest\":" << manifest.to_json()
     << ",\"metrics\":" << registry.json() << "}\n";
  return os.str();
}

}  // namespace rota::obs
