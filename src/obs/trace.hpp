#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "util/thread_annotations.hpp"

/// \file trace.hpp
/// Chrome trace-event recording: scoped spans collected in memory and
/// written as a JSON trace-event array that loads directly in Perfetto /
/// chrome://tracing, rendering a whole experiment — per-layer mapper
/// searches, per-policy wear simulation, Monte Carlo batches — as a flame
/// timeline. Disabled by default; a disabled TraceSpan costs one relaxed
/// atomic load and a branch.

namespace rota::obs {

/// One trace event. `phase` follows the trace-event format: 'X' complete
/// (ts + dur), 'i' instant, 'M' metadata.
struct TraceEvent {
  std::string name;
  std::string category;
  char phase = 'X';
  std::int64_t ts_us = 0;
  std::int64_t dur_us = 0;
  std::int32_t tid = 0;
  /// Request sequence for request-scoped spans (svc); rendered as
  /// args.request so Perfetto can group one request's parse → queue →
  /// compute → reply spans. 0 = not request-scoped.
  std::uint64_t request_seq = 0;
};

class Tracer {
 public:
  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The tracer the built-in instrumentation reports to.
  static Tracer& global();

  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  /// Microseconds since this tracer's epoch (its construction).
  [[nodiscard]] std::int64_t now_us() const;

  /// Record a completed span (thread id is taken from the calling thread).
  /// `request_seq` != 0 tags the span with the svc request it served.
  void complete(std::string_view name, std::string_view category,
                std::int64_t ts_us, std::int64_t dur_us,
                std::uint64_t request_seq = 0);

  /// Record an instant event at the current time.
  void instant(std::string_view name, std::string_view category);

  [[nodiscard]] std::size_t event_count() const;

  /// Drop all recorded events (the enabled flag is untouched).
  void reset();

  /// Emit the trace as a versioned envelope —
  /// {"schema_version":N,"traceEvents":[...]} — using the trace-event
  /// format's object form (loadable by chrome://tracing and Perfetto).
  /// The array holds process metadata first, then every recorded event.
  void write_json(std::ostream& out) const;
  [[nodiscard]] std::string json() const;

  /// write_json() to `path`; throws util::io_error naming the file on
  /// open/write failure.
  void write_file(const std::string& path) const;

 private:
  /// Lock-free fast-path flag (read before every record); deliberately
  /// outside the capability model — it guards *cost*, not data.
  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  mutable util::Mutex mu_;
  std::vector<TraceEvent> events_ ROTA_GUARDED_BY(mu_);
};

/// RAII span: captures the start time at construction and records a
/// complete ('X') event at destruction. Arms itself only if the tracer is
/// enabled at construction; name/category are copied only when armed.
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name, std::string_view category = "rota",
                     Tracer& tracer = Tracer::global());
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Tag the span with the svc request it serves (rendered as
  /// args.request); no-op when the span is disarmed.
  void set_request(std::uint64_t request_seq) { request_seq_ = request_seq; }

 private:
  Tracer& tracer_;
  std::string name_;
  std::string category_;
  std::int64_t start_us_ = -1;
  std::uint64_t request_seq_ = 0;
};

}  // namespace rota::obs
