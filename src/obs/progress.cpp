#include "obs/progress.hpp"

#include <atomic>
#include <iostream>
#include <sstream>

#if !defined(_WIN32)
#include <unistd.h>
#endif

#include "obs/event_log.hpp"
#include "util/table.hpp"

namespace rota::obs {

namespace {

std::atomic<bool> g_enabled{false};
std::atomic<bool> g_force_tty{false};
std::atomic<std::int64_t> g_heartbeat_interval_ms{5000};

bool stderr_is_tty() {
#if defined(_WIN32)
  return false;
#else
  return isatty(STDERR_FILENO) != 0;
#endif
}

constexpr auto kMinPrintInterval = std::chrono::milliseconds(250);

double seconds_between(std::chrono::steady_clock::time_point from,
                       std::chrono::steady_clock::time_point to) {
  return std::chrono::duration_cast<std::chrono::duration<double>>(to - from)
      .count();
}

}  // namespace

void ProgressReporter::set_enabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}

bool ProgressReporter::enabled() {
  return g_enabled.load(std::memory_order_relaxed);
}

void ProgressReporter::force_tty(bool on) {
  g_force_tty.store(on, std::memory_order_relaxed);
}

void ProgressReporter::set_heartbeat_interval_ms(std::int64_t ms) {
  g_heartbeat_interval_ms.store(ms < 1 ? 1 : ms, std::memory_order_relaxed);
}

ProgressReporter::ProgressReporter(std::string label, std::int64_t total)
    : label_(std::move(label)), total_(total) {
  const bool tty =
      g_force_tty.load(std::memory_order_relaxed) || stderr_is_tty();
  active_ = enabled() && total_ > 0 && tty;
  heartbeat_ = !active_ && total_ > 0 && !tty && EventLog::global().enabled();
  if (!active_ && !heartbeat_) return;
  start_ = std::chrono::steady_clock::now();
  last_print_ = start_ - kMinPrintInterval;  // first tick prints immediately
  last_heartbeat_ = start_;  // first heartbeat only after one interval
}

void ProgressReporter::tick(std::int64_t delta) {
  if (!active_ && !heartbeat_) return;
  done_ += delta;
  const auto now = std::chrono::steady_clock::now();
  if (active_) {
    if (now - last_print_ < kMinPrintInterval && done_ < total_) return;
    last_print_ = now;
    print_line(false);
    return;
  }
  const auto interval = std::chrono::milliseconds(
      g_heartbeat_interval_ms.load(std::memory_order_relaxed));
  if (now - last_heartbeat_ < interval) return;
  last_heartbeat_ = now;
  log_heartbeat(false);
}

void ProgressReporter::note_checkpoint() {
  if (!active_ && !heartbeat_) return;
  has_checkpoint_ = true;
  last_checkpoint_ = std::chrono::steady_clock::now();
}

void ProgressReporter::print_line(bool final_line) {
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - start_)
          .count();
  const double rate = elapsed > 0.0 ? static_cast<double>(done_) / elapsed : 0.0;
  const std::int64_t remaining = total_ - done_;
  std::ostringstream os;
  os << '\r' << label_ << ' '
     << (total_ > 0 ? 100 * done_ / total_ : 0) << "% (" << done_ << '/'
     << total_;
  if (rate > 0.0) {
    os << ", " << util::fmt(rate, 1) << "/s, ETA "
       << util::fmt(remaining > 0 ? static_cast<double>(remaining) / rate
                                  : 0.0,
                    0)
       << "s";
  }
  os << ")   ";
  if (final_line) os << '\n';
  std::cerr << os.str() << std::flush;
  printed_ = true;
}

void ProgressReporter::log_heartbeat(bool final_line) {
  const auto now = std::chrono::steady_clock::now();
  const double elapsed = seconds_between(start_, now);
  const double rate =
      elapsed > 0.0 ? static_cast<double>(done_) / elapsed : 0.0;
  const std::int64_t remaining = total_ - done_;
  std::ostringstream os;
  os << label_ << ' ' << (total_ > 0 ? 100 * done_ / total_ : 0) << "% ("
     << done_ << '/' << total_;
  if (rate > 0.0) {
    os << ", " << util::fmt(rate, 1) << "/s, ETA "
       << util::fmt(remaining > 0 ? static_cast<double>(remaining) / rate
                                  : 0.0,
                    0)
       << "s";
  }
  if (has_checkpoint_) {
    os << ", last checkpoint " << util::fmt(seconds_between(last_checkpoint_, now), 0)
       << "s ago";
  }
  os << ')';
  if (final_line) os << " done";
  log_event(Severity::kInfo, "obs", os.str());
  heartbeat_logged_ = true;
}

void ProgressReporter::finish() {
  if (active_ && printed_) {
    print_line(true);
  } else if (heartbeat_ && heartbeat_logged_) {
    // A completion event only for runs long enough to have heartbeated;
    // short runs stay silent instead of spamming one event per cell.
    log_heartbeat(true);
  }
  active_ = false;
  heartbeat_ = false;
}

ProgressReporter::~ProgressReporter() { finish(); }

}  // namespace rota::obs
