#include "obs/progress.hpp"

#include <atomic>
#include <iostream>
#include <sstream>

#if !defined(_WIN32)
#include <unistd.h>
#endif

#include "util/table.hpp"

namespace rota::obs {

namespace {

std::atomic<bool> g_enabled{false};
std::atomic<bool> g_force_tty{false};

bool stderr_is_tty() {
#if defined(_WIN32)
  return false;
#else
  return isatty(STDERR_FILENO) != 0;
#endif
}

constexpr auto kMinPrintInterval = std::chrono::milliseconds(250);

}  // namespace

void ProgressReporter::set_enabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}

bool ProgressReporter::enabled() {
  return g_enabled.load(std::memory_order_relaxed);
}

void ProgressReporter::force_tty(bool on) {
  g_force_tty.store(on, std::memory_order_relaxed);
}

ProgressReporter::ProgressReporter(std::string label, std::int64_t total)
    : label_(std::move(label)), total_(total) {
  active_ = enabled() && total_ > 0 &&
            (g_force_tty.load(std::memory_order_relaxed) || stderr_is_tty());
  if (!active_) return;
  start_ = std::chrono::steady_clock::now();
  last_print_ = start_ - kMinPrintInterval;  // first tick prints immediately
}

void ProgressReporter::tick(std::int64_t delta) {
  if (!active_) return;
  done_ += delta;
  const auto now = std::chrono::steady_clock::now();
  if (now - last_print_ < kMinPrintInterval && done_ < total_) return;
  last_print_ = now;
  print_line(false);
}

void ProgressReporter::print_line(bool final_line) {
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - start_)
          .count();
  const double rate = elapsed > 0.0 ? static_cast<double>(done_) / elapsed : 0.0;
  const std::int64_t remaining = total_ - done_;
  std::ostringstream os;
  os << '\r' << label_ << ' '
     << (total_ > 0 ? 100 * done_ / total_ : 0) << "% (" << done_ << '/'
     << total_;
  if (rate > 0.0) {
    os << ", " << util::fmt(rate, 1) << "/s, ETA "
       << util::fmt(remaining > 0 ? static_cast<double>(remaining) / rate
                                  : 0.0,
                    0)
       << "s";
  }
  os << ")   ";
  if (final_line) os << '\n';
  std::cerr << os.str() << std::flush;
  printed_ = true;
}

void ProgressReporter::finish() {
  if (!active_ || !printed_) {
    active_ = false;
    return;
  }
  print_line(true);
  active_ = false;
}

ProgressReporter::~ProgressReporter() { finish(); }

}  // namespace rota::obs
