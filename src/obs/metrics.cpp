#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "obs/json.hpp"
#include "util/table.hpp"

namespace rota::obs {

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

void MetricsRegistry::add_slow(std::string_view name, std::int64_t delta) {
  const util::MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void MetricsRegistry::gauge_slow(std::string_view name, double value) {
  const util::MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

void MetricsRegistry::observe_slow(std::string_view name, double value) {
  const util::MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::vector<double>{}).first;
  }
  it->second.push_back(value);
}

std::int64_t MetricsRegistry::counter(std::string_view name) const {
  const util::MutexLock lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::gauge_value(std::string_view name) const {
  const util::MutexLock lock(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

namespace {

/// Nearest-rank percentile of a sorted sample vector: the smallest value
/// with at least q of the mass at or below it.
double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  const std::size_t idx = rank == 0 ? 0 : rank - 1;
  return sorted[std::min(idx, sorted.size() - 1)];
}

HistogramSummary summarize(const std::vector<double>& samples) {
  HistogramSummary s;
  if (samples.empty()) return s;
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  s.count = static_cast<std::int64_t>(sorted.size());
  for (double v : sorted) s.sum += v;
  s.min = sorted.front();
  s.max = sorted.back();
  s.p50 = percentile(sorted, 0.50);
  s.p95 = percentile(sorted, 0.95);
  s.p99 = percentile(sorted, 0.99);
  return s;
}

}  // namespace

HistogramSummary MetricsRegistry::histogram(std::string_view name) const {
  std::vector<double> samples;
  {
    const util::MutexLock lock(mu_);
    const auto it = histograms_.find(name);
    if (it != histograms_.end()) samples = it->second;
  }
  return summarize(samples);
}

MetricsExport MetricsRegistry::export_all() const {
  MetricsExport out;
  std::map<std::string, std::vector<double>, std::less<>> histograms;
  {
    const util::MutexLock lock(mu_);
    out.counters = counters_;
    out.gauges = gauges_;
    histograms = histograms_;
  }
  // Summarize outside the lock: sorting every sample vector is the
  // expensive part and needs only the copies.
  for (const auto& [name, samples] : histograms)
    out.histograms.emplace(name, summarize(samples));
  return out;
}

std::vector<std::string> MetricsRegistry::names() const {
  const util::MutexLock lock(mu_);
  std::vector<std::string> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, _] : counters_) out.push_back(name);
  for (const auto& [name, _] : gauges_) out.push_back(name);
  for (const auto& [name, _] : histograms_) out.push_back(name);
  std::sort(out.begin(), out.end());
  return out;
}

void MetricsRegistry::reset() {
  const util::MutexLock lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

void write_metrics_json(std::ostream& out, const MetricsExport& ex) {
  out << '{';
  bool first = true;
  auto sep = [&] {
    if (!first) out << ',';
    first = false;
  };
  for (const auto& [name, value] : ex.counters) {
    sep();
    out << json_quote(name) << ":{\"type\":\"counter\",\"value\":" << value
        << '}';
  }
  for (const auto& [name, value] : ex.gauges) {
    sep();
    out << json_quote(name) << ":{\"type\":\"gauge\",\"value\":"
        << json_number(value) << '}';
  }
  for (const auto& [name, s] : ex.histograms) {
    sep();
    out << json_quote(name) << ":{\"type\":\"histogram\",\"count\":" << s.count
        << ",\"sum\":" << json_number(s.sum)
        << ",\"min\":" << json_number(s.min)
        << ",\"max\":" << json_number(s.max)
        << ",\"p50\":" << json_number(s.p50)
        << ",\"p95\":" << json_number(s.p95)
        << ",\"p99\":" << json_number(s.p99) << '}';
  }
  out << '}';
}

void MetricsRegistry::write_json(std::ostream& out) const {
  write_metrics_json(out, export_all());
}

std::string MetricsRegistry::json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

std::string MetricsRegistry::table() const {
  util::TextTable tbl({"metric", "type", "value"});
  const MetricsExport ex = export_all();
  for (const auto& [name, value] : ex.counters)
    tbl.add_row({name, "counter", std::to_string(value)});
  for (const auto& [name, value] : ex.gauges)
    tbl.add_row({name, "gauge", util::fmt(value, 4)});
  for (const auto& [name, s] : ex.histograms) {
    tbl.add_row({name, "histogram",
                 "n=" + std::to_string(s.count) + " sum=" + util::fmt(s.sum, 4) +
                     " p50=" + util::fmt(s.p50, 4) +
                     " p95=" + util::fmt(s.p95, 4) +
                     " p99=" + util::fmt(s.p99, 4)});
  }
  return tbl.str();
}

ScopedTimer::ScopedTimer(std::string_view name, MetricsRegistry& registry)
    : registry_(registry) {
  if (!registry_.enabled()) return;
  name_ = std::string(name);
  start_ = std::chrono::steady_clock::now();
  armed_ = true;
}

void ScopedTimer::stop() {
  if (!armed_) return;
  armed_ = false;
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  registry_.observe(
      name_,
      std::chrono::duration_cast<std::chrono::duration<double>>(elapsed)
          .count());
}

ScopedTimer::~ScopedTimer() { stop(); }

}  // namespace rota::obs
