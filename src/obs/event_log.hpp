#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/thread_annotations.hpp"

/// \file event_log.hpp
/// Structured, machine-readable event logging — the replacement for the
/// ad-hoc stderr notices that used to be sprinkled through svc/fi/cli.
/// Every event carries a monotonic sequence number, a steady-clock
/// timestamp relative to the log's construction, a severity, the emitting
/// component and (when request-scoped) the svc request sequence + client
/// id, and renders as one JSON line. Events land in a bounded in-memory
/// ring (always, when enabled) and optionally in a JSON-lines file sink
/// with size-based rotation (`path` -> `path.1`, one generation kept).
///
/// Discipline (enforced by tools/rota_lint.py's log-discipline rule):
/// library code must report through EventLog, never raw stderr; only the
/// CLI front-end may echo events to the terminal, and it does so via
/// set_echo_stderr() so the rendering lives here, in one place.
///
/// Cost: a disabled EventLog is one relaxed atomic load and a branch per
/// call site, the same contract as MetricsRegistry / Tracer.

namespace rota::obs {

enum class Severity : std::uint8_t { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

[[nodiscard]] std::string_view to_string(Severity severity);

/// One structured event.
struct Event {
  std::uint64_t seq = 0;      ///< Monotonic per-log sequence (starts at 1).
  double t_s = 0.0;           ///< Steady-clock seconds since log epoch.
  Severity severity = Severity::kInfo;
  std::string component;      ///< Emitting subsystem ("svc", "fi", "cli", ...).
  std::string message;
  std::uint64_t request_seq = 0;  ///< svc request sequence; 0 = not scoped.
  std::string request_id;         ///< Client-supplied id; may be empty.
};

/// `event` as one JSON object (no trailing newline): schema_version,
/// seq, t_s, severity, component, message, and — only when request-scoped
/// — request_seq / request_id.
[[nodiscard]] std::string to_json_line(const Event& event);

class EventLog {
 public:
  /// Events retained in memory; older entries are overwritten.
  static constexpr std::size_t kRingCapacity = 1024;
  /// Default file-sink rotation threshold.
  static constexpr std::uint64_t kDefaultRotateBytes = 1u << 20;

  EventLog();
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// The log the built-in instrumentation reports to.
  static EventLog& global();

  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  /// Route events to a JSON-lines file (appending; also enables the log).
  /// When the sink grows past `rotate_bytes` it is renamed to `path.1`
  /// (replacing any previous generation) and a fresh file is started.
  void set_sink(std::string path,
                std::uint64_t rotate_bytes = kDefaultRotateBytes)
      ROTA_EXCLUDES(mu_);
  void clear_sink() ROTA_EXCLUDES(mu_);

  /// Mirror kWarn/kError events to stderr as `rota: [component] message`
  /// lines — the CLI front-end's terminal rendering. Off by default so
  /// library callers can never write to a stream they do not own.
  void set_echo_stderr(bool on) ROTA_EXCLUDES(mu_);

  /// Record one event. `request_seq`/`request_id` tag request-scoped
  /// events (svc); leave defaulted elsewhere.
  void log(Severity severity, std::string_view component,
           std::string_view message, std::uint64_t request_seq = 0,
           std::string_view request_id = {}) {
    if (!enabled()) return;
    log_slow(severity, component, message, request_seq, request_id);
  }

  /// Ring contents, oldest first.
  [[nodiscard]] std::vector<Event> recent() const ROTA_EXCLUDES(mu_);

  /// Events recorded since construction/reset (ring may hold fewer).
  [[nodiscard]] std::uint64_t total_logged() const ROTA_EXCLUDES(mu_);

  /// Sink rotations performed (0 until the first rollover).
  [[nodiscard]] std::uint64_t rotations() const ROTA_EXCLUDES(mu_);

  /// Append failures swallowed (a logger cannot log its own failure).
  [[nodiscard]] std::uint64_t sink_errors() const ROTA_EXCLUDES(mu_);

  /// Drop ring + counters and detach the sink (enabled flag untouched).
  void reset() ROTA_EXCLUDES(mu_);

 private:
  void log_slow(Severity severity, std::string_view component,
                std::string_view message, std::uint64_t request_seq,
                std::string_view request_id) ROTA_EXCLUDES(mu_);
  void append_to_sink(const std::string& line) ROTA_REQUIRES(mu_);

  /// Lock-free fast-path flag (read before every record); deliberately
  /// outside the capability model — it guards *cost*, not data.
  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  mutable util::Mutex mu_;
  std::uint64_t next_seq_ ROTA_GUARDED_BY(mu_) = 1;
  std::vector<Event> ring_ ROTA_GUARDED_BY(mu_);
  std::size_t ring_next_ ROTA_GUARDED_BY(mu_) = 0;
  std::string sink_path_ ROTA_GUARDED_BY(mu_);
  std::uint64_t rotate_bytes_ ROTA_GUARDED_BY(mu_) = kDefaultRotateBytes;
  std::uint64_t sink_bytes_ ROTA_GUARDED_BY(mu_) = 0;
  std::uint64_t rotations_ ROTA_GUARDED_BY(mu_) = 0;
  std::uint64_t sink_errors_ ROTA_GUARDED_BY(mu_) = 0;
  bool echo_stderr_ ROTA_GUARDED_BY(mu_) = false;
};

/// Convenience front-end over EventLog::global().
inline void log_event(Severity severity, std::string_view component,
                      std::string_view message, std::uint64_t request_seq = 0,
                      std::string_view request_id = {}) {
  EventLog::global().log(severity, component, message, request_seq,
                         request_id);
}

}  // namespace rota::obs
