#include "sched/cost.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/math.hpp"

namespace rota::sched {

using util::ceil_div;

CostModel::CostModel(arch::AcceleratorConfig cfg, arch::EnergyModel energy)
    : cfg_(std::move(cfg)), energy_(energy) {
  cfg_.validate();
}

CostResult CostModel::evaluate(const nn::LayerSpec& layer,
                               const Mapping& m) const {
  CostResult res;

  const std::int64_t n = layer.batch;
  const std::int64_t k = layer.out_channels;
  const std::int64_t cg = layer.channels_per_group();
  const std::int64_t g = layer.groups;
  const std::int64_t p = layer.out_h();
  const std::int64_t q = layer.out_w();
  const std::int64_t r = layer.kernel_h;
  const std::int64_t s = layer.kernel_w;

  // ---- Feasibility ------------------------------------------------------
  if (m.sx < 1 || m.sx > cfg_.array_width) return res;
  if (m.sy < 1 || m.sy > cfg_.array_height) return res;
  const std::int64_t bound_x = (m.dim_x == SpatialX::kOutChannels) ? k : q;
  const std::int64_t bound_y = (m.dim_y == SpatialY::kOutHeight) ? p : cg;
  if (m.sx > bound_x || m.sy > bound_y) return res;
  if (m.lb_c < 1 || m.lb_c > cg) return res;
  if (m.lb_q < 1 || m.lb_q > q) return res;
  if (m.lb_s < 1 || m.lb_s > s) return res;

  // Per-PE buffer residency. The input buffer is modeled as a sliding
  // window of lb_s filter-column taps per resident input channel; the
  // weight buffer holds one output channel's lb_c×R×lb_s filter slice;
  // the output buffer holds the lb_q partial sums a PE owns.
  if (m.lb_c * r * m.lb_s > cfg_.lb_weight_words()) return res;
  if (m.lb_c * m.lb_s > cfg_.lb_input_words()) return res;
  if (m.lb_q > cfg_.lb_output_words()) return res;

  // ---- Loop tiling ------------------------------------------------------
  const std::int64_t k_cov = (m.dim_x == SpatialX::kOutChannels) ? m.sx : 1;
  const std::int64_t q_spatial = (m.dim_x == SpatialX::kOutWidth) ? m.sx : 1;
  const std::int64_t p_cov = (m.dim_y == SpatialY::kOutHeight) ? m.sy : 1;
  const std::int64_t c_spatial =
      (m.dim_y == SpatialY::kInChannels) ? m.sy : 1;
  const std::int64_t q_cov = q_spatial * m.lb_q;
  const std::int64_t c_cov = c_spatial * m.lb_c;

  const std::int64_t tk = ceil_div(k, k_cov);
  const std::int64_t tp = ceil_div(p, p_cov);
  const std::int64_t tq = ceil_div(q, q_cov);
  const std::int64_t tc = ceil_div(cg, c_cov);
  const std::int64_t ts = ceil_div(s, m.lb_s);
  const std::int64_t red_steps = tc * ts;
  const std::int64_t output_tiles = n * tk * tp * tq;
  const std::int64_t lb_dispatches = output_tiles * red_steps;
  res.output_tiles = output_tiles;

  // Padded bounds: traffic and tile counts are charged at the padded size,
  // which is how imperfect factors pay for their waste.
  const std::int64_t k_pad = tk * k_cov;
  const std::int64_t p_pad = tp * p_cov;
  const std::int64_t q_pad = tq * q_cov;
  const std::int64_t cg_pad = tc * c_cov;
  const std::int64_t s_pad = ts * m.lb_s;

  // ---- Per-dispatch footprints (words) -----------------------------------
  const std::int64_t in_rows = (p_cov - 1) * layer.stride_h + r;
  const std::int64_t in_cols = (q_cov - 1) * layer.stride_w + m.lb_s;
  // Groups spanned by one column-tile of output channels: a dense conv
  // shares one input slice across all columns; a depthwise conv needs a
  // distinct channel per column.
  const std::int64_t k_per_group = std::max<std::int64_t>(1, k / g);
  const std::int64_t g_span =
      std::min<std::int64_t>(g, ceil_div(k_cov, k_per_group));
  const std::int64_t in_disp = c_cov * g_span * in_rows * in_cols;
  const std::int64_t w_disp = k_cov * m.lb_c * c_spatial * r * m.lb_s;
  const std::int64_t out_disp = k_cov * p_cov * q_cov;

  // GLB must double-buffer one dispatch working set.
  if (2 * (in_disp + w_disp + out_disp) > cfg_.glb_words()) return res;

  // ---- Access counts ------------------------------------------------------
  arch::AccessCounts& acc = res.accesses;
  acc.macs = layer.macs();
  // Each MAC reads an input and a weight and updates a partial sum in the
  // PE-local buffers.
  acc.lb_accesses = 3 * acc.macs;
  // Spatial reduction moves partial sums down each column ring.
  acc.inter_pe_hops =
      (c_spatial > 1) ? lb_dispatches * m.sx * (c_spatial - 1) * m.lb_q : 0;

  acc.glb_accesses = lb_dispatches * (in_disp + w_disp);
  const std::int64_t out_padded = n * k_pad * p_pad * q_pad;
  acc.glb_accesses += out_padded * (2 * red_steps - 1);

  // ---- DRAM traffic: best of two outer-loop orders ------------------------
  const std::int64_t glb_share = cfg_.glb_words() / 2;
  const std::int64_t weight_padded = k_pad * cg_pad * r * s_pad;
  const std::int64_t input_total = n * g * cg_pad * layer.in_h * layer.in_w;
  const std::int64_t in_cols_pass = (q_cov - 1) * layer.stride_w + s;
  const std::int64_t in_pass = g * cg_pad * in_rows * in_cols_pass;
  const std::int64_t passes = n * tp * tq;

  // Order A: (n, p, q) outer. Inputs fetched once per pass if the pass
  // tile fits; weights stream every pass unless fully resident.
  std::int64_t dram_a = 0;
  dram_a += (in_pass <= glb_share) ? passes * in_pass
                                   : passes * in_pass * tk;
  dram_a += (weight_padded <= glb_share) ? weight_padded
                                         : weight_padded * passes;
  dram_a += out_padded;

  // Order B: k outer. Weights loaded exactly once; inputs reload per
  // output-channel tile unless the whole input fits.
  std::int64_t dram_b = 0;
  dram_b += weight_padded;
  dram_b += (input_total <= glb_share) ? input_total : input_total * tk;
  dram_b += out_padded;

  if (dram_a <= dram_b) {
    acc.dram_accesses = dram_a;
    res.order = OuterOrder::kOutputTileOuter;
  } else {
    acc.dram_accesses = dram_b;
    res.order = OuterOrder::kOutputChannelOuter;
  }

  // Group output tiles into GLB-resident data tiles (paper §II: a layer is
  // divided into tiles fitting into on-chip buffers). The wear-leveling
  // origin strides once per data tile. One output tile's unique working
  // set spans its whole reduction.
  const std::int64_t w_alloc = k_cov * cg_pad * r * s_pad;
  const std::int64_t in_alloc = g_span * cg_pad * in_rows * in_cols_pass;
  const std::int64_t alloc_words = w_alloc + in_alloc + out_disp;
  res.allocations_per_tile = std::min(
      std::max<std::int64_t>(1, cfg_.glb_words() / alloc_words),
      output_tiles);
  res.tiles = ceil_div(output_tiles, res.allocations_per_tile);

  res.energy = arch::total_energy(energy_, acc);

  // ---- Cycles: double-buffered dispatch pipeline ---------------------------
  const double bw = static_cast<double>(cfg_.global_net_words_per_cycle);
  const double compute =
      static_cast<double>(m.lb_q * m.lb_c * r * m.lb_s);
  const double load = std::ceil(static_cast<double>(in_disp + w_disp) / bw);
  const double drain = static_cast<double>(out_disp) /
                       (bw * static_cast<double>(red_steps));
  const double per_dispatch = std::max({compute, load, drain});
  res.cycles =
      static_cast<double>(lb_dispatches) * per_dispatch + load + compute;

  res.scatter_words = in_disp + w_disp;
  res.compute_macs_per_pe = m.lb_q * m.lb_c * r * m.lb_s;
  res.gather_words = out_disp;
  res.reduction_steps = red_steps;

  res.valid = true;
  return res;
}

}  // namespace rota::sched
