#include "sched/mapping.hpp"

#include <sstream>

#include "util/check.hpp"

namespace rota::sched {

std::string to_string(SpatialX dim) {
  switch (dim) {
    case SpatialX::kOutChannels: return "K";
    case SpatialX::kOutWidth: return "Q";
  }
  ROTA_UNREACHABLE("unhandled SpatialX");
}

std::string to_string(SpatialY dim) {
  switch (dim) {
    case SpatialY::kOutHeight: return "P";
    case SpatialY::kInChannels: return "C";
  }
  ROTA_UNREACHABLE("unhandled SpatialY");
}

std::string Mapping::str() const {
  std::ostringstream os;
  os << to_string(dim_x) << sx << 'x' << to_string(dim_y) << sy << ":c"
     << lb_c << ",q" << lb_q << ",s" << lb_s;
  return os.str();
}

}  // namespace rota::sched
