#include "sched/mapper.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_set>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "par/parallel.hpp"
#include "util/arena.hpp"
#include "util/check.hpp"
#include "util/math.hpp"

namespace rota::sched {

LayerShapeKey LayerShapeKey::of(const nn::LayerSpec& layer) {
  LayerShapeKey key;
  key.kind = static_cast<int>(layer.kind);
  key.batch = layer.batch;
  key.out_channels = layer.out_channels;
  key.in_channels = layer.in_channels;
  key.in_h = layer.in_h;
  key.in_w = layer.in_w;
  key.kernel_h = layer.kernel_h;
  key.kernel_w = layer.kernel_w;
  key.stride_h = layer.stride_h;
  key.stride_w = layer.stride_w;
  key.pad_h = layer.pad_h;
  key.pad_w = layer.pad_w;
  key.groups = layer.groups;
  return key;
}

std::size_t LayerShapeKeyHash::operator()(const LayerShapeKey& key) const {
  // splitmix64 finalizer over each field: cheap, and the avalanche keeps
  // near-identical shapes (off-by-one bounds) in different buckets/shards.
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  auto mix = [&h](std::uint64_t v) {
    std::uint64_t z = (h += v + 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    h = z ^ (z >> 31);
  };
  mix(static_cast<std::uint64_t>(key.kind));
  mix(static_cast<std::uint64_t>(key.batch));
  mix(static_cast<std::uint64_t>(key.out_channels));
  mix(static_cast<std::uint64_t>(key.in_channels));
  mix(static_cast<std::uint64_t>(key.in_h));
  mix(static_cast<std::uint64_t>(key.in_w));
  mix(static_cast<std::uint64_t>(key.kernel_h));
  mix(static_cast<std::uint64_t>(key.kernel_w));
  mix(static_cast<std::uint64_t>(key.stride_h));
  mix(static_cast<std::uint64_t>(key.stride_w));
  mix(static_cast<std::uint64_t>(key.pad_h));
  mix(static_cast<std::uint64_t>(key.pad_w));
  mix(static_cast<std::uint64_t>(key.groups));
  return static_cast<std::size_t>(h);
}

Mapper::Mapper(arch::AcceleratorConfig cfg, ObjectiveSpec objective,
               arch::EnergyModel energy, MapperOptions options,
               ArrayState array)
    : cost_(std::move(cfg), energy),
      objective_(objective),
      options_(options),
      array_(std::move(array)) {
  if (array_.concrete()) {
    const auto& accel = cost_.config();
    ROTA_REQUIRE(array_.width() == accel.array_width &&
                     array_.height() == accel.array_height,
                 "ArrayState geometry " + std::to_string(array_.width()) +
                     "x" + std::to_string(array_.height()) +
                     " does not match the accelerator array " +
                     std::to_string(accel.array_width) + "x" +
                     std::to_string(accel.array_height));
  }
}

Mapper::Mapper(arch::AcceleratorConfig cfg, arch::EnergyModel energy,
               MapperOptions options)
    : Mapper(std::move(cfg), ObjectiveSpec{}, energy, options) {}

Mapper::CacheShard& Mapper::shard_of(const LayerShapeKey& key) {
  return cache_[LayerShapeKeyHash{}(key) % kCacheShards];
}

std::size_t Mapper::cache_size() const {
  std::size_t total = 0;
  for (const CacheShard& shard : cache_) {
    const util::MutexLock lock(shard.mu);
    total += shard.map.size();
  }
  return total;
}

util::ArenaVector<std::int64_t> Mapper::factor_ladder(
    util::Arena& arena, const util::ArenaVector<std::int64_t>& bound_divisors,
    std::int64_t bound, std::int64_t cap) const {
  ROTA_REQUIRE(bound > 0, "factor ladder needs a positive bound");
  util::ArenaVector<std::int64_t> ladder{
      util::ArenaAllocator<std::int64_t>(arena)};
  cap = std::min(cap, bound);
  if (cap < 1) return ladder;
  ladder.reserve(bound_divisors.size());
  for (std::int64_t d : bound_divisors) {
    if (d <= cap) ladder.push_back(d);
  }
  if (!options_.exact_factors_only &&
      (ladder.empty() || ladder.back() != cap)) {
    ladder.push_back(cap);
  }
  return ladder;
}

util::ArenaVector<std::int64_t> Mapper::spatial_candidates(
    util::Arena& arena, const util::ArenaVector<std::int64_t>& bound_divisors,
    std::int64_t bound, std::int64_t array_dim) const {
  const std::int64_t cap = std::min(array_dim, bound);
  util::ArenaVector<std::int64_t> out{util::ArenaAllocator<std::int64_t>(arena)};
  if (options_.exact_factors_only) {
    out.reserve(bound_divisors.size());
    for (std::int64_t d : bound_divisors) {
      if (d <= cap) out.push_back(d);
    }
  } else {
    out.reserve(static_cast<std::size_t>(cap));
    for (std::int64_t f = 1; f <= cap; ++f) out.push_back(f);
  }
  return out;
}

namespace {

/// Per-search memo of util::divisors: one layer's search asks for the
/// divisors of the same handful of bounds (K, C/g, P, Q, S) hundreds of
/// times across the candidate loops; trial division is paid once each.
/// Everything — hash nodes, bucket array, divisor vectors — lives on the
/// per-search arena, so a whole search costs zero general-heap traffic
/// once the arena's blocks are warm.
class DivisorCache {
 public:
  explicit DivisorCache(util::Arena& arena)
      : arena_(arena), memo_(MemoAlloc(arena)) {}

  const util::ArenaVector<std::int64_t>& of(std::int64_t n) {
    const auto it = memo_.find(n);
    if (it != memo_.end()) return it->second;
    util::ArenaVector<std::int64_t> divs{
        util::ArenaAllocator<std::int64_t>(arena_)};
    util::divisors_into(n, divs);
    return memo_.emplace(n, std::move(divs)).first->second;
  }

 private:
  using MemoAlloc = util::ArenaAllocator<
      std::pair<const std::int64_t, util::ArenaVector<std::int64_t>>>;
  util::Arena& arena_;
  std::unordered_map<std::int64_t, util::ArenaVector<std::int64_t>,
                     std::hash<std::int64_t>, std::equal_to<std::int64_t>,
                     MemoAlloc>
      memo_;
};

/// Fill a LayerSchedule from the winning (mapping, cost) pair.
LayerSchedule assemble_schedule(const nn::LayerSpec& layer, const Mapping& map,
                                const CostResult& cost) {
  LayerSchedule sched;
  sched.layer_name = layer.name;
  sched.shape_key = layer.shape_key();
  sched.space = UtilSpace{map.sx, map.sy};
  sched.tiles = cost.tiles;
  sched.mapping = map;
  sched.accesses = cost.accesses;
  sched.energy = cost.energy;
  sched.cycles = cost.cycles;
  sched.macs = layer.macs();
  sched.output_tiles = cost.output_tiles;
  sched.allocations_per_tile = cost.allocations_per_tile;
  sched.scatter_words = cost.scatter_words;
  sched.compute_macs_per_pe = cost.compute_macs_per_pe;
  sched.gather_words = cost.gather_words;
  sched.reduction_steps = cost.reduction_steps;
  return sched;
}

void report_candidate_metrics(const std::int64_t evaluated,
                              const std::int64_t feasible) {
  auto& reg = obs::MetricsRegistry::global();
  if (reg.enabled()) {
    reg.add("mapper.candidates_evaluated", evaluated);
    reg.add("mapper.candidates_feasible", feasible);
    reg.add("mapper.candidates_pruned", evaluated - feasible);
  }
}

}  // namespace

template <class Fn>
Mapper::SearchCounters Mapper::enumerate_candidates(const nn::LayerSpec& layer,
                                                    Fn&& fn) const {
  const auto& cfg = cost_.config();
  const std::int64_t cg = layer.channels_per_group();
  const std::int64_t q = layer.out_w();
  const std::int64_t p = layer.out_h();
  const std::int64_t k = layer.out_channels;
  const std::int64_t r = layer.kernel_h;
  const std::int64_t s = layer.kernel_w;

  SearchCounters counters;

  // All search scratch — candidate ladders, divisor memo — comes from a
  // per-thread bump arena, rewound (not freed) for every layer search.
  // The containers built on it are all destroyed before this function
  // returns, so the rewind at the next entry never strands a live object.
  static thread_local util::Arena arena;
  arena.reset();

  DivisorCache divs(arena);
  // References into the memo stay valid across later of() calls
  // (unordered_map never moves nodes on rehash).
  const auto& lb_s_candidates = divs.of(s);
  const auto lb_q_candidates =
      factor_ladder(arena, divs.of(q), q, std::min(q, cfg.lb_output_words()));

  // The lb_c ladder depends only on lb_s (through the buffer capacity
  // cap), not on the spatial factors: hoist one ladder per lb_s out of
  // the four-deep candidate loops.
  util::ArenaVector<util::ArenaVector<std::int64_t>> lb_c_ladders{
      util::ArenaAllocator<util::ArenaVector<std::int64_t>>(arena)};
  lb_c_ladders.reserve(lb_s_candidates.size());
  for (std::int64_t lb_s : lb_s_candidates) {
    const std::int64_t cap_c =
        std::min(cfg.lb_weight_words() / (r * lb_s),
                 cfg.lb_input_words() / lb_s);
    lb_c_ladders.push_back(
        cap_c < 1 ? util::ArenaVector<std::int64_t>{
                        util::ArenaAllocator<std::int64_t>(arena)}
                  : factor_ladder(arena, divs.of(cg), cg, cap_c));
  }

  for (SpatialX dx : {SpatialX::kOutChannels, SpatialX::kOutWidth}) {
    const std::int64_t bound_x = (dx == SpatialX::kOutChannels) ? k : q;
    const auto sx_candidates =
        spatial_candidates(arena, divs.of(bound_x), bound_x, cfg.array_width);
    for (SpatialY dy : {SpatialY::kOutHeight, SpatialY::kInChannels}) {
      const std::int64_t bound_y = (dy == SpatialY::kOutHeight) ? p : cg;
      const auto sy_candidates =
          spatial_candidates(arena, divs.of(bound_y), bound_y, cfg.array_height);
      for (std::int64_t sx : sx_candidates) {
        for (std::int64_t sy : sy_candidates) {
          // A window with no dead-PE-free placement is infeasible before
          // any tiling choice; the whole subtree is skipped (free for the
          // all-live state, so the default search is untouched).
          if (!array_.fits(sx, sy)) continue;
          for (std::size_t si = 0; si < lb_s_candidates.size(); ++si) {
            const std::int64_t lb_s = lb_s_candidates[si];
            const auto& lb_c_ladder = lb_c_ladders[si];
            if (lb_c_ladder.empty()) continue;
            for (std::int64_t lb_c : lb_c_ladder) {
              for (std::int64_t lb_q : lb_q_candidates) {
                Mapping m;
                m.dim_x = dx;
                m.dim_y = dy;
                m.sx = sx;
                m.sy = sy;
                m.lb_c = lb_c;
                m.lb_q = lb_q;
                m.lb_s = lb_s;
                const CostResult c = cost_.evaluate(layer, m);
                ++counters.evaluated;
                if (!c.valid) continue;
                ++counters.feasible;
                fn(m, c);
              }
            }
          }
        }
      }
    }
  }
  return counters;
}

LayerSchedule Mapper::search(const nn::LayerSpec& layer) const {
  if (objective_.kind == ObjectiveKind::kWeighted) {
    return search_weighted(layer);
  }

  bool found = false;
  Mapping best_map;
  CostResult best_cost;
  const SearchCounters counters = enumerate_candidates(
      layer, [&](const Mapping& m, const CostResult& c) {
        if (!found || objective_better(objective_, c, m, best_cost, best_map)) {
          found = true;
          best_cost = c;
          best_map = m;
        }
      });

  ROTA_ENSURE(found, "no feasible mapping for layer " + layer.name +
                         (array_.dead_count() > 0
                              ? " on the degraded array (" +
                                    std::to_string(array_.dead_count()) +
                                    " dead PEs)"
                              : std::string{}));

  report_candidate_metrics(counters.evaluated, counters.feasible);
  return assemble_schedule(layer, best_map, best_cost);
}

void Mapper::build_front(const nn::LayerSpec& layer,
                         std::vector<ParetoPoint>& points,
                         std::vector<CostResult>& costs) const {
  const auto& cfg = cost_.config();
  const std::int64_t live =
      array_.live_count(cfg.array_width, cfg.array_height);
  points.clear();
  costs.clear();

  const auto same_objectives = [](const ParetoPoint& a, const ParetoPoint& b) {
    return a.energy == b.energy && a.mttf == b.mttf && a.cycles == b.cycles;
  };

  const SearchCounters counters = enumerate_candidates(
      layer, [&](const Mapping& m, const CostResult& c) {
        ParetoPoint p;
        p.mapping = m;
        p.energy = c.energy;
        p.cycles = c.cycles;
        p.tiles = c.tiles;
        p.pe_allocations = c.tiles * m.sx * m.sy;
        p.mttf = projected_mttf(p.pe_allocations, live);
        const auto [u, v] = array_.anchor(m.sx, m.sy);
        p.anchor_u = u;
        p.anchor_v = v;

        // Incremental front maintenance. The final set is independent of
        // insertion order: at most one member per objective triple (the
        // lexicographically least mapping), and only mutually
        // non-dominated triples survive.
        std::size_t i = 0;
        while (i < points.size()) {
          if (same_objectives(points[i], p)) {
            if (mapping_lex_less(p.mapping, points[i].mapping)) {
              points[i] = p;
              costs[i] = c;
            }
            return;
          }
          if (dominates(points[i], p)) return;
          if (dominates(p, points[i])) {
            points.erase(points.begin() + static_cast<std::ptrdiff_t>(i));
            costs.erase(costs.begin() + static_cast<std::ptrdiff_t>(i));
            continue;
          }
          ++i;
        }
        points.push_back(p);
        costs.push_back(c);
      });

  ROTA_ENSURE(!points.empty(),
              "no feasible mapping for layer " + layer.name +
                  (array_.dead_count() > 0
                       ? " on the degraded array (" +
                             std::to_string(array_.dead_count()) +
                             " dead PEs)"
                       : std::string{}));

  report_candidate_metrics(counters.evaluated, counters.feasible);
  auto& reg = obs::MetricsRegistry::global();
  if (reg.enabled()) {
    reg.add("mapper.pareto_front_points",
            static_cast<std::int64_t>(points.size()));
  }

  // Canonical order, applied to both parallel arrays.
  std::vector<std::size_t> order(points.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return pareto_canonical_less(points[a], points[b]);
  });
  std::vector<ParetoPoint> sorted_points;
  std::vector<CostResult> sorted_costs;
  sorted_points.reserve(points.size());
  sorted_costs.reserve(costs.size());
  for (const std::size_t idx : order) {
    sorted_points.push_back(points[idx]);
    sorted_costs.push_back(costs[idx]);
  }
  points = std::move(sorted_points);
  costs = std::move(sorted_costs);
}

LayerSchedule Mapper::search_weighted(const nn::LayerSpec& layer) const {
  std::vector<ParetoPoint> points;
  std::vector<CostResult> costs;
  build_front(layer, points, costs);
  const std::size_t pick = select_from_front(points, objective_);
  return assemble_schedule(layer, points[pick].mapping, costs[pick]);
}

LayerParetoFront Mapper::pareto_layer(const nn::LayerSpec& layer) const {
  layer.validate();
  const obs::TraceSpan span(layer.name, "mapper.pareto");
  const obs::ScopedTimer timer("mapper.pareto_seconds");
  std::vector<ParetoPoint> points;
  std::vector<CostResult> costs;
  build_front(layer, points, costs);
  points[select_from_front(points, objective_)].selected = true;
  LayerParetoFront front;
  front.layer_name = layer.name;
  front.shape_key = layer.shape_key();
  front.points = std::move(points);
  return front;
}

NetworkParetoFront Mapper::pareto_network(const nn::Network& net) const {
  const obs::TraceSpan span(net.abbr(), "mapper.pareto");
  const auto& cfg = cost_.config();
  NetworkParetoFront nf;
  nf.network_name = net.name();
  nf.network_abbr = net.abbr();
  nf.config = cfg;
  nf.objective = objective_;
  nf.array_digest = array_.digest();
  nf.live_pes = array_.live_count(cfg.array_width, cfg.array_height);
  nf.layers.reserve(net.layer_count());

  // Unique shapes searched once, into slots fixed before the parallel
  // region — the assembly below reads the same front for a shape no
  // matter which worker produced it, so the output is thread-count
  // independent.
  std::vector<const nn::LayerSpec*> unique;
  std::unordered_map<LayerShapeKey, std::size_t, LayerShapeKeyHash> slot;
  unique.reserve(net.layer_count());
  slot.reserve(net.layer_count());
  for (const auto& layer : net.layers()) {
    const LayerShapeKey key = LayerShapeKey::of(layer);
    if (slot.emplace(key, unique.size()).second) {
      unique.push_back(&layer);
    }
  }

  std::vector<LayerParetoFront> fronts(unique.size());
  const auto search_one = [this, &unique, &fronts](std::int64_t i) {
    fronts[static_cast<std::size_t>(i)] =
        pareto_layer(*unique[static_cast<std::size_t>(i)]);
  };
  if (par::resolve_threads(options_.threads) > 1) {
    par::parallel_for(static_cast<std::int64_t>(unique.size()),
                      options_.threads, search_one);
  } else {
    for (std::int64_t i = 0;
         i < static_cast<std::int64_t>(unique.size()); ++i) {
      search_one(i);
    }
  }

  for (const auto& layer : net.layers()) {
    LayerParetoFront front = fronts[slot.at(LayerShapeKey::of(layer))];
    front.layer_name = layer.name;
    nf.layers.push_back(std::move(front));
  }
  return nf;
}

LayerSchedule Mapper::schedule_layer(const nn::LayerSpec& layer) {
  layer.validate();
  const LayerShapeKey key = LayerShapeKey::of(layer);
  CacheShard& shard = shard_of(key);
  {
    const util::MutexLock lock(shard.mu);
    const auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      obs::MetricsRegistry::global().add("mapper.cache_hits");
      LayerSchedule sched = it->second;
      sched.layer_name = layer.name;  // cached entry may carry another name
      return sched;
    }
  }
  // Search outside the shard lock: sibling shapes (even same-shard ones)
  // keep making progress while this one is explored.
  const obs::TraceSpan span(layer.name, "mapper.search");
  const obs::ScopedTimer timer("mapper.search_seconds");
  LayerSchedule sched = search(layer);
  obs::MetricsRegistry::global().add("mapper.layers_searched");
  {
    const util::MutexLock lock(shard.mu);
    // A racing thread may have inserted the same shape meanwhile; both
    // computed identical schedules (the search is pure), so first-in wins.
    shard.map.emplace(key, sched);
  }
  return sched;
}

NetworkSchedule Mapper::schedule_network(const nn::Network& net) {
  const obs::TraceSpan span(net.abbr(), "mapper.schedule");
  NetworkSchedule ns;
  ns.network_name = net.name();
  ns.network_abbr = net.abbr();
  ns.config = cost_.config();
  ns.layers.reserve(net.layer_count());

  if (par::resolve_threads(options_.threads) > 1) {
    // Dedupe shapes first so repeated blocks (ResNet stages, decoder
    // layers) dispatch one search, then warm the memo concurrently. The
    // assembly loop below then runs entirely on cache hits.
    std::vector<const nn::LayerSpec*> unique;
    std::unordered_set<LayerShapeKey, LayerShapeKeyHash> seen;
    unique.reserve(net.layer_count());
    seen.reserve(net.layer_count());
    for (const auto& layer : net.layers()) {
      if (seen.insert(LayerShapeKey::of(layer)).second) {
        unique.push_back(&layer);
      }
    }
    obs::MetricsRegistry::global().add(
        "mapper.layers_deduped",
        static_cast<std::int64_t>(net.layer_count() - unique.size()));
    par::parallel_for(static_cast<std::int64_t>(unique.size()),
                      options_.threads, [this, &unique](std::int64_t i) {
                        (void)schedule_layer(
                            *unique[static_cast<std::size_t>(i)]);
                      });
  }

  for (const auto& layer : net.layers()) {
    ns.layers.push_back(schedule_layer(layer));
  }
  return ns;
}

}  // namespace rota::sched
