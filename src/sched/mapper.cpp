#include "sched/mapper.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/math.hpp"

namespace rota::sched {

Mapper::Mapper(arch::AcceleratorConfig cfg, arch::EnergyModel energy,
               MapperOptions options)
    : cost_(std::move(cfg), energy), options_(options) {}

std::vector<std::int64_t> Mapper::factor_ladder(std::int64_t bound,
                                                std::int64_t cap) const {
  ROTA_REQUIRE(bound > 0, "factor ladder needs a positive bound");
  cap = std::min(cap, bound);
  if (cap < 1) return {};
  std::vector<std::int64_t> ladder;
  for (std::int64_t d : util::divisors(bound)) {
    if (d <= cap) ladder.push_back(d);
  }
  if (!options_.exact_factors_only &&
      (ladder.empty() || ladder.back() != cap)) {
    ladder.push_back(cap);
  }
  return ladder;
}

std::vector<std::int64_t> Mapper::spatial_candidates(
    std::int64_t bound, std::int64_t array_dim) const {
  const std::int64_t cap = std::min(array_dim, bound);
  std::vector<std::int64_t> out;
  if (options_.exact_factors_only) {
    for (std::int64_t d : util::divisors(bound)) {
      if (d <= cap) out.push_back(d);
    }
  } else {
    out.reserve(static_cast<std::size_t>(cap));
    for (std::int64_t f = 1; f <= cap; ++f) out.push_back(f);
  }
  return out;
}

namespace {

/// Strict-weak ordering of candidates: lower energy, then fewer cycles,
/// then a larger utilization space (a performance-aware optimizer prefers
/// more parallelism at equal cost), then lexicographic mapping order for
/// full determinism.
bool better(const CostResult& a, const Mapping& ma, const CostResult& b,
            const Mapping& mb) {
  if (a.energy != b.energy) return a.energy < b.energy;
  if (a.cycles != b.cycles) return a.cycles < b.cycles;
  const std::int64_t area_a = ma.sx * ma.sy;
  const std::int64_t area_b = mb.sx * mb.sy;
  if (area_a != area_b) return area_a > area_b;
  auto key = [](const Mapping& m) {
    return std::tuple(static_cast<int>(m.dim_x), static_cast<int>(m.dim_y),
                      m.sx, m.sy, m.lb_c, m.lb_q, m.lb_s);
  };
  return key(ma) < key(mb);
}

}  // namespace

LayerSchedule Mapper::search(const nn::LayerSpec& layer) const {
  const auto& cfg = cost_.config();
  const std::int64_t cg = layer.channels_per_group();
  const std::int64_t q = layer.out_w();
  const std::int64_t p = layer.out_h();
  const std::int64_t k = layer.out_channels;
  const std::int64_t r = layer.kernel_h;
  const std::int64_t s = layer.kernel_w;

  bool found = false;
  Mapping best_map;
  CostResult best_cost;
  std::int64_t evaluated = 0;
  std::int64_t feasible = 0;

  const auto lb_s_candidates = util::divisors(s);
  const auto lb_q_candidates =
      factor_ladder(q, std::min(q, cfg.lb_output_words()));

  for (SpatialX dx : {SpatialX::kOutChannels, SpatialX::kOutWidth}) {
    const std::int64_t bound_x = (dx == SpatialX::kOutChannels) ? k : q;
    for (SpatialY dy : {SpatialY::kOutHeight, SpatialY::kInChannels}) {
      const std::int64_t bound_y = (dy == SpatialY::kOutHeight) ? p : cg;
      for (std::int64_t sx : spatial_candidates(bound_x, cfg.array_width)) {
        for (std::int64_t sy :
             spatial_candidates(bound_y, cfg.array_height)) {
          for (std::int64_t lb_s : lb_s_candidates) {
            const std::int64_t cap_c =
                std::min(cfg.lb_weight_words() / (r * lb_s),
                         cfg.lb_input_words() / lb_s);
            if (cap_c < 1) continue;
            for (std::int64_t lb_c : factor_ladder(cg, cap_c)) {
              for (std::int64_t lb_q : lb_q_candidates) {
                Mapping m;
                m.dim_x = dx;
                m.dim_y = dy;
                m.sx = sx;
                m.sy = sy;
                m.lb_c = lb_c;
                m.lb_q = lb_q;
                m.lb_s = lb_s;
                const CostResult c = cost_.evaluate(layer, m);
                ++evaluated;
                if (!c.valid) continue;
                ++feasible;
                if (!found || better(c, m, best_cost, best_map)) {
                  found = true;
                  best_cost = c;
                  best_map = m;
                }
              }
            }
          }
        }
      }
    }
  }

  ROTA_ENSURE(found, "no feasible mapping for layer " + layer.name);

  auto& reg = obs::MetricsRegistry::global();
  if (reg.enabled()) {
    reg.add("mapper.candidates_evaluated", evaluated);
    reg.add("mapper.candidates_feasible", feasible);
    reg.add("mapper.candidates_pruned", evaluated - feasible);
  }

  LayerSchedule sched;
  sched.layer_name = layer.name;
  sched.shape_key = layer.shape_key();
  sched.space = UtilSpace{best_map.sx, best_map.sy};
  sched.tiles = best_cost.tiles;
  sched.mapping = best_map;
  sched.accesses = best_cost.accesses;
  sched.energy = best_cost.energy;
  sched.cycles = best_cost.cycles;
  sched.macs = layer.macs();
  sched.output_tiles = best_cost.output_tiles;
  sched.allocations_per_tile = best_cost.allocations_per_tile;
  sched.scatter_words = best_cost.scatter_words;
  sched.compute_macs_per_pe = best_cost.compute_macs_per_pe;
  sched.gather_words = best_cost.gather_words;
  sched.reduction_steps = best_cost.reduction_steps;
  return sched;
}

LayerSchedule Mapper::schedule_layer(const nn::LayerSpec& layer) {
  layer.validate();
  const std::string key = layer.shape_key();
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    obs::MetricsRegistry::global().add("mapper.cache_hits");
    LayerSchedule sched = it->second;
    sched.layer_name = layer.name;  // cached entry may carry another name
    return sched;
  }
  const obs::TraceSpan span(layer.name, "mapper.search");
  const obs::ScopedTimer timer("mapper.search_seconds");
  LayerSchedule sched = search(layer);
  obs::MetricsRegistry::global().add("mapper.layers_searched");
  cache_.emplace(key, sched);
  return sched;
}

NetworkSchedule Mapper::schedule_network(const nn::Network& net) {
  const obs::TraceSpan span(net.abbr(), "mapper.schedule");
  NetworkSchedule ns;
  ns.network_name = net.name();
  ns.network_abbr = net.abbr();
  ns.config = cost_.config();
  ns.layers.reserve(net.layer_count());
  for (const auto& layer : net.layers()) {
    ns.layers.push_back(schedule_layer(layer));
  }
  return ns;
}

}  // namespace rota::sched
