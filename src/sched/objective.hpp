#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "reliability/weibull.hpp"
#include "sched/cost.hpp"
#include "sched/mapping.hpp"
#include "util/result.hpp"

/// \file objective.hpp
/// The pluggable scoring layer of the mapper (DESIGN.md §15). An
/// ObjectiveSpec names *what* the search optimizes; the mapper stays the
/// one search engine. Three pure objectives plus a weighted scalarization:
///
///   energy      — the historical behavior: minimize MAC-normalized energy
///                 (ties: cycles, larger utilization space, lexicographic
///                 mapping order). Byte-identical to the pre-objective
///                 mapper by construction.
///   lifetime    — maximize the projected array MTTF under leveled wear
///                 (equivalently: minimize total PE-allocations per
///                 iteration, tiles·sx·sy; see the projected-MTTF helper
///                 below).
///   throughput  — minimize pipelined execution cycles.
///   weighted:w1,w2,w3 — build the per-layer Pareto front over (energy,
///                 projected MTTF, cycles) and collapse it with
///                 front-normalized weights (w1 energy, w2 lifetime,
///                 w3 cycles).
///
/// Everything here is a pure, deterministic function of its arguments —
/// no clocks, no randomness, no global state — which is what makes the
/// mapper's results bit-identical at any thread count.

namespace rota::sched {

/// Which scalar the search minimizes (or, for kWeighted, how the Pareto
/// front is collapsed).
enum class ObjectiveKind : std::uint8_t {
  kEnergy,
  kLifetime,
  kThroughput,
  kWeighted,
};

[[nodiscard]] std::string_view to_string(ObjectiveKind kind);

/// Scalarization weights over the three Pareto axes. Pure objectives
/// carry their canonical unit vector so `weights` is always meaningful
/// (manifests stamp it unconditionally).
struct ObjectiveWeights {
  double energy = 1.0;
  double lifetime = 0.0;
  double cycles = 0.0;

  friend bool operator==(const ObjectiveWeights&,
                         const ObjectiveWeights&) = default;
};

/// Value-type description of an objective. Defaults to the energy
/// objective, i.e. `ObjectiveSpec{}` reproduces the historical mapper.
struct ObjectiveSpec {
  ObjectiveKind kind = ObjectiveKind::kEnergy;
  ObjectiveWeights weights;  ///< canonical unit vector for pure kinds

  /// Round-trippable identifier: "energy" | "lifetime" | "throughput" |
  /// "weighted:<w1>,<w2>,<w3>" (weights printed with shortest round-trip
  /// precision, so parse_objective(id()) == *this exactly). Stamped into
  /// RunManifest extra and ScheduleCache fingerprints.
  [[nodiscard]] std::string id() const;

  /// "w1,w2,w3" with round-trip precision (manifest `objective.weights`).
  [[nodiscard]] std::string weights_csv() const;

  [[nodiscard]] static ObjectiveSpec energy() { return {}; }
  [[nodiscard]] static ObjectiveSpec lifetime() {
    return {ObjectiveKind::kLifetime, {0.0, 1.0, 0.0}};
  }
  [[nodiscard]] static ObjectiveSpec throughput() {
    return {ObjectiveKind::kThroughput, {0.0, 0.0, 1.0}};
  }
  /// \pre weights finite, non-negative, not all zero.
  [[nodiscard]] static ObjectiveSpec weighted(double w_energy,
                                              double w_lifetime,
                                              double w_cycles);

  friend bool operator==(const ObjectiveSpec&, const ObjectiveSpec&) = default;
};

/// Parse the user-facing grammar
///   energy | lifetime | throughput | weighted:<w1>,<w2>,<w3>
/// (weights: finite, >= 0, at least one positive). Errors are
/// invalid_argument with the offending text named.
[[nodiscard]] util::Result<ObjectiveSpec> parse_objective(
    std::string_view text);

/// Projected MTTF (η = 1) of a schedule that allocates
/// `pe_allocations` = tiles·sx·sy PE-allocations per network iteration,
/// assuming the wear-leveling policy spreads them uniformly over the
/// `live_pes` live PEs of the array (the RoTA steady state). From Eq. (3)
/// with α_i = A/n for all i:
///
///   MTTF = Γ(1 + 1/β) · n^(1 − 1/β) / A
///
/// Any common per-iteration scale cancels out of relative comparisons, so
/// for a fixed array the lifetime objective reduces to minimizing A.
/// \pre pe_allocations >= 1, live_pes >= 1, beta > 0.
[[nodiscard]] double projected_mttf(std::int64_t pe_allocations,
                                    std::int64_t live_pes,
                                    double beta = rel::kJedecShape);

/// One member of a per-layer Pareto front.
struct ParetoPoint {
  Mapping mapping;
  double energy = 0.0;  ///< MAC-normalized energy (CostResult::energy)
  double cycles = 0.0;  ///< pipelined execution cycles
  double mttf = 0.0;    ///< projected_mttf(pe_allocations, live PEs)
  std::int64_t tiles = 0;           ///< Z: utilization-space dispatches
  std::int64_t pe_allocations = 0;  ///< tiles · sx · sy per iteration
  /// First feasible window anchor on the (possibly degraded) array, in
  /// row-major (v, then u) order; (0,0) on an all-live array.
  std::int64_t anchor_u = 0;
  std::int64_t anchor_v = 0;
  /// True on the one member the mapper's scalarization picks from this
  /// front (the energy front minimum for `energy`, the MTTF maximum for
  /// `lifetime`, …). Exactly one point per front is selected.
  bool selected = false;

  friend bool operator==(const ParetoPoint&, const ParetoPoint&) = default;
};

/// Pareto front of one layer, in canonical order (energy ascending, then
/// cycles ascending, then MTTF descending, then lexicographic mapping
/// order) — the same front bytes for any thread count.
struct LayerParetoFront {
  std::string layer_name;
  std::string shape_key;
  std::vector<ParetoPoint> points;
};

/// Per-layer fronts for a whole network plus the search provenance
/// (objective, array-state digest) consumers stamp into envelopes.
struct NetworkParetoFront {
  std::string network_name;
  std::string network_abbr;
  arch::AcceleratorConfig config;
  ObjectiveSpec objective;
  std::string array_digest;  ///< ArrayState::digest() ("live" = no dead PEs)
  std::int64_t live_pes = 0;
  std::vector<LayerParetoFront> layers;
};

/// Strict lexicographic order over (dim_x, dim_y, sx, sy, lb_c, lb_q,
/// lb_s) — the final determinism tie-break everywhere in this module.
[[nodiscard]] bool mapping_lex_less(const Mapping& a, const Mapping& b);

/// Pareto dominance: `a` dominates `b` iff a.energy <= b.energy,
/// a.mttf >= b.mttf and a.cycles <= b.cycles with at least one strict.
/// Irreflexive and transitive (sched_test pins both).
[[nodiscard]] bool dominates(const ParetoPoint& a, const ParetoPoint& b);

/// Canonical front order: energy, then cycles, then MTTF descending, then
/// mapping_lex_less.
[[nodiscard]] bool pareto_canonical_less(const ParetoPoint& a,
                                         const ParetoPoint& b);

/// Strict-weak candidate ordering induced by a *pure* objective — the
/// single-pass argmin comparator the mapper runs. For kEnergy this is
/// exactly the historical chain (energy, cycles, larger sx·sy, then
/// mapping_lex_less), which is what keeps default schedules byte-stable.
/// \pre spec.kind != kWeighted (the weighted objective is defined on a
/// front, not pairwise).
[[nodiscard]] bool objective_better(const ObjectiveSpec& spec,
                                    const CostResult& a, const Mapping& ma,
                                    const CostResult& b, const Mapping& mb);

/// Index of the front member the scalarization selects from `points`
/// (front-relative: pure objectives take their chain's minimum over the
/// front; kWeighted minimizes w1·e/e_min + w2·mttf_max/mttf + w3·c/c_min).
/// Ties resolve to the earliest index, so on a canonically ordered front
/// the pick is deterministic. \pre points non-empty.
[[nodiscard]] std::size_t select_from_front(
    const std::vector<ParetoPoint>& points, const ObjectiveSpec& spec);

}  // namespace rota::sched
