#pragma once

#include <array>
#include <cstddef>
#include <unordered_map>

#include "nn/network.hpp"
#include "sched/cost.hpp"
#include "sched/schedule.hpp"
#include "util/arena.hpp"
#include "util/thread_annotations.hpp"

/// \file mapper.hpp
/// Exhaustive, deterministic search for the energy-optimal mapping of each
/// layer — the NeuroSpector-lite substitute described in DESIGN.md. The
/// mapping space is bounded: both spatial dimension choices, every spatial
/// factor up to the array size, and a divisor-derived ladder of local-buffer
/// tiling factors. Results are memoized by layer shape, which collapses the
/// repeated blocks of ResNet / Llama-style networks to one search each.
///
/// Concurrency (DESIGN.md §9): the shape memo is striped across
/// independently locked shards, so schedule_network() can search distinct
/// shapes on pool workers concurrently. The search itself is a pure
/// function of the layer shape, which makes the schedules bit-identical
/// for every thread count; `threads == 1` (the default) walks the
/// historical fully serial path.

namespace rota::sched {

/// Version of the mapper's search algorithm and cost model. Bump whenever
/// a change can alter the schedule chosen for some layer shape: persisted
/// schedule caches (rota::svc) key on this, so stale entries from an older
/// search are never replayed as current results.
inline constexpr int kMapperVersion = 3;

/// Mapper search-space options.
struct MapperOptions {
  /// Restrict spatial and local-buffer tiling factors to exact divisors of
  /// their loop bounds — the Timeloop/NeuroSpector mapspace convention and
  /// the default, matching the mappings the paper's evaluation consumes.
  /// When false, any factor is admitted and the cost model charges the
  /// padding in traffic and tile count; this generalized mapper fills the
  /// array better and *shrinks* the wear-leveling headroom (see the
  /// abl_mapper bench).
  bool exact_factors_only = true;
  /// Worker lanes for schedule_network(): 1 = serial (default), 0 = one
  /// lane per hardware thread, N = at most N shapes searched at once.
  /// Any value yields identical schedules.
  int threads = 1;
};

/// Canonical memo key: the twelve LayerSpec shape fields (everything but
/// the name), compared and hashed as integers so a cache probe costs no
/// string formatting or allocation.
struct LayerShapeKey {
  int kind = 0;
  std::int64_t batch = 0;
  std::int64_t out_channels = 0;
  std::int64_t in_channels = 0;
  std::int64_t in_h = 0;
  std::int64_t in_w = 0;
  std::int64_t kernel_h = 0;
  std::int64_t kernel_w = 0;
  std::int64_t stride_h = 0;
  std::int64_t stride_w = 0;
  std::int64_t pad_h = 0;
  std::int64_t pad_w = 0;
  std::int64_t groups = 0;

  [[nodiscard]] static LayerShapeKey of(const nn::LayerSpec& layer);
  bool operator==(const LayerShapeKey& other) const = default;
};

/// splitmix64-style avalanche over the key fields.
struct LayerShapeKeyHash {
  [[nodiscard]] std::size_t operator()(const LayerShapeKey& key) const;
};

/// Deterministic tie-breaking makes schedules reproducible across runs:
/// energy, then cycles, then larger utilization space, then lexicographic
/// mapping order.
class Mapper {
 public:
  explicit Mapper(arch::AcceleratorConfig cfg, arch::EnergyModel energy = {},
                  MapperOptions options = {});

  [[nodiscard]] const arch::AcceleratorConfig& config() const { return cost_.config(); }
  [[nodiscard]] const MapperOptions& options() const { return options_; }

  /// Energy-optimal schedule of one layer. Throws util::invariant_error if
  /// no feasible mapping exists (cannot happen for validated layers on a
  /// non-degenerate accelerator). Thread-safe: concurrent callers share
  /// the striped shape memo.
  LayerSchedule schedule_layer(const nn::LayerSpec& layer);

  /// Schedule every layer of a network in execution order. With
  /// options().threads != 1, distinct layer shapes are deduped up front
  /// and searched concurrently; the resulting schedules are bit-identical
  /// to the serial path.
  NetworkSchedule schedule_network(const nn::Network& net);

  /// Number of distinct shapes searched so far (memoization statistic).
  [[nodiscard]] std::size_t cache_size() const;

 private:
  /// Tiling-factor ladder for a loop bound, clipped to [1, cap]: the
  /// bound's divisors (precomputed by the caller, ascending), plus the cap
  /// itself in imperfect-factorization mode. Scratch comes from `arena`,
  /// the per-search bump arena (reset between layer searches).
  util::ArenaVector<std::int64_t> factor_ladder(
      util::Arena& arena, const util::ArenaVector<std::int64_t>& bound_divisors,
      std::int64_t bound, std::int64_t cap) const;

  /// Candidate spatial factors for a loop bound across `array_dim` PEs.
  util::ArenaVector<std::int64_t> spatial_candidates(
      util::Arena& arena, const util::ArenaVector<std::int64_t>& bound_divisors,
      std::int64_t bound, std::int64_t array_dim) const;

  [[nodiscard]] LayerSchedule search(const nn::LayerSpec& layer) const;

  /// One lock stripe of the shape memo; shapes hash to a fixed shard, so
  /// concurrent searches of distinct shapes rarely contend.
  struct CacheShard {
    mutable util::Mutex mu;
    std::unordered_map<LayerShapeKey, LayerSchedule, LayerShapeKeyHash> map
        ROTA_GUARDED_BY(mu);
  };
  static constexpr std::size_t kCacheShards = 8;

  CacheShard& shard_of(const LayerShapeKey& key);

  CostModel cost_;
  MapperOptions options_;
  std::array<CacheShard, kCacheShards> cache_;
};

}  // namespace rota::sched
