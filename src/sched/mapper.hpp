#pragma once

#include <array>
#include <cstddef>
#include <unordered_map>
#include <vector>

#include "nn/network.hpp"
#include "sched/array_state.hpp"
#include "sched/cost.hpp"
#include "sched/objective.hpp"
#include "sched/schedule.hpp"
#include "util/arena.hpp"
#include "util/thread_annotations.hpp"

/// \file mapper.hpp
/// Exhaustive, deterministic search for the optimal mapping of each layer
/// — the NeuroSpector-lite substitute described in DESIGN.md. The mapping
/// space is bounded: both spatial dimension choices, every spatial factor
/// up to the array size, and a divisor-derived ladder of local-buffer
/// tiling factors. Results are memoized by layer shape, which collapses
/// the repeated blocks of ResNet / Llama-style networks to one search
/// each.
///
/// What "optimal" means is pluggable (DESIGN.md §15): the mapper is
/// constructed with an ObjectiveSpec — energy (the historical default),
/// projected lifetime, throughput, or a weighted scalarization over the
/// per-layer Pareto front of (energy, projected MTTF, cycles) — and with
/// an ArrayState whose dead PEs the feasibility check and the lifetime
/// math respect. pareto_layer()/pareto_network() expose the front itself.
///
/// Concurrency (DESIGN.md §9): the shape memo is striped across
/// independently locked shards, so schedule_network() can search distinct
/// shapes on pool workers concurrently. The search itself is a pure
/// function of the layer shape, objective and array state, which makes
/// the schedules and fronts bit-identical for every thread count;
/// `threads == 1` (the default) walks the historical fully serial path.

namespace rota::sched {

/// Version of the mapper's search algorithm and cost model. Bump whenever
/// a change can alter the schedule chosen for some layer shape: persisted
/// schedule caches (rota::svc) key on this, so stale entries from an older
/// search are never replayed as current results. Version 4: objective /
/// array-state aware search (energy objective on an intact array chooses
/// exactly the version-3 schedules; the fingerprint still carries the
/// objective id and array digest so fronts never alias across objectives).
inline constexpr int kMapperVersion = 4;

/// Mapper search-space options.
struct MapperOptions {
  /// Restrict spatial and local-buffer tiling factors to exact divisors of
  /// their loop bounds — the Timeloop/NeuroSpector mapspace convention and
  /// the default, matching the mappings the paper's evaluation consumes.
  /// When false, any factor is admitted and the cost model charges the
  /// padding in traffic and tile count; this generalized mapper fills the
  /// array better and *shrinks* the wear-leveling headroom (see the
  /// abl_mapper bench).
  bool exact_factors_only = true;
  /// Worker lanes for schedule_network(): 1 = serial (default), 0 = one
  /// lane per hardware thread, N = at most N shapes searched at once.
  /// Any value yields identical schedules.
  int threads = 1;
};

/// Canonical memo key: the twelve LayerSpec shape fields (everything but
/// the name), compared and hashed as integers so a cache probe costs no
/// string formatting or allocation.
struct LayerShapeKey {
  int kind = 0;
  std::int64_t batch = 0;
  std::int64_t out_channels = 0;
  std::int64_t in_channels = 0;
  std::int64_t in_h = 0;
  std::int64_t in_w = 0;
  std::int64_t kernel_h = 0;
  std::int64_t kernel_w = 0;
  std::int64_t stride_h = 0;
  std::int64_t stride_w = 0;
  std::int64_t pad_h = 0;
  std::int64_t pad_w = 0;
  std::int64_t groups = 0;

  [[nodiscard]] static LayerShapeKey of(const nn::LayerSpec& layer);
  bool operator==(const LayerShapeKey& other) const = default;
};

/// splitmix64-style avalanche over the key fields.
struct LayerShapeKeyHash {
  [[nodiscard]] std::size_t operator()(const LayerShapeKey& key) const;
};

/// Deterministic tie-breaking makes schedules reproducible across runs.
/// The energy objective orders candidates by energy ascending, then
/// cycles ascending, then utilization space sx·sy *descending* (a
/// performance-aware optimizer prefers more parallelism at equal cost),
/// then lexicographic mapping order over (dim_x, dim_y, sx, sy, lb_c,
/// lb_q, lb_s) — pinned by sched_test's comparator unit test. The other
/// objectives swap in their leading axis and fall through to the same
/// chain (objective.hpp).
class Mapper {
 public:
  /// The objective-based constructor every in-repo caller uses (the
  /// mapper-objective lint rule enforces this). A non-default `array`
  /// must match cfg's geometry; the default all-live state plus the
  /// energy objective reproduces the historical mapper byte-for-byte.
  explicit Mapper(arch::AcceleratorConfig cfg, ObjectiveSpec objective,
                  arch::EnergyModel energy = {}, MapperOptions options = {},
                  ArrayState array = {});

  [[deprecated(
      "pass a sched::ObjectiveSpec (sched/objective.hpp); this shim pins "
      "the legacy energy objective and will be removed")]] explicit
  Mapper(arch::AcceleratorConfig cfg, arch::EnergyModel energy = {},
         MapperOptions options = {});

  [[nodiscard]] const arch::AcceleratorConfig& config() const { return cost_.config(); }
  [[nodiscard]] const MapperOptions& options() const { return options_; }
  [[nodiscard]] const ObjectiveSpec& objective() const { return objective_; }
  [[nodiscard]] const ArrayState& array_state() const { return array_; }

  /// Objective-optimal schedule of one layer. Throws util::invariant_error
  /// if no feasible mapping exists (possible on a heavily degraded array;
  /// cannot happen for validated layers on an intact, non-degenerate
  /// accelerator). Thread-safe: concurrent callers share the striped
  /// shape memo.
  LayerSchedule schedule_layer(const nn::LayerSpec& layer);

  /// Schedule every layer of a network in execution order. With
  /// options().threads != 1, distinct layer shapes are deduped up front
  /// and searched concurrently; the resulting schedules are bit-identical
  /// to the serial path.
  NetworkSchedule schedule_network(const nn::Network& net);

  /// The layer's full Pareto front over (energy, projected MTTF, cycles),
  /// canonically ordered, with this mapper's scalarization pick flagged
  /// `selected`. Not memoized (fronts are requested explicitly, not in
  /// inner loops).
  [[nodiscard]] LayerParetoFront pareto_layer(const nn::LayerSpec& layer) const;

  /// Per-layer fronts for a whole network; unique shapes are searched
  /// once (concurrently when options().threads != 1) and the results are
  /// slot-indexed, so the output is bit-identical at any thread count.
  [[nodiscard]] NetworkParetoFront pareto_network(const nn::Network& net) const;

  /// Number of distinct shapes searched so far (memoization statistic).
  [[nodiscard]] std::size_t cache_size() const;

 private:
  /// Candidate counters of one layer search (metrics feed).
  struct SearchCounters {
    std::int64_t evaluated = 0;
    std::int64_t feasible = 0;
  };

  /// Tiling-factor ladder for a loop bound, clipped to [1, cap]: the
  /// bound's divisors (precomputed by the caller, ascending), plus the cap
  /// itself in imperfect-factorization mode. Scratch comes from `arena`,
  /// the per-search bump arena (reset between layer searches).
  util::ArenaVector<std::int64_t> factor_ladder(
      util::Arena& arena, const util::ArenaVector<std::int64_t>& bound_divisors,
      std::int64_t bound, std::int64_t cap) const;

  /// Candidate spatial factors for a loop bound across `array_dim` PEs.
  util::ArenaVector<std::int64_t> spatial_candidates(
      util::Arena& arena, const util::ArenaVector<std::int64_t>& bound_divisors,
      std::int64_t bound, std::int64_t array_dim) const;

  /// Walk the bounded mapping space in its one canonical order, invoking
  /// `fn(mapping, cost)` for every feasible candidate (cost-model valid
  /// *and* placeable on the array state). Defined in mapper.cpp; both the
  /// argmin and the Pareto searches are this enumeration plus a fold.
  template <class Fn>
  SearchCounters enumerate_candidates(const nn::LayerSpec& layer,
                                      Fn&& fn) const;

  [[nodiscard]] LayerSchedule search(const nn::LayerSpec& layer) const;
  [[nodiscard]] LayerSchedule search_weighted(const nn::LayerSpec& layer) const;

  /// The layer's Pareto front as parallel arrays (points[i] priced by
  /// costs[i]), canonically sorted. \post !points.empty().
  void build_front(const nn::LayerSpec& layer, std::vector<ParetoPoint>& points,
                   std::vector<CostResult>& costs) const;

  /// One lock stripe of the shape memo; shapes hash to a fixed shard, so
  /// concurrent searches of distinct shapes rarely contend.
  struct CacheShard {
    mutable util::Mutex mu;
    std::unordered_map<LayerShapeKey, LayerSchedule, LayerShapeKeyHash> map
        ROTA_GUARDED_BY(mu);
  };
  static constexpr std::size_t kCacheShards = 8;

  CacheShard& shard_of(const LayerShapeKey& key);

  CostModel cost_;
  ObjectiveSpec objective_;
  MapperOptions options_;
  ArrayState array_;
  std::array<CacheShard, kCacheShards> cache_;
};

}  // namespace rota::sched
