#pragma once

#include <unordered_map>

#include "nn/network.hpp"
#include "sched/cost.hpp"
#include "sched/schedule.hpp"

/// \file mapper.hpp
/// Exhaustive, deterministic search for the energy-optimal mapping of each
/// layer — the NeuroSpector-lite substitute described in DESIGN.md. The
/// mapping space is bounded: both spatial dimension choices, every spatial
/// factor up to the array size, and a divisor-derived ladder of local-buffer
/// tiling factors. Results are memoized by layer shape, which collapses the
/// repeated blocks of ResNet / Llama-style networks to one search each.

namespace rota::sched {

/// Mapper search-space options.
struct MapperOptions {
  /// Restrict spatial and local-buffer tiling factors to exact divisors of
  /// their loop bounds — the Timeloop/NeuroSpector mapspace convention and
  /// the default, matching the mappings the paper's evaluation consumes.
  /// When false, any factor is admitted and the cost model charges the
  /// padding in traffic and tile count; this generalized mapper fills the
  /// array better and *shrinks* the wear-leveling headroom (see the
  /// abl_mapper bench).
  bool exact_factors_only = true;
};

/// Deterministic tie-breaking makes schedules reproducible across runs:
/// energy, then cycles, then larger utilization space, then lexicographic
/// mapping order.
class Mapper {
 public:
  explicit Mapper(arch::AcceleratorConfig cfg, arch::EnergyModel energy = {},
                  MapperOptions options = {});

  [[nodiscard]] const arch::AcceleratorConfig& config() const { return cost_.config(); }
  [[nodiscard]] const MapperOptions& options() const { return options_; }

  /// Energy-optimal schedule of one layer. Throws util::invariant_error if
  /// no feasible mapping exists (cannot happen for validated layers on a
  /// non-degenerate accelerator).
  LayerSchedule schedule_layer(const nn::LayerSpec& layer);

  /// Schedule every layer of a network in execution order.
  NetworkSchedule schedule_network(const nn::Network& net);

  /// Number of distinct shapes searched so far (memoization statistic).
  [[nodiscard]] std::size_t cache_size() const { return cache_.size(); }

 private:
  /// Candidate tiling factors for a loop bound, clipped to [1, cap]: all
  /// divisors, plus the cap itself in imperfect-factorization mode.
  std::vector<std::int64_t> factor_ladder(std::int64_t bound,
                                          std::int64_t cap) const;

  /// Candidate spatial factors for a loop bound across `array_dim` PEs.
  std::vector<std::int64_t> spatial_candidates(std::int64_t bound,
                                               std::int64_t array_dim) const;

  [[nodiscard]] LayerSchedule search(const nn::LayerSpec& layer) const;

  CostModel cost_;
  MapperOptions options_;
  std::unordered_map<std::string, LayerSchedule> cache_;
};

}  // namespace rota::sched
