#pragma once

#include <unordered_map>

#include "nn/network.hpp"
#include "sched/cost.hpp"
#include "sched/schedule.hpp"

/// \file rs_mapper.hpp
/// Row-stationary (RS) dataflow engine — the mapping family of the
/// Eyeriss platform the paper's evaluation runs on (§II, ref. [2]).
///
/// In RS, each PE runs a 1-D row convolution: it holds one filter row
/// (S weights) in its register file and slides it across one input row,
/// producing partial sums for one output row. A *PE set* for a 2-D
/// convolution is therefore R rows tall (one per filter row, partial sums
/// accumulating vertically) and up to `E = out_h` columns wide (one output
/// row per column). Sets larger than the array are folded into strips of
/// at most `w` columns; strips stack vertically, and any remaining
/// vertical capacity is filled by replicating the set across output
/// channels. The resulting occupied rectangle is the utilization space the
/// wear simulator sees.
///
/// This engine is deliberately analytic (no search): RS fixes the spatial
/// shape, and only the temporal loops remain, which the GLB-tile grouping
/// of the shared cost conventions already covers. It exists alongside the
/// flexible Mapper so the wear-leveling results can be reproduced under
/// the platform's native dataflow (see bench/abl_dataflow).

namespace rota::sched {

/// Derived geometry of one RS mapping.
struct RsGeometry {
  std::int64_t set_width = 1;        ///< output rows per strip (<= w, <= E)
  std::int64_t strips = 1;           ///< strips placed vertically at once
  std::int64_t replication = 1;      ///< channel replicas stacked above
  std::int64_t passes_e = 1;         ///< temporal folds over output rows
  std::int64_t space_x = 1;          ///< utilization-space width
  std::int64_t space_y = 1;          ///< utilization-space height
};

/// Compute the RS placement of a layer on a w×h array.
/// \pre layer validated; R <= h (filter taller than the array is folded
/// over filter rows and treated as R = h).
RsGeometry rs_geometry(const nn::LayerSpec& layer, std::int64_t array_width,
                       std::int64_t array_height);

/// Row-stationary scheduler with the same interface shape as Mapper.
class RsMapper {
 public:
  explicit RsMapper(arch::AcceleratorConfig cfg,
                    arch::EnergyModel energy = {});

  [[nodiscard]] const arch::AcceleratorConfig& config() const { return cfg_; }

  LayerSchedule schedule_layer(const nn::LayerSpec& layer);
  NetworkSchedule schedule_network(const nn::Network& net);

 private:
  [[nodiscard]] LayerSchedule derive(const nn::LayerSpec& layer) const;

  arch::AcceleratorConfig cfg_;
  arch::EnergyModel energy_;
  std::unordered_map<std::string, LayerSchedule> cache_;
};

}  // namespace rota::sched
