#include "sched/serialize.hpp"

#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace rota::sched {

namespace {

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  for (char ch : line) {
    if (ch == ',') {
      cells.push_back(cell);
      cell.clear();
    } else if (ch != '\r') {
      cell += ch;
    }
  }
  cells.push_back(cell);
  return cells;
}

std::int64_t to_int(const std::string& text, const std::string& what) {
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  ROTA_REQUIRE(!text.empty() && end != nullptr && *end == '\0',
               "expected an integer for " + what + ", got '" + text + "'");
  return static_cast<std::int64_t>(v);
}

double to_double(const std::string& text, const std::string& what) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  ROTA_REQUIRE(!text.empty() && end != nullptr && *end == '\0',
               "expected a number for " + what + ", got '" + text + "'");
  return v;
}

}  // namespace

void write_schedule_csv(const NetworkSchedule& ns, std::ostream& out) {
  out << "layer,x,y,tiles,output_tiles,allocations_per_tile,reduction_steps,"
         "scatter_words,compute_macs_per_pe,gather_words,energy,cycles,"
         "macs\n";
  for (const auto& l : ns.layers) {
    ROTA_REQUIRE(l.layer_name.find_first_of(",\"\n") == std::string::npos,
                 "layer name not CSV-safe: " + l.layer_name);
    out << l.layer_name << ',' << l.space.x << ',' << l.space.y << ','
        << l.tiles << ',' << l.output_tiles << ',' << l.allocations_per_tile
        << ',' << l.reduction_steps << ',' << l.scatter_words << ','
        << l.compute_macs_per_pe << ',' << l.gather_words << ',' << l.energy
        << ',' << l.cycles << ',' << l.macs << '\n';
  }
}

NetworkSchedule read_schedule_csv(std::istream& in,
                                  const arch::AcceleratorConfig& cfg,
                                  const std::string& network_name,
                                  const std::string& network_abbr) {
  cfg.validate();
  NetworkSchedule ns;
  ns.network_name = network_name;
  ns.network_abbr = network_abbr;
  ns.config = cfg;

  std::string line;
  ROTA_REQUIRE(static_cast<bool>(std::getline(in, line)),
               "schedule CSV is empty");
  const std::vector<std::string> header = split_csv_line(line);
  std::map<std::string, std::size_t> col;
  for (std::size_t i = 0; i < header.size(); ++i) col[header[i]] = i;
  for (const char* required : {"layer", "x", "y", "tiles"}) {
    ROTA_REQUIRE(col.count(required) == 1,
                 std::string("schedule CSV is missing column '") + required +
                     "'");
  }

  auto cell = [&](const std::vector<std::string>& row, const char* name,
                  const std::string& fallback) -> std::string {
    auto it = col.find(name);
    if (it == col.end()) return fallback;
    ROTA_REQUIRE(it->second < row.size(),
                 std::string("row too short for column '") + name + "'");
    return row[it->second];
  };

  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line == "\r") continue;
    const std::vector<std::string> row = split_csv_line(line);
    const std::string where = "line " + std::to_string(line_no);

    LayerSchedule l;
    l.layer_name = cell(row, "layer", "");
    ROTA_REQUIRE(!l.layer_name.empty(), where + ": empty layer name");
    l.space.x = to_int(cell(row, "x", ""), where + " x");
    l.space.y = to_int(cell(row, "y", ""), where + " y");
    l.tiles = to_int(cell(row, "tiles", ""), where + " tiles");
    ROTA_REQUIRE(l.space.x >= 1 && l.space.x <= cfg.array_width,
                 where + ": x out of range for the array");
    ROTA_REQUIRE(l.space.y >= 1 && l.space.y <= cfg.array_height,
                 where + ": y out of range for the array");
    ROTA_REQUIRE(l.tiles >= 0, where + ": negative tile count");

    l.output_tiles = to_int(cell(row, "output_tiles",
                                 std::to_string(l.tiles)),
                            where + " output_tiles");
    l.allocations_per_tile = to_int(cell(row, "allocations_per_tile", "1"),
                                    where + " allocations_per_tile");
    l.reduction_steps =
        to_int(cell(row, "reduction_steps", "1"), where + " reduction_steps");
    l.scatter_words =
        to_int(cell(row, "scatter_words", "0"), where + " scatter_words");
    l.compute_macs_per_pe = to_int(cell(row, "compute_macs_per_pe", "1"),
                                   where + " compute_macs_per_pe");
    l.gather_words =
        to_int(cell(row, "gather_words", "0"), where + " gather_words");
    l.energy = to_double(cell(row, "energy", "0"), where + " energy");
    l.cycles = to_double(cell(row, "cycles", "0"), where + " cycles");
    l.macs = to_int(cell(row, "macs", "0"), where + " macs");
    l.shape_key = "csv:" + l.layer_name;
    ns.layers.push_back(std::move(l));
  }
  ROTA_REQUIRE(!ns.layers.empty(), "schedule CSV has no data rows");
  return ns;
}

}  // namespace rota::sched
