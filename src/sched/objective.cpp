#include "sched/objective.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <tuple>

#include "util/check.hpp"

namespace rota::sched {

namespace {

using util::ErrorCode;

/// Shortest decimal form that parses back to exactly `value` — stable,
/// locale-independent, and human-readable ("0.5", not 17 digits).
std::string round_trip_double(double value) {
  char buf[64];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  return buf;
}

std::tuple<int, int, std::int64_t, std::int64_t, std::int64_t, std::int64_t,
           std::int64_t>
lex_key(const Mapping& m) {
  return {static_cast<int>(m.dim_x), static_cast<int>(m.dim_y),
          m.sx,  m.sy,  m.lb_c, m.lb_q, m.lb_s};
}

/// One weight token of "weighted:w1,w2,w3": a fully-consumed, finite,
/// non-negative double.
util::Result<double> parse_weight(std::string_view token,
                                  std::string_view whole) {
  const std::string text(token);
  const auto bad = [&](const char* why) {
    return util::Error{ErrorCode::kInvalidArgument,
                       std::string("bad objective weight '") + text + "' in '" +
                           std::string(whole) + "': " + why};
  };
  if (text.empty()) return bad("empty");
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) return bad("not a number");
  if (!std::isfinite(value)) return bad("not finite");
  if (value < 0.0) return bad("negative");
  return value;
}

}  // namespace

std::string_view to_string(ObjectiveKind kind) {
  switch (kind) {
    case ObjectiveKind::kEnergy:
      return "energy";
    case ObjectiveKind::kLifetime:
      return "lifetime";
    case ObjectiveKind::kThroughput:
      return "throughput";
    case ObjectiveKind::kWeighted:
      return "weighted";
  }
  ROTA_UNREACHABLE("unhandled ObjectiveKind");
}

std::string ObjectiveSpec::id() const {
  if (kind != ObjectiveKind::kWeighted) return std::string(to_string(kind));
  return "weighted:" + weights_csv();
}

std::string ObjectiveSpec::weights_csv() const {
  return round_trip_double(weights.energy) + "," +
         round_trip_double(weights.lifetime) + "," +
         round_trip_double(weights.cycles);
}

ObjectiveSpec ObjectiveSpec::weighted(double w_energy, double w_lifetime,
                                      double w_cycles) {
  ROTA_REQUIRE(std::isfinite(w_energy) && std::isfinite(w_lifetime) &&
                   std::isfinite(w_cycles),
               "objective weights must be finite");
  ROTA_REQUIRE(w_energy >= 0.0 && w_lifetime >= 0.0 && w_cycles >= 0.0,
               "objective weights must be non-negative");
  ROTA_REQUIRE(w_energy + w_lifetime + w_cycles > 0.0,
               "objective weights must not all be zero");
  return {ObjectiveKind::kWeighted, {w_energy, w_lifetime, w_cycles}};
}

util::Result<ObjectiveSpec> parse_objective(std::string_view text) {
  if (text == "energy") return ObjectiveSpec::energy();
  if (text == "lifetime") return ObjectiveSpec::lifetime();
  if (text == "throughput") return ObjectiveSpec::throughput();
  constexpr std::string_view kWeightedPrefix = "weighted:";
  if (text.substr(0, kWeightedPrefix.size()) == kWeightedPrefix) {
    std::string_view rest = text.substr(kWeightedPrefix.size());
    double weights[3] = {0.0, 0.0, 0.0};
    for (int i = 0; i < 3; ++i) {
      const std::size_t comma = rest.find(',');
      if ((i < 2) != (comma != std::string_view::npos)) {
        return {ErrorCode::kInvalidArgument,
                "objective '" + std::string(text) +
                    "': weighted needs exactly three comma-separated "
                    "weights (weighted:<w1>,<w2>,<w3>)"};
      }
      auto weight = parse_weight(rest.substr(0, comma), text);
      if (!weight.ok()) return weight.error();
      weights[i] = weight.value();
      if (comma != std::string_view::npos) rest = rest.substr(comma + 1);
    }
    if (weights[0] + weights[1] + weights[2] <= 0.0) {
      return {ErrorCode::kInvalidArgument,
              "objective '" + std::string(text) +
                  "': at least one weight must be positive"};
    }
    return ObjectiveSpec::weighted(weights[0], weights[1], weights[2]);
  }
  return {ErrorCode::kInvalidArgument,
          "unknown objective '" + std::string(text) +
              "' (expected energy, lifetime, throughput or "
              "weighted:<w1>,<w2>,<w3>)"};
}

double projected_mttf(std::int64_t pe_allocations, std::int64_t live_pes,
                      double beta) {
  ROTA_REQUIRE(pe_allocations >= 1, "projected_mttf needs >= 1 allocation");
  ROTA_REQUIRE(live_pes >= 1, "projected_mttf needs >= 1 live PE");
  ROTA_REQUIRE(beta > 0.0, "projected_mttf needs beta > 0");
  const double inv_beta = 1.0 / beta;
  return std::tgamma(1.0 + inv_beta) *
         std::pow(static_cast<double>(live_pes), 1.0 - inv_beta) /
         static_cast<double>(pe_allocations);
}

bool mapping_lex_less(const Mapping& a, const Mapping& b) {
  return lex_key(a) < lex_key(b);
}

bool dominates(const ParetoPoint& a, const ParetoPoint& b) {
  if (a.energy > b.energy || a.mttf < b.mttf || a.cycles > b.cycles) {
    return false;
  }
  return a.energy < b.energy || a.mttf > b.mttf || a.cycles < b.cycles;
}

bool pareto_canonical_less(const ParetoPoint& a, const ParetoPoint& b) {
  if (a.energy != b.energy) return a.energy < b.energy;
  if (a.cycles != b.cycles) return a.cycles < b.cycles;
  if (a.mttf != b.mttf) return a.mttf > b.mttf;
  return mapping_lex_less(a.mapping, b.mapping);
}

bool objective_better(const ObjectiveSpec& spec, const CostResult& a,
                      const Mapping& ma, const CostResult& b,
                      const Mapping& mb) {
  ROTA_REQUIRE(spec.kind != ObjectiveKind::kWeighted,
               "objective_better is defined for pure objectives only; the "
               "weighted objective collapses a Pareto front");
  // The lifetime leader: fewer PE-allocations == higher projected MTTF
  // for a fixed live-PE count (projected_mttf is strictly decreasing in
  // A), compared exactly in integers.
  if (spec.kind == ObjectiveKind::kLifetime) {
    const std::int64_t alloc_a = a.tiles * ma.sx * ma.sy;
    const std::int64_t alloc_b = b.tiles * mb.sx * mb.sy;
    if (alloc_a != alloc_b) return alloc_a < alloc_b;
  }
  if (spec.kind == ObjectiveKind::kThroughput) {
    if (a.cycles != b.cycles) return a.cycles < b.cycles;
  }
  // The historical energy chain. For kEnergy this whole function is
  // byte-for-byte the pre-objective comparator: energy, then cycles, then
  // larger utilization space, then lexicographic mapping order.
  if (a.energy != b.energy) return a.energy < b.energy;
  if (a.cycles != b.cycles) return a.cycles < b.cycles;
  const std::int64_t area_a = ma.sx * ma.sy;
  const std::int64_t area_b = mb.sx * mb.sy;
  if (area_a != area_b) return area_a > area_b;
  return mapping_lex_less(ma, mb);
}

std::size_t select_from_front(const std::vector<ParetoPoint>& points,
                              const ObjectiveSpec& spec) {
  ROTA_REQUIRE(!points.empty(), "select_from_front needs a non-empty front");
  if (spec.kind == ObjectiveKind::kWeighted) {
    double energy_min = points.front().energy;
    double cycles_min = points.front().cycles;
    double mttf_max = points.front().mttf;
    for (const ParetoPoint& p : points) {
      energy_min = std::min(energy_min, p.energy);
      cycles_min = std::min(cycles_min, p.cycles);
      mttf_max = std::max(mttf_max, p.mttf);
    }
    // Normalize each axis by the front's own optimum so the weights mean
    // "relative sacrifice", independent of the layer's absolute scale.
    const double energy_ref = energy_min > 0.0 ? energy_min : 1.0;
    const double cycles_ref = cycles_min > 0.0 ? cycles_min : 1.0;
    const auto score = [&](const ParetoPoint& p) {
      return spec.weights.energy * (p.energy / energy_ref) +
             spec.weights.lifetime * (mttf_max / p.mttf) +
             spec.weights.cycles * (p.cycles / cycles_ref);
    };
    std::size_t best = 0;
    double best_score = score(points[0]);
    for (std::size_t i = 1; i < points.size(); ++i) {
      const double s = score(points[i]);
      if (s < best_score) {
        best = i;
        best_score = s;
      }
    }
    return best;
  }
  const auto better = [&](const ParetoPoint& a, const ParetoPoint& b) {
    switch (spec.kind) {
      case ObjectiveKind::kThroughput:
        if (a.cycles != b.cycles) return a.cycles < b.cycles;
        break;
      case ObjectiveKind::kLifetime:
        if (a.pe_allocations != b.pe_allocations) {
          return a.pe_allocations < b.pe_allocations;
        }
        break;
      case ObjectiveKind::kEnergy:
      case ObjectiveKind::kWeighted:
        break;
    }
    if (a.energy != b.energy) return a.energy < b.energy;
    if (a.cycles != b.cycles) return a.cycles < b.cycles;
    const std::int64_t area_a = a.mapping.sx * a.mapping.sy;
    const std::int64_t area_b = b.mapping.sx * b.mapping.sy;
    if (area_a != area_b) return area_a > area_b;
    return mapping_lex_less(a.mapping, b.mapping);
  };
  std::size_t best = 0;
  for (std::size_t i = 1; i < points.size(); ++i) {
    if (better(points[i], points[best])) best = i;
  }
  return best;
}

}  // namespace rota::sched
