#pragma once

#include <cstdint>
#include <string>

/// \file mapping.hpp
/// A point in the scheduler's mapping space. The PE array is used as a
/// 2-D spatial stage: one loop dimension is laid across the array width
/// (the utilization-space width x) and one across the height (y), with
/// temporal tiling factors for the data held in PE-local buffers.
///
/// Spatial candidates follow the common dataflow families:
///   width  ← output channels K (weight-stationary columns) or
///            output columns  Q (output-stationary columns);
///   height ← output rows     P (output-parallel rows) or
///            input channels  C (spatial reduction down each column,
///            partial sums riding the local network).
/// Factors need not divide the loop bounds; the cost model pads the bound
/// to the next multiple and charges the padding in traffic and tile count,
/// so near-divisors win only when the waste is genuinely small.

namespace rota::sched {

/// Which loop dimension is spatialized across the array width.
enum class SpatialX : std::uint8_t {
  kOutChannels,  ///< K across columns
  kOutWidth,     ///< Q across columns
};

/// Which loop dimension is spatialized across the array height.
enum class SpatialY : std::uint8_t {
  kOutHeight,   ///< P across rows
  kInChannels,  ///< C across rows (spatial reduction)
};

std::string to_string(SpatialX dim);
std::string to_string(SpatialY dim);

/// One candidate mapping of a layer onto the PE array.
struct Mapping {
  SpatialX dim_x = SpatialX::kOutChannels;
  SpatialY dim_y = SpatialY::kOutHeight;
  std::int64_t sx = 1;    ///< utilization-space width x (PE columns used)
  std::int64_t sy = 1;    ///< utilization-space height y (PE rows used)
  std::int64_t lb_c = 1;  ///< input channels resident per PE per tile
  std::int64_t lb_q = 1;  ///< output columns produced per PE per tile
  std::int64_t lb_s = 1;  ///< filter-column taps resident per PE per tile

  [[nodiscard]] std::string str() const;

  friend bool operator==(const Mapping&, const Mapping&) = default;
};

}  // namespace rota::sched
