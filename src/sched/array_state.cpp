#include "sched/array_state.hpp"

#include <cstdio>

#include "util/check.hpp"

namespace rota::sched {

namespace {

/// FNV-1a over a byte string: tiny, stable across platforms, and the
/// hashing convention the ScheduleCache fingerprints already use.
std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t h = 14695981039346656037ULL;
  for (const char c : text) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

ArrayState::ArrayState(
    std::int64_t width, std::int64_t height,
    const std::vector<std::pair<std::int64_t, std::int64_t>>& dead)
    : width_(width), height_(height) {
  ROTA_REQUIRE(width >= 1 && height >= 1,
               "ArrayState needs a positive geometry");
  dead_.assign(static_cast<std::size_t>(width_ * height_), 0);
  for (const auto& [u, v] : dead) {
    ROTA_REQUIRE(u >= 0 && u < width_ && v >= 0 && v < height_,
                 "dead PE (" + std::to_string(u) + "," + std::to_string(v) +
                     ") outside the " + std::to_string(width_) + "x" +
                     std::to_string(height_) + " array");
    dead_[static_cast<std::size_t>(v * width_ + u)] = 1;
  }
  build_tables();
}

ArrayState::ArrayState(const rel::SpareRemapper& spares)
    : width_(spares.width()), height_(spares.height()) {
  dead_.assign(static_cast<std::size_t>(width_ * height_), 0);
  for (std::int64_t v = 0; v < height_; ++v) {
    for (std::int64_t u = 0; u < width_; ++u) {
      if (spares.is_dead(u, v) && spares.spare_of(u, v) < 0) {
        dead_[static_cast<std::size_t>(v * width_ + u)] = 1;
      }
    }
  }
  build_tables();
}

std::size_t ArrayState::size_index(std::int64_t x, std::int64_t y) const {
  ROTA_REQUIRE(x >= 1 && x <= width_ && y >= 1 && y <= height_,
               "window " + std::to_string(x) + "x" + std::to_string(y) +
                   " outside the " + std::to_string(width_) + "x" +
                   std::to_string(height_) + " array");
  return static_cast<std::size_t>((y - 1) * width_ + (x - 1));
}

void ArrayState::build_tables() {
  const std::size_t cells = static_cast<std::size_t>(width_ * height_);
  dead_count_ = 0;
  for (const std::uint8_t d : dead_) dead_count_ += d;

  fits_.assign(cells, 1);
  anchor_u_.assign(cells, 0);
  anchor_v_.assign(cells, 0);
  if (dead_count_ == 0) return;  // digest stays "live", every window fits

  // Digest the geometry plus the sorted dead set (row-major scan order is
  // already sorted by (v, u)).
  std::string content =
      std::to_string(width_) + "x" + std::to_string(height_) + "|";
  for (std::int64_t v = 0; v < height_; ++v) {
    for (std::int64_t u = 0; u < width_; ++u) {
      if (dead_[static_cast<std::size_t>(v * width_ + u)] != 0) {
        content += std::to_string(u) + "," + std::to_string(v) + ";";
      }
    }
  }
  char hex[32];
  std::snprintf(hex, sizeof hex, "fnv1a:%016llx",
                static_cast<unsigned long long>(fnv1a(content)));
  digest_ = hex;

  // Doubled-grid prefix sums make every wrapped-window dead count O(1):
  // prefix[i][j] = dead PEs in rows < i, cols < j of the 2h×2w tiling.
  const std::int64_t w2 = 2 * width_;
  const std::int64_t h2 = 2 * height_;
  std::vector<std::int64_t> prefix(
      static_cast<std::size_t>((h2 + 1) * (w2 + 1)), 0);
  const auto pre = [&](std::int64_t i, std::int64_t j) -> std::int64_t& {
    return prefix[static_cast<std::size_t>(i * (w2 + 1) + j)];
  };
  for (std::int64_t i = 1; i <= h2; ++i) {
    for (std::int64_t j = 1; j <= w2; ++j) {
      const std::int64_t d = dead_[static_cast<std::size_t>(
          ((i - 1) % height_) * width_ + ((j - 1) % width_))];
      pre(i, j) = d + pre(i - 1, j) + pre(i, j - 1) - pre(i - 1, j - 1);
    }
  }
  const auto window_dead = [&](std::int64_t u, std::int64_t v, std::int64_t x,
                               std::int64_t y) {
    return pre(v + y, u + x) - pre(v, u + x) - pre(v + y, u) + pre(v, u);
  };

  for (std::int64_t y = 1; y <= height_; ++y) {
    for (std::int64_t x = 1; x <= width_; ++x) {
      const std::size_t idx = static_cast<std::size_t>((y - 1) * width_ +
                                                       (x - 1));
      fits_[idx] = 0;
      for (std::int64_t v = 0; v < height_ && fits_[idx] == 0; ++v) {
        for (std::int64_t u = 0; u < width_; ++u) {
          if (window_dead(u, v, x, y) == 0) {
            fits_[idx] = 1;
            anchor_u_[idx] = u;
            anchor_v_[idx] = v;
            break;
          }
        }
      }
    }
  }
}

std::int64_t ArrayState::live_count(std::int64_t width,
                                    std::int64_t height) const {
  ROTA_REQUIRE(width >= 1 && height >= 1,
               "live_count needs a positive geometry");
  if (width_ == 0) return width * height;
  ROTA_REQUIRE(width == width_ && height == height_,
               "ArrayState is " + std::to_string(width_) + "x" +
                   std::to_string(height_) + " but the accelerator array is " +
                   std::to_string(width) + "x" + std::to_string(height));
  return width_ * height_ - dead_count_;
}

bool ArrayState::dead(std::int64_t u, std::int64_t v) const {
  ROTA_REQUIRE(width_ > 0, "dead() needs a concrete ArrayState");
  ROTA_REQUIRE(u >= 0 && u < width_ && v >= 0 && v < height_,
               "PE (" + std::to_string(u) + "," + std::to_string(v) +
                   ") outside the array");
  return dead_[static_cast<std::size_t>(v * width_ + u)] != 0;
}

bool ArrayState::window_clear(std::int64_t u, std::int64_t v, std::int64_t x,
                              std::int64_t y) const {
  if (width_ == 0) return true;
  ROTA_REQUIRE(u >= 0 && u < width_ && v >= 0 && v < height_,
               "window anchor outside the array");
  (void)size_index(x, y);  // validates the window size
  if (dead_count_ == 0) return true;
  for (std::int64_t dv = 0; dv < y; ++dv) {
    const std::int64_t row = (v + dv) % height_;
    for (std::int64_t du = 0; du < x; ++du) {
      const std::int64_t col = (u + du) % width_;
      if (dead_[static_cast<std::size_t>(row * width_ + col)] != 0) {
        return false;
      }
    }
  }
  return true;
}

std::pair<std::int64_t, std::int64_t> ArrayState::anchor(std::int64_t x,
                                                         std::int64_t y) const {
  if (width_ == 0) return {0, 0};
  const std::size_t idx = size_index(x, y);
  ROTA_REQUIRE(fits_[idx] != 0, "anchor() of an infeasible window");
  return {anchor_u_[idx], anchor_v_[idx]};
}

}  // namespace rota::sched
