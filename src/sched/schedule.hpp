#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arch/config.hpp"
#include "arch/energy.hpp"
#include "sched/cost.hpp"
#include "sched/mapping.hpp"

/// \file schedule.hpp
/// The scheduler's output: per-layer utilization spaces and tile counts,
/// which are the only inputs the wear simulator needs (paper §V: "The size
/// of each layer's utilization space is obtained from NeuroSpector [...]
/// and we composed a simulator to track the usage count of individual PEs").

namespace rota::sched {

/// Rectangular region of PEs exercised by one data tile.
struct UtilSpace {
  std::int64_t x = 1;  ///< width in PEs
  std::int64_t y = 1;  ///< height in PEs
};

/// Energy-optimal execution plan of one layer.
struct LayerSchedule {
  std::string layer_name;
  std::string shape_key;
  UtilSpace space;
  /// Z: GLB-resident data tiles — the unit at which the wear-leveling
  /// origin strides (paper §II / Table I). Each data tile groups
  /// `allocations_per_tile` output tiles; each output tile runs
  /// `reduction_steps` local-buffer refills on the same x×y space.
  std::int64_t tiles = 0;
  Mapping mapping;
  arch::AccessCounts accesses;
  double energy = 0.0;
  double cycles = 0.0;
  std::int64_t macs = 0;

  // Tiling hierarchy below the data tile, for the execution engine.
  std::int64_t output_tiles = 0;          ///< N·Tk·Tp·Tq output tiles
  std::int64_t allocations_per_tile = 1;  ///< output tiles per data tile
  std::int64_t scatter_words = 0;       ///< input + weight words per refill
  std::int64_t compute_macs_per_pe = 0; ///< MACs each active PE performs
  std::int64_t gather_words = 0;        ///< output words drained per reduction
  std::int64_t reduction_steps = 1;     ///< refills per output drain

  /// PE utilization ratio of this layer: x·y / (w·h).
  [[nodiscard]] double utilization(const arch::AcceleratorConfig& cfg) const {
    return static_cast<double>(space.x * space.y) /
           static_cast<double>(cfg.pe_count());
  }
};

/// Execution plan of a whole network on one accelerator.
struct NetworkSchedule {
  std::string network_name;
  std::string network_abbr;
  arch::AcceleratorConfig config;
  std::vector<LayerSchedule> layers;

  /// Unweighted mean of per-layer PE utilization ratios (Fig. 2a metric).
  [[nodiscard]] double mean_utilization() const;

  /// Mean PE utilization weighted by each layer's tile count — the
  /// fraction of dispatches that activate a given fraction of the array.
  [[nodiscard]] double tile_weighted_utilization() const;

  /// Total tiles per inference iteration.
  [[nodiscard]] std::int64_t total_tiles() const;

  /// Total energy / cycles per inference iteration.
  [[nodiscard]] double total_energy() const;
  [[nodiscard]] double total_cycles() const;
};

}  // namespace rota::sched
