#pragma once

#include <cstdint>

#include "arch/config.hpp"
#include "arch/energy.hpp"
#include "nn/layer.hpp"
#include "sched/mapping.hpp"

/// \file cost.hpp
/// Analytical cost model of one (layer, mapping) pair: validity against
/// buffer capacities, access counts per memory level, energy in MAC units,
/// execution cycles, and the tile (utilization-space dispatch) count Z
/// that the wear simulator consumes.
///
/// The traffic model is Timeloop-style: loop bounds are padded to the
/// chosen factors, per-dispatch footprints are derived from the loop nest,
/// and DRAM traffic is the better of two outer-loop orders (output-tile
/// outer with weights streamed, or output-channel outer with weights
/// resident). See DESIGN.md §2 for the substitution rationale.

namespace rota::sched {

/// Outer-loop order chosen by the DRAM traffic model.
enum class OuterOrder : std::uint8_t {
  kOutputTileOuter,     ///< (n, p, q) outer; weights stream per pass
  kOutputChannelOuter,  ///< k outer; weights loaded once, inputs may reload
};

/// Cost-model verdict for one mapping.
struct CostResult {
  bool valid = false;          ///< false if any capacity constraint fails
  std::int64_t tiles = 0;      ///< Z: utilization-space dispatches
  arch::AccessCounts accesses; ///< per-level access counts
  double energy = 0.0;         ///< MAC-normalized energy
  double cycles = 0.0;         ///< pipelined execution cycles
  OuterOrder order = OuterOrder::kOutputTileOuter;

  // Tiling hierarchy: `tiles` (above) counts GLB-resident *data tiles* —
  // the unit at which the wear-leveling origin strides (paper §II). Each
  // data tile groups `allocations_per_tile` output tiles, and each output
  // tile takes `reduction_steps` local-buffer refills.
  std::int64_t output_tiles = 0;          ///< N·Tk·Tp·Tq output tiles
  std::int64_t allocations_per_tile = 1;  ///< output tiles per data tile

  // Per-refill quantities consumed by the execution engine (sim module).
  std::int64_t scatter_words = 0;       ///< input + weight words per refill
  std::int64_t compute_macs_per_pe = 0; ///< MACs each active PE performs
  std::int64_t gather_words = 0;        ///< output words drained per reduction
  std::int64_t reduction_steps = 1;     ///< refills per output drain
};

/// Evaluates mappings for a fixed accelerator and energy model.
class CostModel {
 public:
  CostModel(arch::AcceleratorConfig cfg, arch::EnergyModel energy = {});

  [[nodiscard]] const arch::AcceleratorConfig& config() const { return cfg_; }
  [[nodiscard]] const arch::EnergyModel& energy_model() const { return energy_; }

  /// Evaluate one candidate mapping. Never throws for in-range mappings;
  /// infeasible candidates return {valid = false}.
  [[nodiscard]] CostResult evaluate(const nn::LayerSpec& layer, const Mapping& m) const;

 private:
  arch::AcceleratorConfig cfg_;
  arch::EnergyModel energy_;
};

}  // namespace rota::sched
