#pragma once

#include <istream>
#include <ostream>

#include "sched/schedule.hpp"

/// \file serialize.hpp
/// CSV serialization of network schedules. Export lets users re-plot or
/// post-process mappings; import lets them bypass the built-in mapper and
/// feed utilization spaces from an external scheduler (e.g. real
/// NeuroSpector output) straight into the wear simulator — the exact
/// interface the paper's toolflow uses.

namespace rota::sched {

/// Write a schedule as CSV with header
///   layer,x,y,tiles,output_tiles,allocations_per_tile,reduction_steps,
///   scatter_words,compute_macs_per_pe,gather_words,energy,cycles,macs
/// Layer names must not contain commas, quotes or newlines.
void write_schedule_csv(const NetworkSchedule& ns, std::ostream& out);

/// Read a schedule from CSV. Requires at least the columns
/// layer, x, y, tiles (by header name, any order); the remaining columns
/// are optional and default sensibly. Each row is validated against the
/// accelerator geometry. Throws util::precondition_error on malformed
/// input.
NetworkSchedule read_schedule_csv(std::istream& in,
                                  const arch::AcceleratorConfig& cfg,
                                  const std::string& network_name = "csv",
                                  const std::string& network_abbr = "csv");

}  // namespace rota::sched
