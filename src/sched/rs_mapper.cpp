#include "sched/rs_mapper.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/math.hpp"

namespace rota::sched {

using util::ceil_div;

RsGeometry rs_geometry(const nn::LayerSpec& layer, std::int64_t array_width,
                       std::int64_t array_height) {
  ROTA_REQUIRE(array_width > 0 && array_height > 0,
               "array dimensions must be positive");
  RsGeometry g;
  const std::int64_t e = layer.out_h();
  const std::int64_t r = std::min(layer.kernel_h, array_height);

  g.set_width = std::min(e, array_width);
  g.passes_e = ceil_div(e, g.set_width);
  const std::int64_t strips_fit = std::max<std::int64_t>(1, array_height / r);
  g.strips = std::min(strips_fit, g.passes_e);
  g.replication =
      std::min(strips_fit / g.strips, layer.out_channels);
  g.space_x = g.set_width;
  g.space_y = g.strips * g.replication * r;
  ROTA_ENSURE(g.space_y <= array_height, "RS placement exceeds array height");
  return g;
}

RsMapper::RsMapper(arch::AcceleratorConfig cfg, arch::EnergyModel energy)
    : cfg_(std::move(cfg)), energy_(energy) {
  cfg_.validate();
}

LayerSchedule RsMapper::derive(const nn::LayerSpec& layer) const {
  const RsGeometry g = rs_geometry(layer, cfg_.array_width,
                                   cfg_.array_height);
  const std::int64_t n = layer.batch;
  const std::int64_t k = layer.out_channels;
  const std::int64_t cg = layer.channels_per_group();
  const std::int64_t q = layer.out_w();
  const std::int64_t r = std::min(layer.kernel_h, cfg_.array_height);
  const std::int64_t s = layer.kernel_w;
  const std::int64_t r_folds = ceil_div(layer.kernel_h, r);

  // Temporal loops: output columns in register-file-sized chunks, output
  // rows in groups of `strips` strips, filters in groups of `replication`,
  // and the full reduction (channels × filter-row folds) per output.
  const std::int64_t q_tile = std::min(q, cfg_.lb_output_words());
  const std::int64_t tq = ceil_div(q, q_tile);
  const std::int64_t te = ceil_div(g.passes_e, g.strips);
  const std::int64_t tk = ceil_div(k, g.replication);
  const std::int64_t red_steps = cg * r_folds;

  const std::int64_t output_tiles = n * te * tk * tq;
  const std::int64_t lb_refills = output_tiles * red_steps;

  // Per-refill footprints (words).
  const std::int64_t in_rows = (g.set_width - 1) * layer.stride_h + r;
  const std::int64_t in_cols = (q_tile - 1) * layer.stride_w + s;
  const std::int64_t in_refill = g.strips * in_rows * in_cols;
  const std::int64_t w_refill = g.replication * r * s;
  const std::int64_t out_tile =
      g.strips * g.set_width * q_tile * g.replication;

  LayerSchedule sched;
  sched.layer_name = layer.name;
  sched.shape_key = layer.shape_key();
  sched.space = UtilSpace{g.space_x, g.space_y};
  sched.macs = layer.macs();
  sched.output_tiles = output_tiles;
  sched.reduction_steps = red_steps;
  sched.scatter_words = in_refill + w_refill;
  sched.compute_macs_per_pe = q_tile * s;
  sched.gather_words = out_tile;

  // Record the RS shape in the shared Mapping slot (spatial extents only;
  // output rows run across the array width in RS, filter rows down the
  // height — kOutWidth/kOutHeight are the nearest tags).
  sched.mapping.dim_x = SpatialX::kOutWidth;
  sched.mapping.dim_y = SpatialY::kOutHeight;
  sched.mapping.sx = g.space_x;
  sched.mapping.sy = g.space_y;
  sched.mapping.lb_q = q_tile;
  sched.mapping.lb_s = s;
  sched.mapping.lb_c = 1;

  // GLB-tile grouping, as in CostModel: one output tile's unique working
  // set spans its whole reduction.
  const std::int64_t w_alloc = g.replication * cg * layer.kernel_h * s;
  const std::int64_t in_alloc = cg * g.strips * in_rows *
                                ((q_tile - 1) * layer.stride_w + s);
  const std::int64_t alloc_words = w_alloc + in_alloc + out_tile;
  sched.allocations_per_tile = std::min(
      std::max<std::int64_t>(1, cfg_.glb_words() / alloc_words),
      output_tiles);
  sched.tiles = ceil_div(output_tiles, sched.allocations_per_tile);

  // Access counts and energy.
  arch::AccessCounts& acc = sched.accesses;
  acc.macs = layer.macs();
  acc.lb_accesses = 3 * acc.macs;
  // Partial sums ride the local network up the R rows of each set.
  acc.inter_pe_hops =
      n * k * layer.out_h() * layer.out_w() * cg * (r - 1);
  acc.glb_accesses = lb_refills * (in_refill + w_refill) +
                     n * k * layer.out_h() * layer.out_w() *
                         (2 * red_steps - 1);
  const std::int64_t glb_share = cfg_.glb_words() / 2;
  const std::int64_t input_total = layer.input_words();
  const std::int64_t weight_total = layer.weight_words();
  std::int64_t dram = layer.output_words();
  dram += (input_total <= glb_share) ? input_total : input_total * tk;
  dram += (weight_total <= glb_share) ? weight_total : weight_total * te * tq;
  acc.dram_accesses = dram;
  sched.energy = arch::total_energy(energy_, acc);

  // Cycles: the same steady-state pipeline convention as CostModel.
  const double bw = static_cast<double>(cfg_.global_net_words_per_cycle);
  const double compute = static_cast<double>(sched.compute_macs_per_pe);
  const double load =
      std::ceil(static_cast<double>(sched.scatter_words) / bw);
  const double drain = static_cast<double>(out_tile) /
                       (bw * static_cast<double>(red_steps));
  sched.cycles = static_cast<double>(lb_refills) *
                     std::max({compute, load, drain}) +
                 load + compute;
  return sched;
}

LayerSchedule RsMapper::schedule_layer(const nn::LayerSpec& layer) {
  layer.validate();
  const std::string key = layer.shape_key();
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    LayerSchedule sched = it->second;
    sched.layer_name = layer.name;
    return sched;
  }
  LayerSchedule sched = derive(layer);
  cache_.emplace(key, sched);
  return sched;
}

NetworkSchedule RsMapper::schedule_network(const nn::Network& net) {
  NetworkSchedule ns;
  ns.network_name = net.name();
  ns.network_abbr = net.abbr();
  ns.config = cfg_;
  ns.layers.reserve(net.layer_count());
  for (const auto& layer : net.layers()) {
    ns.layers.push_back(schedule_layer(layer));
  }
  return ns;
}

}  // namespace rota::sched
