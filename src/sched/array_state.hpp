#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "reliability/spares.hpp"

/// \file array_state.hpp
/// Live/dead PE map of the accelerator array, consumed by the mapper's
/// feasibility check and lifetime objective (DESIGN.md §15). A degraded
/// array is one where some PEs are dead and not covered by a spare; a
/// mapping is feasible on it only if its sx×sy utilization window has at
/// least one anchor (torus wrap allowed, matching the RWL rotation
/// geometry) that avoids every dead, un-spared PE — so the schedule
/// routes around dead silicon instead of discovering it at simulation
/// time.
///
/// Construction is O(w²·h²) once (a doubled-grid prefix sum answers every
/// window query in O(1)); after that fits and anchor are table lookups,
/// so the mapper's per-candidate cost is unchanged. The default-constructed
/// state is the universal "all live" map valid for any geometry — it is
/// what every pre-existing call site gets, and its fast path keeps the
/// default search byte-identical to the pre-ArrayState mapper.

namespace rota::sched {

class ArrayState {
 public:
  /// All-live sentinel accepted by any accelerator geometry.
  ArrayState() = default;

  /// Concrete map: `dead` lists (u, v) coordinates of dead, un-spared
  /// PEs (duplicates collapse). \pre width, height >= 1; coordinates in
  /// range.
  ArrayState(std::int64_t width, std::int64_t height,
             const std::vector<std::pair<std::int64_t, std::int64_t>>& dead);

  /// Snapshot of a SpareRemapper: a PE is dead here only when it failed
  /// *and* has no spare in service (spared PEs still carry their work).
  explicit ArrayState(const rel::SpareRemapper& spares);

  /// False for the default-constructed universal all-live state.
  [[nodiscard]] bool concrete() const { return width_ > 0; }
  [[nodiscard]] std::int64_t width() const { return width_; }
  [[nodiscard]] std::int64_t height() const { return height_; }
  [[nodiscard]] std::int64_t dead_count() const { return dead_count_; }

  /// Live PEs of a `width`×`height` array under this state.
  /// \pre a concrete state's geometry must match the queried one.
  [[nodiscard]] std::int64_t live_count(std::int64_t width,
                                        std::int64_t height) const;

  /// Whether PE (u, v) is dead and un-spared. \pre concrete(), in range.
  [[nodiscard]] bool dead(std::int64_t u, std::int64_t v) const;

  /// Whether an x×y utilization window has any torus-wrapped anchor
  /// free of dead PEs. Always true for the all-live state.
  [[nodiscard]] bool fits(std::int64_t x, std::int64_t y) const {
    if (width_ == 0) return true;
    return fits_[size_index(x, y)] != 0;
  }

  /// First feasible anchor for an x×y window, scanning v (rows) then u
  /// (columns); (0, 0) for the all-live state. \pre fits(x, y).
  [[nodiscard]] std::pair<std::int64_t, std::int64_t> anchor(
      std::int64_t x, std::int64_t y) const;

  /// Whether the x×y window anchored at (u, v) — torus wrap allowed —
  /// avoids every dead, un-spared PE. Always true for the all-live state.
  /// Used by the masked wear policies to filter a rotation trajectory
  /// down to its feasible anchors. \pre coordinates and size in range.
  [[nodiscard]] bool window_clear(std::int64_t u, std::int64_t v,
                                  std::int64_t x, std::int64_t y) const;

  /// Stable content digest for cache fingerprints and manifests: the
  /// sentinel "live" when no PE is dead — concrete or not, an intact
  /// array schedules identically either way — otherwise
  /// "fnv1a:<16 hex digits>" over the geometry and the sorted dead set.
  [[nodiscard]] const std::string& digest() const { return digest_; }

 private:
  [[nodiscard]] std::size_t size_index(std::int64_t x, std::int64_t y) const;
  void build_tables();

  std::int64_t width_ = 0;
  std::int64_t height_ = 0;
  std::int64_t dead_count_ = 0;
  std::vector<std::uint8_t> dead_;  ///< w·h, row-major [v][u]
  std::vector<std::uint8_t> fits_;  ///< w·h, indexed by window size
  std::vector<std::int64_t> anchor_u_;
  std::vector<std::int64_t> anchor_v_;
  std::string digest_ = "live";
};

}  // namespace rota::sched
