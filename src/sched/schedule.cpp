#include "sched/schedule.hpp"

namespace rota::sched {

double NetworkSchedule::mean_utilization() const {
  if (layers.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& l : layers) sum += l.utilization(config);
  return sum / static_cast<double>(layers.size());
}

double NetworkSchedule::tile_weighted_utilization() const {
  double weighted = 0.0;
  double total = 0.0;
  for (const auto& l : layers) {
    weighted += l.utilization(config) * static_cast<double>(l.tiles);
    total += static_cast<double>(l.tiles);
  }
  return total > 0.0 ? weighted / total : 0.0;
}

std::int64_t NetworkSchedule::total_tiles() const {
  std::int64_t total = 0;
  for (const auto& l : layers) total += l.tiles;
  return total;
}

double NetworkSchedule::total_energy() const {
  double total = 0.0;
  for (const auto& l : layers) total += l.energy;
  return total;
}

double NetworkSchedule::total_cycles() const {
  double total = 0.0;
  for (const auto& l : layers) total += l.cycles;
  return total;
}

}  // namespace rota::sched
