#include "svc/jsonv.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include "util/check.hpp"

namespace rota::svc {

using util::ErrorCode;

bool JsonValue::boolean() const {
  ROTA_REQUIRE(is_bool(), "JsonValue::boolean() on a non-bool");
  return bool_;
}

double JsonValue::number() const {
  ROTA_REQUIRE(is_number(), "JsonValue::number() on a non-number");
  return number_;
}

const std::string& JsonValue::str() const {
  ROTA_REQUIRE(is_string(), "JsonValue::str() on a non-string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::array() const {
  ROTA_REQUIRE(is_array(), "JsonValue::array() on a non-array");
  return array_;
}

const JsonValue::Members& JsonValue::members() const {
  ROTA_REQUIRE(is_object(), "JsonValue::members() on a non-object");
  return members_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

util::Result<std::int64_t> JsonValue::as_int64() const {
  if (!is_number()) {
    return {ErrorCode::kInvalidArgument, "expected a number"};
  }
  // Exact-integer check: 2^53 bounds the doubles that can hold every
  // integer losslessly, and covers every field in the request protocol.
  if (std::floor(number_) != number_ || std::abs(number_) > 9007199254740992.0)
    return {ErrorCode::kInvalidArgument, "expected an integral number"};
  return static_cast<std::int64_t>(number_);
}

util::Result<std::uint64_t> JsonValue::as_uint64() const {
  auto v = as_int64();
  if (!v.ok()) return v.error();
  if (v.value() < 0)
    return {ErrorCode::kInvalidArgument, "expected a non-negative number"};
  return static_cast<std::uint64_t>(v.value());
}

/// Recursive-descent parser mirroring obs::json_valid's grammar, but
/// building values. Positions are tracked for error messages.
class JsonParser {
 public:
  JsonParser(std::string_view text, int max_depth)
      : text_(text), max_depth_(max_depth) {}

  util::Result<JsonValue> run() {
    skip_ws();
    JsonValue value;
    if (!parse_value(value, 0)) return take_error();
    skip_ws();
    if (pos_ != text_.size()) {
      return fail("trailing characters after JSON document");
    }
    return value;
  }

 private:
  util::Error error_{ErrorCode::kInvalidArgument, ""};
  bool failed_ = false;

  util::Result<JsonValue> take_error() { return error_; }

  bool fail_at(const std::string& message) {
    if (!failed_) {
      failed_ = true;
      error_.message =
          message + " at byte " + std::to_string(pos_) + " of JSON input";
    }
    return false;
  }

  util::Result<JsonValue> fail(const std::string& message) {
    fail_at(message);
    return error_;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  bool consume(char c) {
    if (at_end() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > max_depth_) return fail_at("nesting too deep");
    if (at_end()) return fail_at("unexpected end of input");
    switch (peek()) {
      case '{':
        return parse_object(out, depth);
      case '[':
        return parse_array(out, depth);
      case '"':
        out.kind_ = JsonValue::Kind::kString;
        return parse_string(out.string_);
      case 't':
        return parse_literal("true", out, JsonValue::Kind::kBool, true);
      case 'f':
        return parse_literal("false", out, JsonValue::Kind::kBool, false);
      case 'n':
        return parse_literal("null", out, JsonValue::Kind::kNull, false);
      default:
        return parse_number(out);
    }
  }

  bool parse_literal(std::string_view word, JsonValue& out,
                     JsonValue::Kind kind, bool value) {
    if (text_.substr(pos_, word.size()) != word)
      return fail_at("invalid literal");
    pos_ += word.size();
    out.kind_ = kind;
    out.bool_ = value;
    return true;
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (!at_end() && peek() == '-') ++pos_;
    if (at_end() || !std::isdigit(static_cast<unsigned char>(peek())))
      return fail_at("invalid number");
    // RFC 8259: no leading zeros ("01" is two tokens, i.e. an error).
    const bool leading_zero = peek() == '0';
    while (!at_end() && std::isdigit(static_cast<unsigned char>(peek())))
      ++pos_;
    if (leading_zero && pos_ - start > (text_[start] == '-' ? 2u : 1u))
      return fail_at("invalid number: leading zero");
    if (!at_end() && peek() == '.') {
      ++pos_;
      if (at_end() || !std::isdigit(static_cast<unsigned char>(peek())))
        return fail_at("invalid number: digit required after '.'");
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek())))
        ++pos_;
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!at_end() && (peek() == '+' || peek() == '-')) ++pos_;
      if (at_end() || !std::isdigit(static_cast<unsigned char>(peek())))
        return fail_at("invalid number: digit required in exponent");
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek())))
        ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    out.kind_ = JsonValue::Kind::kNumber;
    out.number_ = std::strtod(token.c_str(), nullptr);
    if (!std::isfinite(out.number_))
      return fail_at("number out of range");
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return fail_at("expected '\"'");
    out.clear();
    while (true) {
      if (at_end()) return fail_at("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20)
        return fail_at("raw control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (at_end()) return fail_at("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          if (!parse_hex4(code)) return false;
          // Surrogate pair: a high half must be followed by \uDC00..DFFF.
          if (code >= 0xD800 && code <= 0xDBFF) {
            unsigned low = 0;
            if (!(consume('\\') && consume('u') && parse_hex4(low)) ||
                low < 0xDC00 || low > 0xDFFF)
              return fail_at("invalid surrogate pair");
            append_utf8(out, 0x10000 + ((code - 0xD800) << 10) +
                                 (low - 0xDC00));
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return fail_at("stray low surrogate");
          } else {
            append_utf8(out, code);
          }
          break;
        }
        default:
          return fail_at("invalid escape character");
      }
    }
  }

  bool parse_hex4(unsigned& code) {
    code = 0;
    for (int i = 0; i < 4; ++i) {
      if (at_end()) return fail_at("truncated \\u escape");
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return fail_at("invalid \\u escape digit");
      }
    }
    return true;
  }

  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool parse_array(JsonValue& out, int depth) {
    consume('[');
    out.kind_ = JsonValue::Kind::kArray;
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      JsonValue element;
      skip_ws();
      if (!parse_value(element, depth + 1)) return false;
      out.array_.push_back(std::move(element));
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return fail_at("expected ',' or ']' in array");
    }
  }

  bool parse_object(JsonValue& out, int depth) {
    consume('{');
    out.kind_ = JsonValue::Kind::kObject;
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (at_end() || peek() != '"')
        return fail_at("expected string key in object");
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) return fail_at("expected ':' after object key");
      skip_ws();
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      out.members_.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return fail_at("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int max_depth_;
};

util::Result<JsonValue> JsonValue::parse(std::string_view text,
                                         int max_depth) {
  return JsonParser(text, max_depth).run();
}

}  // namespace rota::svc
