#include "svc/cache.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/metrics.hpp"
#include "util/check.hpp"
#include "util/io.hpp"

namespace rota::svc {

namespace {

/// Entry format version. Bump on any layout change: readers reject
/// unknown versions (treated as a miss and recomputed).
constexpr int kCacheFormatVersion = 1;
constexpr const char* kMagic = "rota-schedule-cache";

/// Doubles are stored as hexfloats: exact round-trip, locale-free.
std::string hexfloat(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

}  // namespace

std::uint64_t stable_fingerprint_hash(std::string_view text) {
  // FNV-1a 64-bit.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

ScheduleCacheKey ScheduleCacheKey::of(const arch::AcceleratorConfig& accel,
                                      const sched::LayerShapeKey& shape,
                                      const sched::MapperOptions& options,
                                      const sched::ObjectiveSpec& objective,
                                      std::string_view array_digest,
                                      int mapper_version) {
  // Every field that can change the search result, in a fixed order. The
  // topology is included defensively: it does not steer today's cost
  // model, but a future mapper version may consult it and the cost of the
  // extra misses is zero (topology is fixed per deployment). The
  // objective id already encodes the weights for weighted:...; the
  // canonical weight vector is appended anyway so the fingerprint stays
  // self-describing.
  std::ostringstream os;
  os << "v" << mapper_version << "|exact=" << (options.exact_factors_only ? 1 : 0)
     << "|obj=" << objective.id() << "|ow=" << objective.weights_csv()
     << "|arr_state=" << array_digest
     << "|arr=" << accel.array_width << 'x' << accel.array_height
     << "|topo=" << static_cast<int>(accel.topology)
     << "|word=" << accel.word_bytes << "|lb=" << accel.lb_input_bytes << ','
     << accel.lb_weight_bytes << ',' << accel.lb_output_bytes
     << "|glb=" << accel.glb_bytes
     << "|net=" << accel.global_net_words_per_cycle << "|shape=" << shape.kind;
  for (const std::int64_t field :
       {shape.batch, shape.out_channels, shape.in_channels, shape.in_h,
        shape.in_w, shape.kernel_h, shape.kernel_w, shape.stride_h,
        shape.stride_w, shape.pad_h, shape.pad_w, shape.groups}) {
    os << ',' << field;
  }
  ScheduleCacheKey key;
  key.fingerprint = os.str();
  key.hash = stable_fingerprint_hash(key.fingerprint);
  return key;
}

// ------------------------------------------------------- entry encoding --

std::string encode_cache_entry(const ScheduleCacheKey& key,
                               const sched::LayerSchedule& value) {
  std::ostringstream os;
  os << kMagic << " v" << kCacheFormatVersion << '\n'
     << "fingerprint " << key.fingerprint << '\n'
     << "shape_key " << value.shape_key << '\n'
     << "space " << value.space.x << ' ' << value.space.y << '\n'
     << "tiles " << value.tiles << '\n'
     << "output_tiles " << value.output_tiles << '\n'
     << "allocations_per_tile " << value.allocations_per_tile << '\n'
     << "reduction_steps " << value.reduction_steps << '\n'
     << "scatter_words " << value.scatter_words << '\n'
     << "compute_macs_per_pe " << value.compute_macs_per_pe << '\n'
     << "gather_words " << value.gather_words << '\n'
     << "macs " << value.macs << '\n'
     << "mapping " << static_cast<int>(value.mapping.dim_x) << ' '
     << static_cast<int>(value.mapping.dim_y) << ' ' << value.mapping.sx
     << ' ' << value.mapping.sy << ' ' << value.mapping.lb_c << ' '
     << value.mapping.lb_q << ' ' << value.mapping.lb_s << '\n'
     << "accesses " << value.accesses.macs << ' ' << value.accesses.lb_accesses
     << ' ' << value.accesses.inter_pe_hops << ' '
     << value.accesses.glb_accesses << ' ' << value.accesses.dram_accesses
     << '\n'
     << "energy " << hexfloat(value.energy) << '\n'
     << "cycles " << hexfloat(value.cycles) << '\n'
     << "end\n";
  return os.str();
}

namespace {

/// Line-oriented reader: `take("tiles")` returns the payload of the next
/// line iff it starts with that tag, else flags corruption.
class EntryReader {
 public:
  explicit EntryReader(std::string_view text) : in_(std::string(text)) {}

  bool take(const std::string& tag, std::string& payload) {
    std::string line;
    if (!std::getline(in_, line)) return false;
    if (line.rfind(tag + " ", 0) != 0 && line != tag) return false;
    payload = line.size() > tag.size() ? line.substr(tag.size() + 1) : "";
    return true;
  }

  bool take_i64(const std::string& tag, std::int64_t& out) {
    std::string payload;
    if (!take(tag, payload)) return false;
    return parse_i64(payload, out);
  }

  static bool parse_i64(const std::string& text, std::int64_t& out) {
    if (text.empty()) return false;
    char* end = nullptr;
    const long long v = std::strtoll(text.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') return false;
    out = static_cast<std::int64_t>(v);
    return true;
  }

  static bool parse_double(const std::string& text, double& out) {
    if (text.empty()) return false;
    char* end = nullptr;
    out = std::strtod(text.c_str(), &end);
    return end != nullptr && *end == '\0';
  }

 private:
  std::istringstream in_;
};

}  // namespace

util::Result<sched::LayerSchedule> decode_cache_entry(
    std::string_view text, const ScheduleCacheKey& key) {
  const auto corrupt = [](const std::string& what) {
    return util::Error{util::ErrorCode::kInvalidArgument,
                       "cache entry " + what};
  };
  EntryReader reader(text);
  std::string payload;
  // Built with append rather than "v" + to_string(...): GCC 12 at -O3
  // raises a spurious -Wrestrict on operator+(const char*, string&&).
  std::string expected_version = "v";
  expected_version += std::to_string(kCacheFormatVersion);
  if (!reader.take(kMagic, payload) || payload != expected_version) {
    return corrupt("has a missing or unsupported format header");
  }
  if (!reader.take("fingerprint", payload) || payload != key.fingerprint) {
    return corrupt("fingerprint does not match the requested key");
  }

  sched::LayerSchedule out;
  if (!reader.take("shape_key", out.shape_key))
    return corrupt("is missing shape_key");

  std::string space;
  if (!reader.take("space", space)) return corrupt("is missing space");
  {
    std::istringstream ss(space);
    if (!(ss >> out.space.x >> out.space.y) || out.space.x < 1 ||
        out.space.y < 1) {
      return corrupt("has a malformed space line");
    }
  }

  struct Field {
    const char* tag;
    std::int64_t* slot;
  };
  const Field fields[] = {
      {"tiles", &out.tiles},
      {"output_tiles", &out.output_tiles},
      {"allocations_per_tile", &out.allocations_per_tile},
      {"reduction_steps", &out.reduction_steps},
      {"scatter_words", &out.scatter_words},
      {"compute_macs_per_pe", &out.compute_macs_per_pe},
      {"gather_words", &out.gather_words},
      {"macs", &out.macs},
  };
  for (const Field& f : fields) {
    if (!reader.take_i64(f.tag, *f.slot))
      return corrupt(std::string("has a malformed ") + f.tag + " line");
  }
  if (out.tiles < 1) return corrupt("has a non-positive tile count");

  if (!reader.take("mapping", payload))
    return corrupt("is missing the mapping line");
  {
    std::istringstream ss(payload);
    int dim_x = 0;
    int dim_y = 0;
    if (!(ss >> dim_x >> dim_y >> out.mapping.sx >> out.mapping.sy >>
          out.mapping.lb_c >> out.mapping.lb_q >> out.mapping.lb_s) ||
        dim_x < 0 || dim_x > 1 || dim_y < 0 || dim_y > 1) {
      return corrupt("has a malformed mapping line");
    }
    out.mapping.dim_x = static_cast<sched::SpatialX>(dim_x);
    out.mapping.dim_y = static_cast<sched::SpatialY>(dim_y);
  }

  if (!reader.take("accesses", payload))
    return corrupt("is missing the accesses line");
  {
    std::istringstream ss(payload);
    if (!(ss >> out.accesses.macs >> out.accesses.lb_accesses >>
          out.accesses.inter_pe_hops >> out.accesses.glb_accesses >>
          out.accesses.dram_accesses)) {
      return corrupt("has a malformed accesses line");
    }
  }

  if (!reader.take("energy", payload) ||
      !EntryReader::parse_double(payload, out.energy)) {
    return corrupt("has a malformed energy line");
  }
  if (!reader.take("cycles", payload) ||
      !EntryReader::parse_double(payload, out.cycles)) {
    return corrupt("has a malformed cycles line");
  }
  if (!reader.take("end", payload))
    return corrupt("is truncated (missing end marker)");
  return out;
}

// ------------------------------------------------------------ the cache --

ScheduleCache::ScheduleCache(ScheduleCacheOptions options)
    : options_(std::move(options)) {
  if (options_.capacity < kShards) options_.capacity = kShards;
  if (options_.disk_dir.empty()) return;
  // Sweep temp files orphaned by a crash between write and rename. Only
  // our own naming pattern (<hash>.rsc.tmp) is touched; sweep errors are
  // ignored (the directory may not exist yet).
  std::error_code ec;
  std::filesystem::directory_iterator it(options_.disk_dir, ec);
  if (ec) return;
  std::int64_t removed = 0;
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    if (name.size() <= 8 || name.rfind(".rsc.tmp") != name.size() - 8)
      continue;
    std::error_code remove_ec;
    if (std::filesystem::remove(entry.path(), remove_ec)) ++removed;
  }
  if (removed > 0) {
    obs::MetricsRegistry::global().add("svc.cache.orphans_removed", removed);
    // Construction is single-threaded, but the capability model has no
    // "not yet published" notion — take the lock like everyone else.
    const util::MutexLock stats_lock(stats_mu_);
    stats_.orphans_removed = removed;
  }
}

ScheduleCache::Shard& ScheduleCache::shard_of(const ScheduleCacheKey& key) {
  return shards_[static_cast<std::size_t>(key.hash) % kShards];
}

std::size_t ScheduleCache::shard_capacity() const {
  return options_.capacity / kShards;
}

std::string ScheduleCache::disk_path(const ScheduleCacheKey& key) const {
  if (options_.disk_dir.empty()) return {};
  char name[32];
  std::snprintf(name, sizeof name, "%016llx.rsc",
                static_cast<unsigned long long>(key.hash));
  return (std::filesystem::path(options_.disk_dir) / name).string();
}

std::optional<sched::LayerSchedule> ScheduleCache::lookup(
    const ScheduleCacheKey& key) {
  Shard& shard = shard_of(key);
  {
    const util::MutexLock lock(shard.mu);
    const auto it = shard.map.find(key.fingerprint);
    if (it != shard.map.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
      obs::MetricsRegistry::global().add("svc.cache.hits_mem");
      const util::MutexLock stats_lock(stats_mu_);
      ++stats_.hits_memory;
      return it->second.value;
    }
  }
  if (auto from_disk = load_from_disk(key)) {
    // Promote into memory so the next probe is lock-and-return.
    insert_memory_only(key, *from_disk);
    obs::MetricsRegistry::global().add("svc.cache.hits_disk");
    const util::MutexLock stats_lock(stats_mu_);
    ++stats_.hits_disk;
    return from_disk;
  }
  obs::MetricsRegistry::global().add("svc.cache.misses");
  const util::MutexLock stats_lock(stats_mu_);
  ++stats_.misses;
  return std::nullopt;
}

void ScheduleCache::insert(const ScheduleCacheKey& key,
                           const sched::LayerSchedule& value) {
  insert_memory_only(key, value);
  if (!options_.disk_dir.empty()) store_to_disk(key, value);
}

void ScheduleCache::insert_memory_only(const ScheduleCacheKey& key,
                                       const sched::LayerSchedule& value) {
  Shard& shard = shard_of(key);
  std::int64_t evicted = 0;
  {
    const util::MutexLock lock(shard.mu);
    auto it = shard.map.find(key.fingerprint);
    if (it != shard.map.end()) {
      // Refresh: identical by construction (schedules are pure functions
      // of the key), but move it to MRU anyway.
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
      return;
    }
    shard.lru.push_front(key.fingerprint);
    sched::LayerSchedule stored = value;
    stored.layer_name.clear();  // names are per-call site, not cached
    shard.map.emplace(key.fingerprint,
                      Entry{std::move(stored), shard.lru.begin()});
    while (shard.map.size() > shard_capacity() && !shard.lru.empty()) {
      shard.map.erase(shard.lru.back());
      shard.lru.pop_back();
      ++evicted;
    }
  }
  if (evicted > 0) {
    obs::MetricsRegistry::global().add("svc.cache.evictions", evicted);
    const util::MutexLock stats_lock(stats_mu_);
    stats_.evictions += evicted;
  }
}

std::optional<sched::LayerSchedule> ScheduleCache::load_from_disk(
    const ScheduleCacheKey& key) {
  const std::string path = disk_path(key);
  if (path.empty()) return std::nullopt;
  std::optional<std::string> content;
  try {
    content = util::retry_io(
        options_.retry, key.hash,
        [&] { return util::read_text_file_if_exists(path); },
        [&](int /*attempt*/, const util::io_error&) {
          obs::MetricsRegistry::global().add("svc.cache.disk_read_retries");
          const util::MutexLock stats_lock(stats_mu_);
          ++stats_.disk_read_retries;
        });
  } catch (const util::io_error&) {
    // Persistently unreadable: degrade to a miss and recompute.
    obs::MetricsRegistry::global().add("svc.cache.disk_corrupt");
    const util::MutexLock stats_lock(stats_mu_);
    ++stats_.disk_corrupt;
    return std::nullopt;
  }
  if (!content.has_value())
    return std::nullopt;  // plain miss: the entry was never written
  auto decoded = decode_cache_entry(*content, key);
  if (!decoded.ok()) {
    obs::MetricsRegistry::global().add("svc.cache.disk_corrupt");
    const util::MutexLock stats_lock(stats_mu_);
    ++stats_.disk_corrupt;
    return std::nullopt;
  }
  return std::move(decoded).take();
}

void ScheduleCache::store_to_disk(const ScheduleCacheKey& key,
                                  const sched::LayerSchedule& value) {
  try {
    std::filesystem::create_directories(options_.disk_dir);
    sched::LayerSchedule stored = value;
    stored.layer_name.clear();
    const std::string encoded = encode_cache_entry(key, stored);
    const std::string path = disk_path(key);
    // Atomic commit: concurrent readers see the old entry or the new one,
    // never a torn file, and a crash leaves only a (swept) .tmp behind.
    util::retry_io(
        options_.retry, key.hash,
        [&] { util::write_file_atomic(path, encoded); },
        [&](int /*attempt*/, const util::io_error&) {
          obs::MetricsRegistry::global().add("svc.cache.disk_write_retries");
          const util::MutexLock stats_lock(stats_mu_);
          ++stats_.disk_write_retries;
        });
  } catch (const std::exception&) {
    // Best-effort tier: a read-only or full disk degrades to memory-only.
    obs::MetricsRegistry::global().add("svc.cache.disk_write_failures");
    const util::MutexLock stats_lock(stats_mu_);
    ++stats_.disk_write_failures;
  }
}

ScheduleCacheStats ScheduleCache::stats() const {
  const util::MutexLock lock(stats_mu_);
  return stats_;
}

std::size_t ScheduleCache::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    const util::MutexLock lock(shard.mu);
    total += shard.map.size();
  }
  return total;
}

// -------------------------------------------------- cached network path --

sched::NetworkSchedule cached_schedule_network(sched::Mapper& mapper,
                                               const nn::Network& net,
                                               ScheduleCache& cache) {
  const obs::ScopedTimer timer("svc.sched_seconds");
  sched::NetworkSchedule ns;
  ns.network_name = net.name();
  ns.network_abbr = net.abbr();
  ns.config = mapper.config();
  ns.layers.reserve(net.layer_count());
  for (const auto& layer : net.layers()) {
    const ScheduleCacheKey key = ScheduleCacheKey::of(
        mapper.config(), sched::LayerShapeKey::of(layer), mapper.options(),
        mapper.objective(), mapper.array_state().digest());
    if (auto cached = cache.lookup(key)) {
      cached->layer_name = layer.name;
      ns.layers.push_back(std::move(*cached));
      continue;
    }
    sched::LayerSchedule fresh = mapper.schedule_layer(layer);
    cache.insert(key, fresh);
    ns.layers.push_back(std::move(fresh));
  }
  return ns;
}

}  // namespace rota::svc
