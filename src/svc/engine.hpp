#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <istream>
#include <ostream>
#include <string>
#include <thread>

#include "svc/cache.hpp"
#include "svc/request.hpp"
#include "util/thread_annotations.hpp"

/// \file engine.hpp
/// `rota::svc::Engine`: the embeddable asynchronous batch-request engine
/// behind `rota serve`. Requests are submitted from any thread and
/// answered through futures; a dispatcher thread collects whatever is
/// queued into one batch and fans it out on the shared rota::par pool, so
/// a burst of requests is executed concurrently while each individual
/// result stays bit-identical to the serial CLI path (requests are
/// independent and every computation is a pure function of the request —
/// DESIGN.md §9/§10).
///
/// The engine owns the process's two-tier ScheduleCache: repeated
/// workloads skip the mapper search entirely after the first request
/// (and, with a disk tier, across restarts).
///
/// Failure containment: malformed requests, unknown workloads, expired
/// deadlines and cancelled requests all produce structured error replies;
/// nothing a client sends can unwind the engine. shutdown() (and the
/// destructor) drain gracefully — every accepted request is answered.
///
/// Overload policy: with `max_queue` configured, submissions beyond the
/// queue bound are *shed* — answered immediately with a structured
/// `overloaded` error (never silently dropped) and counted in
/// `svc.requests_shed` — so a flood degrades the flood, not the process.
/// Simulated allocation failure (fi::Hooks alloc faults) surfaces the
/// same way as real std::bad_alloc: a `resource_exhausted` reply for that
/// request only.

namespace rota::svc {

struct EngineOptions {
  /// Worker lanes per batch (rota::par convention: 1 = serial inline,
  /// 0 = one lane per hardware thread). Results are identical for any
  /// value.
  int threads = 1;
  ScheduleCacheOptions cache;
  /// serve(): replies are flushed at least every `max_batch` requests.
  std::size_t max_batch = 64;
  /// Requests longer than this many bytes are rejected with
  /// resource_exhausted (stdin is untrusted).
  std::size_t max_request_bytes = 1 << 20;
  /// Default deadline for requests that do not carry one; 0 = none.
  std::int64_t default_deadline_ms = 0;
  /// Queue bound: submissions while `max_queue` jobs are already waiting
  /// are shed with an `overloaded` error. 0 = unbounded (trusted callers).
  std::size_t max_queue = 0;
};

class Engine {
 public:
  explicit Engine(EngineOptions options = {});
  ~Engine();  ///< shutdown(): drains the queue, then joins the dispatcher
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] const EngineOptions& options() const { return options_; }

  /// Enqueue one request; the future resolves to its reply. After
  /// shutdown() began, resolves immediately with code unavailable.
  std::future<Response> submit(Request request) ROTA_EXCLUDES(mu_);

  /// Execute one request synchronously on the calling thread (no queue,
  /// no deadline bookkeeping). This is the single code path workers also
  /// run, so batch and inline execution cannot diverge.
  [[nodiscard]] Response execute(const Request& request);

  /// Stop accepting work, answer everything already queued, join the
  /// dispatcher. Idempotent.
  void shutdown() ROTA_EXCLUDES(mu_);

  /// JSON-lines loop: read requests from `in` one per line, reply on
  /// `out` in input order (flushed at least every options().max_batch
  /// requests and at EOF). Returns the process exit code (0 — protocol
  /// errors are replies, not exits). An op=shutdown request drains and
  /// ends the loop.
  ///
  /// `interrupt` (optional) is the graceful-drain flag a signal handler
  /// sets: it is checked between lines, the loop stops reading, every
  /// already-accepted request is still answered and flushed, and serve
  /// returns 4 (the CLI's "interrupted, drained cleanly" exit code)
  /// instead of 0.
  int serve(std::istream& in, std::ostream& out,
            const std::atomic<bool>* interrupt = nullptr);

  [[nodiscard]] ScheduleCacheStats cache_stats() const {
    return cache_.stats();
  }
  [[nodiscard]] ScheduleCache& cache() { return cache_; }

  /// Requests shed by the overload policy since construction.
  [[nodiscard]] std::int64_t shed_count() const {
    return shed_count_.load(std::memory_order_relaxed);
  }

 private:
  struct Job {
    Request request;
    std::promise<Response> promise;
    std::chrono::steady_clock::time_point submitted;
  };

  void dispatcher_loop() ROTA_EXCLUDES(mu_);

  /// Deadline/cancellation gate + execute() + metrics, for one job.
  Response run_job(Job& job);

  EngineOptions options_;
  ScheduleCache cache_;

  util::Mutex mu_;
  util::CondVar cv_;
  std::deque<Job> queue_ ROTA_GUARDED_BY(mu_);
  bool stopping_ ROTA_GUARDED_BY(mu_) = false;
  /// Started by the constructor, joined by shutdown() after stopping_
  /// rises; joinable() is read under mu_, the join itself runs unlocked
  /// (joining while holding mu_ would deadlock the drain).
  std::thread dispatcher_;
  std::atomic<std::int64_t> shed_count_{0};
  /// Request sequence source: submit() stamps each accepted request with
  /// the next value (1-based), threading one identity through queue →
  /// batch → compute → reply for histograms, trace spans and EventLog.
  std::atomic<std::uint64_t> next_seq_{0};
  /// Requests currently executing (mirrored to the svc.inflight gauge).
  std::atomic<std::int64_t> inflight_{0};
  /// stats requests served (each in-band snapshot carries its own seq).
  std::atomic<std::uint64_t> stats_seq_{0};
};

}  // namespace rota::svc
