#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/result.hpp"
#include "wear/policy.hpp"
#include "wear/simulator.hpp"

/// \file request.hpp
/// The svc wire protocol: JSON-lines requests and replies, one object per
/// line. Every envelope (both directions) carries `schema_version`;
/// requests with a missing or unknown version are rejected with a
/// structured error, never guessed at (the versioned-API contract —
/// downstream tooling fails loudly on schema drift instead of silently
/// misreading fields).
///
/// Request:  {"schema_version":2,"id":"r1","op":"lifetime","workload":"Sqz",
///            "array":"14x12","iters":1000,"policy":"RWL+RO",
///            "seed":1381193793,"deadline_ms":5000}
/// Reply:    {"schema_version":2,"id":"r1","ok":true,"result":{...},
///            "wall_seconds":0.12}
/// Error:    {"schema_version":2,"id":"r1","ok":false,
///            "error":{"code":"invalid_argument","message":"..."}}

namespace rota::svc {

/// Operations the engine serves.
enum class RequestOp {
  kPing,      ///< liveness probe; replies {"pong":true}
  kSchedule,  ///< energy-optimal schedule summary for one workload
  kWear,      ///< wear-simulate one policy; replies usage statistics
  kLifetime,  ///< full policy comparison with improvement factors
  kStats,     ///< in-band live-telemetry snapshot (obs::snapshot_json)
  kShutdown,  ///< drain and stop the serve loop (socket-ready semantics)
};

[[nodiscard]] std::string_view to_string(RequestOp op);

/// Shared cancellation token: flip to true to abandon a queued request.
/// Checked when a worker picks the request up (a request that already
/// started executing runs to completion — executions are short).
using CancelToken = std::shared_ptr<std::atomic<bool>>;

/// One parsed request.
struct Request {
  std::string id;  ///< client-chosen correlation id, echoed verbatim
  RequestOp op = RequestOp::kPing;
  std::string workload;  ///< Table II abbreviation
  std::int64_t array_width = 14;
  std::int64_t array_height = 12;
  std::int64_t iterations = 1000;
  std::uint64_t seed = 0x526f5441;
  wear::PolicyKind policy = wear::PolicyKind::kRwlRo;  ///< op=wear
  wear::WearMetric metric = wear::WearMetric::kAllocations;
  /// Mapper objective (canonical sched::ObjectiveSpec id; see
  /// sched/objective.hpp): "energy" (default, the historical behavior),
  /// "lifetime", "throughput" or "weighted:<w1>,<w2>,<w3>". Honored by
  /// schedule/wear/lifetime ops; echoed in the schedule payload.
  std::string objective = "energy";
  /// Relative deadline from submission; 0 inherits the engine default
  /// (which may be "none"). A request whose deadline has passed before a
  /// worker picks it up is answered with code deadline_exceeded.
  std::int64_t deadline_ms = 0;
  CancelToken cancel;  ///< optional; null = not cancellable
  /// Engine-assigned monotonic sequence (stamped by submit(); 0 until
  /// then). Threads the request identity through queue → batch → compute
  /// → reply: latency histograms, EventLog entries and Chrome-trace span
  /// args all carry it, so one request's whole life is correlatable.
  std::uint64_t seq = 0;
};

/// One reply. `payload_json` is the op-specific "result" object (already
/// serialized), empty on error.
struct Response {
  std::string id;
  bool ok = false;
  util::Error error;         ///< meaningful when !ok
  std::string payload_json;  ///< meaningful when ok
  double wall_seconds = 0.0;
  /// Engine-assigned sequence echoed from the request (not serialized).
  std::uint64_t seq = 0;
  /// When the worker finished producing this reply (steady clock; not
  /// serialized). serve() subtracts it from the post-flush instant to
  /// observe the reply phase (svc.reply_ms).
  std::chrono::steady_clock::time_point done_at{};
};

/// Parse one JSON-lines request. Enforces `schema_version`, known `op`,
/// field types/ranges and a byte budget; all failures are structured
/// errors (code invalid_argument or resource_exhausted), never throws.
[[nodiscard]] util::Result<Request> parse_request(std::string_view line,
                                                  std::size_t max_bytes);

/// Serialize a reply as one JSON line (no trailing newline), stamped with
/// obs::kSchemaVersion.
[[nodiscard]] std::string to_json(const Response& response);

/// Best-effort extraction of "id" from a line that failed full parsing,
/// so even malformed-request errors can be correlated by the client.
[[nodiscard]] std::string salvage_request_id(std::string_view line);

}  // namespace rota::svc
