#include "svc/engine.hpp"

#include <sstream>
#include <utility>
#include <vector>

#include "arch/config.hpp"
#include "fi/hooks.hpp"
#include "nn/workloads.hpp"
#include "obs/event_log.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/snapshot.hpp"
#include "obs/trace.hpp"
#include "par/parallel.hpp"
#include "reliability/array_reliability.hpp"
#include "util/check.hpp"
#include "wear/policy.hpp"
#include "wear/simulator.hpp"

namespace rota::svc {

namespace {

using util::ErrorCode;

arch::AcceleratorConfig accel_of(const Request& req) {
  arch::AcceleratorConfig cfg = arch::rota_like();
  cfg.array_width = req.array_width;
  cfg.array_height = req.array_height;
  cfg.validate();
  return cfg;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// The request's mapper objective. parse_request already validated and
/// canonicalized the field, so a failure here is a programming error
/// surfaced by the catch chain as invalid_argument.
sched::ObjectiveSpec objective_of(const Request& request) {
  auto spec = sched::parse_objective(request.objective);
  ROTA_REQUIRE(spec.ok(), "invalid request objective '" + request.objective +
                              "': " + spec.error().message);
  return spec.value();
}

std::string payload_schedule(const sched::NetworkSchedule& ns,
                             const sched::ObjectiveSpec& objective) {
  std::ostringstream os;
  os << "{\"workload\":" << obs::json_quote(ns.network_abbr)
     << ",\"objective\":" << obs::json_quote(objective.id())
     << ",\"layers\":" << ns.layers.size()
     << ",\"total_tiles\":" << ns.total_tiles()
     << ",\"mean_utilization\":" << obs::json_number(ns.mean_utilization())
     << ",\"total_energy\":" << obs::json_number(ns.total_energy())
     << ",\"total_cycles\":" << obs::json_number(ns.total_cycles()) << '}';
  return os.str();
}

std::string json_stats(const wear::UsageStats& stats) {
  std::ostringstream os;
  os << "{\"min\":" << stats.min << ",\"max\":" << stats.max
     << ",\"d_max\":" << stats.max_diff
     << ",\"r_diff\":" << obs::json_number(stats.r_diff)
     << ",\"mean\":" << obs::json_number(stats.mean) << '}';
  return os.str();
}

/// One policy pass over a schedule — the exact computation Experiment's
/// run_policies performs for one cell (same simulator options, same
/// policy seeding), so engine replies are bit-identical to the CLI path.
struct PolicyOutcome {
  std::string name;
  wear::UsageStats stats;
  std::vector<double> alphas;
};

PolicyOutcome run_policy(const arch::AcceleratorConfig& accel,
                         const sched::NetworkSchedule& ns,
                         const Request& req, wear::PolicyKind kind) {
  auto policy =
      wear::make_policy(kind, accel.array_width, accel.array_height, req.seed);
  wear::WearSimulator sim(accel, {true, req.metric});
  sim.run_iterations(ns, *policy, req.iterations);
  PolicyOutcome out;
  out.name = policy->name();
  out.stats = sim.tracker().stats();
  out.alphas = sim.tracker().usage_as_doubles();
  return out;
}

}  // namespace

Engine::Engine(EngineOptions options)
    : options_(std::move(options)), cache_(options_.cache) {
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

Engine::~Engine() { shutdown(); }

void Engine::shutdown() {
  {
    const util::MutexLock lock(mu_);
    if (stopping_ && !dispatcher_.joinable()) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

std::future<Response> Engine::submit(Request request) {
  Job job;
  job.request = std::move(request);
  job.request.seq = next_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  job.submitted = std::chrono::steady_clock::now();
  std::future<Response> future = job.promise.get_future();
  std::size_t depth = 0;
  {
    const util::MutexLock lock(mu_);
    if (stopping_) {
      Response refused;
      refused.id = job.request.id;
      refused.seq = job.request.seq;
      refused.error = {ErrorCode::kUnavailable,
                       "engine is shutting down; request not accepted"};
      job.promise.set_value(std::move(refused));
      return future;
    }
    if (options_.max_queue > 0 && queue_.size() >= options_.max_queue) {
      // Shed, never drop: the caller gets a structured overloaded reply
      // immediately and can back off and retry.
      shed_count_.fetch_add(1, std::memory_order_relaxed);
      obs::MetricsRegistry::global().add("svc.requests_shed");
      obs::log_event(obs::Severity::kWarn, "svc",
                     "request shed: queue is full (" +
                         std::to_string(options_.max_queue) + " waiting)",
                     job.request.seq, job.request.id);
      Response shed;
      shed.id = job.request.id;
      shed.seq = job.request.seq;
      shed.error = {ErrorCode::kOverloaded,
                    "queue is full (" + std::to_string(options_.max_queue) +
                        " requests waiting); retry after backoff"};
      job.promise.set_value(std::move(shed));
      return future;
    }
    queue_.push_back(std::move(job));
    depth = queue_.size();
  }
  obs::MetricsRegistry::global().gauge("svc.queue_depth",
                                       static_cast<double>(depth));
  cv_.notify_one();
  return future;
}

void Engine::dispatcher_loop() {
  for (;;) {
    std::vector<Job> batch;
    {
      util::MutexLock lock(mu_);
      while (!stopping_ && queue_.empty()) cv_.wait(lock, mu_);
      if (queue_.empty()) return;  // stopping_ && drained
      batch.reserve(queue_.size());
      while (!queue_.empty()) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    obs::MetricsRegistry::global().add("svc.batches");
    obs::MetricsRegistry::global().gauge("svc.queue_depth", 0.0);
    // Fan the batch out; each job lands in its own promise, so reply
    // routing is index-stable regardless of lane count (DESIGN.md §9).
    par::parallel_for(static_cast<std::int64_t>(batch.size()),
                      options_.threads, [this, &batch](std::int64_t i) {
                        Job& job = batch[static_cast<std::size_t>(i)];
                        job.promise.set_value(run_job(job));
                      });
  }
}

Response Engine::run_job(Job& job) {
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::global();
  const Request& req = job.request;
  // Queue-wait phase ends the moment a worker picks the job up; cancelled
  // and expired requests waited just the same, so they are observed too.
  metrics.observe("svc.queue_wait_ms", seconds_since(job.submitted) * 1e3);
  const auto finish = [&](Response resp) {
    resp.seq = req.seq;
    resp.done_at = std::chrono::steady_clock::now();
    return resp;
  };
  if (req.cancel && req.cancel->load()) {
    metrics.add("svc.requests_cancelled");
    Response resp;
    resp.id = req.id;
    resp.error = {ErrorCode::kCancelled,
                  "request was cancelled while queued"};
    return finish(std::move(resp));
  }
  const std::int64_t deadline_ms =
      req.deadline_ms > 0 ? req.deadline_ms : options_.default_deadline_ms;
  if (deadline_ms > 0) {
    const double queued_ms = seconds_since(job.submitted) * 1e3;
    if (queued_ms > static_cast<double>(deadline_ms)) {
      metrics.add("svc.requests_expired");
      Response resp;
      resp.id = req.id;
      resp.error = {ErrorCode::kDeadlineExceeded,
                    "deadline of " + std::to_string(deadline_ms) +
                        " ms expired while the request was queued"};
      return finish(std::move(resp));
    }
  }
  // The counter always pairs inc/dec; gauge() itself is the no-op when
  // observability is off.
  metrics.gauge("svc.inflight", static_cast<double>(
      inflight_.fetch_add(1, std::memory_order_relaxed) + 1));
  const auto compute_start = std::chrono::steady_clock::now();
  Response resp = execute(req);
  metrics.observe("svc.compute_ms", seconds_since(compute_start) * 1e3);
  metrics.gauge("svc.inflight", static_cast<double>(
      inflight_.fetch_sub(1, std::memory_order_relaxed) - 1));
  return finish(std::move(resp));
}

Response Engine::execute(const Request& request) {
  const auto start = std::chrono::steady_clock::now();
  obs::TraceSpan span(std::string(to_string(request.op)), "svc.request");
  span.set_request(request.seq);
  obs::MetricsRegistry::global().add("svc.requests_total");

  Response resp;
  resp.id = request.id;
  resp.seq = request.seq;
  try {
    // Injected allocation failure (fi): compute ops only, so protocol
    // control (ping/stats/shutdown) stays reachable under heavy fault
    // rates — an operator must be able to scrape a snapshot of a sick
    // server.
    if (request.op != RequestOp::kPing && request.op != RequestOp::kStats &&
        request.op != RequestOp::kShutdown &&
        fi::Hooks::should_fail_alloc("svc.engine")) {
      throw std::bad_alloc();
    }
    switch (request.op) {
      case RequestOp::kPing:
        resp.payload_json = "{\"pong\":true}";
        break;
      case RequestOp::kShutdown:
        resp.payload_json = "{\"stopping\":true}";
        break;
      case RequestOp::kStats: {
        std::string snap = obs::snapshot_json(obs::capture_snapshot(
            obs::MetricsRegistry::global(),
            stats_seq_.fetch_add(1, std::memory_order_relaxed) + 1));
        while (!snap.empty() && snap.back() == '\n') snap.pop_back();
        resp.payload_json = std::move(snap);
        break;
      }
      case RequestOp::kSchedule: {
        const nn::Network net = nn::workload_by_abbr(request.workload);
        const arch::AcceleratorConfig accel = accel_of(request);
        const sched::ObjectiveSpec objective = objective_of(request);
        sched::Mapper mapper(accel, objective, {},
                             sched::MapperOptions{true, 1});
        resp.payload_json = payload_schedule(
            cached_schedule_network(mapper, net, cache_), objective);
        break;
      }
      case RequestOp::kWear: {
        const nn::Network net = nn::workload_by_abbr(request.workload);
        const arch::AcceleratorConfig accel = accel_of(request);
        sched::Mapper mapper(accel, objective_of(request), {},
                             sched::MapperOptions{true, 1});
        const sched::NetworkSchedule ns =
            cached_schedule_network(mapper, net, cache_);
        const PolicyOutcome run =
            run_policy(accel, ns, request, request.policy);
        std::ostringstream os;
        os << "{\"workload\":" << obs::json_quote(net.abbr())
           << ",\"policy\":" << obs::json_quote(run.name)
           << ",\"iters\":" << request.iterations
           << ",\"stats\":" << json_stats(run.stats) << '}';
        resp.payload_json = os.str();
        break;
      }
      case RequestOp::kLifetime: {
        const nn::Network net = nn::workload_by_abbr(request.workload);
        const arch::AcceleratorConfig accel = accel_of(request);
        sched::Mapper mapper(accel, objective_of(request), {},
                             sched::MapperOptions{true, 1});
        const sched::NetworkSchedule ns =
            cached_schedule_network(mapper, net, cache_);
        std::vector<PolicyOutcome> runs;
        for (wear::PolicyKind kind :
             {wear::PolicyKind::kBaseline, wear::PolicyKind::kRwl,
              wear::PolicyKind::kRwlRo}) {
          runs.push_back(run_policy(accel, ns, request, kind));
        }
        std::ostringstream os;
        os << "{\"workload\":" << obs::json_quote(net.abbr())
           << ",\"iters\":" << request.iterations << ",\"runs\":[";
        for (std::size_t i = 0; i < runs.size(); ++i) {
          const double gain = rel::lifetime_improvement(
              runs.front().alphas, runs[i].alphas, rel::kJedecShape);
          os << (i == 0 ? "" : ",") << "{\"policy\":"
             << obs::json_quote(runs[i].name)
             << ",\"improvement\":" << obs::json_number(gain)
             << ",\"stats\":" << json_stats(runs[i].stats) << '}';
        }
        os << "]}";
        resp.payload_json = os.str();
        break;
      }
    }
    resp.ok = true;
  } catch (const util::precondition_error& e) {
    resp.error = {ErrorCode::kInvalidArgument, e.what()};
  } catch (const util::io_error& e) {
    resp.error = {ErrorCode::kIo, e.what()};
  } catch (const std::bad_alloc&) {
    // One request's allocation failure (real or injected) is that
    // request's problem, not the process's.
    resp.error = {ErrorCode::kResourceExhausted,
                  "allocation failed while executing the request"};
  } catch (const std::exception& e) {
    resp.error = {ErrorCode::kInternal, e.what()};
  }
  if (!resp.ok) obs::MetricsRegistry::global().add("svc.requests_failed");
  resp.wall_seconds = seconds_since(start);
  obs::MetricsRegistry::global().observe("svc.request_seconds",
                                         resp.wall_seconds);
  return resp;
}

int Engine::serve(std::istream& in, std::ostream& out,
                  const std::atomic<bool>* interrupt) {
  // Pending replies for one flush window, in input order. A parse
  // failure is answered in place (no job), so ordering never depends on
  // whether a line was valid.
  struct Pending {
    bool immediate = false;
    Response response;
    std::future<Response> future;
  };
  std::vector<Pending> window;
  window.reserve(options_.max_batch);

  const auto flush = [&] {
    for (Pending& p : window) {
      const Response& resp = p.immediate ? p.response
                                         : (p.response = p.future.get());
      out << to_json(resp) << '\n';
    }
    out.flush();
    // Reply phase: compute finished (done_at) -> reply on the wire. The
    // post-flush instant is shared by the window, so ordering cost shows
    // up in the earlier replies' samples — exactly what a client sees.
    const auto flushed = std::chrono::steady_clock::now();
    obs::MetricsRegistry& metrics = obs::MetricsRegistry::global();
    if (metrics.enabled()) {
      for (const Pending& p : window) {
        if (p.response.done_at.time_since_epoch().count() == 0) continue;
        metrics.observe(
            "svc.reply_ms",
            std::chrono::duration<double>(flushed - p.response.done_at)
                    .count() *
                1e3);
      }
    }
    window.clear();
  };

  const auto interrupted = [&] {
    return interrupt != nullptr && interrupt->load(std::memory_order_relaxed);
  };
  bool stop_requested = false;
  std::string line;
  while (!stop_requested && !interrupted() && std::getline(in, line)) {
    if (line.empty()) continue;
    auto parsed = parse_request(line, options_.max_request_bytes);
    if (!parsed.ok()) {
      obs::MetricsRegistry::global().add("svc.requests_rejected");
      Pending p;
      p.immediate = true;
      p.response.id = salvage_request_id(line);
      p.response.error = parsed.error();
      window.push_back(std::move(p));
    } else {
      Request req = std::move(parsed).take();
      stop_requested = req.op == RequestOp::kShutdown;
      Pending p;
      p.future = submit(std::move(req));
      window.push_back(std::move(p));
    }
    if (window.size() >= options_.max_batch) flush();
  }
  // Graceful drain (EOF, op=shutdown or a signal): every request read so
  // far is answered and flushed before the loop returns.
  flush();
  shutdown();
  if (interrupted()) {
    obs::MetricsRegistry::global().add("svc.serve_interrupted");
    obs::log_event(obs::Severity::kWarn, "svc",
                   "serve loop interrupted; accepted requests drained");
    return 4;  // cli::kExitInterrupted: drained cleanly after a signal
  }
  return 0;
}

}  // namespace rota::svc
