#pragma once

#include <array>
#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "nn/network.hpp"
#include "sched/mapper.hpp"
#include "sched/schedule.hpp"
#include "util/result.hpp"
#include "util/retry.hpp"
#include "util/thread_annotations.hpp"

/// \file cache.hpp
/// The two-tier schedule cache at the heart of `rota::svc`. A layer's
/// energy-optimal schedule is a pure function of (accelerator geometry,
/// layer shape, mapper version/options) — nothing else — so once computed
/// it can be replayed forever. Tier 1 is an in-memory sharded LRU shared
/// by every request the engine executes; tier 2 is an optional on-disk
/// directory that survives process restarts. Entries round-trip every
/// LayerSchedule field bit-exactly (doubles are stored as hexfloats), so
/// a cache hit is indistinguishable from a fresh mapper search.
///
/// Corruption policy: a damaged, truncated or stale cache file is treated
/// as a miss (counted in `svc.cache.disk_corrupt`) and the schedule is
/// recomputed — the cache can lose work, never invent it, and never
/// crashes the service.
///
/// Durability policy: disk writes are crash-safe (temp file + fsync +
/// rename via util::write_file_atomic, so a reader never observes a torn
/// entry) and transient I/O errors on either direction are retried with
/// capped exponential backoff (util::retry_io). Temp files orphaned by a
/// crash mid-write are deleted when the cache opens the directory.

namespace rota::svc {

/// The canonical cache key. `fingerprint` is the full human-readable
/// derivation (mapper version and options, the objective id + weights,
/// the array-state digest, every scheduling-relevant AcceleratorConfig
/// field, every LayerShapeKey field); `hash` is a stable FNV-1a of the
/// fingerprint used for shard selection and file naming. Disk entries
/// embed the fingerprint and verify it on load, so a hash collision
/// degrades to a miss instead of returning a wrong schedule. Objective
/// and array state are part of the key so schedules never alias across
/// objectives or degraded-array states (DESIGN.md §15).
struct ScheduleCacheKey {
  std::string fingerprint;
  std::uint64_t hash = 0;

  [[nodiscard]] static ScheduleCacheKey of(
      const arch::AcceleratorConfig& accel, const sched::LayerShapeKey& shape,
      const sched::MapperOptions& options,
      const sched::ObjectiveSpec& objective = {},
      std::string_view array_digest = "live",
      int mapper_version = sched::kMapperVersion);
};

/// Stable 64-bit FNV-1a (not std::hash, whose value may differ between
/// runs and standard libraries — disk file names must be reproducible).
[[nodiscard]] std::uint64_t stable_fingerprint_hash(std::string_view text);

struct ScheduleCacheOptions {
  /// In-memory entries across all shards (minimum one per shard).
  std::size_t capacity = 4096;
  /// On-disk tier directory; empty disables the disk tier. Created on
  /// first insert if missing.
  std::string disk_dir;
  /// Backoff schedule for transient disk-tier I/O errors.
  util::RetryOptions retry{};
};

/// Monotonic counters mirrored into the global MetricsRegistry under
/// `svc.cache.*` when it is enabled.
struct ScheduleCacheStats {
  std::int64_t hits_memory = 0;
  std::int64_t hits_disk = 0;
  std::int64_t misses = 0;
  std::int64_t evictions = 0;
  std::int64_t disk_corrupt = 0;        ///< unreadable/stale files seen
  std::int64_t disk_write_failures = 0; ///< best-effort writes that failed
  std::int64_t disk_read_retries = 0;   ///< transient read errors retried
  std::int64_t disk_write_retries = 0;  ///< transient write errors retried
  std::int64_t orphans_removed = 0;     ///< crash-orphaned .tmp files deleted
};

class ScheduleCache {
 public:
  explicit ScheduleCache(ScheduleCacheOptions options = {});
  ScheduleCache(const ScheduleCache&) = delete;
  ScheduleCache& operator=(const ScheduleCache&) = delete;

  [[nodiscard]] const ScheduleCacheOptions& options() const {
    return options_;
  }

  /// Probe both tiers. A disk hit is promoted into memory. The returned
  /// schedule carries an empty layer_name (names are per-call site, not
  /// part of the cached value).
  [[nodiscard]] std::optional<sched::LayerSchedule> lookup(
      const ScheduleCacheKey& key);

  /// Insert into memory (evicting the shard's least-recently-used entry
  /// beyond capacity) and, when a disk tier is configured, write the
  /// entry best-effort (failures are counted, never thrown).
  void insert(const ScheduleCacheKey& key, const sched::LayerSchedule& value);

  [[nodiscard]] ScheduleCacheStats stats() const ROTA_EXCLUDES(stats_mu_);
  [[nodiscard]] std::size_t size() const;

  /// The file a key would live at on disk ("" when no disk tier).
  [[nodiscard]] std::string disk_path(const ScheduleCacheKey& key) const;

 private:
  struct Entry {
    sched::LayerSchedule value;
    std::list<std::string>::iterator lru_pos;
  };
  struct Shard {
    mutable util::Mutex mu;
    /// fingerprint -> entry
    std::unordered_map<std::string, Entry> map ROTA_GUARDED_BY(mu);
    /// MRU at front
    std::list<std::string> lru ROTA_GUARDED_BY(mu);
  };
  static constexpr std::size_t kShards = 8;

  Shard& shard_of(const ScheduleCacheKey& key);
  [[nodiscard]] std::size_t shard_capacity() const;

  /// Memory-tier insert/promote (no disk write).
  void insert_memory_only(const ScheduleCacheKey& key,
                          const sched::LayerSchedule& value);

  /// Try the disk tier; counts corruption internally.
  [[nodiscard]] std::optional<sched::LayerSchedule> load_from_disk(
      const ScheduleCacheKey& key);
  void store_to_disk(const ScheduleCacheKey& key,
                     const sched::LayerSchedule& value);

  ScheduleCacheOptions options_;
  std::array<Shard, kShards> shards_;

  mutable util::Mutex stats_mu_;
  ScheduleCacheStats stats_ ROTA_GUARDED_BY(stats_mu_);
};

/// Serialize one cache entry (versioned textual format; see cache.cpp).
[[nodiscard]] std::string encode_cache_entry(const ScheduleCacheKey& key,
                                             const sched::LayerSchedule& value);

/// Parse a cache entry, verifying the format version and that the stored
/// fingerprint matches `key`. Any mismatch, truncation or garbage yields
/// an error — callers treat it as a miss.
[[nodiscard]] util::Result<sched::LayerSchedule> decode_cache_entry(
    std::string_view text, const ScheduleCacheKey& key);

/// Schedule `net` like Mapper::schedule_network, but with every layer
/// routed through `cache` first. Produces bit-identical schedules to the
/// uncached path (the cache stores exact copies); on a warm cache the
/// mapper search is skipped entirely. Thread-safe (cache and mapper both
/// are).
[[nodiscard]] sched::NetworkSchedule cached_schedule_network(
    sched::Mapper& mapper, const nn::Network& net, ScheduleCache& cache);

}  // namespace rota::svc
