#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/result.hpp"

/// \file jsonv.hpp
/// A minimal JSON *value* parser for the svc request protocol. The obs
/// layer only ever emits JSON (obs/json.hpp has a validator but no reader);
/// the batch service must also *accept* JSON requests from untrusted
/// stdin, so this adds the smallest strict reader that covers the
/// JSON-lines protocol: objects, arrays, strings (with escapes), numbers,
/// booleans and null, bounded nesting depth, and structured errors instead
/// of exceptions — a malformed request must never unwind the service.

namespace rota::svc {

/// One parsed JSON value. Object members preserve source order (the
/// protocol never relies on it, but error messages and tests do).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  using Members = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() = default;  // null

  /// Strict parse of a complete document (no trailing garbage). Nesting
  /// deeper than `max_depth` is rejected — stdin is untrusted and the
  /// parser is recursive.
  [[nodiscard]] static util::Result<JsonValue> parse(std::string_view text,
                                                     int max_depth = 32);

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }

  /// \pre is_bool()
  [[nodiscard]] bool boolean() const;
  /// \pre is_number()
  [[nodiscard]] double number() const;
  /// \pre is_string()
  [[nodiscard]] const std::string& str() const;
  /// \pre is_array()
  [[nodiscard]] const std::vector<JsonValue>& array() const;
  /// \pre is_object()
  [[nodiscard]] const Members& members() const;

  /// Member lookup by key; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  /// The number as int64 if it is integral and in range, else no value.
  [[nodiscard]] util::Result<std::int64_t> as_int64() const;
  /// The number as uint64 if it is integral and non-negative.
  [[nodiscard]] util::Result<std::uint64_t> as_uint64() const;

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  Members members_;
};

}  // namespace rota::svc
