#include "svc/request.hpp"

#include <sstream>

#include "obs/json.hpp"
#include "sched/objective.hpp"
#include "svc/jsonv.hpp"
#include "util/check.hpp"

namespace rota::svc {

using util::ErrorCode;

std::string_view to_string(RequestOp op) {
  switch (op) {
    case RequestOp::kPing:
      return "ping";
    case RequestOp::kSchedule:
      return "schedule";
    case RequestOp::kWear:
      return "wear";
    case RequestOp::kLifetime:
      return "lifetime";
    case RequestOp::kStats:
      return "stats";
    case RequestOp::kShutdown:
      return "shutdown";
  }
  ROTA_UNREACHABLE("unhandled RequestOp");
}

namespace {

util::Result<RequestOp> parse_op(const std::string& name) {
  for (RequestOp op : {RequestOp::kPing, RequestOp::kSchedule,
                       RequestOp::kWear, RequestOp::kLifetime,
                       RequestOp::kStats, RequestOp::kShutdown}) {
    if (to_string(op) == name) return op;
  }
  return {ErrorCode::kInvalidArgument,
          "unknown op '" + name +
              "' (expected ping, schedule, wear, lifetime, stats or "
              "shutdown)"};
}

util::Result<wear::PolicyKind> parse_policy_name(const std::string& name) {
  for (wear::PolicyKind kind :
       {wear::PolicyKind::kBaseline, wear::PolicyKind::kRwl,
        wear::PolicyKind::kRwlRo, wear::PolicyKind::kRandomStart,
        wear::PolicyKind::kDiagonalStride}) {
    if (wear::to_string(kind) == name) return kind;
  }
  return {ErrorCode::kInvalidArgument,
          "unknown policy '" + name +
              "' (expected Baseline, RWL, RWL+RO, RandomStart or "
              "DiagonalStride)"};
}

/// "WxH" with positive components.
util::Result<util::Unit> parse_array_field(const std::string& text,
                                           Request& req) {
  const std::size_t x = text.find('x');
  const auto bad = [&] {
    return util::Error{ErrorCode::kInvalidArgument,
                       "field 'array' expects \"WxH\" (e.g. \"14x12\"), got '" +
                           text + "'"};
  };
  if (x == std::string::npos || x == 0 || x + 1 >= text.size()) return bad();
  std::int64_t width = 0;
  std::int64_t height = 0;
  try {
    std::size_t used = 0;
    width = std::stoll(text.substr(0, x), &used);
    if (used != x) return bad();
    const std::string rest = text.substr(x + 1);
    height = std::stoll(rest, &used);
    if (used != rest.size()) return bad();
  } catch (const std::exception&) {
    return bad();
  }
  if (width < 1 || height < 1) return bad();
  req.array_width = width;
  req.array_height = height;
  return util::Unit{};
}

}  // namespace

std::string salvage_request_id(std::string_view line) {
  auto parsed = JsonValue::parse(line);
  if (!parsed.ok()) return {};
  const JsonValue* id = parsed.value().find("id");
  return (id != nullptr && id->is_string()) ? id->str() : std::string{};
}

util::Result<Request> parse_request(std::string_view line,
                                    std::size_t max_bytes) {
  if (line.size() > max_bytes) {
    return {ErrorCode::kResourceExhausted,
            "request of " + std::to_string(line.size()) +
                " bytes exceeds the " + std::to_string(max_bytes) +
                "-byte limit"};
  }
  auto parsed = JsonValue::parse(line);
  if (!parsed.ok()) {
    return {ErrorCode::kInvalidArgument,
            "malformed request: " + parsed.error().message};
  }
  const JsonValue& doc = parsed.value();
  if (!doc.is_object()) {
    return {ErrorCode::kInvalidArgument,
            "malformed request: expected a JSON object"};
  }

  // Version gate first: an envelope from the wrong schema generation must
  // not be field-guessed.
  const JsonValue* version = doc.find("schema_version");
  if (version == nullptr) {
    return {ErrorCode::kInvalidArgument,
            "missing schema_version (this server speaks version " +
                std::to_string(obs::kSchemaVersion) + ")"};
  }
  const auto version_value = version->as_int64();
  if (!version_value.ok() ||
      version_value.value() != obs::kSchemaVersion) {
    return {ErrorCode::kInvalidArgument,
            "unsupported schema_version (this server speaks version " +
                std::to_string(obs::kSchemaVersion) + ")"};
  }

  Request req;
  if (const JsonValue* id = doc.find("id")) {
    if (!id->is_string()) {
      return {ErrorCode::kInvalidArgument, "field 'id' must be a string"};
    }
    req.id = id->str();
  }

  const JsonValue* op = doc.find("op");
  if (op == nullptr || !op->is_string()) {
    return {ErrorCode::kInvalidArgument,
            "missing or non-string field 'op'"};
  }
  auto op_value = parse_op(op->str());
  if (!op_value.ok()) return op_value.error();
  req.op = op_value.value();

  if (const JsonValue* workload = doc.find("workload")) {
    if (!workload->is_string()) {
      return {ErrorCode::kInvalidArgument,
              "field 'workload' must be a string"};
    }
    req.workload = workload->str();
  }
  if (const JsonValue* array = doc.find("array")) {
    if (!array->is_string()) {
      return {ErrorCode::kInvalidArgument,
              "field 'array' must be a \"WxH\" string"};
    }
    auto status = parse_array_field(array->str(), req);
    if (!status.ok()) return status.error();
  }
  if (const JsonValue* iters = doc.find("iters")) {
    const auto v = iters->as_int64();
    if (!v.ok() || v.value() < 1) {
      return {ErrorCode::kInvalidArgument,
              "field 'iters' must be a positive integer"};
    }
    req.iterations = v.value();
  }
  if (const JsonValue* seed = doc.find("seed")) {
    const auto v = seed->as_uint64();
    if (!v.ok()) {
      return {ErrorCode::kInvalidArgument,
              "field 'seed' must be a non-negative integer"};
    }
    req.seed = v.value();
  }
  if (const JsonValue* policy = doc.find("policy")) {
    if (!policy->is_string()) {
      return {ErrorCode::kInvalidArgument,
              "field 'policy' must be a string"};
    }
    auto kind = parse_policy_name(policy->str());
    if (!kind.ok()) return kind.error();
    req.policy = kind.value();
  }
  if (const JsonValue* metric = doc.find("metric")) {
    if (!metric->is_string() ||
        (metric->str() != "alloc" && metric->str() != "cycles")) {
      return {ErrorCode::kInvalidArgument,
              "field 'metric' must be \"alloc\" or \"cycles\""};
    }
    req.metric = metric->str() == "alloc" ? wear::WearMetric::kAllocations
                                          : wear::WearMetric::kActiveCycles;
  }
  if (const JsonValue* objective = doc.find("objective")) {
    if (!objective->is_string()) {
      return {ErrorCode::kInvalidArgument,
              "field 'objective' must be a string"};
    }
    auto spec = sched::parse_objective(objective->str());
    if (!spec.ok()) return spec.error();
    // Store the canonical id so equivalent spellings ("weighted:0.50,…")
    // execute — and cache — identically.
    req.objective = spec.value().id();
  }
  if (const JsonValue* deadline = doc.find("deadline_ms")) {
    const auto v = deadline->as_int64();
    if (!v.ok() || v.value() < 0) {
      return {ErrorCode::kInvalidArgument,
              "field 'deadline_ms' must be a non-negative integer"};
    }
    req.deadline_ms = v.value();
  }

  const bool needs_workload = req.op == RequestOp::kSchedule ||
                              req.op == RequestOp::kWear ||
                              req.op == RequestOp::kLifetime;
  if (needs_workload && req.workload.empty()) {
    return {ErrorCode::kInvalidArgument,
            std::string("op '") + std::string(to_string(req.op)) +
                "' requires a 'workload' field"};
  }
  return req;
}

std::string to_json(const Response& response) {
  std::ostringstream os;
  os << "{\"schema_version\":" << obs::kSchemaVersion << ",\"id\":";
  if (response.id.empty()) {
    os << "null";
  } else {
    os << obs::json_quote(response.id);
  }
  os << ",\"ok\":" << (response.ok ? "true" : "false");
  if (response.ok) {
    os << ",\"result\":"
       << (response.payload_json.empty() ? "{}" : response.payload_json);
  } else {
    os << ",\"error\":{\"code\":"
       << obs::json_quote(util::to_string(response.error.code))
       << ",\"message\":" << obs::json_quote(response.error.message) << '}';
  }
  os << ",\"wall_seconds\":" << obs::json_number(response.wall_seconds)
     << '}';
  return os.str();
}

}  // namespace rota::svc
