#include "wear/simulator.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace rota::wear {

WearSimulator::WearSimulator(arch::AcceleratorConfig cfg,
                             SimulatorOptions options)
    : cfg_(std::move(cfg)),
      options_(options),
      tracker_(cfg_.array_width, cfg_.array_height),
      allow_wrap_(cfg_.topology == arch::TopologyKind::kTorus2D) {
  cfg_.validate();
}

void WearSimulator::run_layer(const sched::LayerSchedule& layer,
                              Policy& policy) {
  const sched::UtilSpace& space = layer.space;
  ROTA_REQUIRE(space.x >= 1 && space.x <= cfg_.array_width &&
                   space.y >= 1 && space.y <= cfg_.array_height,
               "utilization space does not fit the PE array: " +
                   layer.layer_name);
  ROTA_REQUIRE(policy.width() == cfg_.array_width &&
                   policy.height() == cfg_.array_height,
               "policy was built for a different array size");
  ROTA_REQUIRE(!policy.requires_torus() || allow_wrap_,
               "policy " + policy.name() +
                   " needs torus connections, but the configured array is a "
                   "mesh");

  std::int64_t weight = 1;
  if (options_.metric == WearMetric::kActiveCycles) {
    // Per-PE busy time of one data tile. Pre-grouping schedules built by
    // hand may leave the hierarchy fields at their defaults.
    const std::int64_t per_output =
        std::max<std::int64_t>(1, layer.compute_macs_per_pe) *
        std::max<std::int64_t>(1, layer.reduction_steps);
    weight = per_output * std::max<std::int64_t>(1, layer.allocations_per_tile);
  }

  policy.begin_layer(space);
  std::int64_t remaining = layer.tiles;
  std::int64_t fast_forwarded = 0;
  if (options_.fast_forward && remaining > 0) {
    fast_forwarded = policy.bulk_process(space, remaining, tracker_,
                                         allow_wrap_, weight);
    remaining -= fast_forwarded;
    ROTA_ENSURE(remaining >= 0, "bulk_process consumed more tiles than given");
  }
  const std::int64_t per_tile = remaining;
  // Deliberately per-tile, not buffered through UsageTracker::add_spaces:
  // the tracker's amortized overflow budget already keeps this loop free
  // of checked arithmetic, and staging origins through a batch array
  // measured ~20% slower here (the memory round-trip costs more than the
  // interleaving it avoids).
  for (; remaining > 0; --remaining) {
    const Placement at = policy.next_origin(space);
    tracker_.add_space(at.u, at.v, space.x, space.y, weight, allow_wrap_);
  }

  auto& reg = obs::MetricsRegistry::global();
  if (reg.enabled()) {
    reg.add("wear.layers");
    reg.add("wear.tiles_fast_forwarded", fast_forwarded);
    reg.add("wear.tiles_per_tile", per_tile);
    // Which path handled the layer: exact periodicity fast path vs. the
    // per-tile reference fallback (partial bulk consumption counts both).
    if (fast_forwarded > 0) reg.add("wear.fast_forward_hits");
    if (per_tile > 0) reg.add("wear.fast_forward_misses");
    reg.add("wear.counter_updates", layer.tiles * space.x * space.y);
  }
}

void WearSimulator::run_iteration(const sched::NetworkSchedule& schedule,
                                  Policy& policy) {
  for (const auto& layer : schedule.layers) run_layer(layer, policy);
}

void WearSimulator::run_iterations(const sched::NetworkSchedule& schedule,
                                   Policy& policy, std::int64_t iterations,
                                   const IterationSampler& sampler) {
  ROTA_REQUIRE(iterations >= 0, "iteration count must be non-negative");
  const std::string& label = schedule.network_abbr.empty()
                                 ? schedule.network_name
                                 : schedule.network_abbr;
  const obs::TraceSpan span(policy.name() + (label.empty() ? "" : " " + label),
                            "wear.run");
  obs::ProgressReporter progress("wear " + policy.name() +
                                     (label.empty() ? "" : " " + label),
                                 iterations);
  for (std::int64_t it = 1; it <= iterations; ++it) {
    run_iteration(schedule, policy);
    progress.tick();
    if (sampler) sampler(it, tracker_);
  }
  obs::MetricsRegistry::global().add("wear.iterations", iterations);
}

std::int64_t WearSimulator::run_iterations_while(
    const sched::NetworkSchedule& schedule, Policy& policy,
    std::int64_t iterations, const StoppingSampler& sampler) {
  ROTA_REQUIRE(iterations >= 0, "iteration count must be non-negative");
  ROTA_REQUIRE(static_cast<bool>(sampler),
               "run_iterations_while needs a stopping sampler; use "
               "run_iterations for unconditional runs");
  const obs::TraceSpan span(policy.name(), "wear.run_while");
  std::int64_t done = 0;
  for (std::int64_t it = 1; it <= iterations; ++it) {
    run_iteration(schedule, policy);
    done = it;
    if (!sampler(it, tracker_)) break;
  }
  obs::MetricsRegistry::global().add("wear.iterations", done);
  return done;
}

}  // namespace rota::wear
