#include "wear/rwl_math.hpp"

#include "util/check.hpp"
#include "util/math.hpp"
#include "util/safe_math.hpp"

namespace rota::wear {

namespace {

void validate(const RwlParams& p) {
  ROTA_REQUIRE(p.w > 0 && p.h > 0, "array dimensions must be positive");
  ROTA_REQUIRE(p.x > 0 && p.x <= p.w && p.y > 0 && p.y <= p.h,
               "utilization space must fit the array");
  ROTA_REQUIRE(p.z >= 0, "tile count must be non-negative");
}

}  // namespace

RwlDerived rwl_derive(const RwlParams& p) {
  validate(p);
  RwlDerived d;
  const std::int64_t l = util::lcm(p.w, p.x);
  d.strides_x = l / p.x;  // Eq. (5)
  d.unfold_w = l / p.w;   // Eq. (6)
  d.strides_y = p.z / d.strides_x;                               // Eq. (7)
  d.unfold_h = util::checked_mul(d.strides_y, p.y) / p.h;        // Eq. (8)
  d.d_max_bound = util::checked_add(d.unfold_w, 1);              // Eq. (9)

  // Eq. (10): ① fully-leveled bottom bands, plus the leveled part of the
  // partial top band (② its width in PE arrays × ③ its height). Every
  // product here is lcm-scale and overflow-checked.
  const std::int64_t term1 = util::checked_mul(d.unfold_w, d.unfold_h);
  const std::int64_t term2 = util::checked_mul(p.z % d.strides_x, p.x) / p.w;
  const std::int64_t ceil_rows = util::ceil_div(p.z, d.strides_x);
  const std::int64_t term3 =
      util::checked_sub(util::checked_mul(ceil_rows, p.y) / p.h, d.unfold_h);
  d.min_a_pe = util::checked_add(term1, util::checked_mul(term2, term3));

  // Eq. (11).
  d.r_diff_bound = (d.min_a_pe > 0)
                       ? static_cast<double>(d.d_max_bound) /
                             static_cast<double>(d.min_a_pe)
                       : 0.0;
  return d;
}

std::int64_t period_tiles(const RwlParams& p) {
  validate(p);
  // u returns to its start after w/gcd(w,x) horizontal strides; v returns
  // after h/gcd(h,y) vertical strides. One period visits every origin of
  // the stride lattice exactly once.
  const std::int64_t gx = util::gcd(p.w, p.x);
  const std::int64_t gy = util::gcd(p.h, p.y);
  return util::checked_mul(p.w / gx, p.h / gy);
}

std::int64_t uniform_per_period(const RwlParams& p) {
  validate(p);
  // Each column of the array is covered by exactly x/gcd(w,x) lattice
  // columns and each row by y/gcd(h,y) lattice rows, so one period adds
  // period·x·y/(w·h) = (x/gx)·(y/gy) to every PE.
  const std::int64_t gx = util::gcd(p.w, p.x);
  const std::int64_t gy = util::gcd(p.h, p.y);
  return util::checked_mul(p.x / gx, p.y / gy);
}

std::int64_t sweep_tiles(const RwlParams& p) {
  validate(p);
  return p.w / util::gcd(p.w, p.x);
}

std::int64_t uniform_per_sweep(const RwlParams& p) {
  validate(p);
  // One X-sweep places its origins on the full column lattice
  // {0, g, ..., w−g}, each exactly once (x/g is coprime to w/g, so
  // k ↦ k·x mod w is a bijection of the lattice). A window of x
  // consecutive columns contains exactly x/g lattice points, so every
  // column — hence every PE of the band — is covered exactly x/g times.
  return p.x / util::gcd(p.w, p.x);
}

namespace {

// a^{-1} mod m for coprime a, m (m >= 1), by the extended Euclid
// iteration carrying only the t-coefficients.
std::int64_t mod_inverse(std::int64_t a, std::int64_t m) {
  std::int64_t r0 = m;
  std::int64_t r1 = a % m;
  std::int64_t t0 = 0;
  std::int64_t t1 = 1;
  while (r1 != 0) {
    const std::int64_t q = r0 / r1;
    r0 -= q * r1;
    std::swap(r0, r1);
    t0 -= q * t1;
    std::swap(t0, t1);
  }
  return ((t0 % m) + m) % m;
}

}  // namespace

std::int64_t tiles_to_column_zero(std::int64_t w, std::int64_t x,
                                  std::int64_t u) {
  ROTA_REQUIRE(w > 0 && x > 0 && x <= w, "stride geometry out of range");
  ROTA_REQUIRE(u >= 0 && u < w, "column out of range");
  const std::int64_t g = util::gcd(w, x);
  ROTA_REQUIRE(u % g == 0, "column is off the stride lattice through 0");
  if (u == 0) return 0;
  // k·(x/g) ≡ −(u/g) (mod w/g); both factors are < w, the checked product
  // guards pathological widths.
  const std::int64_t wg = w / g;
  const std::int64_t inv = mod_inverse((x / g) % wg, wg);
  return util::checked_mul((wg - u / g) % wg, inv) % wg;
}

}  // namespace rota::wear
