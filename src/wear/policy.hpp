#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sched/schedule.hpp"
#include "util/rng.hpp"
#include "wear/usage_tracker.hpp"

/// \file policy.hpp
/// Wear-leveling policies: strategies that choose where each utilization
/// space is anchored on the PE array. The paper's three schemes —
/// Baseline (fixed corner), RWL (per-layer rotational striding) and
/// RWL+RO (striding relayed across layers, Algorithm 1) — plus two
/// extension policies used by the ablation benches.

namespace rota::wear {

// Placement (the anchor a policy emits per tile) lives in
// usage_tracker.hpp next to the batch API that consumes it.

/// Identifiers for the built-in policies.
enum class PolicyKind {
  kBaseline,        ///< fixed lower-left corner (conventional accelerator)
  kRwl,             ///< rotational wear-leveling, reset at each layer
  kRwlRo,           ///< RWL + residual optimization (paper's proposal)
  kRandomStart,     ///< uniformly random origin per tile (ablation)
  kDiagonalStride,  ///< u and v advance together every tile (ablation)
};

[[nodiscard]] std::string to_string(PolicyKind kind);

/// Strategy interface. A policy is created for a fixed array size and
/// driven by the simulator: begin_layer() at every layer boundary, then
/// one next_origin() per data tile.
class Policy {
 public:
  Policy(std::int64_t width, std::int64_t height);
  virtual ~Policy() = default;

  [[nodiscard]] std::int64_t width() const { return width_; }
  [[nodiscard]] std::int64_t height() const { return height_; }

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual PolicyKind kind() const = 0;

  /// True if the policy anchors spaces where they cross array edges and
  /// therefore needs the torus local network to operate.
  [[nodiscard]] virtual bool requires_torus() const = 0;

  /// Called once before each layer's tiles, with that layer's space.
  virtual void begin_layer(const sched::UtilSpace& space) = 0;

  /// Origin for the next tile; advances the internal stride state.
  virtual Placement next_origin(const sched::UtilSpace& space) = 0;

  /// Return to the initial state (origin at the lower-left corner).
  virtual void reset() = 0;

  [[nodiscard]] virtual std::unique_ptr<Policy> clone() const = 0;

  /// Serializable rotation state for checkpoint/resume. pack_state()
  /// captures everything next_origin() depends on beyond the construction
  /// parameters (stride coordinates, RNG state); unpack_state() restores
  /// it exactly. Stateless policies return an empty vector and accept only
  /// an empty one.
  [[nodiscard]] virtual std::vector<std::uint64_t> pack_state() const {
    return {};
  }
  virtual void unpack_state(const std::vector<std::uint64_t>& state);

  /// Optional O(1) fast path: record up to `tiles` allocations of `space`
  /// into `tracker` — each weighted by `weight` counts — with an effect
  /// identical to that many next_origin() calls, returning how many tiles
  /// were consumed (0 = no fast path). Called only after begin_layer() for
  /// the same space.
  virtual std::int64_t bulk_process(const sched::UtilSpace& space,
                                    std::int64_t tiles, UsageTracker& tracker,
                                    bool allow_wrap, std::int64_t weight);

 private:
  std::int64_t width_;
  std::int64_t height_;
};

/// Create a policy instance. `seed` is used by kRandomStart only.
[[nodiscard]] std::unique_ptr<Policy> make_policy(PolicyKind kind, std::int64_t width,
                                    std::int64_t height,
                                    std::uint64_t seed = 0x9e3779b9);

}  // namespace rota::wear
