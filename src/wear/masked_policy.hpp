#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sched/array_state.hpp"
#include "wear/policy.hpp"

/// \file masked_policy.hpp
/// Fault-aware wear leveling: a decorator that constrains any inner
/// rotation policy to the live PEs of a degraded array. The inner policy
/// keeps generating its rotation trajectory (RWL stride, diagonal,
/// random); the mask filters it down to anchors whose utilization window
/// avoids every dead, un-spared PE, so rotation levels wear over live
/// silicon only and never lands work on dead tiles.
///
/// Semantics per tile: advance the inner trajectory until it emits a
/// feasible origin (consuming the infeasible prefix), bounded by a probe
/// limit; if no feasible origin shows up within the limit, fall back to
/// the ArrayState's canonical anchor for the window. With an all-live
/// mask every call delegates straight to the inner policy, so a
/// fault-aware run is byte-identical to a fault-oblivious one until the
/// first un-spared fault lands.
///
/// The bulk fast path exploits that the deterministic policies' state
/// transition is an invertible map, so their origin stream is a pure
/// cycle of length ≤ w·h: discover the cycle once (on a clone), filter
/// it against the mask, and batch whole passes through the feasible
/// subset via UsageTracker::add_spaces — with the inner state advanced by
/// exactly the raw steps the per-tile path would have consumed, keeping
/// the two paths bit-identical.

namespace rota::wear {

class MaskedPolicy final : public Policy {
 public:
  /// \pre inner != nullptr; a concrete mask must match inner's geometry.
  MaskedPolicy(std::unique_ptr<Policy> inner, sched::ArrayState mask);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] PolicyKind kind() const override { return inner_->kind(); }
  [[nodiscard]] bool requires_torus() const override;

  void begin_layer(const sched::UtilSpace& space) override;
  Placement next_origin(const sched::UtilSpace& space) override;
  void reset() override { inner_->reset(); }
  [[nodiscard]] std::unique_ptr<Policy> clone() const override;

  std::int64_t bulk_process(const sched::UtilSpace& space, std::int64_t tiles,
                            UsageTracker& tracker, bool allow_wrap,
                            std::int64_t weight) override;

  [[nodiscard]] std::vector<std::uint64_t> pack_state() const override {
    return inner_->pack_state();
  }
  void unpack_state(const std::vector<std::uint64_t>& state) override {
    inner_->unpack_state(state);
  }

  /// Swap in a new live map after a remap/reschedule; the inner rotation
  /// state is untouched. \pre a concrete mask matches the geometry.
  void set_mask(sched::ArrayState mask);

  [[nodiscard]] const sched::ArrayState& mask() const { return mask_; }
  [[nodiscard]] const Policy& inner() const { return *inner_; }

 private:
  [[nodiscard]] std::int64_t probe_limit() const;

  std::unique_ptr<Policy> inner_;
  sched::ArrayState mask_;
};

}  // namespace rota::wear
