#pragma once

#include <cstdint>

/// \file rwl_math.hpp
/// Closed-form arithmetic of the rotational wear-leveling scheme —
/// Eqs. (5)–(11) and Table I of the paper. These formulas predict, without
/// simulation, how evenly RWL spreads Z tiles of an x×y utilization space
/// over a w×h torus PE array; the test suite cross-checks them against the
/// wear simulator.

namespace rota::wear {

/// Inputs of the RWL analysis for one layer.
struct RwlParams {
  std::int64_t w = 0;  ///< PE array width
  std::int64_t h = 0;  ///< PE array height
  std::int64_t x = 0;  ///< utilization-space width
  std::int64_t y = 0;  ///< utilization-space height
  std::int64_t z = 0;  ///< number of data tiles (utilization spaces)
};

/// Quantities derived by Eqs. (5)–(11).
struct RwlDerived {
  std::int64_t strides_x = 0;   ///< X  = lcm(w,x)/x       (Eq. 5)
  std::int64_t unfold_w = 0;    ///< W  = lcm(w,x)/w       (Eq. 6)
  std::int64_t strides_y = 0;   ///< Y  = floor(Z/X)       (Eq. 7)
  std::int64_t unfold_h = 0;    ///< H_RWL = floor(Y·y/h)  (Eq. 8)
  std::int64_t d_max_bound = 0; ///< D_max <= W + 1        (Eq. 9)
  std::int64_t min_a_pe = 0;    ///< min(A_PE)             (Eq. 10)
  double r_diff_bound = 0.0;    ///< R_diff = D_max/min(A_PE)  (Eq. 11)
};

/// Evaluate Eqs. (5)–(11). \pre all params positive (z may be 0).
[[nodiscard]] RwlDerived rwl_derive(const RwlParams& params);

/// Exact per-period coverage of the stride lattice: processing
/// period_tiles(params) consecutive tiles adds exactly
/// uniform_per_period(params) to every PE and returns the stride state,
/// provided the horizontal coordinate lies on the stride lattice through
/// column 0 (gcd(w,x) divides u) — always true for per-layer RWL and for
/// the 0-coset states of RWL+RO. These drive the simulator's fast-forward
/// path and are property-tested against the naive per-tile reference.
[[nodiscard]] std::int64_t period_tiles(const RwlParams& params);
[[nodiscard]] std::int64_t uniform_per_period(const RwlParams& params);

/// One level below a full period: starting from u == 0, the next
/// sweep_tiles(params) = w/gcd(w,x) tiles (one X-sweep, Eq. (5)) cover the
/// horizontal band [v, v+y) exactly uniformly — uniform_per_sweep(params)
/// = x/gcd(w,x) per PE of the band — then return u to 0 and advance v by
/// y exactly once. This is the wrapped fast-forward used for sub-period
/// tile counts; like the period pair above it is property-tested against
/// the per-tile reference.
[[nodiscard]] std::int64_t sweep_tiles(const RwlParams& params);
[[nodiscard]] std::int64_t uniform_per_sweep(const RwlParams& params);

/// Smallest k >= 0 with (u + k·x) ≡ 0 (mod w): how many tiles the
/// horizontal stride needs to re-enter column 0. Solved in closed form
/// via the modular inverse of x/g mod w/g (g = gcd(w,x)).
/// \pre w > 0, 0 < x <= w, 0 <= u < w, and g divides u (u lies on the
///      stride lattice through column 0).
[[nodiscard]] std::int64_t tiles_to_column_zero(std::int64_t w,
                                                std::int64_t x,
                                                std::int64_t u);

}  // namespace rota::wear
