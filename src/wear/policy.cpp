#include "wear/policy.hpp"

#include "util/check.hpp"
#include "util/math.hpp"
#include "util/safe_math.hpp"
#include "wear/rwl_math.hpp"

namespace rota::wear {

std::string to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kBaseline: return "Baseline";
    case PolicyKind::kRwl: return "RWL";
    case PolicyKind::kRwlRo: return "RWL+RO";
    case PolicyKind::kRandomStart: return "RandomStart";
    case PolicyKind::kDiagonalStride: return "DiagonalStride";
  }
  ROTA_UNREACHABLE("unhandled PolicyKind");
}

Policy::Policy(std::int64_t width, std::int64_t height)
    : width_(width), height_(height) {
  ROTA_REQUIRE(width > 0 && height > 0, "policy dimensions must be positive");
}

std::int64_t Policy::bulk_process(const sched::UtilSpace&, std::int64_t,
                                  UsageTracker&, bool, std::int64_t) {
  return 0;  // default: no fast path
}

void Policy::unpack_state(const std::vector<std::uint64_t>& state) {
  ROTA_REQUIRE(state.empty(),
               "policy " + name() + " carries no serializable state but got " +
                   std::to_string(state.size()) + " words");
}

namespace {

// ---------------------------------------------------------------------------
// Baseline: every utilization space anchored at the lower-left corner.
// ---------------------------------------------------------------------------
class BaselinePolicy final : public Policy {
 public:
  using Policy::Policy;

  std::string name() const override { return to_string(kind()); }
  PolicyKind kind() const override { return PolicyKind::kBaseline; }
  bool requires_torus() const override { return false; }
  void begin_layer(const sched::UtilSpace&) override {}
  Placement next_origin(const sched::UtilSpace&) override { return {0, 0}; }
  void reset() override {}
  std::unique_ptr<Policy> clone() const override {
    return std::make_unique<BaselinePolicy>(*this);
  }

  std::int64_t bulk_process(const sched::UtilSpace& space, std::int64_t tiles,
                            UsageTracker& tracker, bool allow_wrap,
                            std::int64_t weight) override {
    tracker.add_space(0, 0, space.x, space.y, util::checked_mul(tiles, weight),
                      allow_wrap);
    return tiles;
  }
};

// ---------------------------------------------------------------------------
// Rotational striding shared by RWL and RWL+RO — the literal Algorithm 1:
// after each tile the origin strides right by x (mod w); when the
// horizontal coordinate loops back to the leftmost column (u == 0, the
// paper's u == 1 in 1-indexed form), the origin strides up by y (mod h).
// RWL resets the origin at every layer; RWL+RO relays it across layers
// (residual optimization).
//
// The absolute column-0 trigger matters: it makes successive inference
// iterations interfere instead of merely translating one fixed wear
// pattern around the torus, which is what disperses the per-layer
// residues "in an unbiased fashion" (§IV-D). A layer whose stride lattice
// misses column 0 (gcd(w, x) does not divide the entry coordinate) keeps
// v frozen for that layer and levels its horizontal band only — the next
// layer's geometry moves the band on.
// ---------------------------------------------------------------------------
class StridePolicy : public Policy {
 public:
  using Policy::Policy;

  bool requires_torus() const override { return true; }

  void begin_layer(const sched::UtilSpace&) override {
    if (reset_per_layer()) {
      u_ = 0;
      v_ = 0;
    }
  }

  Placement next_origin(const sched::UtilSpace& space) override {
    const Placement here{u_, v_};
    u_ = (u_ + space.x) % width();
    if (u_ == 0) v_ = (v_ + space.y) % height();
    return here;
  }

  void reset() override {
    u_ = 0;
    v_ = 0;
  }

  std::int64_t bulk_process(const sched::UtilSpace& space, std::int64_t tiles,
                            UsageTracker& tracker, bool allow_wrap,
                            std::int64_t weight) override {
    if (!allow_wrap) return 0;
    const RwlParams params{width(), height(), space.x, space.y, tiles};
    const std::int64_t g = util::gcd(width(), space.x);
    const std::int64_t strides_x = sweep_tiles(params);  // X of Eq. (5)
    if (u_ % g != 0) {
      // Column 0 unreachable: v stays frozen and X-sweeps cover the
      // horizontal band [v, v+y) uniformly, x/g times per PE each.
      if (tiles < strides_x) return 0;
      const std::int64_t sweeps = tiles / strides_x;
      tracker.add_space(
          0, v_, width(), space.y,
          util::checked_mul(util::checked_mul(sweeps, uniform_per_sweep(params)),
                            weight),
          allow_wrap);
      return sweeps * strides_x;
    }

    // The trajectory passes through column 0. Decompose the tile stream
    // into (A) whole periods — each covers the full origin lattice exactly
    // once, uniform over every PE, and restores (u, v); (B) a per-tile
    // alignment run to column 0; (C) whole X-sweeps — each covers the band
    // [v, v+y) uniformly and steps v by y once; (D) a sub-sweep tail left
    // to the caller's per-tile reference path.
    std::int64_t consumed = 0;
    const std::int64_t period = period_tiles(params);
    if (tiles >= period) {
      const std::int64_t periods = tiles / period;
      tracker.add_uniform(util::checked_mul(
          util::checked_mul(periods, uniform_per_period(params)), weight));
      consumed += periods * period;
    }

    // Aligning costs < strides_x per-tile updates — the same price the
    // caller would pay — so only do it when at least one whole sweep
    // follows to recoup it.
    const std::int64_t align = tiles_to_column_zero(width(), space.x, u_);
    if (tiles - consumed < align + strides_x) return consumed;
    for (std::int64_t i = 0; i < align; ++i) {
      tracker.add_space(u_, v_, space.x, space.y, weight, allow_wrap);
      u_ = (u_ + space.x) % width();
      if (u_ == 0) v_ = (v_ + space.y) % height();
    }
    consumed += align;

    const std::int64_t sweeps = (tiles - consumed) / strides_x;
    const std::int64_t band_count =
        util::checked_mul(uniform_per_sweep(params), weight);
    for (std::int64_t s = 0; s < sweeps; ++s) {
      tracker.add_space(0, v_, width(), space.y, band_count, allow_wrap);
      v_ = (v_ + space.y) % height();
    }
    consumed += sweeps * strides_x;
    return consumed;
  }

  std::vector<std::uint64_t> pack_state() const override {
    return {static_cast<std::uint64_t>(u_), static_cast<std::uint64_t>(v_)};
  }

  void unpack_state(const std::vector<std::uint64_t>& state) override {
    ROTA_REQUIRE(state.size() == 2, "stride policy state is two words");
    const auto u = static_cast<std::int64_t>(state[0]);
    const auto v = static_cast<std::int64_t>(state[1]);
    ROTA_REQUIRE(u >= 0 && u < width() && v >= 0 && v < height(),
                 "stride policy state outside the array");
    u_ = u;
    v_ = v;
  }

 protected:
  virtual bool reset_per_layer() const = 0;

 private:
  std::int64_t u_ = 0;
  std::int64_t v_ = 0;
};

class RwlPolicy final : public StridePolicy {
 public:
  using StridePolicy::StridePolicy;
  std::string name() const override { return to_string(kind()); }
  PolicyKind kind() const override { return PolicyKind::kRwl; }
  std::unique_ptr<Policy> clone() const override {
    return std::make_unique<RwlPolicy>(*this);
  }

 protected:
  bool reset_per_layer() const override { return true; }
};

class RwlRoPolicy final : public StridePolicy {
 public:
  using StridePolicy::StridePolicy;
  std::string name() const override { return to_string(kind()); }
  PolicyKind kind() const override { return PolicyKind::kRwlRo; }
  std::unique_ptr<Policy> clone() const override {
    return std::make_unique<RwlRoPolicy>(*this);
  }

 protected:
  bool reset_per_layer() const override { return false; }
};

// ---------------------------------------------------------------------------
// RandomStart: uniformly random origin for every tile (ablation). Needs the
// torus because random origins wrap; converges to level wear only in
// expectation, with a √t-growing usage spread.
// ---------------------------------------------------------------------------
class RandomStartPolicy final : public Policy {
 public:
  RandomStartPolicy(std::int64_t width, std::int64_t height,
                    std::uint64_t seed)
      : Policy(width, height), seed_(seed), rng_(seed) {}

  std::string name() const override { return to_string(kind()); }
  PolicyKind kind() const override { return PolicyKind::kRandomStart; }
  bool requires_torus() const override { return true; }
  void begin_layer(const sched::UtilSpace&) override {}

  Placement next_origin(const sched::UtilSpace&) override {
    return {static_cast<std::int64_t>(
                rng_.next_below(static_cast<std::uint64_t>(width()))),
            static_cast<std::int64_t>(
                rng_.next_below(static_cast<std::uint64_t>(height())))};
  }

  void reset() override { rng_ = util::SplitMix64(seed_); }
  std::unique_ptr<Policy> clone() const override {
    return std::make_unique<RandomStartPolicy>(*this);
  }

  std::vector<std::uint64_t> pack_state() const override {
    return {rng_.state()};
  }

  void unpack_state(const std::vector<std::uint64_t>& state) override {
    ROTA_REQUIRE(state.size() == 1, "RandomStart state is one word");
    rng_.set_state(state[0]);
  }

 private:
  std::uint64_t seed_;
  util::SplitMix64 rng_;
};

// ---------------------------------------------------------------------------
// DiagonalStride: u and v advance together after every tile (ablation).
// Covers only the diagonal sub-lattice of origins, so PEs off that lattice
// wear-level poorly — a counterexample motivating the paper's band order.
// ---------------------------------------------------------------------------
class DiagonalStridePolicy final : public Policy {
 public:
  using Policy::Policy;

  std::string name() const override { return to_string(kind()); }
  PolicyKind kind() const override { return PolicyKind::kDiagonalStride; }
  bool requires_torus() const override { return true; }
  void begin_layer(const sched::UtilSpace&) override {}

  Placement next_origin(const sched::UtilSpace& space) override {
    const Placement here{u_, v_};
    u_ = (u_ + space.x) % width();
    v_ = (v_ + space.y) % height();
    return here;
  }

  void reset() override {
    u_ = 0;
    v_ = 0;
  }
  std::unique_ptr<Policy> clone() const override {
    return std::make_unique<DiagonalStridePolicy>(*this);
  }

  std::vector<std::uint64_t> pack_state() const override {
    return {static_cast<std::uint64_t>(u_), static_cast<std::uint64_t>(v_)};
  }

  void unpack_state(const std::vector<std::uint64_t>& state) override {
    ROTA_REQUIRE(state.size() == 2, "DiagonalStride state is two words");
    const auto u = static_cast<std::int64_t>(state[0]);
    const auto v = static_cast<std::int64_t>(state[1]);
    ROTA_REQUIRE(u >= 0 && u < width() && v >= 0 && v < height(),
                 "DiagonalStride state outside the array");
    u_ = u;
    v_ = v;
  }

 private:
  std::int64_t u_ = 0;
  std::int64_t v_ = 0;
};

}  // namespace

std::unique_ptr<Policy> make_policy(PolicyKind kind, std::int64_t width,
                                    std::int64_t height, std::uint64_t seed) {
  switch (kind) {
    case PolicyKind::kBaseline:
      return std::make_unique<BaselinePolicy>(width, height);
    case PolicyKind::kRwl:
      return std::make_unique<RwlPolicy>(width, height);
    case PolicyKind::kRwlRo:
      return std::make_unique<RwlRoPolicy>(width, height);
    case PolicyKind::kRandomStart:
      return std::make_unique<RandomStartPolicy>(width, height, seed);
    case PolicyKind::kDiagonalStride:
      return std::make_unique<DiagonalStridePolicy>(width, height);
  }
  ROTA_UNREACHABLE("unhandled PolicyKind");
}

}  // namespace rota::wear
