#pragma once

#include <cstdint>
#include <vector>

#include "util/grid.hpp"

/// \file usage_tracker.hpp
/// Per-PE usage accounting: each utilization-space allocation increments
/// the counter of every PE the space covers (A_PE in the paper's Table I).
/// Internally a 2-D difference array makes each allocation O(1) regardless
/// of the space size — wraparound splits into at most four rectangles —
/// and the full counter grid is materialized lazily when statistics are
/// requested (at iteration boundaries in the evaluation harness).
///
/// Hot-path structure (DESIGN.md §14): materialization runs as three
/// unit-stride passes over the row-major backing vectors (horizontal
/// prefix, vertical row += previous row via kern::add_i64, uniform via
/// kern::add_scalar_i64), and per-tile overflow checks are amortized —
/// add_space spends one checked multiply only when a precomputed budget
/// runs out, add_spaces charges a whole batch with a single check.

namespace rota::wear {

/// Anchor (lower-left PE) of a utilization space, 0-indexed.
struct Placement {
  std::int64_t u = 0;
  std::int64_t v = 0;
};

/// Summary statistics over the PE usage counters.
struct UsageStats {
  std::int64_t min = 0;       ///< min(A_PE)
  std::int64_t max = 0;       ///< max(A_PE)
  std::int64_t max_diff = 0;  ///< D_max = max − min
  double r_diff = 0.0;        ///< R_diff = D_max / min (inf when min == 0)
  double mean = 0.0;
};

/// Tracks A_PE over a w×h PE array.
class UsageTracker {
 public:
  UsageTracker(std::int64_t width, std::int64_t height);

  [[nodiscard]] std::int64_t width() const { return width_; }
  [[nodiscard]] std::int64_t height() const { return height_; }

  /// Record `count` allocations of an x×y utilization space anchored at
  /// (u, v) (0-indexed, lower-left PE of the space).
  ///
  /// \param allow_wrap torus semantics: the space may cross the right and
  ///        top edges and wrap around. With allow_wrap == false (mesh), the
  ///        space must fit: u + x <= w and v + y <= h or the call throws.
  /// \pre 0 <= u < w, 0 <= v < h, 1 <= x <= w, 1 <= y <= h, count >= 0.
  void add_space(std::int64_t u, std::int64_t v, std::int64_t x,
                 std::int64_t y, std::int64_t count, bool allow_wrap);

  /// Record one x×y space at every origin in origins[0..tiles), each with
  /// `weight` allocations — equivalent to `tiles` add_space calls but with
  /// a single overflow-checked total update for the whole batch and cheap
  /// per-tile bounds compares. Preconditions per tile match add_space.
  void add_spaces(const Placement* origins, std::size_t tiles,
                  std::int64_t x, std::int64_t y, std::int64_t weight,
                  bool allow_wrap);

  /// Add `count` to every PE (used by the periodic fast-forward path).
  void add_uniform(std::int64_t count);

  /// Materialized per-PE counters.
  [[nodiscard]] const util::Grid<std::int64_t>& usage() const;

  /// Usage counters as doubles, row-major (for the reliability model).
  [[nodiscard]] std::vector<double> usage_as_doubles() const;

  [[nodiscard]] UsageStats stats() const;

  /// Reset all counters to zero.
  void clear();

  /// Replace the counters with a previously materialized grid (row-major,
  /// w·h cells, all non-negative) — the checkpoint/resume inverse of
  /// usage(): restore_cells(t.usage().cells()) leaves the tracker with
  /// byte-identical counters and total. \pre cells.size() == w·h.
  void restore_cells(const std::vector<std::int64_t>& cells);

  /// Total allocations recorded so far (Σ count · x · y consistency check).
  [[nodiscard]] std::int64_t total_pe_allocations() const;

 private:
  void add_rect(std::int64_t c0, std::int64_t r0, std::int64_t c1,
                std::int64_t r1, std::int64_t count);
  /// The add_rect splits of one (possibly wrapped) space; no validation,
  /// no total/dirty bookkeeping.
  void splat_space(std::int64_t u, std::int64_t v, std::int64_t x,
                   std::int64_t y, std::int64_t count);
  /// Refresh budget_ from the current total (see member comment).
  void recompute_budget();
  void materialize() const;

  std::int64_t width_;
  std::int64_t height_;
  util::Grid<std::int64_t> diff_;          ///< (w+1)×(h+1) difference array
  std::int64_t uniform_ = 0;               ///< whole-array additions
  std::int64_t total_allocations_ = 0;
  /// How many more allocation counts add_space can accept — assuming the
  /// worst-case w×h space — before total_allocations_ could overflow:
  /// (INT64_MAX − total) / (w·h). While count fits the budget the checked
  /// multiply chain is skipped entirely; on exhaustion the slow path
  /// recomputes the exact checked total (and throws where the unamortized
  /// code would have).
  std::int64_t budget_ = 0;
  mutable util::Grid<std::int64_t> usage_;
  mutable bool dirty_ = true;
};

}  // namespace rota::wear
