#pragma once

#include <memory>
#include <ostream>
#include <vector>

#include "wear/policy.hpp"

/// \file trace.hpp
/// Placement tracing: a decorator that records every utilization-space
/// anchoring decision a policy makes. Traces are what an RTL or FPGA
/// validation flow diffs against the hardware controller's (u, v)
/// sequence, and they double as golden files for regression testing.
/// Note that tracing forces the per-tile path (the periodicity
/// fast-forward is bypassed so every placement is observed).

namespace rota::wear {

/// One recorded anchoring decision.
struct TraceRecord {
  std::int64_t tile_index = 0;  ///< global tile counter, 0-based
  std::int64_t layer_index = 0; ///< 0-based layer (begin_layer) counter
  std::int64_t x = 0;           ///< space width
  std::int64_t y = 0;           ///< space height
  std::int64_t u = 0;           ///< anchor column
  std::int64_t v = 0;           ///< anchor row
};

/// Policy decorator that records placements while delegating behavior.
class TracingPolicy final : public Policy {
 public:
  /// Wraps (and owns) `inner`. \pre inner non-null.
  explicit TracingPolicy(std::unique_ptr<Policy> inner);

  std::string name() const override;
  PolicyKind kind() const override;
  bool requires_torus() const override;
  void begin_layer(const sched::UtilSpace& space) override;
  Placement next_origin(const sched::UtilSpace& space) override;
  void reset() override;
  std::unique_ptr<Policy> clone() const override;
  // Intentionally no bulk_process override: tracing needs every tile.

  [[nodiscard]] const std::vector<TraceRecord>& records() const { return records_; }
  void clear_trace() { records_.clear(); }

 private:
  std::unique_ptr<Policy> inner_;
  std::vector<TraceRecord> records_;
  std::int64_t tile_counter_ = 0;
  std::int64_t layer_counter_ = -1;
};

/// Write a trace as CSV (tile,layer,x,y,u,v).
void write_trace_csv(const std::vector<TraceRecord>& records,
                     std::ostream& out);

}  // namespace rota::wear
