#pragma once

#include <cstdint>
#include <functional>

#include "arch/config.hpp"
#include "sched/schedule.hpp"
#include "wear/policy.hpp"
#include "wear/usage_tracker.hpp"

/// \file simulator.hpp
/// The wear simulator: drives a wear-leveling policy over a network
/// schedule, tile by tile, accumulating per-PE usage counts — the
/// simulator the paper "composed to track the usage count of individual
/// PEs" (§V). A periodicity fast-forward (exact, property-tested) makes
/// thousand-iteration runs of billion-tile workloads tractable.

namespace rota::wear {

/// How much each utilization-space allocation adds to a PE's counter.
enum class WearMetric {
  /// One count per allocation — the paper's A_PE definition (Table I).
  kAllocations,
  /// Weight each allocation by the tile's per-PE busy time
  /// (allocations_per_tile × reduction_steps × compute MACs), modeling
  /// stress ∝ active cycles instead of activations. An extension used by
  /// the abl_weighting bench to show the conclusions are insensitive to
  /// the wear metric.
  kActiveCycles,
};

/// Simulator knobs.
struct SimulatorOptions {
  /// Use policies' exact bulk fast path where available. Disable to force
  /// the per-tile reference path (tests compare the two).
  bool fast_forward = true;
  WearMetric metric = WearMetric::kAllocations;
};

/// Drives policies over schedules and owns the usage counters.
class WearSimulator {
 public:
  explicit WearSimulator(arch::AcceleratorConfig cfg,
                         SimulatorOptions options = {});

  [[nodiscard]] const arch::AcceleratorConfig& config() const { return cfg_; }
  UsageTracker& tracker() { return tracker_; }
  [[nodiscard]] const UsageTracker& tracker() const { return tracker_; }

  /// Process one layer's tiles under `policy`.
  /// Throws util::precondition_error if the policy needs a torus but the
  /// configured array is a mesh, or if the schedule's utilization space
  /// does not fit the array.
  void run_layer(const sched::LayerSchedule& layer, Policy& policy);

  /// Process one full inference pass (all layers, in order).
  void run_iteration(const sched::NetworkSchedule& schedule, Policy& policy);

  /// Callback invoked after each iteration: (1-based iteration index,
  /// tracker). Used by the benches to sample D_max / R_diff transients.
  using IterationSampler =
      std::function<void(std::int64_t, const UsageTracker&)>;

  /// Run `iterations` inference passes; `sampler` may be empty.
  void run_iterations(const sched::NetworkSchedule& schedule, Policy& policy,
                      std::int64_t iterations,
                      const IterationSampler& sampler = {});

  /// Callback invoked after each iteration, like IterationSampler, but its
  /// return value controls continuation: `false` stops the run early.
  /// Used by fi::FaultSession (stop once the array can no longer absorb
  /// faults) and by checkpointed sweeps (stop at an interrupt boundary).
  using StoppingSampler =
      std::function<bool(std::int64_t, const UsageTracker&)>;

  /// Run up to `iterations` inference passes, stopping early when
  /// `sampler` returns false. Returns the number of iterations actually
  /// completed. An iteration is never torn: the sampler only runs at
  /// iteration boundaries, so usage counters always reflect a whole
  /// number of passes. \pre iterations >= 0, sampler non-empty.
  std::int64_t run_iterations_while(const sched::NetworkSchedule& schedule,
                                    Policy& policy, std::int64_t iterations,
                                    const StoppingSampler& sampler);

 private:
  arch::AcceleratorConfig cfg_;
  SimulatorOptions options_;
  UsageTracker tracker_;
  bool allow_wrap_;
};

}  // namespace rota::wear
