#include "wear/usage_tracker.hpp"

#include <limits>

#include "kern/kern.hpp"
#include "util/check.hpp"
#include "util/safe_math.hpp"

namespace rota::wear {

UsageTracker::UsageTracker(std::int64_t width, std::int64_t height)
    : width_(width),
      height_(height),
      diff_(static_cast<std::size_t>(width + 1),
            static_cast<std::size_t>(height + 1)),
      usage_(static_cast<std::size_t>(width),
             static_cast<std::size_t>(height)) {
  ROTA_REQUIRE(width > 0 && height > 0, "tracker dimensions must be positive");
  recompute_budget();
}

void UsageTracker::recompute_budget() {
  // width_·height_ fits: the usage grid of that many cells was allocated.
  budget_ = (std::numeric_limits<std::int64_t>::max() - total_allocations_) /
            (width_ * height_);
}

void UsageTracker::add_rect(std::int64_t c0, std::int64_t r0, std::int64_t c1,
                            std::int64_t r1, std::int64_t count) {
  // Half-open rectangle [c0, c1) × [r0, r1) in the difference array.
  auto uc0 = static_cast<std::size_t>(c0);
  auto ur0 = static_cast<std::size_t>(r0);
  auto uc1 = static_cast<std::size_t>(c1);
  auto ur1 = static_cast<std::size_t>(r1);
  diff_(uc0, ur0) += count;
  diff_(uc1, ur0) -= count;
  diff_(uc0, ur1) -= count;
  diff_(uc1, ur1) += count;
}

void UsageTracker::splat_space(std::int64_t u, std::int64_t v, std::int64_t x,
                               std::int64_t y, std::int64_t count) {
  const std::int64_t x_main = std::min(x, width_ - u);
  const std::int64_t x_wrap = x - x_main;
  const std::int64_t y_main = std::min(y, height_ - v);
  const std::int64_t y_wrap = y - y_main;

  add_rect(u, v, u + x_main, v + y_main, count);
  if (x_wrap > 0) add_rect(0, v, x_wrap, v + y_main, count);
  if (y_wrap > 0) add_rect(u, 0, u + x_main, y_wrap, count);
  if (x_wrap > 0 && y_wrap > 0) add_rect(0, 0, x_wrap, y_wrap, count);
}

void UsageTracker::add_space(std::int64_t u, std::int64_t v, std::int64_t x,
                             std::int64_t y, std::int64_t count,
                             bool allow_wrap) {
  ROTA_REQUIRE(u >= 0 && u < width_ && v >= 0 && v < height_,
               "space origin out of range");
  ROTA_REQUIRE(x >= 1 && x <= width_ && y >= 1 && y <= height_,
               "space size out of range");
  ROTA_REQUIRE(count >= 0, "allocation count must be non-negative");
  if (!allow_wrap) {
    ROTA_REQUIRE(u + x <= width_ && v + y <= height_,
                 "utilization space crosses the array edge on a mesh");
  }
  if (count == 0) return;

  // Conservation-counter arithmetic, amortized: while `count` fits the
  // precomputed budget, count·x·y ≤ count·w·h ≤ INT64_MAX − total holds by
  // construction and the product is added unchecked. Only when the budget
  // runs out is the exact checked chain evaluated (which throws before any
  // difference-array cell is touched, exactly like the unamortized code).
  if (count <= budget_) {
    budget_ -= count;
    total_allocations_ += count * x * y;
  } else {
    total_allocations_ = util::checked_add(
        total_allocations_, util::checked_mul(util::checked_mul(count, x), y));
    recompute_budget();
  }

  splat_space(u, v, x, y, count);
  dirty_ = true;
}

void UsageTracker::add_spaces(const Placement* origins, std::size_t tiles,
                              std::int64_t x, std::int64_t y,
                              std::int64_t weight, bool allow_wrap) {
  ROTA_REQUIRE(tiles == 0 || origins != nullptr,
               "add_spaces needs origins when tiles > 0");
  ROTA_REQUIRE(x >= 1 && x <= width_ && y >= 1 && y <= height_,
               "space size out of range");
  ROTA_REQUIRE(weight >= 0, "allocation count must be non-negative");
  if (tiles == 0 || weight == 0) return;

  // One checked total update for the whole batch, then only cheap
  // per-tile bounds compares in the loop.
  const std::int64_t per_tile =
      util::checked_mul(util::checked_mul(weight, x), y);
  const std::int64_t new_total = util::checked_add(
      total_allocations_,
      util::checked_mul(per_tile, static_cast<std::int64_t>(tiles)));

  // Validate every origin before touching any cell so a bad tile throws
  // with the tracker unchanged, like add_space does.
  const bool must_fit = !allow_wrap;
  for (std::size_t i = 0; i < tiles; ++i) {
    const std::int64_t u = origins[i].u;
    const std::int64_t v = origins[i].v;
    ROTA_REQUIRE(u >= 0 && u < width_ && v >= 0 && v < height_,
                 "space origin out of range");
    if (must_fit) {
      ROTA_REQUIRE(u + x <= width_ && v + y <= height_,
                   "utilization space crosses the array edge on a mesh");
    }
  }
  for (std::size_t i = 0; i < tiles; ++i) {
    splat_space(origins[i].u, origins[i].v, x, y, weight);
  }

  total_allocations_ = new_total;
  recompute_budget();
  dirty_ = true;
}

void UsageTracker::add_uniform(std::int64_t count) {
  ROTA_REQUIRE(count >= 0, "uniform count must be non-negative");
  if (count == 0) return;
  const std::int64_t new_total = util::checked_add(
      total_allocations_,
      util::checked_mul(util::checked_mul(count, width_), height_));
  uniform_ = util::checked_add(uniform_, count);
  total_allocations_ = new_total;
  recompute_budget();
  dirty_ = true;
}

void UsageTracker::materialize() const {
  if (!dirty_) return;
  // 2-D prefix sum of the difference array, restricted to [0,w)×[0,h),
  // as three unit-stride passes over the row-major backing stores. Integer
  // addition is associative, so the result is identical to the fused
  // single pass this replaces — the horizontal prefix is inherently
  // serial per row, but the vertical and uniform passes vectorize.
  const auto w = static_cast<std::size_t>(width_);
  const auto h = static_cast<std::size_t>(height_);
  const std::int64_t* diff_cells = diff_.cells().data();
  const std::size_t diff_stride = w + 1;
  std::int64_t* usage_cells = usage_.cells().data();

  for (std::size_t r = 0; r < h; ++r) {
    const std::int64_t* diff_row = diff_cells + r * diff_stride;
    std::int64_t* usage_row = usage_cells + r * w;
    std::int64_t row_acc = 0;
    for (std::size_t c = 0; c < w; ++c) {
      row_acc += diff_row[c];
      usage_row[c] = row_acc;
    }
  }
  for (std::size_t r = 1; r < h; ++r) {
    kern::add_i64(usage_cells + r * w, usage_cells + (r - 1) * w, w);
  }
  if (uniform_ != 0) {
    kern::add_scalar_i64(usage_cells, uniform_, w * h);
  }
  dirty_ = false;
}

const util::Grid<std::int64_t>& UsageTracker::usage() const {
  materialize();
  return usage_;
}

std::vector<double> UsageTracker::usage_as_doubles() const {
  materialize();
  std::vector<double> out;
  out.reserve(usage_.size());
  for (std::int64_t value : usage_.cells())
    out.push_back(static_cast<double>(value));
  return out;
}

UsageStats UsageTracker::stats() const {
  materialize();
  // The int64 sum is exact: Σ cells == total_allocations_, which the
  // allocation paths keep overflow-checked.
  const kern::I64Stats ks =
      kern::minmax_sum_i64(usage_.cells().data(), usage_.size());
  UsageStats s;
  s.min = ks.min;
  s.max = ks.max;
  s.max_diff = s.max - s.min;
  s.mean = static_cast<double>(ks.sum) / static_cast<double>(usage_.size());
  if (s.max_diff == 0) {
    s.r_diff = 0.0;
  } else if (s.min == 0) {
    s.r_diff = std::numeric_limits<double>::infinity();
  } else {
    s.r_diff = static_cast<double>(s.max_diff) / static_cast<double>(s.min);
  }
  return s;
}

void UsageTracker::clear() {
  diff_.fill(0);
  usage_.fill(0);
  uniform_ = 0;
  total_allocations_ = 0;
  recompute_budget();
  dirty_ = true;
}

void UsageTracker::restore_cells(const std::vector<std::int64_t>& cells) {
  ROTA_REQUIRE(cells.size() == static_cast<std::size_t>(width_ * height_),
               "restore_cells grid does not match the tracker geometry");
  clear();
  // Re-seed the difference array with one 1×1 rect per cell; the next
  // materialize() reproduces exactly the snapshotted counters, and the
  // total is rebuilt with the same overflow-checked chain the allocation
  // paths use.
  std::int64_t total = 0;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const std::int64_t count = cells[i];
    ROTA_REQUIRE(count >= 0, "restore_cells counters must be non-negative");
    total = util::checked_add(total, count);
    if (count == 0) continue;
    const auto c = static_cast<std::int64_t>(i) % width_;
    const auto r = static_cast<std::int64_t>(i) / width_;
    add_rect(c, r, c + 1, r + 1, count);
  }
  total_allocations_ = total;
  recompute_budget();
  dirty_ = true;
}

std::int64_t UsageTracker::total_pe_allocations() const {
  return total_allocations_;
}

}  // namespace rota::wear
