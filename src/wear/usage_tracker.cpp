#include "wear/usage_tracker.hpp"

#include <limits>

#include "util/check.hpp"
#include "util/safe_math.hpp"

namespace rota::wear {

UsageTracker::UsageTracker(std::int64_t width, std::int64_t height)
    : width_(width),
      height_(height),
      diff_(static_cast<std::size_t>(width + 1),
            static_cast<std::size_t>(height + 1)),
      usage_(static_cast<std::size_t>(width),
             static_cast<std::size_t>(height)) {
  ROTA_REQUIRE(width > 0 && height > 0, "tracker dimensions must be positive");
}

void UsageTracker::add_rect(std::int64_t c0, std::int64_t r0, std::int64_t c1,
                            std::int64_t r1, std::int64_t count) {
  // Half-open rectangle [c0, c1) × [r0, r1) in the difference array.
  auto uc0 = static_cast<std::size_t>(c0);
  auto ur0 = static_cast<std::size_t>(r0);
  auto uc1 = static_cast<std::size_t>(c1);
  auto ur1 = static_cast<std::size_t>(r1);
  diff_(uc0, ur0) += count;
  diff_(uc1, ur0) -= count;
  diff_(uc0, ur1) -= count;
  diff_(uc1, ur1) += count;
}

void UsageTracker::add_space(std::int64_t u, std::int64_t v, std::int64_t x,
                             std::int64_t y, std::int64_t count,
                             bool allow_wrap) {
  ROTA_REQUIRE(u >= 0 && u < width_ && v >= 0 && v < height_,
               "space origin out of range");
  ROTA_REQUIRE(x >= 1 && x <= width_ && y >= 1 && y <= height_,
               "space size out of range");
  ROTA_REQUIRE(count >= 0, "allocation count must be non-negative");
  if (!allow_wrap) {
    ROTA_REQUIRE(u + x <= width_ && v + y <= height_,
                 "utilization space crosses the array edge on a mesh");
  }
  if (count == 0) return;

  // Check the conservation-counter arithmetic up front so an overflow
  // throws before any difference-array cell is touched.
  const std::int64_t new_total = util::checked_add(
      total_allocations_, util::checked_mul(util::checked_mul(count, x), y));

  const std::int64_t x_main = std::min(x, width_ - u);
  const std::int64_t x_wrap = x - x_main;
  const std::int64_t y_main = std::min(y, height_ - v);
  const std::int64_t y_wrap = y - y_main;

  add_rect(u, v, u + x_main, v + y_main, count);
  if (x_wrap > 0) add_rect(0, v, x_wrap, v + y_main, count);
  if (y_wrap > 0) add_rect(u, 0, u + x_main, y_wrap, count);
  if (x_wrap > 0 && y_wrap > 0) add_rect(0, 0, x_wrap, y_wrap, count);

  total_allocations_ = new_total;
  dirty_ = true;
}

void UsageTracker::add_uniform(std::int64_t count) {
  ROTA_REQUIRE(count >= 0, "uniform count must be non-negative");
  if (count == 0) return;
  const std::int64_t new_total = util::checked_add(
      total_allocations_,
      util::checked_mul(util::checked_mul(count, width_), height_));
  uniform_ = util::checked_add(uniform_, count);
  total_allocations_ = new_total;
  dirty_ = true;
}

void UsageTracker::materialize() const {
  if (!dirty_) return;
  // 2-D prefix sum of the difference array, restricted to [0,w)×[0,h).
  for (std::int64_t r = 0; r < height_; ++r) {
    std::int64_t row_acc = 0;
    for (std::int64_t c = 0; c < width_; ++c) {
      row_acc += diff_(static_cast<std::size_t>(c),
                       static_cast<std::size_t>(r));
      const std::int64_t above =
          (r > 0) ? usage_(static_cast<std::size_t>(c),
                           static_cast<std::size_t>(r - 1)) -
                        uniform_
                  : 0;
      usage_(static_cast<std::size_t>(c), static_cast<std::size_t>(r)) =
          row_acc + above + uniform_;
    }
  }
  dirty_ = false;
}

const util::Grid<std::int64_t>& UsageTracker::usage() const {
  materialize();
  return usage_;
}

std::vector<double> UsageTracker::usage_as_doubles() const {
  materialize();
  std::vector<double> out;
  out.reserve(usage_.size());
  for (std::int64_t value : usage_.cells())
    out.push_back(static_cast<double>(value));
  return out;
}

UsageStats UsageTracker::stats() const {
  materialize();
  UsageStats s;
  s.min = std::numeric_limits<std::int64_t>::max();
  s.max = std::numeric_limits<std::int64_t>::min();
  double sum = 0.0;
  for (std::int64_t value : usage_.cells()) {
    s.min = std::min(s.min, value);
    s.max = std::max(s.max, value);
    sum += static_cast<double>(value);
  }
  s.max_diff = s.max - s.min;
  s.mean = sum / static_cast<double>(usage_.size());
  if (s.max_diff == 0) {
    s.r_diff = 0.0;
  } else if (s.min == 0) {
    s.r_diff = std::numeric_limits<double>::infinity();
  } else {
    s.r_diff = static_cast<double>(s.max_diff) / static_cast<double>(s.min);
  }
  return s;
}

void UsageTracker::clear() {
  diff_.fill(0);
  usage_.fill(0);
  uniform_ = 0;
  total_allocations_ = 0;
  dirty_ = true;
}

std::int64_t UsageTracker::total_pe_allocations() const {
  return total_allocations_;
}

}  // namespace rota::wear
