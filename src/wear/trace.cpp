#include "wear/trace.hpp"

#include "util/check.hpp"

namespace rota::wear {

TracingPolicy::TracingPolicy(std::unique_ptr<Policy> inner)
    : Policy(inner ? inner->width() : 1, inner ? inner->height() : 1),
      inner_(std::move(inner)) {
  ROTA_REQUIRE(inner_ != nullptr, "tracing policy needs an inner policy");
}

std::string TracingPolicy::name() const {
  return inner_->name() + "+trace";
}

PolicyKind TracingPolicy::kind() const { return inner_->kind(); }

bool TracingPolicy::requires_torus() const {
  return inner_->requires_torus();
}

void TracingPolicy::begin_layer(const sched::UtilSpace& space) {
  ++layer_counter_;
  inner_->begin_layer(space);
}

Placement TracingPolicy::next_origin(const sched::UtilSpace& space) {
  const Placement at = inner_->next_origin(space);
  TraceRecord rec;
  rec.tile_index = tile_counter_++;
  rec.layer_index = layer_counter_ < 0 ? 0 : layer_counter_;
  rec.x = space.x;
  rec.y = space.y;
  rec.u = at.u;
  rec.v = at.v;
  records_.push_back(rec);
  return at;
}

void TracingPolicy::reset() {
  inner_->reset();
  records_.clear();
  tile_counter_ = 0;
  layer_counter_ = -1;
}

std::unique_ptr<Policy> TracingPolicy::clone() const {
  auto copy = std::make_unique<TracingPolicy>(inner_->clone());
  copy->records_ = records_;
  copy->tile_counter_ = tile_counter_;
  copy->layer_counter_ = layer_counter_;
  return copy;
}

void write_trace_csv(const std::vector<TraceRecord>& records,
                     std::ostream& out) {
  out << "tile,layer,x,y,u,v\n";
  for (const TraceRecord& r : records) {
    out << r.tile_index << ',' << r.layer_index << ',' << r.x << ',' << r.y
        << ',' << r.u << ',' << r.v << '\n';
  }
}

}  // namespace rota::wear
