#include "wear/masked_policy.hpp"

#include <utility>

#include "util/check.hpp"
#include "util/safe_math.hpp"

namespace rota::wear {

namespace {

void require_mask_matches(const Policy& inner, const sched::ArrayState& mask) {
  if (!mask.concrete()) return;
  ROTA_REQUIRE(mask.width() == inner.width() &&
                   mask.height() == inner.height(),
               "mask is " + std::to_string(mask.width()) + "x" +
                   std::to_string(mask.height()) + " but the policy array is " +
                   std::to_string(inner.width()) + "x" +
                   std::to_string(inner.height()));
}

}  // namespace

MaskedPolicy::MaskedPolicy(std::unique_ptr<Policy> inner,
                           sched::ArrayState mask)
    : Policy(inner ? inner->width() : 1, inner ? inner->height() : 1),
      inner_(std::move(inner)),
      mask_(std::move(mask)) {
  ROTA_REQUIRE(inner_ != nullptr, "MaskedPolicy needs an inner policy");
  require_mask_matches(*inner_, mask_);
}

std::string MaskedPolicy::name() const { return inner_->name() + "+masked"; }

bool MaskedPolicy::requires_torus() const {
  // Feasible windows and fallback anchors wrap freely, so a degraded mask
  // needs the torus even when the inner policy would not.
  return inner_->requires_torus() || mask_.dead_count() > 0;
}

void MaskedPolicy::begin_layer(const sched::UtilSpace& space) {
  inner_->begin_layer(space);
}

void MaskedPolicy::set_mask(sched::ArrayState mask) {
  ROTA_REQUIRE(!mask.concrete() || (mask.width() == inner_->width() &&
                                    mask.height() == inner_->height()),
               "mask is " + std::to_string(mask.width()) + "x" +
                   std::to_string(mask.height()) +
                   " but the policy array is " +
                   std::to_string(inner_->width()) + "x" +
                   std::to_string(inner_->height()));
  mask_ = std::move(mask);
}

std::int64_t MaskedPolicy::probe_limit() const {
  // Deterministic policies emit a pure origin cycle of length ≤ w·h (the
  // state transition is invertible over at most w·h states), so w·h
  // probes are guaranteed to visit every reachable origin. RandomStart
  // has no cycle; 4·w·h probes make a miss astronomically unlikely while
  // keeping the fallback deterministic.
  const std::int64_t cells = width() * height();
  return kind() == PolicyKind::kRandomStart ? 4 * cells : cells;
}

Placement MaskedPolicy::next_origin(const sched::UtilSpace& space) {
  if (mask_.dead_count() == 0) return inner_->next_origin(space);
  const std::int64_t limit = probe_limit();
  for (std::int64_t i = 0; i < limit; ++i) {
    const Placement p = inner_->next_origin(space);
    if (mask_.window_clear(p.u, p.v, space.x, space.y)) return p;
  }
  ROTA_REQUIRE(mask_.fits(space.x, space.y),
               "no live " + std::to_string(space.x) + "x" +
                   std::to_string(space.y) +
                   " window on the degraded array — the schedule must be "
                   "rebuilt before simulating");
  const auto [u, v] = mask_.anchor(space.x, space.y);
  return {u, v};
}

std::int64_t MaskedPolicy::bulk_process(const sched::UtilSpace& space,
                                        std::int64_t tiles,
                                        UsageTracker& tracker, bool allow_wrap,
                                        std::int64_t weight) {
  if (mask_.dead_count() == 0) {
    return inner_->bulk_process(space, tiles, tracker, allow_wrap, weight);
  }
  if (!allow_wrap) return 0;  // degraded anchors wrap; torus only
  if (kind() == PolicyKind::kRandomStart) return 0;  // no cycle to batch
  if (tiles <= 0) return 0;

  // Discover the inner origin cycle on a clone so the real state is only
  // advanced by the exact number of raw steps the per-tile path consumes.
  const std::int64_t cells = width() * height();
  const auto probe = inner_->clone();
  std::vector<Placement> cycle;
  const Placement start = probe->next_origin(space);
  cycle.push_back(start);
  while (static_cast<std::int64_t>(cycle.size()) <= cells) {
    const Placement p = probe->next_origin(space);
    if (p.u == start.u && p.v == start.v) break;
    cycle.push_back(p);
  }
  const auto length = static_cast<std::int64_t>(cycle.size());
  if (length > cells) return 0;  // not a pure cycle; keep the slow path

  std::vector<Placement> feasible;
  std::vector<std::int64_t> position;
  for (std::int64_t k = 0; k < length; ++k) {
    if (mask_.window_clear(cycle[static_cast<std::size_t>(k)].u,
                           cycle[static_cast<std::size_t>(k)].v, space.x,
                           space.y)) {
      feasible.push_back(cycle[static_cast<std::size_t>(k)]);
      position.push_back(k);
    }
  }

  const auto advance_raw = [&](std::int64_t steps) {
    for (std::int64_t i = 0; i < steps; ++i) inner_->next_origin(space);
  };

  if (feasible.empty()) {
    // Every tile exhausts the probe limit and lands on the fallback
    // anchor; each consumes probe_limit() raw steps of the cycle.
    ROTA_REQUIRE(mask_.fits(space.x, space.y),
                 "no live window on the degraded array — the schedule must "
                 "be rebuilt before simulating");
    const auto [u, v] = mask_.anchor(space.x, space.y);
    tracker.add_space(u, v, space.x, space.y, util::checked_mul(tiles, weight),
                      allow_wrap);
    advance_raw(((tiles % length) * (probe_limit() % length)) % length);
    return tiles;
  }

  // Per-tile, the k-th tile of a pass gets the k-th feasible origin and a
  // whole pass over the feasible subset consumes exactly one cycle, so
  // whole passes are state-neutral and only the remainder advances.
  const auto live = static_cast<std::int64_t>(feasible.size());
  const std::int64_t passes = tiles / live;
  const std::int64_t rest = tiles % live;
  if (passes > 0) {
    tracker.add_spaces(feasible.data(), feasible.size(), space.x, space.y,
                       util::checked_mul(passes, weight), allow_wrap);
  }
  if (rest > 0) {
    tracker.add_spaces(feasible.data(), static_cast<std::size_t>(rest),
                       space.x, space.y, weight, allow_wrap);
    advance_raw(position[static_cast<std::size_t>(rest - 1)] + 1);
  }
  return tiles;
}

std::unique_ptr<Policy> MaskedPolicy::clone() const {
  return std::make_unique<MaskedPolicy>(inner_->clone(), mask_);
}

}  // namespace rota::wear
