#pragma once

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/thread_annotations.hpp"

/// \file thread_pool.hpp
/// The deterministic parallel-execution substrate (`rota::par`). A
/// fixed-size worker pool executes *batches* of indexed tasks; callers
/// never observe scheduling order because every result is written to the
/// slot named by its task index and reductions combine slots in ascending
/// index order (see parallel.hpp). The contract throughout the repo:
/// **thread count never changes any numeric result** — it only changes
/// wall-clock time. Work is decomposed by problem size (layer shapes,
/// fixed-size Monte-Carlo chunks, policy cells), not by thread count, and
/// the serial path (`threads == 1`) bypasses the pool entirely, executing
/// tasks inline in ascending index order.
///
/// Observability: batches report `par.tasks_submitted` /
/// `par.tasks_executed` counters, the `par.batch_lanes` /
/// `par.pool_workers` gauges and `par.task_seconds` / `par.batch_seconds`
/// histograms when the global MetricsRegistry is enabled; the per-task
/// cost while disabled is one relaxed atomic load.

namespace rota::par {

/// Resolve a user-facing thread-count request: 0 means "one lane per
/// hardware thread" (never less than 1), any positive value is taken
/// as-is. Used by the CLI `--threads` flag and every library entry point
/// that accepts a thread count.
/// \pre requested >= 0
[[nodiscard]] std::size_t resolve_threads(int requested);

/// Fault-injection seam (installed by fi::Hooks, unset in production):
/// when set, the hook runs at the top of every pool task, so src/fi can
/// model slow or stalled workers (sleeps) without the pool knowing about
/// the fi layer. Determinism is unaffected — a stalled worker only delays
/// its lane, results still land in caller-indexed slots. Install before
/// spawning work and clear after joining it; the unarmed cost is one
/// relaxed atomic load per task.
void set_worker_fault_hook(std::function<void()> hook);

/// True when a worker fault hook is installed.
[[nodiscard]] bool worker_fault_hook_armed();

/// Fixed-size pool of worker threads executing indexed task batches.
///
/// Reentrancy: a batch launched from inside a pool worker (nested
/// parallelism) runs inline and serially on that worker — the pool never
/// blocks a worker on other workers, so nesting cannot deadlock and
/// nested results are still deterministic.
class ThreadPool {
 public:
  /// Spin up `workers` threads (at least 1).
  /// \pre workers >= 1
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t worker_count() const { return workers_.size(); }

  /// The process-wide pool used by parallel_for / parallel_reduce. Sized
  /// for the host but never below 8 workers, so concurrency bugs are
  /// exercised (and TSan-checked) even on small CI machines; `--threads`
  /// limits *lanes per batch*, not pool size.
  static ThreadPool& shared();

  /// True when the calling thread is one of this pool's workers.
  [[nodiscard]] bool on_worker_thread() const;

  /// Execute `task(0) … task(task_count-1)`, blocking until all have
  /// finished. At most `max_concurrency` tasks run at once (0 = one lane
  /// per worker plus the calling thread, which participates). Tasks are
  /// claimed dynamically, so long tasks do not serialize behind short
  /// ones; any per-index results must be written to caller-owned slots.
  /// If tasks throw, the exception thrown by the lowest task index is
  /// rethrown here after the batch drains (the rest are swallowed), which
  /// keeps error behavior independent of thread schedule.
  void run_batch(std::size_t task_count,
                 const std::function<void(std::size_t)>& task,
                 std::size_t max_concurrency = 0) ROTA_EXCLUDES(mu_);

 private:
  struct BatchState;

  void worker_loop();
  void enqueue(std::function<void()> job) ROTA_EXCLUDES(mu_);
  static void run_lane(const std::shared_ptr<BatchState>& state);

  /// Joined by the destructor only; never touched while workers run.
  std::vector<std::thread> workers_;
  mutable util::Mutex mu_;
  util::CondVar cv_;
  std::deque<std::function<void()>> queue_ ROTA_GUARDED_BY(mu_);
  bool stop_ ROTA_GUARDED_BY(mu_) = false;
};

}  // namespace rota::par
