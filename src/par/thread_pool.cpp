#include "par/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <exception>
#include <limits>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace rota::par {

namespace {

/// Worker-side marker: which pool (if any) owns the calling thread.
/// NOLINTNEXTLINE(cppcoreguidelines-avoid-non-const-global-variables)
thread_local const ThreadPool* tls_worker_pool = nullptr;

std::size_t hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

/// The fi worker-stall seam (see set_worker_fault_hook): armed flag on
/// the task fast path, hook copy under a mutex on the slow path.
/// NOLINTNEXTLINE(cppcoreguidelines-avoid-non-const-global-variables)
std::atomic<bool> g_worker_hook_armed{false};
/// NOLINTNEXTLINE(cppcoreguidelines-avoid-non-const-global-variables)
util::Mutex g_worker_hook_mu;
/// NOLINTNEXTLINE(cppcoreguidelines-avoid-non-const-global-variables)
std::function<void()> g_worker_hook ROTA_GUARDED_BY(g_worker_hook_mu);

void run_worker_hook() {
  if (!g_worker_hook_armed.load(std::memory_order_relaxed)) return;
  std::function<void()> hook;
  {
    const util::MutexLock lock(g_worker_hook_mu);
    hook = g_worker_hook;
  }
  if (hook) hook();
}

}  // namespace

void set_worker_fault_hook(std::function<void()> hook) {
  const util::MutexLock lock(g_worker_hook_mu);
  g_worker_hook = std::move(hook);
  g_worker_hook_armed.store(static_cast<bool>(g_worker_hook),
                            std::memory_order_relaxed);
}

bool worker_fault_hook_armed() {
  return g_worker_hook_armed.load(std::memory_order_relaxed);
}

std::size_t resolve_threads(int requested) {
  ROTA_REQUIRE(requested >= 0, "thread count must be non-negative "
                               "(0 = one lane per hardware thread)");
  if (requested == 0) return hardware_threads();
  return static_cast<std::size_t>(requested);
}

/// Shared bookkeeping of one run_batch call. Lane jobs hold a shared_ptr
/// so a job that is dequeued after the batch already drained (its lanes
/// were outrun by others) can still read `next`/`task_count` safely; it
/// exits without touching `task`, whose captures only outlive the
/// caller's run_batch frame while indices remain unclaimed.
struct ThreadPool::BatchState {
  std::function<void(std::size_t)> task;
  std::size_t task_count = 0;
  std::atomic<std::size_t> next{0};
  util::Mutex mu;
  util::CondVar done_cv;
  std::size_t completed ROTA_GUARDED_BY(mu) = 0;
  std::size_t error_index ROTA_GUARDED_BY(mu) =
      std::numeric_limits<std::size_t>::max();
  /// The exception thrown by the lowest failing index.
  std::exception_ptr error ROTA_GUARDED_BY(mu);
};

ThreadPool::ThreadPool(std::size_t workers) {
  ROTA_REQUIRE(workers >= 1, "a thread pool needs at least one worker");
  workers_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const util::MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(std::max<std::size_t>(hardware_threads(), 8));
  return pool;
}

bool ThreadPool::on_worker_thread() const { return tls_worker_pool == this; }

void ThreadPool::worker_loop() {
  tls_worker_pool = this;
  for (;;) {
    std::function<void()> job;
    {
      util::MutexLock lock(mu_);
      while (!stop_ && queue_.empty()) cv_.wait(lock, mu_);
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

void ThreadPool::enqueue(std::function<void()> job) {
  {
    const util::MutexLock lock(mu_);
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
}

void ThreadPool::run_lane(const std::shared_ptr<BatchState>& state) {
  auto& reg = obs::MetricsRegistry::global();
  for (;;) {
    const std::size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= state->task_count) return;
    std::exception_ptr err;
    const bool metered = reg.enabled();
    const auto t0 = metered ? std::chrono::steady_clock::now()
                            : std::chrono::steady_clock::time_point{};
    try {
      run_worker_hook();
      state->task(i);
    } catch (...) {
      err = std::current_exception();
    }
    if (metered) {
      reg.add("par.tasks_executed");
      reg.observe("par.task_seconds",
                  std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count());
    }
    bool last = false;
    {
      const util::MutexLock lock(state->mu);
      if (err && i < state->error_index) {
        state->error_index = i;
        state->error = err;
      }
      last = ++state->completed == state->task_count;
    }
    if (last) state->done_cv.notify_all();
  }
}

void ThreadPool::run_batch(std::size_t task_count,
                           const std::function<void(std::size_t)>& task,
                           std::size_t max_concurrency) {
  if (task_count == 0) return;
  auto& reg = obs::MetricsRegistry::global();
  if (reg.enabled()) reg.add("par.tasks_submitted",
                             static_cast<std::int64_t>(task_count));

  const std::size_t requested =
      max_concurrency == 0 ? worker_count() + 1 : max_concurrency;
  const std::size_t lanes = std::min(requested, task_count);

  // Serial fast path — also taken for nested batches launched from a
  // worker, so nesting degrades to inline execution instead of
  // deadlocking a worker on its siblings.
  if (lanes <= 1 || on_worker_thread()) {
    if (on_worker_thread() && reg.enabled()) reg.add("par.nested_serial");
    for (std::size_t i = 0; i < task_count; ++i) {
      run_worker_hook();
      task(i);
      if (reg.enabled()) reg.add("par.tasks_executed");
    }
    return;
  }

  const obs::TraceSpan span("par.batch", "par");
  const obs::ScopedTimer timer("par.batch_seconds");
  if (reg.enabled()) {
    reg.gauge("par.pool_workers", static_cast<double>(worker_count()));
    reg.gauge("par.batch_lanes", static_cast<double>(lanes));
  }

  auto state = std::make_shared<BatchState>();
  state->task = task;
  state->task_count = task_count;
  for (std::size_t lane = 1; lane < lanes; ++lane) {
    enqueue([state] { run_lane(state); });
  }
  run_lane(state);  // the calling thread is a lane too

  util::MutexLock lock(state->mu);
  while (state->completed != state->task_count) {
    state->done_cv.wait(lock, state->mu);
  }
  // Move the error out before unlocking: a late-dequeued lane job may be
  // the last owner of `state`, and ~BatchState on a worker thread must
  // not release the exception object while the caller still examines it.
  std::exception_ptr error = std::move(state->error);
  state->error = nullptr;
  lock.unlock();
  if (error) std::rethrow_exception(error);
}

}  // namespace rota::par
