#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "par/thread_pool.hpp"
#include "util/check.hpp"

/// \file parallel.hpp
/// Deterministic parallel loops over the shared ThreadPool.
///
/// Determinism contract (DESIGN.md §9): the value computed by every
/// helper here is a pure function of the problem, never of the thread
/// count or the scheduler. parallel_for writes results into
/// caller-indexed slots; parallel_reduce evaluates independent chunks and
/// combines them in ascending chunk order on the calling thread, so
/// floating-point reduction order is fixed. `threads == 1` runs inline
/// (ascending order, no pool) and produces bit-identical results to any
/// other thread count *by construction* — parallel callers must decompose
/// work by problem size (e.g. fixed-size Monte-Carlo chunks), not by
/// thread count.

namespace rota::par {

/// Run `body(i)` for every i in [0, count). `threads` follows the CLI
/// convention: 1 = inline serial (default-equivalent everywhere in the
/// repo), 0 = one lane per hardware thread, N = at most N concurrent
/// tasks. Exceptions: the one thrown by the lowest index wins.
template <typename Body>
void parallel_for(std::int64_t count, int threads, const Body& body) {
  if (count <= 0) return;
  const std::size_t lanes = resolve_threads(threads);
  if (lanes <= 1 || count == 1) {
    for (std::int64_t i = 0; i < count; ++i) body(i);
    return;
  }
  ThreadPool::shared().run_batch(
      static_cast<std::size_t>(count),
      [&body](std::size_t i) { body(static_cast<std::int64_t>(i)); }, lanes);
}

/// Evaluate `chunk(c)` for every c in [0, chunk_count) and fold the
/// results as `acc = combine(std::move(acc), std::move(result_c))` in
/// ascending chunk order, starting from `init`. The fold runs on the
/// calling thread after all chunks finish, so the reduction is
/// order-independent of scheduling — identical for every thread count.
template <typename T, typename ChunkFn, typename CombineFn>
[[nodiscard]] T parallel_reduce(std::int64_t chunk_count, int threads, T init,
                                const ChunkFn& chunk,
                                const CombineFn& combine) {
  T acc = std::move(init);
  if (chunk_count <= 0) return acc;
  const std::size_t lanes = resolve_threads(threads);
  if (lanes <= 1 || chunk_count == 1) {
    for (std::int64_t c = 0; c < chunk_count; ++c) {
      acc = combine(std::move(acc), chunk(c));
    }
    return acc;
  }
  std::vector<T> partial(static_cast<std::size_t>(chunk_count));
  ThreadPool::shared().run_batch(
      static_cast<std::size_t>(chunk_count),
      [&partial, &chunk](std::size_t c) {
        partial[c] = chunk(static_cast<std::int64_t>(c));
      },
      lanes);
  for (T& p : partial) acc = combine(std::move(acc), std::move(p));
  return acc;
}

}  // namespace rota::par
