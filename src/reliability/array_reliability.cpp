#include "reliability/array_reliability.hpp"

#include <cmath>

#include "util/check.hpp"
#include "util/math.hpp"

namespace rota::rel {

double array_reliability(const std::vector<double>& alphas, double t,
                         double beta, double eta) {
  ROTA_REQUIRE(!alphas.empty(), "activity vector must be non-empty");
  ROTA_REQUIRE(t >= 0.0, "time must be non-negative");
  ROTA_REQUIRE(beta > 0.0 && eta > 0.0, "beta and eta must be positive");
  double exponent = 0.0;
  for (double a : alphas) {
    ROTA_REQUIRE(a >= 0.0, "activity must be non-negative");
    exponent += std::pow(t * a / eta, beta);
  }
  return std::exp(-exponent);
}

double array_mttf(const std::vector<double>& alphas, double beta,
                  double eta) {
  ROTA_REQUIRE(!alphas.empty(), "activity vector must be non-empty");
  ROTA_REQUIRE(beta > 0.0 && eta > 0.0, "beta and eta must be positive");
  const double denom = util::power_sum_root(alphas, beta);
  ROTA_REQUIRE(denom > 0.0, "at least one PE must have positive activity");
  return eta * util::weibull_mean_factor(beta) / denom;
}

double lifetime_improvement(const std::vector<double>& baseline_alphas,
                            const std::vector<double>& wl_alphas,
                            double beta) {
  ROTA_REQUIRE(beta > 0.0, "beta must be positive");
  const double num = util::power_sum_root(baseline_alphas, beta);
  const double den = util::power_sum_root(wl_alphas, beta);
  ROTA_REQUIRE(num > 0.0 && den > 0.0,
               "both activity vectors must have positive activity");
  return num / den;
}

double perfect_wl_upper_bound(double utilization, double beta) {
  ROTA_REQUIRE(utilization > 0.0 && utilization <= 1.0,
               "utilization must be in (0, 1]");
  ROTA_REQUIRE(beta > 0.0, "beta must be positive");
  return std::pow(utilization, 1.0 / beta - 1.0);
}

}  // namespace rota::rel
