#include "reliability/array_reliability.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "kern/kern.hpp"
#include "util/check.hpp"
#include "util/math.hpp"

namespace rota::rel {

namespace {

/// (Σ α_i^p)^{1/p} on the vectorized kernels, normalized by the largest
/// element for overflow robustness like util::power_sum_root (whose
/// scalar form remains the reference in util's own tests). Scaling keeps
/// every ratio in [0, 1], so kern::sum_pow never saturates even for the
/// large shapes the bit-identity suite sweeps.
double power_sum_root_kern(const std::vector<double>& values, double p) {
  double vmax = 0.0;
  for (double v : values) {
    ROTA_REQUIRE(v >= 0.0, "power_sum_root needs non-negative values");
    vmax = std::max(vmax, v);
  }
  if (vmax == 0.0) return 0.0;
  std::vector<double> scaled(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) scaled[i] = values[i] / vmax;
  const double sum = kern::sum_pow(scaled.data(), p, scaled.size());
  return vmax * kern::pow1(sum, 1.0 / p);
}

}  // namespace

double array_reliability(const std::vector<double>& alphas, double t,
                         double beta, double eta) {
  ROTA_REQUIRE(!alphas.empty(), "activity vector must be non-empty");
  ROTA_REQUIRE(t >= 0.0, "time must be non-negative");
  ROTA_REQUIRE(beta > 0.0 && eta > 0.0, "beta and eta must be positive");
  for (double a : alphas) {
    ROTA_REQUIRE(a >= 0.0, "activity must be non-negative");
  }
  // Σ (t·α_i/η)^β = (t/η)^β · Σ α_i^β: factor the shared scale out so the
  // per-element work is a single vectorized power sum.
  const double exponent =
      kern::pow1(t / eta, beta) *
      kern::sum_pow(alphas.data(), beta, alphas.size());
  return kern::exp1(-exponent);
}

double array_mttf(const std::vector<double>& alphas, double beta,
                  double eta) {
  ROTA_REQUIRE(!alphas.empty(), "activity vector must be non-empty");
  ROTA_REQUIRE(beta > 0.0 && eta > 0.0, "beta and eta must be positive");
  const double denom = power_sum_root_kern(alphas, beta);
  ROTA_REQUIRE(denom > 0.0, "at least one PE must have positive activity");
  return eta * util::weibull_mean_factor(beta) / denom;
}

double lifetime_improvement(const std::vector<double>& baseline_alphas,
                            const std::vector<double>& wl_alphas,
                            double beta) {
  ROTA_REQUIRE(beta > 0.0, "beta must be positive");
  const double num = power_sum_root_kern(baseline_alphas, beta);
  const double den = power_sum_root_kern(wl_alphas, beta);
  ROTA_REQUIRE(num > 0.0 && den > 0.0,
               "both activity vectors must have positive activity");
  return num / den;
}

double perfect_wl_upper_bound(double utilization, double beta) {
  ROTA_REQUIRE(utilization > 0.0 && utilization <= 1.0,
               "utilization must be in (0, 1]");
  ROTA_REQUIRE(beta > 0.0, "beta must be positive");
  return std::pow(utilization, 1.0 / beta - 1.0);
}

}  // namespace rota::rel
