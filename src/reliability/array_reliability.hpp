#pragma once

#include <vector>

#include "reliability/weibull.hpp"

/// \file array_reliability.hpp
/// Lifetime reliability of the whole PE array — Eqs. (2)–(4) of the paper.
/// The accelerator works only while every PE works, so the array is a
/// serial chain: R_array(t) = Π R_pe(t·α_ij), where α_ij is PE (i,j)'s
/// relative active duration. Relative activity vectors are usually the
/// usage counters from wear::UsageTracker; any common scale factor cancels
/// in the improvement ratio as long as both operands processed the same
/// workload.

namespace rota::rel {

/// R_array(t) = exp(−Σ (t·α_ij/η)^β)  (Eq. 2).
/// \pre alphas non-empty, all non-negative.
[[nodiscard]] double array_reliability(const std::vector<double>& alphas, double t,
                         double beta = kJedecShape, double eta = 1.0);

/// MTTF of the array: η·Γ(1 + 1/β) / (Σ α_ij^β)^{1/β}  (Eq. 3).
/// \pre at least one α > 0.
[[nodiscard]] double array_mttf(const std::vector<double>& alphas,
                  double beta = kJedecShape, double eta = 1.0);

/// Relative lifetime improvement of a wear-leveling scheme over the
/// baseline (Eq. 4): (Σ α_B^β)^{1/β} / (Σ α_WL^β)^{1/β}.
/// Both activity vectors must cover the same total work (same workload,
/// same iteration count), or the ratio is meaningless.
[[nodiscard]] double lifetime_improvement(const std::vector<double>& baseline_alphas,
                            const std::vector<double>& wl_alphas,
                            double beta = kJedecShape);

/// Theoretical upper bound of the improvement under perfect wear-leveling
/// of a layer with the given PE utilization ratio (§V-C):
/// bound = utilization^(1/β − 1).  utilization ∈ (0, 1].
[[nodiscard]] double perfect_wl_upper_bound(double utilization, double beta = kJedecShape);

}  // namespace rota::rel
