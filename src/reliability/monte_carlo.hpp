#pragma once

#include <cstdint>
#include <vector>

#include "reliability/weibull.hpp"

/// \file monte_carlo.hpp
/// Monte-Carlo validation of the closed-form array MTTF (Eq. 3): sample
/// each PE's failure time from its Weibull marginal — PE (i,j) with
/// relative activity α fails at t = (η/α)·(−ln U)^{1/β} — and take the
/// array failure as the minimum (serial chain). The estimator converges
/// to array_mttf(); the test suite checks agreement within sampling error,
/// which independently validates the algebra behind Eqs. 2–4.
///
/// Determinism contract (DESIGN.md §9): trials are drawn in fixed-size
/// chunks, each from its own RNG substream seeded `seed ⊕ chunk_index`,
/// and per-chunk partial results are combined in ascending chunk order.
/// The decomposition depends only on `trials`, never on `threads`, so
/// every estimate is **bit-identical for any thread count** — `threads`
/// (1 = serial, 0 = hardware concurrency) only buys wall-clock time.

namespace rota::rel {

/// Trials per RNG substream chunk — part of the determinism contract:
/// changing it changes the sampled streams (not their statistics).
inline constexpr std::int64_t kMonteCarloChunkTrials = 4096;
/// Chunk size for the heavier per-trial variation sweep.
inline constexpr std::int64_t kVariationChunkTrials = 256;

/// Result of a Monte-Carlo MTTF estimation.
struct MonteCarloResult {
  double mttf = 0.0;        ///< sample mean of array failure times
  double stderr_ = 0.0;     ///< standard error of the mean
  std::int64_t trials = 0;
};

/// Estimate the array MTTF by sampling. PEs with α = 0 never fail.
/// \pre alphas non-empty with at least one positive entry; trials >= 1.
[[nodiscard]] MonteCarloResult monte_carlo_mttf(const std::vector<double>& alphas,
                                  double beta = kJedecShape, double eta = 1.0,
                                  std::int64_t trials = 10000,
                                  std::uint64_t seed = 0x6d634d54,
                                  int threads = 1);

/// With-spares / with-repair extension of the serial-chain estimator: the
/// device survives until `spares` + 1 PEs have failed — each of the first
/// `spares` failures is repaired instantly by claiming a spare, which is
/// exactly the k-out-of-n model behind the spare_array_mttf closed form —
/// so a trial's failure time is the (spares+1)-th order statistic of the
/// per-PE Weibull failure times. Rides the same chunked-substream
/// determinism contract as monte_carlo_mttf (bit-identical at any thread
/// count); the test suite cross-checks it against spare_array_mttf within
/// sampling error. \pre spares >= 0 and fewer than the active PE count.
[[nodiscard]] MonteCarloResult monte_carlo_spare_mttf(
    const std::vector<double>& alphas, std::int64_t spares,
    double beta = kJedecShape, double eta = 1.0, std::int64_t trials = 10000,
    std::uint64_t seed = 0x6d635370, int threads = 1);

/// Partial state of an interruptible MTTF estimation: the moments
/// accumulated over chunks [0, next_chunk). Because every chunk draws
/// from its own RNG substream and partials fold in ascending chunk order
/// (the determinism contract above), carrying these three numbers across
/// a process restart — hexfloat-encoded, so bit-exactly — reproduces the
/// uninterrupted estimate to the last bit. This is what `rota mc
/// --checkpoint` persists through fi::Checkpoint.
struct McPartial {
  double sum = 0.0;     ///< Σ tᵢ over completed chunks
  double sum_sq = 0.0;  ///< Σ tᵢ² over completed chunks
  std::int64_t next_chunk = 0;  ///< first chunk not yet sampled
};

/// Advance `partial` by up to `max_chunks` chunks of a `trials`-long run
/// (parallel inside the step; fold order stays ascending). Returns true
/// while chunks remain. \pre same preconditions as monte_carlo_mttf,
/// max_chunks >= 1, 0 <= partial->next_chunk.
bool monte_carlo_mttf_step(const std::vector<double>& alphas, double beta,
                           double eta, std::int64_t trials,
                           std::uint64_t seed, int threads,
                           McPartial* partial, std::int64_t max_chunks);

/// Turn a fully-advanced partial into the estimate; bit-identical to
/// monte_carlo_mttf with the same inputs regardless of how the chunks
/// were stepped. \pre partial covers every chunk of `trials`.
[[nodiscard]] MonteCarloResult monte_carlo_mttf_finalize(
    const McPartial& partial, std::int64_t trials);

/// Empirical survival probability R(t) by sampling (for plotting and for
/// cross-checking array_reliability()).
[[nodiscard]] double monte_carlo_reliability(const std::vector<double>& alphas, double t,
                               double beta = kJedecShape, double eta = 1.0,
                               std::int64_t trials = 10000,
                               std::uint64_t seed = 0x6d634d54,
                               int threads = 1);

/// Distribution summary of the Eq. 4 lifetime-improvement ratio when each
/// PE's Weibull scale η carries lognormal process variation.
struct VariationResult {
  double mean = 0.0;
  double p05 = 0.0;  ///< 5th percentile of the improvement
  double p50 = 0.0;  ///< median
  double p95 = 0.0;  ///< 95th percentile
  std::int64_t trials = 0;
};

/// Sample per-PE scales η_ij = η·exp(σ·N(0,1)) (common random numbers for
/// the baseline and wear-leveled fields, i.e. the *same die*), evaluate
/// both MTTFs in closed form per sample, and summarize the improvement
/// ratio. σ = 0 collapses to the deterministic Eq. 4 value.
/// \pre both activity vectors same non-zero size, each with a positive
/// entry; sigma >= 0; trials >= 1.
[[nodiscard]] VariationResult lifetime_improvement_under_variation(
    const std::vector<double>& baseline_alphas,
    const std::vector<double>& wl_alphas, double beta = kJedecShape,
    double sigma = 0.1, std::int64_t trials = 2000,
    std::uint64_t seed = 0x76617254, int threads = 1);

}  // namespace rota::rel
