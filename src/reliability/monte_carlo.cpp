#include "reliability/monte_carlo.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "par/parallel.hpp"
#include "util/check.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace rota::rel {

namespace {

void validate_inputs(const std::vector<double>& alphas, double beta,
                     double eta, std::int64_t trials) {
  ROTA_REQUIRE(!alphas.empty(), "activity vector must be non-empty");
  ROTA_REQUIRE(beta > 0.0 && eta > 0.0, "beta and eta must be positive");
  ROTA_REQUIRE(trials >= 1, "need at least one trial");
  bool any_positive = false;
  for (double a : alphas) {
    ROTA_REQUIRE(a >= 0.0, "activity must be non-negative");
    any_positive = any_positive || a > 0.0;
  }
  ROTA_REQUIRE(any_positive, "at least one PE must have positive activity");
}

/// Report one completed sampling batch: sample count, batch wall time and
/// the derived throughput gauge. One enabled() branch when obs is off.
void report_batch(std::string_view kind, std::int64_t trials,
                  std::chrono::steady_clock::time_point t0) {
  auto& reg = obs::MetricsRegistry::global();
  if (!reg.enabled()) return;
  const double secs =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - t0)
          .count();
  reg.add("mc.samples", trials);
  reg.observe(std::string(kind) + "_seconds", secs);
  if (secs > 0.0)
    reg.gauge(std::string(kind) + "_samples_per_sec",
              static_cast<double>(trials) / secs);
}

/// The RNG substream of one chunk. XOR keeps chunk 0 on the historical
/// single-stream seed; splitmix64's per-step avalanche decorrelates the
/// neighboring seeds (its increment constant is odd, so nearby states
/// diverge after one step).
util::SplitMix64 chunk_rng(std::uint64_t seed, std::int64_t chunk) {
  return util::SplitMix64(seed ^ static_cast<std::uint64_t>(chunk));
}

/// [begin, end) bounds of chunk c in a `trials`-long run.
struct ChunkBounds {
  std::int64_t begin = 0;
  std::int64_t end = 0;
};
ChunkBounds chunk_bounds(std::int64_t chunk, std::int64_t chunk_trials,
                         std::int64_t trials) {
  const std::int64_t begin = chunk * chunk_trials;
  return {begin, std::min(trials, begin + chunk_trials)};
}

/// Sample one array failure time: min over PEs of (η/α)·(−ln U)^{1/β}.
double sample_failure(const std::vector<double>& alphas, double beta,
                      double eta, util::SplitMix64& rng) {
  double first_failure = std::numeric_limits<double>::infinity();
  for (double a : alphas) {
    if (a <= 0.0) continue;  // inactive PEs never wear out
    // Inverse-CDF sampling: U in [0, 1) keeps 1-U in (0, 1], so the log is
    // finite.
    const double u = rng.next_double();
    const double t = (eta / a) * std::pow(-std::log(1.0 - u), 1.0 / beta);
    first_failure = std::min(first_failure, t);
  }
  return first_failure;
}

}  // namespace

MonteCarloResult monte_carlo_mttf(const std::vector<double>& alphas,
                                  double beta, double eta,
                                  std::int64_t trials, std::uint64_t seed,
                                  int threads) {
  validate_inputs(alphas, beta, eta, trials);
  const obs::TraceSpan span("monte_carlo_mttf", "rel");
  const auto t0 = std::chrono::steady_clock::now();
  const std::int64_t chunks =
      util::ceil_div(trials, kMonteCarloChunkTrials);
  // Progress only on the serial path: the reporter is single-threaded by
  // design (rate-limited stderr), and parallel runs are short anyway.
  const bool serial = par::resolve_threads(threads) <= 1;
  obs::ProgressReporter progress("monte-carlo mttf", serial ? trials : 0);

  McPartial partial;
  monte_carlo_mttf_step(alphas, beta, eta, trials, seed, threads, &partial,
                        chunks);
  if (serial) progress.tick(trials);
  report_batch("mc.mttf", trials, t0);
  return monte_carlo_mttf_finalize(partial, trials);
}

bool monte_carlo_mttf_step(const std::vector<double>& alphas, double beta,
                           double eta, std::int64_t trials,
                           std::uint64_t seed, int threads,
                           McPartial* partial, std::int64_t max_chunks) {
  validate_inputs(alphas, beta, eta, trials);
  ROTA_REQUIRE(partial != nullptr && partial->next_chunk >= 0,
               "monte_carlo_mttf_step needs a valid partial");
  ROTA_REQUIRE(max_chunks >= 1, "need at least one chunk per step");
  const std::int64_t chunks = util::ceil_div(trials, kMonteCarloChunkTrials);
  const std::int64_t first = partial->next_chunk;
  if (first >= chunks) return false;
  const std::int64_t step = std::min(max_chunks, chunks - first);

  struct Moments {
    double sum = 0.0;
    double sum_sq = 0.0;
  };
  // Seeding the fold with the carried moments preserves the exact
  // left-to-right summation order of the uninterrupted run:
  // ((…(0+m0)+m1…)+m_k — no matter where the run was cut.
  const Moments total = par::parallel_reduce<Moments>(
      step, threads, Moments{partial->sum, partial->sum_sq},
      [&](std::int64_t i) {
        const std::int64_t c = first + i;
        const ChunkBounds b = chunk_bounds(c, kMonteCarloChunkTrials, trials);
        util::SplitMix64 rng = chunk_rng(seed, c);
        Moments m;
        for (std::int64_t t = b.begin; t < b.end; ++t) {
          const double sample = sample_failure(alphas, beta, eta, rng);
          m.sum += sample;
          m.sum_sq += sample * sample;
        }
        return m;
      },
      [](Moments acc, Moments m) {
        acc.sum += m.sum;
        acc.sum_sq += m.sum_sq;
        return acc;
      });
  partial->sum = total.sum;
  partial->sum_sq = total.sum_sq;
  partial->next_chunk = first + step;
  return partial->next_chunk < chunks;
}

MonteCarloResult monte_carlo_mttf_finalize(const McPartial& partial,
                                           std::int64_t trials) {
  ROTA_REQUIRE(trials >= 1, "need at least one trial");
  ROTA_REQUIRE(partial.next_chunk >=
                   util::ceil_div(trials, kMonteCarloChunkTrials),
               "cannot finalize a partial Monte-Carlo run (chunks remain)");
  MonteCarloResult res;
  res.trials = trials;
  const double n = static_cast<double>(trials);
  res.mttf = partial.sum / n;
  const double var = std::max(0.0, partial.sum_sq / n - res.mttf * res.mttf);
  res.stderr_ = std::sqrt(var / n);
  return res;
}

VariationResult lifetime_improvement_under_variation(
    const std::vector<double>& baseline_alphas,
    const std::vector<double>& wl_alphas, double beta, double sigma,
    std::int64_t trials, std::uint64_t seed, int threads) {
  validate_inputs(baseline_alphas, beta, 1.0, trials);
  validate_inputs(wl_alphas, beta, 1.0, trials);
  ROTA_REQUIRE(baseline_alphas.size() == wl_alphas.size(),
               "activity vectors must describe the same array");
  ROTA_REQUIRE(sigma >= 0.0, "variation sigma must be non-negative");
  const obs::TraceSpan span("lifetime_improvement_under_variation", "rel");
  const auto t0 = std::chrono::steady_clock::now();

  // With per-PE scale η_i, the serial-chain MTTF is
  // Γ(1+1/β)/(Σ (α_i/η_i)^β)^{1/β}; the Γ factor cancels in the ratio.
  const std::size_t n = baseline_alphas.size();
  const std::int64_t chunks = util::ceil_div(trials, kVariationChunkTrials);
  std::vector<double> ratios = par::parallel_reduce<std::vector<double>>(
      chunks, threads, std::vector<double>{},
      [&](std::int64_t c) {
        const ChunkBounds b = chunk_bounds(c, kVariationChunkTrials, trials);
        util::SplitMix64 rng = chunk_rng(seed, c);
        // Box–Muller normal deviates for the lognormal scale samples.
        auto next_normal = [&rng]() {
          const double u1 = std::max(rng.next_double(), 1e-18);
          const double u2 = rng.next_double();
          return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
        };
        std::vector<double> chunk_ratios;
        chunk_ratios.reserve(static_cast<std::size_t>(b.end - b.begin));
        for (std::int64_t trial = b.begin; trial < b.end; ++trial) {
          double sum_base = 0.0;
          double sum_wl = 0.0;
          for (std::size_t i = 0; i < n; ++i) {
            const double inv_eta = std::exp(-sigma * next_normal());
            sum_base += std::pow(baseline_alphas[i] * inv_eta, beta);
            sum_wl += std::pow(wl_alphas[i] * inv_eta, beta);
          }
          ROTA_ENSURE(sum_base > 0.0 && sum_wl > 0.0,
                      "degenerate variation sample");
          chunk_ratios.push_back(std::pow(sum_base / sum_wl, 1.0 / beta));
        }
        return chunk_ratios;
      },
      [](std::vector<double> acc, std::vector<double> part) {
        acc.insert(acc.end(), part.begin(), part.end());
        return acc;
      });
  report_batch("mc.variation", trials, t0);
  std::sort(ratios.begin(), ratios.end());

  VariationResult res;
  res.trials = trials;
  double sum = 0.0;
  for (double r : ratios) sum += r;
  res.mean = sum / static_cast<double>(trials);
  auto quantile = [&ratios](double q) {
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(ratios.size() - 1));
    return ratios[idx];
  };
  res.p05 = quantile(0.05);
  res.p50 = quantile(0.50);
  res.p95 = quantile(0.95);
  return res;
}

double monte_carlo_reliability(const std::vector<double>& alphas, double t,
                               double beta, double eta, std::int64_t trials,
                               std::uint64_t seed, int threads) {
  validate_inputs(alphas, beta, eta, trials);
  ROTA_REQUIRE(t >= 0.0, "time must be non-negative");
  const obs::TraceSpan span("monte_carlo_reliability", "rel");
  const auto t0 = std::chrono::steady_clock::now();
  const std::int64_t chunks =
      util::ceil_div(trials, kMonteCarloChunkTrials);
  const std::int64_t alive = par::parallel_reduce<std::int64_t>(
      chunks, threads, std::int64_t{0},
      [&](std::int64_t c) {
        const ChunkBounds b = chunk_bounds(c, kMonteCarloChunkTrials, trials);
        util::SplitMix64 rng = chunk_rng(seed, c);
        std::int64_t chunk_alive = 0;
        for (std::int64_t i = b.begin; i < b.end; ++i) {
          if (sample_failure(alphas, beta, eta, rng) > t) ++chunk_alive;
        }
        return chunk_alive;
      },
      [](std::int64_t acc, std::int64_t part) { return acc + part; });
  report_batch("mc.reliability", trials, t0);
  return static_cast<double>(alive) / static_cast<double>(trials);
}

}  // namespace rota::rel
