#include "reliability/monte_carlo.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <utility>

#include "kern/kern.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "par/parallel.hpp"
#include "util/check.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace rota::rel {

namespace {

void validate_inputs(const std::vector<double>& alphas, double beta,
                     double eta, std::int64_t trials) {
  ROTA_REQUIRE(!alphas.empty(), "activity vector must be non-empty");
  ROTA_REQUIRE(beta > 0.0 && eta > 0.0, "beta and eta must be positive");
  ROTA_REQUIRE(trials >= 1, "need at least one trial");
  bool any_positive = false;
  for (double a : alphas) {
    ROTA_REQUIRE(a >= 0.0, "activity must be non-negative");
    any_positive = any_positive || a > 0.0;
  }
  ROTA_REQUIRE(any_positive, "at least one PE must have positive activity");
}

/// Report one completed sampling batch: sample count, batch wall time and
/// the derived throughput gauge. One enabled() branch when obs is off.
void report_batch(std::string_view kind, std::int64_t trials,
                  std::chrono::steady_clock::time_point t0) {
  auto& reg = obs::MetricsRegistry::global();
  if (!reg.enabled()) return;
  const double secs =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - t0)
          .count();
  reg.add("mc.samples", trials);
  reg.observe(std::string(kind) + "_seconds", secs);
  if (secs > 0.0)
    reg.gauge(std::string(kind) + "_samples_per_sec",
              static_cast<double>(trials) / secs);
}

/// The RNG substream of one chunk. XOR keeps chunk 0 on the historical
/// single-stream seed; splitmix64's per-step avalanche decorrelates the
/// neighboring seeds (its increment constant is odd, so nearby states
/// diverge after one step).
util::SplitMix64 chunk_rng(std::uint64_t seed, std::int64_t chunk) {
  return util::SplitMix64(seed ^ static_cast<std::uint64_t>(chunk));
}

/// [begin, end) bounds of chunk c in a `trials`-long run.
struct ChunkBounds {
  std::int64_t begin = 0;
  std::int64_t end = 0;
};
ChunkBounds chunk_bounds(std::int64_t chunk, std::int64_t chunk_trials,
                         std::int64_t trials) {
  const std::int64_t begin = chunk * chunk_trials;
  return {begin, std::min(trials, begin + chunk_trials)};
}

/// Per-call state of the vectorized failure sampler. The array failure
/// time min_i (η/α_i)·(−ln U_i)^{1/β} is computed in the β-power domain:
/// min_i (η/α_i)^β·(−log(1−U_i)), then one pow1(·, 1/β) per trial —
/// x ↦ x^{1/β} is monotone, so the min commutes with it. That leaves a
/// single vectorized log per PE draw (kern::weibull_min). Inactive PEs
/// (α == 0) never wear out; they are dropped up front, which keeps the
/// RNG stream identical to the historical sampler (it skipped them
/// without drawing).
struct FailureSampler {
  std::vector<double> c_pow;  ///< (η/α_i)^β for active PEs, input order.
  double p = 1.0;             ///< 1/β.
};

FailureSampler make_sampler(const std::vector<double>& alphas, double beta,
                            double eta) {
  FailureSampler s;
  s.p = 1.0 / beta;
  s.c_pow.reserve(alphas.size());
  for (double a : alphas) {
    if (a <= 0.0) continue;
    // Clamp an overflowed power to the kernel's finite domain: the clamped
    // PE still loses every min against realistic failure times, and a
    // u == 0 draw keeps giving 0·DBL_MAX == 0 instead of 0·inf == NaN.
    const double c = kern::pow1(eta / a, beta);
    s.c_pow.push_back(std::min(c, std::numeric_limits<double>::max()));
  }
  return s;
}

/// Sample one array failure time. `u` is caller-owned scratch of size
/// c_pow.size() so per-chunk loops reuse one allocation. U in [0, 1)
/// keeps 1−U in (0, 1]; a U == 0 draw yields the zero failure time the
/// direct sampler produced.
double sample_failure(const FailureSampler& s, std::vector<double>& u,
                      util::SplitMix64& rng) {
  const std::size_t k = s.c_pow.size();
  for (std::size_t i = 0; i < k; ++i) u[i] = rng.next_double();
  return kern::pow1(kern::weibull_min(u.data(), s.c_pow.data(), k), s.p);
}

/// One with-spares trial: per-PE failure times in the β-power domain
/// (t_i^β = (η/α_i)^β·(−ln(1−U_i)); the power is monotone, so order
/// statistics commute with it), then the (spares+1)-th smallest is the
/// device failure. `t_pow` is caller-owned scratch of size c_pow.size().
double sample_spare_failure(const FailureSampler& s,
                            std::vector<double>& t_pow, std::int64_t spares,
                            util::SplitMix64& rng) {
  const std::size_t k = s.c_pow.size();
  for (std::size_t i = 0; i < k; ++i) {
    t_pow[i] = s.c_pow[i] * -std::log1p(-rng.next_double());
  }
  const auto nth = t_pow.begin() + static_cast<std::ptrdiff_t>(spares);
  // nth_element's *value* at the nth slot is the sorted nth value — unique
  // even under ties — so the sample is implementation-independent.
  std::nth_element(t_pow.begin(), nth, t_pow.end());
  return kern::pow1(*nth, s.p);
}

}  // namespace

MonteCarloResult monte_carlo_spare_mttf(const std::vector<double>& alphas,
                                        std::int64_t spares, double beta,
                                        double eta, std::int64_t trials,
                                        std::uint64_t seed, int threads) {
  validate_inputs(alphas, beta, eta, trials);
  const obs::TraceSpan span("monte_carlo_spare_mttf", "rel");
  const auto t0 = std::chrono::steady_clock::now();
  const FailureSampler sampler = make_sampler(alphas, beta, eta);
  ROTA_REQUIRE(spares >= 0 &&
                   spares < static_cast<std::int64_t>(sampler.c_pow.size()),
               "spares must be fewer than the active PE count");

  struct Moments {
    double sum = 0.0;
    double sum_sq = 0.0;
  };
  const std::int64_t chunks = util::ceil_div(trials, kMonteCarloChunkTrials);
  const Moments total = par::parallel_reduce<Moments>(
      chunks, threads, Moments{},
      [&](std::int64_t c) {
        const ChunkBounds b = chunk_bounds(c, kMonteCarloChunkTrials, trials);
        util::SplitMix64 rng = chunk_rng(seed, c);
        std::vector<double> t_pow(sampler.c_pow.size());
        Moments m;
        for (std::int64_t t = b.begin; t < b.end; ++t) {
          const double sample =
              sample_spare_failure(sampler, t_pow, spares, rng);
          m.sum += sample;
          m.sum_sq += sample * sample;
        }
        return m;
      },
      [](Moments acc, Moments m) {
        acc.sum += m.sum;
        acc.sum_sq += m.sum_sq;
        return acc;
      });
  report_batch("mc.spare_mttf", trials, t0);

  MonteCarloResult res;
  res.trials = trials;
  const double n = static_cast<double>(trials);
  res.mttf = total.sum / n;
  const double var = std::max(0.0, total.sum_sq / n - res.mttf * res.mttf);
  res.stderr_ = std::sqrt(var / n);
  return res;
}

MonteCarloResult monte_carlo_mttf(const std::vector<double>& alphas,
                                  double beta, double eta,
                                  std::int64_t trials, std::uint64_t seed,
                                  int threads) {
  validate_inputs(alphas, beta, eta, trials);
  const obs::TraceSpan span("monte_carlo_mttf", "rel");
  const auto t0 = std::chrono::steady_clock::now();
  const std::int64_t chunks =
      util::ceil_div(trials, kMonteCarloChunkTrials);
  // Progress only on the serial path: the reporter is single-threaded by
  // design (rate-limited stderr), and parallel runs are short anyway.
  const bool serial = par::resolve_threads(threads) <= 1;
  obs::ProgressReporter progress("monte-carlo mttf", serial ? trials : 0);

  McPartial partial;
  monte_carlo_mttf_step(alphas, beta, eta, trials, seed, threads, &partial,
                        chunks);
  if (serial) progress.tick(trials);
  report_batch("mc.mttf", trials, t0);
  return monte_carlo_mttf_finalize(partial, trials);
}

bool monte_carlo_mttf_step(const std::vector<double>& alphas, double beta,
                           double eta, std::int64_t trials,
                           std::uint64_t seed, int threads,
                           McPartial* partial, std::int64_t max_chunks) {
  validate_inputs(alphas, beta, eta, trials);
  ROTA_REQUIRE(partial != nullptr && partial->next_chunk >= 0,
               "monte_carlo_mttf_step needs a valid partial");
  ROTA_REQUIRE(max_chunks >= 1, "need at least one chunk per step");
  const std::int64_t chunks = util::ceil_div(trials, kMonteCarloChunkTrials);
  const std::int64_t first = partial->next_chunk;
  if (first >= chunks) return false;
  const std::int64_t step = std::min(max_chunks, chunks - first);
  const FailureSampler sampler = make_sampler(alphas, beta, eta);

  struct Moments {
    double sum = 0.0;
    double sum_sq = 0.0;
  };
  // Seeding the fold with the carried moments preserves the exact
  // left-to-right summation order of the uninterrupted run:
  // ((…(0+m0)+m1…)+m_k — no matter where the run was cut.
  const Moments total = par::parallel_reduce<Moments>(
      step, threads, Moments{partial->sum, partial->sum_sq},
      [&](std::int64_t i) {
        const std::int64_t c = first + i;
        const ChunkBounds b = chunk_bounds(c, kMonteCarloChunkTrials, trials);
        util::SplitMix64 rng = chunk_rng(seed, c);
        std::vector<double> u(sampler.c_pow.size());
        Moments m;
        for (std::int64_t t = b.begin; t < b.end; ++t) {
          const double sample = sample_failure(sampler, u, rng);
          m.sum += sample;
          m.sum_sq += sample * sample;
        }
        return m;
      },
      [](Moments acc, Moments m) {
        acc.sum += m.sum;
        acc.sum_sq += m.sum_sq;
        return acc;
      });
  partial->sum = total.sum;
  partial->sum_sq = total.sum_sq;
  partial->next_chunk = first + step;
  return partial->next_chunk < chunks;
}

MonteCarloResult monte_carlo_mttf_finalize(const McPartial& partial,
                                           std::int64_t trials) {
  ROTA_REQUIRE(trials >= 1, "need at least one trial");
  ROTA_REQUIRE(partial.next_chunk >=
                   util::ceil_div(trials, kMonteCarloChunkTrials),
               "cannot finalize a partial Monte-Carlo run (chunks remain)");
  MonteCarloResult res;
  res.trials = trials;
  const double n = static_cast<double>(trials);
  res.mttf = partial.sum / n;
  const double var = std::max(0.0, partial.sum_sq / n - res.mttf * res.mttf);
  res.stderr_ = std::sqrt(var / n);
  return res;
}

VariationResult lifetime_improvement_under_variation(
    const std::vector<double>& baseline_alphas,
    const std::vector<double>& wl_alphas, double beta, double sigma,
    std::int64_t trials, std::uint64_t seed, int threads) {
  validate_inputs(baseline_alphas, beta, 1.0, trials);
  validate_inputs(wl_alphas, beta, 1.0, trials);
  ROTA_REQUIRE(baseline_alphas.size() == wl_alphas.size(),
               "activity vectors must describe the same array");
  ROTA_REQUIRE(sigma >= 0.0, "variation sigma must be non-negative");
  const obs::TraceSpan span("lifetime_improvement_under_variation", "rel");
  const auto t0 = std::chrono::steady_clock::now();

  // With per-PE scale η_i, the serial-chain MTTF is
  // Γ(1+1/β)/(Σ (α_i/η_i)^β)^{1/β}; the Γ factor cancels in the ratio.
  // Each term (α_i/η_i)^β = exp(β·(log α_i + w_i)) with w_i = −σ·N_i, so
  // both sums are one kern::sum_exp_affine over precomputed log
  // activities and the trial's shared perturbation vector. A zero
  // activity logs to −inf and contributes exactly 0, as before.
  const std::size_t n = baseline_alphas.size();
  std::vector<double> log_base(n);
  std::vector<double> log_wl(n);
  for (std::size_t i = 0; i < n; ++i) {
    log_base[i] = kern::log1(baseline_alphas[i]);
    log_wl[i] = kern::log1(wl_alphas[i]);
  }
  const std::int64_t chunks = util::ceil_div(trials, kVariationChunkTrials);
  std::vector<double> ratios = par::parallel_reduce<std::vector<double>>(
      chunks, threads, std::vector<double>{},
      [&](std::int64_t c) {
        const ChunkBounds b = chunk_bounds(c, kVariationChunkTrials, trials);
        util::SplitMix64 rng = chunk_rng(seed, c);
        // Box–Muller normal deviates for the lognormal scale samples.
        auto next_normal = [&rng]() {
          const double u1 = std::max(rng.next_double(), 1e-18);
          const double u2 = rng.next_double();
          return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
        };
        std::vector<double> w(n);
        std::vector<double> chunk_ratios;
        chunk_ratios.reserve(static_cast<std::size_t>(b.end - b.begin));
        for (std::int64_t trial = b.begin; trial < b.end; ++trial) {
          for (std::size_t i = 0; i < n; ++i) w[i] = -sigma * next_normal();
          const double sum_base =
              kern::sum_exp_affine(log_base.data(), w.data(), beta, n);
          const double sum_wl =
              kern::sum_exp_affine(log_wl.data(), w.data(), beta, n);
          ROTA_ENSURE(sum_base > 0.0 && sum_wl > 0.0,
                      "degenerate variation sample");
          chunk_ratios.push_back(
              kern::pow1(sum_base / sum_wl, 1.0 / beta));
        }
        return chunk_ratios;
      },
      [](std::vector<double> acc, std::vector<double> part) {
        acc.insert(acc.end(), part.begin(), part.end());
        return acc;
      });
  report_batch("mc.variation", trials, t0);
  std::sort(ratios.begin(), ratios.end());

  VariationResult res;
  res.trials = trials;
  double sum = 0.0;
  for (double r : ratios) sum += r;
  res.mean = sum / static_cast<double>(trials);
  auto quantile = [&ratios](double q) {
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(ratios.size() - 1));
    return ratios[idx];
  };
  res.p05 = quantile(0.05);
  res.p50 = quantile(0.50);
  res.p95 = quantile(0.95);
  return res;
}

double monte_carlo_reliability(const std::vector<double>& alphas, double t,
                               double beta, double eta, std::int64_t trials,
                               std::uint64_t seed, int threads) {
  validate_inputs(alphas, beta, eta, trials);
  ROTA_REQUIRE(t >= 0.0, "time must be non-negative");
  const obs::TraceSpan span("monte_carlo_reliability", "rel");
  const auto t0 = std::chrono::steady_clock::now();
  const std::int64_t chunks =
      util::ceil_div(trials, kMonteCarloChunkTrials);
  const FailureSampler sampler = make_sampler(alphas, beta, eta);
  const std::int64_t alive = par::parallel_reduce<std::int64_t>(
      chunks, threads, std::int64_t{0},
      [&](std::int64_t c) {
        const ChunkBounds b = chunk_bounds(c, kMonteCarloChunkTrials, trials);
        util::SplitMix64 rng = chunk_rng(seed, c);
        std::vector<double> u(sampler.c_pow.size());
        std::int64_t chunk_alive = 0;
        for (std::int64_t i = b.begin; i < b.end; ++i) {
          if (sample_failure(sampler, u, rng) > t) ++chunk_alive;
        }
        return chunk_alive;
      },
      [](std::int64_t acc, std::int64_t part) { return acc + part; });
  report_batch("mc.reliability", trials, t0);
  return static_cast<double>(alive) / static_cast<double>(trials);
}

}  // namespace rota::rel
