#include "reliability/spares.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace rota::rel {

namespace {

void validate_inputs(const std::vector<double>& alphas, std::int64_t spares,
                     double beta, double eta) {
  ROTA_REQUIRE(!alphas.empty(), "activity vector must be non-empty");
  ROTA_REQUIRE(spares >= 0, "spare count must be non-negative");
  ROTA_REQUIRE(beta > 0.0 && eta > 0.0, "beta and eta must be positive");
  for (double a : alphas)
    ROTA_REQUIRE(a >= 0.0, "activity must be non-negative");
}

}  // namespace

double spare_array_reliability(const std::vector<double>& alphas, double t,
                               std::int64_t spares, double beta, double eta) {
  validate_inputs(alphas, spares, beta, eta);
  ROTA_REQUIRE(t >= 0.0, "time must be non-negative");

  // Poisson-binomial recurrence truncated at `spares` failures: dp[k] is
  // the probability of exactly k failures among the PEs processed so far.
  const auto cap = static_cast<std::size_t>(spares) + 1;
  std::vector<double> dp(cap, 0.0);
  dp[0] = 1.0;
  for (double a : alphas) {
    if (a <= 0.0) continue;  // inactive PEs cannot fail
    const double p_fail = 1.0 - std::exp(-std::pow(t * a / eta, beta));
    for (std::size_t k = cap; k-- > 0;) {
      const double survive = dp[k] * (1.0 - p_fail);
      const double fail_in = (k > 0) ? dp[k - 1] * p_fail : 0.0;
      dp[k] = survive + fail_in;
    }
  }
  double r = 0.0;
  for (double p : dp) r += p;
  return std::min(1.0, r);
}

double spare_array_mttf(const std::vector<double>& alphas,
                        std::int64_t spares, double beta, double eta) {
  validate_inputs(alphas, spares, beta, eta);
  double a_max = 0.0;
  for (double a : alphas) a_max = std::max(a_max, a);
  ROTA_REQUIRE(a_max > 0.0, "at least one PE must have positive activity");

  // Find a horizon where the array is (numerically) certainly dead, then
  // integrate R_s(t) with the trapezoid rule.
  double horizon = eta / a_max;
  while (spare_array_reliability(alphas, horizon, spares, beta, eta) > 1e-9) {
    horizon *= 2.0;
    ROTA_ENSURE(horizon < 1e9 * eta / a_max,
                "spare-array reliability does not decay");
  }
  constexpr int kSteps = 2048;
  const double dt = horizon / kSteps;
  double integral = 0.0;
  double prev = 1.0;  // R(0)
  for (int i = 1; i <= kSteps; ++i) {
    const double t = dt * i;
    const double cur = spare_array_reliability(alphas, t, spares, beta, eta);
    integral += 0.5 * (prev + cur) * dt;
    prev = cur;
  }
  return integral;
}

SpareRemapper::SpareRemapper(std::int64_t width, std::int64_t height,
                             std::int64_t spares)
    : width_(width), height_(height) {
  ROTA_REQUIRE(width >= 1 && height >= 1, "array dimensions must be positive");
  ROTA_REQUIRE(spares >= 0, "spare count must be non-negative");
  const auto cells = static_cast<std::size_t>(width) *
                     static_cast<std::size_t>(height);
  primary_dead_.assign(cells, false);
  primary_spare_.assign(cells, -1);
  spare_state_.assign(static_cast<std::size_t>(spares), SpareState::kFree);
  spare_primary_.assign(static_cast<std::size_t>(spares), -1);
  stats_.spares_free = spares;
}

std::size_t SpareRemapper::index_of(std::int64_t u, std::int64_t v) const {
  ROTA_REQUIRE(u >= 0 && u < width_ && v >= 0 && v < height_,
               "PE coordinate outside the array");
  return static_cast<std::size_t>(v) * static_cast<std::size_t>(width_) +
         static_cast<std::size_t>(u);
}

std::int64_t SpareRemapper::claim_free_spare() {
  for (std::size_t s = 0; s < spare_state_.size(); ++s) {
    if (spare_state_[s] == SpareState::kFree) {
      spare_state_[s] = SpareState::kInService;
      --stats_.spares_free;
      ++stats_.spares_in_service;
      return static_cast<std::int64_t>(s);
    }
  }
  return -1;
}

SpareRemapper::Outcome SpareRemapper::fault_primary(std::int64_t u,
                                                    std::int64_t v) {
  ROTA_REQUIRE(u >= 0 && u < width_ && v >= 0 && v < height_,
               "fault_primary coordinate outside the array");
  const std::size_t idx = index_of(u, v);
  if (primary_dead_[idx]) {
    const std::int64_t spare = primary_spare_[idx];
    return {spare >= 0, spare};
  }
  primary_dead_[idx] = true;
  ++stats_.primary_faults;
  const std::int64_t spare = claim_free_spare();
  primary_spare_[idx] = spare;
  if (spare >= 0) {
    spare_primary_[static_cast<std::size_t>(spare)] =
        static_cast<std::int64_t>(idx);
    ++stats_.remaps;
  } else {
    ++stats_.unmapped;
  }
  check_invariants();
  return {spare >= 0, spare};
}

SpareRemapper::Outcome SpareRemapper::fault_spare(std::int64_t spare) {
  ROTA_REQUIRE(spare >= 0 && spare < spare_count(),
               "spare id outside the pool");
  const auto s = static_cast<std::size_t>(spare);
  if (spare_state_[s] == SpareState::kDead) return {false, -1};
  ++stats_.spare_faults;
  if (spare_state_[s] == SpareState::kFree) {
    spare_state_[s] = SpareState::kDead;
    --stats_.spares_free;
    ++stats_.spares_dead;
    check_invariants();
    return {false, -1};
  }
  // In service: migrate its primary to a fresh spare when one is free.
  const std::int64_t primary = spare_primary_[s];
  spare_state_[s] = SpareState::kDead;
  spare_primary_[s] = -1;
  --stats_.spares_in_service;
  ++stats_.spares_dead;
  const std::int64_t next = claim_free_spare();
  primary_spare_[static_cast<std::size_t>(primary)] = next;
  if (next >= 0) {
    spare_primary_[static_cast<std::size_t>(next)] = primary;
    ++stats_.remaps;
    ++stats_.migrations;
  } else {
    ++stats_.unmapped;
  }
  check_invariants();
  return {next >= 0, next};
}

void SpareRemapper::restore_primary(std::int64_t u, std::int64_t v) {
  ROTA_REQUIRE(u >= 0 && u < width_ && v >= 0 && v < height_,
               "restore_primary coordinate outside the array");
  const std::size_t idx = index_of(u, v);
  if (!primary_dead_[idx]) return;
  primary_dead_[idx] = false;
  ++stats_.restores;
  const std::int64_t spare = primary_spare_[idx];
  primary_spare_[idx] = -1;
  if (spare >= 0) {
    const auto s = static_cast<std::size_t>(spare);
    spare_state_[s] = SpareState::kFree;
    spare_primary_[s] = -1;
    --stats_.spares_in_service;
    ++stats_.spares_free;
  }
  check_invariants();
}

bool SpareRemapper::is_dead(std::int64_t u, std::int64_t v) const {
  return primary_dead_[index_of(u, v)];
}

std::int64_t SpareRemapper::spare_of(std::int64_t u, std::int64_t v) const {
  return primary_spare_[index_of(u, v)];
}

std::int64_t SpareRemapper::spares_free() const { return stats_.spares_free; }

void SpareRemapper::check_invariants() const {
  ROTA_ENSURE(stats_.spares_in_service + stats_.spares_free +
                      stats_.spares_dead ==
                  spare_count(),
              "spare pool accounting out of balance");
  ROTA_ENSURE(stats_.spares_in_service >= 0 && stats_.spares_free >= 0 &&
                  stats_.spares_dead >= 0,
              "spare pool occupancy went negative");
}

}  // namespace rota::rel
