#include "reliability/spares.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace rota::rel {

namespace {

void validate_inputs(const std::vector<double>& alphas, std::int64_t spares,
                     double beta, double eta) {
  ROTA_REQUIRE(!alphas.empty(), "activity vector must be non-empty");
  ROTA_REQUIRE(spares >= 0, "spare count must be non-negative");
  ROTA_REQUIRE(beta > 0.0 && eta > 0.0, "beta and eta must be positive");
  for (double a : alphas)
    ROTA_REQUIRE(a >= 0.0, "activity must be non-negative");
}

}  // namespace

double spare_array_reliability(const std::vector<double>& alphas, double t,
                               std::int64_t spares, double beta, double eta) {
  validate_inputs(alphas, spares, beta, eta);
  ROTA_REQUIRE(t >= 0.0, "time must be non-negative");

  // Poisson-binomial recurrence truncated at `spares` failures: dp[k] is
  // the probability of exactly k failures among the PEs processed so far.
  const auto cap = static_cast<std::size_t>(spares) + 1;
  std::vector<double> dp(cap, 0.0);
  dp[0] = 1.0;
  for (double a : alphas) {
    if (a <= 0.0) continue;  // inactive PEs cannot fail
    const double p_fail = 1.0 - std::exp(-std::pow(t * a / eta, beta));
    for (std::size_t k = cap; k-- > 0;) {
      const double survive = dp[k] * (1.0 - p_fail);
      const double fail_in = (k > 0) ? dp[k - 1] * p_fail : 0.0;
      dp[k] = survive + fail_in;
    }
  }
  double r = 0.0;
  for (double p : dp) r += p;
  return std::min(1.0, r);
}

double spare_array_mttf(const std::vector<double>& alphas,
                        std::int64_t spares, double beta, double eta) {
  validate_inputs(alphas, spares, beta, eta);
  double a_max = 0.0;
  for (double a : alphas) a_max = std::max(a_max, a);
  ROTA_REQUIRE(a_max > 0.0, "at least one PE must have positive activity");

  // Find a horizon where the array is (numerically) certainly dead, then
  // integrate R_s(t) with the trapezoid rule.
  double horizon = eta / a_max;
  while (spare_array_reliability(alphas, horizon, spares, beta, eta) > 1e-9) {
    horizon *= 2.0;
    ROTA_ENSURE(horizon < 1e9 * eta / a_max,
                "spare-array reliability does not decay");
  }
  constexpr int kSteps = 2048;
  const double dt = horizon / kSteps;
  double integral = 0.0;
  double prev = 1.0;  // R(0)
  for (int i = 1; i <= kSteps; ++i) {
    const double t = dt * i;
    const double cur = spare_array_reliability(alphas, t, spares, beta, eta);
    integral += 0.5 * (prev + cur) * dt;
    prev = cur;
  }
  return integral;
}

}  // namespace rota::rel
