#include "reliability/weibull.hpp"

#include <cmath>

#include "util/check.hpp"
#include "util/math.hpp"

namespace rota::rel {

Weibull::Weibull(double beta, double eta) : beta_(beta), eta_(eta) {
  ROTA_REQUIRE(beta > 0.0, "Weibull shape must be positive");
  ROTA_REQUIRE(eta > 0.0, "Weibull scale must be positive");
}

double Weibull::reliability(double t) const {
  ROTA_REQUIRE(t >= 0.0, "time must be non-negative");
  return std::exp(-std::pow(t / eta_, beta_));
}

double Weibull::cdf(double t) const { return 1.0 - reliability(t); }

double Weibull::pdf(double t) const {
  ROTA_REQUIRE(t >= 0.0, "time must be non-negative");
  if (t == 0.0) return (beta_ == 1.0) ? 1.0 / eta_ : 0.0;
  const double z = t / eta_;
  return (beta_ / eta_) * std::pow(z, beta_ - 1.0) *
         std::exp(-std::pow(z, beta_));
}

double Weibull::mean() const {
  return eta_ * util::weibull_mean_factor(beta_);
}

}  // namespace rota::rel
