#pragma once

/// \file weibull.hpp
/// Weibull failure model of a single PE — Eq. (1) of the paper. The shape
/// parameter β = 3.4 follows the JEDEC JEP122H wear-out characterization
/// the paper cites; the scale parameter η cancels out of every relative
/// comparison and defaults to 1.

namespace rota::rel {

/// JEDEC JEP122H wear-out shape parameter used throughout the paper.
inline constexpr double kJedecShape = 3.4;

/// Two-parameter Weibull distribution.
class Weibull {
 public:
  /// \pre beta > 0, eta > 0.
  explicit Weibull(double beta = kJedecShape, double eta = 1.0);

  [[nodiscard]] double beta() const { return beta_; }
  [[nodiscard]] double eta() const { return eta_; }

  /// Reliability function R(t) = exp(−(t/η)^β) for t >= 0.
  [[nodiscard]] double reliability(double t) const;

  /// Cumulative failure probability F(t) = 1 − R(t).
  [[nodiscard]] double cdf(double t) const;

  /// Probability density f(t).
  [[nodiscard]] double pdf(double t) const;

  /// Mean time to failure: η·Γ(1 + 1/β).
  [[nodiscard]] double mean() const;

 private:
  double beta_;
  double eta_;
};

}  // namespace rota::rel
