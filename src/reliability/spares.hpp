#pragma once

#include <cstdint>
#include <vector>

#include "reliability/weibull.hpp"

/// \file spares.hpp
/// Extension beyond the paper: lifetime of a PE array with spare capacity.
/// The paper models the accelerator as a strict serial chain ("operable
/// only when all PEs survive", Eq. 2). Real designs often tolerate a few
/// failed PEs by remapping work onto spares. This module computes the
/// reliability of a k-out-of-n system with *heterogeneous* per-PE stress:
///
///   R_s(t) = P(at most s PEs have failed by t)
///
/// evaluated exactly with the Poisson-binomial recurrence over the per-PE
/// failure probabilities F_ij(t) = 1 − exp(−(t·α_ij/η)^β), and the MTTF
/// via numeric integration of R_s(t). The abl_spares bench uses it to show
/// how wear-leveling and sparing compose.

namespace rota::rel {

/// Reliability at time t of an array that tolerates up to `spares` failed
/// PEs. spares = 0 degenerates to array_reliability().
/// \pre alphas non-empty, all non-negative; spares >= 0.
[[nodiscard]] double spare_array_reliability(const std::vector<double>& alphas, double t,
                               std::int64_t spares,
                               double beta = kJedecShape, double eta = 1.0);

/// MTTF of the spare-tolerant array: ∫ R_s(t) dt, integrated numerically
/// (adaptive horizon, trapezoid rule; relative accuracy ~1e-4).
/// \pre at least one α > 0.
[[nodiscard]] double spare_array_mttf(const std::vector<double>& alphas,
                        std::int64_t spares, double beta = kJedecShape,
                        double eta = 1.0);

}  // namespace rota::rel
