#pragma once

#include <cstdint>
#include <vector>

#include "reliability/weibull.hpp"

/// \file spares.hpp
/// Extension beyond the paper: lifetime of a PE array with spare capacity.
/// The paper models the accelerator as a strict serial chain ("operable
/// only when all PEs survive", Eq. 2). Real designs often tolerate a few
/// failed PEs by remapping work onto spares. This module computes the
/// reliability of a k-out-of-n system with *heterogeneous* per-PE stress:
///
///   R_s(t) = P(at most s PEs have failed by t)
///
/// evaluated exactly with the Poisson-binomial recurrence over the per-PE
/// failure probabilities F_ij(t) = 1 − exp(−(t·α_ij/η)^β), and the MTTF
/// via numeric integration of R_s(t). The abl_spares bench uses it to show
/// how wear-leveling and sparing compose.

namespace rota::rel {

/// Reliability at time t of an array that tolerates up to `spares` failed
/// PEs. spares = 0 degenerates to array_reliability().
/// \pre alphas non-empty, all non-negative; spares >= 0.
[[nodiscard]] double spare_array_reliability(const std::vector<double>& alphas, double t,
                               std::int64_t spares,
                               double beta = kJedecShape, double eta = 1.0);

/// MTTF of the spare-tolerant array: ∫ R_s(t) dt, integrated numerically
/// (adaptive horizon, trapezoid rule; relative accuracy ~1e-4).
/// \pre at least one α > 0.
[[nodiscard]] double spare_array_mttf(const std::vector<double>& alphas,
                        std::int64_t spares, double beta = kJedecShape,
                        double eta = 1.0);

/// Tracks which PEs of a w×h array have failed and which spare PE carries
/// each failed PE's work — the operational counterpart of the analytic
/// k-out-of-n model above, used by the fi fault-injection subsystem to
/// answer "what happens when PE (u,v) dies mid-inference". Spares are a
/// pool of `spares` extra PEs (ids 0..spares-1); spares can themselves
/// fail (their primary migrates to a fresh spare when one is free), and
/// transiently-failed primaries can be restored (their spare returns to
/// the pool). The class is pure bookkeeping: usage/wear accounting stays
/// in wear::UsageTracker, and fi::FaultSession attributes redirected work
/// using the mapping recorded here.
class SpareRemapper {
 public:
  /// \pre width >= 1, height >= 1, spares >= 0
  SpareRemapper(std::int64_t width, std::int64_t height, std::int64_t spares);

  /// Result of one fault event.
  struct Outcome {
    bool remapped = false;   ///< work has a live spare to land on
    std::int64_t spare = -1; ///< the spare in service for this PE, or -1
  };

  /// Monotonic event counters plus the current pool occupancy; the class
  /// invariant (checked on every mutation) is
  ///   spares_in_service + spares_free + spares_dead == spares.
  struct Stats {
    std::int64_t primary_faults = 0;  ///< distinct primary PEs failed
    std::int64_t spare_faults = 0;    ///< spare PEs failed
    std::int64_t remaps = 0;          ///< successful spare assignments
    std::int64_t migrations = 0;      ///< remaps caused by a spare dying
    std::int64_t unmapped = 0;        ///< fault events left without a spare
    std::int64_t restores = 0;        ///< transient primaries recovered
    std::int64_t spares_in_service = 0;
    std::int64_t spares_free = 0;
    std::int64_t spares_dead = 0;
  };

  /// Primary PE (u,v) fails permanently (or transiently — see
  /// restore_primary). Assigns the lowest-id free spare; with the pool
  /// exhausted the PE is left unmapped (its work is lost, the array is
  /// degraded). Faulting an already-dead primary is a no-op returning the
  /// current mapping. \pre 0 <= u < width, 0 <= v < height
  Outcome fault_primary(std::int64_t u, std::int64_t v);

  /// Spare PE `spare` fails. If it was in service, its primary migrates
  /// to the next free spare (counted as a migration); with none free the
  /// primary becomes unmapped. Faulting a dead spare is a no-op.
  /// \pre 0 <= spare < spares
  Outcome fault_spare(std::int64_t spare);

  /// Transient recovery of primary (u,v): the PE is alive again and its
  /// spare (if any) returns to the free pool. No-op when the PE is alive.
  /// \pre 0 <= u < width, 0 <= v < height
  void restore_primary(std::int64_t u, std::int64_t v);

  [[nodiscard]] bool is_dead(std::int64_t u, std::int64_t v) const;
  /// The spare in service for (u,v), or -1 (alive or unmapped).
  [[nodiscard]] std::int64_t spare_of(std::int64_t u, std::int64_t v) const;
  [[nodiscard]] std::int64_t spares_free() const;
  [[nodiscard]] std::int64_t width() const { return width_; }
  [[nodiscard]] std::int64_t height() const { return height_; }
  [[nodiscard]] std::int64_t spare_count() const {
    return static_cast<std::int64_t>(spare_state_.size());
  }
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  enum class SpareState { kFree, kInService, kDead };

  [[nodiscard]] std::size_t index_of(std::int64_t u, std::int64_t v) const;
  /// Lowest-id free spare, or -1.
  [[nodiscard]] std::int64_t claim_free_spare();
  void check_invariants() const;

  std::int64_t width_;
  std::int64_t height_;
  std::vector<bool> primary_dead_;
  std::vector<std::int64_t> primary_spare_;  ///< spare id or -1
  std::vector<SpareState> spare_state_;
  std::vector<std::int64_t> spare_primary_;  ///< primary index or -1
  Stats stats_;
};

}  // namespace rota::rel
