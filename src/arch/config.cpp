#include "arch/config.hpp"

#include "util/check.hpp"

namespace rota::arch {

std::string to_string(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kMesh2D: return "mesh2d";
    case TopologyKind::kTorus2D: return "torus2d";
  }
  ROTA_UNREACHABLE("unhandled TopologyKind");
}

void AcceleratorConfig::validate() const {
  ROTA_REQUIRE(array_width > 0 && array_height > 0,
               "PE array dimensions must be positive");
  ROTA_REQUIRE(word_bytes > 0, "word size must be positive");
  ROTA_REQUIRE(lb_input_bytes >= word_bytes &&
                   lb_weight_bytes >= word_bytes &&
                   lb_output_bytes >= word_bytes,
               "local buffers must hold at least one word");
  ROTA_REQUIRE(glb_bytes >= lb_input_bytes + lb_weight_bytes + lb_output_bytes,
               "GLB must be larger than one PE's local buffers");
  ROTA_REQUIRE(global_net_words_per_cycle > 0,
               "global network bandwidth must be positive");
}

AcceleratorConfig eyeriss_like() {
  AcceleratorConfig cfg;  // defaults are the Eyeriss-style platform
  cfg.topology = TopologyKind::kMesh2D;
  cfg.validate();
  return cfg;
}

AcceleratorConfig rota_like() {
  AcceleratorConfig cfg;
  cfg.topology = TopologyKind::kTorus2D;
  cfg.validate();
  return cfg;
}

AcceleratorConfig scaled_array(std::int64_t side, TopologyKind topology) {
  AcceleratorConfig cfg;
  cfg.array_width = side;
  cfg.array_height = side;
  cfg.topology = topology;
  cfg.validate();
  return cfg;
}

}  // namespace rota::arch
