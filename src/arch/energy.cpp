#include "arch/energy.hpp"

namespace rota::arch {

AccessCounts& AccessCounts::operator+=(const AccessCounts& other) {
  macs += other.macs;
  lb_accesses += other.lb_accesses;
  inter_pe_hops += other.inter_pe_hops;
  glb_accesses += other.glb_accesses;
  dram_accesses += other.dram_accesses;
  return *this;
}

double total_energy(const EnergyModel& model, const AccessCounts& counts) {
  return model.mac * static_cast<double>(counts.macs) +
         model.lb_access * static_cast<double>(counts.lb_accesses) +
         model.inter_pe_hop * static_cast<double>(counts.inter_pe_hops) +
         model.glb_access * static_cast<double>(counts.glb_accesses) +
         model.dram_access * static_cast<double>(counts.dram_accesses);
}

}  // namespace rota::arch
