#pragma once

#include <cstdint>

/// \file energy.hpp
/// Per-access energy model in MAC-normalized units, following the relative
/// costs reported for Eyeriss [Chen et al., JSSC 2017]: RF ≈ 1×, inter-PE
/// ≈ 2×, GLB ≈ 6×, DRAM ≈ 200× the energy of one MAC. The scheduler uses
/// this model to pick energy-optimal mappings; absolute joules are never
/// needed because only relative comparisons matter.

namespace rota::arch {

/// Relative energy per access, normalized to one MAC operation.
struct EnergyModel {
  double mac = 1.0;
  double lb_access = 1.0;      ///< PE-local register file / SRAM
  double inter_pe_hop = 2.0;   ///< one hop on the local network
  double glb_access = 6.0;     ///< shared global buffer
  double dram_access = 200.0;  ///< off-chip memory
};

/// Access counts accumulated by the scheduler's cost model for one layer.
struct AccessCounts {
  std::int64_t macs = 0;
  std::int64_t lb_accesses = 0;
  std::int64_t inter_pe_hops = 0;
  std::int64_t glb_accesses = 0;
  std::int64_t dram_accesses = 0;

  AccessCounts& operator+=(const AccessCounts& other);
};

/// Total energy of a set of access counts under a model, in MAC units.
[[nodiscard]] double total_energy(const EnergyModel& model, const AccessCounts& counts);

}  // namespace rota::arch
