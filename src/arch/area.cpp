#include "arch/area.hpp"

#include <cmath>

#include "util/check.hpp"

namespace rota::arch {

double AreaModel::pe_area_um2(const AcceleratorConfig& cfg) const {
  const double lb_bits = static_cast<double>(
      (cfg.lb_input_bytes + cfg.lb_weight_bytes + cfg.lb_output_bytes) * 8);
  const double lb_area =
      lb_bits * params_.sram_um2_per_bit * params_.sram_periphery_factor;
  return params_.mac_area_um2 + params_.pe_control_area_um2 + lb_area;
}

double AreaModel::local_network_area_um2(const AcceleratorConfig& cfg) const {
  const Topology topo(cfg.topology, cfg.array_width, cfg.array_height);
  const LinkStats stats = topo.link_stats();
  // Each link contributes fixed mux/latch/repeater logic plus routing
  // proportional to its physical length (in PE pitches).
  const double logic =
      static_cast<double>(stats.link_count) * params_.link_logic_area_um2;
  const double routing = stats.total_length_pitches * params_.link_tracks *
                         params_.wire_um2_per_track_pitch;
  return logic + routing;
}

AreaBreakdown AreaModel::breakdown(const AcceleratorConfig& cfg,
                                   bool with_wear_leveling) const {
  cfg.validate();
  AreaBreakdown bd;
  const double pes = static_cast<double>(cfg.pe_count());
  bd.pe_array = pes * pe_area_um2(cfg);
  bd.glb = static_cast<double>(cfg.glb_bytes * 8) * params_.sram_um2_per_bit *
           params_.sram_periphery_factor;
  bd.controller = params_.controller_area_um2 +
                  (with_wear_leveling ? params_.wl_logic_area_um2 : 0.0);
  bd.global_network = pes * params_.global_net_area_per_pe_um2;
  bd.local_network = local_network_area_um2(cfg);
  return bd;
}

double AreaModel::array_overhead_fraction(
    const AcceleratorConfig& mesh_cfg) const {
  ROTA_REQUIRE(mesh_cfg.topology == TopologyKind::kMesh2D,
               "baseline configuration must be a mesh");
  AcceleratorConfig torus_cfg = mesh_cfg;
  torus_cfg.topology = TopologyKind::kTorus2D;
  const AreaBreakdown mesh_bd = breakdown(mesh_cfg, false);
  const AreaBreakdown torus_bd = breakdown(torus_cfg, false);
  const double mesh_array = mesh_bd.pe_array + mesh_bd.local_network;
  const double torus_array = torus_bd.pe_array + torus_bd.local_network;
  ROTA_ENSURE(mesh_array > 0.0, "mesh array area must be positive");
  return (torus_array - mesh_array) / mesh_array;
}

double AreaModel::chip_overhead_fraction(
    const AcceleratorConfig& mesh_cfg) const {
  ROTA_REQUIRE(mesh_cfg.topology == TopologyKind::kMesh2D,
               "baseline configuration must be a mesh");
  AcceleratorConfig torus_cfg = mesh_cfg;
  torus_cfg.topology = TopologyKind::kTorus2D;
  const double mesh_total = breakdown(mesh_cfg, false).total();
  const double torus_total = breakdown(torus_cfg, true).total();
  ROTA_ENSURE(mesh_total > 0.0, "mesh area must be positive");
  return (torus_total - mesh_total) / mesh_total;
}

}  // namespace rota::arch
