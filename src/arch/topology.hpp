#pragma once

#include <cstdint>

#include "arch/config.hpp"

/// \file topology.hpp
/// Structural model of the PE array's local (inter-PE) network: link
/// counts and physical link lengths for the conventional 2-D mesh and the
/// RoTA torus. The torus is modeled in its *folded* (zigzag interleaved)
/// floorplan, the standard layout that bounds every physical link to two
/// PE pitches instead of routing a w−1-pitch loop-back wire (paper §V-D).

namespace rota::arch {

/// Layout style used to realize torus rings on silicon.
enum class TorusLayout {
  kNaiveLoopback,  ///< rings closed by a long edge-to-edge wire
  kFolded,         ///< zigzag interleaving; every link spans ≤ 2 pitches
};

/// Link statistics of a PE-array local network.
struct LinkStats {
  std::int64_t link_count = 0;        ///< unidirectional inter-PE links
  double total_length_pitches = 0.0;  ///< summed link length, in PE pitches
  double max_length_pitches = 0.0;    ///< longest single link
};

/// The local network of a PE array.
class Topology {
 public:
  /// \param layout only meaningful for kTorus2D; ignored for the mesh.
  Topology(TopologyKind kind, std::int64_t width, std::int64_t height,
           TorusLayout layout = TorusLayout::kFolded);

  [[nodiscard]] TopologyKind kind() const { return kind_; }
  [[nodiscard]] std::int64_t width() const { return width_; }
  [[nodiscard]] std::int64_t height() const { return height_; }
  [[nodiscard]] TorusLayout layout() const { return layout_; }

  /// Whether a utilization space may wrap around the array edges.
  /// True only for the torus: its row/column rings carry traffic across
  /// the array boundary, which the mesh cannot do.
  [[nodiscard]] bool allows_wraparound() const { return kind_ == TopologyKind::kTorus2D; }

  /// Link statistics of this network.
  [[nodiscard]] LinkStats link_stats() const;

  /// Number of links a torus adds on top of the equivalent mesh
  /// (one ring-closing link per row and per column); 0 for a mesh.
  [[nodiscard]] std::int64_t extra_links_vs_mesh() const;

 private:
  TopologyKind kind_;
  std::int64_t width_;
  std::int64_t height_;
  TorusLayout layout_;
};

}  // namespace rota::arch
