#include "arch/topology.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace rota::arch {

Topology::Topology(TopologyKind kind, std::int64_t width, std::int64_t height,
                   TorusLayout layout)
    : kind_(kind), width_(width), height_(height), layout_(layout) {
  ROTA_REQUIRE(width > 0 && height > 0, "topology dimensions must be positive");
}

LinkStats Topology::link_stats() const {
  LinkStats stats;
  const double w = static_cast<double>(width_);
  const double h = static_cast<double>(height_);

  if (kind_ == TopologyKind::kMesh2D) {
    // Nearest-neighbor links only: (w−1) per row, (h−1) per column.
    stats.link_count = (width_ - 1) * height_ + width_ * (height_ - 1);
    stats.total_length_pitches = static_cast<double>(stats.link_count);
    stats.max_length_pitches = (stats.link_count > 0) ? 1.0 : 0.0;
    return stats;
  }

  // Torus: every row and every column is a ring of `w` (resp. `h`) links.
  stats.link_count = width_ * height_ + width_ * height_;
  if (layout_ == TorusLayout::kNaiveLoopback) {
    // w−1 unit links plus one (w−1)-pitch loop-back per row; same per column.
    stats.total_length_pitches =
        h * ((w - 1.0) + (w - 1.0)) + w * ((h - 1.0) + (h - 1.0));
    stats.max_length_pitches =
        std::max(w - 1.0, h - 1.0);
  } else {
    // Folded (zigzag) placement: every link spans at most two pitches and
    // the ring of n nodes uses n links of average length ≈ 2 (the two
    // end-of-row turnaround links are shorter).
    auto folded_row_length = [](double n) {
      if (n <= 1.0) return 0.0;  // a one-node ring needs no links
      // n links: n−2 of length 2 plus two turnaround links of length 1.
      return (n - 2.0) * 2.0 + 2.0;
    };
    stats.total_length_pitches =
        h * folded_row_length(w) + w * folded_row_length(h);
    stats.max_length_pitches = 2.0;
  }
  return stats;
}

std::int64_t Topology::extra_links_vs_mesh() const {
  if (kind_ == TopologyKind::kMesh2D) return 0;
  return width_ + height_;
}

}  // namespace rota::arch
