#pragma once

#include "arch/config.hpp"
#include "arch/topology.hpp"

/// \file area.hpp
/// Analytical area roll-up of the accelerator, replacing the paper's
/// Synopsys DC / SAED 32 nm synthesis run (see DESIGN.md, substitutions).
/// Absolute numbers are calibrated to 32 nm-class standard-cell and SRAM
/// densities; the quantity of interest is the *ratio* between the torus
/// and mesh arrays (paper §V-D reports 0.3%).

namespace rota::arch {

/// Technology / design constants of the area model (µm² unless noted).
struct AreaParams {
  double mac_area_um2 = 700.0;          ///< 16-bit multiply-accumulate
  double pe_control_area_um2 = 160.0;   ///< per-PE sequencing logic
  double sram_um2_per_bit = 0.30;       ///< bit-cell + array overhead
  double sram_periphery_factor = 1.25;  ///< decoders, sense amps
  double link_logic_area_um2 = 44.0;    ///< per-link mux/latch/driver cells
  /// Cell-area cost of routing per track per PE pitch. Inter-PE wires ride
  /// upper metal layers over the PE cells, so this models repeater/via
  /// overhead only and is small; raise it for congestion-limited designs.
  double wire_um2_per_track_pitch = 0.05;
  double link_tracks = 16.0;            ///< 16-bit unidirectional data bus
  double controller_area_um2 = 30000.0; ///< mapping controller + sequencer
  double global_net_area_per_pe_um2 = 40.0;  ///< GLB distribution tree

  /// RWL+RO additions: four parameter registers (w, h, x, y) and two
  /// circular counters for (u, v) — a few dozen flops (paper §IV-F).
  double wl_logic_area_um2 = 220.0;
};

/// Per-component area breakdown (µm²).
struct AreaBreakdown {
  double pe_array = 0.0;       ///< MACs + local buffers + PE control
  double glb = 0.0;            ///< shared global buffer
  double controller = 0.0;     ///< mapping controller (+ WL logic if any)
  double global_network = 0.0; ///< GLB-to-PE distribution
  double local_network = 0.0;  ///< inter-PE links (mesh or torus)

  [[nodiscard]] double total() const {
    return pe_array + glb + controller + global_network + local_network;
  }
};

/// Area model over an accelerator configuration.
class AreaModel {
 public:
  explicit AreaModel(AreaParams params = {}) : params_(params) {}

  [[nodiscard]] const AreaParams& params() const { return params_; }

  /// Area of one PE (MAC + 3 local buffers + control).
  [[nodiscard]] double pe_area_um2(const AcceleratorConfig& cfg) const;

  /// Full chip breakdown. `with_wear_leveling` adds the RWL+RO counters
  /// to the controller (only meaningful for the torus design).
  AreaBreakdown breakdown(const AcceleratorConfig& cfg,
                          bool with_wear_leveling = false) const;

  /// Fractional area overhead of the torus-connected *PE array* (PEs +
  /// local network) over the mesh PE array at the same size — the ratio
  /// the paper's synthesis reports (§V-D, ≈ 0.003). Wear-leveling logic
  /// lives in the controller and is excluded here.
  [[nodiscard]] double array_overhead_fraction(const AcceleratorConfig& mesh_cfg) const;

  /// Fractional overhead of the full chip (array + GLB + controller with
  /// RWL+RO logic + networks) — strictly smaller than the array ratio.
  [[nodiscard]] double chip_overhead_fraction(const AcceleratorConfig& mesh_cfg) const;

 private:
  [[nodiscard]] double local_network_area_um2(const AcceleratorConfig& cfg) const;

  AreaParams params_;
};

}  // namespace rota::arch
