#pragma once

#include <cstdint>
#include <string>

#include "util/safe_math.hpp"

/// \file config.hpp
/// Structural parameters of the modeled accelerator. The default matches
/// the evaluation platform of the paper (§V): a 14×12 Eyeriss-style PE
/// array with 24/448/48-byte input/weight/output local buffers per PE and
/// a 108 KB shared global buffer.

namespace rota::arch {

/// Local-network (inter-PE) topology of the PE array.
enum class TopologyKind {
  kMesh2D,   ///< conventional 2-D mesh; utilization spaces cannot wrap
  kTorus2D,  ///< RoTA: unidirectional ring per row and per column
};

[[nodiscard]] std::string to_string(TopologyKind kind);

/// Static configuration of one accelerator instance.
struct AcceleratorConfig {
  std::int64_t array_width = 14;   ///< w: PEs in the horizontal direction
  std::int64_t array_height = 12;  ///< h: PEs in the vertical direction
  TopologyKind topology = TopologyKind::kMesh2D;

  std::int64_t word_bytes = 2;  ///< 16-bit datapath, as in Eyeriss

  // Per-PE local buffers (bytes).
  std::int64_t lb_input_bytes = 24;
  std::int64_t lb_weight_bytes = 448;
  std::int64_t lb_output_bytes = 48;

  std::int64_t glb_bytes = 108 * 1024;  ///< shared global buffer

  /// Words the global network can move between GLB and the array per cycle.
  std::int64_t global_net_words_per_cycle = 4;

  /// Throws util::invariant_error if w*h does not fit in 64 bits.
  [[nodiscard]] std::int64_t pe_count() const {
    return util::checked_mul(array_width, array_height);
  }

  [[nodiscard]] std::int64_t lb_input_words() const { return lb_input_bytes / word_bytes; }
  [[nodiscard]] std::int64_t lb_weight_words() const { return lb_weight_bytes / word_bytes; }
  [[nodiscard]] std::int64_t lb_output_words() const { return lb_output_bytes / word_bytes; }
  [[nodiscard]] std::int64_t glb_words() const { return glb_bytes / word_bytes; }

  /// Throws util::precondition_error on inconsistent parameters.
  void validate() const;
};

/// The paper's baseline: Eyeriss-style 14×12 mesh array.
[[nodiscard]] AcceleratorConfig eyeriss_like();

/// The proposed design: same array with torus row/column rings.
[[nodiscard]] AcceleratorConfig rota_like();

/// A square array of the given side, used by the Fig. 10 scaling study.
[[nodiscard]] AcceleratorConfig scaled_array(std::int64_t side, TopologyKind topology);

}  // namespace rota::arch
