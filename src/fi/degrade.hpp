#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "arch/config.hpp"
#include "fi/checkpoint.hpp"
#include "fi/plan.hpp"
#include "nn/network.hpp"
#include "reliability/spares.hpp"
#include "sched/objective.hpp"
#include "wear/policy.hpp"

/// \file degrade.hpp
/// The degraded-mode lifetime engine (DESIGN.md §16): ages an accelerator
/// through an iteration-stamped fault timeline and, on each fault,
/// executes the repair-and-reschedule loop — claim a spare through
/// rel::SpareRemapper, rebuild the live map as a sched::ArrayState,
/// re-run sched::Mapper under the active objective on the degraded array,
/// and keep aging under the new schedule with the wear policy masked to
/// live PEs (wear::MaskedPolicy). When the spare pool exhausts the device
/// degrades gracefully — shrinking live set, derated throughput — until a
/// configurable retirement threshold ends the run.
///
/// Determinism contract: fault arrivals (declared and Weibull-sampled)
/// ride single SplitMix64 substreams and every schedule search is
/// bit-identical at any thread count, so the whole timeline — CSV
/// included — is byte-identical for any `threads`. Runs are resumable:
/// rota-checkpoint blobs carry the usage grid, policy rotation state, the
/// remapper operation log and the unexpired fault timeline, and the
/// fingerprint gate includes the canonical fault plan plus the remapper
/// state kind so a checkpoint never resumes against different work.

namespace rota::fi {

/// How the engine reacts to faults the spare pool cannot absorb.
enum class DegradeMode {
  /// Repair-and-reschedule: rebuild the schedule on the degraded array
  /// and mask the wear rotation to live PEs. The device keeps serving
  /// correct results until the retirement threshold.
  kFaultAware,
  /// Fail-stop baseline: the schedule and rotation never react. Work
  /// landing on dead, un-spared PEs is lost, and the first such fault
  /// ends correct service (the paper's serial-chain reading, Eq. 2).
  kFaultOblivious,
};

[[nodiscard]] std::string to_string(DegradeMode mode);

struct DegradeOptions {
  std::int64_t iterations = 512;   ///< inference passes to simulate
  std::int64_t spares = 4;         ///< spare-pool size
  std::uint64_t seed = 1;          ///< weibull sampling + RandomStart
  double beta = rel::kJedecShape;  ///< Weibull shape
  DegradeMode mode = DegradeMode::kFaultAware;
  sched::ObjectiveSpec objective;  ///< drives every (re)schedule
  wear::PolicyKind policy = wear::PolicyKind::kRwlRo;
  /// Retire once live primaries drop below this fraction of the array.
  double retire_live_fraction = 0.75;
  int threads = 1;                 ///< mapper lanes; never changes results
  std::vector<HardwareFault> faults;
  /// Workload identity stamped into the checkpoint fingerprint.
  std::string workload_tag;
  std::string checkpoint_path;     ///< "" disables checkpointing
  std::int64_t checkpoint_every = 64;  ///< iterations between autosaves
  /// Checkpoint to resume from (validated by the CLI against
  /// degrade_fingerprint); null starts fresh.
  const Checkpoint* resume = nullptr;
};

/// Everything the run produced. MTTF framing: `mttf_initial` evaluates
/// the fault-free wear profile with the full spare pool;
/// `mttf_final` evaluates the surviving live set's observed rates with
/// the device's *residual fault tolerance* — free spares plus, in
/// fault-aware mode, the additional un-spared deaths the retirement
/// threshold still absorbs (`retire_budget`). A fault-oblivious device is
/// fail-stop at the first un-spared fault, so its tolerance is the free
/// pool alone — and zero lifetime remains once such a fault has landed.
struct DegradeReport {
  std::int64_t iterations_run = 0;
  bool retired = false;
  std::int64_t retired_at = -1;     ///< iteration of retirement, or -1
  bool interrupted = false;         ///< stopped by should_stop (checkpointed)
  bool resumed = false;
  std::int64_t faults_injected = 0;
  std::int64_t transient_restores = 0;
  std::int64_t remaps = 0;          ///< faults absorbed by a spare
  std::int64_t unmapped_faults = 0; ///< faults the pool could not absorb
  std::int64_t reschedules = 0;     ///< mapper re-runs on a degraded array
  std::int64_t redirected_units = 0;
  std::int64_t lost_units = 0;
  std::int64_t first_unspared_at = -1;  ///< end of correct fail-stop service
  std::int64_t live_pes = 0;        ///< final live primaries (spared count)
  std::int64_t retire_budget = 0;   ///< further un-spared deaths tolerated
  double initial_energy = 0.0;      ///< per-iteration, intact schedule
  double final_energy = 0.0;        ///< per-iteration, final schedule
  double energy_overhead = 0.0;     ///< final/initial − 1
  double initial_cycles = 0.0;
  double final_cycles = 0.0;
  double throughput_derating = 0.0; ///< final/initial − 1
  double mttf_initial = 0.0;
  double mttf_final = 0.0;
  /// Observed per-iteration wear rates of the surviving live set (live
  /// primaries plus in-service spares) and the residual tolerance used
  /// for mttf_final — the exact inputs for a monte_carlo_spare_mttf
  /// cross-check.
  std::vector<double> live_alphas;
  std::int64_t mttf_tolerance = 0;
  rel::SpareRemapper::Stats spare_stats;
  std::vector<std::string> events;  ///< human-readable timeline
  std::string timeline_csv;         ///< deterministic CSV artifact
};

/// Checked at iteration boundaries; returning true stops the run after
/// saving a checkpoint (when enabled). Empty = never stop early.
using DegradeStopCheck = std::function<bool()>;

/// Fingerprint of the work a degrade checkpoint belongs to: workload,
/// array geometry, horizon, spares, seed, beta, mode, objective, policy,
/// retirement threshold, the canonical fault plan and the remapper state
/// kind. Resuming against any other value is stale.
[[nodiscard]] std::string degrade_fingerprint(
    const arch::AcceleratorConfig& config, const DegradeOptions& options);

/// Run the degraded-mode lifetime. Deterministic for fixed inputs at any
/// `threads`; byte-equal across interrupt/resume. \pre iterations >= 1,
/// spares >= 0, retire_live_fraction in (0, 1]; coordinate faults inside
/// the array.
[[nodiscard]] DegradeReport run_degraded_lifetime(
    const arch::AcceleratorConfig& config, const nn::Network& net,
    const DegradeOptions& options, const DegradeStopCheck& should_stop = {});

}  // namespace rota::fi
