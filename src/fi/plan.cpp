#include "fi/plan.hpp"

#include <cerrno>
#include <cstdlib>
#include <sstream>

namespace rota::fi {

namespace {

using util::Error;
using util::ErrorCode;

/// Split on `sep`, keeping empty pieces out.
std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t end = text.find(sep, start);
    const std::string_view piece =
        text.substr(start, end == std::string_view::npos ? std::string_view::npos
                                                         : end - start);
    if (!piece.empty()) out.emplace_back(piece);
    if (end == std::string_view::npos) break;
    start = end + 1;
  }
  return out;
}

bool parse_number(const std::string& text, double* out) {
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (errno != 0 || end == text.c_str() || *end != '\0') return false;
  *out = value;
  return true;
}

bool parse_integer(const std::string& text, std::int64_t* out) {
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0') return false;
  *out = static_cast<std::int64_t>(value);
  return true;
}

Error bad_spec(const std::string& what) {
  return Error{ErrorCode::kInvalidArgument, what};
}

util::Result<double> parse_rate(const std::string& key,
                                const std::string& value) {
  double rate = 0.0;
  if (!parse_number(value, &rate) || rate < 0.0 || rate > 1.0)
    return bad_spec("fault rate '" + key + "' must be a number in [0, 1], got '" +
                    value + "'");
  return rate;
}

}  // namespace

bool SoftwarePlan::any() const {
  return read_fail_rate > 0.0 || write_fail_rate > 0.0 || corrupt_rate > 0.0 ||
         stall_rate > 0.0 || alloc_fail_rate > 0.0;
}

std::string SoftwarePlan::to_spec() const {
  std::ostringstream out;
  out << "read=" << read_fail_rate << ",write=" << write_fail_rate
      << ",corrupt=" << corrupt_rate << ",stall=" << stall_rate
      << ",stall_ms=" << stall_ms << ",alloc=" << alloc_fail_rate
      << ",seed=" << seed;
  if (!path_match.empty()) out << ",match=" << path_match;
  return out.str();
}

util::Result<SoftwarePlan> parse_software_plan(std::string_view spec) {
  SoftwarePlan plan;
  for (const std::string& item : split(spec, ',')) {
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos)
      return bad_spec("fault spec item '" + item + "' is not key=value");
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key == "read" || key == "write" || key == "corrupt" ||
        key == "stall" || key == "alloc") {
      auto rate = parse_rate(key, value);
      if (!rate.ok()) return rate.error();
      if (key == "read") plan.read_fail_rate = rate.value();
      else if (key == "write") plan.write_fail_rate = rate.value();
      else if (key == "corrupt") plan.corrupt_rate = rate.value();
      else if (key == "stall") plan.stall_rate = rate.value();
      else plan.alloc_fail_rate = rate.value();
    } else if (key == "stall_ms") {
      std::int64_t ms = 0;
      if (!parse_integer(value, &ms) || ms < 0)
        return bad_spec("stall_ms must be a non-negative integer, got '" +
                        value + "'");
      plan.stall_ms = ms;
    } else if (key == "seed") {
      std::int64_t s = 0;
      if (!parse_integer(value, &s) || s < 0)
        return bad_spec("seed must be a non-negative integer, got '" + value +
                        "'");
      plan.seed = static_cast<std::uint64_t>(s);
    } else if (key == "match") {
      if (value.empty()) return bad_spec("match= needs a path substring");
      plan.path_match = value;
    } else {
      return bad_spec("unknown fault spec key '" + key +
                      "' (known: read, write, corrupt, stall, stall_ms, "
                      "alloc, seed, match)");
    }
  }
  return plan;
}

util::Result<HardwareFault> parse_hardware_fault(std::string_view spec) {
  const std::string text(spec);
  const std::size_t eq = text.find('=');
  if (eq == std::string::npos)
    return bad_spec("fault spec '" + text +
                    "' is not pe=U,V@ITER[+K], rank=R@ITER or weibull=N");
  const std::string key = text.substr(0, eq);
  const std::string value = text.substr(eq + 1);

  HardwareFault fault;
  if (key == "weibull") {
    fault.kind = HardwareFaultKind::kWeibull;
    if (!parse_integer(value, &fault.count) || fault.count < 1)
      return bad_spec("weibull=N needs a positive fault count, got '" + value +
                      "'");
    return fault;
  }

  // pe= and rank= share the @ITER suffix.
  const std::size_t at = value.find('@');
  if (at == std::string::npos)
    return bad_spec("fault spec '" + text + "' is missing @ITER");
  std::string when = value.substr(at + 1);
  const std::string target = value.substr(0, at);

  if (key == "pe") {
    fault.kind = HardwareFaultKind::kCoordinate;
    const std::size_t plus = when.find('+');
    if (plus != std::string::npos) {
      if (!parse_integer(when.substr(plus + 1), &fault.restore_after) ||
          fault.restore_after < 1)
        return bad_spec("transient suffix +K needs a positive K in '" + text +
                        "'");
      when = when.substr(0, plus);
    }
    const std::size_t comma = target.find(',');
    if (comma == std::string::npos ||
        !parse_integer(target.substr(0, comma), &fault.u) ||
        !parse_integer(target.substr(comma + 1), &fault.v) || fault.u < 0 ||
        fault.v < 0)
      return bad_spec("pe= needs non-negative coordinates U,V in '" + text +
                      "'");
  } else if (key == "rank") {
    fault.kind = HardwareFaultKind::kWearRank;
    if (!parse_integer(target, &fault.rank) || fault.rank < 0)
      return bad_spec("rank= needs a non-negative wear rank in '" + text +
                      "'");
  } else {
    return bad_spec("unknown fault kind '" + key +
                    "' (known: pe, rank, weibull)");
  }

  if (!parse_integer(when, &fault.iteration) || fault.iteration < 1)
    return bad_spec("@ITER needs a positive iteration in '" + text + "'");
  return fault;
}

std::string to_string(const HardwareFault& fault) {
  std::ostringstream out;
  switch (fault.kind) {
    case HardwareFaultKind::kCoordinate:
      out << "pe=" << fault.u << "," << fault.v << "@" << fault.iteration;
      if (fault.restore_after > 0) out << "+" << fault.restore_after;
      break;
    case HardwareFaultKind::kWearRank:
      out << "rank=" << fault.rank << "@" << fault.iteration;
      break;
    case HardwareFaultKind::kWeibull:
      out << "weibull=" << fault.count;
      break;
  }
  return out.str();
}

}  // namespace rota::fi
