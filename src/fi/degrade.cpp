#include "fi/degrade.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <utility>

#include "obs/event_log.hpp"
#include "obs/metrics.hpp"
#include "sched/array_state.hpp"
#include "sched/mapper.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "wear/masked_policy.hpp"
#include "wear/simulator.hpp"

namespace rota::fi {

namespace {

constexpr std::uint64_t kWeibullSeedTag = 0x77656962756c6cULL;  // "weibull"
constexpr const char* kCsvHeader =
    "iteration,event,u,v,arg,live,spares_free,energy,cycles\n";

/// Shortest exact round-trip encoding for the CSV/checkpoint doubles.
std::string hexdouble(double value) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", value);
  return buf;
}

std::string pe_name(std::int64_t u, std::int64_t v) {
  std::ostringstream out;
  out << "pe=(" << u << "," << v << ")";
  return out.str();
}

/// spare_array_mttf guarded against degenerate inputs: a dead or inactive
/// live set has no remaining lifetime, and the tolerance is capped below
/// the live-set size (tolerating every PE would make the MTTF infinite).
double guarded_spare_mttf(const std::vector<double>& alphas,
                          std::int64_t tolerance, double beta) {
  std::int64_t active = 0;
  for (const double a : alphas) active += a > 0.0 ? 1 : 0;
  if (active == 0) return 0.0;
  const std::int64_t n = static_cast<std::int64_t>(alphas.size());
  return rel::spare_array_mttf(alphas, std::min(tolerance, n - 1), beta);
}

/// One scheduled boundary action, like the injection campaign's: declared
/// faults, resolved weibull strikes and pending transient restores.
struct TimelineEvent {
  std::int64_t iteration = 1;
  bool is_restore = false;
  HardwareFaultKind kind = HardwareFaultKind::kCoordinate;
  std::int64_t u = -1;
  std::int64_t v = -1;
  std::int64_t rank = -1;
  std::int64_t restore_after = 0;
};

/// The rank-th most-worn live primary (ties toward lower index), clamping
/// past-the-end ranks; false when every primary is dead.
bool pick_by_rank(const std::vector<std::int64_t>& usage,
                  const rel::SpareRemapper& remapper, std::int64_t rank,
                  std::int64_t width, std::int64_t* u, std::int64_t* v) {
  std::vector<std::size_t> live;
  live.reserve(usage.size());
  for (std::size_t idx = 0; idx < usage.size(); ++idx) {
    const auto iu = static_cast<std::int64_t>(idx) % width;
    const auto iv = static_cast<std::int64_t>(idx) / width;
    if (!remapper.is_dead(iu, iv)) live.push_back(idx);
  }
  if (live.empty()) return false;
  std::sort(live.begin(), live.end(), [&](std::size_t a, std::size_t b) {
    if (usage[a] != usage[b]) return usage[a] > usage[b];
    return a < b;
  });
  const std::size_t pick =
      std::min<std::size_t>(static_cast<std::size_t>(rank), live.size() - 1);
  *u = static_cast<std::int64_t>(live[pick]) % width;
  *v = static_cast<std::int64_t>(live[pick]) / width;
  return true;
}

std::string join_i64(const std::vector<std::int64_t>& values) {
  std::ostringstream out;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out << ' ';
    out << values[i];
  }
  return out.str();
}

std::vector<std::int64_t> split_i64(const std::string& text) {
  std::istringstream in(text);
  std::vector<std::int64_t> values;
  std::int64_t v = 0;
  while (in >> v) values.push_back(v);
  return values;
}

std::string encode_events(const std::vector<TimelineEvent>& events) {
  std::ostringstream out;
  for (const TimelineEvent& e : events) {
    out << e.iteration << ' ' << (e.is_restore ? 1 : 0) << ' '
        << static_cast<int>(e.kind) << ' ' << e.u << ' ' << e.v << ' '
        << e.rank << ' ' << e.restore_after << '\n';
  }
  return out.str();
}

std::vector<TimelineEvent> decode_events(const std::string& text) {
  std::istringstream in(text);
  std::vector<TimelineEvent> events;
  TimelineEvent e;
  int restore = 0;
  int kind = 0;
  while (in >> e.iteration >> restore >> kind >> e.u >> e.v >> e.rank >>
         e.restore_after) {
    e.is_restore = restore != 0;
    ROTA_REQUIRE(kind >= 0 && kind <= 2, "corrupt degrade checkpoint event");
    e.kind = static_cast<HardwareFaultKind>(kind);
    events.push_back(e);
  }
  return events;
}

}  // namespace

std::string to_string(DegradeMode mode) {
  switch (mode) {
    case DegradeMode::kFaultAware: return "aware";
    case DegradeMode::kFaultOblivious: return "oblivious";
  }
  ROTA_UNREACHABLE("unhandled DegradeMode");
}

std::string degrade_fingerprint(const arch::AcceleratorConfig& config,
                                const DegradeOptions& options) {
  // Everything that defines the work: the workload, geometry, horizon,
  // randomness, objective/policy, retirement rule — and, per the
  // stale-resume gate, the canonical fault plan plus the remapper state
  // kind, so a checkpoint taken under one --fault set (or a future
  // remapper layout) can never silently resume another.
  std::ostringstream out;
  out << "degrade|net=" << options.workload_tag << "|array="
      << config.array_width << "x" << config.array_height
      << "|iters=" << options.iterations << "|spares=" << options.spares
      << "|seed=" << options.seed << "|beta=" << hexdouble(options.beta)
      << "|mode=" << to_string(options.mode)
      << "|objective=" << options.objective.id()
      << "|policy=" << wear::to_string(options.policy)
      << "|retire=" << hexdouble(options.retire_live_fraction)
      << "|mapper=v" << sched::kMapperVersion << "|faults=";
  for (std::size_t i = 0; i < options.faults.size(); ++i) {
    if (i > 0) out << ';';
    out << to_string(options.faults[i]);
  }
  out << "|remapper=lowest-free-v1";
  return out.str();
}

DegradeReport run_degraded_lifetime(const arch::AcceleratorConfig& config,
                                    const nn::Network& net,
                                    const DegradeOptions& options,
                                    const DegradeStopCheck& should_stop) {
  ROTA_REQUIRE(options.iterations >= 1, "need at least one iteration");
  ROTA_REQUIRE(options.spares >= 0, "spare count must be non-negative");
  ROTA_REQUIRE(options.retire_live_fraction > 0.0 &&
                   options.retire_live_fraction <= 1.0,
               "retire_live_fraction must be in (0, 1]");
  ROTA_REQUIRE(options.checkpoint_every >= 1,
               "checkpoint cadence must be positive");
  ROTA_REQUIRE(config.topology == arch::TopologyKind::kTorus2D,
               "the degraded-mode engine needs the torus array (masked "
               "rotation and fallback anchors wrap)");
  const std::int64_t width = config.array_width;
  const std::int64_t height = config.array_height;
  const std::int64_t cells = width * height;
  const bool aware = options.mode == DegradeMode::kFaultAware;
  const std::string fingerprint = degrade_fingerprint(config, options);
  // Retire when live primaries would drop below this count.
  const auto min_live = static_cast<std::int64_t>(
      std::ceil(options.retire_live_fraction * static_cast<double>(cells)));

  // Fault plan → pending timeline (weibull strikes resolve at it == 1).
  std::vector<TimelineEvent> pending;
  std::int64_t weibull_count = 0;
  for (const HardwareFault& fault : options.faults) {
    if (fault.kind == HardwareFaultKind::kWeibull) {
      weibull_count += fault.count;
      continue;
    }
    TimelineEvent event;
    event.iteration = fault.iteration;
    event.kind = fault.kind;
    event.u = fault.u;
    event.v = fault.v;
    event.rank = fault.rank;
    event.restore_after = fault.restore_after;
    if (fault.kind == HardwareFaultKind::kCoordinate) {
      ROTA_REQUIRE(fault.u >= 0 && fault.u < width && fault.v >= 0 &&
                       fault.v < height,
                   "coordinate fault " + to_string(fault) +
                       " lies outside the configured array");
    }
    pending.push_back(event);
  }

  rel::SpareRemapper remapper(width, height, options.spares);
  std::vector<std::string> oplog;  ///< remapper replay log ("F u v"/"R u v")
  DegradeReport report;
  wear::WearSimulator sim(config);
  auto inner = wear::make_policy(options.policy, width, height, options.seed);
  wear::MaskedPolicy policy(std::move(inner), sched::ArrayState(remapper));

  const auto make_schedule = [&](const sched::ArrayState& state) {
    sched::Mapper mapper(config, options.objective, {},
                         sched::MapperOptions{true, options.threads}, state);
    return mapper.schedule_network(net);
  };

  // The intact-array reference schedule (on resume this recomputes the
  // same deterministic result the fresh run saw).
  sched::NetworkSchedule schedule =
      make_schedule(sched::ArrayState(rel::SpareRemapper(width, height,
                                                         options.spares)));
  report.initial_energy = schedule.total_energy();
  report.initial_cycles = schedule.total_cycles();

  std::int64_t it = 0;  ///< completed iterations (global)
  std::vector<std::int64_t> prev(static_cast<std::size_t>(cells), 0);
  std::vector<std::int64_t> it1_usage;
  sched::ArrayState live_state(remapper);

  const auto live_primaries = [&]() {
    std::int64_t live = cells;
    for (std::int64_t v = 0; v < height; ++v) {
      for (std::int64_t u = 0; u < width; ++u) {
        if (remapper.is_dead(u, v) && remapper.spare_of(u, v) < 0) --live;
      }
    }
    return live;
  };

  const auto csv_row = [&](std::int64_t iter, const char* event,
                           std::int64_t u, std::int64_t v, std::int64_t arg) {
    std::ostringstream row;
    row << iter << ',' << event << ',' << u << ',' << v << ',' << arg << ','
        << live_primaries() << ',' << remapper.spares_free() << ','
        << hexdouble(schedule.total_energy()) << ','
        << hexdouble(schedule.total_cycles()) << '\n';
    report.timeline_csv += row.str();
  };

  // ---- resume --------------------------------------------------------
  if (options.resume != nullptr) {
    const Checkpoint& ck = *options.resume;
    ROTA_REQUIRE(ck.kind == "degrade",
                 "checkpoint kind '" + ck.kind + "' is not a degrade run");
    ROTA_REQUIRE(ck.fingerprint == fingerprint,
                 "stale degrade checkpoint: the fault plan, workload or "
                 "parameters changed since it was written");
    report.resumed = true;
    it = ck.progress;
    const auto field = [&ck](const std::string& name) -> const std::string& {
      const auto found = ck.fields.find(name);
      ROTA_REQUIRE(found != ck.fields.end(),
                   "degrade checkpoint is missing field '" + name + "'");
      return found->second;
    };
    sim.tracker().restore_cells(split_i64(field("usage")));
    prev = sim.tracker().usage().cells();
    it1_usage = split_i64(field("it1_usage"));
    const std::vector<std::int64_t> words = split_i64(field("policy_state"));
    policy.unpack_state(
        std::vector<std::uint64_t>(words.begin(), words.end()));
    {  // Replay the remapper operation log; stats replay with it.
      std::istringstream ops(field("oplog"));
      std::string op;
      std::int64_t u = 0;
      std::int64_t v = 0;
      while (ops >> op >> u >> v) {
        if (op == "F") {
          (void)remapper.fault_primary(u, v);
        } else if (op == "R") {
          remapper.restore_primary(u, v);
        } else {
          ROTA_REQUIRE(false, "corrupt degrade checkpoint oplog");
        }
        oplog.push_back(op + " " + std::to_string(u) + " " +
                        std::to_string(v));
      }
    }
    pending = decode_events(field("pending"));
    weibull_count = 0;  // resolved before the first checkpoint boundary
    const std::vector<std::int64_t> counters = split_i64(field("counters"));
    ROTA_REQUIRE(counters.size() == 8, "corrupt degrade checkpoint counters");
    report.faults_injected = counters[0];
    report.transient_restores = counters[1];
    report.remaps = counters[2];
    report.unmapped_faults = counters[3];
    report.reschedules = counters[4];
    report.redirected_units = counters[5];
    report.lost_units = counters[6];
    report.first_unspared_at = counters[7];
    report.timeline_csv = field("csv");
    {
      std::istringstream lines(field("events"));
      std::string line;
      while (std::getline(lines, line)) report.events.push_back(line);
    }
    // Rebuild the schedule from the live map it was *scheduled* with (the
    // remapper may have drifted past it at an un-rebuilt horizon
    // boundary); this reproduces the in-effect schedule byte-for-byte.
    {
      const std::vector<std::int64_t> flat = split_i64(field("sched_dead"));
      ROTA_REQUIRE(flat.size() % 2 == 0, "corrupt degrade checkpoint map");
      std::vector<std::pair<std::int64_t, std::int64_t>> dead;
      for (std::size_t i = 0; i + 1 < flat.size(); i += 2) {
        dead.emplace_back(flat[i], flat[i + 1]);
      }
      live_state = sched::ArrayState(width, height, dead);
      if (aware) policy.set_mask(live_state);
      if (live_state.dead_count() > 0) schedule = make_schedule(live_state);
    }
  } else {
    report.timeline_csv = kCsvHeader;
    csv_row(0, "start", -1, -1, -1);
  }

  // Per-call metric deltas (a resumed report carries prior counters).
  const DegradeReport base_counts = report;

  const auto save_checkpoint_at = [&](std::int64_t iteration) {
    if (options.checkpoint_path.empty()) return;
    Checkpoint ck;
    ck.kind = "degrade";
    ck.fingerprint = fingerprint;
    ck.progress = iteration;
    ck.fields["usage"] = join_i64(sim.tracker().usage().cells());
    ck.fields["it1_usage"] = join_i64(it1_usage);
    const std::vector<std::uint64_t> words = policy.pack_state();
    ck.fields["policy_state"] =
        join_i64(std::vector<std::int64_t>(words.begin(), words.end()));
    std::ostringstream ops;
    for (const std::string& op : oplog) ops << op << '\n';
    ck.fields["oplog"] = ops.str();
    ck.fields["pending"] = encode_events(pending);
    // The live map the in-effect schedule was built from (not necessarily
    // the current remapper state — a horizon-boundary fault never gets a
    // rebuild), so resume reproduces the schedule byte-for-byte.
    std::vector<std::int64_t> sched_dead;
    if (live_state.concrete() && live_state.dead_count() > 0) {
      for (std::int64_t v = 0; v < height; ++v) {
        for (std::int64_t u = 0; u < width; ++u) {
          if (live_state.dead(u, v)) {
            sched_dead.push_back(u);
            sched_dead.push_back(v);
          }
        }
      }
    }
    ck.fields["sched_dead"] = join_i64(sched_dead);
    ck.fields["counters"] = join_i64(
        {report.faults_injected, report.transient_restores, report.remaps,
         report.unmapped_faults, report.reschedules, report.redirected_units,
         report.lost_units, report.first_unspared_at});
    ck.fields["csv"] = report.timeline_csv;
    std::ostringstream lines;
    for (const std::string& line : report.events) lines << line << '\n';
    ck.fields["events"] = lines.str();
    save_checkpoint(options.checkpoint_path, ck);
  };

  const auto human = [&](const std::string& line) {
    report.events.push_back(line);
  };

  // ---- the repair-and-reschedule loop --------------------------------
  bool needs_resched = false;
  bool stop_now = false;
  bool autosave_due = false;

  const auto apply_fault = [&](std::int64_t g, std::int64_t u, std::int64_t v,
                               const char* label, std::int64_t restore_after) {
    const rel::SpareRemapper::Outcome outcome = remapper.fault_primary(u, v);
    oplog.push_back("F " + std::to_string(u) + " " + std::to_string(v));
    ++report.faults_injected;
    std::ostringstream line;
    line << "it=" << g << " " << label << " " << pe_name(u, v);
    if (outcome.remapped) {
      ++report.remaps;
      line << " -> spare " << outcome.spare;
      csv_row(g, "fault", u, v, outcome.spare);
      obs::log_event(obs::Severity::kInfo, "degrade",
                     "remap " + pe_name(u, v) + " -> spare " +
                         std::to_string(outcome.spare) + " at it=" +
                         std::to_string(g));
    } else {
      ++report.unmapped_faults;
      if (report.first_unspared_at < 0) report.first_unspared_at = g;
      line << " -> unmapped (pool exhausted)";
      csv_row(g, "unmapped", u, v, -1);
      obs::log_event(obs::Severity::kWarn, "degrade",
                     "unmapped fault " + pe_name(u, v) +
                         " (pool exhausted) at it=" + std::to_string(g));
    }
    human(line.str());
    if (restore_after > 0) {
      TimelineEvent restore;
      restore.iteration = g + restore_after;
      restore.is_restore = true;
      restore.u = u;
      restore.v = v;
      pending.push_back(restore);
    }
  };

  std::int64_t g_base = it;
  const auto sampler = [&](std::int64_t local,
                           const wear::UsageTracker& tracker) -> bool {
    const std::int64_t g = g_base + local;
    const std::vector<std::int64_t>& usage = tracker.usage().cells();

    // Credit this iteration's work under the mapping it actually ran on.
    for (std::size_t idx = 0; idx < usage.size(); ++idx) {
      const std::int64_t delta = usage[idx] - prev[idx];
      if (delta == 0) continue;
      const auto u = static_cast<std::int64_t>(idx) % width;
      const auto v = static_cast<std::int64_t>(idx) / width;
      if (!remapper.is_dead(u, v)) continue;
      if (remapper.spare_of(u, v) >= 0) {
        report.redirected_units += delta;
      } else {
        report.lost_units += delta;
      }
    }
    prev = usage;

    if (g == 1) {
      it1_usage = usage;  // the fault-free wear profile
      if (weibull_count > 0) {
        // Weibull arrivals from observed wear: PE ∝ usage^β without
        // replacement, strike time T·U^{1/β} — one SplitMix64 substream,
        // independent of thread count.
        util::SplitMix64 rng(options.seed ^ kWeibullSeedTag);
        std::vector<double> weight(usage.size(), 0.0);
        for (std::size_t idx = 0; idx < usage.size(); ++idx) {
          weight[idx] =
              std::pow(static_cast<double>(usage[idx]), options.beta);
        }
        for (std::int64_t n = 0; n < weibull_count; ++n) {
          double total = 0.0;
          for (const double w : weight) total += w;
          if (total <= 0.0) break;
          double pick = rng.next_double() * total;
          std::size_t idx = 0;
          for (; idx + 1 < weight.size(); ++idx) {
            if (pick < weight[idx]) break;
            pick -= weight[idx];
          }
          weight[idx] = 0.0;  // without replacement
          TimelineEvent event;
          const double frac = std::pow(rng.next_double(), 1.0 / options.beta);
          event.iteration = std::clamp<std::int64_t>(
              static_cast<std::int64_t>(std::ceil(
                  frac * static_cast<double>(options.iterations))),
              std::min<std::int64_t>(2, options.iterations),
              options.iterations);
          event.kind = HardwareFaultKind::kCoordinate;
          event.u = static_cast<std::int64_t>(idx) % width;
          event.v = static_cast<std::int64_t>(idx) / width;
          pending.push_back(event);
          csv_row(g, "weibull-scheduled", event.u, event.v, event.iteration);
          human("weibull scheduled " + pe_name(event.u, event.v) + "@" +
                std::to_string(event.iteration));
        }
        weibull_count = 0;
      }
    }

    // Apply this boundary's events in declaration order, keeping the rest.
    std::vector<TimelineEvent> due;
    std::vector<TimelineEvent> rest;
    for (const TimelineEvent& event : pending) {
      (event.iteration == g ? due : rest).push_back(event);
    }
    pending = std::move(rest);
    for (const TimelineEvent& event : due) {
      if (event.is_restore) {
        remapper.restore_primary(event.u, event.v);
        oplog.push_back("R " + std::to_string(event.u) + " " +
                        std::to_string(event.v));
        ++report.transient_restores;
        csv_row(g, "restore", event.u, event.v, -1);
        human("it=" + std::to_string(g) + " restore " +
              pe_name(event.u, event.v));
        obs::log_event(obs::Severity::kInfo, "degrade",
                       "restore " + pe_name(event.u, event.v) + " at it=" +
                           std::to_string(g));
      } else if (event.kind == HardwareFaultKind::kWearRank) {
        std::int64_t u = 0;
        std::int64_t v = 0;
        if (pick_by_rank(usage, remapper, event.rank, width, &u, &v)) {
          apply_fault(g, u, v, "fault rank", 0);
        }
      } else {
        apply_fault(g, event.u, event.v, "fault", event.restore_after);
      }
    }

    if (aware && !due.empty()) {
      const sched::ArrayState next(remapper);
      if (next.digest() != live_state.digest()) {
        // The live map changed (a fault the pool could not absorb, or a
        // restore): retire if below threshold, else repair-and-reschedule.
        if (cells - next.dead_count() < min_live) {
          report.retired = true;
          report.retired_at = g;
          csv_row(g, "retire", -1, -1, cells - next.dead_count());
          human("it=" + std::to_string(g) + " retire (live " +
                std::to_string(cells - next.dead_count()) + " < " +
                std::to_string(min_live) + ")");
          obs::log_event(obs::Severity::kWarn, "degrade",
                         "retirement threshold reached at it=" +
                             std::to_string(g));
          return false;
        }
        needs_resched = true;
      }
    }

    stop_now = should_stop && should_stop();
    autosave_due = !options.checkpoint_path.empty() &&
                   g % options.checkpoint_every == 0;
    return !(stop_now || autosave_due || needs_resched);
  };

  while (it < options.iterations && !report.retired && !report.interrupted) {
    needs_resched = false;
    stop_now = false;
    autosave_due = false;
    g_base = it;
    it += sim.run_iterations_while(schedule, policy, options.iterations - it,
                                   sampler);
    if (report.retired) break;
    if (needs_resched && it < options.iterations) {
      const sched::ArrayState next(remapper);
      try {
        schedule = make_schedule(next);
      } catch (const util::invariant_error&) {
        // No feasible mapping on what is left of the array.
        report.retired = true;
        report.retired_at = it;
        csv_row(it, "retire", -1, -1, cells - next.dead_count());
        human("it=" + std::to_string(it) +
              " retire (no feasible schedule on the degraded array)");
        obs::log_event(obs::Severity::kWarn, "degrade",
                       "retired: no feasible schedule at it=" +
                           std::to_string(it));
        break;
      }
      live_state = next;
      policy.set_mask(live_state);
      ++report.reschedules;
      csv_row(it, "reschedule", -1, -1, live_state.dead_count());
      human("it=" + std::to_string(it) + " reschedule (dead=" +
            std::to_string(live_state.dead_count()) + ", energy=" +
            std::to_string(schedule.total_energy()) + ", cycles=" +
            std::to_string(schedule.total_cycles()) + ")");
      obs::log_event(obs::Severity::kInfo, "degrade",
                     "rescheduled on degraded array (dead=" +
                         std::to_string(live_state.dead_count()) +
                         ") at it=" + std::to_string(it));
    }
    if (stop_now && it < options.iterations) {
      report.interrupted = true;
      save_checkpoint_at(it);
      break;
    }
    if (autosave_due) save_checkpoint_at(it);
  }
  report.iterations_run = it;
  if (!report.interrupted) csv_row(it, "end", -1, -1, -1);

  // ---- residual lifetime ---------------------------------------------
  const std::vector<std::int64_t>& usage = sim.tracker().usage().cells();
  std::vector<double> initial_alphas;
  initial_alphas.reserve(it1_usage.size());
  for (const std::int64_t count : it1_usage) {
    initial_alphas.push_back(static_cast<double>(count));
  }
  report.mttf_initial =
      guarded_spare_mttf(initial_alphas, options.spares, options.beta);

  report.live_pes = live_primaries();
  report.retire_budget =
      aware ? std::max<std::int64_t>(0, report.live_pes - min_live) : 0;
  for (std::size_t idx = 0; idx < usage.size(); ++idx) {
    const auto u = static_cast<std::int64_t>(idx) % width;
    const auto v = static_cast<std::int64_t>(idx) / width;
    if (remapper.is_dead(u, v) && remapper.spare_of(u, v) < 0) continue;
    report.live_alphas.push_back(static_cast<double>(usage[idx]) /
                                 static_cast<double>(
                                     std::max<std::int64_t>(1, it)));
  }
  report.mttf_tolerance = remapper.spares_free() + report.retire_budget;
  if (report.retired ||
      (!aware && report.first_unspared_at >= 0)) {
    // Retired, or fail-stop service already ended: no correct service
    // lifetime remains.
    report.mttf_final = 0.0;
  } else {
    report.mttf_final = guarded_spare_mttf(
        report.live_alphas, report.mttf_tolerance, options.beta);
  }

  report.final_energy = schedule.total_energy();
  report.final_cycles = schedule.total_cycles();
  report.energy_overhead = report.initial_energy > 0.0
                               ? report.final_energy / report.initial_energy -
                                     1.0
                               : 0.0;
  report.throughput_derating =
      report.initial_cycles > 0.0
          ? report.final_cycles / report.initial_cycles - 1.0
          : 0.0;
  report.spare_stats = remapper.stats();

  auto& reg = obs::MetricsRegistry::global();
  if (reg.enabled()) {
    reg.add("degrade.faults",
            report.faults_injected - base_counts.faults_injected);
    reg.add("degrade.remaps", report.remaps - base_counts.remaps);
    reg.add("degrade.unmapped",
            report.unmapped_faults - base_counts.unmapped_faults);
    reg.add("degrade.reschedules",
            report.reschedules - base_counts.reschedules);
    reg.add("degrade.restores",
            report.transient_restores - base_counts.transient_restores);
    reg.add("degrade.redirected_units",
            report.redirected_units - base_counts.redirected_units);
    reg.add("degrade.lost_units",
            report.lost_units - base_counts.lost_units);
    if (report.retired) reg.add("degrade.retirements", 1);
  }
  return report;
}

}  // namespace rota::fi
