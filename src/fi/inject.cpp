#include "fi/inject.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "obs/metrics.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "wear/simulator.hpp"

namespace rota::fi {

namespace {

/// One scheduled boundary action (declared faults, resolved weibull
/// samples and pending transient restores all become events).
struct Event {
  std::int64_t iteration = 1;
  bool is_restore = false;
  HardwareFaultKind kind = HardwareFaultKind::kCoordinate;
  std::int64_t u = -1;
  std::int64_t v = -1;
  std::int64_t rank = -1;
  std::int64_t restore_after = 0;
};

/// Substream tag ("weibull") for every wear-weighted fault sampler, so
/// the static ArrayState reading and the runtime campaign draw from the
/// same stream given the same seed and snapshot.
constexpr std::uint64_t kWeibullSeedTag = 0x77656962756c6cULL;

std::string pe_name(std::int64_t u, std::int64_t v) {
  std::ostringstream out;
  out << "pe=(" << u << "," << v << ")";
  return out.str();
}

/// The rank-th most-worn live primary (ties broken toward lower index);
/// ranks past the end clamp to the least-worn live PE. Returns false when
/// no primary is alive.
bool pick_by_rank(const std::vector<std::int64_t>& usage,
                  const rel::SpareRemapper& remapper, std::int64_t rank,
                  std::int64_t width, std::int64_t* u, std::int64_t* v) {
  std::vector<std::size_t> live;
  live.reserve(usage.size());
  for (std::size_t idx = 0; idx < usage.size(); ++idx) {
    const auto iu = static_cast<std::int64_t>(idx) % width;
    const auto iv = static_cast<std::int64_t>(idx) / width;
    if (!remapper.is_dead(iu, iv)) live.push_back(idx);
  }
  if (live.empty()) return false;
  std::sort(live.begin(), live.end(), [&](std::size_t a, std::size_t b) {
    if (usage[a] != usage[b]) return usage[a] > usage[b];
    return a < b;
  });
  const std::size_t pick = std::min<std::size_t>(
      static_cast<std::size_t>(rank), live.size() - 1);
  *u = static_cast<std::int64_t>(live[pick]) % width;
  *v = static_cast<std::int64_t>(live[pick]) / width;
  return true;
}

/// MTTF guarded against an all-zero (or empty) activity vector, which
/// spare_array_mttf rejects: a dead array has zero remaining lifetime.
double guarded_mttf(const std::vector<double>& alphas, std::int64_t spares,
                    double beta) {
  bool active = false;
  for (const double a : alphas) active = active || a > 0.0;
  if (!active) return 0.0;
  return rel::spare_array_mttf(alphas, spares, beta);
}

}  // namespace

FaultRunReport run_fault_injection(const arch::AcceleratorConfig& config,
                                   const sched::NetworkSchedule& schedule,
                                   wear::Policy& policy,
                                   const InjectOptions& options) {
  ROTA_REQUIRE(options.iterations >= 1, "need at least one iteration");
  ROTA_REQUIRE(options.spares >= 0, "spare count must be non-negative");
  const std::int64_t width = config.array_width;
  const std::int64_t height = config.array_height;

  std::vector<Event> pending;
  std::int64_t weibull_count = 0;
  for (const HardwareFault& fault : options.faults) {
    if (fault.kind == HardwareFaultKind::kWeibull) {
      weibull_count += fault.count;
      continue;
    }
    Event event;
    event.iteration = fault.iteration;
    event.kind = fault.kind;
    event.u = fault.u;
    event.v = fault.v;
    event.rank = fault.rank;
    event.restore_after = fault.restore_after;
    if (fault.kind == HardwareFaultKind::kCoordinate) {
      ROTA_REQUIRE(fault.u >= 0 && fault.u < width && fault.v >= 0 &&
                       fault.v < height,
                   "coordinate fault " + to_string(fault) +
                       " lies outside the configured array");
    }
    pending.push_back(event);
  }

  wear::WearSimulator sim(config);
  rel::SpareRemapper remapper(width, height, options.spares);
  FaultRunReport report;
  report.spare_usage.assign(static_cast<std::size_t>(options.spares), 0);

  std::vector<std::int64_t> prev(
      static_cast<std::size_t>(width) * static_cast<std::size_t>(height), 0);

  auto apply_fault = [&](std::int64_t it, std::int64_t u, std::int64_t v,
                         const char* label, std::int64_t restore_after) {
    const rel::SpareRemapper::Outcome outcome = remapper.fault_primary(u, v);
    ++report.faults_injected;
    std::ostringstream line;
    line << "it=" << it << " " << label << " " << pe_name(u, v);
    if (outcome.remapped)
      line << " -> spare " << outcome.spare;
    else
      line << " -> unmapped (pool exhausted)";
    report.events.push_back(line.str());
    if (restore_after > 0) {
      Event restore;
      restore.iteration = it + restore_after;
      restore.is_restore = true;
      restore.u = u;
      restore.v = v;
      pending.push_back(restore);
    }
  };

  auto sampler = [&](std::int64_t it,
                     const wear::UsageTracker& tracker) -> bool {
    const std::vector<std::int64_t>& usage = tracker.usage().cells();
    // Credit this iteration's work under the mapping that was live while
    // it ran — before applying this boundary's fault events.
    for (std::size_t idx = 0; idx < usage.size(); ++idx) {
      const std::int64_t delta = usage[idx] - prev[idx];
      if (delta == 0) continue;
      const auto u = static_cast<std::int64_t>(idx) % width;
      const auto v = static_cast<std::int64_t>(idx) / width;
      if (!remapper.is_dead(u, v)) continue;
      const std::int64_t spare = remapper.spare_of(u, v);
      if (spare >= 0) {
        report.redirected_units += delta;
        report.spare_usage[static_cast<std::size_t>(spare)] += delta;
      } else {
        report.lost_units += delta;
      }
    }
    prev = usage;

    // Weibull faults resolve against the first iteration's wear profile:
    // PE picked with probability ∝ α^β (its early failure probability),
    // strike time T·U^(1/β) — the Weibull CDF conditioned on failing
    // within the run window T.
    if (it == 1 && weibull_count > 0) {
      util::SplitMix64 rng(options.seed ^ kWeibullSeedTag);
      std::vector<double> weight(usage.size(), 0.0);
      for (std::size_t idx = 0; idx < usage.size(); ++idx)
        weight[idx] = std::pow(static_cast<double>(usage[idx]), options.beta);
      for (std::int64_t n = 0; n < weibull_count; ++n) {
        double total = 0.0;
        for (const double w : weight) total += w;
        if (total <= 0.0) break;
        double pick = rng.next_double() * total;
        std::size_t idx = 0;
        for (; idx + 1 < weight.size(); ++idx) {
          if (pick < weight[idx]) break;
          pick -= weight[idx];
        }
        weight[idx] = 0.0;  // without replacement
        Event event;
        const double frac =
            std::pow(rng.next_double(), 1.0 / options.beta);
        event.iteration = std::clamp<std::int64_t>(
            static_cast<std::int64_t>(
                std::ceil(frac * static_cast<double>(options.iterations))),
            std::min<std::int64_t>(2, options.iterations), options.iterations);
        event.kind = HardwareFaultKind::kCoordinate;
        event.u = static_cast<std::int64_t>(idx) % width;
        event.v = static_cast<std::int64_t>(idx) / width;
        pending.push_back(event);
        std::ostringstream line;
        line << "weibull scheduled " << pe_name(event.u, event.v) << "@"
             << event.iteration;
        report.events.push_back(line.str());
      }
      weibull_count = 0;
    }

    // Apply this boundary's events in declaration order.
    for (std::size_t e = 0; e < pending.size(); ++e) {
      if (pending[e].iteration != it) continue;
      const Event event = pending[e];
      if (event.is_restore) {
        remapper.restore_primary(event.u, event.v);
        ++report.transient_restores;
        report.events.push_back("it=" + std::to_string(it) + " restore " +
                                pe_name(event.u, event.v));
      } else if (event.kind == HardwareFaultKind::kWearRank) {
        std::int64_t u = 0;
        std::int64_t v = 0;
        if (pick_by_rank(usage, remapper, event.rank, width, &u, &v))
          apply_fault(it, u, v, "fault rank", 0);
      } else {
        apply_fault(it, event.u, event.v, "fault", event.restore_after);
      }
    }

    // Nothing left to run on: every primary is dead.
    bool any_alive = false;
    for (std::int64_t v = 0; v < height && !any_alive; ++v)
      for (std::int64_t u = 0; u < width && !any_alive; ++u)
        any_alive = !remapper.is_dead(u, v);
    return any_alive;
  };

  report.iterations_run =
      sim.run_iterations_while(schedule, policy, options.iterations, sampler);

  // Lifetime before/after: per-iteration wear rates from this run (the
  // policy is fault-oblivious, so this is also the fault-free profile).
  const std::vector<std::int64_t>& usage = sim.tracker().usage().cells();
  std::vector<double> alphas(usage.size(), 0.0);
  std::int64_t total_usage = 0;
  for (std::size_t idx = 0; idx < usage.size(); ++idx) {
    alphas[idx] = static_cast<double>(usage[idx]) /
                  static_cast<double>(report.iterations_run);
    total_usage += usage[idx];
  }
  report.baseline_mttf = guarded_mttf(alphas, options.spares, options.beta);

  std::vector<double> degraded;
  degraded.reserve(usage.size());
  for (std::size_t idx = 0; idx < usage.size(); ++idx) {
    const auto u = static_cast<std::int64_t>(idx) % width;
    const auto v = static_cast<std::int64_t>(idx) / width;
    if (!remapper.is_dead(u, v)) {
      degraded.push_back(alphas[idx]);
    } else if (remapper.spare_of(u, v) >= 0) {
      // The spare inherits its primary's load.
      degraded.push_back(alphas[idx]);
    }
    // Unmapped dead PEs contribute no further wear (their work is lost).
  }
  report.degraded_mttf =
      guarded_mttf(degraded, remapper.spares_free(), options.beta);
  report.mttf_ratio = report.baseline_mttf > 0.0
                          ? report.degraded_mttf / report.baseline_mttf
                          : 0.0;

  report.redirect_fraction =
      total_usage > 0 ? static_cast<double>(report.redirected_units) /
                            static_cast<double>(total_usage)
                      : 0.0;
  report.spare_stats = remapper.stats();

  auto& reg = obs::MetricsRegistry::global();
  if (reg.enabled()) {
    reg.add("fi.hw_faults_injected", report.faults_injected);
    reg.add("fi.hw_redirected_units", report.redirected_units);
    reg.add("fi.hw_lost_units", report.lost_units);
  }
  return report;
}

namespace {

util::Result<sched::ArrayState> array_state_from_faults_impl(
    std::int64_t width, std::int64_t height,
    const std::vector<HardwareFault>& faults, std::int64_t spares,
    const WearSnapshot* wear) {
  if (width < 1 || height < 1) {
    return {util::ErrorCode::kInvalidArgument,
            "array_state_from_faults: array must be at least 1x1, got " +
                std::to_string(width) + "x" + std::to_string(height)};
  }
  if (spares < 0) {
    return {util::ErrorCode::kInvalidArgument,
            "array_state_from_faults: spares must be >= 0, got " +
                std::to_string(spares)};
  }
  if (wear != nullptr) {
    if (wear->usage.size() !=
        static_cast<std::size_t>(width) * static_cast<std::size_t>(height)) {
      return {util::ErrorCode::kInvalidArgument,
              "array_state_from_faults: wear snapshot has " +
                  std::to_string(wear->usage.size()) + " cells but the " +
                  std::to_string(width) + "x" + std::to_string(height) +
                  " array needs " + std::to_string(width * height)};
    }
    if (!(wear->beta > 0.0)) {
      return {util::ErrorCode::kInvalidArgument,
              "array_state_from_faults: wear snapshot beta must be positive"};
    }
  }
  rel::SpareRemapper remapper(width, height, spares);
  const auto kill = [&remapper](std::int64_t u, std::int64_t v) {
    if (!remapper.is_dead(u, v)) (void)remapper.fault_primary(u, v);
  };
  for (const HardwareFault& fault : faults) {
    if (fault.restore_after > 0) {
      return {util::ErrorCode::kInvalidArgument,
              "array_state_from_faults: transient fault '" + to_string(fault) +
                  "' has no static dead-PE reading (it heals at runtime)"};
    }
    if (fault.kind != HardwareFaultKind::kCoordinate && wear == nullptr) {
      return {util::ErrorCode::kInvalidArgument,
              "array_state_from_faults: wear-dependent fault '" +
                  to_string(fault) +
                  "' needs a wear snapshot to get a static dead-PE reading"};
    }
    switch (fault.kind) {
      case HardwareFaultKind::kCoordinate: {
        if (fault.u < 0 || fault.u >= width || fault.v < 0 ||
            fault.v >= height) {
          return {util::ErrorCode::kInvalidArgument,
                  "array_state_from_faults: fault '" + to_string(fault) +
                      "' lies outside the " + std::to_string(width) + "x" +
                      std::to_string(height) + " array"};
        }
        kill(fault.u, fault.v);
        break;
      }
      case HardwareFaultKind::kWearRank: {
        std::int64_t u = 0;
        std::int64_t v = 0;
        if (pick_by_rank(wear->usage, remapper, fault.rank, width, &u, &v)) {
          kill(u, v);
        }
        break;
      }
      case HardwareFaultKind::kWeibull: {
        // The campaign's sampler without the strike times: PEs picked
        // with probability ∝ usage^β, without replacement, from the
        // seed's "weibull" substream; already-dead primaries are skipped.
        util::SplitMix64 rng(wear->seed ^ kWeibullSeedTag);
        std::vector<double> weight(wear->usage.size(), 0.0);
        for (std::size_t idx = 0; idx < wear->usage.size(); ++idx) {
          const auto u = static_cast<std::int64_t>(idx) % width;
          const auto v = static_cast<std::int64_t>(idx) / width;
          if (remapper.is_dead(u, v)) continue;
          weight[idx] = std::pow(static_cast<double>(wear->usage[idx]),
                                 wear->beta);
        }
        for (std::int64_t n = 0; n < fault.count; ++n) {
          double total = 0.0;
          for (const double w : weight) total += w;
          if (total <= 0.0) break;
          double pick = rng.next_double() * total;
          std::size_t idx = 0;
          for (; idx + 1 < weight.size(); ++idx) {
            if (pick < weight[idx]) break;
            pick -= weight[idx];
          }
          weight[idx] = 0.0;  // without replacement
          kill(static_cast<std::int64_t>(idx) % width,
               static_cast<std::int64_t>(idx) / width);
        }
        break;
      }
    }
  }
  return sched::ArrayState(remapper);
}

}  // namespace

util::Result<sched::ArrayState> array_state_from_faults(
    std::int64_t width, std::int64_t height,
    const std::vector<HardwareFault>& faults, std::int64_t spares) {
  return array_state_from_faults_impl(width, height, faults, spares, nullptr);
}

util::Result<sched::ArrayState> array_state_from_faults(
    std::int64_t width, std::int64_t height,
    const std::vector<HardwareFault>& faults, std::int64_t spares,
    const WearSnapshot& wear) {
  return array_state_from_faults_impl(width, height, faults, spares, &wear);
}

}  // namespace rota::fi
