#include "fi/checkpoint.hpp"

#include <sstream>

#include "obs/metrics.hpp"
#include "util/check.hpp"
#include "util/io.hpp"

namespace rota::fi {

namespace {

using util::Error;
using util::ErrorCode;

Error corrupt(const std::string& what) {
  return Error{ErrorCode::kInvalidArgument, "corrupt checkpoint: " + what};
}

bool single_line(const std::string& text) {
  return text.find('\n') == std::string::npos &&
         text.find('\r') == std::string::npos;
}

/// FNV-1a over the path: the retry-jitter salt per checkpoint file.
std::uint64_t path_salt(const std::string& path) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char ch : path)
    h = (h ^ static_cast<unsigned char>(ch)) * 0x100000001b3ULL;
  return h;
}

}  // namespace

std::string encode_checkpoint(const Checkpoint& checkpoint) {
  ROTA_REQUIRE(!checkpoint.kind.empty() && single_line(checkpoint.kind),
               "checkpoint kind must be a non-empty single line");
  ROTA_REQUIRE(!checkpoint.fingerprint.empty() &&
                   single_line(checkpoint.fingerprint),
               "checkpoint fingerprint must be a non-empty single line");
  ROTA_REQUIRE(checkpoint.progress >= 0,
               "checkpoint progress must be non-negative");
  std::ostringstream out;
  out << kCheckpointMagic << " v" << kCheckpointVersion << "\n";
  out << "kind " << checkpoint.kind << "\n";
  out << "fingerprint " << checkpoint.fingerprint << "\n";
  out << "progress " << checkpoint.progress << "\n";
  for (const auto& [name, blob] : checkpoint.fields) {
    ROTA_REQUIRE(!name.empty() && name.find(' ') == std::string::npos &&
                     single_line(name),
                 "checkpoint field names must be single space-free tokens");
    out << "field " << name << " " << blob.size() << "\n";
    out << blob << "\n";
  }
  out << "end\n";
  return out.str();
}

util::Result<Checkpoint> decode_checkpoint(const std::string& text) {
  std::istringstream in(text);
  std::string line;

  if (!std::getline(in, line)) return corrupt("empty file");
  {
    std::istringstream header(line);
    std::string magic;
    std::string version;
    header >> magic >> version;
    if (magic != kCheckpointMagic) return corrupt("bad magic '" + magic + "'");
    // Built with append rather than "v" + to_string(...): GCC 12 at -O3
    // raises a spurious -Wrestrict on operator+(const char*, string&&).
    std::string expected = "v";
    expected += std::to_string(kCheckpointVersion);
    if (version != expected)
      return Error{ErrorCode::kInvalidArgument,
                   "unsupported checkpoint version '" + version +
                       "' (this build reads v" +
                       std::to_string(kCheckpointVersion) + ")"};
  }

  Checkpoint cp;
  auto read_tagged = [&](const std::string& tag,
                         std::string* value) -> bool {
    if (!std::getline(in, line)) return false;
    const std::string prefix = tag + " ";
    if (line.rfind(prefix, 0) != 0) return false;
    *value = line.substr(prefix.size());
    return !value->empty();
  };
  std::string progress_text;
  if (!read_tagged("kind", &cp.kind)) return corrupt("missing kind");
  if (!read_tagged("fingerprint", &cp.fingerprint))
    return corrupt("missing fingerprint");
  if (!read_tagged("progress", &progress_text))
    return corrupt("missing progress");
  try {
    std::size_t used = 0;
    cp.progress = std::stoll(progress_text, &used);
    if (used != progress_text.size() || cp.progress < 0)
      return corrupt("bad progress '" + progress_text + "'");
  } catch (const std::exception&) {
    return corrupt("bad progress '" + progress_text + "'");
  }

  bool saw_end = false;
  while (std::getline(in, line)) {
    if (line == "end") {
      saw_end = true;
      break;
    }
    std::istringstream field(line);
    std::string tag;
    std::string name;
    std::size_t bytes = 0;
    field >> tag >> name >> bytes;
    if (tag != "field" || name.empty() || field.fail())
      return corrupt("bad field header '" + line + "'");
    std::string blob(bytes, '\0');
    if (bytes > 0 &&
        !in.read(blob.data(), static_cast<std::streamsize>(bytes)))
      return corrupt("truncated field '" + name + "'");
    int newline = in.get();
    if (newline != '\n') return corrupt("field '" + name + "' not terminated");
    if (!cp.fields.emplace(name, std::move(blob)).second)
      return corrupt("duplicate field '" + name + "'");
  }
  if (!saw_end) return corrupt("missing end marker (torn write?)");
  if (std::getline(in, line) && !line.empty())
    return corrupt("trailing bytes after end marker");
  return cp;
}

void save_checkpoint(const std::string& path, const Checkpoint& checkpoint,
                     const util::RetryOptions& retry) {
  const std::string encoded = encode_checkpoint(checkpoint);
  auto& reg = obs::MetricsRegistry::global();
  util::retry_io(
      retry, path_salt(path),
      [&] { util::write_file_atomic(path, encoded); },
      [&](int /*attempt*/, const util::io_error&) {
        reg.add("fi.checkpoint_write_retries");
      });
  reg.add("fi.checkpoints_saved");
}

util::Result<Checkpoint> load_checkpoint(const std::string& path,
                                         const util::RetryOptions& retry) {
  auto& reg = obs::MetricsRegistry::global();
  std::optional<std::string> text;
  try {
    text = util::retry_io(
        retry, path_salt(path),
        [&] { return util::read_text_file_if_exists(path); },
        [&](int /*attempt*/, const util::io_error&) {
          reg.add("fi.checkpoint_read_retries");
        });
  } catch (const util::io_error& e) {
    return Error{ErrorCode::kIo, e.what()};
  }
  if (!text.has_value())
    return Error{ErrorCode::kNotFound, "no checkpoint at " + path};
  return decode_checkpoint(*text);
}

}  // namespace rota::fi
