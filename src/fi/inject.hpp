#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arch/config.hpp"
#include "fi/plan.hpp"
#include "reliability/spares.hpp"
#include "sched/array_state.hpp"
#include "sched/schedule.hpp"
#include "util/result.hpp"
#include "wear/policy.hpp"

/// \file inject.hpp
/// Hardware fault injection: drive a wear-leveling policy over a schedule
/// while killing PEs mid-run and routing their work through the spare
/// pool (rel::SpareRemapper). The run answers the operational questions
/// the analytic k-out-of-n model cannot: how much work lands on spares
/// under a given fault sequence, when the pool exhausts, and how far MTTF
/// degrades once part of the pool is spent.
///
/// Faults strike at iteration boundaries (a simulated inference pass is
/// never torn). Work attribution is exact: each iteration's per-PE usage
/// delta is credited to the spare standing in for a dead PE (redirected)
/// or written off (lost) when the pool was exhausted, using the mapping
/// that was in effect during that iteration.

namespace rota::fi {

struct InjectOptions {
  std::int64_t iterations = 256;  ///< inference passes to simulate
  std::int64_t spares = 4;        ///< spare-pool size
  std::uint64_t seed = 1;         ///< drives weibull fault sampling
  double beta = rel::kJedecShape; ///< Weibull shape for sampling and MTTF
  std::vector<HardwareFault> faults;
};

/// What happened. MTTF values use the per-iteration wear rates observed
/// in this run (the policy is fault-oblivious, so they equal the
/// fault-free profile): `baseline_mttf` is the array with its full spare
/// pool; `degraded_mttf` re-evaluates with only the surviving free
/// spares and with each in-service spare carrying its primary's load.
struct FaultRunReport {
  std::int64_t iterations_run = 0;
  std::int64_t faults_injected = 0;    ///< fault events applied
  std::int64_t transient_restores = 0;
  std::int64_t redirected_units = 0;   ///< usage units served by spares
  std::int64_t lost_units = 0;         ///< usage units with no PE to run on
  double redirect_fraction = 0.0;      ///< redirected / total usage
  double baseline_mttf = 0.0;
  double degraded_mttf = 0.0;
  double mttf_ratio = 0.0;             ///< degraded / baseline
  rel::SpareRemapper::Stats spare_stats;
  std::vector<std::int64_t> spare_usage;  ///< redirected units per spare
  std::vector<std::string> events;     ///< human-readable fault log
};

/// Run the injection campaign. Deterministic for fixed inputs and seed.
/// `policy` is driven from its current state (callers pass a fresh one).
/// \pre options.iterations >= 1, options.spares >= 0; coordinate faults
/// must lie inside the configured array.
[[nodiscard]] FaultRunReport run_fault_injection(
    const arch::AcceleratorConfig& config,
    const sched::NetworkSchedule& schedule, wear::Policy& policy,
    const InjectOptions& options);

/// Observed per-PE wear that gives wear-dependent fault specs a static
/// reading: `rank=R` resolves to the R-th most-worn live primary and
/// `weibull=N` samples N distinct PEs with probability ∝ usage^β — the
/// same selection rules the injection campaign applies at runtime.
struct WearSnapshot {
  std::vector<std::int64_t> usage;  ///< row-major w·h usage counters
  double beta = rel::kJedecShape;   ///< Weibull shape for weibull= sampling
  std::uint64_t seed = 1;           ///< drives weibull= sampling
};

/// Fold permanent faults into the sched::ArrayState the fault-aware
/// mapper consumes (DESIGN.md §15): each fault claims a spare through a
/// fresh rel::SpareRemapper (lowest-free-spare order, like the injection
/// campaign), and only PEs left dead *and* un-spared make the state
/// degraded. Without a wear snapshot only permanent `pe=U,V@ITER` specs
/// convert; with one, `rank=R@ITER` and `weibull=N` resolve against the
/// snapshot deterministically. Errors (invalid_argument): out-of-range
/// coordinates, transient (`+K`) faults (they heal at runtime and have no
/// static reading), wear-dependent faults without a snapshot, or a
/// snapshot whose geometry does not match.
[[nodiscard]] util::Result<sched::ArrayState> array_state_from_faults(
    std::int64_t width, std::int64_t height,
    const std::vector<HardwareFault>& faults, std::int64_t spares = 0);
[[nodiscard]] util::Result<sched::ArrayState> array_state_from_faults(
    std::int64_t width, std::int64_t height,
    const std::vector<HardwareFault>& faults, std::int64_t spares,
    const WearSnapshot& wear);

}  // namespace rota::fi
