#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "util/result.hpp"
#include "util/retry.hpp"

/// \file checkpoint.hpp
/// Versioned checkpoint snapshots for long-running commands (`rota sweep`,
/// `rota mc`). A checkpoint is a small text artifact:
///
///   rota-checkpoint v1
///   kind <sweep|mc|...>
///   fingerprint <work-identity token>
///   progress <units completed>
///   field <name> <bytes>
///   <raw bytes>
///   ...
///   end
///
/// `fingerprint` encodes the inputs that define the work (workload set,
/// policy set, iteration count, seed, …); resuming verifies it so a
/// checkpoint is never applied to different work. Field payloads are
/// length-prefixed raw bytes, so carried state (CSV rows, hexfloat
/// moment sums) round-trips bit-exactly.
///
/// Persistence is crash-safe and fault-tolerant: saves go through
/// util::write_file_atomic (temp file + fsync + rename) wrapped in
/// util::retry_io, and a torn or corrupted file fails load with a
/// structured error — callers then restart from scratch, never resume
/// from garbage.

namespace rota::fi {

inline constexpr std::string_view kCheckpointMagic = "rota-checkpoint";
inline constexpr int kCheckpointVersion = 1;

struct Checkpoint {
  std::string kind;         ///< which command wrote it ("sweep", "mc")
  std::string fingerprint;  ///< identity of the work being resumed
  std::int64_t progress = 0;  ///< completed work units (cells, trials)
  std::map<std::string, std::string> fields;  ///< carried state blobs
};

/// Serialize to the format above. Deterministic (fields are emitted in
/// map order). \pre kind and fingerprint non-empty and single-line.
[[nodiscard]] std::string encode_checkpoint(const Checkpoint& checkpoint);

/// Parse; kInvalidArgument on any structural problem (bad magic, bad
/// version, truncated payload, trailing bytes).
[[nodiscard]] util::Result<Checkpoint> decode_checkpoint(
    const std::string& text);

/// Atomically persist to `path`, retrying transient I/O errors. Throws
/// util::io_error once retries are exhausted.
void save_checkpoint(const std::string& path, const Checkpoint& checkpoint,
                     const util::RetryOptions& retry = {});

/// Load and decode `path`, retrying transient read errors. Returns
/// kNotFound when the file does not exist (a fresh run, not an error),
/// kIo when it stays unreadable, kInvalidArgument when it is corrupt.
[[nodiscard]] util::Result<Checkpoint> load_checkpoint(
    const std::string& path, const util::RetryOptions& retry = {});

}  // namespace rota::fi
