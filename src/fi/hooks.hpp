#pragma once

#include <cstdint>
#include <string_view>

#include "fi/plan.hpp"

/// \file hooks.hpp
/// Process-wide software-fault injection (`fi::Hooks`). Arming a
/// SoftwarePlan installs hooks into the seams the lower layers expose —
/// util::set_io_fault_hook for file I/O, par::set_worker_fault_hook for
/// pool tasks — and answers allocation-failure queries for the layers
/// that ask (svc::Engine). Everything is deterministic: each fault
/// category draws from its own splitmix64 stream keyed on the plan seed
/// and a per-category operation counter, so a fixed seed and operation
/// order reproduce the exact fault pattern.
///
/// Disarmed (the default), the seams cost one relaxed atomic load per
/// operation and nothing is installed — production binaries carry the
/// hardening (retries, atomic writes, shedding) but no fault source.
///
/// Arming is process-global and not reference-counted: tests and the CLI
/// arm once at startup (ROTA_FI) or around one scenario, and must disarm
/// before arming a different plan.

namespace rota::fi {

/// Cumulative injected-fault counts since the last arm()/reset_counters().
/// Mirrored into obs metrics (fi.read_faults, fi.write_faults,
/// fi.corruptions, fi.stalls, fi.alloc_faults) when the registry is
/// enabled, so they land in --metrics-out JSON next to the retry/shed
/// counters of the hardened layers.
struct HookCounters {
  std::int64_t read_faults = 0;
  std::int64_t write_faults = 0;
  std::int64_t corruptions = 0;
  std::int64_t stalls = 0;
  std::int64_t alloc_faults = 0;
};

class Hooks {
 public:
  Hooks() = delete;  // static-only

  /// Install the plan's hooks. A plan with no positive rate disarms
  /// instead. Counters reset on every arm.
  static void arm(const SoftwarePlan& plan);

  /// Remove all installed hooks.
  static void disarm();

  [[nodiscard]] static bool armed();

  /// The armed plan (all-zero when disarmed).
  [[nodiscard]] static SoftwarePlan plan();

  [[nodiscard]] static HookCounters counters();
  static void reset_counters();

  /// Allocation-failure query for layers that simulate OOM: true means
  /// "pretend this allocation failed" (the caller throws std::bad_alloc
  /// or degrades). `site` labels the caller in the decision stream.
  [[nodiscard]] static bool should_fail_alloc(std::string_view site);

  /// Arm from the ROTA_FI environment variable if it is set and non-empty.
  /// Returns false (leaving the hooks untouched) when unset; throws
  /// util::precondition_error on a malformed spec so operators see the
  /// parse error instead of silently running fault-free.
  static bool arm_from_env();
};

}  // namespace rota::fi
