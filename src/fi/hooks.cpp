#include "fi/hooks.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>

#include "obs/metrics.hpp"
#include "par/thread_pool.hpp"
#include "util/check.hpp"
#include "util/io.hpp"
#include "util/rng.hpp"
#include "util/thread_annotations.hpp"

namespace rota::fi {

namespace {

/// All mutable hook state. The counters are atomics (the hooks fire from
/// pool workers); plan and armed flag only change under arm()/disarm(),
/// which tests serialize externally.
struct HookState {
  util::Mutex mu;  ///< guards plan against concurrent arm/disarm
  SoftwarePlan plan ROTA_GUARDED_BY(mu);
  std::atomic<bool> armed{false};
  std::atomic<std::uint64_t> read_seq{0};
  std::atomic<std::uint64_t> write_seq{0};
  std::atomic<std::uint64_t> stall_seq{0};
  std::atomic<std::uint64_t> alloc_seq{0};
  std::atomic<std::int64_t> read_faults{0};
  std::atomic<std::int64_t> write_faults{0};
  std::atomic<std::int64_t> corruptions{0};
  std::atomic<std::int64_t> stalls{0};
  std::atomic<std::int64_t> alloc_faults{0};
};

HookState& state() {
  static HookState s;
  return s;
}

/// Category tags decorrelate the per-category decision streams.
constexpr std::uint64_t kReadTag = 0x66692d7265616421;   // "fi-read!"
constexpr std::uint64_t kWriteTag = 0x66692d7772697465;  // "fi-write"
constexpr std::uint64_t kCorruptTag = 0x66692d636f7272;  // "fi-corr"
constexpr std::uint64_t kStallTag = 0x66692d7374616c6c;  // "fi-stall"
constexpr std::uint64_t kAllocTag = 0x66692d616c6c6f63;  // "fi-alloc"

/// One deterministic Bernoulli draw for (seed, tag, sequence number).
bool decide(std::uint64_t seed, std::uint64_t tag, std::uint64_t seq,
            double rate) {
  if (rate <= 0.0) return false;
  util::SplitMix64 rng(seed ^ tag ^ (seq * 0x9e3779b97f4a7c15ULL));
  return rng.next_double() < rate;
}

bool path_matches(const SoftwarePlan& plan, const std::string& path) {
  return plan.path_match.empty() ||
         path.find(plan.path_match) != std::string::npos;
}

/// The util file-I/O hook: fails reads/writes with util::io_error and
/// corrupts read payloads in place.
void io_hook(util::IoOp op, const std::string& path, std::string* data) {
  HookState& s = state();
  SoftwarePlan plan;
  {
    const util::MutexLock lock(s.mu);
    plan = s.plan;
  }
  if (!path_matches(plan, path)) return;
  auto& reg = obs::MetricsRegistry::global();
  if (op == util::IoOp::kWrite) {
    const std::uint64_t seq =
        s.write_seq.fetch_add(1, std::memory_order_relaxed);
    if (decide(plan.seed, kWriteTag, seq, plan.write_fail_rate)) {
      s.write_faults.fetch_add(1, std::memory_order_relaxed);
      reg.add("fi.write_faults");
      throw util::io_error("injected write fault for " + path);
    }
    return;
  }
  const std::uint64_t seq = s.read_seq.fetch_add(1, std::memory_order_relaxed);
  if (decide(plan.seed, kReadTag, seq, plan.read_fail_rate)) {
    s.read_faults.fetch_add(1, std::memory_order_relaxed);
    reg.add("fi.read_faults");
    throw util::io_error("injected read fault for " + path);
  }
  if (data != nullptr && !data->empty() &&
      decide(plan.seed, kCorruptTag, seq, plan.corrupt_rate)) {
    // Flip one deterministic byte — enough to break any checksum or
    // format magic without changing the payload size.
    util::SplitMix64 rng(plan.seed ^ kCorruptTag ^ seq);
    const std::size_t pos = static_cast<std::size_t>(
        rng.next_below(static_cast<std::uint64_t>(data->size())));
    (*data)[pos] = static_cast<char>((*data)[pos] ^ 0x5a);
    s.corruptions.fetch_add(1, std::memory_order_relaxed);
    reg.add("fi.corruptions");
  }
}

/// The par worker hook: stalls a fraction of pool tasks.
void worker_hook() {
  HookState& s = state();
  SoftwarePlan plan;
  {
    const util::MutexLock lock(s.mu);
    plan = s.plan;
  }
  const std::uint64_t seq = s.stall_seq.fetch_add(1, std::memory_order_relaxed);
  if (!decide(plan.seed, kStallTag, seq, plan.stall_rate)) return;
  s.stalls.fetch_add(1, std::memory_order_relaxed);
  obs::MetricsRegistry::global().add("fi.stalls");
  if (plan.stall_ms > 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(plan.stall_ms));
}

}  // namespace

void Hooks::arm(const SoftwarePlan& plan) {
  if (!plan.any()) {
    disarm();
    return;
  }
  HookState& s = state();
  {
    const util::MutexLock lock(s.mu);
    s.plan = plan;
  }
  reset_counters();
  s.armed.store(true, std::memory_order_relaxed);
  if (plan.read_fail_rate > 0.0 || plan.write_fail_rate > 0.0 ||
      plan.corrupt_rate > 0.0) {
    util::set_io_fault_hook(io_hook);
  } else {
    util::set_io_fault_hook({});
  }
  if (plan.stall_rate > 0.0) {
    par::set_worker_fault_hook(worker_hook);
  } else {
    par::set_worker_fault_hook({});
  }
}

void Hooks::disarm() {
  HookState& s = state();
  util::set_io_fault_hook({});
  par::set_worker_fault_hook({});
  s.armed.store(false, std::memory_order_relaxed);
  const util::MutexLock lock(s.mu);
  s.plan = SoftwarePlan{};
}

bool Hooks::armed() { return state().armed.load(std::memory_order_relaxed); }

SoftwarePlan Hooks::plan() {
  HookState& s = state();
  const util::MutexLock lock(s.mu);
  return s.plan;
}

HookCounters Hooks::counters() {
  HookState& s = state();
  HookCounters c;
  c.read_faults = s.read_faults.load(std::memory_order_relaxed);
  c.write_faults = s.write_faults.load(std::memory_order_relaxed);
  c.corruptions = s.corruptions.load(std::memory_order_relaxed);
  c.stalls = s.stalls.load(std::memory_order_relaxed);
  c.alloc_faults = s.alloc_faults.load(std::memory_order_relaxed);
  return c;
}

void Hooks::reset_counters() {
  HookState& s = state();
  s.read_seq.store(0, std::memory_order_relaxed);
  s.write_seq.store(0, std::memory_order_relaxed);
  s.stall_seq.store(0, std::memory_order_relaxed);
  s.alloc_seq.store(0, std::memory_order_relaxed);
  s.read_faults.store(0, std::memory_order_relaxed);
  s.write_faults.store(0, std::memory_order_relaxed);
  s.corruptions.store(0, std::memory_order_relaxed);
  s.stalls.store(0, std::memory_order_relaxed);
  s.alloc_faults.store(0, std::memory_order_relaxed);
}

bool Hooks::should_fail_alloc(std::string_view site) {
  HookState& s = state();
  if (!s.armed.load(std::memory_order_relaxed)) return false;
  SoftwarePlan plan;
  {
    const util::MutexLock lock(s.mu);
    plan = s.plan;
  }
  if (plan.alloc_fail_rate <= 0.0) return false;
  // The site label shifts the stream so distinct sites fail independently.
  std::uint64_t site_hash = 0xcbf29ce484222325ULL;
  for (const char ch : site)
    site_hash = (site_hash ^ static_cast<unsigned char>(ch)) *
                0x100000001b3ULL;
  const std::uint64_t seq = s.alloc_seq.fetch_add(1, std::memory_order_relaxed);
  if (!decide(plan.seed ^ site_hash, kAllocTag, seq, plan.alloc_fail_rate))
    return false;
  s.alloc_faults.fetch_add(1, std::memory_order_relaxed);
  obs::MetricsRegistry::global().add("fi.alloc_faults");
  return true;
}

bool Hooks::arm_from_env() {
  const char* spec = std::getenv("ROTA_FI");
  if (spec == nullptr || spec[0] == '\0') return false;
  auto plan = parse_software_plan(spec);
  ROTA_REQUIRE(plan.ok(), "ROTA_FI: " + plan.error().message);
  arm(plan.value());
  return true;
}

}  // namespace rota::fi
