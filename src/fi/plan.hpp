#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.hpp"

/// \file plan.hpp
/// Fault plans (`rota::fi`): declarative descriptions of what to break,
/// parsed once and executed deterministically from a seed. Two families
/// share the grammar conventions:
///
/// **Software faults** (SoftwarePlan) perturb the process itself — failed
/// or corrupted file I/O, stalled pool workers, allocation failure — and
/// are armed process-wide through fi::Hooks (see hooks.hpp). The spec is a
/// comma-separated key=value list, also accepted via the ROTA_FI
/// environment variable:
///
///   read=0.1,write=0.1,corrupt=0.05,stall=0.01,stall_ms=5,
///   alloc=0.001,seed=42,match=schedule-cache
///
/// **Hardware faults** (HardwareFault) kill PEs of the simulated array and
/// are consumed by fi::run_fault_injection (inject.hpp). Grammar, one
/// fault per spec (the CLI flag repeats):
///
///   pe=U,V@ITER        permanent fault of PE (U,V) after iteration ITER
///   pe=U,V@ITER+K      transient: restored K iterations later
///   rank=R@ITER        fault the rank-th most-worn live PE (0 = most worn)
///   weibull=N          N faults at Weibull-sampled times (seeded; per-PE
///                      scale η/α_ij from observed first-iteration wear)
///
/// Both parsers return Result rather than throwing: a bad spec is operator
/// input, not a caller bug.

namespace rota::fi {

/// Probabilities are per *operation* (one file read, one file write, one
/// pool task), decided deterministically from `seed` and an operation
/// sequence number, so a fixed seed yields a reproducible fault pattern
/// for a fixed operation order.
struct SoftwarePlan {
  double read_fail_rate = 0.0;    ///< P(file read throws util::io_error)
  double write_fail_rate = 0.0;   ///< P(file write throws util::io_error)
  double corrupt_rate = 0.0;      ///< P(read data is bit-flipped instead)
  double stall_rate = 0.0;        ///< P(a pool task sleeps stall_ms first)
  std::int64_t stall_ms = 2;      ///< stall duration
  double alloc_fail_rate = 0.0;   ///< P(an allocation site reports OOM)
  std::uint64_t seed = 1;
  /// When non-empty, I/O faults hit only paths containing this substring
  /// (e.g. "schedule-cache" to spare run artifacts); stalls and alloc
  /// faults are unaffected.
  std::string path_match;

  /// True when any fault rate is positive (arming a plan with any() ==
  /// false is a no-op).
  [[nodiscard]] bool any() const;
  /// Round-trippable spec string (parse_software_plan(to_spec()) == *this).
  [[nodiscard]] std::string to_spec() const;
};

/// Parse the key=value spec described above. Unknown keys, rates outside
/// [0, 1] and malformed numbers are kInvalidArgument errors. The empty
/// string parses to the all-zero plan.
[[nodiscard]] util::Result<SoftwarePlan> parse_software_plan(
    std::string_view spec);

enum class HardwareFaultKind {
  kCoordinate,  ///< pe=U,V@ITER[+K]
  kWearRank,    ///< rank=R@ITER
  kWeibull,     ///< weibull=N
};

/// One declared hardware-fault event (see file comment for the grammar).
struct HardwareFault {
  HardwareFaultKind kind = HardwareFaultKind::kCoordinate;
  std::int64_t u = -1;          ///< kCoordinate
  std::int64_t v = -1;          ///< kCoordinate
  std::int64_t rank = -1;       ///< kWearRank; 0 = most worn at that instant
  std::int64_t iteration = 1;   ///< strike after this iteration completes
  std::int64_t restore_after = 0;  ///< kCoordinate: >0 = transient, restored
                                   ///< this many iterations after the strike
  std::int64_t count = 0;       ///< kWeibull: number of sampled faults
};

/// Parse one hardware-fault spec.
[[nodiscard]] util::Result<HardwareFault> parse_hardware_fault(
    std::string_view spec);

/// Round-trippable rendering (used by run manifests and reports).
[[nodiscard]] std::string to_string(const HardwareFault& fault);

}  // namespace rota::fi
