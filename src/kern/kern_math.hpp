#pragma once

#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>

/// \file kern_math.hpp
/// The single source of truth for the vectorized math kernels: every
/// algorithm here is a template over a 'lane' type and is instantiated
/// twice — once with ScalarLane (below) in isa_scalar.cpp and once with a
/// 4-wide AVX2 lane in isa_avx2.cpp. Both instantiations execute the
/// exact same IEEE-754 operation sequence per element (no FMA, no
/// reassociation; the kern library compiles with -ffp-contract=off), so
/// their results are bit-identical by construction.
///
/// log/exp are the classic Cephes double-precision rational
/// approximations (log: P5/Q5 after reduction to [√½, √2); exp: n·ln2
/// split into a hi/lo pair plus a degree-2/3 rational in the residual),
/// accurate to a few ulp. Special values are handled with branch-free
/// masked selects so scalar and vector lanes agree: log(0) = -inf,
/// exp flushes to 0 below -708 and saturates to +inf above 709, and
/// denormal log inputs are pre-scaled by 2^54 for an exact result.
///
/// Batch reductions use the 4-lane tree documented in DESIGN.md §14:
/// element i always feeds lane i mod 4, vector or not, and the final
/// fold is (l0 + l1) + (l2 + l3).

namespace rota::kern::detail {

/// Width of the reduction tree — equal to the AVX2 vector width, and
/// emulated with four scalar accumulators on the fallback path.
inline constexpr int kTreeLanes = 4;

inline constexpr double kInf = std::numeric_limits<double>::infinity();
inline constexpr double kDblMin = std::numeric_limits<double>::min();

// Cephes log() coefficients (double precision).
inline constexpr double kLogP0 = 1.01875663804580931796e-4;
inline constexpr double kLogP1 = 4.97494994976747001425e-1;
inline constexpr double kLogP2 = 4.70579119878881725854e0;
inline constexpr double kLogP3 = 1.44989225341610930846e1;
inline constexpr double kLogP4 = 1.79368678507819816313e1;
inline constexpr double kLogP5 = 7.70838733755885391666e0;
inline constexpr double kLogQ0 = 1.12873587189167450590e1;
inline constexpr double kLogQ1 = 4.52279145837532221105e1;
inline constexpr double kLogQ2 = 8.29875266912776603211e1;
inline constexpr double kLogQ3 = 7.11544750618563894466e1;
inline constexpr double kLogQ4 = 2.31251620126765340583e1;
inline constexpr double kSqrtHalf = 7.07106781186547524401e-1;
/// ln2 split: kLn2Hi − kLn2Lo == ln 2 to beyond double precision.
inline constexpr double kLn2Hi = 6.93359375e-1;
inline constexpr double kLn2Lo = 2.121944400546905827679e-4;

// Cephes exp() coefficients (double precision).
inline constexpr double kExpP0 = 1.26177193074810590878e-4;
inline constexpr double kExpP1 = 3.02994407707441961300e-2;
inline constexpr double kExpP2 = 9.99999999999999999910e-1;
inline constexpr double kExpQ0 = 3.00198505138664455042e-6;
inline constexpr double kExpQ1 = 2.52448340349684104192e-3;
inline constexpr double kExpQ2 = 2.27265548208155028766e-1;
inline constexpr double kExpQ3 = 2.00000000000000000005e0;
inline constexpr double kLog2E = 1.4426950408889634073599;  // 1/ln 2
/// exp() saturation thresholds. Chosen so the 2^n exponent build stays in
/// the normal range: below kExpLo the true result is at most ~3e-308 and
/// flushes to zero; above kExpHi it exceeds ~8e307 and saturates to +inf.
inline constexpr double kExpLo = -708.0;
inline constexpr double kExpHi = 709.0;
/// 1.5·2^52 — int64↔double conversion pivot for exponent arithmetic.
inline constexpr double kMagic = 0x1.8p52;

/// Portable one-element lane. Operations mirror the AVX2 lane exactly:
/// min/max use the (a OP b) ? a : b select form so NaN propagation
/// matches _mm256_min_pd/_mm256_max_pd, and select() is a branchless
/// value pick just like blendv.
struct ScalarLane {
  double v = 0.0;

  static constexpr int kWidth = 1;
  using Mask = bool;

  static ScalarLane splat(double x) { return {x}; }
  static ScalarLane load(const double* p) { return {p[0]}; }
  static void store(double* p, ScalarLane a) { p[0] = a.v; }

  friend ScalarLane operator+(ScalarLane a, ScalarLane b) {
    return {a.v + b.v};
  }
  friend ScalarLane operator-(ScalarLane a, ScalarLane b) {
    return {a.v - b.v};
  }
  friend ScalarLane operator*(ScalarLane a, ScalarLane b) {
    return {a.v * b.v};
  }
  friend ScalarLane operator/(ScalarLane a, ScalarLane b) {
    return {a.v / b.v};
  }

  static Mask lt(ScalarLane a, ScalarLane b) { return a.v < b.v; }
  static Mask le(ScalarLane a, ScalarLane b) { return a.v <= b.v; }
  static Mask gt(ScalarLane a, ScalarLane b) { return a.v > b.v; }
  static Mask mask_and(Mask a, Mask b) { return a && b; }
  static ScalarLane select(Mask m, ScalarLane a, ScalarLane b) {
    return m ? a : b;
  }

  static ScalarLane floor(ScalarLane a) { return {std::floor(a.v)}; }
  static ScalarLane min(ScalarLane a, ScalarLane b) {
    return {(a.v < b.v) ? a.v : b.v};
  }
  static ScalarLane max(ScalarLane a, ScalarLane b) {
    return {(a.v > b.v) ? a.v : b.v};
  }

  /// Split a positive normal x into m·2^e with m in [0.5, 1); returns m
  /// and writes e (an exact small integer) through `exponent`.
  static ScalarLane frexp_norm(ScalarLane x, ScalarLane* exponent) {
    const std::uint64_t bits = std::bit_cast<std::uint64_t>(x.v);
    const auto biased = static_cast<std::int64_t>(bits >> 52);
    exponent->v = static_cast<double>(biased) - 1022.0;
    const std::uint64_t mbits =
        (bits & 0x000F'FFFF'FFFF'FFFFULL) | 0x3FE0'0000'0000'0000ULL;
    return {std::bit_cast<double>(mbits)};
  }

  /// 2^n for an integral-valued n in [-1022, 1023].
  static ScalarLane pow2i(ScalarLane n) {
    const auto ni = static_cast<std::int64_t>(n.v);
    return {std::bit_cast<double>(
        static_cast<std::uint64_t>(ni + 1023) << 52)};
  }
};

/// Cephes log on the reduced pair: x = m·2^e with m ∈ [0.5, 1).
template <class L>
[[gnu::always_inline]] inline L vlog_reduced(L m, L e) {
  using M = typename L::Mask;
  const M low = L::lt(m, L::splat(kSqrtHalf));
  e = L::select(low, e - L::splat(1.0), e);
  const L z = L::select(low, m + m - L::splat(1.0), m - L::splat(1.0));
  const L zz = z * z;
  const L z4 = zz * zz;

  // Estrin evaluation of the Cephes rationals. Without FMA every mul/add
  // is a 4-cycle step, and the hot loops are latency-bound on this chain:
  // Horner's 10-deep ladder costs ~40 cycles, the 3-level tree ~20. The
  // regrouping changes low-bit rounding versus Horner, which is fine —
  // the bit-identity contract is scalar vs AVX2, and both instantiate
  // this same expression tree.
  const L pa = L::splat(kLogP0) * z + L::splat(kLogP1);
  const L pb = L::splat(kLogP2) * z + L::splat(kLogP3);
  const L pc = L::splat(kLogP4) * z + L::splat(kLogP5);
  const L pn = pa * z4 + (pb * zz + pc);
  const L qa = z + L::splat(kLogQ0);
  const L qb = L::splat(kLogQ1) * z + L::splat(kLogQ2);
  const L qc = L::splat(kLogQ3) * z + L::splat(kLogQ4);
  const L qn = qa * z4 + (qb * zz + qc);

  L y = z * (zz * pn / qn);
  y = y - e * L::splat(kLn2Lo);
  y = y - L::splat(0.5) * zz;
  L r = z + y;
  r = r + e * L::splat(kLn2Hi);
  return r;
}

/// log(x) for x that is already positive, finite and normal — no
/// zero/negative/denormal handling. The hot Weibull reduction feeds it
/// 1−u ∈ [2^-53, 1], which always qualifies; everything else goes
/// through the full-domain vlog below.
template <class L>
[[gnu::always_inline]] inline L vlog_finite(L x) {
  L e = L::splat(0.0);
  const L m = L::frexp_norm(x, &e);
  return vlog_reduced(m, e);
}

/// Cephes log(x). Domain: x >= 0 and not NaN/inf. x == 0 (and any
/// negative garbage) returns -inf; denormals are pre-scaled so the
/// exponent extraction stays exact.
template <class L>
[[gnu::always_inline]] inline L vlog(L x) {
  using M = typename L::Mask;
  const L zero = L::splat(0.0);
  const M nonpos = L::le(x, zero);
  const M tiny = L::mask_and(L::gt(x, zero), L::lt(x, L::splat(kDblMin)));
  x = L::select(tiny, x * L::splat(0x1p54), x);

  L e = L::splat(0.0);
  const L m = L::frexp_norm(x, &e);
  e = L::select(tiny, e - L::splat(54.0), e);

  const L r = vlog_reduced(m, e);
  return L::select(nonpos, L::splat(-kInf), r);
}

/// Cephes exp(x). Flushes to 0 below kExpLo, saturates to +inf above
/// kExpHi; -inf and +inf inputs land on those masks. NaN stays NaN.
template <class L>
[[gnu::always_inline]] inline L vexp(L x) {
  using M = typename L::Mask;
  const M over = L::gt(x, L::splat(kExpHi));
  const M under = L::lt(x, L::splat(kExpLo));

  L n = L::floor(L::splat(kLog2E) * x + L::splat(0.5));
  // Clamp before the 2^n build so masked-out lanes (±inf, NaN) stay in
  // the representable exponent range; in-range lanes are unaffected.
  n = L::max(n, L::splat(-1022.0));
  n = L::min(n, L::splat(1023.0));
  x = x - n * L::splat(kLn2Hi);
  x = x + n * L::splat(kLn2Lo);

  // Estrin grouping, same rationale (and same caveat) as in vlog.
  const L xx = x * x;
  const L x4 = xx * xx;
  const L px = (L::splat(kExpP0) * x4 +
                (L::splat(kExpP1) * xx + L::splat(kExpP2))) *
               x;
  const L qx = (L::splat(kExpQ0) * xx + L::splat(kExpQ1)) * x4 +
               (L::splat(kExpQ2) * xx + L::splat(kExpQ3));

  L r = px / (qx - px);
  r = L::splat(1.0) + (r + r);
  r = r * L::pow2i(n);
  r = L::select(under, L::splat(0.0), r);
  return L::select(over, L::splat(kInf), r);
}

/// x^p as exp(p·log x); x == 0 → log -inf → exp 0 for p > 0.
template <class L>
[[gnu::always_inline]] inline L vpow(L x, L p) {
  return vexp(p * vlog(x));
}

/// One element of the Weibull first-failure reduction, in the β-power
/// domain: c_pow·(−log(1 − u)) with c_pow = (η/α)^β precomputed by the
/// caller. Since x ↦ x^{1/β} is monotone, the minimum over elements can
/// be taken here and raised to 1/β once per reduction — one log per
/// element instead of the two a log-domain min would need. u ∈ [0, 1)
/// keeps 1−u inside vlog_finite's normal-positive domain; u == 0 gives
/// −log(1) == 0, the zero failure time.
template <class L>
[[gnu::always_inline]] inline L weibull_elem(L u, L c_pow) {
  const L one_minus = L::splat(1.0) - u;
  return c_pow * (L::splat(0.0) - vlog_finite(one_minus));
}

// Scalar element helpers shared by both instantiations' tail loops.
inline double pow_1(double x, double p) {
  return vpow(ScalarLane{x}, ScalarLane{p}).v;
}
inline double exp_affine_1(double a, double w, double m) {
  return vexp(ScalarLane{m} * (ScalarLane{a} + ScalarLane{w})).v;
}
inline double weibull_elem_1(double u, double c_pow) {
  return weibull_elem(ScalarLane{u}, ScalarLane{c_pow}).v;
}

/// Σ x_i^p with the 4-lane reduction tree. V is either ScalarLane (the
/// vector loop compiles away and every element takes the tail path) or
/// the 4-wide AVX2 lane (the tail continues each lane's running sum).
template <class V>
double sum_pow_impl(const double* x, double p, std::size_t n) {
  static_assert(V::kWidth == 1 || V::kWidth == kTreeLanes);
  double lanes[kTreeLanes] = {0.0, 0.0, 0.0, 0.0};
  std::size_t i = 0;
  if constexpr (V::kWidth == kTreeLanes) {
    const V vp = V::splat(p);
    V acc = V::splat(0.0);
    for (; i + V::kWidth <= n; i += V::kWidth) {
      acc = acc + vpow(V::load(x + i), vp);
    }
    V::store(lanes, acc);
  }
  for (; i < n; ++i) {
    lanes[i % kTreeLanes] += pow_1(x[i], p);
  }
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

/// Σ exp(m·(a_i + w_i)) with the 4-lane reduction tree.
template <class V>
double sum_exp_affine_impl(const double* a, const double* w, double m,
                           std::size_t n) {
  static_assert(V::kWidth == 1 || V::kWidth == kTreeLanes);
  double lanes[kTreeLanes] = {0.0, 0.0, 0.0, 0.0};
  std::size_t i = 0;
  if constexpr (V::kWidth == kTreeLanes) {
    const V vm = V::splat(m);
    V acc = V::splat(0.0);
    for (; i + V::kWidth <= n; i += V::kWidth) {
      acc = acc + vexp(vm * (V::load(a + i) + V::load(w + i)));
    }
    V::store(lanes, acc);
  }
  for (; i < n; ++i) {
    lanes[i % kTreeLanes] += exp_affine_1(a[i], w[i], m);
  }
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

/// min_i c_pow_i·(−log(1 − u_i)). Min is exact, associative and
/// commutative over identical element values, so any fold order gives the
/// same bits — the tree fold below is fixed anyway for uniformity.
template <class V>
double weibull_min_impl(const double* u, const double* c_pow,
                        std::size_t n) {
  static_assert(V::kWidth == 1 || V::kWidth == kTreeLanes);
  double lanes[kTreeLanes] = {kInf, kInf, kInf, kInf};
  std::size_t i = 0;
  if constexpr (V::kWidth == kTreeLanes) {
    V acc = V::splat(kInf);
    for (; i + V::kWidth <= n; i += V::kWidth) {
      acc = V::min(acc, weibull_elem(V::load(u + i), V::load(c_pow + i)));
    }
    V::store(lanes, acc);
  }
  for (; i < n; ++i) {
    // Same operand order as V::min(acc, element) so garbage (NaN) inputs
    // degrade identically on both paths.
    const double s = weibull_elem_1(u[i], c_pow[i]);
    lanes[i % kTreeLanes] = (lanes[i % kTreeLanes] < s)
                                ? lanes[i % kTreeLanes]
                                : s;
  }
  const double m01 = (lanes[0] < lanes[1]) ? lanes[0] : lanes[1];
  const double m23 = (lanes[2] < lanes[3]) ? lanes[2] : lanes[3];
  return (m01 < m23) ? m01 : m23;
}

}  // namespace rota::kern::detail
