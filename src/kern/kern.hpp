#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

/// \file kern.hpp
/// Vectorized math kernels with a bit-compatible scalar fallback
/// (DESIGN.md §14). The hot loops of the reliability model and the wear
/// tracker run through this layer: an AVX2 translation unit and a plain
/// scalar one are compiled from the SAME templated core (kern_math.hpp),
/// so both execute the identical IEEE-754 operation sequence per element
/// and the identical 4-lane reduction tree per batch — the results are
/// bit-identical by construction, not by tolerance. Which path runs is
/// chosen once at startup: CMake's ROTA_SIMD option gates what is
/// compiled in, CPUID gates what the machine supports, and the ROTA_SIMD
/// environment variable (auto/avx2/off) can narrow the runtime choice
/// without a rebuild. Run manifests record both decisions as
/// kern.simd_compiled / kern.simd_active.
///
/// Floating-point batch kernels use log-domain arithmetic internally
/// (x^p = exp(p·log x)) with Cephes-style rational approximations whose
/// accuracy is a few ulp — callers that previously used std::pow see
/// value changes at that level, which every consumer tolerance already
/// covers. Integer kernels are exact.

namespace rota::kern {

/// Instruction-set implementations a binary can carry.
enum class Isa {
  kScalar,  ///< portable scalar core, always compiled
  kAvx2,    ///< 4-wide AVX2 core (no FMA), compiled when ROTA_SIMD allows
};

[[nodiscard]] std::string_view isa_name(Isa isa);

/// SIMD mode this binary was built with: "avx2" when the AVX2 translation
/// unit was compiled in (ROTA_SIMD=auto/avx2), "off" otherwise.
[[nodiscard]] std::string_view compiled_simd();

/// True when the running CPU reports AVX2 support.
[[nodiscard]] bool cpu_has_avx2();

/// True when the AVX2 path is both compiled in and supported by the CPU.
[[nodiscard]] bool avx2_available();

/// The implementation batch kernels currently dispatch to.
[[nodiscard]] Isa active_isa();

/// Override the dispatch decision (tests compare both paths in one
/// process; the bit-identity suite relies on this).
/// \pre the requested ISA is available in this binary on this CPU.
void force_isa(Isa isa);

// ---------------------------------------------------------------- batches
// All batch kernels follow the reduction-tree contract of DESIGN.md §14:
// element i feeds accumulator lane i mod 4 in ascending index order, and
// the final fold is (l0 + l1) + (l2 + l3) for sums and the analogous
// min-fold for minima, independent of the active ISA.

/// Σ x_i^p over n elements, computed as exp(p·log x_i) with x == 0
/// contributing exactly 0. Values must be non-negative and not NaN
/// (negative inputs would take the log of a negative number).
/// \pre p > 0, x non-null when n > 0.
[[nodiscard]] double sum_pow(const double* x, double p, std::size_t n);

/// Σ exp(m·(a_i + w_i)) over n elements. a_i == -inf (the log of a zero
/// activity) contributes exactly 0 for m > 0.
/// \pre a and w non-null when n > 0.
[[nodiscard]] double sum_exp_affine(const double* a, const double* w,
                                    double m, std::size_t n);

/// Weibull first-failure reduction in the β-power domain:
///   min_i ( c_pow_i · (−log(1 − u_i)) )
/// with u_i in [0, 1) and c_pow_i = (η/α_i)^β ≥ 0, finite, precomputed by
/// the caller (clamp an overflowed power to DBL_MAX). Because x ↦ x^{1/β}
/// is monotone, the caller recovers the sampled failure time as
/// pow1(result, 1/β) — one log per element here instead of the two a
/// log-domain min would spend. u_i == 0 contributes exactly 0 (a zero
/// failure time), matching the inverse-CDF sampler's u = 0 draw.
/// Returns +inf when n == 0.
/// \pre u and c_pow non-null when n > 0, every u_i in [0, 1), every
///      c_pow_i finite and non-negative.
[[nodiscard]] double weibull_min(const double* u, const double* c_pow,
                                 std::size_t n);

/// dst_i += src_i over n elements (exact; caller guarantees no overflow).
void add_i64(std::int64_t* dst, const std::int64_t* src, std::size_t n);

/// dst_i += value over n elements (exact; caller guarantees no overflow).
void add_scalar_i64(std::int64_t* dst, std::int64_t value, std::size_t n);

/// Extrema and sum of an int64 batch (min/max/sum are order-free, so this
/// is exact and trivially ISA-independent).
struct I64Stats {
  std::int64_t min = 0;
  std::int64_t max = 0;
  std::int64_t sum = 0;
};

/// Min, max and sum over n elements. The sum must fit int64 (the usage
/// tracker guarantees this via its overflow-checked allocation total).
/// \pre n > 0 and x non-null.
[[nodiscard]] I64Stats minmax_sum_i64(const std::int64_t* x, std::size_t n);

// --------------------------------------------------------- element ops
// Scalar instantiations of the same core the batch kernels run — never
// dispatched, so every build produces the same bits. Use these (not
// std::log/exp/pow) wherever a result must stay bit-identical to the
// batch kernels across ROTA_SIMD modes.

/// log(x) for x >= 0 (x == 0 gives -inf; denormals are exact).
[[nodiscard]] double log1(double x);

/// exp(x), flushing to 0 below -708 and to +inf above 709.
[[nodiscard]] double exp1(double x);

/// x^p for x >= 0 as exp(p·log x); x == 0 gives 0 for p > 0.
[[nodiscard]] double pow1(double x, double p);

namespace detail {

/// Function-pointer table one ISA translation unit fills in.
struct Kernels {
  double (*sum_pow)(const double*, double, std::size_t);
  double (*sum_exp_affine)(const double*, const double*, double, std::size_t);
  double (*weibull_min)(const double*, const double*, std::size_t);
  void (*add_i64)(std::int64_t*, const std::int64_t*, std::size_t);
  void (*add_scalar_i64)(std::int64_t*, std::int64_t, std::size_t);
  I64Stats (*minmax_sum_i64)(const std::int64_t*, std::size_t);
};

[[nodiscard]] const Kernels& scalar_kernels();
/// Defined only when the AVX2 TU is compiled in (ROTA_KERN_HAVE_AVX2).
[[nodiscard]] const Kernels& avx2_kernels();

}  // namespace detail

}  // namespace rota::kern
