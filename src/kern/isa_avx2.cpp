/// AVX2 instantiation of the kern math core. Compiled with -mavx2 (and
/// deliberately WITHOUT -mfma: fused ops would change the last ulp and
/// break the scalar/AVX2 bit-identity contract) only when ROTA_SIMD
/// allows it. The lane type below mirrors ScalarLane operation for
/// operation — see kern_math.hpp for the shared algorithms and
/// DESIGN.md §14 for the contract.
///
/// This is the one translation unit allowed to include <immintrin.h>
/// (enforced by the rota_lint simd-isolation rule).

#include <immintrin.h>

#include <cstring>

#include "kern/kern.hpp"
#include "kern/kern_math.hpp"

namespace rota::kern::detail {

namespace {

/// 4-wide double lane over __m256d. Masks are all-ones/all-zeros lane
/// patterns (_mm256_cmp_pd output) consumed by blendv.
struct Avx2Lane {
  __m256d v;

  static constexpr int kWidth = 4;
  using Mask = __m256d;

  static Avx2Lane splat(double x) { return {_mm256_set1_pd(x)}; }
  static Avx2Lane load(const double* p) { return {_mm256_loadu_pd(p)}; }
  static void store(double* p, Avx2Lane a) { _mm256_storeu_pd(p, a.v); }

  friend Avx2Lane operator+(Avx2Lane a, Avx2Lane b) {
    return {_mm256_add_pd(a.v, b.v)};
  }
  friend Avx2Lane operator-(Avx2Lane a, Avx2Lane b) {
    return {_mm256_sub_pd(a.v, b.v)};
  }
  friend Avx2Lane operator*(Avx2Lane a, Avx2Lane b) {
    return {_mm256_mul_pd(a.v, b.v)};
  }
  friend Avx2Lane operator/(Avx2Lane a, Avx2Lane b) {
    return {_mm256_div_pd(a.v, b.v)};
  }

  static Mask lt(Avx2Lane a, Avx2Lane b) {
    return _mm256_cmp_pd(a.v, b.v, _CMP_LT_OQ);
  }
  static Mask le(Avx2Lane a, Avx2Lane b) {
    return _mm256_cmp_pd(a.v, b.v, _CMP_LE_OQ);
  }
  static Mask gt(Avx2Lane a, Avx2Lane b) {
    return _mm256_cmp_pd(a.v, b.v, _CMP_GT_OQ);
  }
  static Mask mask_and(Mask a, Mask b) { return _mm256_and_pd(a, b); }
  static Avx2Lane select(Mask m, Avx2Lane a, Avx2Lane b) {
    return {_mm256_blendv_pd(b.v, a.v, m)};
  }

  static Avx2Lane floor(Avx2Lane a) { return {_mm256_floor_pd(a.v)}; }
  static Avx2Lane min(Avx2Lane a, Avx2Lane b) {
    return {_mm256_min_pd(a.v, b.v)};
  }
  static Avx2Lane max(Avx2Lane a, Avx2Lane b) {
    return {_mm256_max_pd(a.v, b.v)};
  }

  static Avx2Lane frexp_norm(Avx2Lane x, Avx2Lane* exponent) {
    const __m256i bits = _mm256_castpd_si256(x.v);
    const __m256i biased = _mm256_srli_epi64(bits, 52);
    // int64 → double via the 1.5·2^52 pivot: OR the (11-bit) exponent
    // into the pivot's mantissa and subtract the pivot — exact.
    const __m256d magic = _mm256_set1_pd(kMagic);
    const __m256d biased_d = _mm256_sub_pd(
        _mm256_castsi256_pd(
            _mm256_or_si256(biased, _mm256_castpd_si256(magic))),
        magic);
    exponent->v = _mm256_sub_pd(biased_d, _mm256_set1_pd(1022.0));
    const __m256i mbits = _mm256_or_si256(
        _mm256_and_si256(bits, _mm256_set1_epi64x(0x000F'FFFF'FFFF'FFFFLL)),
        _mm256_set1_epi64x(0x3FE0'0000'0000'0000LL));
    return {_mm256_castsi256_pd(mbits)};
  }

  static Avx2Lane pow2i(Avx2Lane n) {
    // double → int64 via the same pivot (|n| <= 1023 << 2^51, so n + pivot
    // stays in the pivot's binade and the integer difference is exact).
    const __m256d magic = _mm256_set1_pd(kMagic);
    const __m256i ni =
        _mm256_sub_epi64(_mm256_castpd_si256(_mm256_add_pd(n.v, magic)),
                         _mm256_castpd_si256(magic));
    const __m256i bits = _mm256_slli_epi64(
        _mm256_add_epi64(ni, _mm256_set1_epi64x(1023)), 52);
    return {_mm256_castsi256_pd(bits)};
  }
};

double sum_pow_avx2(const double* x, double p, std::size_t n) {
  return sum_pow_impl<Avx2Lane>(x, p, n);
}

double sum_exp_affine_avx2(const double* a, const double* w, double m,
                           std::size_t n) {
  return sum_exp_affine_impl<Avx2Lane>(a, w, m, n);
}

double weibull_min_avx2(const double* u, const double* c_pow,
                        std::size_t n) {
  return weibull_min_impl<Avx2Lane>(u, c_pow, n);
}

// memcpy in/out of __m256i keeps the int64 batches strict-aliasing clean;
// it compiles to vmovdqu.
__m256i load_i256(const std::int64_t* p) {
  __m256i out;
  std::memcpy(&out, p, sizeof out);
  return out;
}

void store_i256(std::int64_t* p, __m256i x) { std::memcpy(p, &x, sizeof x); }

void add_i64_avx2(std::int64_t* dst, const std::int64_t* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    store_i256(dst + i,
               _mm256_add_epi64(load_i256(dst + i), load_i256(src + i)));
  }
  for (; i < n; ++i) dst[i] += src[i];
}

void add_scalar_i64_avx2(std::int64_t* dst, std::int64_t value,
                         std::size_t n) {
  const __m256i vv = _mm256_set1_epi64x(value);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    store_i256(dst + i, _mm256_add_epi64(load_i256(dst + i), vv));
  }
  for (; i < n; ++i) dst[i] += value;
}

I64Stats minmax_sum_i64_avx2(const std::int64_t* x, std::size_t n) {
  I64Stats s{x[0], x[0], 0};
  std::size_t i = 0;
  if (n >= 4) {
    __m256i vmin = load_i256(x);
    __m256i vmax = vmin;
    __m256i vsum = _mm256_setzero_si256();
    for (; i + 4 <= n; i += 4) {
      const __m256i v = load_i256(x + i);
      vsum = _mm256_add_epi64(vsum, v);
      vmin = _mm256_blendv_epi8(vmin, v, _mm256_cmpgt_epi64(vmin, v));
      vmax = _mm256_blendv_epi8(vmax, v, _mm256_cmpgt_epi64(v, vmax));
    }
    std::int64_t lane_min[4];
    std::int64_t lane_max[4];
    std::int64_t lane_sum[4];
    store_i256(lane_min, vmin);
    store_i256(lane_max, vmax);
    store_i256(lane_sum, vsum);
    s = I64Stats{lane_min[0], lane_max[0], 0};
    for (int l = 0; l < 4; ++l) {
      if (lane_min[l] < s.min) s.min = lane_min[l];
      if (lane_max[l] > s.max) s.max = lane_max[l];
      s.sum += lane_sum[l];
    }
  }
  for (; i < n; ++i) {
    const std::int64_t v = x[i];
    if (v < s.min) s.min = v;
    if (v > s.max) s.max = v;
    s.sum += v;
  }
  return s;
}

}  // namespace

const Kernels& avx2_kernels() {
  static const Kernels kKernels{
      &sum_pow_avx2,        &sum_exp_affine_avx2,
      &weibull_min_avx2,
      &add_i64_avx2,        &add_scalar_i64_avx2,
      &minmax_sum_i64_avx2,
  };
  return kKernels;
}

}  // namespace rota::kern::detail
