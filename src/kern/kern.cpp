/// Kernel dispatch: picks the scalar or AVX2 implementation once, from
/// (a) what ROTA_SIMD compiled in, (b) what CPUID reports, and (c) an
/// optional ROTA_SIMD environment override (auto/avx2/off) for narrowing
/// the choice at runtime without a rebuild. force_isa() lets tests pin a
/// path and compare both in one process.

#include "kern/kern.hpp"

#include <atomic>
#include <cstdlib>
#include <string>

#include "util/check.hpp"

namespace rota::kern {

namespace {

#if defined(ROTA_KERN_HAVE_AVX2)
constexpr bool kAvx2Compiled = true;
#else
constexpr bool kAvx2Compiled = false;
#endif

std::atomic<const detail::Kernels*> g_kernels{nullptr};
std::atomic<Isa> g_isa{Isa::kScalar};

void install(Isa isa) {
  // Order matters for racing readers: publish the ISA tag first, then the
  // table with release semantics; active() acquires the table and only
  // then trusts the tag.
  g_isa.store(isa, std::memory_order_relaxed);
  g_kernels.store(isa == Isa::kAvx2
#if defined(ROTA_KERN_HAVE_AVX2)
                      ? &detail::avx2_kernels()
#else
                      ? nullptr  // unreachable: force_isa validates first
#endif
                      : &detail::scalar_kernels(),
                  std::memory_order_release);
}

/// One-time default selection. The ROTA_SIMD *environment variable* can
/// only narrow what the build compiled in: "off" forces scalar, "avx2"
/// requires the AVX2 path (throws when unavailable so a mis-deployed
/// binary fails loudly instead of silently slowing down), "auto" or
/// unset means use AVX2 when available.
Isa pick_default() {
  const char* env = std::getenv("ROTA_SIMD");
  const std::string mode = (env != nullptr) ? env : "auto";
  ROTA_REQUIRE(mode == "auto" || mode == "avx2" || mode == "off",
               "ROTA_SIMD environment override must be auto, avx2 or off, "
               "got '" + mode + "'");
  if (mode == "off") return Isa::kScalar;
  if (mode == "avx2") {
    ROTA_REQUIRE(avx2_available(),
                 kAvx2Compiled
                     ? "ROTA_SIMD=avx2 but this CPU does not support AVX2"
                     : "ROTA_SIMD=avx2 but this binary was built with "
                       "ROTA_SIMD=off");
    return Isa::kAvx2;
  }
  return avx2_available() ? Isa::kAvx2 : Isa::kScalar;
}

const detail::Kernels& active() {
  const detail::Kernels* k = g_kernels.load(std::memory_order_acquire);
  if (k != nullptr) return *k;
  // Racing first calls both compute the same default; the double store is
  // benign.
  install(pick_default());
  return *g_kernels.load(std::memory_order_acquire);
}

}  // namespace

std::string_view isa_name(Isa isa) {
  switch (isa) {
    case Isa::kScalar: return "scalar";
    case Isa::kAvx2: return "avx2";
  }
  ROTA_UNREACHABLE("unhandled Isa");
}

std::string_view compiled_simd() { return kAvx2Compiled ? "avx2" : "off"; }

bool cpu_has_avx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool avx2_available() { return kAvx2Compiled && cpu_has_avx2(); }

Isa active_isa() {
  (void)active();  // ensure the default is installed
  return g_isa.load(std::memory_order_relaxed);
}

void force_isa(Isa isa) {
  ROTA_REQUIRE(isa == Isa::kScalar || avx2_available(),
               "cannot force the AVX2 kernels: not compiled in or not "
               "supported by this CPU");
  install(isa);
}

double sum_pow(const double* x, double p, std::size_t n) {
  ROTA_REQUIRE(p > 0.0, "sum_pow exponent must be positive");
  ROTA_REQUIRE(n == 0 || x != nullptr, "sum_pow needs a non-null batch");
  return active().sum_pow(x, p, n);
}

double sum_exp_affine(const double* a, const double* w, double m,
                      std::size_t n) {
  ROTA_REQUIRE(n == 0 || (a != nullptr && w != nullptr),
               "sum_exp_affine needs non-null batches");
  return active().sum_exp_affine(a, w, m, n);
}

double weibull_min(const double* u, const double* c_pow, std::size_t n) {
  ROTA_REQUIRE(n == 0 || (u != nullptr && c_pow != nullptr),
               "weibull_min needs non-null batches");
  return active().weibull_min(u, c_pow, n);
}

void add_i64(std::int64_t* dst, const std::int64_t* src, std::size_t n) {
  ROTA_REQUIRE(n == 0 || (dst != nullptr && src != nullptr),
               "add_i64 needs non-null batches");
  active().add_i64(dst, src, n);
}

void add_scalar_i64(std::int64_t* dst, std::int64_t value, std::size_t n) {
  ROTA_REQUIRE(n == 0 || dst != nullptr,
               "add_scalar_i64 needs a non-null batch");
  active().add_scalar_i64(dst, value, n);
}

I64Stats minmax_sum_i64(const std::int64_t* x, std::size_t n) {
  ROTA_REQUIRE(n > 0 && x != nullptr,
               "minmax_sum_i64 needs a non-empty batch");
  return active().minmax_sum_i64(x, n);
}

}  // namespace rota::kern
