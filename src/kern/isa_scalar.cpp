/// Scalar instantiation of the kern math core — the always-available
/// fallback path, and the definition of the element ops (log1/exp1/pow1)
/// every build shares. Compiled with the baseline instruction set and
/// -ffp-contract=off, so its operation sequence is the bit-identity
/// reference the AVX2 TU must match.

#include "kern/kern.hpp"
#include "kern/kern_math.hpp"

namespace rota::kern::detail {

namespace {

double sum_pow_scalar(const double* x, double p, std::size_t n) {
  return sum_pow_impl<ScalarLane>(x, p, n);
}

double sum_exp_affine_scalar(const double* a, const double* w, double m,
                             std::size_t n) {
  return sum_exp_affine_impl<ScalarLane>(a, w, m, n);
}

double weibull_min_scalar(const double* u, const double* c_pow,
                          std::size_t n) {
  return weibull_min_impl<ScalarLane>(u, c_pow, n);
}

void add_i64_scalar(std::int64_t* dst, const std::int64_t* src,
                    std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] += src[i];
}

void add_scalar_i64_scalar(std::int64_t* dst, std::int64_t value,
                           std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] += value;
}

I64Stats minmax_sum_i64_scalar(const std::int64_t* x, std::size_t n) {
  I64Stats s{x[0], x[0], 0};
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t v = x[i];
    if (v < s.min) s.min = v;
    if (v > s.max) s.max = v;
    s.sum += v;
  }
  return s;
}

}  // namespace

const Kernels& scalar_kernels() {
  static const Kernels kKernels{
      &sum_pow_scalar,        &sum_exp_affine_scalar,
      &weibull_min_scalar,
      &add_i64_scalar,        &add_scalar_i64_scalar,
      &minmax_sum_i64_scalar,
  };
  return kKernels;
}

}  // namespace rota::kern::detail

namespace rota::kern {

double log1(double x) { return detail::vlog(detail::ScalarLane{x}).v; }

double exp1(double x) { return detail::vexp(detail::ScalarLane{x}).v; }

double pow1(double x, double p) {
  return detail::vpow(detail::ScalarLane{x}, detail::ScalarLane{p}).v;
}

}  // namespace rota::kern
