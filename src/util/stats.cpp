#include "util/stats.hpp"

#include <cmath>

#include "util/check.hpp"

namespace rota::util {

void RunningStats::add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  if (x < min_) min_ = x;
  if (x > max_) max_ = x;
}

double RunningStats::min() const {
  ROTA_REQUIRE(count_ > 0, "min of empty stats");
  return min_;
}

double RunningStats::max() const {
  ROTA_REQUIRE(count_ > 0, "max of empty stats");
  return max_;
}

double RunningStats::mean() const {
  ROTA_REQUIRE(count_ > 0, "mean of empty stats");
  return mean_;
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Summary summarize(const std::vector<double>& samples) {
  ROTA_REQUIRE(!samples.empty(), "summarize requires at least one sample");
  RunningStats s;
  for (double x : samples) s.add(x);
  return Summary{s.min(), s.max(), s.mean(), s.stddev()};
}

double geomean(const std::vector<double>& samples) {
  ROTA_REQUIRE(!samples.empty(), "geomean requires at least one sample");
  double log_sum = 0.0;
  for (double x : samples) {
    ROTA_REQUIRE(x > 0.0, "geomean requires positive samples");
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(samples.size()));
}

}  // namespace rota::util
