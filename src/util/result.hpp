#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <variant>

#include "util/check.hpp"

/// \file result.hpp
/// `Result<T>`: the non-throwing error channel of the versioned public API
/// (`rota::api::v1`) and the service layer (`rota::svc`). The historical
/// library surface reports contract violations by throwing
/// util::precondition_error; a long-lived service cannot let a malformed
/// request unwind the process, so every v1 entry point returns a
/// Result<T> carrying either the value or a structured {code, message}
/// error instead.
///
/// Accessor misuse (value() on a failed Result, error() on a success) is a
/// caller bug, not a data error, and still trips ROTA_REQUIRE — the
/// non-throwing guarantee covers the *data path*, not broken call sites.

namespace rota::util {

/// Stable error taxonomy shared by api::v1 and the svc request protocol.
/// Values are part of the wire format (rendered by to_string into JSON
/// replies), so entries are append-only.
enum class ErrorCode {
  kInvalidArgument,    ///< malformed input (bad flag, bad JSON, bad field)
  kNotFound,           ///< named entity (workload, policy run) absent
  kDeadlineExceeded,   ///< request expired before execution started
  kCancelled,          ///< cancellation token fired before execution
  kResourceExhausted,  ///< request larger than a configured limit
  kUnavailable,        ///< engine shutting down / not accepting work
  kIo,                 ///< artifact or cache file could not be written/read
  kInternal,           ///< invariant failure (a library bug)
  kOverloaded,         ///< engine queue full; shed — retry after backoff
};

[[nodiscard]] std::string_view to_string(ErrorCode code);

/// One structured error: a stable code plus a human-readable message.
struct Error {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
};

/// Value-or-Error sum type. Construction from T or Error is implicit so
/// `return some_value;` and `return Error{...};` both read naturally.
template <typename T>
class Result {
 public:
  Result(T value) : state_(std::move(value)) {}              // NOLINT
  Result(Error error) : state_(std::move(error)) {}          // NOLINT
  Result(ErrorCode code, std::string message)
      : state_(Error{code, std::move(message)}) {}

  [[nodiscard]] bool ok() const { return state_.index() == 0; }
  explicit operator bool() const { return ok(); }

  /// The held value. \pre ok()
  [[nodiscard]] const T& value() const& {
    ROTA_REQUIRE(ok(), "Result::value() on an error: " + error().message);
    return std::get<0>(state_);
  }
  [[nodiscard]] T& value() & {
    ROTA_REQUIRE(ok(), "Result::value() on an error: " + error().message);
    return std::get<0>(state_);
  }
  /// Move the value out. \pre ok()
  [[nodiscard]] T&& take() && {
    ROTA_REQUIRE(ok(), "Result::take() on an error: " + error().message);
    return std::get<0>(std::move(state_));
  }

  /// The held error. \pre !ok()
  [[nodiscard]] const Error& error() const {
    ROTA_REQUIRE(!ok(), "Result::error() on a success value");
    return std::get<1>(state_);
  }

 private:
  std::variant<T, Error> state_;
};

/// Result<> for operations with no payload.
struct Unit {};
using Status = Result<Unit>;

inline std::string_view to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kInvalidArgument:
      return "invalid_argument";
    case ErrorCode::kNotFound:
      return "not_found";
    case ErrorCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case ErrorCode::kCancelled:
      return "cancelled";
    case ErrorCode::kResourceExhausted:
      return "resource_exhausted";
    case ErrorCode::kUnavailable:
      return "unavailable";
    case ErrorCode::kIo:
      return "io_error";
    case ErrorCode::kInternal:
      return "internal";
    case ErrorCode::kOverloaded:
      return "overloaded";
  }
  ROTA_UNREACHABLE("unhandled ErrorCode");
}

}  // namespace rota::util
