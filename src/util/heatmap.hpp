#pragma once

#include <cstdint>
#include <string>

#include "util/grid.hpp"

/// \file heatmap.hpp
/// Rendering of PE usage heatmaps (Figs. 3 and 6c–e of the paper) as
/// ASCII shade maps for terminal output and binary PGM images for offline
/// inspection, so no external plotting stack is needed.

namespace rota::util {

/// Render a grid of non-negative values as an ASCII heatmap.
///
/// Values are normalized to the grid's max; row h-1 is printed first so the
/// lower-left origin of the PE array appears at the bottom-left of the text,
/// matching the paper's figures. Each cell is drawn with a shade from
/// " .:-=+*#%@" (light → heavy usage).
[[nodiscard]] std::string ascii_heatmap(const Grid<double>& values);

/// Convenience overload for integer usage counters.
[[nodiscard]] std::string ascii_heatmap(const Grid<std::int64_t>& values);

/// Render the *deviation* structure of a nearly-level grid: values are
/// normalized between the grid's min and max instead of 0 and max, so a
/// well-leveled wear map (where every absolute value is within a fraction
/// of a percent of the mean) still shows where the residual peaks sit.
/// A grid with max == min renders as all mid-shade.
[[nodiscard]] std::string ascii_heatmap_deviation(const Grid<std::int64_t>& values);

/// Write an 8-bit binary PGM (P5) image of the grid, normalized to its max;
/// one pixel per PE, row h-1 at the top (image convention). Returns false
/// if the file could not be opened.
[[nodiscard]] bool write_pgm(const Grid<double>& values, const std::string& path);

}  // namespace rota::util
