#pragma once

#include <cstdint>

#include "util/check.hpp"

/// \file rng.hpp
/// Deterministic, seedable PRNG (splitmix64) used by extension policies and
/// property-based tests. std::mt19937 is avoided so results are identical
/// across standard-library implementations.

namespace rota::util {

/// splitmix64: tiny, fast, and statistically sound for simulation use.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). \pre bound > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    ROTA_REQUIRE(bound > 0, "next_below bound must be positive");
    // Plain modulo reduction: the modulo bias is at most bound/2^64, far
    // below anything observable at the array sizes simulated here, and it
    // keeps the header free of non-standard 128-bit arithmetic.
    return next() % bound;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Raw generator state, for checkpoint serialization. Restoring via
  /// set_state() resumes the stream exactly where it left off.
  [[nodiscard]] std::uint64_t state() const { return state_; }
  void set_state(std::uint64_t state) { state_ = state; }

 private:
  std::uint64_t state_;
};

}  // namespace rota::util
