#pragma once

#include <cstdint>
#include <vector>

#include "util/check.hpp"

/// \file math.hpp
/// Integer and special-function helpers shared by the scheduler, the
/// wear-leveling arithmetic (Eqs. 5–11 of the paper) and the Weibull
/// reliability model.

namespace rota::util {

/// Greatest common divisor of two positive integers.
/// \pre a > 0 && b > 0
[[nodiscard]] std::int64_t gcd(std::int64_t a, std::int64_t b);

/// Least common multiple of two positive integers. Throws
/// rota::util::invariant_error instead of wrapping when the result
/// exceeds int64 (see util/safe_math.hpp).
/// \pre a > 0 && b > 0
[[nodiscard]] std::int64_t lcm(std::int64_t a, std::int64_t b);

/// ceil(a / b) for positive integers.
/// \pre a >= 0 && b > 0
[[nodiscard]] std::int64_t ceil_div(std::int64_t a, std::int64_t b);

/// Smallest multiple of `multiple` that is >= `value`.
/// \pre value >= 0 && multiple > 0
[[nodiscard]] std::int64_t round_up(std::int64_t value, std::int64_t multiple);

/// Append all positive divisors of `n`, ascending, to `out` — any
/// random-access container with push_back (std::vector, ArenaVector).
/// Allocation policy is the container's: callers on a bump arena pay no
/// heap traffic. \pre n > 0
template <typename Container>
void divisors_into(std::int64_t n, Container& out) {
  ROTA_REQUIRE(n > 0, "divisors argument must be positive");
  const std::size_t start = out.size();
  for (std::int64_t d = 1; d * d <= n; ++d) {
    if (n % d == 0) out.push_back(d);
  }
  // Mirror the small divisors into the large cofactors; walking the
  // sources in descending order keeps the output ascending, and the
  // square root (its own cofactor) is emitted once.
  for (std::size_t i = out.size(); i > start; --i) {
    const std::int64_t d = out[i - 1];
    if (d != n / d) out.push_back(n / d);
  }
}

/// All positive divisors of `n`, ascending.
/// \pre n > 0
[[nodiscard]] std::vector<std::int64_t> divisors(std::int64_t n);

/// Γ(1 + 1/β): the mean of a unit-scale Weibull distribution with shape β.
/// \pre beta > 0
[[nodiscard]] double weibull_mean_factor(double beta);

/// Population mean of a container of doubles (0 for an empty span).
[[nodiscard]] double mean(const std::vector<double>& v);

/// The p-norm generalized mean used by the serial-chain MTTF expression:
/// (Σ v_i^p)^(1/p). Values must be non-negative.
[[nodiscard]] double power_sum_root(const std::vector<double>& v, double p);

}  // namespace rota::util
