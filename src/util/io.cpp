#include "util/io.hpp"

#include <fstream>

#include "util/check.hpp"

namespace rota::util {

void write_text_file(const std::string& path, std::string_view content) {
  std::ofstream file(path, std::ios::binary);
  if (!file) throw io_error("could not open " + path + " for writing");
  file.write(content.data(),
             static_cast<std::streamsize>(content.size()));
  file.flush();
  if (!file) throw io_error("write failed (disk full?) for " + path);
}

}  // namespace rota::util
