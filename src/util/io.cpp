#include "util/io.hpp"

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#if !defined(_WIN32)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "util/check.hpp"
#include "util/thread_annotations.hpp"

namespace rota::util {

namespace {

/// The installed hook plus a relaxed-atomic armed flag so the production
/// fast path is one load and a branch (same discipline as obs metrics).
/// NOLINTNEXTLINE(cppcoreguidelines-avoid-non-const-global-variables)
std::atomic<bool> g_hook_armed{false};
/// NOLINTNEXTLINE(cppcoreguidelines-avoid-non-const-global-variables)
util::Mutex g_hook_mu;
/// NOLINTNEXTLINE(cppcoreguidelines-avoid-non-const-global-variables)
IoFaultHook g_hook ROTA_GUARDED_BY(g_hook_mu);

void run_hook(IoOp op, const std::string& path, std::string* data) {
  if (!g_hook_armed.load(std::memory_order_relaxed)) return;
  IoFaultHook hook;
  {
    const util::MutexLock lock(g_hook_mu);
    hook = g_hook;
  }
  if (hook) hook(op, path, data);
}

/// fsync a file that was just written (POSIX; no-op elsewhere). The
/// stream must already be closed so all buffered bytes reached the OS.
void fsync_path(const std::string& path, bool directory) {
#if !defined(_WIN32)
  const int flags = directory ? (O_RDONLY | O_DIRECTORY) : O_RDONLY;
  const int fd = ::open(path.c_str(), flags);  // NOLINT(cppcoreguidelines-pro-type-vararg)
  if (fd < 0) {
    // A filesystem that cannot open directories read-only (or a missing
    // parent) degrades to a non-durable rename, matching write_text_file.
    return;
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0 && !directory)
    throw io_error("fsync failed for " + path);
#else
  (void)path;
  (void)directory;
#endif
}

void write_stream_checked(const std::string& path, std::string_view content) {
  std::ofstream file(path, std::ios::binary);
  if (!file) throw io_error("could not open " + path + " for writing");
  file.write(content.data(),
             static_cast<std::streamsize>(content.size()));
  file.flush();
  if (!file) throw io_error("write failed (disk full?) for " + path);
}

}  // namespace

void set_io_fault_hook(IoFaultHook hook) {
  const util::MutexLock lock(g_hook_mu);
  g_hook = std::move(hook);
  g_hook_armed.store(static_cast<bool>(g_hook), std::memory_order_relaxed);
}

bool io_fault_hook_armed() {
  return g_hook_armed.load(std::memory_order_relaxed);
}

void write_text_file(const std::string& path, std::string_view content) {
  run_hook(IoOp::kWrite, path, nullptr);
  write_stream_checked(path, content);
}

void write_file_atomic(const std::string& path, std::string_view content) {
  run_hook(IoOp::kWrite, path, nullptr);
  const std::string tmp = path + ".tmp";
  try {
    write_stream_checked(tmp, content);
    fsync_path(tmp, /*directory=*/false);
    std::filesystem::rename(tmp, path);
  } catch (const std::filesystem::filesystem_error& e) {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    throw io_error("could not commit " + path + ": " + e.what());
  } catch (...) {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    throw;
  }
  const std::string parent =
      std::filesystem::path(path).parent_path().string();
  fsync_path(parent.empty() ? "." : parent, /*directory=*/true);
}

std::string read_text_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw io_error("could not open " + path + " for reading");
  std::ostringstream content;
  content << file.rdbuf();
  if (file.bad()) throw io_error("read failed for " + path);
  std::string text = std::move(content).str();
  run_hook(IoOp::kRead, path, &text);
  return text;
}

std::optional<std::string> read_text_file_if_exists(const std::string& path) {
  {
    std::error_code ec;
    if (!std::filesystem::exists(path, ec)) return std::nullopt;
  }
  return read_text_file(path);
}

}  // namespace rota::util
