#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <utility>

#include "util/check.hpp"
#include "util/rng.hpp"

/// \file retry.hpp
/// Retry-with-exponential-backoff for transient I/O failures. Disk-cache
/// reads/writes (src/svc) and checkpoint persistence (src/fi) wrap their
/// file operations in retry_io so a transient error — NFS hiccup, AV scan
/// holding a handle, an injected fi fault — costs a few milliseconds
/// instead of a lost cache tier. Delays grow exponentially from
/// `base_delay_ms`, are capped at `max_delay_ms`, and carry deterministic
/// jitter (seeded splitmix64, so tests are reproducible): attempt k waits
/// uniformly in [d/2, d] for d = min(max, base * 2^(k-1)).

namespace rota::util {

struct RetryOptions {
  /// Total attempts including the first (1 = no retry).
  int max_attempts = 4;
  std::int64_t base_delay_ms = 1;
  std::int64_t max_delay_ms = 50;
  /// Seeds the jitter stream; the per-call salt decorrelates sites.
  std::uint64_t jitter_seed = 0x726f5449;  // "roTI"
};

/// The backoff delay before retry number `attempt` (1-based: the wait
/// after the attempt-th failure). Deterministic per (options, salt,
/// attempt). \pre attempt >= 1.
[[nodiscard]] inline std::int64_t backoff_delay_ms(const RetryOptions& options,
                                                   int attempt,
                                                   std::uint64_t salt) {
  ROTA_REQUIRE(attempt >= 1, "backoff attempt numbering is 1-based");
  std::int64_t delay = options.base_delay_ms;
  for (int k = 1; k < attempt && delay < options.max_delay_ms; ++k)
    delay *= 2;
  if (delay > options.max_delay_ms) delay = options.max_delay_ms;
  if (delay <= 0) return 0;
  // Jitter into [delay/2, delay] so concurrent retriers decorrelate.
  SplitMix64 rng(options.jitter_seed ^ salt ^
                 (static_cast<std::uint64_t>(attempt) << 32));
  const std::int64_t half = delay / 2;
  return half + static_cast<std::int64_t>(
                    rng.next_below(static_cast<std::uint64_t>(delay - half + 1)));
}

/// Invoked after each failed attempt (before the backoff sleep) with the
/// 1-based attempt number and the error; callers hang metrics on it.
using RetryObserver = std::function<void(int attempt, const io_error& error)>;

/// Run `fn`, retrying on util::io_error with capped exponential backoff.
/// Rethrows the last error once options.max_attempts is exhausted. Any
/// other exception type propagates immediately (only I/O is considered
/// transient). `salt` decorrelates the jitter of distinct call sites —
/// pass a stable hash of the file path.
template <typename Fn>
auto retry_io(const RetryOptions& options, std::uint64_t salt, Fn&& fn,
              const RetryObserver& on_retry = {}) -> decltype(fn()) {
  ROTA_REQUIRE(options.max_attempts >= 1, "need at least one attempt");
  for (int attempt = 1;; ++attempt) {
    try {
      return fn();
    } catch (const io_error& e) {
      if (attempt >= options.max_attempts) throw;
      if (on_retry) on_retry(attempt, e);
      const std::int64_t delay = backoff_delay_ms(options, attempt, salt);
      if (delay > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    }
  }
}

}  // namespace rota::util
