#pragma once

#include <cstddef>
#include <vector>

#include "util/check.hpp"

/// \file grid.hpp
/// A dense 2-D array addressed as (column, row), matching the paper's PE
/// coordinate convention: column `i` runs along the array width `w`
/// (horizontal) and row `j` along the height `h` (vertical), with (0,0)
/// at the lower-left corner where the baseline anchors utilization spaces.

namespace rota::util {

template <typename T>
class Grid {
 public:
  Grid() = default;

  /// Construct a width×height grid with every cell set to `init`.
  Grid(std::size_t width, std::size_t height, T init = T{})
      : width_(width), height_(height), cells_(width * height, init) {
    ROTA_REQUIRE(width > 0 && height > 0, "grid dimensions must be positive");
  }

  [[nodiscard]] std::size_t width() const { return width_; }
  [[nodiscard]] std::size_t height() const { return height_; }
  [[nodiscard]] std::size_t size() const { return cells_.size(); }
  [[nodiscard]] bool empty() const { return cells_.empty(); }

  /// Cell accessor; col in [0, width), row in [0, height).
  T& at(std::size_t col, std::size_t row) {
    ROTA_REQUIRE(col < width_ && row < height_, "grid index out of range");
    return cells_[row * width_ + col];
  }
  [[nodiscard]] const T& at(std::size_t col, std::size_t row) const {
    ROTA_REQUIRE(col < width_ && row < height_, "grid index out of range");
    return cells_[row * width_ + col];
  }

  /// Unchecked accessor for hot loops; same addressing as at().
  T& operator()(std::size_t col, std::size_t row) {
    return cells_[row * width_ + col];
  }
  const T& operator()(std::size_t col, std::size_t row) const {
    return cells_[row * width_ + col];
  }

  void fill(T value) { cells_.assign(cells_.size(), value); }

  /// Row-major backing store (row 0 first).
  [[nodiscard]] const std::vector<T>& cells() const { return cells_; }
  std::vector<T>& cells() { return cells_; }

  friend bool operator==(const Grid& a, const Grid& b) {
    return a.width_ == b.width_ && a.height_ == b.height_ &&
           a.cells_ == b.cells_;
  }

 private:
  std::size_t width_ = 0;
  std::size_t height_ = 0;
  std::vector<T> cells_;
};

}  // namespace rota::util
