#include "util/heatmap.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace rota::util {

namespace {

constexpr char kShades[] = " .:-=+*#%@";
constexpr int kShadeCount = 10;

char shade_for(double value, double vmax) {
  if (vmax <= 0.0) return kShades[0];
  double norm = std::clamp(value / vmax, 0.0, 1.0);
  int idx = static_cast<int>(norm * (kShadeCount - 1) + 0.5);
  return kShades[idx];
}

double grid_max(const Grid<double>& g) {
  double vmax = 0.0;
  for (double v : g.cells()) vmax = std::max(vmax, v);
  return vmax;
}

}  // namespace

std::string ascii_heatmap(const Grid<double>& values) {
  const double vmax = grid_max(values);
  std::ostringstream os;
  for (std::size_t r = values.height(); r-- > 0;) {
    for (std::size_t c = 0; c < values.width(); ++c) {
      os << shade_for(values(c, r), vmax) << ' ';
    }
    os << '\n';
  }
  os << "scale: ' '=0";
  os << "  '@'=max(" << vmax << ")\n";
  return os.str();
}

std::string ascii_heatmap(const Grid<std::int64_t>& values) {
  Grid<double> d(values.width(), values.height());
  for (std::size_t r = 0; r < values.height(); ++r)
    for (std::size_t c = 0; c < values.width(); ++c)
      d(c, r) = static_cast<double>(values(c, r));
  return ascii_heatmap(d);
}

std::string ascii_heatmap_deviation(const Grid<std::int64_t>& values) {
  std::int64_t lo = values.cells().empty() ? 0 : values.cells().front();
  std::int64_t hi = lo;
  for (std::int64_t v : values.cells()) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double span = static_cast<double>(hi - lo);
  std::ostringstream os;
  for (std::size_t r = values.height(); r-- > 0;) {
    for (std::size_t c = 0; c < values.width(); ++c) {
      const double norm =
          span > 0.0
              ? static_cast<double>(values(c, r) - lo) / span
              : 0.5;
      const int idx = static_cast<int>(norm * (kShadeCount - 1) + 0.5);
      os << kShades[idx] << ' ';
    }
    os << '\n';
  }
  os << "scale: ' '=min(" << lo << ")  '@'=max(" << hi << ")\n";
  return os.str();
}

bool write_pgm(const Grid<double>& values, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  const double vmax = grid_max(values);
  out << "P5\n"
      << values.width() << ' ' << values.height() << "\n255\n";
  for (std::size_t r = values.height(); r-- > 0;) {
    for (std::size_t c = 0; c < values.width(); ++c) {
      double norm = vmax > 0.0 ? std::clamp(values(c, r) / vmax, 0.0, 1.0)
                               : 0.0;
      out.put(static_cast<char>(static_cast<unsigned char>(norm * 255.0)));
    }
  }
  return static_cast<bool>(out);
}

}  // namespace rota::util
