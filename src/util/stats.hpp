#pragma once

#include <cstdint>
#include <limits>
#include <vector>

/// \file stats.hpp
/// Streaming and batch summary statistics used by the evaluation harness.

namespace rota::util {

/// Welford-style streaming accumulator for min/max/mean/stddev.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::int64_t count() const { return count_; }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;
  /// Population variance (n divisor); 0 with fewer than 2 samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Summary of a batch of samples.
struct Summary {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
};

/// Summarize a non-empty vector of samples.
[[nodiscard]] Summary summarize(const std::vector<double>& samples);

/// Geometric mean of strictly positive samples.
[[nodiscard]] double geomean(const std::vector<double>& samples);

}  // namespace rota::util
