#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/check.hpp"

/// \file arena.hpp
/// Bump allocator for short-lived, same-lifetime allocations — the
/// mapper's per-layer-search scratch (DESIGN.md §14). An Arena hands out
/// pointers by bumping an offset through a chain of geometrically growing
/// blocks; individual frees are no-ops and reset() rewinds the whole arena
/// in O(1) while retaining the blocks, so a steady-state search loop stops
/// touching the general-purpose heap entirely. Not thread-safe: one arena
/// per thread (or per call).

namespace rota::util {

class Arena {
 public:
  explicit Arena(std::size_t first_block_bytes = 4096)
      : first_block_bytes_(first_block_bytes) {
    ROTA_REQUIRE(first_block_bytes > 0, "arena block size must be positive");
  }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Pointer to `bytes` bytes aligned to `align` (a power of two). The
  /// storage lives until reset() or destruction; there is no per-pointer
  /// free.
  void* allocate(std::size_t bytes, std::size_t align) {
    ROTA_REQUIRE(align > 0 && (align & (align - 1)) == 0,
                 "arena alignment must be a power of two");
    if (bytes == 0) bytes = 1;
    for (;;) {
      if (current_ < blocks_.size()) {
        const Block& b = blocks_[current_];
        const auto base = reinterpret_cast<std::uintptr_t>(b.data.get());
        const std::uintptr_t aligned =
            (base + offset_ + align - 1) & ~static_cast<std::uintptr_t>(align - 1);
        const std::size_t end = static_cast<std::size_t>(aligned - base) + bytes;
        if (end <= b.size) {
          offset_ = end;
          return reinterpret_cast<void*>(aligned);
        }
        // Block exhausted (the remainder is abandoned — blocks double, so
        // the waste is bounded by a constant factor). Try the next one,
        // which reset() may have retained.
        ++current_;
        offset_ = 0;
        continue;
      }
      grow(bytes + align);
    }
  }

  /// Rewind to empty in O(1), retaining every block for reuse. All
  /// pointers previously handed out become dangling; containers built on
  /// this arena must be destroyed first.
  void reset() {
    current_ = 0;
    offset_ = 0;
  }

  /// Total bytes of backing storage currently reserved.
  [[nodiscard]] std::size_t bytes_reserved() const {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  void grow(std::size_t at_least) {
    std::size_t size =
        blocks_.empty() ? first_block_bytes_ : blocks_.back().size * 2;
    if (size < at_least) size = at_least;
    blocks_.push_back(Block{std::make_unique<std::byte[]>(size), size});
    current_ = blocks_.size() - 1;
    offset_ = 0;
  }

  std::size_t first_block_bytes_;
  std::vector<Block> blocks_;
  std::size_t current_ = 0;  ///< block being bumped (== blocks_.size() when empty)
  std::size_t offset_ = 0;   ///< bump offset into blocks_[current_]
};

/// Standard-allocator adapter so STL containers draw from an Arena.
/// deallocate() is a no-op; memory is reclaimed by Arena::reset(). The
/// referenced arena must outlive every container using it.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;
  using propagate_on_container_copy_assignment = std::true_type;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;
  using is_always_equal = std::false_type;

  explicit ArenaAllocator(Arena& arena) : arena_(&arena) {}

  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }

  void deallocate(T*, std::size_t) {}

  [[nodiscard]] Arena* arena() const { return arena_; }

  template <typename U>
  bool operator==(const ArenaAllocator<U>& other) const {
    return arena_ == other.arena();
  }

 private:
  Arena* arena_;
};

/// A std::vector whose storage comes from an Arena. Construct with
/// `ArenaVector<T> v(ArenaAllocator<T>(arena));`.
template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

}  // namespace rota::util
