#include "util/csv.hpp"

#include "util/check.hpp"

namespace rota::util {

std::string csv_escape(const std::string& field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(std::ostream& out, const std::vector<std::string>& headers,
                     std::string sink_name)
    : out_(out), width_(headers.size()), sink_name_(std::move(sink_name)) {
  ROTA_REQUIRE(width_ > 0, "csv needs at least one column");
  emit(headers);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  ROTA_REQUIRE(cells.size() == width_, "csv row width must match header");
  emit(cells);
}

void CsvWriter::emit(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    out_ << csv_escape(cells[i]);
    if (i + 1 != cells.size()) out_ << ',';
  }
  out_ << '\n';
  if (!out_)
    throw io_error("csv write failed" +
                   (sink_name_.empty() ? std::string(" (stream error)")
                                       : " for " + sink_name_));
}

}  // namespace rota::util
