#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

/// \file thread_annotations.hpp
/// The capability vocabulary for compile-time concurrency analysis
/// (DESIGN.md §12). Under clang, the ROTA_* macros expand to the
/// thread-safety-analysis attributes, so the `thread-safety` preset
/// (`-Wthread-safety -Wthread-safety-beta -Werror`) turns a missing lock
/// into a build break; under GCC/MSVC they expand to nothing and the
/// wrappers below are plain std::mutex / std::condition_variable with
/// zero overhead.
///
/// Usage discipline across the repo:
///
///   - every mutex is a util::Mutex, every lock a util::MutexLock, every
///     condition variable a util::CondVar;
///   - every field a mutex guards carries ROTA_GUARDED_BY(mu);
///   - condition-variable waits are explicit while-loops in the caller
///     (`while (!pred) cv.wait(lock, mu);`), never predicate lambdas —
///     the analysis checks the predicate reads where the capability is
///     visibly held;
///   - state readable from a signal handler is *not* a capability: it is
///     a lock-free std::atomic with a "signal-context" comment, and the
///     handler itself is checked by the rota_lint signal-safety rule
///     (tools/rota_lint.py), not by this header.
///
/// The macro set mirrors the clang documentation's canonical names with a
/// ROTA_ prefix so future subsystems (sharded server, fleet simulator)
/// share one vocabulary.

#if defined(__clang__) && defined(__has_attribute)
#define ROTA_THREAD_ANNOTATION_IMPL(x) __attribute__((x))
#else
#define ROTA_THREAD_ANNOTATION_IMPL(x)  // no-op outside clang
#endif

/// A type that acts as a lockable capability (mutexes).
#define ROTA_CAPABILITY(x) ROTA_THREAD_ANNOTATION_IMPL(capability(x))

/// An RAII type that acquires a capability at construction and releases
/// it at destruction.
#define ROTA_SCOPED_CAPABILITY ROTA_THREAD_ANNOTATION_IMPL(scoped_lockable)

/// Data member readable/writable only while `x` is held.
#define ROTA_GUARDED_BY(x) ROTA_THREAD_ANNOTATION_IMPL(guarded_by(x))

/// Pointer member whose *pointee* is guarded by `x`.
#define ROTA_PT_GUARDED_BY(x) ROTA_THREAD_ANNOTATION_IMPL(pt_guarded_by(x))

/// Function that must be called with the capabilities held (and does not
/// release them).
#define ROTA_REQUIRES(...) \
  ROTA_THREAD_ANNOTATION_IMPL(requires_capability(__VA_ARGS__))

/// Function that acquires the capabilities and holds them on return.
#define ROTA_ACQUIRE(...) \
  ROTA_THREAD_ANNOTATION_IMPL(acquire_capability(__VA_ARGS__))

/// Function that releases the capabilities (which must be held on entry).
#define ROTA_RELEASE(...) \
  ROTA_THREAD_ANNOTATION_IMPL(release_capability(__VA_ARGS__))

/// Function that acquires the capability only when returning `ret`.
#define ROTA_TRY_ACQUIRE(ret, ...) \
  ROTA_THREAD_ANNOTATION_IMPL(try_acquire_capability(ret, __VA_ARGS__))

/// Function that must NOT be called while the capabilities are held
/// (deadlock / double-lock documentation).
#define ROTA_EXCLUDES(...) \
  ROTA_THREAD_ANNOTATION_IMPL(locks_excluded(__VA_ARGS__))

/// Declares a lock-ordering edge: this capability must be acquired after
/// the listed ones.
#define ROTA_ACQUIRED_AFTER(...) \
  ROTA_THREAD_ANNOTATION_IMPL(acquired_after(__VA_ARGS__))

/// Declares a lock-ordering edge: this capability must be acquired before
/// the listed ones.
#define ROTA_ACQUIRED_BEFORE(...) \
  ROTA_THREAD_ANNOTATION_IMPL(acquired_before(__VA_ARGS__))

/// Function returning a reference to the capability guarding its result.
#define ROTA_RETURN_CAPABILITY(x) \
  ROTA_THREAD_ANNOTATION_IMPL(lock_returned(x))

/// Escape hatch: the analysis skips this function entirely. Every use
/// carries a comment saying why (same policy as NOLINT).
#define ROTA_NO_THREAD_SAFETY_ANALYSIS \
  ROTA_THREAD_ANNOTATION_IMPL(no_thread_safety_analysis)

namespace rota::util {

/// std::mutex as a named capability. Annotation-transparent drop-in: the
/// analysis sees acquire/release through the attributes; the generated
/// code is identical to using std::mutex directly.
class ROTA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ROTA_ACQUIRE() { mu_.lock(); }
  void unlock() ROTA_RELEASE() { mu_.unlock(); }
  bool try_lock() ROTA_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

/// RAII scoped capability over a Mutex. Relockable (unlock()/lock()), so
/// it covers both the lock_guard and the unique_lock idioms; CondVar can
/// wait on it.
class ROTA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ROTA_ACQUIRE(mu) : lock_(mu.mu_) {}
  /// Releases only if still held (~unique_lock checks ownership). An
  /// empty body, not `= default`: attributes on defaulted members parse
  /// differently across clang versions, and the analysis needs
  /// release_capability attached here.
  ~MutexLock() ROTA_RELEASE() {}
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Manual early release (the destructor then does nothing).
  void unlock() ROTA_RELEASE() { lock_.unlock(); }
  /// Re-acquire after an unlock().
  void lock() ROTA_ACQUIRE() { lock_.lock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// std::condition_variable bound to the annotated wrappers. wait() takes
/// both the held lock and the Mutex it holds so the analysis can check
/// the capability at every wait site; callers spell the predicate as an
/// explicit while-loop around wait() (see file comment).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically release `lock` — which must be held and have been
  /// constructed over `mu` — block, then re-acquire before returning.
  void wait(MutexLock& lock, Mutex& mu) ROTA_REQUIRES(mu) {
    static_cast<void>(mu);
    cv_.wait(lock.lock_);
  }

  /// wait() with a timeout; returns std::cv_status::timeout when the
  /// duration elapsed without a notification. Same capability contract
  /// and explicit-while-loop discipline as wait().
  template <typename Rep, typename Period>
  std::cv_status wait_for(MutexLock& lock, Mutex& mu,
                          const std::chrono::duration<Rep, Period>& timeout)
      ROTA_REQUIRES(mu) {
    static_cast<void>(mu);
    return cv_.wait_for(lock.lock_, timeout);
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace rota::util
