#pragma once

#include <string>
#include <vector>

/// \file table.hpp
/// Aligned text tables for the benchmark harness output. Every bench binary
/// prints the paper's rows/series through this class so output stays uniform.

namespace rota::util {

/// A simple column-aligned text table with a header row.
class TextTable {
 public:
  /// \param headers non-empty column names.
  explicit TextTable(std::vector<std::string> headers);

  /// Append a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Number of data rows.
  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Render with single-space-padded columns and a rule under the header.
  [[nodiscard]] std::string str() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (default 3 decimal places).
[[nodiscard]] std::string fmt(double value, int precision = 3);

/// Format a value as a percentage ("55.8%"), precision in decimal places.
[[nodiscard]] std::string fmt_pct(double fraction, int precision = 1);

}  // namespace rota::util
