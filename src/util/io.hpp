#pragma once

#include <functional>
#include <optional>
#include <string>
#include <string_view>

/// \file io.hpp
/// Checked file I/O. Every artifact writer (CSV exports, metrics JSON,
/// bench output, cache entries, checkpoints) routes through these helpers
/// so a full disk or bad path raises util::io_error naming the file
/// instead of silently truncating the artifact, and so the fault-injection
/// subsystem (src/fi) has one seam through which it can make any read or
/// write fail or return corrupted bytes.
///
/// Crash safety: write_text_file is a plain overwrite (fine for artifacts
/// that are regenerated wholesale); write_file_atomic stages the content
/// in `<path>.tmp`, fsyncs it, renames it over `path` and fsyncs the
/// directory on POSIX, so a crash or kill at any instant leaves either the
/// old content or the new content — never a torn file.

namespace rota::util {

/// Which I/O operation a fault hook is observing.
enum class IoOp {
  kRead,   ///< after the bytes were read; the hook may mutate them
  kWrite,  ///< before the bytes are written; the hook may throw
};

/// Fault-injection seam (installed by fi::Hooks, unset in production).
/// Called on every checked read/write with the operation, the file path
/// and, for reads, the content buffer (mutable, so a hook can corrupt
/// it). A hook injects a failure by throwing util::io_error.
using IoFaultHook =
    std::function<void(IoOp op, const std::string& path, std::string* data)>;

/// Install (or, with nullptr-like empty function, clear) the process-wide
/// I/O fault hook. Not thread-safe against concurrent I/O: install before
/// spawning work, clear after joining it (the fi test scaffolding does).
void set_io_fault_hook(IoFaultHook hook);

/// True when a fault hook is installed (one relaxed atomic load).
[[nodiscard]] bool io_fault_hook_armed();

/// Write `content` to `path` (binary mode, overwriting), flush, and
/// verify the stream; throws util::io_error naming the file on any
/// failure.
void write_text_file(const std::string& path, std::string_view content);

/// Crash-safe write: stage in `<path>.tmp`, flush + fsync (POSIX), rename
/// over `path`, fsync the parent directory (POSIX). Throws util::io_error
/// naming the file on any failure; a failed attempt removes the temp file
/// best-effort so it cannot be mistaken for a committed entry.
void write_file_atomic(const std::string& path, std::string_view content);

/// Read the whole file; throws util::io_error when the file cannot be
/// opened or read.
[[nodiscard]] std::string read_text_file(const std::string& path);

/// Read the whole file, or std::nullopt when it does not exist. Other
/// failures (permissions, injected faults) still throw util::io_error so
/// "absent" and "unreadable" stay distinguishable.
[[nodiscard]] std::optional<std::string> read_text_file_if_exists(
    const std::string& path);

}  // namespace rota::util
