#pragma once

#include <string>
#include <string_view>

/// \file io.hpp
/// Checked file output. Every artifact writer (CSV exports, metrics JSON,
/// bench output) routes through write_text_file so a full disk or bad
/// path raises util::io_error naming the file instead of silently
/// truncating the artifact.

namespace rota::util {

/// Write `content` to `path` (binary mode, overwriting), flush, and
/// verify the stream; throws util::io_error naming the file on any
/// failure.
void write_text_file(const std::string& path, std::string_view content);

}  // namespace rota::util
