#pragma once

#include <ostream>
#include <string>
#include <vector>

/// \file csv.hpp
/// Minimal RFC-4180-style CSV emission. Bench binaries print a CSV block
/// after each human-readable table so results can be re-plotted directly.

namespace rota::util {

/// Streams rows of comma-separated values with proper quoting.
class CsvWriter {
 public:
  /// Writes the header row immediately.
  CsvWriter(std::ostream& out, const std::vector<std::string>& headers);

  /// Append a data row; width must match the header.
  void row(const std::vector<std::string>& cells);

 private:
  void emit(const std::vector<std::string>& cells);

  std::ostream& out_;
  std::size_t width_;
};

/// Quote a single CSV field if it contains a comma, quote or newline.
[[nodiscard]] std::string csv_escape(const std::string& field);

}  // namespace rota::util
