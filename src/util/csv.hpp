#pragma once

#include <ostream>
#include <string>
#include <vector>

/// \file csv.hpp
/// Minimal RFC-4180-style CSV emission. Bench binaries print a CSV block
/// after each human-readable table so results can be re-plotted directly.

namespace rota::util {

/// Streams rows of comma-separated values with proper quoting. Every
/// write is checked: a stream that enters a failed state (full disk, bad
/// file) raises util::io_error naming the sink instead of silently
/// truncating the CSV.
class CsvWriter {
 public:
  /// Writes the header row immediately. `sink_name` (e.g. the file path)
  /// is used in error messages; empty means an anonymous stream.
  CsvWriter(std::ostream& out, const std::vector<std::string>& headers,
            std::string sink_name = {});

  /// Append a data row; width must match the header.
  void row(const std::vector<std::string>& cells);

 private:
  void emit(const std::vector<std::string>& cells);

  std::ostream& out_;
  std::size_t width_;
  std::string sink_name_;
};

/// Quote a single CSV field if it contains a comma, quote or newline.
[[nodiscard]] std::string csv_escape(const std::string& field);

}  // namespace rota::util
