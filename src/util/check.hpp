#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

/// \file check.hpp
/// Lightweight precondition / invariant checking used across the library.
///
/// All checks are active in every build type: this is a simulator whose
/// value is correctness of reported numbers, not raw throughput, and the
/// checks live outside inner loops.

namespace rota::util {

/// Thrown when a caller violates a documented precondition.
class precondition_error : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an internal invariant is found broken (a library bug).
class invariant_error : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when writing an output artifact (CSV, JSON, trace, image) fails
/// — full disk, unwritable path, closed pipe. The message names the sink
/// so a truncated file never goes unnoticed.
class io_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {

[[noreturn]] inline void throw_precondition(const char* expr, const char* file,
                                            int line, const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw precondition_error(os.str());
}

[[noreturn]] inline void throw_invariant(const char* expr, const char* file,
                                         int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw invariant_error(os.str());
}

}  // namespace detail
}  // namespace rota::util

/// Validate a caller-supplied argument; throws rota::util::precondition_error.
#define ROTA_REQUIRE(expr, msg)                                              \
  do {                                                                       \
    if (!(expr))                                                             \
      ::rota::util::detail::throw_precondition(#expr, __FILE__, __LINE__,    \
                                               (msg));                       \
  } while (false)

/// Validate an internal invariant; throws rota::util::invariant_error.
#define ROTA_ENSURE(expr, msg)                                               \
  do {                                                                       \
    if (!(expr))                                                             \
      ::rota::util::detail::throw_invariant(#expr, __FILE__, __LINE__,       \
                                            (msg));                          \
  } while (false)

/// Marks a statically unreachable point (the tail of an exhaustive switch);
/// throws rota::util::invariant_error if ever executed. Unlike
/// ROTA_ENSURE(false, ...) this calls the [[noreturn]] helper
/// unconditionally, so the compiler's flow analysis still sees the function
/// as ending here under sanitizer instrumentation (GCC fails to fold the
/// constant branch with -fsanitize=thread and emits -Wreturn-type).
#define ROTA_UNREACHABLE(msg)                                                \
  ::rota::util::detail::throw_invariant("unreachable", __FILE__, __LINE__,   \
                                        (msg))
