#include "util/table.hpp"

#include <iomanip>
#include <sstream>

#include "util/check.hpp"

namespace rota::util {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  ROTA_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  ROTA_REQUIRE(cells.size() == headers_.size(),
               "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string TextTable::str() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
      os << (c + 1 == row.size() ? "\n" : "  ");
    }
  };
  emit_row(headers_);
  std::size_t rule_len = 0;
  for (std::size_t wcol : widths) rule_len += wcol + 2;
  os << std::string(rule_len > 2 ? rule_len - 2 : rule_len, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string fmt_pct(double fraction, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << fraction * 100.0 << '%';
  return os.str();
}

}  // namespace rota::util
