#pragma once

#include <cstdint>
#include <numeric>
#include <sstream>

#include "util/check.hpp"

/// \file safe_math.hpp
/// Overflow-checked int64 arithmetic for the wear-leveling closed forms.
///
/// The RWL equations (Eqs. 5–11) multiply lcm(w,x)-scale quantities, and the
/// usage tracker accumulates count·x·y products over thousands of iterations;
/// on the array-scaling sweeps these silently wrap plain int64 arithmetic.
/// Every helper here detects overflow with the compiler's checked builtins
/// and throws rota::util::invariant_error instead of returning a wrapped
/// value, so a number the simulator reports is either exact or an exception.

namespace rota::util {

namespace detail {

[[noreturn]] inline void throw_overflow(const char* op, std::int64_t a,
                                        std::int64_t b) {
  std::ostringstream os;
  os << "int64 overflow in checked_" << op << '(' << a << ", " << b << ')';
  throw invariant_error(os.str());
}

}  // namespace detail

/// a + b, throwing invariant_error if the sum does not fit in int64.
[[nodiscard]] inline std::int64_t checked_add(std::int64_t a, std::int64_t b) {
  std::int64_t r = 0;
  if (__builtin_add_overflow(a, b, &r)) detail::throw_overflow("add", a, b);
  return r;
}

/// a - b, throwing invariant_error if the difference does not fit in int64.
[[nodiscard]] inline std::int64_t checked_sub(std::int64_t a, std::int64_t b) {
  std::int64_t r = 0;
  if (__builtin_sub_overflow(a, b, &r)) detail::throw_overflow("sub", a, b);
  return r;
}

/// a * b, throwing invariant_error if the product does not fit in int64.
[[nodiscard]] inline std::int64_t checked_mul(std::int64_t a, std::int64_t b) {
  std::int64_t r = 0;
  if (__builtin_mul_overflow(a, b, &r)) detail::throw_overflow("mul", a, b);
  return r;
}

/// lcm(a, b) = (a / gcd(a, b)) * b with the product overflow-checked.
/// \pre a > 0 && b > 0
[[nodiscard]] inline std::int64_t checked_lcm(std::int64_t a, std::int64_t b) {
  ROTA_REQUIRE(a > 0 && b > 0, "checked_lcm operands must be positive");
  return checked_mul(a / std::gcd(a, b), b);
}

}  // namespace rota::util
