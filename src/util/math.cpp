#include "util/math.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.hpp"
#include "util/safe_math.hpp"

namespace rota::util {

std::int64_t gcd(std::int64_t a, std::int64_t b) {
  ROTA_REQUIRE(a > 0 && b > 0, "gcd operands must be positive");
  return std::gcd(a, b);
}

std::int64_t lcm(std::int64_t a, std::int64_t b) {
  ROTA_REQUIRE(a > 0 && b > 0, "lcm operands must be positive");
  // std::lcm silently wraps when the value exceeds int64; the checked form
  // throws instead, which the array-scaling sweeps rely on.
  return checked_lcm(a, b);
}

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  ROTA_REQUIRE(a >= 0, "ceil_div numerator must be non-negative");
  ROTA_REQUIRE(b > 0, "ceil_div denominator must be positive");
  return (a + b - 1) / b;
}

std::int64_t round_up(std::int64_t value, std::int64_t multiple) {
  ROTA_REQUIRE(value >= 0, "round_up value must be non-negative");
  ROTA_REQUIRE(multiple > 0, "round_up multiple must be positive");
  return ceil_div(value, multiple) * multiple;
}

std::vector<std::int64_t> divisors(std::int64_t n) {
  ROTA_REQUIRE(n > 0, "divisors argument must be positive");
  std::vector<std::int64_t> out;
  divisors_into(n, out);
  return out;
}

double weibull_mean_factor(double beta) {
  ROTA_REQUIRE(beta > 0.0, "Weibull shape must be positive");
  return std::tgamma(1.0 + 1.0 / beta);
}

double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return std::accumulate(v.begin(), v.end(), 0.0) /
         static_cast<double>(v.size());
}

double power_sum_root(const std::vector<double>& v, double p) {
  ROTA_REQUIRE(p > 0.0, "power_sum_root exponent must be positive");
  // Normalize by the maximum to keep the powers in a well-conditioned range
  // regardless of the magnitude of the usage counters.
  double vmax = 0.0;
  for (double x : v) {
    ROTA_REQUIRE(x >= 0.0, "power_sum_root values must be non-negative");
    vmax = std::max(vmax, x);
  }
  if (vmax == 0.0) return 0.0;
  double sum = 0.0;
  for (double x : v) sum += std::pow(x / vmax, p);
  return vmax * std::pow(sum, 1.0 / p);
}

}  // namespace rota::util
