#include "cli/commands.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <sstream>
#include <string_view>

#include "cli/signals.hpp"
#include "core/rota.hpp"
#include "fi/checkpoint.hpp"
#include "fi/degrade.hpp"
#include "fi/hooks.hpp"
#include "fi/inject.hpp"
#include "svc/engine.hpp"
#include "obs/build_info.hpp"
#include "obs/event_log.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/snapshot.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/io.hpp"
#include "util/retry.hpp"

namespace rota::cli {

namespace {

arch::AcceleratorConfig accel_of(const Options& opt) {
  arch::AcceleratorConfig cfg = arch::rota_like();
  cfg.array_width = opt.array_width;
  cfg.array_height = opt.array_height;
  cfg.validate();
  return cfg;
}

int threads_of(const Options& opt) {
  return static_cast<int>(opt.threads);
}

sched::ObjectiveSpec objective_of(const Options& opt) {
  auto spec = sched::parse_objective(opt.objective);
  ROTA_REQUIRE(spec.ok(),
               "--objective " + opt.objective + ": " + spec.error().message);
  return spec.value();
}

/// The degraded-array snapshot pareto searches against: every --fault
/// spec routed through a spare pool of --spares. Wear-dependent specs
/// (rank=R, weibull=N) resolve against a short intact-array aging run of
/// `net` — the same deterministic reading fi::array_state_from_faults
/// documents. No faults = the universal all-live state.
sched::ArrayState array_state_of(const Options& opt, const nn::Network& net) {
  if (opt.faults.empty()) return {};
  std::vector<fi::HardwareFault> faults;
  bool wear_dependent = false;
  for (const std::string& spec : opt.faults) {
    auto fault = fi::parse_hardware_fault(spec);
    ROTA_REQUIRE(fault.ok(), "--fault " + spec + ": " + fault.error().message);
    wear_dependent = wear_dependent ||
                     fault.value().kind != fi::HardwareFaultKind::kCoordinate;
    faults.push_back(std::move(fault).take());
  }
  if (!wear_dependent) {
    auto state = fi::array_state_from_faults(opt.array_width,
                                             opt.array_height, faults,
                                             opt.spares);
    ROTA_REQUIRE(state.ok(), state.error().message);
    return std::move(state).take();
  }
  const arch::AcceleratorConfig accel = accel_of(opt);
  sched::Mapper mapper(accel, objective_of(opt), {},
                       sched::MapperOptions{true, threads_of(opt)});
  const sched::NetworkSchedule ns = mapper.schedule_network(net);
  wear::WearSimulator sim(accel);
  auto policy = wear::make_policy(wear::PolicyKind::kRwlRo, accel.array_width,
                                  accel.array_height, opt.seed);
  constexpr std::int64_t kSnapshotIterations = 32;
  sim.run_iterations(ns, *policy, kSnapshotIterations);
  fi::WearSnapshot snapshot;
  snapshot.usage = sim.tracker().usage().cells();
  snapshot.seed = opt.seed;
  auto state = fi::array_state_from_faults(opt.array_width, opt.array_height,
                                           faults, opt.spares, snapshot);
  ROTA_REQUIRE(state.ok(), state.error().message);
  return std::move(state).take();
}

int cmd_workloads(std::ostream& out) {
  util::TextTable table({"abbr", "network", "domain", "layers", "GMACs"});
  for (const auto& net : nn::all_workloads()) {
    table.add_row({net.abbr(), net.name(), nn::to_string(net.domain()),
                   std::to_string(net.layer_count()),
                   util::fmt(static_cast<double>(net.total_macs()) / 1e9,
                             2)});
  }
  out << table.str();
  return 0;
}

int cmd_schedule(const Options& opt, std::ostream& out) {
  const nn::Network net = nn::workload_by_abbr(opt.workload);
  sched::Mapper mapper(accel_of(opt), objective_of(opt), {},
                       sched::MapperOptions{true, threads_of(opt)});
  const auto ns = mapper.schedule_network(net);
  util::TextTable table({"layer", "space", "tiles Z", "util", "mapping"});
  for (const auto& l : ns.layers) {
    table.add_row({l.layer_name,
                   std::to_string(l.space.x) + "x" +
                       std::to_string(l.space.y),
                   std::to_string(l.tiles),
                   util::fmt_pct(l.utilization(ns.config)),
                   l.mapping.str()});
  }
  out << table.str();
  out << "mean utilization: " << util::fmt_pct(ns.mean_utilization())
      << ", tiles/iteration: " << ns.total_tiles() << '\n';
  if (!opt.csv_out_path.empty()) {
    // Checked write: a full disk or bad path must not leave a silently
    // truncated schedule behind (util::io_error names the file).
    std::ostringstream csv;
    sched::write_schedule_csv(ns, csv);
    util::write_text_file(opt.csv_out_path, csv.str());
    out << "wrote " << opt.csv_out_path << '\n';
  }
  return 0;
}

int cmd_wear(const Options& opt, std::ostream& out) {
  const arch::AcceleratorConfig accel = accel_of(opt);
  sched::NetworkSchedule ns;
  std::string source_name;
  if (!opt.schedule_path.empty()) {
    std::ifstream file(opt.schedule_path);
    ROTA_REQUIRE(static_cast<bool>(file),
                 "could not open schedule CSV: " + opt.schedule_path);
    ns = sched::read_schedule_csv(file, accel, opt.schedule_path,
                                  opt.schedule_path);
    source_name = "imported schedule " + opt.schedule_path;
  } else {
    const nn::Network net = nn::workload_by_abbr(opt.workload);
    sched::Mapper mapper(accel, sched::ObjectiveSpec{}, {},
                         sched::MapperOptions{true, threads_of(opt)});
    ns = mapper.schedule_network(net);
    source_name = net.name();
  }

  wear::WearSimulator sim(accel, {true, opt.metric});
  auto policy = wear::make_policy(opt.policy, accel.array_width,
                                  accel.array_height, opt.seed);
  sim.run_iterations(ns, *policy, opt.iterations);

  const auto stats = sim.tracker().stats();
  out << source_name << " x " << opt.iterations << " iterations, policy "
      << policy->name() << ":\n"
      << "  min(A_PE) = " << stats.min << ", max(A_PE) = " << stats.max
      << ", D_max = " << stats.max_diff
      << ", R_diff = " << util::fmt(stats.r_diff, 4) << "\n\n"
      << util::ascii_heatmap(sim.tracker().usage());

  if (!opt.pgm_path.empty()) {
    util::Grid<double> img(sim.tracker().usage().width(),
                           sim.tracker().usage().height());
    for (std::size_t r = 0; r < img.height(); ++r)
      for (std::size_t c = 0; c < img.width(); ++c)
        img(c, r) = static_cast<double>(sim.tracker().usage()(c, r));
    if (util::write_pgm(img, opt.pgm_path)) {
      out << "wrote " << opt.pgm_path << '\n';
    } else {
      out << "error: could not write " << opt.pgm_path << '\n';
      return 1;
    }
  }
  return 0;
}

int cmd_lifetime(const Options& opt, std::ostream& out) {
  const nn::Network net = nn::workload_by_abbr(opt.workload);
  ExperimentConfig cfg;
  cfg.accel = accel_of(opt);
  cfg.iterations = opt.iterations;
  cfg.metric = opt.metric;
  cfg.seed = opt.seed;
  cfg.threads = threads_of(opt);
  Experiment exp(cfg);
  const auto res = exp.run(
      net, {wear::PolicyKind::kBaseline, wear::PolicyKind::kRwl,
            wear::PolicyKind::kRwlRo});

  util::TextTable table({"scheme", "lifetime", "D_max", "R_diff"});
  for (const auto& run : res.runs) {
    table.add_row({run.policy_name,
                   util::fmt(res.improvement_over_baseline(run.kind), 3) +
                       "x",
                   std::to_string(run.stats.max_diff),
                   util::fmt(run.stats.r_diff, 4)});
  }
  out << table.str();

  // Non-throwing run lookup: every kind below was requested above, so an
  // absent run is an internal invariant violation, not a user error.
  const auto usage_of =
      [&res](wear::PolicyKind kind) -> const util::Grid<std::int64_t>& {
    const PolicyRun* run = res.find_run(kind);
    ROTA_ENSURE(run != nullptr, "policy run missing from experiment result");
    return run->usage;
  };

  if (opt.mc_trials > 0) {
    // Monte-Carlo cross-check of the closed-form Eq. 3/4 algebra on the
    // measured usage fields (shared activity scale).
    double peak = 1.0;
    for (std::int64_t v : usage_of(wear::PolicyKind::kBaseline).cells())
      peak = std::max(peak, static_cast<double>(v));
    auto alphas = [&](wear::PolicyKind kind) {
      std::vector<double> a;
      for (std::int64_t v : usage_of(kind).cells())
        a.push_back(static_cast<double>(v) / peak);
      return a;
    };
    const auto mc_base = rel::monte_carlo_mttf(
        alphas(wear::PolicyKind::kBaseline), cfg.beta, 1.0, opt.mc_trials,
        opt.seed, threads_of(opt));
    const auto mc_ro = rel::monte_carlo_mttf(
        alphas(wear::PolicyKind::kRwlRo), cfg.beta, 1.0, opt.mc_trials,
        opt.seed, threads_of(opt));
    out << "Monte-Carlo cross-check (" << opt.mc_trials
        << " trials): RWL+RO gain = "
        << util::fmt(mc_ro.mttf / mc_base.mttf, 3) << "x (closed form "
        << util::fmt(res.improvement_over_baseline(wear::PolicyKind::kRwlRo),
                     3)
        << "x)\n";
  }

  if (opt.spares > 0) {
    // Spare-tolerant comparison on a shared activity scale.
    double peak = 1.0;
    for (std::int64_t v : usage_of(wear::PolicyKind::kBaseline).cells())
      peak = std::max(peak, static_cast<double>(v));
    auto alphas = [&](wear::PolicyKind kind) {
      std::vector<double> a;
      for (std::int64_t v : usage_of(kind).cells())
        a.push_back(static_cast<double>(v) / peak);
      return a;
    };
    const double mb = rel::spare_array_mttf(
        alphas(wear::PolicyKind::kBaseline), opt.spares, cfg.beta);
    const double mr = rel::spare_array_mttf(
        alphas(wear::PolicyKind::kRwlRo), opt.spares, cfg.beta);
    out << "with " << opt.spares
        << " spare PE(s): RWL+RO lifetime gain = " << util::fmt(mr / mb, 3)
        << "x\n";
  }
  return 0;
}

int cmd_thermal(const Options& opt, std::ostream& out) {
  const nn::Network net = nn::workload_by_abbr(opt.workload);
  const arch::AcceleratorConfig accel = accel_of(opt);
  ExperimentConfig cfg;
  cfg.accel = accel;
  cfg.iterations = opt.iterations;
  cfg.seed = opt.seed;
  cfg.threads = threads_of(opt);
  Experiment exp(cfg);
  const auto res = exp.run(
      net, {wear::PolicyKind::kBaseline, wear::PolicyKind::kRwlRo});

  const PolicyRun* base_run = res.find_run(wear::PolicyKind::kBaseline);
  const PolicyRun* ro_run = res.find_run(wear::PolicyKind::kRwlRo);
  ROTA_ENSURE(base_run != nullptr && ro_run != nullptr,
              "policy run missing from experiment result");
  const auto& base_usage = base_run->usage;
  const auto& ro_usage = ro_run->usage;
  std::int64_t ref = 0;
  for (std::int64_t v : base_usage.cells()) ref = std::max(ref, v);
  for (std::int64_t v : ro_usage.cells()) ref = std::max(ref, v);

  const thermal::ThermalModel model;
  auto report = [&](const char* name,
                    const util::Grid<std::int64_t>& usage) {
    const auto temp =
        model.steady_state(model.power_from_usage(usage, ref));
    double peak = 0.0;
    double mean = 0.0;
    for (double t : temp.cells()) {
      peak = std::max(peak, t);
      mean += t;
    }
    mean /= static_cast<double>(temp.size());
    out << name << ": peak " << util::fmt(peak, 1) << " C, mean "
        << util::fmt(mean, 1) << " C\n"
        << util::ascii_heatmap(temp) << '\n';
  };
  report("Baseline temperature field", base_usage);
  report("RWL+RO temperature field", ro_usage);

  const double gain_time =
      res.improvement_over_baseline(wear::PolicyKind::kRwlRo);
  const double gain_thermal = rel::lifetime_improvement(
      thermal::accelerated_alphas(base_usage, model, 0.7, ref),
      thermal::accelerated_alphas(ro_usage, model, 0.7, ref), cfg.beta);
  out << "lifetime gain, time-only (Eq. 4): " << util::fmt(gain_time, 2)
      << "x\nlifetime gain, thermally coupled: "
      << util::fmt(gain_thermal, 2) << "x\n";
  return 0;
}

int cmd_area(const Options& opt, std::ostream& out) {
  arch::AcceleratorConfig mesh = accel_of(opt);
  mesh.topology = arch::TopologyKind::kMesh2D;
  const arch::AreaModel model;
  const auto mb = model.breakdown(mesh, false);
  arch::AcceleratorConfig torus = mesh;
  torus.topology = arch::TopologyKind::kTorus2D;
  const auto tb = model.breakdown(torus, true);

  util::TextTable table({"component", "mesh (um^2)", "torus+WL (um^2)"});
  table.add_row({"PE array", util::fmt(mb.pe_array, 0),
                 util::fmt(tb.pe_array, 0)});
  table.add_row({"local network", util::fmt(mb.local_network, 0),
                 util::fmt(tb.local_network, 0)});
  table.add_row({"GLB", util::fmt(mb.glb, 0), util::fmt(tb.glb, 0)});
  table.add_row({"global network", util::fmt(mb.global_network, 0),
                 util::fmt(tb.global_network, 0)});
  table.add_row({"controller", util::fmt(mb.controller, 0),
                 util::fmt(tb.controller, 0)});
  table.add_row({"total", util::fmt(mb.total(), 0),
                 util::fmt(tb.total(), 0)});
  out << table.str();
  out << "PE-array overhead: "
      << util::fmt_pct(model.array_overhead_fraction(mesh), 2)
      << ", whole-chip overhead: "
      << util::fmt_pct(model.chip_overhead_fraction(mesh), 2) << '\n';
  return 0;
}

int cmd_serve(const Options& opt, std::istream& in, std::ostream& out) {
  svc::EngineOptions eo;
  eo.threads = threads_of(opt);
  eo.cache.capacity = static_cast<std::size_t>(opt.cache_capacity);
  eo.cache.disk_dir = opt.cache_dir;
  eo.max_batch = static_cast<std::size_t>(opt.max_batch);
  eo.max_queue = static_cast<std::size_t>(opt.queue_cap);
  svc::Engine engine(eo);
  return engine.serve(in, out, interrupt_flag());
}

/// Exact round-trip rendering for checkpointed / CSV'd doubles — the
/// bit-identical-after-resume guarantee must survive the text format.
std::string hexfloat(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

double parse_hexfloat(const std::string& text, const std::string& what) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  ROTA_REQUIRE(!text.empty() && end != nullptr && *end == '\0',
               "corrupt checkpoint: field '" + what +
                   "' is not a number: '" + text + "'");
  return v;
}

/// Load `path` if it exists and matches this run's identity; kNotFound is
/// a fresh start, anything else (corrupt file, wrong work) fails loudly —
/// resuming from garbage or from someone else's run is never an option.
bool load_matching_checkpoint(const std::string& path,
                              const std::string& kind,
                              const std::string& fingerprint,
                              fi::Checkpoint& checkpoint) {
  auto loaded = fi::load_checkpoint(path);
  if (!loaded.ok()) {
    ROTA_REQUIRE(loaded.error().code == util::ErrorCode::kNotFound,
                 "cannot resume from " + path + ": " +
                     loaded.error().message);
    return false;
  }
  checkpoint = std::move(loaded).take();
  ROTA_REQUIRE(
      checkpoint.kind == kind && checkpoint.fingerprint == fingerprint,
      "checkpoint " + path + " records different work (kind '" +
          checkpoint.kind + "', fingerprint '" + checkpoint.fingerprint +
          "'); delete it or rerun with the original flags");
  return true;
}

/// A finished run's checkpoint is stale by definition; best-effort
/// removal so the next invocation starts fresh.
void discard_checkpoint(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove(path, ec);
}

int cmd_degrade(const Options& opt, std::ostream& out) {
  ROTA_REQUIRE(!opt.faults.empty(),
               "degrade needs at least one --fault SPEC (pe=U,V@ITER[+K], "
               "rank=R@ITER or weibull=N)");
  const nn::Network net = nn::workload_by_abbr(opt.workload);
  const arch::AcceleratorConfig accel = accel_of(opt);

  fi::DegradeOptions dopt;
  dopt.iterations = opt.iterations;
  dopt.spares = opt.spares;
  dopt.seed = opt.seed;
  dopt.mode = opt.oblivious ? fi::DegradeMode::kFaultOblivious
                            : fi::DegradeMode::kFaultAware;
  dopt.objective = objective_of(opt);
  dopt.policy = opt.policy;
  dopt.retire_live_fraction = opt.retire_fraction;
  dopt.threads = threads_of(opt);
  dopt.workload_tag = net.abbr();
  dopt.checkpoint_path = opt.checkpoint_path;
  dopt.checkpoint_every = opt.checkpoint_every;
  for (const std::string& spec : opt.faults) {
    auto fault = fi::parse_hardware_fault(spec);
    ROTA_REQUIRE(fault.ok(), "--fault " + spec + ": " + fault.error().message);
    dopt.faults.push_back(std::move(fault).take());
  }

  fi::Checkpoint cp;
  if (!opt.checkpoint_path.empty()) {
    const std::string fingerprint = fi::degrade_fingerprint(accel, dopt);
    if (load_matching_checkpoint(opt.checkpoint_path, "degrade", fingerprint,
                                 cp)) {
      dopt.resume = &cp;
      obs::log_event(obs::Severity::kInfo, "cli",
                     "resuming degrade from checkpoint " +
                         opt.checkpoint_path + " (iteration " +
                         std::to_string(cp.progress) + ")");
    }
  }

  const fi::DegradeReport report =
      fi::run_degraded_lifetime(accel, net, dopt, [] {
        tick_interrupt_budget();
        return interrupted();
      });

  out << net.name() << " x " << report.iterations_run
      << " iterations, policy " << wear::to_string(dopt.policy)
      << " (masked), objective " << dopt.objective.id() << ", mode "
      << fi::to_string(dopt.mode) << ", " << dopt.spares << " spare(s)";
  if (report.resumed) out << " [resumed]";
  out << ":\n";
  for (const std::string& event : report.events) out << "  " << event << '\n';

  util::TextTable table({"quantity", "value"});
  table.add_row({"faults injected", std::to_string(report.faults_injected)});
  table.add_row({"remaps", std::to_string(report.remaps)});
  table.add_row({"unmapped faults",
                 std::to_string(report.unmapped_faults)});
  table.add_row({"reschedules", std::to_string(report.reschedules)});
  table.add_row({"transient restores",
                 std::to_string(report.transient_restores)});
  table.add_row({"redirected units",
                 std::to_string(report.redirected_units)});
  table.add_row({"lost units", std::to_string(report.lost_units)});
  table.add_row({"live PEs", std::to_string(report.live_pes)});
  table.add_row({"retire budget", std::to_string(report.retire_budget)});
  table.add_row({"spares in service",
                 std::to_string(report.spare_stats.spares_in_service)});
  table.add_row({"spares free",
                 std::to_string(report.spare_stats.spares_free)});
  table.add_row({"energy overhead",
                 util::fmt_pct(report.energy_overhead, 2)});
  table.add_row({"throughput derating",
                 util::fmt_pct(report.throughput_derating, 2)});
  out << table.str();
  out << "MTTF, fault-free profile: " << util::fmt(report.mttf_initial, 4)
      << "  residual (tolerance " << report.mttf_tolerance
      << "): " << util::fmt(report.mttf_final, 4) << '\n';

  if (opt.mc_trials > 0 && report.mttf_final > 0.0) {
    // Cross-check the closed-form residual MTTF against the with-spares
    // Monte-Carlo estimator on the same live set and tolerance.
    std::int64_t active = 0;
    for (const double a : report.live_alphas) active += a > 0.0 ? 1 : 0;
    if (report.mttf_tolerance < active) {
      const rel::MonteCarloResult mc = rel::monte_carlo_spare_mttf(
          report.live_alphas, report.mttf_tolerance, rel::kJedecShape, 1.0,
          opt.mc_trials, opt.seed, threads_of(opt));
      out << "MC cross-check: " << util::fmt(mc.mttf, 4) << " (stderr "
          << util::fmt(mc.stderr_, 6) << ", " << mc.trials << " trials)\n";
    }
  }

  if (!opt.csv_out_path.empty()) {
    util::write_text_file(opt.csv_out_path, report.timeline_csv);
    out << "wrote " << opt.csv_out_path << '\n';
  }

  if (report.interrupted) {
    obs::log_event(obs::Severity::kWarn, "cli",
                   "interrupted; degrade state saved at iteration " +
                       std::to_string(report.iterations_run));
    return kExitInterrupted;
  }
  if (!opt.checkpoint_path.empty()) discard_checkpoint(opt.checkpoint_path);
  if (report.retired) {
    out << "retired at iteration " << report.retired_at << " (exit "
        << kExitRetired << ")\n";
    return kExitRetired;
  }
  return 0;
}

int cmd_inject(const Options& opt, std::ostream& out) {
  ROTA_REQUIRE(!opt.faults.empty(),
               "inject needs at least one --fault SPEC (pe=U,V@ITER[+K], "
               "rank=R@ITER or weibull=N)");
  // --resched upgrades the campaign to the degrade engine's full
  // repair-and-reschedule loop under the same faults and pool.
  if (opt.resched) return cmd_degrade(opt, out);
  const nn::Network net = nn::workload_by_abbr(opt.workload);
  const arch::AcceleratorConfig accel = accel_of(opt);
  sched::Mapper mapper(accel, sched::ObjectiveSpec{}, {},
                       sched::MapperOptions{true, threads_of(opt)});
  const sched::NetworkSchedule ns = mapper.schedule_network(net);

  fi::InjectOptions io;
  io.iterations = opt.iterations;
  io.spares = opt.spares;
  io.seed = opt.seed;
  for (const std::string& spec : opt.faults) {
    auto fault = fi::parse_hardware_fault(spec);
    ROTA_REQUIRE(fault.ok(),
                 "--fault " + spec + ": " + fault.error().message);
    io.faults.push_back(std::move(fault).take());
  }

  auto policy = wear::make_policy(opt.policy, accel.array_width,
                                  accel.array_height, opt.seed);
  const fi::FaultRunReport report =
      fi::run_fault_injection(accel, ns, *policy, io);

  out << net.name() << " x " << report.iterations_run
      << " iterations, policy " << policy->name() << ", " << io.spares
      << " spare(s):\n";
  for (const std::string& event : report.events) out << "  " << event << '\n';

  util::TextTable table({"quantity", "value"});
  table.add_row({"faults injected",
                 std::to_string(report.faults_injected)});
  table.add_row({"transient restores",
                 std::to_string(report.transient_restores)});
  table.add_row({"remaps", std::to_string(report.spare_stats.remaps)});
  table.add_row({"spare migrations",
                 std::to_string(report.spare_stats.migrations)});
  table.add_row({"spares in service",
                 std::to_string(report.spare_stats.spares_in_service)});
  table.add_row({"spares free",
                 std::to_string(report.spare_stats.spares_free)});
  table.add_row({"redirected units",
                 std::to_string(report.redirected_units)});
  table.add_row({"lost units", std::to_string(report.lost_units)});
  table.add_row({"redirect fraction",
                 util::fmt_pct(report.redirect_fraction, 2)});
  out << table.str();
  out << "MTTF, full spare pool: " << util::fmt(report.baseline_mttf, 4)
      << "  degraded: " << util::fmt(report.degraded_mttf, 4)
      << "  ratio: " << util::fmt(report.mttf_ratio, 3) << "x\n";
  return 0;
}

int cmd_sweep(const Options& opt, std::ostream& out) {
  const std::vector<nn::Network> nets = nn::all_workloads();
  const std::vector<wear::PolicyKind> policies = {
      wear::PolicyKind::kBaseline, wear::PolicyKind::kRwl,
      wear::PolicyKind::kRwlRo};

  ExperimentConfig cfg;
  cfg.accel = accel_of(opt);
  cfg.iterations = opt.iterations;
  cfg.metric = opt.metric;
  cfg.seed = opt.seed;
  cfg.threads = threads_of(opt);
  Experiment exp(cfg);

  // Work identity: everything that shapes the rows, nothing that does not
  // (threads are bit-identical by contract — DESIGN.md §9 — so a resume
  // may legally use a different lane count).
  std::string fingerprint = "sweep";
  for (const nn::Network& net : nets) fingerprint += "|" + net.abbr();
  for (wear::PolicyKind kind : policies)
    fingerprint += "|" + std::string(wear::to_string(kind));
  fingerprint += "|" + std::to_string(opt.array_width) + "x" +
                 std::to_string(opt.array_height) + "|" +
                 std::to_string(opt.iterations) + "|" +
                 std::to_string(opt.seed) + "|" +
                 (opt.metric == wear::WearMetric::kAllocations ? "alloc"
                                                               : "cycles");

  std::string csv = "workload,policy,improvement,d_max,r_diff\n";
  std::size_t next_cell = 0;
  if (!opt.checkpoint_path.empty()) {
    fi::Checkpoint cp;
    if (load_matching_checkpoint(opt.checkpoint_path, "sweep", fingerprint,
                                 cp)) {
      const auto rows = cp.fields.find("csv");
      ROTA_REQUIRE(rows != cp.fields.end() && cp.progress >= 0 &&
                       cp.progress <= static_cast<std::int64_t>(nets.size()),
                   "corrupt checkpoint: sweep state out of range");
      csv = rows->second;
      next_cell = static_cast<std::size_t>(cp.progress);
      obs::log_event(obs::Severity::kInfo, "cli",
                     "resuming sweep from checkpoint " +
                         opt.checkpoint_path + " (" +
                         std::to_string(next_cell) + "/" +
                         std::to_string(nets.size()) + " workloads done)");
    }
  }

  obs::ProgressReporter progress("sweep",
                                 static_cast<std::int64_t>(nets.size()));
  const auto save = [&](std::size_t done) {
    if (opt.checkpoint_path.empty()) return;
    fi::Checkpoint cp;
    cp.kind = "sweep";
    cp.fingerprint = fingerprint;
    cp.progress = static_cast<std::int64_t>(done);
    cp.fields["csv"] = csv;
    fi::save_checkpoint(opt.checkpoint_path, cp);
    progress.note_checkpoint();
  };

  for (std::size_t n = next_cell; n < nets.size(); ++n) {
    if (interrupted()) {
      save(n);
      obs::log_event(obs::Severity::kWarn, "cli",
                     "interrupted; sweep state saved at " +
                         std::to_string(n) + "/" +
                         std::to_string(nets.size()) + " workloads");
      return kExitInterrupted;
    }
    const ExperimentResult res = exp.run(nets[n], policies);
    for (const PolicyRun& run : res.runs) {
      csv += res.network_abbr + "," + run.policy_name + "," +
             hexfloat(res.improvement_over_baseline(run.kind)) + "," +
             std::to_string(run.stats.max_diff) + "," +
             hexfloat(run.stats.r_diff) + "\n";
    }
    save(n + 1);
    progress.tick(1);
    tick_interrupt_budget();
  }

  if (!opt.csv_out_path.empty()) {
    util::write_text_file(opt.csv_out_path, csv);
    out << "wrote " << opt.csv_out_path << '\n';
  } else {
    out << csv;
  }
  if (!opt.checkpoint_path.empty()) discard_checkpoint(opt.checkpoint_path);
  return 0;
}

int cmd_mc(const Options& opt, std::ostream& out) {
  const nn::Network net = nn::workload_by_abbr(opt.workload);
  const arch::AcceleratorConfig accel = accel_of(opt);
  sched::Mapper mapper(accel, sched::ObjectiveSpec{}, {},
                       sched::MapperOptions{true, threads_of(opt)});
  const sched::NetworkSchedule ns = mapper.schedule_network(net);

  // The activity field whose MTTF we estimate: one wear run under the
  // requested policy, normalized to peak usage (as cmd_lifetime does).
  wear::WearSimulator sim(accel, {true, opt.metric});
  auto policy = wear::make_policy(opt.policy, accel.array_width,
                                  accel.array_height, opt.seed);
  sim.run_iterations(ns, *policy, opt.iterations);
  double peak = 1.0;
  for (std::int64_t v : sim.tracker().usage().cells())
    peak = std::max(peak, static_cast<double>(v));
  std::vector<double> alphas;
  for (std::int64_t v : sim.tracker().usage().cells())
    alphas.push_back(static_cast<double>(v) / peak);
  const double beta = rel::kJedecShape;

  std::string fingerprint =
      "mc|" + net.abbr() + "|" + std::string(wear::to_string(opt.policy)) +
      "|" + std::to_string(opt.array_width) + "x" +
      std::to_string(opt.array_height) + "|" +
      std::to_string(opt.iterations) + "|" + std::to_string(opt.trials) +
      "|" + std::to_string(opt.seed) + "|" +
      (opt.metric == wear::WearMetric::kAllocations ? "alloc" : "cycles");

  rel::McPartial partial;
  if (!opt.checkpoint_path.empty()) {
    fi::Checkpoint cp;
    if (load_matching_checkpoint(opt.checkpoint_path, "mc", fingerprint,
                                 cp)) {
      const auto sum = cp.fields.find("sum");
      const auto sum_sq = cp.fields.find("sum_sq");
      ROTA_REQUIRE(sum != cp.fields.end() && sum_sq != cp.fields.end() &&
                       cp.progress >= 0,
                   "corrupt checkpoint: mc state incomplete");
      partial.sum = parse_hexfloat(sum->second, "sum");
      partial.sum_sq = parse_hexfloat(sum_sq->second, "sum_sq");
      partial.next_chunk = cp.progress;
      obs::log_event(obs::Severity::kInfo, "cli",
                     "resuming mc from checkpoint " + opt.checkpoint_path +
                         " (chunk " + std::to_string(partial.next_chunk) +
                         ")");
    }
  }

  // Checkpoint cadence: 8 substream chunks (32768 trials) per step keeps
  // the save overhead negligible against the sampling work.
  constexpr std::int64_t kChunksPerStep = 8;
  const std::int64_t total_chunks =
      (opt.trials + rel::kMonteCarloChunkTrials - 1) /
      rel::kMonteCarloChunkTrials;
  obs::ProgressReporter progress("mc " + net.abbr(), total_chunks);
  const auto save = [&] {
    if (opt.checkpoint_path.empty()) return;
    fi::Checkpoint cp;
    cp.kind = "mc";
    cp.fingerprint = fingerprint;
    cp.progress = partial.next_chunk;
    cp.fields["sum"] = hexfloat(partial.sum);
    cp.fields["sum_sq"] = hexfloat(partial.sum_sq);
    fi::save_checkpoint(opt.checkpoint_path, cp);
    progress.note_checkpoint();
  };

  for (;;) {
    if (interrupted()) {
      save();
      obs::log_event(obs::Severity::kWarn, "cli",
                     "interrupted; mc state saved at chunk " +
                         std::to_string(partial.next_chunk));
      return kExitInterrupted;
    }
    const std::int64_t before = partial.next_chunk;
    const bool more =
        rel::monte_carlo_mttf_step(alphas, beta, 1.0, opt.trials, opt.seed,
                                   threads_of(opt), &partial, kChunksPerStep);
    save();
    progress.tick(partial.next_chunk - before);
    tick_interrupt_budget();
    if (!more) break;
  }
  progress.finish();

  const rel::MonteCarloResult res =
      rel::monte_carlo_mttf_finalize(partial, opt.trials);
  out << net.abbr() << " policy " << policy->name() << ": MTTF = "
      << util::fmt(res.mttf, 6) << " (stderr " << util::fmt(res.stderr_, 6)
      << ", " << res.trials << " trials)\n"
      << "exact: mttf " << hexfloat(res.mttf) << " stderr "
      << hexfloat(res.stderr_) << '\n';
  if (!opt.checkpoint_path.empty()) discard_checkpoint(opt.checkpoint_path);
  return 0;
}

int cmd_pareto(const Options& opt, std::ostream& out) {
  const nn::Network net = nn::workload_by_abbr(opt.workload);
  const arch::AcceleratorConfig accel = accel_of(opt);
  const sched::ObjectiveSpec objective = objective_of(opt);
  const sched::ArrayState array = array_state_of(opt, net);
  sched::Mapper mapper(accel, objective, {},
                       sched::MapperOptions{true, threads_of(opt)}, array);
  const sched::NetworkParetoFront front = mapper.pareto_network(net);

  util::TextTable table(
      {"layer", "front", "selected", "energy", "MTTF", "cycles"});
  for (const auto& layer : front.layers) {
    const sched::ParetoPoint* sel = nullptr;
    for (const auto& p : layer.points) {
      if (p.selected) {
        sel = &p;
        break;
      }
    }
    ROTA_ENSURE(sel != nullptr, "front has no selected member");
    table.add_row({layer.layer_name, std::to_string(layer.points.size()),
                   sel->mapping.str(), util::fmt(sel->energy, 4),
                   util::fmt(sel->mttf, 4), util::fmt(sel->cycles, 0)});
  }
  out << table.str();
  out << "objective " << objective.id() << ", array state "
      << front.array_digest << " (" << front.live_pes << " live PEs)\n";

  if (!opt.csv_out_path.empty()) {
    // Doubles as hexfloat so the file is byte-comparable across thread
    // counts (the CI determinism check runs `cmp` on these).
    std::string csv =
        "layer,point,selected,dim_x,dim_y,sx,sy,lb_c,lb_q,lb_s,tiles,"
        "pe_allocations,anchor_u,anchor_v,energy,mttf,cycles\n";
    for (const auto& layer : front.layers) {
      for (std::size_t p = 0; p < layer.points.size(); ++p) {
        const sched::ParetoPoint& pt = layer.points[p];
        const sched::Mapping& m = pt.mapping;
        csv += layer.layer_name + "," + std::to_string(p) + "," +
               (pt.selected ? "1" : "0") + "," +
               std::string(sched::to_string(m.dim_x)) + "," +
               std::string(sched::to_string(m.dim_y)) + "," +
               std::to_string(m.sx) + "," + std::to_string(m.sy) + "," +
               std::to_string(m.lb_c) + "," + std::to_string(m.lb_q) + "," +
               std::to_string(m.lb_s) + "," + std::to_string(pt.tiles) + "," +
               std::to_string(pt.pe_allocations) + "," +
               std::to_string(pt.anchor_u) + "," +
               std::to_string(pt.anchor_v) + "," + hexfloat(pt.energy) +
               "," + hexfloat(pt.mttf) + "," + hexfloat(pt.cycles) + "\n";
      }
    }
    util::write_text_file(opt.csv_out_path, csv);
    out << "wrote " << opt.csv_out_path << '\n';
  }

  if (!opt.json_out_path.empty()) {
    obs::RunManifest manifest =
        obs::make_run_manifest("rota", opt.raw_args);
    manifest.workload = net.abbr();
    manifest.array_width = opt.array_width;
    manifest.array_height = opt.array_height;
    manifest.extra["objective.id"] = objective.id();
    manifest.extra["objective.weights"] = objective.weights_csv();
    manifest.extra["array_state.digest"] = front.array_digest;
    std::ostringstream js;
    js << "{\"schema_version\":" << obs::kSchemaVersion
       << ",\"manifest\":" << manifest.to_json() << ",\"pareto\":{"
       << "\"network\":" << obs::json_quote(front.network_abbr)
       << ",\"objective\":" << obs::json_quote(objective.id())
       << ",\"objective_weights\":" << obs::json_quote(objective.weights_csv())
       << ",\"array_state\":" << obs::json_quote(front.array_digest)
       << ",\"live_pes\":" << front.live_pes << ",\"layers\":[";
    for (std::size_t l = 0; l < front.layers.size(); ++l) {
      const auto& layer = front.layers[l];
      if (l) js << ',';
      js << "{\"layer\":" << obs::json_quote(layer.layer_name)
         << ",\"points\":[";
      for (std::size_t p = 0; p < layer.points.size(); ++p) {
        const sched::ParetoPoint& pt = layer.points[p];
        if (p) js << ',';
        js << "{\"mapping\":" << obs::json_quote(pt.mapping.str())
           << ",\"energy\":" << obs::json_number(pt.energy)
           << ",\"mttf\":" << obs::json_number(pt.mttf)
           << ",\"cycles\":" << obs::json_number(pt.cycles)
           << ",\"tiles\":" << pt.tiles
           << ",\"pe_allocations\":" << pt.pe_allocations
           << ",\"anchor\":[" << pt.anchor_u << ',' << pt.anchor_v << ']'
           << ",\"selected\":" << (pt.selected ? "true" : "false") << '}';
      }
      js << "]}";
    }
    js << "]}}\n";
    util::write_text_file(opt.json_out_path, js.str());
    out << "wrote " << opt.json_out_path << '\n';
  }
  return 0;
}

int dispatch(const Options& options, std::istream& in, std::ostream& out) {
  switch (options.verb) {
    case Verb::kHelp:
      out << usage();
      return 0;
    case Verb::kVersion:
      out << obs::build_info_line() << '\n';
      return 0;
    case Verb::kWorkloads:
      return cmd_workloads(out);
    case Verb::kSchedule:
      return cmd_schedule(options, out);
    case Verb::kWear:
      return cmd_wear(options, out);
    case Verb::kLifetime:
      return cmd_lifetime(options, out);
    case Verb::kArea:
      return cmd_area(options, out);
    case Verb::kThermal:
      return cmd_thermal(options, out);
    case Verb::kServe:
      return cmd_serve(options, in, out);
    case Verb::kInject:
      return cmd_inject(options, out);
    case Verb::kSweep:
      return cmd_sweep(options, out);
    case Verb::kMc:
      return cmd_mc(options, out);
    case Verb::kPareto:
      return cmd_pareto(options, out);
    case Verb::kDegrade:
      return cmd_degrade(options, out);
  }
  return 1;
}

/// Arms the global metrics/trace/progress state for one invocation and
/// guarantees it is restored (and the sinks flushed) however dispatch
/// exits, so embedding callers and the test suite see no bleed-through.
class ObservabilityScope {
 public:
  explicit ObservabilityScope(const Options& options) : options_(options) {
    auto& reg = obs::MetricsRegistry::global();
    auto& tracer = obs::Tracer::global();
    auto& events = obs::EventLog::global();
    if (!options_.metrics_path.empty() || options_.verbose ||
        !options_.stats_out_path.empty()) {
      reg.reset();
      reg.set_enabled(true);
    }
    if (!options_.trace_path.empty()) {
      tracer.reset();
      tracer.set_enabled(true);
    }
    // The event log is always live for a CLI run: the ring is cheap, and
    // echoing kWarn+ to stderr preserves the old notice UX (interrupts,
    // sheds, snapshot failures) even with no --events sink.
    events.reset();
    events.set_enabled(true);
    events.set_echo_stderr(true);
    if (!options_.events_path.empty()) events.set_sink(options_.events_path);
    if (!options_.stats_out_path.empty()) {
      obs::SnapshotPublisher::Options pub;
      pub.json_path = options_.stats_out_path;
      pub.openmetrics_path = openmetrics_twin(options_.stats_out_path);
      if (options_.stats_interval_ms > 0)
        pub.interval = std::chrono::milliseconds(options_.stats_interval_ms);
      publisher_ = std::make_unique<obs::SnapshotPublisher>(pub);
      if (options_.stats_interval_ms > 0) publisher_->start();
    }
    if (options_.progress) obs::ProgressReporter::set_enabled(true);
    manifest_ = obs::make_run_manifest("rota", options_.raw_args);
    manifest_.workload = options_.workload;
    manifest_.policy = wear::to_string(options_.policy);
    manifest_.metric =
        options_.metric == wear::WearMetric::kAllocations ? "alloc" : "cycles";
    manifest_.array_width = options_.array_width;
    manifest_.array_height = options_.array_height;
    manifest_.iterations = options_.iterations;
    manifest_.seed = options_.seed;
    if (options_.spares > 0)
      manifest_.extra["spares"] = std::to_string(options_.spares);
    if (options_.mc_trials > 0)
      manifest_.extra["mc_trials"] = std::to_string(options_.mc_trials);
    if (options_.threads != 1)
      manifest_.extra["threads"] = std::to_string(options_.threads);
    // Fault-injection state is part of reproducibility: a run with
    // ROTA_FI armed or --fault events is not comparable to a clean one.
    if (fi::Hooks::armed())
      manifest_.extra["fi"] = fi::Hooks::plan().to_spec();
    if (!options_.faults.empty()) {
      std::string joined;
      for (const std::string& f : options_.faults)
        joined += (joined.empty() ? "" : ";") + f;
      manifest_.extra["faults"] = joined;
    }
    if (options_.verb == Verb::kMc)
      manifest_.extra["trials"] = std::to_string(options_.trials);
    // Objective provenance for the verbs that honor --objective
    // (make_run_manifest pre-stamps the "energy" default; canonicalize
    // the user's spelling when it parses — a bad spec fails in dispatch
    // with the full error message).
    if (options_.verb == Verb::kSchedule || options_.verb == Verb::kPareto ||
        options_.verb == Verb::kDegrade ||
        (options_.verb == Verb::kInject && options_.resched)) {
      if (auto spec = sched::parse_objective(options_.objective); spec.ok()) {
        manifest_.extra["objective.id"] = spec.value().id();
        manifest_.extra["objective.weights"] = spec.value().weights_csv();
      }
    }
    if (options_.verb == Verb::kDegrade) {
      manifest_.extra["degrade.mode"] =
          options_.oblivious ? "oblivious" : "aware";
      manifest_.extra["degrade.retire"] =
          std::to_string(options_.retire_fraction);
    }
    start_ = std::chrono::steady_clock::now();
    obs::log_event(obs::Severity::kInfo, "cli",
                   "run started: " + verb_name(options_.verb));
  }

  ObservabilityScope(const ObservabilityScope&) = delete;
  ObservabilityScope& operator=(const ObservabilityScope&) = delete;

  /// Write the requested sinks; returns 0 or 1 (sink failure). Called on
  /// the success path so write errors can influence the exit code. Every
  /// write is atomic (temp + fsync + rename) with transient faults
  /// retried, so a crash or injected fault mid-write can never leave a
  /// truncated report behind.
  int write_sinks(std::ostream& out) {
    int rc = 0;
    auto& reg = obs::MetricsRegistry::global();
    auto& tracer = obs::Tracer::global();
    manifest_.wall_seconds =
        std::chrono::duration_cast<std::chrono::duration<double>>(
            std::chrono::steady_clock::now() - start_)
            .count();
    {
      std::ostringstream done;
      done << "run finished: " << verb_name(options_.verb) << " ("
           << manifest_.wall_seconds << "s)";
      obs::log_event(obs::Severity::kInfo, "cli", done.str());
    }
    if (!options_.metrics_path.empty()) {
      try {
        const std::string report = obs::metrics_report_json(manifest_, reg);
        util::retry_io(
            util::RetryOptions{},
            std::hash<std::string>{}(options_.metrics_path),
            [&] { util::write_file_atomic(options_.metrics_path, report); });
        out << "wrote metrics " << options_.metrics_path << '\n';
      } catch (const util::io_error& e) {
        out << "error: " << e.what() << '\n';
        rc = 1;
      }
    }
    if (options_.verbose) out << '\n' << reg.table();
    if (!options_.trace_path.empty()) {
      try {
        tracer.write_file(options_.trace_path);
        out << "wrote trace " << options_.trace_path << '\n';
      } catch (const util::io_error& e) {
        out << "error: " << e.what() << '\n';
        rc = 1;
      }
    }
    if (publisher_) {
      // stop() joins the sampler and publishes the exit-state snapshot
      // (the only one, in exit-only mode). Failures were already counted
      // and logged by the publisher; they surface in the exit code here.
      publisher_->stop();
      if (publisher_->published() > 0) {
        out << "wrote stats " << options_.stats_out_path << '\n';
      }
      if (publisher_->failed() > 0) {
        out << "error: " << publisher_->failed()
            << " stats snapshot(s) failed to publish\n";
        rc = 1;
      }
    }
    return rc;
  }

  ~ObservabilityScope() {
    publisher_.reset();  // joins the sampler before the sinks detach
    obs::MetricsRegistry::global().set_enabled(false);
    obs::Tracer::global().set_enabled(false);
    obs::ProgressReporter::set_enabled(false);
    auto& events = obs::EventLog::global();
    events.set_echo_stderr(false);
    events.reset();  // detaches the --events sink
    events.set_enabled(false);
  }

 private:
  /// `x.json` -> `x.om`; anything else gets `.om` appended.
  static std::string openmetrics_twin(const std::string& json_path) {
    static constexpr std::string_view kJsonExt = ".json";
    if (json_path.size() > kJsonExt.size() &&
        json_path.compare(json_path.size() - kJsonExt.size(),
                          kJsonExt.size(), kJsonExt) == 0) {
      return json_path.substr(0, json_path.size() - kJsonExt.size()) + ".om";
    }
    return json_path + ".om";
  }

  const Options& options_;
  obs::RunManifest manifest_;
  std::unique_ptr<obs::SnapshotPublisher> publisher_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace

int run(const Options& options, std::istream& in, std::ostream& out) {
  // Operator-requested software fault injection (ROTA_FI in the
  // environment); a malformed spec throws before any work starts.
  fi::Hooks::arm_from_env();
  ObservabilityScope scope(options);
  const int rc = dispatch(options, in, out);
  // serve owns `out` as its JSON-lines reply channel, so "wrote metrics"
  // notices must not be interleaved with protocol replies.
  std::ostream& notices = options.verb == Verb::kServe
                              ? std::cerr  // rota-lint: allow(log-discipline)
                              : out;
  const int sink_rc = scope.write_sinks(notices);
  return rc != 0 ? rc : sink_rc;
}

int run(const Options& options, std::ostream& out) {
  std::istringstream empty;
  return run(options, empty, out);
}

}  // namespace rota::cli
