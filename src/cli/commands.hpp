#pragma once

#include <istream>
#include <ostream>

#include "cli/options.hpp"

/// \file commands.hpp
/// Implementations of the `rota` subcommands, reading from / writing to
/// caller-supplied streams so the test suite can verify behavior without
/// spawning processes.

namespace rota::cli {

/// Execute the parsed invocation; returns a process exit code. `in` is
/// consumed only by `rota serve` (the JSON-lines request stream).
int run(const Options& options, std::istream& in, std::ostream& out);

/// Overload for verbs that never read input; serve gets an empty stream.
int run(const Options& options, std::ostream& out);

}  // namespace rota::cli
