#pragma once

#include <ostream>

#include "cli/options.hpp"

/// \file commands.hpp
/// Implementations of the `rota` subcommands, writing to a caller-supplied
/// stream so the test suite can verify output without spawning processes.

namespace rota::cli {

/// Execute the parsed invocation; returns a process exit code.
int run(const Options& options, std::ostream& out);

}  // namespace rota::cli
