/// \file main.cpp
/// Entry point of the `rota` command-line tool. All logic lives in
/// cli::parse / cli::run so it is unit-testable; this file only adapts
/// argv and maps parse errors to exit code 2.

#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include "cli/commands.hpp"
#include "cli/options.hpp"
#include "cli/signals.hpp"
#include "util/check.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  try {
    const rota::cli::Options options = rota::cli::parse(args);
    // Long-running verbs drain + checkpoint on the first SIGINT/SIGTERM
    // (exit 4) and force-exit on the second; the short verbs keep the
    // default die-immediately handlers.
    if (options.verb == rota::cli::Verb::kServe ||
        options.verb == rota::cli::Verb::kSweep ||
        options.verb == rota::cli::Verb::kMc ||
        options.verb == rota::cli::Verb::kDegrade) {
      rota::cli::install_signal_handlers();
    }
    return rota::cli::run(options, std::cin, std::cout);
  } catch (const rota::util::precondition_error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  } catch (const rota::util::io_error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "internal error: " << e.what() << '\n';
    return 3;
  }
}
