#include "cli/options.hpp"

#include <cstdlib>
#include <iterator>
#include <string_view>

#include "util/check.hpp"

namespace rota::cli {

namespace {

std::int64_t parse_positive_int(const std::string& text,
                                const std::string& flag) {
  ROTA_REQUIRE(!text.empty(), flag + " needs a value");
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  ROTA_REQUIRE(end != nullptr && *end == '\0' && v > 0,
               flag + " expects a positive integer, got '" + text + "'");
  return static_cast<std::int64_t>(v);
}

std::int64_t parse_non_negative_int(const std::string& text,
                                    const std::string& flag) {
  ROTA_REQUIRE(!text.empty(), flag + " needs a value");
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  ROTA_REQUIRE(end != nullptr && *end == '\0' && v >= 0,
               flag + " expects a non-negative integer, got '" + text + "'");
  return static_cast<std::int64_t>(v);
}

double parse_fraction(const std::string& text, const std::string& flag) {
  ROTA_REQUIRE(!text.empty(), flag + " needs a value");
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  ROTA_REQUIRE(end != nullptr && *end == '\0' && v > 0.0 && v <= 1.0,
               flag + " expects a fraction in (0, 1], got '" + text + "'");
  return v;
}

std::uint64_t parse_u64(const std::string& text, const std::string& flag) {
  ROTA_REQUIRE(!text.empty() && text[0] != '-', flag + " expects an unsigned "
               "integer, got '" + text + "'");
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 0);
  ROTA_REQUIRE(end != nullptr && *end == '\0',
               flag + " expects an unsigned integer, got '" + text + "'");
  return static_cast<std::uint64_t>(v);
}

/// Every flag the tool knows, for distinguishing "exists, wrong verb"
/// from "does not exist" in error messages.
constexpr std::string_view kAllFlags[] = {
    "--array",   "--iters",   "--spares",  "--policy",    "--metric",
    "--pgm",     "--csv",     "--schedule", "--seed",     "--mc",
    "--threads", "--metrics", "--trace",   "--progress",  "-v",
    "--verbose", "--cache-dir", "--cache-cap", "--batch", "--queue-cap",
    "--fault",   "--checkpoint", "--trials",  "--objective", "--json",
    "--stats-out", "--stats-interval", "--events",
    "--oblivious", "--resched", "--retire", "--ckpt-every"};

/// The observability flags every working verb owns.
constexpr std::string_view kObsFlags[] = {
    "--metrics", "--trace", "--stats-out", "--stats-interval", "--events",
    "--progress", "-v", "--verbose"};

/// Flags owned by `verb` beyond the shared observability set. The scoping
/// mirrors what each cmd_* actually reads: a flag a verb would silently
/// ignore is rejected up front.
std::vector<std::string_view> owned_flags(Verb verb) {
  std::vector<std::string_view> flags;
  switch (verb) {
    case Verb::kHelp:
    case Verb::kVersion:
      return flags;  // no flags, not even observability
    case Verb::kWorkloads:
      break;
    case Verb::kSchedule:
      flags = {"--array", "--threads", "--csv", "--objective"};
      break;
    case Verb::kWear:
      flags = {"--array", "--iters", "--policy", "--metric", "--seed",
               "--schedule", "--pgm", "--threads"};
      break;
    case Verb::kLifetime:
      // No --policy: lifetime always compares all paper schemes.
      flags = {"--array", "--iters", "--metric", "--seed", "--spares",
               "--mc", "--threads"};
      break;
    case Verb::kArea:
      flags = {"--array"};
      break;
    case Verb::kThermal:
      flags = {"--array", "--iters", "--seed", "--threads"};
      break;
    case Verb::kServe:
      // Geometry travels inside each request, not on the command line.
      flags = {"--threads", "--cache-dir", "--cache-cap", "--batch",
               "--queue-cap"};
      break;
    case Verb::kInject:
      // --resched upgrades the campaign to the degrade engine's
      // repair-and-reschedule loop; --objective drives those re-runs.
      flags = {"--array", "--iters", "--spares", "--policy", "--seed",
               "--fault", "--threads", "--resched", "--objective"};
      break;
    case Verb::kSweep:
      // No workload argument: sweep always covers the whole Table II zoo.
      flags = {"--array", "--iters", "--metric", "--seed", "--csv",
               "--checkpoint", "--threads"};
      break;
    case Verb::kMc:
      flags = {"--array", "--iters", "--policy", "--metric", "--seed",
               "--trials", "--checkpoint", "--threads"};
      break;
    case Verb::kPareto:
      // Degraded-array search: --fault/--spares build the ArrayState the
      // fronts respect (permanent pe=U,V faults only; see fi::
      // array_state_from_faults).
      flags = {"--array", "--objective", "--fault", "--spares", "--threads",
               "--csv", "--json"};
      break;
    case Verb::kDegrade:
      flags = {"--array", "--iters", "--spares", "--policy", "--objective",
               "--seed", "--fault", "--threads", "--csv", "--checkpoint",
               "--ckpt-every", "--retire", "--oblivious", "--mc"};
      break;
  }
  flags.insert(flags.end(), std::begin(kObsFlags), std::end(kObsFlags));
  return flags;
}

template <typename Range>
bool contains(const Range& range, std::string_view flag) {
  for (std::string_view f : range) {
    if (f == flag) return true;
  }
  return false;
}

}  // namespace

std::string verb_name(Verb verb) {
  switch (verb) {
    case Verb::kHelp:
      return "help";
    case Verb::kVersion:
      return "version";
    case Verb::kWorkloads:
      return "workloads";
    case Verb::kSchedule:
      return "schedule";
    case Verb::kWear:
      return "wear";
    case Verb::kLifetime:
      return "lifetime";
    case Verb::kArea:
      return "area";
    case Verb::kThermal:
      return "thermal";
    case Verb::kServe:
      return "serve";
    case Verb::kInject:
      return "inject";
    case Verb::kSweep:
      return "sweep";
    case Verb::kMc:
      return "mc";
    case Verb::kPareto:
      return "pareto";
    case Verb::kDegrade:
      return "degrade";
  }
  ROTA_UNREACHABLE("unhandled Verb");
}

void parse_geometry(const std::string& text, std::int64_t& width,
                    std::int64_t& height) {
  const std::size_t x = text.find('x');
  ROTA_REQUIRE(x != std::string::npos && x > 0 && x + 1 < text.size(),
               "--array expects WxH (e.g. 14x12), got '" + text + "'");
  width = parse_positive_int(text.substr(0, x), "--array width");
  height = parse_positive_int(text.substr(x + 1), "--array height");
}

wear::PolicyKind parse_policy(const std::string& name) {
  for (wear::PolicyKind kind :
       {wear::PolicyKind::kBaseline, wear::PolicyKind::kRwl,
        wear::PolicyKind::kRwlRo, wear::PolicyKind::kRandomStart,
        wear::PolicyKind::kDiagonalStride}) {
    if (wear::to_string(kind) == name) return kind;
  }
  ROTA_REQUIRE(false,
               "unknown policy '" + name +
                   "' (expected Baseline, RWL, RWL+RO, RandomStart or "
                   "DiagonalStride)");
  throw util::precondition_error("unreachable");
}

Options parse(const std::vector<std::string>& args) {
  Options opt;
  if (args.empty()) return opt;  // help
  for (std::size_t a = 0; a < args.size(); ++a)
    opt.raw_args += (a ? " " : "") + args[a];

  const std::string& verb = args[0];
  if (verb == "help" || verb == "--help" || verb == "-h") {
    opt.verb = Verb::kHelp;
  } else if (verb == "version" || verb == "--version" || verb == "-V") {
    opt.verb = Verb::kVersion;
  } else if (verb == "workloads") {
    opt.verb = Verb::kWorkloads;
  } else if (verb == "schedule") {
    opt.verb = Verb::kSchedule;
  } else if (verb == "wear") {
    opt.verb = Verb::kWear;
  } else if (verb == "lifetime") {
    opt.verb = Verb::kLifetime;
  } else if (verb == "area") {
    opt.verb = Verb::kArea;
  } else if (verb == "thermal") {
    opt.verb = Verb::kThermal;
  } else if (verb == "serve") {
    opt.verb = Verb::kServe;
  } else if (verb == "inject") {
    opt.verb = Verb::kInject;
  } else if (verb == "sweep") {
    opt.verb = Verb::kSweep;
  } else if (verb == "mc") {
    opt.verb = Verb::kMc;
  } else if (verb == "pareto") {
    opt.verb = Verb::kPareto;
  } else if (verb == "degrade") {
    opt.verb = Verb::kDegrade;
  } else {
    ROTA_REQUIRE(false, "unknown command '" + verb + "'\n" + usage());
  }

  // inject and degrade route faulted work through the spare pool, so
  // their default pool is non-empty (lifetime keeps 0 = the plain Eq. 3
  // array). degrade ages longer than inject's quick campaign.
  if (opt.verb == Verb::kInject) opt.spares = 4;
  if (opt.verb == Verb::kDegrade) {
    opt.spares = 4;
    opt.iterations = 512;
  }

  const bool wants_workload =
      opt.verb == Verb::kSchedule || opt.verb == Verb::kWear ||
      opt.verb == Verb::kLifetime || opt.verb == Verb::kThermal ||
      opt.verb == Verb::kInject || opt.verb == Verb::kMc ||
      opt.verb == Verb::kPareto || opt.verb == Verb::kDegrade;
  std::size_t i = 1;
  if (wants_workload && args.size() > 1 && args[1].rfind("--", 0) != 0) {
    opt.workload = args[1];
    i = 2;
  }

  auto value_of = [&](const std::string& flag) -> std::string {
    ROTA_REQUIRE(i + 1 < args.size(), flag + " needs a value");
    return args[++i];
  };

  const std::vector<std::string_view> owned = owned_flags(opt.verb);
  for (; i < args.size(); ++i) {
    const std::string& flag = args[i];
    if (!contains(owned, flag)) {
      if (contains(kAllFlags, flag)) {
        ROTA_REQUIRE(false, "option '" + flag +
                                "' is not accepted by 'rota " +
                                verb_name(opt.verb) +
                                "' (see 'rota help' for the flags each "
                                "command owns)");
      }
      ROTA_REQUIRE(false, "unknown option '" + flag + "' for 'rota " +
                              verb_name(opt.verb) + "'\n" + usage());
    }
    if (flag == "--array") {
      parse_geometry(value_of(flag), opt.array_width, opt.array_height);
    } else if (flag == "--iters") {
      opt.iterations = parse_positive_int(value_of(flag), flag);
    } else if (flag == "--spares") {
      opt.spares = parse_non_negative_int(value_of(flag), flag);
    } else if (flag == "--policy") {
      opt.policy = parse_policy(value_of(flag));
    } else if (flag == "--metric") {
      const std::string m = value_of(flag);
      if (m == "alloc") {
        opt.metric = wear::WearMetric::kAllocations;
      } else if (m == "cycles") {
        opt.metric = wear::WearMetric::kActiveCycles;
      } else {
        ROTA_REQUIRE(false, "--metric expects 'alloc' or 'cycles', got '" +
                                m + "'");
      }
    } else if (flag == "--pgm") {
      opt.pgm_path = value_of(flag);
    } else if (flag == "--csv") {
      opt.csv_out_path = value_of(flag);
    } else if (flag == "--schedule") {
      opt.schedule_path = value_of(flag);
    } else if (flag == "--seed") {
      opt.seed = parse_u64(value_of(flag), flag);
    } else if (flag == "--mc") {
      opt.mc_trials = parse_non_negative_int(value_of(flag), flag);
    } else if (flag == "--threads") {
      opt.threads = parse_non_negative_int(value_of(flag), flag);
    } else if (flag == "--metrics") {
      opt.metrics_path = value_of(flag);
    } else if (flag == "--trace") {
      opt.trace_path = value_of(flag);
    } else if (flag == "--stats-out") {
      opt.stats_out_path = value_of(flag);
      ROTA_REQUIRE(!opt.stats_out_path.empty(),
                   "--stats-out needs a file path");
    } else if (flag == "--stats-interval") {
      opt.stats_interval_ms = parse_positive_int(value_of(flag), flag);
    } else if (flag == "--events") {
      opt.events_path = value_of(flag);
      ROTA_REQUIRE(!opt.events_path.empty(), "--events needs a file path");
    } else if (flag == "--cache-dir") {
      opt.cache_dir = value_of(flag);
    } else if (flag == "--cache-cap") {
      opt.cache_capacity = parse_positive_int(value_of(flag), flag);
    } else if (flag == "--batch") {
      opt.max_batch = parse_positive_int(value_of(flag), flag);
    } else if (flag == "--queue-cap") {
      opt.queue_cap = parse_non_negative_int(value_of(flag), flag);
    } else if (flag == "--fault") {
      opt.faults.push_back(value_of(flag));
    } else if (flag == "--checkpoint") {
      opt.checkpoint_path = value_of(flag);
      ROTA_REQUIRE(!opt.checkpoint_path.empty(),
                   "--checkpoint needs a file path");
    } else if (flag == "--trials") {
      opt.trials = parse_positive_int(value_of(flag), flag);
    } else if (flag == "--objective") {
      opt.objective = value_of(flag);
      ROTA_REQUIRE(!opt.objective.empty(), "--objective needs a value");
    } else if (flag == "--json") {
      opt.json_out_path = value_of(flag);
      ROTA_REQUIRE(!opt.json_out_path.empty(), "--json needs a file path");
    } else if (flag == "--oblivious") {
      opt.oblivious = true;
    } else if (flag == "--resched") {
      opt.resched = true;
    } else if (flag == "--retire") {
      opt.retire_fraction = parse_fraction(value_of(flag), flag);
    } else if (flag == "--ckpt-every") {
      opt.checkpoint_every = parse_positive_int(value_of(flag), flag);
    } else if (flag == "--progress") {
      opt.progress = true;
    } else if (flag == "--verbose" || flag == "-v") {
      opt.verbose = true;
    } else {
      ROTA_UNREACHABLE("flag '" + flag + "' owned but not handled");
    }
  }

  ROTA_REQUIRE(opt.stats_interval_ms == 0 || !opt.stats_out_path.empty(),
               "--stats-interval requires --stats-out FILE (where the "
               "periodic snapshots land)");

  if (wants_workload) {
    const bool has_source = !opt.workload.empty() ||
                            (opt.verb == Verb::kWear &&
                             !opt.schedule_path.empty());
    ROTA_REQUIRE(has_source,
                 std::string(verb) +
                     " needs a workload abbreviation (see 'rota workloads')"
                     " or, for wear, --schedule FILE");
  }
  return opt;
}

std::string usage() {
  return
      "rota — RoTA wear-leveling toolkit (DATE 2025 reproduction)\n"
      "\n"
      "usage: rota <command> [workload] [flags]\n"
      "\n"
      "Every command owns its own flag set and rejects the rest; the\n"
      "observability flags at the bottom work with every command.\n"
      "\n"
      "commands and their flags:\n"
      "  workloads                 list the Table II workload zoo\n"
      "  schedule <abbr>           energy-optimal per-layer utilization "
      "spaces\n"
      "    --array WxH             PE array geometry (default 14x12)\n"
      "    --csv FILE              also export the schedule as CSV\n"
      "    --objective SPEC        mapper objective: energy (default) |\n"
      "                            lifetime | throughput |\n"
      "                            weighted:<w1>,<w2>,<w3>\n"
      "    --threads N             worker lanes (see below)\n"
      "  wear <abbr>               run the wear simulator, print stats + "
      "heatmap\n"
      "    --array WxH  --iters N  geometry / inference iterations\n"
      "    --policy NAME           Baseline | RWL | RWL+RO | RandomStart |\n"
      "                            DiagonalStride (default RWL+RO)\n"
      "    --metric alloc|cycles   wear accounting (default alloc)\n"
      "    --schedule FILE         drive the simulator with an imported\n"
      "                            schedule CSV (layer,x,y,tiles columns)\n"
      "    --pgm FILE              write the wear heatmap as a PGM image\n"
      "    --seed N  --threads N   stochastic-policy seed / worker lanes\n"
      "  lifetime <abbr>           lifetime improvement of all schemes\n"
      "    --array WxH  --iters N  geometry / inference iterations\n"
      "    --metric alloc|cycles   wear accounting (default alloc)\n"
      "    --spares N              tolerated PE failures (default 0)\n"
      "    --mc N                  cross-check the closed-form MTTF with N\n"
      "                            Monte-Carlo trials (default off)\n"
      "    --seed N  --threads N   Monte-Carlo seed / worker lanes\n"
      "  area                      area breakdown and torus overhead\n"
      "    --array WxH             PE array geometry (default 14x12)\n"
      "  thermal <abbr>            temperature fields and thermally-coupled\n"
      "                            lifetime gain (extension)\n"
      "    --array WxH  --iters N  --seed N  --threads N\n"
      "  serve                     JSON-lines batch service on stdin/stdout\n"
      "                            (one request object per line; ops ping,\n"
      "                            schedule, wear, lifetime, stats,\n"
      "                            shutdown; see README)\n"
      "    --threads N             concurrent requests per batch (default "
      "1)\n"
      "    --cache-dir DIR         on-disk schedule-cache tier (default "
      "off)\n"
      "    --cache-cap N           in-memory schedule-cache entries "
      "(default\n"
      "                            4096)\n"
      "    --batch N               flush replies at least every N requests\n"
      "    --queue-cap N           shed requests beyond N queued (default\n"
      "                            0 = unbounded)\n"
      "  inject <abbr>             kill PEs mid-run, route work through the\n"
      "                            spare pool, report degraded MTTF\n"
      "    --array WxH  --iters N  geometry / inference iterations\n"
      "    --spares N              spare-pool size (default 4)\n"
      "    --policy NAME           wear policy driven during the run\n"
      "    --fault SPEC            repeatable; pe=U,V@ITER[+K] |\n"
      "                            rank=R@ITER | weibull=N\n"
      "    --resched               repair-and-reschedule instead of the\n"
      "                            fault-oblivious campaign (the degrade\n"
      "                            engine; --objective drives the re-runs)\n"
      "    --objective SPEC        mapper objective for --resched re-runs\n"
      "    --seed N  --threads N   weibull sampling seed / worker lanes\n"
      "  degrade <abbr>            degraded-mode lifetime: in-run faults,\n"
      "                            live spare remapping, fault-aware\n"
      "                            rescheduling and masked wear rotation;\n"
      "                            exits 5 when the array retires\n"
      "    --array WxH  --iters N  geometry / inference iterations (default\n"
      "                            512)\n"
      "    --spares N              spare-pool size (default 4)\n"
      "    --policy NAME           wear policy, masked to live PEs\n"
      "    --objective SPEC        mapper objective for every (re)schedule\n"
      "    --fault SPEC            repeatable; pe=U,V@ITER[+K] |\n"
      "                            rank=R@ITER | weibull=N\n"
      "    --oblivious             fail-stop baseline: never reschedule or\n"
      "                            mask (for fault-aware-vs-oblivious\n"
      "                            comparisons)\n"
      "    --retire F              retire once live PEs drop below this\n"
      "                            fraction of the array (default 0.75)\n"
      "    --mc N                  cross-check the residual MTTF with N\n"
      "                            Monte-Carlo trials (default off)\n"
      "    --csv FILE              write the deterministic timeline CSV\n"
      "    --checkpoint FILE       save/resume the run (byte-identical,\n"
      "                            even mid-remap); --ckpt-every N sets "
      "the\n"
      "                            autosave cadence (default 64)\n"
      "    --seed N  --threads N   fault sampling seed / mapper lanes\n"
      "  sweep                     every workload x policy cell, CSV out\n"
      "    --array WxH  --iters N  geometry / inference iterations\n"
      "    --metric alloc|cycles   wear accounting (default alloc)\n"
      "    --csv FILE              write the result CSV here (default "
      "stdout)\n"
      "    --checkpoint FILE       save progress per workload; resume from\n"
      "                            the file if it exists (bit-identical)\n"
      "    --seed N  --threads N   policy seed / worker lanes\n"
      "  mc <abbr>                 Monte-Carlo MTTF of one workload+policy\n"
      "    --array WxH  --iters N  geometry / inference iterations\n"
      "    --policy NAME           wear policy (default RWL+RO)\n"
      "    --metric alloc|cycles   wear accounting (default alloc)\n"
      "    --trials N              Monte-Carlo trials (default 100000)\n"
      "    --checkpoint FILE       save moments per step; resume from the\n"
      "                            file if it exists (bit-identical)\n"
      "    --seed N  --threads N   sampling seed / worker lanes\n"
      "  pareto <abbr>             per-layer Pareto fronts over (energy,\n"
      "                            projected MTTF, cycles), with the\n"
      "                            --objective-selected member flagged\n"
      "    --array WxH             PE array geometry (default 14x12)\n"
      "    --objective SPEC        energy | lifetime | throughput |\n"
      "                            weighted:<w1>,<w2>,<w3> (default energy)\n"
      "    --fault SPEC            repeatable; permanent pe=U,V@ITER faults\n"
      "                            folded into the degraded array the "
      "fronts\n"
      "                            respect\n"
      "    --spares N              spares absorbing --fault PEs (default "
      "0)\n"
      "    --csv FILE              write the fronts as CSV (bit-exact "
      "hexfloat\n"
      "                            columns)\n"
      "    --json FILE             write the {manifest, pareto} JSON "
      "envelope\n"
      "    --threads N             worker lanes (bit-identical results)\n"
      "  version                   build identity (version, git SHA, type)\n"
      "  help                      this text\n"
      "\n"
      "  --threads N everywhere: 1 = serial (default), 0 = one lane per\n"
      "  hardware thread; results are identical for any value, only wall\n"
      "  time changes.\n"
      "\n"
      "observability (any working command):\n"
      "  --metrics FILE            write {manifest, metrics} JSON after the "
      "run\n"
      "  --trace FILE              write a Chrome trace-event JSON "
      "(Perfetto)\n"
      "  --stats-out FILE          live metrics snapshot (JSON; an\n"
      "                            OpenMetrics twin lands next to it as\n"
      "                            FILE with .om extension); written\n"
      "                            atomically at exit, and periodically "
      "with\n"
      "                            --stats-interval\n"
      "  --stats-interval MS       publish the snapshot every MS "
      "milliseconds\n"
      "                            on a sampler thread (requires "
      "--stats-out)\n"
      "  --events FILE             structured JSON-lines event log "
      "(rotated\n"
      "                            at 1 MiB; FILE.1 keeps one generation)\n"
      "  --progress                ETA progress on stderr (TTY only; with\n"
      "                            --events, non-TTY runs heartbeat "
      "through\n"
      "                            the event log instead)\n"
      "  -v, --verbose             print the collected metrics table\n"
      "\n"
      "signals (serve, sweep, mc, degrade): the first SIGINT/SIGTERM\n"
      "drains, saves any --checkpoint and exits 4; a second signal\n"
      "force-exits (130). degrade exits 5 when the array retires.\n"
      "ROTA_FI=read=0.1,corrupt=0.05,... arms software fault injection\n"
      "(see README).\n";
}

}  // namespace rota::cli
