#pragma once

#include <atomic>

/// \file signals.hpp
/// SIGINT/SIGTERM handling for the long-running `rota` verbs (serve,
/// sweep, mc). The contract, documented in the README:
///
///   first signal   → cooperative drain: the flag below flips, the verb
///                    finishes its in-flight unit of work, checkpoints or
///                    flushes, and exits with kExitInterrupted (4);
///   second signal  → immediate _exit(130) — the escape hatch when the
///                    drain itself is stuck.
///
/// The handlers are installed *without* SA_RESTART so a signal arriving
/// during the blocking std::getline of `rota serve` interrupts the read
/// (EINTR) instead of silently restarting it — otherwise the drain would
/// wait for the next request line to notice the flag.
///
/// Everything here is async-signal-safe: the handler touches one atomic
/// and (on the second hit) calls _exit.

namespace rota::cli {

/// Exit code of a run that was interrupted and drained cleanly.
inline constexpr int kExitInterrupted = 4;

/// Exit code of a `rota degrade` run that hit the retirement threshold:
/// the array kept too few live PEs (or no feasible schedule) to continue.
/// Distinct from failure (1) — the run itself completed honestly.
inline constexpr int kExitRetired = 5;

/// Install SIGINT/SIGTERM handlers (idempotent). POSIX-only; a no-op on
/// other platforms, where the default handlers keep terminating.
void install_signal_handlers();

/// The drain flag the handlers set. Stable address for the whole process
/// — safe to hand to svc::Engine::serve.
[[nodiscard]] const std::atomic<bool>* interrupt_flag();

/// True once the first signal has arrived.
[[nodiscard]] bool interrupted();

/// Test seams: raise or clear the flag exactly as the handler would,
/// without involving real signals.
void simulate_interrupt();
void clear_interrupt();

/// Deterministic mid-run interruption for tests: the flag rises after
/// `units` more tick_interrupt_budget() calls (each completed sweep cell
/// or mc step ticks once). Negative disables the budget (the default).
void simulate_interrupt_after(int units);

/// Called by the checkpointable verbs after each completed unit of work;
/// a no-op unless simulate_interrupt_after armed a budget.
void tick_interrupt_budget();

}  // namespace rota::cli
