#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "wear/policy.hpp"
#include "wear/simulator.hpp"

/// \file options.hpp
/// Command-line parsing for the `rota` tool. Kept free of I/O so the test
/// suite can exercise it directly; parse errors throw
/// util::precondition_error with a user-facing message.

namespace rota::cli {

/// Which subcommand was requested.
enum class Verb {
  kHelp,
  kVersion,    ///< print build identity (version, git SHA, build type)
  kWorkloads,  ///< list the Table II zoo
  kSchedule,   ///< per-layer utilization spaces for one workload
  kWear,       ///< run the wear simulator and print stats + heatmap
  kLifetime,   ///< lifetime improvement of all schemes for one workload
  kArea,       ///< area breakdown and torus overhead
  kThermal,    ///< temperature fields and Arrhenius-coupled lifetime
};

/// Fully parsed invocation.
struct Options {
  Verb verb = Verb::kHelp;
  std::string workload;  ///< Table II abbreviation (where applicable)
  std::int64_t array_width = 14;
  std::int64_t array_height = 12;
  std::int64_t iterations = 1000;
  std::int64_t spares = 0;
  std::int64_t mc_trials = 0;  ///< lifetime: Monte-Carlo cross-check trials
  std::int64_t threads = 1;    ///< worker lanes (0 = hardware concurrency);
                               ///< results are identical for any value
  std::uint64_t seed = 0x526f5441;  ///< stochastic policies / MC ("RoTA")
  wear::PolicyKind policy = wear::PolicyKind::kRwlRo;
  wear::WearMetric metric = wear::WearMetric::kAllocations;
  std::string pgm_path;       ///< optional heatmap image output
  std::string csv_out_path;   ///< schedule: export the schedule as CSV
  std::string schedule_path;  ///< wear: import a schedule CSV instead of
                              ///< running the built-in mapper
  // Observability (see src/obs/): every verb accepts these.
  std::string metrics_path;  ///< write {manifest, metrics} JSON here
  std::string trace_path;    ///< write a Chrome trace-event JSON here
  bool progress = false;     ///< ETA progress lines on stderr (TTY only)
  bool verbose = false;      ///< print the metrics table after the run
  std::string raw_args;      ///< the argv tail, joined (for RunManifest)
};

/// Parse argv (excluding argv[0]).
/// Recognized: workloads | schedule | wear | lifetime | area | version |
/// help, plus
///   --array WxH   --iters N    --policy NAME   --metric alloc|cycles
///   --spares N    --pgm FILE   --seed N        --mc N
///   --threads N   --metrics FILE  --trace FILE  --progress  -v/--verbose
/// Throws util::precondition_error on unknown verbs/flags/values.
Options parse(const std::vector<std::string>& args);

/// Parse "14x12"-style geometry. Throws on malformed input.
void parse_geometry(const std::string& text, std::int64_t& width,
                    std::int64_t& height);

/// Parse a policy name as printed by wear::to_string (case-sensitive:
/// "Baseline", "RWL", "RWL+RO", "RandomStart", "DiagonalStride").
wear::PolicyKind parse_policy(const std::string& name);

/// The help text.
std::string usage();

}  // namespace rota::cli
