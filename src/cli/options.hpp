#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "wear/policy.hpp"
#include "wear/simulator.hpp"

/// \file options.hpp
/// Command-line parsing for the `rota` tool. Kept free of I/O so the test
/// suite can exercise it directly; parse errors throw
/// util::precondition_error with a user-facing message.
///
/// Options are subcommand-scoped: every verb declares the set of flags it
/// owns and rejects the rest with an "option not accepted by this
/// subcommand" error, so `rota lifetime --policy RWL` (lifetime always
/// compares all schemes) fails loudly instead of silently ignoring the
/// flag. The observability flags (--metrics, --trace, --progress,
/// -v/--verbose) are owned by every working verb.

namespace rota::cli {

/// Which subcommand was requested.
enum class Verb {
  kHelp,
  kVersion,    ///< print build identity (version, git SHA, build type)
  kWorkloads,  ///< list the Table II zoo
  kSchedule,   ///< per-layer utilization spaces for one workload
  kWear,       ///< run the wear simulator and print stats + heatmap
  kLifetime,   ///< lifetime improvement of all schemes for one workload
  kArea,       ///< area breakdown and torus overhead
  kThermal,    ///< temperature fields and Arrhenius-coupled lifetime
  kServe,      ///< JSON-lines batch service on stdin/stdout (rota::svc)
  kInject,     ///< hardware fault injection through the spare pool (rota::fi)
  kSweep,      ///< full workload x policy sweep to CSV, checkpointable
  kMc,         ///< Monte-Carlo MTTF of one workload+policy, checkpointable
  kPareto,     ///< per-layer Pareto fronts over (energy, MTTF, cycles)
  kDegrade,    ///< degraded-mode lifetime engine: faults, remaps,
               ///< reschedules, retirement (rota::fi)
};

/// The verb's name as typed on the command line ("wear", "serve", ...).
[[nodiscard]] std::string verb_name(Verb verb);

/// Fully parsed invocation.
struct Options {
  Verb verb = Verb::kHelp;
  std::string workload;  ///< Table II abbreviation (where applicable)
  std::int64_t array_width = 14;
  std::int64_t array_height = 12;
  std::int64_t iterations = 1000;
  std::int64_t spares = 0;
  std::int64_t mc_trials = 0;  ///< lifetime: Monte-Carlo cross-check trials
  std::int64_t threads = 1;    ///< worker lanes (0 = hardware concurrency);
                               ///< results are identical for any value
  std::uint64_t seed = 0x526f5441;  ///< stochastic policies / MC ("RoTA")
  wear::PolicyKind policy = wear::PolicyKind::kRwlRo;
  wear::WearMetric metric = wear::WearMetric::kAllocations;
  std::string pgm_path;       ///< optional heatmap image output
  std::string csv_out_path;   ///< schedule/pareto: export result as CSV
  std::string json_out_path;  ///< pareto: write the JSON envelope here
  /// schedule/pareto: mapper objective spec, unparsed ("energy",
  /// "lifetime", "throughput" or "weighted:<w1>,<w2>,<w3>"; see
  /// sched::parse_objective).
  std::string objective = "energy";
  std::string schedule_path;  ///< wear: import a schedule CSV instead of
                              ///< running the built-in mapper
  // serve (see src/svc/):
  std::string cache_dir;      ///< on-disk schedule-cache tier ("" = off)
  std::int64_t cache_capacity = 4096;  ///< in-memory schedule-cache entries
  std::int64_t max_batch = 64;  ///< flush replies at least this often
  std::int64_t queue_cap = 0;   ///< shed beyond this queue depth (0 = off)
  // inject / sweep / mc / degrade (see src/fi/):
  std::vector<std::string> faults;  ///< --fault specs, unparsed (repeatable)
  std::string checkpoint_path;      ///< checkpoint/resume file ("" = off)
  std::int64_t trials = 100000;     ///< mc: Monte-Carlo trials
  bool oblivious = false;  ///< degrade: fail-stop baseline (no repair loop)
  bool resched = false;    ///< inject: route through the degrade engine
  double retire_fraction = 0.75;  ///< degrade: retire below this live share
  std::int64_t checkpoint_every = 64;  ///< degrade: autosave cadence (iters)
  // Observability (see src/obs/): every verb accepts these.
  std::string metrics_path;  ///< write {manifest, metrics} JSON here
  std::string trace_path;    ///< write a Chrome trace-event JSON here
  std::string stats_out_path;  ///< live snapshot JSON path (+ .om twin)
  std::int64_t stats_interval_ms = 0;  ///< snapshot period; 0 = exit only
  std::string events_path;   ///< structured EventLog JSON-lines sink
  bool progress = false;     ///< ETA progress lines on stderr (TTY only)
  bool verbose = false;      ///< print the metrics table after the run
  std::string raw_args;      ///< the argv tail, joined (for RunManifest)
};

/// Parse argv (excluding argv[0]).
/// Verbs: workloads | schedule | wear | lifetime | area | thermal |
/// serve | inject | sweep | mc | pareto | version | help. Each verb
/// accepts only
/// the flags it owns (see
/// usage()); a flag that exists but belongs to a different verb produces
/// "option --X is not accepted by 'rota <verb>'", a flag that exists
/// nowhere produces "unknown option". Throws util::precondition_error on
/// any parse failure.
Options parse(const std::vector<std::string>& args);

/// Parse "14x12"-style geometry. Throws on malformed input.
void parse_geometry(const std::string& text, std::int64_t& width,
                    std::int64_t& height);

/// Parse a policy name as printed by wear::to_string (case-sensitive:
/// "Baseline", "RWL", "RWL+RO", "RandomStart", "DiagonalStride").
wear::PolicyKind parse_policy(const std::string& name);

/// The help text.
std::string usage();

}  // namespace rota::cli
