#include "cli/signals.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <csignal>
#include <unistd.h>
#define ROTA_CLI_HAVE_SIGNALS 1
#endif

namespace rota::cli {

namespace {

std::atomic<bool> g_interrupted{false};

#ifdef ROTA_CLI_HAVE_SIGNALS
/// Async-signal-safe by construction: one atomic exchange, and _exit on
/// the second hit (128 + SIGINT, the conventional killed-by-signal code).
extern "C" void rota_cli_signal_handler(int /*signum*/) {
  if (g_interrupted.exchange(true, std::memory_order_relaxed)) {
    _exit(130);
  }
}
#endif

}  // namespace

void install_signal_handlers() {
#ifdef ROTA_CLI_HAVE_SIGNALS
  struct sigaction action {};
  action.sa_handler = &rota_cli_signal_handler;
  sigemptyset(&action.sa_mask);
  // Deliberately no SA_RESTART: serve's blocking getline must EINTR so
  // the drain starts now, not at the next request line.
  action.sa_flags = 0;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
#endif
}

const std::atomic<bool>* interrupt_flag() { return &g_interrupted; }

bool interrupted() {
  return g_interrupted.load(std::memory_order_relaxed);
}

void simulate_interrupt() {
  g_interrupted.store(true, std::memory_order_relaxed);
}

void clear_interrupt() {
  g_interrupted.store(false, std::memory_order_relaxed);
}

namespace {
std::atomic<int> g_interrupt_budget{-1};
}  // namespace

void simulate_interrupt_after(int units) {
  g_interrupt_budget.store(units, std::memory_order_relaxed);
}

void tick_interrupt_budget() {
  if (g_interrupt_budget.load(std::memory_order_relaxed) < 0) return;
  if (g_interrupt_budget.fetch_sub(1, std::memory_order_relaxed) <= 1) {
    g_interrupt_budget.store(-1, std::memory_order_relaxed);
    g_interrupted.store(true, std::memory_order_relaxed);
  }
}

}  // namespace rota::cli
