#include "cli/signals.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <csignal>
#include <unistd.h>
#define ROTA_CLI_HAVE_SIGNALS 1
#endif

namespace rota::cli {

namespace {

/// Written from signal context. [support.signal] only blesses atomic
/// access in a handler when the atomic is lock-free — a locking fallback
/// would deadlock if the signal lands while the lock is held — so the
/// flag must be lock-free *on every platform*, not just this one.
std::atomic<bool> g_interrupted{false};
static_assert(std::atomic<bool>::is_always_lock_free,
              "the interrupt flag is touched from a signal handler and "
              "must never fall back to a locking implementation");

#ifdef ROTA_CLI_HAVE_SIGNALS
/// Async-signal-safe by construction: one lock-free atomic exchange, and
/// _exit on the second hit (128 + SIGINT, the conventional
/// killed-by-signal code). The body is checked by the signal-safety lint
/// rule (tools/rota_lint.py) — only the async-signal-safe whitelist may
/// be called from here; in particular no allocation, no iostreams, no
/// util::Mutex (signals.cpp state is deliberately outside the capability
/// model: a mutex cannot be acquired in signal context at all).
extern "C" void rota_cli_signal_handler(int /*signum*/) {
  if (g_interrupted.exchange(true, std::memory_order_relaxed)) {
    _exit(130);
  }
}
#endif

}  // namespace

void install_signal_handlers() {
#ifdef ROTA_CLI_HAVE_SIGNALS
  struct sigaction action {};
  action.sa_handler = &rota_cli_signal_handler;
  sigemptyset(&action.sa_mask);
  // Deliberately no SA_RESTART: serve's blocking getline must EINTR so
  // the drain starts now, not at the next request line.
  action.sa_flags = 0;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
#endif
}

const std::atomic<bool>* interrupt_flag() { return &g_interrupted; }

bool interrupted() {
  return g_interrupted.load(std::memory_order_relaxed);
}

void simulate_interrupt() {
  g_interrupted.store(true, std::memory_order_relaxed);
}

void clear_interrupt() {
  g_interrupted.store(false, std::memory_order_relaxed);
}

namespace {
/// Test-only simulation state, ticked from ordinary (non-signal) code on
/// the serve loop's thread; lock-freedom asserted anyway so a future
/// signal-context use cannot silently regress.
std::atomic<int> g_interrupt_budget{-1};
static_assert(std::atomic<int>::is_always_lock_free,
              "interrupt budget must stay lock-free");
}  // namespace

void simulate_interrupt_after(int units) {
  g_interrupt_budget.store(units, std::memory_order_relaxed);
}

void tick_interrupt_budget() {
  if (g_interrupt_budget.load(std::memory_order_relaxed) < 0) return;
  if (g_interrupt_budget.fetch_sub(1, std::memory_order_relaxed) <= 1) {
    g_interrupt_budget.store(-1, std::memory_order_relaxed);
    g_interrupted.store(true, std::memory_order_relaxed);
  }
}

}  // namespace rota::cli
