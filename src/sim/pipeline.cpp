#include "sim/pipeline.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "util/check.hpp"

namespace rota::sim {

void TilePipeline::push(const TilePhases& phases) {
  ROTA_REQUIRE(phases.scatter >= 0.0 && phases.compute >= 0.0 &&
                   phases.gather >= 0.0,
               "phase durations must be non-negative");
  // Tile i loads into local-buffer slot i%2, which frees when tile i−2
  // finishes computing.
  const double load_end =
      std::max(load_end_prev_, compute_end_prev2_) + phases.scatter;
  const double compute_end =
      std::max(load_end, compute_end_prev_) + phases.compute;
  const double gather_end =
      std::max(compute_end, gather_end_prev_) + phases.gather;

  load_end_prev2_ = load_end_prev_;
  load_end_prev_ = load_end;
  compute_end_prev2_ = compute_end_prev_;
  compute_end_prev_ = compute_end;
  gather_end_prev_ = gather_end;
  ++tiles_;
}

void TilePipeline::push_uniform(const TilePhases& phases, std::int64_t count) {
  ROTA_REQUIRE(count >= 0, "tile count must be non-negative");
  // Warm the pipeline, then verify the per-tile state increment has become
  // constant and extrapolate the remaining tiles exactly.
  constexpr std::int64_t kWarmup = 6;
  std::int64_t pushed = 0;
  for (; pushed < count && pushed < kWarmup; ++pushed) push(phases);
  if (pushed >= count) return;

  auto snapshot = [this]() {
    return std::array<double, 5>{load_end_prev_, load_end_prev2_,
                                 compute_end_prev_, compute_end_prev2_,
                                 gather_end_prev_};
  };
  const auto s0 = snapshot();
  push(phases);
  ++pushed;
  const auto s1 = snapshot();
  if (pushed < count) {
    push(phases);
    ++pushed;
    const auto s2 = snapshot();
    for (std::size_t i = 0; i < s0.size(); ++i) {
      const double d1 = s1[i] - s0[i];
      const double d2 = s2[i] - s1[i];
      ROTA_ENSURE(std::abs(d1 - d2) <= 1e-9 * std::max(1.0, std::abs(d2)),
                  "pipeline did not reach steady state during warmup");
    }
    const std::int64_t remaining = count - pushed;
    const double step = static_cast<double>(remaining);
    load_end_prev_ += (s2[0] - s1[0]) * step;
    load_end_prev2_ += (s2[1] - s1[1]) * step;
    compute_end_prev_ += (s2[2] - s1[2]) * step;
    compute_end_prev2_ += (s2[3] - s1[3]) * step;
    gather_end_prev_ += (s2[4] - s1[4]) * step;
    tiles_ += remaining;
  }
}

double TilePipeline::makespan() const {
  return std::max(compute_end_prev_, gather_end_prev_);
}

}  // namespace rota::sim
