#pragma once

#include <cstdint>

#include "arch/config.hpp"
#include "sched/schedule.hpp"
#include "util/grid.hpp"
#include "wear/policy.hpp"

/// \file noc_traffic.hpp
/// Link-level traffic accounting for the local (inter-PE) network.
/// Partial sums ride the column links of whatever utilization space a tile
/// occupies, so link wear mirrors PE wear: a fixed-corner schedule
/// electromigrates the corner column links first, while rotational
/// wear-leveling spreads link traffic the same way it spreads PE usage.
/// This module quantifies that side effect (not studied in the paper, but
/// implied by its design) and also verifies the torus moves *no more*
/// total local traffic than the mesh for the same schedule.

namespace rota::sim {

/// Per-link accumulated traffic of the vertical (column) local network.
/// Link (c, r) is the unidirectional hop from PE (c, r) to PE (c, r+1);
/// on a torus row h−1 wraps to row 0, on a mesh the wrap link does not
/// exist and must stay at zero.
class LinkTrafficTracker {
 public:
  LinkTrafficTracker(std::int64_t width, std::int64_t height);

  [[nodiscard]] std::int64_t width() const { return width_; }
  [[nodiscard]] std::int64_t height() const { return height_; }

  /// Record one tile: a space anchored at (u, v) of size x×y whose columns
  /// each accumulate partial sums upward across y−1 hops, `words` words
  /// per hop. With allow_wrap the space and its hops may cross the edges.
  void add_space_traffic(std::int64_t u, std::int64_t v, std::int64_t x,
                         std::int64_t y, std::int64_t words, bool allow_wrap);

  [[nodiscard]] const util::Grid<std::int64_t>& vertical_links() const { return links_; }

  [[nodiscard]] std::int64_t max_link() const;
  [[nodiscard]] std::int64_t total_words() const;

 private:
  std::int64_t width_;
  std::int64_t height_;
  util::Grid<std::int64_t> links_;
};

/// Drive a wear-leveling policy over a schedule and accumulate link
/// traffic for `iterations` passes. Uses one hop-unit per reduction step
/// per column (lb_q words each), matching the cost model's hop counting.
LinkTrafficTracker simulate_link_traffic(const sched::NetworkSchedule& ns,
                                         wear::Policy& policy,
                                         std::int64_t iterations,
                                         bool allow_wrap);

}  // namespace rota::sim
