#include "sim/noc_traffic.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace rota::sim {

LinkTrafficTracker::LinkTrafficTracker(std::int64_t width,
                                       std::int64_t height)
    : width_(width),
      height_(height),
      links_(static_cast<std::size_t>(width),
             static_cast<std::size_t>(height)) {
  ROTA_REQUIRE(width > 0 && height > 0, "tracker dimensions must be positive");
}

void LinkTrafficTracker::add_space_traffic(std::int64_t u, std::int64_t v,
                                           std::int64_t x, std::int64_t y,
                                           std::int64_t words,
                                           bool allow_wrap) {
  ROTA_REQUIRE(u >= 0 && u < width_ && v >= 0 && v < height_,
               "space origin out of range");
  ROTA_REQUIRE(x >= 1 && x <= width_ && y >= 1 && y <= height_,
               "space size out of range");
  ROTA_REQUIRE(words >= 0, "traffic must be non-negative");
  if (!allow_wrap) {
    ROTA_REQUIRE(u + x <= width_ && v + y <= height_,
                 "space crosses the array edge on a mesh");
  }
  for (std::int64_t dc = 0; dc < x; ++dc) {
    const std::int64_t c = (u + dc) % width_;
    for (std::int64_t dr = 0; dr < y - 1; ++dr) {
      const std::int64_t r = (v + dr) % height_;
      links_(static_cast<std::size_t>(c), static_cast<std::size_t>(r)) +=
          words;
    }
  }
}

std::int64_t LinkTrafficTracker::max_link() const {
  std::int64_t best = 0;
  for (std::int64_t v : links_.cells()) best = std::max(best, v);
  return best;
}

std::int64_t LinkTrafficTracker::total_words() const {
  std::int64_t total = 0;
  for (std::int64_t v : links_.cells()) total += v;
  return total;
}

LinkTrafficTracker simulate_link_traffic(const sched::NetworkSchedule& ns,
                                         wear::Policy& policy,
                                         std::int64_t iterations,
                                         bool allow_wrap) {
  ROTA_REQUIRE(iterations >= 0, "iterations must be non-negative");
  LinkTrafficTracker tracker(ns.config.array_width, ns.config.array_height);
  for (std::int64_t it = 0; it < iterations; ++it) {
    for (const auto& layer : ns.layers) {
      const sched::UtilSpace& space = layer.space;
      const std::int64_t words_per_tile =
          std::max<std::int64_t>(1, layer.reduction_steps) *
          std::max<std::int64_t>(1, layer.mapping.lb_q);
      policy.begin_layer(space);
      for (std::int64_t z = 0; z < layer.tiles; ++z) {
        const wear::Placement at = policy.next_origin(space);
        tracker.add_space_traffic(at.u, at.v, space.x, space.y,
                                  words_per_tile, allow_wrap);
      }
    }
  }
  return tracker;
}

}  // namespace rota::sim
