#include "sim/engine.hpp"

#include <algorithm>
#include <cmath>

#include "sim/controller.hpp"
#include "util/check.hpp"

namespace rota::sim {

ExecutionEngine::ExecutionEngine(arch::AcceleratorConfig cfg)
    : cfg_(std::move(cfg)) {
  cfg_.validate();
}

TilePhases ExecutionEngine::phases_of(const sched::LayerSchedule& layer,
                                      bool drained) const {
  const double bw = static_cast<double>(cfg_.global_net_words_per_cycle);
  TilePhases ph;
  ph.scatter = std::ceil(static_cast<double>(layer.scatter_words) / bw);
  ph.compute = static_cast<double>(layer.compute_macs_per_pe);
  ph.gather =
      drained ? std::ceil(static_cast<double>(layer.gather_words) / bw) : 0.0;
  return ph;
}

LayerTiming ExecutionEngine::simulate_layer(
    const sched::LayerSchedule& layer) const {
  ROTA_REQUIRE(layer.tiles >= 0, "tile count must be non-negative");
  ROTA_REQUIRE(layer.reduction_steps >= 1, "reduction steps must be >= 1");
  TilePipeline pipe;
  const TilePhases plain = phases_of(layer, false);
  const TilePhases draining = phases_of(layer, true);
  // Each output tile runs reduction_steps local-buffer refills; outputs
  // drain on the last refill of each output tile.
  const std::int64_t output_tiles =
      std::max<std::int64_t>(layer.output_tiles,
                             layer.tiles);  // pre-grouping schedules
  for (std::int64_t tile = 0; tile < output_tiles; ++tile) {
    for (std::int64_t step = 1; step <= layer.reduction_steps; ++step) {
      pipe.push(step == layer.reduction_steps ? draining : plain);
    }
  }
  LayerTiming t;
  t.cycles = pipe.makespan();
  t.tiles = layer.tiles;
  t.controller_update_hidden =
      plain.compute >= WearLevelingController::kUpdateCycles;
  return t;
}

LayerTiming ExecutionEngine::estimate_layer(
    const sched::LayerSchedule& layer) const {
  ROTA_REQUIRE(layer.tiles >= 0, "tile count must be non-negative");
  ROTA_REQUIRE(layer.reduction_steps >= 1, "reduction steps must be >= 1");
  const TilePhases plain = phases_of(layer, false);
  const TilePhases draining = phases_of(layer, true);
  // Steady-state rate: the pipeline advances by the bottleneck stage per
  // tile; gathers happen once per reduction_steps tiles.
  const double rs = static_cast<double>(layer.reduction_steps);
  const double gather_amortized = draining.gather / rs;
  const double rate =
      std::max({plain.scatter, plain.compute, gather_amortized});
  const double refills =
      static_cast<double>(std::max(layer.output_tiles, layer.tiles)) * rs;
  LayerTiming t;
  t.cycles = refills * rate + plain.scatter + plain.compute +
             draining.gather;
  t.tiles = layer.tiles;
  t.controller_update_hidden =
      plain.compute >= WearLevelingController::kUpdateCycles;
  return t;
}

double ExecutionEngine::network_cycles(
    const sched::NetworkSchedule& schedule) const {
  double total = 0.0;
  for (const auto& layer : schedule.layers)
    total += estimate_layer(layer).cycles;
  return total;
}

LayerTiming ExecutionEngine::estimate_layer_with_dram(
    const sched::LayerSchedule& layer, const DramParams& dram) const {
  ROTA_REQUIRE(dram.words_per_cycle > 0.0,
               "DRAM bandwidth must be positive");
  LayerTiming t = estimate_layer(layer);
  const double dram_floor =
      static_cast<double>(layer.accesses.dram_accesses) /
      dram.words_per_cycle;
  if (dram_floor > t.cycles) {
    t.cycles = dram_floor;
    t.memory_bound = true;
  }
  return t;
}

double ExecutionEngine::network_cycles_with_dram(
    const sched::NetworkSchedule& schedule, const DramParams& dram) const {
  double total = 0.0;
  for (const auto& layer : schedule.layers)
    total += estimate_layer_with_dram(layer, dram).cycles;
  return total;
}

}  // namespace rota::sim
