#pragma once

#include <cstdint>

#include "util/check.hpp"

/// \file controller.hpp
/// Register-transfer-level-faithful model of the wear-leveling logic the
/// paper adds to the mapping controller (§IV-F / §V-D): four parameter
/// registers (w, h, x, y) and two circular counters tracking the (u, v)
/// coordinate. The counter update runs during the data-tile processing
/// period, so it costs zero extra cycles; the test suite cross-validates
/// this hardware model against the behavioral wear::Policy for RWL+RO.

namespace rota::sim {

/// The RWL+RO wear-leveling controller block.
class WearLevelingController {
 public:
  /// \pre array dimensions positive.
  WearLevelingController(std::int64_t array_width, std::int64_t array_height)
      : w_(array_width), h_(array_height) {
    ROTA_REQUIRE(array_width > 0 && array_height > 0,
                 "controller array registers must be positive");
  }

  /// Load the layer's utilization-space registers before its first tile
  /// (parameters are "deterministically identifiable before initiating a
  /// layer computation"). The (u, v) counters are NOT reset: residual
  /// optimization relays them across layers.
  void load_layer(std::int64_t x, std::int64_t y) {
    ROTA_REQUIRE(x >= 1 && x <= w_ && y >= 1 && y <= h_,
                 "utilization space registers out of range");
    x_ = x;
    y_ = y;
  }

  [[nodiscard]] std::int64_t u() const { return u_; }
  [[nodiscard]] std::int64_t v() const { return v_; }

  /// One tile dispatched: advance the circular counters (one cycle of
  /// counter logic, overlapped with the tile's compute phase).
  void step() {
    ROTA_REQUIRE(x_ > 0 && y_ > 0, "load_layer must be called first");
    // u circular counter: u <- (u + x) mod w, implemented in hardware as
    // an adder with conditional wrap (never needs division).
    u_ += x_;
    if (u_ >= w_) u_ -= w_;
    // Vertical stride when u loops back to the leftmost PE (Algorithm 1,
    // line 6: "if u == 1" in the paper's 1-indexed form).
    if (u_ == 0) {
      v_ += y_;
      if (v_ >= h_) v_ -= h_;
    }
  }

  /// Counter-update latency in cycles; the update happens during tile
  /// processing, so it is exposed only so the engine can check overlap.
  static constexpr double kUpdateCycles = 1.0;

 private:
  std::int64_t w_;
  std::int64_t h_;
  std::int64_t x_ = 0;
  std::int64_t y_ = 0;
  std::int64_t u_ = 0;
  std::int64_t v_ = 0;
};

}  // namespace rota::sim
