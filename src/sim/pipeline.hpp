#pragma once

#include <cstdint>

/// \file pipeline.hpp
/// Cycle-level model of the accelerator's tile pipeline. Each data tile
/// passes through three phases — scatter (GLB→PE over the global network),
/// compute (MAC array), gather (PE→GLB drain) — with double-buffered local
/// buffers, so the scatter of tile i+1 overlaps the compute of tile i.
/// The makespan recurrence is evaluated streaming in O(1) memory.

namespace rota::sim {

/// Durations of one tile's phases, in cycles.
struct TilePhases {
  double scatter = 0.0;
  double compute = 0.0;
  double gather = 0.0;
};

/// Streaming double-buffered three-stage pipeline.
class TilePipeline {
 public:
  /// Feed the next tile's phase durations.
  void push(const TilePhases& phases);

  /// Feed `count` identical tiles (exact, closed-form accelerated).
  void push_uniform(const TilePhases& phases, std::int64_t count);

  /// Cycles at which the last compute / gather completed so far.
  [[nodiscard]] double makespan() const;

  [[nodiscard]] std::int64_t tiles() const { return tiles_; }

 private:
  // Completion times of the previous tiles' stages.
  double load_end_prev_ = 0.0;
  double load_end_prev2_ = 0.0;
  double compute_end_prev_ = 0.0;
  double compute_end_prev2_ = 0.0;
  double gather_end_prev_ = 0.0;
  std::int64_t tiles_ = 0;
};

}  // namespace rota::sim
