#pragma once

#include <cstdint>

#include "arch/config.hpp"
#include "sched/schedule.hpp"
#include "sim/pipeline.hpp"

/// \file engine.hpp
/// Execution-time model of a schedule on the accelerator. Tile phase
/// durations depend only on the tile's data volumes, never on where the
/// utilization space is anchored: scattering to a space anchored at (u, v)
/// moves exactly the same words over the same networks as one anchored at
/// (0, 0), and the wear-leveling counter update (1 cycle) hides under the
/// compute phase. This module quantifies the paper's "no performance
/// degradation" claim (§V-D) — the benches show mesh-baseline and
/// torus-RWL+RO cycle counts are identical.

namespace rota::sim {

/// Timing of one layer.
struct LayerTiming {
  double cycles = 0.0;
  std::int64_t tiles = 0;
  /// True when the (u, v) counter update fits inside every tile's compute
  /// phase (it always does: compute >= 1 cycle per tile).
  bool controller_update_hidden = true;
  /// True when off-chip bandwidth, not the array, set the runtime
  /// (only meaningful from the DRAM-aware estimate).
  bool memory_bound = false;
};

/// Off-chip memory system parameters for the roofline-style estimate.
struct DramParams {
  /// Sustained DRAM bandwidth in data words per accelerator cycle.
  /// 2 words/cycle ≈ 4 GB/s at 1 GHz with 16-bit words.
  double words_per_cycle = 2.0;
};

/// Derives tile phases from schedules and runs the tile pipeline.
class ExecutionEngine {
 public:
  explicit ExecutionEngine(arch::AcceleratorConfig cfg);

  [[nodiscard]] const arch::AcceleratorConfig& config() const { return cfg_; }

  /// Phase durations of one dispatch of this layer. `drained` selects
  /// whether this dispatch completes a reduction and drains outputs.
  [[nodiscard]] TilePhases phases_of(const sched::LayerSchedule& layer, bool drained) const;

  /// Exact tile-by-tile pipeline simulation of one layer (gathers modeled
  /// on every reduction_steps-th tile). O(tiles) — use for layers, tests
  /// and the overhead bench.
  [[nodiscard]] LayerTiming simulate_layer(const sched::LayerSchedule& layer) const;

  /// Fast estimate using the steady-state pipeline rate with the gather
  /// amortized over the reduction; exact for compute- or scatter-bound
  /// layers, and within one drain of exact otherwise. O(1) per layer.
  [[nodiscard]] LayerTiming estimate_layer(const sched::LayerSchedule& layer) const;

  /// Sum of per-layer estimates over a network (one inference pass).
  [[nodiscard]] double network_cycles(const sched::NetworkSchedule& schedule) const;

  /// Roofline-style estimate including the off-chip memory system: a layer
  /// can run no faster than its DRAM traffic divided by the sustained
  /// bandwidth. Wear-leveling changes neither term, so this bound is as
  /// policy-independent as the array-side estimate.
  LayerTiming estimate_layer_with_dram(const sched::LayerSchedule& layer,
                                       const DramParams& dram) const;

  /// Network-pass cycles under the DRAM roofline.
  double network_cycles_with_dram(const sched::NetworkSchedule& schedule,
                                  const DramParams& dram) const;

 private:
  arch::AcceleratorConfig cfg_;
};

}  // namespace rota::sim
