#include "nn/network.hpp"

#include <set>

#include "util/check.hpp"

namespace rota::nn {

std::string to_string(Domain domain) {
  switch (domain) {
    case Domain::kImageClassification: return "Image classification";
    case Domain::kObjectDetection: return "Object detection";
    case Domain::kLightweight: return "Lightweight network";
    case Domain::kTransformer: return "Transformer";
  }
  ROTA_UNREACHABLE("unhandled Domain");
}

Network::Network(std::string name, std::string abbr, Domain domain)
    : name_(std::move(name)), abbr_(std::move(abbr)), domain_(domain) {
  ROTA_REQUIRE(!name_.empty() && !abbr_.empty(),
               "network name and abbreviation must be non-empty");
}

void Network::add(LayerSpec layer) {
  layer.validate();
  for (const auto& existing : layers_) {
    ROTA_REQUIRE(existing.name != layer.name,
                 "duplicate layer name: " + layer.name + " in " + name_);
  }
  layers_.push_back(std::move(layer));
}

std::int64_t Network::total_macs() const {
  std::int64_t total = 0;
  for (const auto& layer : layers_) total += layer.macs();
  return total;
}

std::size_t Network::unique_shape_count() const {
  std::set<std::string> keys;
  for (const auto& layer : layers_) keys.insert(layer.shape_key());
  return keys.size();
}

const LayerSpec& Network::layer(const std::string& layer_name) const {
  for (const auto& l : layers_) {
    if (l.name == layer_name) return l;
  }
  ROTA_REQUIRE(false, "no layer named " + layer_name + " in " + name_);
  // Unreachable; ROTA_REQUIRE(false, ...) always throws.
  throw util::precondition_error("unreachable");
}

}  // namespace rota::nn
