#include "nn/layer.hpp"

#include <sstream>

#include "util/check.hpp"

namespace rota::nn {

std::string to_string(LayerKind kind) {
  switch (kind) {
    case LayerKind::kConv2D: return "conv2d";
    case LayerKind::kGroupConv: return "group_conv";
    case LayerKind::kDepthwise: return "depthwise";
    case LayerKind::kGemm: return "gemm";
  }
  ROTA_UNREACHABLE("unhandled LayerKind");
}

std::int64_t LayerSpec::out_h() const {
  return (in_h + 2 * pad_h - kernel_h) / stride_h + 1;
}

std::int64_t LayerSpec::out_w() const {
  return (in_w + 2 * pad_w - kernel_w) / stride_w + 1;
}

std::int64_t LayerSpec::channels_per_group() const {
  return in_channels / groups;
}

std::int64_t LayerSpec::macs() const {
  return batch * out_channels * channels_per_group() * out_h() * out_w() *
         kernel_h * kernel_w;
}

std::int64_t LayerSpec::input_words() const {
  return batch * in_channels * in_h * in_w;
}

std::int64_t LayerSpec::weight_words() const {
  return out_channels * channels_per_group() * kernel_h * kernel_w;
}

std::int64_t LayerSpec::output_words() const {
  return batch * out_channels * out_h() * out_w();
}

void LayerSpec::validate() const {
  ROTA_REQUIRE(!name.empty(), "layer must be named");
  ROTA_REQUIRE(batch > 0, "batch must be positive: " + name);
  ROTA_REQUIRE(out_channels > 0 && in_channels > 0,
               "channel counts must be positive: " + name);
  ROTA_REQUIRE(in_h > 0 && in_w > 0, "input dims must be positive: " + name);
  ROTA_REQUIRE(kernel_h > 0 && kernel_w > 0,
               "kernel dims must be positive: " + name);
  ROTA_REQUIRE(stride_h > 0 && stride_w > 0,
               "strides must be positive: " + name);
  ROTA_REQUIRE(pad_h >= 0 && pad_w >= 0,
               "padding must be non-negative: " + name);
  ROTA_REQUIRE(groups > 0, "groups must be positive: " + name);
  ROTA_REQUIRE(in_channels % groups == 0,
               "groups must divide input channels: " + name);
  ROTA_REQUIRE(out_channels % groups == 0,
               "groups must divide output channels: " + name);
  ROTA_REQUIRE(in_h + 2 * pad_h >= kernel_h && in_w + 2 * pad_w >= kernel_w,
               "kernel larger than padded input: " + name);
  ROTA_REQUIRE(out_h() > 0 && out_w() > 0, "empty output map: " + name);
  switch (kind) {
    case LayerKind::kConv2D:
      ROTA_REQUIRE(groups == 1, "conv2d must have groups == 1: " + name);
      break;
    case LayerKind::kGroupConv:
      ROTA_REQUIRE(groups > 1 && groups < in_channels,
                   "group_conv needs 1 < groups < C: " + name);
      break;
    case LayerKind::kDepthwise:
      ROTA_REQUIRE(groups == in_channels && out_channels % in_channels == 0,
                   "depthwise needs groups == C: " + name);
      break;
    case LayerKind::kGemm:
      ROTA_REQUIRE(kernel_h == 1 && kernel_w == 1 && groups == 1,
                   "gemm must be a 1x1 nest: " + name);
      break;
  }
}

bool LayerSpec::same_shape(const LayerSpec& other) const {
  return kind == other.kind && batch == other.batch &&
         out_channels == other.out_channels &&
         in_channels == other.in_channels && in_h == other.in_h &&
         in_w == other.in_w && kernel_h == other.kernel_h &&
         kernel_w == other.kernel_w && stride_h == other.stride_h &&
         stride_w == other.stride_w && pad_h == other.pad_h &&
         pad_w == other.pad_w && groups == other.groups;
}

std::string LayerSpec::shape_key() const {
  std::ostringstream os;
  os << to_string(kind) << ':' << batch << ',' << out_channels << ','
     << in_channels << ',' << in_h << 'x' << in_w << ',' << kernel_h << 'x'
     << kernel_w << ",s" << stride_h << 'x' << stride_w << ",p" << pad_h
     << 'x' << pad_w << ",g" << groups;
  return os.str();
}

namespace {

std::int64_t default_pad(std::int64_t kernel, std::int64_t pad) {
  return pad >= 0 ? pad : (kernel - 1) / 2;
}

}  // namespace

LayerSpec conv(std::string name, std::int64_t in_c, std::int64_t out_c,
               std::int64_t in_hw, std::int64_t kernel, std::int64_t stride,
               std::int64_t pad) {
  const std::int64_t p = default_pad(kernel, pad);
  return conv2d(std::move(name), in_c, out_c, in_hw, in_hw, kernel, kernel,
                stride, p, p);
}

LayerSpec conv2d(std::string name, std::int64_t in_c, std::int64_t out_c,
                 std::int64_t in_h, std::int64_t in_w, std::int64_t kernel_h,
                 std::int64_t kernel_w, std::int64_t stride,
                 std::int64_t pad_h, std::int64_t pad_w) {
  LayerSpec spec;
  spec.name = std::move(name);
  spec.kind = LayerKind::kConv2D;
  spec.in_channels = in_c;
  spec.out_channels = out_c;
  spec.in_h = in_h;
  spec.in_w = in_w;
  spec.kernel_h = kernel_h;
  spec.kernel_w = kernel_w;
  spec.stride_h = stride;
  spec.stride_w = stride;
  spec.pad_h = pad_h;
  spec.pad_w = pad_w;
  spec.validate();
  return spec;
}

LayerSpec dwconv(std::string name, std::int64_t channels, std::int64_t in_hw,
                 std::int64_t kernel, std::int64_t stride, std::int64_t pad) {
  LayerSpec spec;
  spec.name = std::move(name);
  spec.kind = LayerKind::kDepthwise;
  spec.in_channels = channels;
  spec.out_channels = channels;
  spec.in_h = in_hw;
  spec.in_w = in_hw;
  spec.kernel_h = kernel;
  spec.kernel_w = kernel;
  spec.stride_h = stride;
  spec.stride_w = stride;
  spec.pad_h = default_pad(kernel, pad);
  spec.pad_w = spec.pad_h;
  spec.groups = channels;
  spec.validate();
  return spec;
}

LayerSpec group_conv(std::string name, std::int64_t in_c, std::int64_t out_c,
                     std::int64_t in_hw, std::int64_t kernel,
                     std::int64_t stride, std::int64_t groups,
                     std::int64_t pad) {
  LayerSpec spec;
  spec.name = std::move(name);
  spec.kind = LayerKind::kGroupConv;
  spec.in_channels = in_c;
  spec.out_channels = out_c;
  spec.in_h = in_hw;
  spec.in_w = in_hw;
  spec.kernel_h = kernel;
  spec.kernel_w = kernel;
  spec.stride_h = stride;
  spec.stride_w = stride;
  spec.pad_h = default_pad(kernel, pad);
  spec.pad_w = spec.pad_h;
  spec.groups = groups;
  spec.validate();
  return spec;
}

LayerSpec gemm(std::string name, std::int64_t m, std::int64_t n,
               std::int64_t k, std::int64_t batch) {
  // Output rows M map to the P dimension, output columns N to K (output
  // channels) and the reduction depth to C, so GEMMs ride the same loop
  // nest as convolutions.
  LayerSpec spec;
  spec.name = std::move(name);
  spec.kind = LayerKind::kGemm;
  spec.batch = batch;
  spec.in_channels = k;
  spec.out_channels = n;
  spec.in_h = m;
  spec.in_w = 1;
  spec.validate();
  return spec;
}

}  // namespace rota::nn
