#pragma once

#include <cstdint>
#include <string>

/// \file layer.hpp
/// The shape-level model of a neural layer. The wear-leveling study needs
/// only loop-nest bounds — no tensor values — so a layer is a named bundle
/// of convolution dimensions. GEMM layers (transformer projections,
/// classifier heads, SE blocks) are expressed in the same 7-D nest with
/// R = S = 1, which lets one scheduler handle all nine workloads.

namespace rota::nn {

/// Kind of compute layer. Pooling / normalization layers are not modeled:
/// they run on separate vector units in the reference designs and do not
/// occupy the MAC array whose wear is being studied.
enum class LayerKind {
  kConv2D,     ///< dense convolution (groups == 1)
  kGroupConv,  ///< grouped convolution (1 < groups < in_channels)
  kDepthwise,  ///< depthwise convolution (groups == in_channels)
  kGemm,       ///< matrix multiply M×N×K expressed as 1×1 conv
};

/// Human-readable name of a layer kind.
[[nodiscard]] std::string to_string(LayerKind kind);

/// Shape of one layer, in the conventional 7-D convolution nest
/// (N, K, C, P, Q, R, S) plus strides, padding and groups.
struct LayerSpec {
  std::string name;              ///< unique within its network
  LayerKind kind = LayerKind::kConv2D;

  std::int64_t batch = 1;        ///< N; also used for attention head count
  std::int64_t out_channels = 0; ///< K
  std::int64_t in_channels = 0;  ///< C (total, across all groups)
  std::int64_t in_h = 0;         ///< H
  std::int64_t in_w = 0;         ///< W
  std::int64_t kernel_h = 1;     ///< R
  std::int64_t kernel_w = 1;     ///< S
  std::int64_t stride_h = 1;
  std::int64_t stride_w = 1;
  std::int64_t pad_h = 0;        ///< symmetric padding along H
  std::int64_t pad_w = 0;        ///< symmetric padding along W
  std::int64_t groups = 1;

  /// Output feature-map height P = (H + 2·pad_h − R)/stride_h + 1.
  [[nodiscard]] std::int64_t out_h() const;
  /// Output feature-map width Q = (W + 2·pad_w − S)/stride_w + 1.
  [[nodiscard]] std::int64_t out_w() const;

  /// Input channels seen by one output channel (C / groups).
  [[nodiscard]] std::int64_t channels_per_group() const;

  /// Total multiply-accumulate operations: N·K·(C/g)·P·Q·R·S.
  [[nodiscard]] std::int64_t macs() const;

  /// Tensor footprints in data words (one word per element).
  [[nodiscard]] std::int64_t input_words() const;   ///< N·C·H·W
  [[nodiscard]] std::int64_t weight_words() const;  ///< K·(C/g)·R·S
  [[nodiscard]] std::int64_t output_words() const;  ///< N·K·P·Q

  /// Throws util::precondition_error if any dimension is inconsistent
  /// (non-positive bound, groups not dividing channels, empty output, ...).
  void validate() const;

  /// Structural equality ignoring the name; used to deduplicate scheduler
  /// work across repeated blocks (ResNet stages, Llama decoder layers).
  [[nodiscard]] bool same_shape(const LayerSpec& other) const;

  /// A stable string key of the shape (not the name), for memoization.
  [[nodiscard]] std::string shape_key() const;
};

/// Factory: dense convolution. Padding defaults to 'same'-style
/// (kernel−1)/2 when pad is negative.
[[nodiscard]] LayerSpec conv(std::string name, std::int64_t in_c, std::int64_t out_c,
               std::int64_t in_hw, std::int64_t kernel, std::int64_t stride,
               std::int64_t pad = -1);

/// Factory: dense convolution with rectangular input / kernel.
[[nodiscard]] LayerSpec conv2d(std::string name, std::int64_t in_c, std::int64_t out_c,
                 std::int64_t in_h, std::int64_t in_w, std::int64_t kernel_h,
                 std::int64_t kernel_w, std::int64_t stride,
                 std::int64_t pad_h, std::int64_t pad_w);

/// Factory: depthwise convolution (groups == channels).
[[nodiscard]] LayerSpec dwconv(std::string name, std::int64_t channels, std::int64_t in_hw,
                 std::int64_t kernel, std::int64_t stride,
                 std::int64_t pad = -1);

/// Factory: grouped convolution.
[[nodiscard]] LayerSpec group_conv(std::string name, std::int64_t in_c, std::int64_t out_c,
                     std::int64_t in_hw, std::int64_t kernel,
                     std::int64_t stride, std::int64_t groups,
                     std::int64_t pad = -1);

/// Factory: GEMM of size M×N×K (output M×N, reduction depth K), with an
/// optional leading batch dimension (e.g. attention heads).
[[nodiscard]] LayerSpec gemm(std::string name, std::int64_t m, std::int64_t n,
               std::int64_t k, std::int64_t batch = 1);

}  // namespace rota::nn
