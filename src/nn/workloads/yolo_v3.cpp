#include <string>

#include "nn/workloads.hpp"

/// YOLOv3 [Redmon & Farhadi, 2018] at 416×416: the Darknet-53 backbone
/// followed by three detection heads at 13×13, 26×26 and 52×52 with
/// upsample + concat between scales.

namespace rota::nn {

namespace {

/// Append one Darknet residual unit (1×1 reduce, 3×3 expand) at `fm`.
void add_residual(Network& net, const std::string& prefix, std::int64_t c,
                  std::int64_t fm) {
  net.add(conv(prefix + "_1x1", c, c / 2, fm, 1, 1));
  net.add(conv(prefix + "_3x3", c / 2, c, fm, 3, 1));
}

/// Append the 5-conv detection body (alternating 1×1/3×3) used at each
/// scale; returns the channel count entering the final detection convs.
std::int64_t add_head_body(Network& net, const std::string& prefix,
                           std::int64_t in_c, std::int64_t mid_c,
                           std::int64_t fm) {
  net.add(conv(prefix + "_b1", in_c, mid_c, fm, 1, 1));
  net.add(conv(prefix + "_b2", mid_c, mid_c * 2, fm, 3, 1));
  net.add(conv(prefix + "_b3", mid_c * 2, mid_c, fm, 1, 1));
  net.add(conv(prefix + "_b4", mid_c, mid_c * 2, fm, 3, 1));
  net.add(conv(prefix + "_b5", mid_c * 2, mid_c, fm, 1, 1));
  return mid_c;
}

}  // namespace

Network make_yolo_v3() {
  Network net("YOLOv3", "YL", Domain::kObjectDetection);

  // Darknet-53 backbone.
  net.add(conv("d0_conv", 3, 32, 416, 3, 1));
  net.add(conv("d1_down", 32, 64, 416, 3, 2));  // -> 208
  add_residual(net, "d1_res1", 64, 208);
  net.add(conv("d2_down", 64, 128, 208, 3, 2));  // -> 104
  for (int i = 1; i <= 2; ++i)
    add_residual(net, "d2_res" + std::to_string(i), 128, 104);
  net.add(conv("d3_down", 128, 256, 104, 3, 2));  // -> 52
  for (int i = 1; i <= 8; ++i)
    add_residual(net, "d3_res" + std::to_string(i), 256, 52);
  net.add(conv("d4_down", 256, 512, 52, 3, 2));  // -> 26
  for (int i = 1; i <= 8; ++i)
    add_residual(net, "d4_res" + std::to_string(i), 512, 26);
  net.add(conv("d5_down", 512, 1024, 26, 3, 2));  // -> 13
  for (int i = 1; i <= 4; ++i)
    add_residual(net, "d5_res" + std::to_string(i), 1024, 13);

  // Scale 1 head (13×13).
  std::int64_t c = add_head_body(net, "h13", 1024, 512, 13);
  net.add(conv("h13_out3x3", c, 1024, 13, 3, 1));
  net.add(conv("h13_detect", 1024, 255, 13, 1, 1));

  // Scale 2 head (26×26): 1×1 256 on the 512-ch body, upsample, concat
  // with the 512-ch backbone tap -> 768 channels.
  net.add(conv("h26_route", 512, 256, 13, 1, 1));
  c = add_head_body(net, "h26", 768, 256, 26);
  net.add(conv("h26_out3x3", c, 512, 26, 3, 1));
  net.add(conv("h26_detect", 512, 255, 26, 1, 1));

  // Scale 3 head (52×52): 1×1 128, upsample, concat with 256 -> 384.
  net.add(conv("h52_route", 256, 128, 26, 1, 1));
  c = add_head_body(net, "h52", 384, 128, 52);
  net.add(conv("h52_out3x3", c, 256, 52, 3, 1));
  net.add(conv("h52_detect", 256, 255, 52, 1, 1));

  return net;
}

}  // namespace rota::nn
