#include <string>

#include "nn/workloads.hpp"

/// MobileNetV3-Large [Howard et al., ICCV 2019] at 224×224. The bneck
/// blocks (expand 1×1, depthwise k×k, optional squeeze-and-excite pair,
/// project 1×1) follow Table 1 of the paper. SE layers are the 1×1
/// bottleneck pair on the pooled vector, expressed here as GEMMs.

namespace rota::nn {

namespace {

struct Bneck {
  std::int64_t kernel;
  std::int64_t exp_c;
  std::int64_t out_c;
  bool se;
  std::int64_t stride;
};

/// Append one bneck block consuming `in_c` channels on `fm`×`fm` maps;
/// returns the output channel count.
std::int64_t add_bneck(Network& net, const std::string& prefix,
                       const Bneck& b, std::int64_t in_c, std::int64_t fm) {
  if (b.exp_c != in_c) {
    net.add(conv(prefix + "_expand", in_c, b.exp_c, fm, 1, 1));
  }
  net.add(dwconv(prefix + "_dw", b.exp_c, fm, b.kernel, b.stride));
  const std::int64_t fm_out = fm / b.stride;
  if (b.se) {
    const std::int64_t se_c = b.exp_c / 4;
    net.add(gemm(prefix + "_se_reduce", 1, se_c, b.exp_c));
    net.add(gemm(prefix + "_se_expand", 1, b.exp_c, se_c));
  }
  net.add(conv(prefix + "_project", b.exp_c, b.out_c, fm_out, 1, 1));
  return b.out_c;
}

}  // namespace

Network make_mobilenet_v3() {
  Network net("MobileNetV3-Large", "Mb", Domain::kLightweight);
  net.add(conv("conv_stem", 3, 16, 224, 3, 2));  // -> 112

  // {kernel, exp, out, SE, stride}; feature map tracked alongside.
  const Bneck blocks[] = {
      {3, 16, 16, false, 1},   // 112
      {3, 64, 24, false, 2},   // 112 -> 56
      {3, 72, 24, false, 1},   // 56
      {5, 72, 40, true, 2},    // 56 -> 28
      {5, 120, 40, true, 1},   // 28
      {5, 120, 40, true, 1},   // 28
      {3, 240, 80, false, 2},  // 28 -> 14
      {3, 200, 80, false, 1},  // 14
      {3, 184, 80, false, 1},  // 14
      {3, 184, 80, false, 1},  // 14
      {3, 480, 112, true, 1},  // 14
      {3, 672, 112, true, 1},  // 14
      {5, 672, 160, true, 2},  // 14 -> 7
      {5, 960, 160, true, 1},  // 7
      {5, 960, 160, true, 1},  // 7
  };

  std::int64_t in_c = 16;
  std::int64_t fm = 112;
  int idx = 1;
  for (const Bneck& b : blocks) {
    in_c = add_bneck(net, "bneck" + std::to_string(idx++), b, in_c, fm);
    fm /= b.stride;
  }

  net.add(conv("conv_head", in_c, 960, 7, 1, 1));
  net.add(gemm("fc_pre", 1, 1280, 960));   // 1×1 on pooled vector
  net.add(gemm("fc1000", 1, 1000, 1280));
  return net;
}

}  // namespace rota::nn
