#include <string>

#include "nn/workloads.hpp"

/// Inception-v4 [Szegedy et al., AAAI 2017] at 299×299: stem, 4× Inception-A,
/// Reduction-A, 7× Inception-B (asymmetric 1×7 / 7×1 kernels), Reduction-B,
/// 3× Inception-C (1×3 / 3×1 kernels), classifier.

namespace rota::nn {

namespace {

/// 1×k convolution (kernel_h = 1, kernel_w = k) with 'same' width padding.
LayerSpec conv_1xk(std::string name, std::int64_t in_c, std::int64_t out_c,
                   std::int64_t fm, std::int64_t k) {
  return conv2d(std::move(name), in_c, out_c, fm, fm, 1, k, 1, 0, (k - 1) / 2);
}

/// k×1 convolution (kernel_h = k, kernel_w = 1) with 'same' height padding.
LayerSpec conv_kx1(std::string name, std::int64_t in_c, std::int64_t out_c,
                   std::int64_t fm, std::int64_t k) {
  return conv2d(std::move(name), in_c, out_c, fm, fm, k, 1, 1, (k - 1) / 2, 0);
}

void add_inception_a(Network& net, const std::string& p, std::int64_t in_c) {
  const std::int64_t fm = 35;
  net.add(conv(p + "_b1_1x1", in_c, 96, fm, 1, 1));
  net.add(conv(p + "_b2_1x1", in_c, 64, fm, 1, 1));
  net.add(conv(p + "_b2_3x3", 64, 96, fm, 3, 1));
  net.add(conv(p + "_b3_1x1", in_c, 64, fm, 1, 1));
  net.add(conv(p + "_b3_3x3a", 64, 96, fm, 3, 1));
  net.add(conv(p + "_b3_3x3b", 96, 96, fm, 3, 1));
  net.add(conv(p + "_b4_pool1x1", in_c, 96, fm, 1, 1));
}

void add_inception_b(Network& net, const std::string& p, std::int64_t in_c) {
  const std::int64_t fm = 17;
  net.add(conv(p + "_b1_1x1", in_c, 384, fm, 1, 1));
  net.add(conv(p + "_b2_1x1", in_c, 192, fm, 1, 1));
  net.add(conv_1xk(p + "_b2_1x7", 192, 224, fm, 7));
  net.add(conv_kx1(p + "_b2_7x1", 224, 256, fm, 7));
  net.add(conv(p + "_b3_1x1", in_c, 192, fm, 1, 1));
  net.add(conv_kx1(p + "_b3_7x1a", 192, 192, fm, 7));
  net.add(conv_1xk(p + "_b3_1x7a", 192, 224, fm, 7));
  net.add(conv_kx1(p + "_b3_7x1b", 224, 224, fm, 7));
  net.add(conv_1xk(p + "_b3_1x7b", 224, 256, fm, 7));
  net.add(conv(p + "_b4_pool1x1", in_c, 128, fm, 1, 1));
}

void add_inception_c(Network& net, const std::string& p, std::int64_t in_c) {
  const std::int64_t fm = 8;
  net.add(conv(p + "_b1_1x1", in_c, 256, fm, 1, 1));
  net.add(conv(p + "_b2_1x1", in_c, 384, fm, 1, 1));
  net.add(conv_1xk(p + "_b2_1x3", 384, 256, fm, 3));
  net.add(conv_kx1(p + "_b2_3x1", 384, 256, fm, 3));
  net.add(conv(p + "_b3_1x1", in_c, 384, fm, 1, 1));
  net.add(conv_1xk(p + "_b3_1x3a", 384, 448, fm, 3));
  net.add(conv_kx1(p + "_b3_3x1a", 448, 512, fm, 3));
  net.add(conv_kx1(p + "_b3_3x1b", 512, 256, fm, 3));
  net.add(conv_1xk(p + "_b3_1x3b", 512, 256, fm, 3));
  net.add(conv(p + "_b4_pool1x1", in_c, 256, fm, 1, 1));
}

}  // namespace

Network make_inception_v4() {
  Network net("Inception-v4", "Inc", Domain::kImageClassification);

  // Stem: 299 -> 149 -> 147 -> 73 -> 71 -> 35.
  net.add(conv("stem_conv1", 3, 32, 299, 3, 2, 0));      // -> 149
  net.add(conv("stem_conv2", 32, 32, 149, 3, 1, 0));     // -> 147
  net.add(conv("stem_conv3", 32, 64, 147, 3, 1));        // -> 147
  net.add(conv("stem_mixed3x3", 64, 96, 147, 3, 2, 0));  // -> 73 (‖ maxpool)
  // Mixed-4 branch a: 1×1 then 3×3 valid.
  net.add(conv("stem_m4a_1x1", 160, 64, 73, 1, 1));
  net.add(conv("stem_m4a_3x3", 64, 96, 73, 3, 1, 0));    // -> 71
  // Mixed-4 branch b: 1×1, 1×7, 7×1, 3×3 valid.
  net.add(conv("stem_m4b_1x1", 160, 64, 73, 1, 1));
  net.add(conv_1xk("stem_m4b_1x7", 64, 64, 73, 7));
  net.add(conv_kx1("stem_m4b_7x1", 64, 64, 73, 7));
  net.add(conv("stem_m4b_3x3", 64, 96, 73, 3, 1, 0));    // -> 71
  // Mixed-5: 3×3/2 conv branch (‖ maxpool) -> 35, concat to 384 channels.
  net.add(conv("stem_m5_3x3", 192, 192, 71, 3, 2, 0));

  for (int i = 1; i <= 4; ++i)
    add_inception_a(net, "incA" + std::to_string(i), 384);

  // Reduction-A: 35 -> 17, output 384 + 384 + 256 = 1024 channels.
  net.add(conv("redA_b1_3x3", 384, 384, 35, 3, 2, 0));
  net.add(conv("redA_b2_1x1", 384, 192, 35, 1, 1));
  net.add(conv("redA_b2_3x3", 192, 224, 35, 3, 1));
  net.add(conv("redA_b2_3x3s2", 224, 256, 35, 3, 2, 0));

  for (int i = 1; i <= 7; ++i)
    add_inception_b(net, "incB" + std::to_string(i), 1024);

  // Reduction-B: 17 -> 8, output 1024 + 192 + 320 = 1536 channels.
  net.add(conv("redB_b1_1x1", 1024, 192, 17, 1, 1));
  net.add(conv("redB_b1_3x3s2", 192, 192, 17, 3, 2, 0));
  net.add(conv("redB_b2_1x1", 1024, 256, 17, 1, 1));
  net.add(conv_1xk("redB_b2_1x7", 256, 256, 17, 7));
  net.add(conv_kx1("redB_b2_7x1", 256, 320, 17, 7));
  net.add(conv("redB_b2_3x3s2", 320, 320, 17, 3, 2, 0));

  for (int i = 1; i <= 3; ++i)
    add_inception_c(net, "incC" + std::to_string(i), 1536);

  net.add(gemm("fc1000", 1, 1000, 1536));
  return net;
}

}  // namespace rota::nn
