#include <string>

#include "nn/workloads.hpp"

/// ResNet-50 [He et al., CVPR 2016] at 224×224. Four bottleneck stages of
/// (3, 4, 6, 3) blocks; the first block of each stage carries a projection
/// shortcut, and stages 3–5 downsample with stride 2 in the 3×3 conv.

namespace rota::nn {

namespace {

/// Append one bottleneck block (1×1 reduce, 3×3, 1×1 expand) operating on
/// `fm`×`fm` feature maps, plus the projection shortcut when requested.
/// Returns the block's output channel count.
std::int64_t add_bottleneck(Network& net, const std::string& prefix,
                            std::int64_t in_c, std::int64_t mid_c,
                            std::int64_t fm_in, std::int64_t stride,
                            bool projection) {
  const std::int64_t out_c = mid_c * 4;
  net.add(conv(prefix + "_1x1a", in_c, mid_c, fm_in, 1, 1));
  net.add(conv(prefix + "_3x3", mid_c, mid_c, fm_in, 3, stride));
  const std::int64_t fm_out = fm_in / stride;
  net.add(conv(prefix + "_1x1b", mid_c, out_c, fm_out, 1, 1));
  if (projection) {
    net.add(conv(prefix + "_proj", in_c, out_c, fm_in, 1, stride));
  }
  return out_c;
}

}  // namespace

Network make_resnet50() {
  Network net("ResNet-50", "Res", Domain::kImageClassification);
  net.add(conv("conv1", 3, 64, 224, 7, 2, 3));  // -> 112×112; maxpool -> 56

  struct Stage {
    std::int64_t mid_c;
    int blocks;
    std::int64_t fm_in;
    std::int64_t stride;  // of the first block
  };
  const Stage stages[] = {
      {64, 3, 56, 1},   // conv2_x
      {128, 4, 56, 2},  // conv3_x
      {256, 6, 28, 2},  // conv4_x
      {512, 3, 14, 2},  // conv5_x
  };

  std::int64_t in_c = 64;
  int stage_idx = 2;
  for (const Stage& st : stages) {
    std::int64_t fm = st.fm_in;
    for (int b = 0; b < st.blocks; ++b) {
      const std::string prefix =
          "conv" + std::to_string(stage_idx) + "_" + std::to_string(b + 1);
      const std::int64_t stride = (b == 0) ? st.stride : 1;
      in_c = add_bottleneck(net, prefix, in_c, st.mid_c, fm, stride, b == 0);
      fm = st.fm_in / st.stride;
    }
    ++stage_idx;
  }

  net.add(gemm("fc1000", 1, 1000, 2048));  // global-average-pooled head
  return net;
}

}  // namespace rota::nn
