#include <string>

#include "nn/workloads.hpp"

/// Llama-2 7B [Touvron et al., 2023]: 32 decoder layers with hidden size
/// 4096, 32 attention heads (head dim 128) and SwiGLU MLPs of width 11008,
/// processing a 512-token prompt (prefill). Rotary embeddings, RMSNorm and
/// softmax are vector-unit work and do not occupy the MAC array. The
/// 32000-way LM head closes the network.

namespace rota::nn {

namespace {

constexpr std::int64_t kSeq = 512;
constexpr std::int64_t kHidden = 4096;
constexpr std::int64_t kHeads = 32;
constexpr std::int64_t kHeadDim = kHidden / kHeads;
constexpr std::int64_t kFfn = 11008;

void add_decoder_layer(Network& net, const std::string& p) {
  net.add(gemm(p + "_q_proj", kSeq, kHidden, kHidden));
  net.add(gemm(p + "_k_proj", kSeq, kHidden, kHidden));
  net.add(gemm(p + "_v_proj", kSeq, kHidden, kHidden));
  net.add(gemm(p + "_attn_scores", kSeq, kSeq, kHeadDim, kHeads));
  net.add(gemm(p + "_attn_context", kSeq, kHeadDim, kSeq, kHeads));
  net.add(gemm(p + "_o_proj", kSeq, kHidden, kHidden));
  net.add(gemm(p + "_gate_proj", kSeq, kFfn, kHidden));
  net.add(gemm(p + "_up_proj", kSeq, kFfn, kHidden));
  net.add(gemm(p + "_down_proj", kSeq, kHidden, kFfn));
}

}  // namespace

Network make_llama2_7b() {
  Network net("Llama-2 7B", "LM", Domain::kTransformer);
  for (int i = 1; i <= 32; ++i)
    add_decoder_layer(net, "dec" + std::to_string(i));
  net.add(gemm("lm_head", kSeq, 32000, kHidden));
  return net;
}

}  // namespace rota::nn
