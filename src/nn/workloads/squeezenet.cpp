#include <string>

#include "nn/workloads.hpp"

/// SqueezeNet v1.0 [Iandola et al., 2016] at 224×224. Eight fire modules
/// (squeeze 1×1, expand 1×1 + expand 3×3) between three max-pool stages,
/// closed by the conv10 1×1 classifier.

namespace rota::nn {

namespace {

/// Append one fire module on `fm`×`fm` maps; returns its output channels.
std::int64_t add_fire(Network& net, const std::string& prefix,
                      std::int64_t in_c, std::int64_t squeeze_c,
                      std::int64_t expand_c, std::int64_t fm) {
  net.add(conv(prefix + "_squeeze1x1", in_c, squeeze_c, fm, 1, 1));
  net.add(conv(prefix + "_expand1x1", squeeze_c, expand_c, fm, 1, 1));
  net.add(conv(prefix + "_expand3x3", squeeze_c, expand_c, fm, 3, 1));
  return 2 * expand_c;
}

}  // namespace

Network make_squeezenet() {
  Network net("SqueezeNet", "Sqz", Domain::kLightweight);
  // conv1: 7×7/2 with no padding -> 109×109; maxpool 3×3/2 -> 54 (we use
  // the commonly quoted 55/27/13 ladder from the reference implementation,
  // which pads the pools).
  net.add(conv("conv1", 3, 96, 224, 7, 2, 0));

  std::int64_t c = 96;
  c = add_fire(net, "fire2", c, 16, 64, 55);
  c = add_fire(net, "fire3", c, 16, 64, 55);
  c = add_fire(net, "fire4", c, 32, 128, 55);
  // maxpool -> 27
  c = add_fire(net, "fire5", c, 32, 128, 27);
  c = add_fire(net, "fire6", c, 48, 192, 27);
  c = add_fire(net, "fire7", c, 48, 192, 27);
  c = add_fire(net, "fire8", c, 64, 256, 27);
  // maxpool -> 13
  c = add_fire(net, "fire9", c, 64, 256, 13);
  net.add(conv("conv10", c, 1000, 13, 1, 1));
  return net;
}

}  // namespace rota::nn
