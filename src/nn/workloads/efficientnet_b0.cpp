#include <algorithm>
#include <string>

#include "nn/workloads.hpp"

/// EfficientNet-B0 [Tan & Le, ICML 2019] at 224×224. Seven MBConv stages;
/// every block carries squeeze-and-excite with a ratio of 0.25 of the
/// block's *input* channels, modeled as a GEMM pair on the pooled vector.

namespace rota::nn {

namespace {

struct MbStage {
  std::int64_t expand;  // expansion factor (1 or 6)
  std::int64_t kernel;
  std::int64_t out_c;
  int blocks;
  std::int64_t stride;  // of the first block
};

std::int64_t add_mbconv(Network& net, const std::string& prefix,
                        std::int64_t in_c, std::int64_t expand,
                        std::int64_t kernel, std::int64_t out_c,
                        std::int64_t fm, std::int64_t stride) {
  const std::int64_t mid_c = in_c * expand;
  if (expand != 1) {
    net.add(conv(prefix + "_expand", in_c, mid_c, fm, 1, 1));
  }
  net.add(dwconv(prefix + "_dw", mid_c, fm, kernel, stride));
  const std::int64_t fm_out = fm / stride;
  const std::int64_t se_c = std::max<std::int64_t>(1, in_c / 4);
  net.add(gemm(prefix + "_se_reduce", 1, se_c, mid_c));
  net.add(gemm(prefix + "_se_expand", 1, mid_c, se_c));
  net.add(conv(prefix + "_project", mid_c, out_c, fm_out, 1, 1));
  return out_c;
}

}  // namespace

Network make_efficientnet_b0() {
  Network net("EfficientNet-B0", "Eff", Domain::kLightweight);
  net.add(conv("conv_stem", 3, 32, 224, 3, 2));  // -> 112

  const MbStage stages[] = {
      {1, 3, 16, 1, 1},   // 112
      {6, 3, 24, 2, 2},   // 112 -> 56
      {6, 5, 40, 2, 2},   // 56 -> 28
      {6, 3, 80, 3, 2},   // 28 -> 14
      {6, 5, 112, 3, 1},  // 14
      {6, 5, 192, 4, 2},  // 14 -> 7
      {6, 3, 320, 1, 1},  // 7
  };

  std::int64_t in_c = 32;
  std::int64_t fm = 112;
  int stage_idx = 1;
  for (const MbStage& st : stages) {
    for (int b = 0; b < st.blocks; ++b) {
      const std::string prefix = "mb" + std::to_string(stage_idx) + "_" +
                                 std::to_string(b + 1);
      const std::int64_t stride = (b == 0) ? st.stride : 1;
      in_c = add_mbconv(net, prefix, in_c, st.expand, st.kernel, st.out_c,
                        fm, stride);
      fm /= stride;
    }
    ++stage_idx;
  }

  net.add(conv("conv_head", in_c, 1280, 7, 1, 1));
  net.add(gemm("fc1000", 1, 1000, 1280));
  return net;
}

}  // namespace rota::nn
