#include "nn/workloads.hpp"

#include "util/check.hpp"

namespace rota::nn {

std::vector<Network> all_workloads() {
  std::vector<Network> nets;
  nets.push_back(make_resnet50());
  nets.push_back(make_inception_v4());
  nets.push_back(make_yolo_v3());
  nets.push_back(make_squeezenet());
  nets.push_back(make_mobilenet_v3());
  nets.push_back(make_efficientnet_b0());
  nets.push_back(make_vit_b16());
  nets.push_back(make_mobilevit_s());
  nets.push_back(make_llama2_7b());
  return nets;
}

std::vector<Network> extended_workloads() {
  std::vector<Network> nets = all_workloads();
  nets.push_back(make_alexnet());
  nets.push_back(make_vgg16());
  nets.push_back(make_bert_base());
  return nets;
}

Network workload_by_abbr(const std::string& abbr) {
  for (auto& net : extended_workloads()) {
    if (net.abbr() == abbr) return net;
  }
  ROTA_REQUIRE(false, "unknown workload abbreviation: " + abbr);
  throw util::precondition_error("unreachable");
}

}  // namespace rota::nn
