#include <string>

#include "nn/workloads.hpp"

/// Extended workload zoo (beyond Table II): AlexNet and VGG-16 — the CNNs
/// the original Eyeriss evaluation used — and BERT-Base as a mid-size
/// encoder transformer.

namespace rota::nn {

Network make_alexnet() {
  // Krizhevsky et al., NeurIPS 2012, at 227×227 (single-GPU variant:
  // grouped conv2/4/5 with groups = 2).
  Network net("AlexNet", "AN", Domain::kImageClassification);
  net.add(conv("conv1", 3, 96, 227, 11, 4, 0));          // -> 55
  net.add(group_conv("conv2", 96, 256, 27, 5, 1, 2));    // after pool -> 27
  net.add(conv("conv3", 256, 384, 13, 3, 1));            // after pool -> 13
  net.add(group_conv("conv4", 384, 384, 13, 3, 1, 2));
  net.add(group_conv("conv5", 384, 256, 13, 3, 1, 2));
  net.add(gemm("fc6", 1, 4096, 256 * 6 * 6));
  net.add(gemm("fc7", 1, 4096, 4096));
  net.add(gemm("fc8", 1, 1000, 4096));
  return net;
}

Network make_vgg16() {
  // Simonyan & Zisserman, 2014, configuration D at 224×224.
  Network net("VGG-16", "VGG", Domain::kImageClassification);
  struct Block {
    std::int64_t out_c;
    int convs;
    std::int64_t fm;
  };
  const Block blocks[] = {
      {64, 2, 224}, {128, 2, 112}, {256, 3, 56}, {512, 3, 28}, {512, 3, 14},
  };
  std::int64_t in_c = 3;
  int idx = 1;
  for (const Block& b : blocks) {
    for (int c = 1; c <= b.convs; ++c) {
      net.add(conv("conv" + std::to_string(idx) + "_" + std::to_string(c),
                   in_c, b.out_c, b.fm, 3, 1));
      in_c = b.out_c;
    }
    ++idx;
  }
  net.add(gemm("fc6", 1, 4096, 512 * 7 * 7));
  net.add(gemm("fc7", 1, 4096, 4096));
  net.add(gemm("fc8", 1, 1000, 4096));
  return net;
}

Network make_bert_base() {
  // Devlin et al., 2018: 12 encoder layers, hidden 768, 12 heads, MLP
  // 3072, processing a 128-token sequence.
  Network net("BERT-Base", "BRT", Domain::kTransformer);
  constexpr std::int64_t kSeq = 128;
  constexpr std::int64_t kHidden = 768;
  constexpr std::int64_t kHeads = 12;
  constexpr std::int64_t kHeadDim = kHidden / kHeads;
  constexpr std::int64_t kMlp = 3072;
  for (int i = 1; i <= 12; ++i) {
    const std::string p = "enc" + std::to_string(i);
    net.add(gemm(p + "_qkv", kSeq, 3 * kHidden, kHidden));
    net.add(gemm(p + "_attn_scores", kSeq, kSeq, kHeadDim, kHeads));
    net.add(gemm(p + "_attn_context", kSeq, kHeadDim, kSeq, kHeads));
    net.add(gemm(p + "_attn_proj", kSeq, kHidden, kHidden));
    net.add(gemm(p + "_mlp_fc1", kSeq, kMlp, kHidden));
    net.add(gemm(p + "_mlp_fc2", kSeq, kHidden, kMlp));
  }
  net.add(gemm("pooler", 1, kHidden, kHidden));
  return net;
}

}  // namespace rota::nn
