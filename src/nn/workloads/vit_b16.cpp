#include <string>

#include "nn/workloads.hpp"

/// ViT-Base/16 [Dosovitskiy et al., 2020] at 224×224: a 16×16/16 patch
/// embedding followed by 12 encoder blocks with hidden size 768, 12 heads
/// and MLP size 3072. Sequence length is 197 (196 patches + class token).
/// Attention score / context matmuls are batched GEMMs with one batch per
/// head; softmax and layernorm do not occupy the MAC array.

namespace rota::nn {

namespace {

constexpr std::int64_t kSeq = 197;
constexpr std::int64_t kHidden = 768;
constexpr std::int64_t kHeads = 12;
constexpr std::int64_t kHeadDim = kHidden / kHeads;
constexpr std::int64_t kMlp = 3072;

void add_encoder_block(Network& net, const std::string& p) {
  net.add(gemm(p + "_qkv", kSeq, 3 * kHidden, kHidden));
  net.add(gemm(p + "_attn_scores", kSeq, kSeq, kHeadDim, kHeads));
  net.add(gemm(p + "_attn_context", kSeq, kHeadDim, kSeq, kHeads));
  net.add(gemm(p + "_attn_proj", kSeq, kHidden, kHidden));
  net.add(gemm(p + "_mlp_fc1", kSeq, kMlp, kHidden));
  net.add(gemm(p + "_mlp_fc2", kSeq, kHidden, kMlp));
}

}  // namespace

Network make_vit_b16() {
  Network net("ViT-B/16", "VT", Domain::kTransformer);
  net.add(conv("patch_embed", 3, kHidden, 224, 16, 16, 0));  // -> 14×14
  for (int i = 1; i <= 12; ++i)
    add_encoder_block(net, "enc" + std::to_string(i));
  net.add(gemm("head", 1, 1000, kHidden));
  return net;
}

}  // namespace rota::nn
