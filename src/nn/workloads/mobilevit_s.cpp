#include <string>

#include "nn/workloads.hpp"

/// MobileViT-S [Mehta & Rastegari, 2021] at 256×256: MobileNetV2-style
/// inverted-residual (MV2) blocks interleaved with three MobileViT blocks
/// whose transformers run on 2×2-patch token grids (d = 144/192/240 with
/// 2/4/3 layers). The unfold/fold patch reshapes are data movement only.

namespace rota::nn {

namespace {

/// MV2 inverted residual: expand 1×1 (×4), depthwise 3×3, project 1×1.
std::int64_t add_mv2(Network& net, const std::string& p, std::int64_t in_c,
                     std::int64_t out_c, std::int64_t fm,
                     std::int64_t stride) {
  const std::int64_t mid_c = in_c * 4;
  net.add(conv(p + "_expand", in_c, mid_c, fm, 1, 1));
  net.add(dwconv(p + "_dw", mid_c, fm, 3, stride));
  net.add(conv(p + "_project", mid_c, out_c, fm / stride, 1, 1));
  return out_c;
}

/// One transformer encoder layer on `tokens` tokens of width d
/// (4 heads, MLP ratio 2).
void add_transformer(Network& net, const std::string& p, std::int64_t tokens,
                     std::int64_t d) {
  const std::int64_t heads = 4;
  const std::int64_t head_dim = d / heads;
  net.add(gemm(p + "_qkv", tokens, 3 * d, d));
  net.add(gemm(p + "_attn_scores", tokens, tokens, head_dim, heads));
  net.add(gemm(p + "_attn_context", tokens, head_dim, tokens, heads));
  net.add(gemm(p + "_attn_proj", tokens, d, d));
  net.add(gemm(p + "_mlp_fc1", tokens, 2 * d, d));
  net.add(gemm(p + "_mlp_fc2", tokens, d, 2 * d));
}

/// MobileViT block: local 3×3 conv, 1×1 to d, L transformer layers on the
/// (fm/2)² token grid, 1×1 back to C, 3×3 fusion over the concat (2C).
void add_mobilevit_block(Network& net, const std::string& p, std::int64_t c,
                         std::int64_t d, std::int64_t fm, int layers) {
  net.add(conv(p + "_local3x3", c, c, fm, 3, 1));
  net.add(conv(p + "_to_d", c, d, fm, 1, 1));
  const std::int64_t tokens = (fm / 2) * (fm / 2);
  for (int l = 1; l <= layers; ++l)
    add_transformer(net, p + "_t" + std::to_string(l), tokens, d);
  net.add(conv(p + "_to_c", d, c, fm, 1, 1));
  net.add(conv(p + "_fuse3x3", 2 * c, c, fm, 3, 1));
}

}  // namespace

Network make_mobilevit_s() {
  Network net("MobileViT-S", "MVT", Domain::kTransformer);
  net.add(conv("conv_stem", 3, 16, 256, 3, 2));  // -> 128

  std::int64_t c = 16;
  c = add_mv2(net, "mv2_1", c, 32, 128, 1);
  c = add_mv2(net, "mv2_2", c, 64, 128, 2);  // -> 64
  c = add_mv2(net, "mv2_3", c, 64, 64, 1);
  c = add_mv2(net, "mv2_4", c, 64, 64, 1);
  c = add_mv2(net, "mv2_5", c, 96, 64, 2);   // -> 32
  add_mobilevit_block(net, "mvit1", 96, 144, 32, 2);
  c = add_mv2(net, "mv2_6", 96, 128, 32, 2);  // -> 16
  add_mobilevit_block(net, "mvit2", 128, 192, 16, 4);
  c = add_mv2(net, "mv2_7", 128, 160, 16, 2);  // -> 8
  add_mobilevit_block(net, "mvit3", 160, 240, 8, 3);
  net.add(conv("conv_head", 160, 640, 8, 1, 1));
  net.add(gemm("fc1000", 1, 1000, 640));
  (void)c;
  return net;
}

}  // namespace rota::nn
