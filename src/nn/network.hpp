#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/layer.hpp"

/// \file network.hpp
/// A network is an ordered list of compute layers, matching the order in
/// which the accelerator executes them — the order matters to RWL+RO, whose
/// stride state is relayed from one layer to the next (paper §IV-D).

namespace rota::nn {

/// Application domain, per Table II of the paper.
enum class Domain {
  kImageClassification,
  kObjectDetection,
  kLightweight,
  kTransformer,
};

[[nodiscard]] std::string to_string(Domain domain);

/// An ordered sequence of layers with identity metadata.
class Network {
 public:
  Network(std::string name, std::string abbr, Domain domain);

  /// Append a validated layer; names must be unique within the network.
  void add(LayerSpec layer);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::string& abbr() const { return abbr_; }
  [[nodiscard]] Domain domain() const { return domain_; }

  [[nodiscard]] const std::vector<LayerSpec>& layers() const { return layers_; }
  [[nodiscard]] std::size_t layer_count() const { return layers_.size(); }

  /// Sum of MACs over all layers.
  [[nodiscard]] std::int64_t total_macs() const;

  /// Number of structurally distinct layer shapes (scheduler work units).
  [[nodiscard]] std::size_t unique_shape_count() const;

  /// Find a layer by name; throws util::precondition_error if absent.
  [[nodiscard]] const LayerSpec& layer(const std::string& layer_name) const;

 private:
  std::string name_;
  std::string abbr_;
  Domain domain_;
  std::vector<LayerSpec> layers_;
};

}  // namespace rota::nn
