#pragma once

#include <vector>

#include "nn/network.hpp"

/// \file workloads.hpp
/// The DNN workload zoo of Table II. Each builder returns the compute
/// layers of the network in execution order, with shapes taken from the
/// original papers (ResNet [6], Inception-v4 [22], YOLOv3 [18],
/// SqueezeNet [9], MobileNetV3 [7], EfficientNet [24], ViT [4],
/// MobileViT [12], Llama-2 [26]). Pooling, normalization and activation
/// layers are omitted: they do not execute on the MAC array whose wear is
/// being modeled, but their effect on feature-map sizes is accounted for.

namespace rota::nn {

[[nodiscard]] Network make_resnet50();        ///< Res — residual blocks, 224×224
[[nodiscard]] Network make_inception_v4();    ///< Inc — asymmetric 1×7/7×1 kernels, 299×299
[[nodiscard]] Network make_yolo_v3();         ///< YL  — Darknet-53 + detection heads, 416×416
[[nodiscard]] Network make_squeezenet();      ///< Sqz — fire modules, 224×224
[[nodiscard]] Network make_mobilenet_v3();    ///< Mb  — bneck blocks with SE, 224×224
[[nodiscard]] Network make_efficientnet_b0(); ///< Eff — MBConv blocks, 224×224
[[nodiscard]] Network make_vit_b16();         ///< VT  — ViT-Base/16 encoder, 224×224
[[nodiscard]] Network make_mobilevit_s();     ///< MVT — MobileViT-S hybrid, 256×256
[[nodiscard]] Network make_llama2_7b();       ///< LM  — Llama-2 7B decoder, 512-token prompt

/// All nine workloads in the order of Table II.
[[nodiscard]] std::vector<Network> all_workloads();

// Extended zoo (beyond Table II): the classic CNNs of the original
// Eyeriss evaluation and an encoder transformer, used by the extension
// benches and available to library users.
[[nodiscard]] Network make_alexnet();    ///< AN — AlexNet, 227×227
[[nodiscard]] Network make_vgg16();      ///< VGG — VGG-16, 224×224
[[nodiscard]] Network make_bert_base();  ///< BRT — BERT-Base, 128-token sequence

/// Table II plus the extended zoo.
[[nodiscard]] std::vector<Network> extended_workloads();

/// Look up one workload by abbreviation (Table II or extended zoo).
/// Throws util::precondition_error for an unknown abbreviation.
[[nodiscard]] Network workload_by_abbr(const std::string& abbr);

}  // namespace rota::nn
