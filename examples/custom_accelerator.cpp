/// \file custom_accelerator.cpp
/// Domain example: evaluating RoTA wear-leveling for a *custom* design —
/// a 16×16 edge-NPU-style array with larger local buffers — running a
/// hand-built keyword-spotting CNN that is not part of the Table II zoo.
/// Shows the full API surface a downstream architect would touch: custom
/// AcceleratorConfig, custom Network via the layer factories, the mapper,
/// the wear simulator, the area model and the execution engine.

#include <iostream>

#include "core/rota.hpp"

int main() {
  using namespace rota;
  using wear::PolicyKind;

  // --- 1. A custom accelerator: 16×16 torus, beefier local buffers. -----
  arch::AcceleratorConfig accel;
  accel.array_width = 16;
  accel.array_height = 16;
  accel.topology = arch::TopologyKind::kTorus2D;
  accel.lb_input_bytes = 64;
  accel.lb_weight_bytes = 512;
  accel.lb_output_bytes = 64;
  accel.glb_bytes = 256 * 1024;
  accel.validate();

  // --- 2. A custom workload built from the layer factories. -------------
  nn::Network net("DS-CNN-KWS", "KWS", nn::Domain::kLightweight);
  net.add(nn::conv2d("conv1", 1, 64, 49, 10, 10, 4, 2, 4, 1));
  std::int64_t fm_h = 25;
  std::int64_t fm_w = 5;
  for (int i = 1; i <= 4; ++i) {
    const std::string p = "ds" + std::to_string(i);
    // Depthwise-separable pair on a rectangular map; model the dw conv on
    // the larger square-ish dimension for simplicity.
    net.add(nn::conv2d(p + "_dw_as_grouped", 64, 64, fm_h, fm_w, 3, 3, 1, 1,
                       1));
    net.add(nn::conv2d(p + "_pw", 64, 64, fm_h, fm_w, 1, 1, 1, 0, 0));
  }
  net.add(nn::gemm("fc", 1, 12, 64));  // 12 keywords

  std::cout << "custom accelerator: " << accel.array_width << "x"
            << accel.array_height << " torus, GLB "
            << accel.glb_bytes / 1024 << " KB\n"
            << "custom workload:    " << net.name() << ", "
            << net.layer_count() << " layers, " << net.total_macs()
            << " MACs\n\n";

  // --- 3. Schedule and inspect the utilization spaces. ------------------
  ExperimentConfig cfg;
  cfg.accel = accel;
  cfg.iterations = 2000;  // small model -> cheap iterations
  Experiment exp(cfg);
  const auto schedule = exp.schedule(net);
  util::TextTable spaces({"layer", "space", "tiles", "utilization"});
  for (const auto& l : schedule.layers) {
    spaces.add_row({l.layer_name,
                    std::to_string(l.space.x) + "x" +
                        std::to_string(l.space.y),
                    std::to_string(l.tiles),
                    util::fmt_pct(l.utilization(accel))});
  }
  std::cout << spaces.str() << '\n';

  // --- 4. Wear-level and quantify the reliability win. ------------------
  const auto result = exp.run(net, {PolicyKind::kBaseline, PolicyKind::kRwlRo});
  std::cout << "RWL+RO lifetime improvement over fixed-corner baseline: "
            << util::fmt(result.improvement_over_baseline(PolicyKind::kRwlRo),
                         2)
            << "x over " << cfg.iterations << " iterations\n";

  // --- 5. What does the torus cost on this design? ----------------------
  arch::AcceleratorConfig mesh = accel;
  mesh.topology = arch::TopologyKind::kMesh2D;
  const arch::AreaModel area;
  std::cout << "torus area overhead on the PE array: "
            << util::fmt_pct(area.array_overhead_fraction(mesh), 2) << '\n';

  // --- 6. And does wear-leveling cost cycles? (it must not) -------------
  const sim::ExecutionEngine engine(accel);
  const sim::ExecutionEngine mesh_engine(mesh);
  std::cout << "execution cycles, mesh vs torus+RWL+RO: "
            << util::fmt(mesh_engine.network_cycles(schedule), 0) << " vs "
            << util::fmt(engine.network_cycles(schedule), 0) << '\n';
  return 0;
}
