/// \file external_schedule.cpp
/// Domain example: driving the wear simulator with utilization spaces from
/// an *external* scheduler — the workflow of the paper itself, which took
/// per-layer spaces from NeuroSpector. The schedule CSV needs only four
/// columns (layer, x, y, tiles); here we synthesize one in-memory using
/// the paper's §IV-C worked example plus two more layers, run all three
/// wear-leveling schemes on it, and report the outcome.

#include <iostream>
#include <sstream>

#include "core/rota.hpp"

int main() {
  using namespace rota;
  using wear::PolicyKind;

  // A schedule as an external tool would emit it. The first row is the
  // paper's ResNet C5 example: an 8×8 space for Z = 32 tiles.
  const std::string csv =
      "layer,x,y,tiles\n"
      "c5_example,8,8,32\n"
      "wide_layer,14,3,120\n"
      "narrow_layer,5,11,77\n";

  std::istringstream in(csv);
  const sched::NetworkSchedule ns =
      sched::read_schedule_csv(in, arch::rota_like(), "external", "ext");

  std::cout << "imported " << ns.layers.size()
            << " layers; tiles/iteration = " << ns.total_tiles() << "\n\n";

  // Verify the paper's closed-form RWL arithmetic on the imported rows.
  for (const auto& l : ns.layers) {
    const wear::RwlParams p{14, 12, l.space.x, l.space.y, l.tiles};
    const wear::RwlDerived d = wear::rwl_derive(p);
    std::cout << l.layer_name << ": X=" << d.strides_x << " W=" << d.unfold_w
              << " D_max<=" << d.d_max_bound << " min(A_PE)>=" << d.min_a_pe
              << '\n';
  }
  std::cout << '\n';

  for (PolicyKind kind : {PolicyKind::kBaseline, PolicyKind::kRwl,
                          PolicyKind::kRwlRo}) {
    wear::WearSimulator sim(arch::rota_like());
    auto policy = wear::make_policy(kind, 14, 12);
    sim.run_iterations(ns, *policy, 100);
    const auto st = sim.tracker().stats();
    std::cout << wear::to_string(kind) << " after 100 iterations: D_max = "
              << st.max_diff << ", R_diff = " << util::fmt(st.r_diff, 4)
              << '\n';
  }

  std::cout << "\nTo do this from the command line:\n"
               "  rota schedule Sqz --csv my_schedule.csv   # or bring your "
               "own CSV\n"
               "  rota wear --schedule my_schedule.csv --policy RWL+RO\n";
  return 0;
}
