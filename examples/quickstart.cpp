/// \file quickstart.cpp
/// Minimal end-to-end use of the RoTA library: schedule SqueezeNet on the
/// default 14×12 torus accelerator, run 100 inference iterations under the
/// baseline and the proposed RWL+RO wear-leveling policy, and report the
/// usage statistics and the lifetime-reliability improvement (Eq. 4).

#include <iostream>

#include "core/rota.hpp"

int main() {
  using rota::wear::PolicyKind;

  rota::ExperimentConfig cfg;
  cfg.iterations = 100;
  rota::Experiment exp(cfg);

  const rota::nn::Network net = rota::nn::make_squeezenet();
  std::cout << "workload: " << net.name() << " (" << net.layer_count()
            << " compute layers, " << net.total_macs() << " MACs)\n";

  const rota::ExperimentResult result =
      exp.run(net, {PolicyKind::kBaseline, PolicyKind::kRwl,
                    PolicyKind::kRwlRo});

  std::cout << "mean PE utilization: "
            << rota::util::fmt_pct(result.schedule.mean_utilization())
            << "  (tiles/iteration: " << result.schedule.total_tiles()
            << ")\n\n";

  for (const auto& run : result.runs) {
    std::cout << run.policy_name << ": D_max = " << run.stats.max_diff
              << ", min(A_PE) = " << run.stats.min
              << ", R_diff = " << rota::util::fmt(run.stats.r_diff, 4)
              << '\n';
  }

  std::cout << "\nlifetime improvement over baseline (beta = "
            << result.beta << "):\n";
  for (PolicyKind kind : {PolicyKind::kRwl, PolicyKind::kRwlRo}) {
    std::cout << "  " << rota::wear::to_string(kind) << ": "
              << rota::util::fmt(result.improvement_over_baseline(kind), 2)
              << "x\n";
  }

  // find_run is the non-throwing lookup of the v1 API; the throwing
  // result.run(kind) accessor is deprecated.
  const rota::PolicyRun* ro = result.find_run(PolicyKind::kRwlRo);
  if (ro == nullptr) {
    std::cout << "RWL+RO run missing from experiment result\n";
    return 1;
  }
  std::cout << "\nRWL+RO usage heatmap after " << result.iterations
            << " iterations:\n" << rota::util::ascii_heatmap(ro->usage);
  return 0;
}
