/// \file lifetime_study.cpp
/// Domain example: reliability sign-off of an accelerator for a given DNN
/// deployment. Picks a workload (by Table II abbreviation) and an
/// iteration budget from the command line, runs all three wear-leveling
/// schemes, and reports the lifetime improvement, the usage-difference
/// transient, and the reliability curve R(t) at the projected MTTF.
///
///   usage: lifetime_study [abbr] [iterations]     (default: YL 500)

#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "core/rota.hpp"

int main(int argc, char** argv) {
  using namespace rota;
  using wear::PolicyKind;

  const std::string abbr = argc > 1 ? argv[1] : "YL";
  const std::int64_t iterations = argc > 2 ? std::atoll(argv[2]) : 500;

  nn::Network net = nn::workload_by_abbr(abbr);
  std::cout << "reliability study: " << net.name() << " x " << iterations
            << " inference iterations on the 14x12 RoTA array\n\n";

  ExperimentConfig cfg;
  cfg.iterations = iterations;
  Experiment exp(cfg);
  const ExperimentResult result =
      exp.run(net, {PolicyKind::kBaseline, PolicyKind::kRwl,
                    PolicyKind::kRwlRo});

  util::TextTable table({"scheme", "lifetime", "D_max", "R_diff",
                         "min(A_PE)", "max(A_PE)"});
  for (const auto& run : result.runs) {
    table.add_row({run.policy_name,
                   util::fmt(result.improvement_over_baseline(run.kind), 2) +
                       "x",
                   std::to_string(run.stats.max_diff),
                   util::fmt(run.stats.r_diff, 4),
                   std::to_string(run.stats.min),
                   std::to_string(run.stats.max)});
  }
  std::cout << table.str() << '\n';

  // Reliability curves: evaluate R(t) for each scheme at the baseline's
  // MTTF — the survival probability gained by wear-leveling at the moment
  // the unleveled design is expected to die.
  const rota::PolicyRun* base_ptr = result.find_run(PolicyKind::kBaseline);
  if (base_ptr == nullptr) {
    std::cerr << "baseline run missing from experiment result\n";
    return 1;
  }
  const auto& base = *base_ptr;
  std::vector<double> base_alpha;
  for (auto v : base.usage.cells())
    base_alpha.push_back(static_cast<double>(v));
  // Normalize activities so the most-stressed baseline PE has alpha = 1.
  const double peak = *std::max_element(base_alpha.begin(), base_alpha.end());
  for (auto& a : base_alpha) a /= peak;
  const double t_star = rel::array_mttf(base_alpha, cfg.beta);

  std::cout << "survival probability at the baseline's MTTF (t* = "
            << util::fmt(t_star, 3) << " normalized units):\n";
  for (const auto& run : result.runs) {
    std::vector<double> alpha;
    for (auto v : run.usage.cells())
      alpha.push_back(static_cast<double>(v) / peak);
    std::cout << "  " << run.policy_name << ": R(t*) = "
              << util::fmt(rel::array_reliability(alpha, t_star, cfg.beta), 4)
              << '\n';
  }

  std::cout << "\nmax-usage-difference transient (RWL+RO):\n";
  const auto samples = exp.run_transient(net, PolicyKind::kRwlRo,
                                         std::min<std::int64_t>(iterations,
                                                                100));
  for (const auto& s : samples) {
    if (s.iteration % 20 != 0 && s.iteration != 1) continue;
    std::cout << "  iter " << s.iteration << ": D_max = " << s.max_usage_diff
              << ", lifetime vs baseline = " << util::fmt(s.improvement, 2)
              << "x\n";
  }
  return 0;
}
