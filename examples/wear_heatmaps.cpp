/// \file wear_heatmaps.cpp
/// Domain example: visual wear-map inspection. Runs a workload under each
/// wear-leveling scheme, prints the ASCII heatmaps (paper Figs. 3 and
/// 6c–e) and exports one PGM image per scheme so the maps can be viewed
/// with any image tool — no plotting stack required.
///
///   usage: wear_heatmaps [abbr] [iterations] [out_dir]   (default: Sqz 200 .)

#include <cstdlib>
#include <iostream>

#include "core/rota.hpp"

int main(int argc, char** argv) {
  using namespace rota;
  using wear::PolicyKind;

  const std::string abbr = argc > 1 ? argv[1] : "Sqz";
  const std::int64_t iterations = argc > 2 ? std::atoll(argv[2]) : 200;
  const std::string out_dir = argc > 3 ? argv[3] : ".";

  nn::Network net = nn::workload_by_abbr(abbr);
  Experiment exp({arch::rota_like(), iterations});
  const auto result = exp.run(net, {PolicyKind::kBaseline, PolicyKind::kRwl,
                                    PolicyKind::kRwlRo});

  for (const auto& run : result.runs) {
    std::cout << "=== " << run.policy_name << " after " << iterations
              << " iterations of " << net.name() << " ===\n";
    std::cout << "D_max = " << run.stats.max_diff
              << ", R_diff = " << util::fmt(run.stats.r_diff, 4) << "\n";
    std::cout << util::ascii_heatmap(run.usage) << '\n';

    util::Grid<double> img(run.usage.width(), run.usage.height());
    for (std::size_t r = 0; r < img.height(); ++r)
      for (std::size_t c = 0; c < img.width(); ++c)
        img(c, r) = static_cast<double>(run.usage(c, r));
    std::string name = run.policy_name;
    for (char& ch : name)
      if (ch == '+') ch = '_';
    const std::string path = out_dir + "/wear_" + abbr + "_" + name + ".pgm";
    if (util::write_pgm(img, path)) {
      std::cout << "wrote " << path << "\n\n";
    } else {
      std::cout << "could not write " << path << "\n\n";
    }
  }

  std::cout << "Tip: the baseline map shows the corner hotspot; RWL shows "
               "residual banding; RWL+RO is flat.\n";
  return 0;
}
