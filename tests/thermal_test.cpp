#include <gtest/gtest.h>

#include <cmath>

#include "thermal/thermal.hpp"
#include "util/check.hpp"

namespace rota::thermal {
namespace {

using util::precondition_error;

ThermalParams fast_params() {
  ThermalParams p;
  p.tolerance_c = 1e-10;
  return p;
}

TEST(Thermal, ZeroPowerStaysAtAmbient) {
  const ThermalModel model(fast_params());
  util::Grid<double> power(6, 5, 0.0);
  const auto temp = model.steady_state(power);
  for (double t : temp.cells()) EXPECT_NEAR(t, 45.0, 1e-9);
}

TEST(Thermal, UniformPowerWithoutLateralIsAnalytic) {
  // With no lateral coupling each node is an isolated divider:
  // T = T_amb + p · R_sink.
  ThermalParams p = fast_params();
  p.lateral_coupling = 0.0;
  const ThermalModel model(p);
  util::Grid<double> power(4, 4, 0.002);
  const auto temp = model.steady_state(power);
  for (double t : temp.cells())
    EXPECT_NEAR(t, 45.0 + 0.002 * p.sink_c_per_w, 1e-6);
}

TEST(Thermal, UniformPowerWithLateralIsStillUniform) {
  // Lateral links carry no heat when all nodes are equal.
  const ThermalModel model(fast_params());
  util::Grid<double> power(5, 5, 0.003);
  const auto temp = model.steady_state(power);
  const double t0 = temp.at(0, 0);
  for (double t : temp.cells()) EXPECT_NEAR(t, t0, 1e-6);
  EXPECT_NEAR(t0, 45.0 + 0.003 * model.params().sink_c_per_w, 1e-6);
}

TEST(Thermal, PointSourceDiffusesMonotonically) {
  const ThermalModel model(fast_params());
  util::Grid<double> power(7, 7, 0.0);
  power.at(3, 3) = 0.004;
  const auto temp = model.steady_state(power);
  // Hottest at the source, decaying with distance, everything >= ambient.
  EXPECT_GT(temp.at(3, 3), temp.at(2, 3));
  EXPECT_GT(temp.at(2, 3), temp.at(1, 3));
  EXPECT_GT(temp.at(1, 3), temp.at(0, 3));
  for (double t : temp.cells()) EXPECT_GE(t, 45.0 - 1e-9);
}

TEST(Thermal, MorePowerIsHotterEverywhere) {
  const ThermalModel model(fast_params());
  util::Grid<double> low(5, 4, 0.001);
  util::Grid<double> high(5, 4, 0.001);
  high.at(1, 1) = 0.003;
  const auto t_low = model.steady_state(low);
  const auto t_high = model.steady_state(high);
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 5; ++c)
      EXPECT_GE(t_high(c, r), t_low(c, r) - 1e-9);
  EXPECT_GT(t_high.at(1, 1), t_low.at(1, 1) + 0.1);
}

TEST(Thermal, PowerFromUsageNormalizesToPeak) {
  const ThermalModel model(fast_params());
  util::Grid<std::int64_t> usage(3, 2, 0);
  usage.at(0, 0) = 100;
  usage.at(2, 1) = 50;
  const auto power = model.power_from_usage(usage);
  EXPECT_DOUBLE_EQ(power.at(0, 0), model.params().pe_peak_power_w);
  EXPECT_DOUBLE_EQ(power.at(2, 1), model.params().pe_peak_power_w / 2);
  EXPECT_DOUBLE_EQ(power.at(1, 0), 0.0);
}

TEST(Thermal, RejectsInvalidInput) {
  const ThermalModel model;
  util::Grid<double> bad(2, 2, -1.0);
  EXPECT_THROW(model.steady_state(bad), precondition_error);
  ThermalParams p;
  p.sink_c_per_w = 0.0;
  EXPECT_THROW(ThermalModel{p}, precondition_error);
}

TEST(Arrhenius, ReferenceIsUnity) {
  EXPECT_NEAR(arrhenius_factor(55.0, 55.0), 1.0, 1e-12);
}

TEST(Arrhenius, HotterAcceleratesColderRetards) {
  EXPECT_GT(arrhenius_factor(85.0, 55.0), 1.0);
  EXPECT_LT(arrhenius_factor(25.0, 55.0), 1.0);
}

TEST(Arrhenius, TenDegreeRuleOfThumbMagnitude) {
  // With Ea = 0.7 eV, +10 °C near 55 °C roughly doubles the rate.
  const double af = arrhenius_factor(65.0, 55.0, 0.7);
  EXPECT_GT(af, 1.5);
  EXPECT_LT(af, 3.0);
}

TEST(Arrhenius, RejectsNonPhysicalInput) {
  EXPECT_THROW((void)arrhenius_factor(55.0, 55.0, 0.0), precondition_error);
  EXPECT_THROW((void)arrhenius_factor(-300.0, 55.0), precondition_error);
}

TEST(AcceleratedAlphas, UniformUsageIsUnaffected) {
  // A perfectly level design sits at the mean temperature, AF = 1.
  const ThermalModel model(fast_params());
  util::Grid<std::int64_t> usage(6, 6, 1000);
  const auto alphas = accelerated_alphas(usage, model);
  for (double a : alphas) EXPECT_NEAR(a, 1000.0, 1e-6);
}

TEST(AcceleratedAlphas, HotspotsArePenalizedSuperlinearly) {
  const ThermalModel model(fast_params());
  util::Grid<std::int64_t> corner(6, 6, 100);
  corner.at(0, 0) = 1000;
  const auto alphas = accelerated_alphas(corner, model);
  // The hotspot PE's effective stress exceeds its raw usage share.
  const double hotspot = alphas[0];
  EXPECT_GT(hotspot, 1000.0);
}

}  // namespace
}  // namespace rota::thermal
