#include <gtest/gtest.h>

#include "arch/config.hpp"
#include "nn/workloads.hpp"
#include "sched/mapper.hpp"
#include "sim/controller.hpp"
#include "sim/engine.hpp"
#include "sim/noc_traffic.hpp"
#include "sim/pipeline.hpp"
#include "util/rng.hpp"
#include "wear/policy.hpp"

namespace rota::sim {
namespace {

using util::precondition_error;

// ------------------------------------------------------------- pipeline ----

TEST(Pipeline, SingleTileIsSumOfPhases) {
  TilePipeline p;
  p.push({4.0, 10.0, 2.0});
  EXPECT_DOUBLE_EQ(p.makespan(), 16.0);
  EXPECT_EQ(p.tiles(), 1);
}

TEST(Pipeline, ComputeBoundTilesOverlapLoads) {
  // scatter=2, compute=10: after the first load, computes dominate and
  // each additional tile adds exactly its compute time.
  TilePipeline p;
  for (int i = 0; i < 5; ++i) p.push({2.0, 10.0, 0.0});
  EXPECT_DOUBLE_EQ(p.makespan(), 2.0 + 5 * 10.0);
}

TEST(Pipeline, ScatterBoundTilesRateLimitedByLoads) {
  // scatter=10, compute=2: loads serialize; last compute trails by 2.
  TilePipeline p;
  for (int i = 0; i < 4; ++i) p.push({10.0, 2.0, 0.0});
  EXPECT_DOUBLE_EQ(p.makespan(), 4 * 10.0 + 2.0);
}

TEST(Pipeline, HandComputedMixedCase) {
  // Two tiles, scatter 3 / compute 5 / gather 2:
  //   load1 = 3, compute1 = 8, gather1 = 10
  //   load2 = 6, compute2 = max(6,8)+5 = 13, gather2 = max(13,10)+2 = 15.
  TilePipeline p;
  p.push({3.0, 5.0, 2.0});
  p.push({3.0, 5.0, 2.0});
  EXPECT_DOUBLE_EQ(p.makespan(), 15.0);
}

TEST(Pipeline, DoubleBufferingLimitsLoadAhead) {
  // With only two buffer slots, load i may not start before compute i−2
  // ends. scatter=1, compute=100: load3 must wait for compute1.
  TilePipeline p;
  p.push({1.0, 100.0, 0.0});  // load1=1,  c1=101
  p.push({1.0, 100.0, 0.0});  // load2=2,  c2=201
  p.push({1.0, 100.0, 0.0});  // load3=max(2,101)+1=102, c3=301
  EXPECT_DOUBLE_EQ(p.makespan(), 301.0);
}

TEST(Pipeline, PushUniformMatchesRepeatedPush) {
  util::SplitMix64 rng(31);
  for (int trial = 0; trial < 50; ++trial) {
    const TilePhases ph{static_cast<double>(rng.next_below(20)),
                        static_cast<double>(1 + rng.next_below(20)),
                        static_cast<double>(rng.next_below(10))};
    const std::int64_t count =
        1 + static_cast<std::int64_t>(rng.next_below(200));
    TilePipeline a;
    TilePipeline b;
    a.push_uniform(ph, count);
    for (std::int64_t i = 0; i < count; ++i) b.push(ph);
    EXPECT_DOUBLE_EQ(a.makespan(), b.makespan())
        << "trial " << trial << " count " << count;
    EXPECT_EQ(a.tiles(), b.tiles());
  }
}

TEST(Pipeline, RejectsNegativeDurations) {
  TilePipeline p;
  EXPECT_THROW(p.push({-1.0, 1.0, 0.0}), precondition_error);
}

// ----------------------------------------------------------- controller ----

TEST(Controller, MatchesRwlRoPolicyOverRandomLayerSequences) {
  // The RTL-faithful circular-counter controller must generate exactly the
  // same (u, v) sequence as the behavioral RWL+RO policy (Algorithm 1).
  util::SplitMix64 rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    const std::int64_t w = 3 + static_cast<std::int64_t>(rng.next_below(20));
    const std::int64_t h = 3 + static_cast<std::int64_t>(rng.next_below(20));
    WearLevelingController hw(w, h);
    auto sw = wear::make_policy(wear::PolicyKind::kRwlRo, w, h);
    for (int layer = 0; layer < 10; ++layer) {
      const std::int64_t x =
          1 + static_cast<std::int64_t>(rng.next_below(static_cast<std::uint64_t>(w)));
      const std::int64_t y =
          1 + static_cast<std::int64_t>(rng.next_below(static_cast<std::uint64_t>(h)));
      const std::int64_t z =
          1 + static_cast<std::int64_t>(rng.next_below(120));
      hw.load_layer(x, y);
      const sched::UtilSpace space{x, y};
      sw->begin_layer(space);
      for (std::int64_t i = 0; i < z; ++i) {
        const wear::Placement at = sw->next_origin(space);
        ASSERT_EQ(hw.u(), at.u) << "trial " << trial << " layer " << layer;
        ASSERT_EQ(hw.v(), at.v) << "trial " << trial << " layer " << layer;
        hw.step();
      }
    }
  }
}

TEST(Controller, RequiresLayerLoad) {
  WearLevelingController hw(14, 12);
  EXPECT_THROW(hw.step(), precondition_error);
}

TEST(Controller, RejectsOutOfRangeRegisters) {
  WearLevelingController hw(14, 12);
  EXPECT_THROW(hw.load_layer(15, 4), precondition_error);
  EXPECT_THROW(hw.load_layer(4, 13), precondition_error);
  EXPECT_THROW(hw.load_layer(0, 4), precondition_error);
}

// ---------------------------------------------------------- link traffic ----

TEST(LinkTraffic, SimpleSpaceLoadsColumnLinks) {
  LinkTrafficTracker t(5, 4);
  // 2×3 space at (1,0): columns 1,2 carry hops on rows 0->1 and 1->2.
  t.add_space_traffic(1, 0, 2, 3, 7, false);
  EXPECT_EQ(t.vertical_links().at(1, 0), 7);
  EXPECT_EQ(t.vertical_links().at(1, 1), 7);
  EXPECT_EQ(t.vertical_links().at(2, 1), 7);
  EXPECT_EQ(t.vertical_links().at(1, 2), 0);  // only y−1 hops
  EXPECT_EQ(t.vertical_links().at(0, 0), 0);
  EXPECT_EQ(t.total_words(), 7 * 2 * 2);
}

TEST(LinkTraffic, WrapUsesRingLinks) {
  LinkTrafficTracker t(4, 4);
  // Space anchored near the top wraps: hops cross the 3->0 seam link.
  t.add_space_traffic(0, 3, 1, 2, 1, true);
  EXPECT_EQ(t.vertical_links().at(0, 3), 1);  // the wrap link
  EXPECT_EQ(t.max_link(), 1);
}

TEST(LinkTraffic, MeshForbidsWrap) {
  LinkTrafficTracker t(4, 4);
  EXPECT_THROW(t.add_space_traffic(0, 3, 1, 2, 1, false),
               util::precondition_error);
}

TEST(LinkTraffic, HeightOneSpacesUseNoLinks) {
  LinkTrafficTracker t(4, 4);
  t.add_space_traffic(0, 0, 4, 1, 9, false);
  EXPECT_EQ(t.total_words(), 0);
}

TEST(LinkTraffic, WearLevelingLevelsLinkWearToo) {
  // Same schedule, same total traffic; RWL+RO spreads it while the
  // baseline concentrates it on the corner column links.
  sched::NetworkSchedule ns;
  ns.config = arch::rota_like();
  sched::LayerSchedule l;
  l.layer_name = "l0";
  l.space = {8, 8};
  l.tiles = 210;
  l.reduction_steps = 4;
  l.mapping.lb_q = 7;
  ns.layers.push_back(l);

  auto base = wear::make_policy(wear::PolicyKind::kBaseline, 14, 12);
  auto ro = wear::make_policy(wear::PolicyKind::kRwlRo, 14, 12);
  const auto base_t = simulate_link_traffic(ns, *base, 10, true);
  const auto ro_t = simulate_link_traffic(ns, *ro, 10, true);
  EXPECT_EQ(base_t.total_words(), ro_t.total_words());
  EXPECT_LT(ro_t.max_link(), base_t.max_link());
}

// --------------------------------------------------------------- engine ----

sched::LayerSchedule synthetic_layer(std::int64_t tiles,
                                     std::int64_t scatter_words,
                                     std::int64_t compute_macs,
                                     std::int64_t gather_words,
                                     std::int64_t reduction_steps) {
  sched::LayerSchedule l;
  l.layer_name = "synthetic";
  l.space = {8, 8};
  l.tiles = tiles;
  l.scatter_words = scatter_words;
  l.compute_macs_per_pe = compute_macs;
  l.gather_words = gather_words;
  l.reduction_steps = reduction_steps;
  return l;
}

TEST(Engine, PhasesScaleWithGlobalBandwidth) {
  arch::AcceleratorConfig cfg = arch::rota_like();
  cfg.global_net_words_per_cycle = 4;
  const ExecutionEngine e4(cfg);
  cfg.global_net_words_per_cycle = 8;
  const ExecutionEngine e8(cfg);
  const auto layer = synthetic_layer(10, 64, 100, 32, 2);
  EXPECT_DOUBLE_EQ(e4.phases_of(layer, true).scatter, 16.0);
  EXPECT_DOUBLE_EQ(e8.phases_of(layer, true).scatter, 8.0);
  EXPECT_DOUBLE_EQ(e4.phases_of(layer, false).gather, 0.0);
  EXPECT_DOUBLE_EQ(e4.phases_of(layer, true).gather, 8.0);
}

TEST(Engine, EstimateTracksExactSimulationClosely) {
  const ExecutionEngine engine(arch::rota_like());
  util::SplitMix64 rng(8);
  for (int trial = 0; trial < 30; ++trial) {
    const auto layer = synthetic_layer(
        50 + static_cast<std::int64_t>(rng.next_below(500)),
        1 + static_cast<std::int64_t>(rng.next_below(256)),
        1 + static_cast<std::int64_t>(rng.next_below(200)),
        1 + static_cast<std::int64_t>(rng.next_below(64)),
        1 + static_cast<std::int64_t>(rng.next_below(8)));
    const double exact = engine.simulate_layer(layer).cycles;
    const double estimate = engine.estimate_layer(layer).cycles;
    EXPECT_NEAR(estimate / exact, 1.0, 0.15)
        << "trial " << trial << ": exact " << exact << " vs " << estimate;
  }
}

TEST(Engine, CyclesIndependentOfTopology) {
  // The paper's "no performance degradation" claim: identical schedules
  // cost identical cycles on the mesh baseline and the torus design —
  // anchoring offsets change addresses, not data volumes.
  arch::AcceleratorConfig mesh = arch::eyeriss_like();
  arch::AcceleratorConfig torus = arch::rota_like();
  const ExecutionEngine em(mesh);
  const ExecutionEngine et(torus);
  sched::Mapper mapper(mesh, sched::ObjectiveSpec{});
  const auto ns = mapper.schedule_network(nn::make_squeezenet());
  for (const auto& layer : ns.layers) {
    EXPECT_DOUBLE_EQ(em.estimate_layer(layer).cycles,
                     et.estimate_layer(layer).cycles);
  }
  EXPECT_DOUBLE_EQ(em.network_cycles(ns), et.network_cycles(ns));
}

TEST(Engine, ControllerUpdateAlwaysHidden) {
  // Every mapped layer computes for >= 1 cycle per tile, so the 1-cycle
  // (u, v) counter update never extends the critical path.
  const ExecutionEngine engine(arch::rota_like());
  sched::Mapper mapper(arch::rota_like(), sched::ObjectiveSpec{});
  for (const char* abbr : {"Sqz", "Mb", "VT"}) {
    const auto ns = mapper.schedule_network(nn::workload_by_abbr(abbr));
    for (const auto& layer : ns.layers) {
      EXPECT_TRUE(engine.estimate_layer(layer).controller_update_hidden)
          << abbr << ':' << layer.layer_name;
    }
  }
}

TEST(Engine, DramRooflineOnlyEverSlowsDown) {
  const ExecutionEngine engine(arch::rota_like());
  sched::Mapper mapper(arch::rota_like(), sched::ObjectiveSpec{});
  const auto ns = mapper.schedule_network(nn::make_squeezenet());
  const DramParams dram{2.0};
  for (const auto& layer : ns.layers) {
    const LayerTiming plain = engine.estimate_layer(layer);
    const LayerTiming roof = engine.estimate_layer_with_dram(layer, dram);
    EXPECT_GE(roof.cycles, plain.cycles) << layer.layer_name;
    if (roof.memory_bound) {
      EXPECT_GT(roof.cycles, plain.cycles) << layer.layer_name;
      EXPECT_NEAR(roof.cycles,
                  static_cast<double>(layer.accesses.dram_accesses) / 2.0,
                  1e-6);
    }
  }
  EXPECT_GE(engine.network_cycles_with_dram(ns, dram),
            engine.network_cycles(ns));
}

TEST(Engine, InfiniteDramBandwidthRecoversArrayEstimate) {
  const ExecutionEngine engine(arch::rota_like());
  sched::Mapper mapper(arch::rota_like(), sched::ObjectiveSpec{});
  const auto ls = mapper.schedule_layer(nn::conv("c", 64, 64, 28, 3, 1));
  const DramParams fat{1e12};
  const LayerTiming roof = engine.estimate_layer_with_dram(ls, fat);
  EXPECT_DOUBLE_EQ(roof.cycles, engine.estimate_layer(ls).cycles);
  EXPECT_FALSE(roof.memory_bound);
}

TEST(Engine, DramRooflineStillPolicyIndependent) {
  sched::Mapper mapper(arch::eyeriss_like(), sched::ObjectiveSpec{});
  const auto ns = mapper.schedule_network(nn::make_mobilenet_v3());
  const ExecutionEngine mesh(arch::eyeriss_like());
  const ExecutionEngine torus(arch::rota_like());
  const DramParams dram{1.5};
  EXPECT_DOUBLE_EQ(mesh.network_cycles_with_dram(ns, dram),
                   torus.network_cycles_with_dram(ns, dram));
}

TEST(Engine, RejectsNonPositiveDramBandwidth) {
  const ExecutionEngine engine(arch::rota_like());
  sched::Mapper mapper(arch::rota_like(), sched::ObjectiveSpec{});
  const auto ls = mapper.schedule_layer(nn::conv("c", 8, 8, 7, 3, 1));
  EXPECT_THROW(engine.estimate_layer_with_dram(ls, DramParams{0.0}),
               precondition_error);
}

TEST(Engine, ExactSimulationOnScheduledLayer) {
  sched::Mapper mapper(arch::rota_like(), sched::ObjectiveSpec{});
  const ExecutionEngine engine(arch::rota_like());
  const auto ls = mapper.schedule_layer(nn::conv("c", 64, 64, 28, 3, 1));
  const LayerTiming t = engine.simulate_layer(ls);
  EXPECT_EQ(t.tiles, ls.tiles);
  EXPECT_GT(t.cycles, 0.0);
  // The pipeline can never beat the compute lower bound.
  EXPECT_GE(t.cycles,
            static_cast<double>(ls.output_tiles * ls.reduction_steps) *
                static_cast<double>(ls.compute_macs_per_pe));
}

}  // namespace
}  // namespace rota::sim
