#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "reliability/array_reliability.hpp"
#include "reliability/monte_carlo.hpp"
#include "reliability/spares.hpp"
#include "reliability/weibull.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace rota::rel {
namespace {

using util::precondition_error;

// -------------------------------------------------------------- weibull ----

TEST(Weibull, BoundaryValues) {
  const Weibull w(3.4, 2.0);
  EXPECT_DOUBLE_EQ(w.reliability(0.0), 1.0);
  EXPECT_DOUBLE_EQ(w.cdf(0.0), 0.0);
  // At t = η, R = e^{-1} regardless of shape.
  EXPECT_NEAR(w.reliability(2.0), std::exp(-1.0), 1e-12);
}

TEST(Weibull, ReliabilityMonotonicallyDecreasing) {
  const Weibull w;
  double prev = 1.0;
  for (double t = 0.1; t < 3.0; t += 0.1) {
    const double r = w.reliability(t);
    EXPECT_LT(r, prev);
    prev = r;
  }
}

TEST(Weibull, CdfComplementsReliability) {
  const Weibull w(2.5, 1.5);
  for (double t : {0.0, 0.3, 1.0, 2.7}) {
    EXPECT_NEAR(w.reliability(t) + w.cdf(t), 1.0, 1e-12);
  }
}

TEST(Weibull, MeanMatchesNumericalIntegrationOfReliability) {
  // MTTF = ∫ R(t) dt — trapezoid over a generous horizon.
  const Weibull w(3.4, 1.0);
  double integral = 0.0;
  const double dt = 1e-4;
  for (double t = 0.0; t < 5.0; t += dt) {
    integral += 0.5 * (w.reliability(t) + w.reliability(t + dt)) * dt;
  }
  EXPECT_NEAR(w.mean(), integral, 1e-3);
}

TEST(Weibull, PdfIsDerivativeOfCdf) {
  const Weibull w(3.4, 1.0);
  const double t = 0.8;
  const double eps = 1e-6;
  const double numeric = (w.cdf(t + eps) - w.cdf(t - eps)) / (2 * eps);
  EXPECT_NEAR(w.pdf(t), numeric, 1e-5);
}

TEST(Weibull, ExponentialSpecialCase) {
  // β = 1 degenerates to the exponential distribution: mean = η.
  const Weibull w(1.0, 3.0);
  EXPECT_NEAR(w.mean(), 3.0, 1e-12);
  EXPECT_NEAR(w.reliability(3.0), std::exp(-1.0), 1e-12);
}

TEST(Weibull, RejectsInvalidParameters) {
  EXPECT_THROW(Weibull(0.0, 1.0), precondition_error);
  EXPECT_THROW(Weibull(1.0, 0.0), precondition_error);
  EXPECT_THROW((void)Weibull().reliability(-1.0), precondition_error);
}

TEST(Weibull, JedecShapeIsPaperValue) { EXPECT_DOUBLE_EQ(kJedecShape, 3.4); }

// ----------------------------------------------------- array reliability ----

TEST(ArrayReliability, SinglePeMatchesWeibull) {
  const Weibull w(3.4, 1.0);
  for (double t : {0.1, 0.5, 1.0, 2.0}) {
    EXPECT_NEAR(array_reliability({1.0}, t), w.reliability(t), 1e-12);
  }
}

TEST(ArrayReliability, SerialChainIsProductOfPeReliabilities) {
  const std::vector<double> alphas{0.2, 0.7, 1.0, 0.5};
  const Weibull w(3.4, 1.0);
  const double t = 0.9;
  double product = 1.0;
  for (double a : alphas) product *= w.reliability(t * a);
  EXPECT_NEAR(array_reliability(alphas, t), product, 1e-12);
}

TEST(ArrayReliability, InactivePesDoNotDegradeReliability) {
  EXPECT_NEAR(array_reliability({1.0, 0.0, 0.0}, 0.7),
              array_reliability({1.0}, 0.7), 1e-12);
}

TEST(ArrayMttf, EqualActivityScalesAsNtoTheMinusOneOverBeta) {
  // n identical serial PEs: MTTF(n) = MTTF(1) / n^{1/β} (Eq. 3).
  const double beta = 3.4;
  const double one = array_mttf({1.0}, beta);
  const std::vector<double> four(4, 1.0);
  EXPECT_NEAR(array_mttf(four, beta), one / std::pow(4.0, 1.0 / beta), 1e-12);
}

TEST(ArrayMttf, MttfMatchesMedianOfReliabilityCurve) {
  // Sanity: R(MTTF) must be a plausible survival probability (the Weibull
  // mean sits near the distribution's bulk for these shapes).
  const std::vector<double> alphas{1.0, 0.5, 0.25};
  const double mttf = array_mttf(alphas);
  const double r_at_mttf = array_reliability(alphas, mttf);
  EXPECT_GT(r_at_mttf, 0.2);
  EXPECT_LT(r_at_mttf, 0.8);
}

TEST(ArrayMttf, RequiresPositiveActivity) {
  EXPECT_THROW((void)array_mttf({0.0, 0.0}), precondition_error);
  EXPECT_THROW((void)array_mttf({}), precondition_error);
}

TEST(Improvement, IdenticalActivityGivesUnity) {
  const std::vector<double> a{3.0, 1.0, 2.0};
  EXPECT_NEAR(lifetime_improvement(a, a), 1.0, 1e-12);
}

TEST(Improvement, ScaleInvariant) {
  const std::vector<double> base{4.0, 0.0, 2.0, 1.0};
  const std::vector<double> wl{2.0, 2.0, 2.0, 1.0};
  std::vector<double> base_scaled;
  std::vector<double> wl_scaled;
  for (double v : base) base_scaled.push_back(v * 1000.0);
  for (double v : wl) wl_scaled.push_back(v * 1000.0);
  EXPECT_NEAR(lifetime_improvement(base, wl),
              lifetime_improvement(base_scaled, wl_scaled), 1e-9);
}

TEST(Improvement, MatchesMttfRatio) {
  const std::vector<double> base{5.0, 0.0, 1.0};
  const std::vector<double> wl{2.0, 2.0, 2.0};
  EXPECT_NEAR(lifetime_improvement(base, wl),
              array_mttf(wl) > 0 ? array_mttf(wl, 3.4) / array_mttf(base, 3.4)
                                 : 0.0,
              1e-12);
}

TEST(Improvement, PerfectLevelingHitsClosedFormBound) {
  // §V-C derivation: m active PEs (α = 1) out of n versus perfectly level
  // activity m/n on all n PEs gives exactly (n/m)^{1 − 1/β}, i.e. the
  // upper bound at utilization m/n.
  const double beta = 3.4;
  const int n = 168;
  const int m = 56;
  std::vector<double> baseline(n, 0.0);
  for (int i = 0; i < m; ++i) baseline[static_cast<std::size_t>(i)] = 1.0;
  const std::vector<double> perfect(
      n, static_cast<double>(m) / static_cast<double>(n));
  const double got = lifetime_improvement(baseline, perfect, beta);
  const double bound =
      perfect_wl_upper_bound(static_cast<double>(m) / n, beta);
  EXPECT_NEAR(got, bound, 1e-9);
}

TEST(Improvement, LevelerNeverBeatsPerfectBound) {
  // Any activity vector with the same total work as the baseline is at
  // most as good as perfectly uniform activity.
  const double beta = 3.4;
  const std::vector<double> baseline{1.0, 1.0, 0.0, 0.0};
  const std::vector<double> imperfect{0.6, 0.6, 0.4, 0.4};
  const std::vector<double> perfect(4, 0.5);
  EXPECT_LE(lifetime_improvement(baseline, imperfect, beta),
            lifetime_improvement(baseline, perfect, beta) + 1e-12);
}

TEST(UpperBound, FullUtilizationLeavesNoHeadroom) {
  EXPECT_NEAR(perfect_wl_upper_bound(1.0), 1.0, 1e-12);
}

TEST(UpperBound, LowerUtilizationGivesMoreHeadroom) {
  double prev = perfect_wl_upper_bound(1.0);
  for (double u = 0.9; u > 0.05; u -= 0.1) {
    const double b = perfect_wl_upper_bound(u);
    EXPECT_GT(b, prev);
    prev = b;
  }
}

TEST(UpperBound, PaperAnchorsRoughMagnitude) {
  // At the paper's mean utilization (55.8%), the ideal headroom is ~1.5x.
  const double b = perfect_wl_upper_bound(0.558);
  EXPECT_GT(b, 1.4);
  EXPECT_LT(b, 1.7);
}

TEST(UpperBound, RejectsOutOfRangeUtilization) {
  EXPECT_THROW((void)perfect_wl_upper_bound(0.0), precondition_error);
  EXPECT_THROW((void)perfect_wl_upper_bound(1.5), precondition_error);
}

// ------------------------------------------------------------ Monte Carlo ----

TEST(MonteCarlo, SinglePeMatchesWeibullMean) {
  const Weibull w(3.4, 2.0);
  const MonteCarloResult mc = monte_carlo_mttf({1.0}, 3.4, 2.0, 20000, 7);
  EXPECT_NEAR(mc.mttf, w.mean(), 4.0 * mc.stderr_ + 1e-12);
  EXPECT_GT(mc.stderr_, 0.0);
}

TEST(MonteCarlo, ValidatesClosedFormArrayMttf) {
  // Heterogeneous activities: the sampled serial-chain MTTF must agree
  // with Eq. 3 within a few standard errors.
  std::vector<double> alphas;
  for (int i = 0; i < 40; ++i)
    alphas.push_back(0.1 + 0.05 * static_cast<double>(i % 9));
  const double closed = array_mttf(alphas);
  const MonteCarloResult mc = monte_carlo_mttf(alphas, kJedecShape, 1.0,
                                               20000, 99);
  EXPECT_NEAR(mc.mttf, closed, 5.0 * mc.stderr_);
}

TEST(MonteCarlo, ValidatesClosedFormReliability) {
  const std::vector<double> alphas{1.0, 0.5, 0.25, 0.75};
  const double t = 0.6;
  const double closed = array_reliability(alphas, t);
  const double sampled = monte_carlo_reliability(alphas, t, kJedecShape, 1.0,
                                                 40000, 3);
  EXPECT_NEAR(sampled, closed, 0.01);
}

TEST(MonteCarlo, DeterministicPerSeed) {
  const std::vector<double> alphas{1.0, 0.3};
  const auto a = monte_carlo_mttf(alphas, 3.4, 1.0, 500, 42);
  const auto b = monte_carlo_mttf(alphas, 3.4, 1.0, 500, 42);
  EXPECT_DOUBLE_EQ(a.mttf, b.mttf);
}

TEST(MonteCarlo, RejectsDegenerateInput) {
  EXPECT_THROW((void)monte_carlo_mttf({}, 3.4), precondition_error);
  EXPECT_THROW((void)monte_carlo_mttf({0.0}, 3.4), precondition_error);
  EXPECT_THROW((void)monte_carlo_mttf({1.0}, 3.4, 1.0, 0), precondition_error);
}

// ---------------------------------------------------- process variation ----

TEST(Variation, ZeroSigmaRecoversEq4) {
  const std::vector<double> base{4.0, 0.0, 2.0, 1.0};
  const std::vector<double> wl{2.0, 2.0, 2.0, 1.0};
  const VariationResult res =
      lifetime_improvement_under_variation(base, wl, kJedecShape, 0.0, 50, 1);
  const double exact = lifetime_improvement(base, wl);
  EXPECT_NEAR(res.mean, exact, 1e-9);
  EXPECT_NEAR(res.p05, exact, 1e-9);
  EXPECT_NEAR(res.p95, exact, 1e-9);
}

TEST(Variation, QuantilesAreOrderedAndSpreadWithSigma) {
  std::vector<double> base(168, 0.0);
  for (int i = 0; i < 56; ++i) base[static_cast<std::size_t>(i)] = 1.0;
  const std::vector<double> wl(168, 56.0 / 168.0);
  const VariationResult narrow =
      lifetime_improvement_under_variation(base, wl, kJedecShape, 0.05, 500,
                                           9);
  const VariationResult wide =
      lifetime_improvement_under_variation(base, wl, kJedecShape, 0.3, 500,
                                           9);
  EXPECT_LE(narrow.p05, narrow.p50);
  EXPECT_LE(narrow.p50, narrow.p95);
  EXPECT_GT(wide.p95 - wide.p05, narrow.p95 - narrow.p05);
  // The median stays near the deterministic value.
  EXPECT_NEAR(narrow.p50, lifetime_improvement(base, wl), 0.1);
}

TEST(Variation, DeterministicPerSeed) {
  const std::vector<double> base{3.0, 1.0};
  const std::vector<double> wl{2.0, 2.0};
  const auto a = lifetime_improvement_under_variation(base, wl, 3.4, 0.2,
                                                      100, 5);
  const auto b = lifetime_improvement_under_variation(base, wl, 3.4, 0.2,
                                                      100, 5);
  EXPECT_DOUBLE_EQ(a.mean, b.mean);
  EXPECT_DOUBLE_EQ(a.p50, b.p50);
}

TEST(Variation, RejectsMismatchedArrays) {
  EXPECT_THROW((void)lifetime_improvement_under_variation({1.0, 1.0}, {1.0}),
               precondition_error);
  EXPECT_THROW(
      (void)lifetime_improvement_under_variation({1.0}, {1.0}, 3.4, -0.1),
      precondition_error);
}

// ----------------------------------------------------------------- spares ----

TEST(Spares, ZeroSparesDegeneratesToSerialChain) {
  const std::vector<double> alphas{1.0, 0.4, 0.7, 0.2};
  for (double t : {0.1, 0.5, 1.0, 2.0}) {
    EXPECT_NEAR(spare_array_reliability(alphas, t, 0),
                array_reliability(alphas, t), 1e-12);
  }
}

TEST(Spares, MoreSparesNeverHurt) {
  const std::vector<double> alphas{1.0, 0.9, 0.8, 0.7, 0.6};
  const double t = 0.8;
  double prev = 0.0;
  for (std::int64_t s = 0; s <= 5; ++s) {
    const double r = spare_array_reliability(alphas, t, s);
    EXPECT_GE(r, prev - 1e-15) << s;
    prev = r;
  }
  // Tolerating every PE's failure means certain survival.
  EXPECT_NEAR(spare_array_reliability(alphas, 10.0, 5), 1.0, 1e-12);
}

TEST(Spares, HomogeneousCaseMatchesBinomial) {
  // n identical PEs with failure probability p: P(<= s failures) is the
  // binomial CDF.
  const int n = 6;
  const double t = 0.9;
  const std::vector<double> alphas(n, 1.0);
  const Weibull w;
  const double p = w.cdf(t);
  auto binom = [&](int k) {
    double c = 1.0;
    for (int i = 0; i < k; ++i)
      c = c * static_cast<double>(n - i) / static_cast<double>(i + 1);
    return c * std::pow(p, k) * std::pow(1.0 - p, n - k);
  };
  for (int s = 0; s <= 3; ++s) {
    double want = 0.0;
    for (int k = 0; k <= s; ++k) want += binom(k);
    EXPECT_NEAR(spare_array_reliability(alphas, t, s), want, 1e-12) << s;
  }
}

TEST(Spares, MttfGrowsWithSpares) {
  const std::vector<double> alphas(12, 1.0);
  const double m0 = spare_array_mttf(alphas, 0);
  const double m1 = spare_array_mttf(alphas, 1);
  const double m3 = spare_array_mttf(alphas, 3);
  EXPECT_NEAR(m0, array_mttf(alphas), 0.01 * m0);  // integration accuracy
  EXPECT_GT(m1, m0);
  EXPECT_GT(m3, m1);
}

TEST(Spares, MttfMatchesMonteCarloWithOneSpare) {
  // Cross-validate the Poisson-binomial + integration path against a
  // direct sampling estimate of the 2nd-failure time.
  const std::vector<double> alphas{1.0, 0.8, 0.6, 0.4};
  const double closed = spare_array_mttf(alphas, 1);
  // Sample: array dies at the 2nd failure.
  util::SplitMix64 rng(11);
  double sum = 0.0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    std::vector<double> times;
    for (double a : alphas) {
      const double u = rng.next_double();
      times.push_back((1.0 / a) *
                      std::pow(-std::log(1.0 - u), 1.0 / kJedecShape));
    }
    std::sort(times.begin(), times.end());
    sum += times[1];
  }
  const double sampled = sum / trials;
  EXPECT_NEAR(closed, sampled, 0.02 * closed);
}

TEST(Spares, RejectsInvalidArguments) {
  EXPECT_THROW((void)spare_array_reliability({1.0}, 1.0, -1), precondition_error);
  EXPECT_THROW((void)spare_array_reliability({}, 1.0, 0), precondition_error);
  EXPECT_THROW((void)spare_array_mttf({0.0}, 1), precondition_error);
}

// -------------------------------------------------------- spare remapper ----

/// The pool invariant the class checks internally, asserted from outside
/// after every scenario: occupancy states partition the pool.
void expect_pool_consistent(const SpareRemapper& remapper) {
  const auto& s = remapper.stats();
  EXPECT_EQ(s.spares_in_service + s.spares_free + s.spares_dead,
            remapper.spare_count());
  EXPECT_EQ(s.spares_free, remapper.spares_free());
}

TEST(SpareRemapper, AssignsLowestFreeSpareFirst) {
  SpareRemapper remapper(4, 3, 2);
  const auto first = remapper.fault_primary(1, 2);
  EXPECT_TRUE(first.remapped);
  EXPECT_EQ(first.spare, 0);
  const auto second = remapper.fault_primary(3, 0);
  EXPECT_TRUE(second.remapped);
  EXPECT_EQ(second.spare, 1);
  EXPECT_TRUE(remapper.is_dead(1, 2));
  EXPECT_EQ(remapper.spare_of(1, 2), 0);
  EXPECT_EQ(remapper.spare_of(3, 0), 1);
  EXPECT_EQ(remapper.spare_of(0, 0), -1);
  expect_pool_consistent(remapper);
}

TEST(SpareRemapper, ExhaustedPoolLeavesFaultsUnmapped) {
  SpareRemapper remapper(4, 3, 1);
  EXPECT_TRUE(remapper.fault_primary(0, 0).remapped);
  const auto overflow = remapper.fault_primary(1, 1);
  EXPECT_FALSE(overflow.remapped);
  EXPECT_EQ(overflow.spare, -1);
  EXPECT_TRUE(remapper.is_dead(1, 1));
  EXPECT_EQ(remapper.spare_of(1, 1), -1);
  const auto& s = remapper.stats();
  EXPECT_EQ(s.primary_faults, 2);
  EXPECT_EQ(s.remaps, 1);
  EXPECT_EQ(s.unmapped, 1);
  EXPECT_EQ(s.spares_free, 0);
  expect_pool_consistent(remapper);
}

TEST(SpareRemapper, RepeatedFaultOfDeadPrimaryIsANoOp) {
  SpareRemapper remapper(4, 3, 2);
  const auto first = remapper.fault_primary(2, 1);
  const auto again = remapper.fault_primary(2, 1);
  EXPECT_TRUE(again.remapped);
  EXPECT_EQ(again.spare, first.spare);  // current mapping, no new claim
  EXPECT_EQ(remapper.stats().primary_faults, 1);
  EXPECT_EQ(remapper.stats().remaps, 1);
  expect_pool_consistent(remapper);
}

TEST(SpareRemapper, FaultedSpareMigratesItsPrimary) {
  SpareRemapper remapper(4, 3, 2);
  ASSERT_EQ(remapper.fault_primary(0, 0).spare, 0);
  // Kill the in-service spare: the primary migrates to spare 1.
  const auto migrated = remapper.fault_spare(0);
  EXPECT_TRUE(migrated.remapped);
  EXPECT_EQ(migrated.spare, 1);
  EXPECT_EQ(remapper.spare_of(0, 0), 1);
  const auto& s = remapper.stats();
  EXPECT_EQ(s.spare_faults, 1);
  EXPECT_EQ(s.migrations, 1);
  EXPECT_EQ(s.spares_dead, 1);
  EXPECT_EQ(s.spares_in_service, 1);
  expect_pool_consistent(remapper);

  // Kill the replacement too: nowhere left to migrate.
  const auto stranded = remapper.fault_spare(1);
  EXPECT_FALSE(stranded.remapped);
  EXPECT_EQ(remapper.spare_of(0, 0), -1);
  EXPECT_TRUE(remapper.is_dead(0, 0));
  EXPECT_EQ(remapper.stats().unmapped, 1);
  expect_pool_consistent(remapper);
}

TEST(SpareRemapper, FaultOfAFreeOrDeadSpareShrinksOnlyThePool) {
  SpareRemapper remapper(4, 3, 2);
  (void)remapper.fault_spare(1);  // free spare dies: nothing to migrate
  EXPECT_EQ(remapper.stats().migrations, 0);
  EXPECT_EQ(remapper.stats().spares_dead, 1);
  (void)remapper.fault_spare(1);  // dead spare again: no-op
  EXPECT_EQ(remapper.stats().spare_faults, 1);
  // The surviving spare still serves a later fault.
  EXPECT_EQ(remapper.fault_primary(0, 1).spare, 0);
  expect_pool_consistent(remapper);
}

TEST(SpareRemapper, TransientRestoreReturnsTheSpareToThePool) {
  SpareRemapper remapper(4, 3, 1);
  ASSERT_TRUE(remapper.fault_primary(2, 2).remapped);
  remapper.restore_primary(2, 2);
  EXPECT_FALSE(remapper.is_dead(2, 2));
  EXPECT_EQ(remapper.spare_of(2, 2), -1);
  EXPECT_EQ(remapper.stats().restores, 1);
  EXPECT_EQ(remapper.spares_free(), 1);
  // The recycled spare is claimable again.
  EXPECT_EQ(remapper.fault_primary(3, 2).spare, 0);
  remapper.restore_primary(0, 0);  // restoring a live PE is a no-op
  EXPECT_EQ(remapper.stats().restores, 1);
  expect_pool_consistent(remapper);
}

TEST(SpareRemapper, RejectsOutOfRangeArguments) {
  SpareRemapper remapper(4, 3, 1);
  EXPECT_THROW((void)remapper.fault_primary(4, 0), precondition_error);
  EXPECT_THROW((void)remapper.fault_primary(0, 3), precondition_error);
  EXPECT_THROW((void)remapper.fault_primary(-1, 0), precondition_error);
  EXPECT_THROW((void)remapper.fault_spare(1), precondition_error);
  EXPECT_THROW(remapper.restore_primary(9, 9), precondition_error);
  EXPECT_THROW(SpareRemapper(0, 3, 1), precondition_error);
}

}  // namespace
}  // namespace rota::rel
