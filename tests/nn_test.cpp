#include <gtest/gtest.h>

#include <set>

#include "nn/layer.hpp"
#include "nn/network.hpp"
#include "nn/workloads.hpp"
#include "util/check.hpp"

namespace rota::nn {
namespace {

using util::precondition_error;

// ---------------------------------------------------------------- layer ----

TEST(Layer, ConvOutputDims) {
  // 224×224 input, 7×7 kernel, stride 2, pad 3 → 112×112 (ResNet conv1).
  const LayerSpec l = conv("conv1", 3, 64, 224, 7, 2, 3);
  EXPECT_EQ(l.out_h(), 112);
  EXPECT_EQ(l.out_w(), 112);
  EXPECT_EQ(l.macs(), 64LL * 3 * 112 * 112 * 7 * 7);
  EXPECT_EQ(l.weight_words(), 64LL * 3 * 7 * 7);
  EXPECT_EQ(l.input_words(), 3LL * 224 * 224);
  EXPECT_EQ(l.output_words(), 64LL * 112 * 112);
}

TEST(Layer, SamePaddingDefault) {
  const LayerSpec l = conv("c", 16, 16, 28, 3, 1);  // pad defaults to 1
  EXPECT_EQ(l.pad_h, 1);
  EXPECT_EQ(l.out_h(), 28);
}

TEST(Layer, ValidConvNoPad) {
  const LayerSpec l = conv("c", 3, 96, 224, 7, 2, 0);  // SqueezeNet conv1
  EXPECT_EQ(l.out_h(), 109);
}

TEST(Layer, AsymmetricKernelDims) {
  // 1×7 conv with 'same' width padding keeps the map square.
  const LayerSpec l = conv2d("a", 64, 64, 17, 17, 1, 7, 1, 0, 3);
  EXPECT_EQ(l.out_h(), 17);
  EXPECT_EQ(l.out_w(), 17);
  EXPECT_EQ(l.weight_words(), 64LL * 64 * 1 * 7);
}

TEST(Layer, DepthwiseSemantics) {
  const LayerSpec l = dwconv("dw", 32, 56, 3, 1);
  EXPECT_EQ(l.kind, LayerKind::kDepthwise);
  EXPECT_EQ(l.groups, 32);
  EXPECT_EQ(l.channels_per_group(), 1);
  EXPECT_EQ(l.macs(), 32LL * 56 * 56 * 9);
  EXPECT_EQ(l.weight_words(), 32LL * 9);
}

TEST(Layer, GroupConvSemantics) {
  const LayerSpec l = group_conv("g", 32, 64, 28, 3, 1, 4);
  EXPECT_EQ(l.kind, LayerKind::kGroupConv);
  EXPECT_EQ(l.channels_per_group(), 8);
  EXPECT_EQ(l.macs(), 64LL * 8 * 28 * 28 * 9);
}

TEST(Layer, GemmMapsToUnitKernelNest) {
  const LayerSpec l = gemm("g", 197, 768, 3072);
  EXPECT_EQ(l.kind, LayerKind::kGemm);
  EXPECT_EQ(l.out_h(), 197);  // M → P
  EXPECT_EQ(l.out_w(), 1);
  EXPECT_EQ(l.out_channels, 768);   // N → K
  EXPECT_EQ(l.in_channels, 3072);   // reduction → C
  EXPECT_EQ(l.macs(), 197LL * 768 * 3072);
}

TEST(Layer, BatchedGemmScalesMacs) {
  const LayerSpec l = gemm("attn", 197, 197, 64, 12);
  EXPECT_EQ(l.macs(), 12LL * 197 * 197 * 64);
}

LayerSpec base_valid() { return conv("ok", 8, 16, 28, 3, 1); }

TEST(Layer, ValidationRejectsInconsistentSpecs) {
  {
    LayerSpec s = base_valid();
    s.out_channels = 0;
    EXPECT_THROW(s.validate(), precondition_error);
  }
  {
    LayerSpec s = base_valid();
    s.stride_h = 0;
    EXPECT_THROW(s.validate(), precondition_error);
  }
  {
    LayerSpec s = base_valid();
    s.groups = 3;  // does not divide 8 input channels
    EXPECT_THROW(s.validate(), precondition_error);
  }
  {
    LayerSpec s = base_valid();
    s.kernel_h = 64;  // larger than padded input
    EXPECT_THROW(s.validate(), precondition_error);
  }
  {
    LayerSpec s = base_valid();
    s.name.clear();
    EXPECT_THROW(s.validate(), precondition_error);
  }
  {
    LayerSpec s = base_valid();
    s.pad_h = -1;
    EXPECT_THROW(s.validate(), precondition_error);
  }
  {
    LayerSpec s = base_valid();
    s.kind = LayerKind::kDepthwise;  // groups == 1 but depthwise claimed
    EXPECT_THROW(s.validate(), precondition_error);
  }
}

TEST(Layer, ShapeKeyIgnoresName) {
  LayerSpec a = conv("first", 8, 16, 28, 3, 1);
  LayerSpec b = conv("second", 8, 16, 28, 3, 1);
  EXPECT_TRUE(a.same_shape(b));
  EXPECT_EQ(a.shape_key(), b.shape_key());
  b.stride_h = 2;
  b.stride_w = 2;
  EXPECT_FALSE(a.same_shape(b));
  EXPECT_NE(a.shape_key(), b.shape_key());
}

// -------------------------------------------------------------- network ----

TEST(Network, RejectsDuplicateLayerNames) {
  Network net("Test", "T", Domain::kLightweight);
  net.add(conv("l1", 3, 8, 28, 3, 1));
  EXPECT_THROW(net.add(conv("l1", 8, 8, 28, 3, 1)), precondition_error);
}

TEST(Network, LayerLookup) {
  Network net("Test", "T", Domain::kLightweight);
  net.add(conv("l1", 3, 8, 28, 3, 1));
  EXPECT_EQ(net.layer("l1").out_channels, 8);
  EXPECT_THROW((void)net.layer("nope"), precondition_error);
}

TEST(Network, TotalMacsIsLayerSum) {
  Network net("Test", "T", Domain::kLightweight);
  net.add(conv("l1", 3, 8, 28, 3, 1));
  net.add(gemm("l2", 1, 10, 8));
  EXPECT_EQ(net.total_macs(), net.layer("l1").macs() + net.layer("l2").macs());
}

// ---------------------------------------------------------- workload zoo ----

struct ZooExpectation {
  const char* abbr;
  double min_gmacs;  // plausibility window around published numbers
  double max_gmacs;
  std::size_t min_layers;
};

class WorkloadZoo : public ::testing::TestWithParam<ZooExpectation> {};

TEST_P(WorkloadZoo, BuildsValidatedAndPlausible) {
  const auto& expect = GetParam();
  const Network net = workload_by_abbr(expect.abbr);
  EXPECT_GE(net.layer_count(), expect.min_layers);
  const double gmacs = static_cast<double>(net.total_macs()) / 1e9;
  EXPECT_GE(gmacs, expect.min_gmacs) << net.name();
  EXPECT_LE(gmacs, expect.max_gmacs) << net.name();
  // Every layer validates and has unique names (enforced by add()).
  std::set<std::string> names;
  for (const auto& l : net.layers()) {
    EXPECT_NO_THROW(l.validate());
    names.insert(l.name);
  }
  EXPECT_EQ(names.size(), net.layer_count());
}

// Published MAC counts (≈ FLOPs/2): ResNet-50 4.1, Inception-v4 ~12,
// YOLOv3@416 ~32.8, SqueezeNet ~0.8, MobileNetV3-L ~0.22, EffNet-B0 ~0.39,
// ViT-B/16 ~17.6 (incl. attention), MobileViT-S ~1.0, Llama-2-7B@512 ~3400.
// Windows are deliberately wide: this model omits pools/activations.
INSTANTIATE_TEST_SUITE_P(
    TableII, WorkloadZoo,
    ::testing::Values(ZooExpectation{"Res", 3.0, 5.5, 50},
                      ZooExpectation{"Inc", 6.0, 18.0, 60},
                      ZooExpectation{"YL", 24.0, 42.0, 70},
                      ZooExpectation{"Sqz", 0.5, 1.2, 25},
                      ZooExpectation{"Mb", 0.12, 0.40, 45},
                      ZooExpectation{"Eff", 0.25, 0.60, 60},
                      ZooExpectation{"VT", 8.0, 25.0, 70},
                      ZooExpectation{"MVT", 0.5, 3.0, 60},
                      ZooExpectation{"LM", 1500.0, 6000.0, 200}),
    [](const ::testing::TestParamInfo<ZooExpectation>& param_info) {
      return std::string(param_info.param.abbr);
    });

TEST(WorkloadRegistry, HasNineNetworksMatchingTableII) {
  const auto nets = all_workloads();
  ASSERT_EQ(nets.size(), 9u);
  const std::vector<std::string> abbrs{"Res", "Inc", "YL", "Sqz", "Mb",
                                       "Eff", "VT",  "MVT", "LM"};
  for (std::size_t i = 0; i < abbrs.size(); ++i)
    EXPECT_EQ(nets[i].abbr(), abbrs[i]);
}

TEST(WorkloadRegistry, UnknownAbbreviationThrows) {
  EXPECT_THROW(workload_by_abbr("nope"), precondition_error);
}

TEST(WorkloadRegistry, ExtendedZooAddsThreeNetworks) {
  const auto nets = extended_workloads();
  ASSERT_EQ(nets.size(), 12u);
  EXPECT_EQ(nets[9].abbr(), "AN");
  EXPECT_EQ(nets[10].abbr(), "VGG");
  EXPECT_EQ(nets[11].abbr(), "BRT");
  // Table II membership is unchanged.
  EXPECT_EQ(all_workloads().size(), 9u);
}

TEST(WorkloadExtra, AlexNetPlausible) {
  const Network an = make_alexnet();
  const double gmacs = static_cast<double>(an.total_macs()) / 1e9;
  // Published: ~0.72 GMACs (grouped single-tower variant ~0.66).
  EXPECT_GT(gmacs, 0.4);
  EXPECT_LT(gmacs, 1.1);
  EXPECT_EQ(an.layer("conv2").groups, 2);
}

TEST(WorkloadExtra, Vgg16Plausible) {
  const Network vgg = make_vgg16();
  const double gmacs = static_cast<double>(vgg.total_macs()) / 1e9;
  // Published: ~15.5 GMACs.
  EXPECT_GT(gmacs, 13.0);
  EXPECT_LT(gmacs, 18.0);
  EXPECT_EQ(vgg.layer_count(), 16u);
}

TEST(WorkloadExtra, BertBasePlausible) {
  const Network bert = make_bert_base();
  const double gmacs = static_cast<double>(bert.total_macs()) / 1e9;
  // ~86M encoder matmul params × 128 tokens ≈ 11 GMACs (+ attention).
  EXPECT_GT(gmacs, 8.0);
  EXPECT_LT(gmacs, 14.0);
}

TEST(WorkloadExtra, ExtendedZooSchedulesAndLevels) {
  for (const char* abbr : {"AN", "VGG", "BRT"}) {
    const Network net = workload_by_abbr(abbr);
    for (const auto& l : net.layers()) EXPECT_NO_THROW(l.validate());
  }
}

TEST(WorkloadRegistry, DomainsMatchTableII) {
  EXPECT_EQ(workload_by_abbr("Res").domain(), Domain::kImageClassification);
  EXPECT_EQ(workload_by_abbr("YL").domain(), Domain::kObjectDetection);
  EXPECT_EQ(workload_by_abbr("Sqz").domain(), Domain::kLightweight);
  EXPECT_EQ(workload_by_abbr("LM").domain(), Domain::kTransformer);
}

TEST(WorkloadZoo, RepeatedBlocksShareShapes) {
  // Llama's 32 identical decoder layers must deduplicate heavily.
  const Network lm = make_llama2_7b();
  EXPECT_LE(lm.unique_shape_count(), 10u);
  EXPECT_GE(lm.layer_count(), 280u);
}

TEST(WorkloadZoo, InceptionHasAsymmetricKernels) {
  const Network inc = make_inception_v4();
  bool has_1x7 = false;
  bool has_7x1 = false;
  for (const auto& l : inc.layers()) {
    if (l.kernel_h == 1 && l.kernel_w == 7) has_1x7 = true;
    if (l.kernel_h == 7 && l.kernel_w == 1) has_7x1 = true;
  }
  EXPECT_TRUE(has_1x7);
  EXPECT_TRUE(has_7x1);
}

TEST(WorkloadZoo, LightweightNetworksUseDepthwise) {
  for (const char* abbr : {"Mb", "Eff", "MVT"}) {
    const Network net = workload_by_abbr(abbr);
    bool has_dw = false;
    for (const auto& l : net.layers())
      if (l.kind == LayerKind::kDepthwise) has_dw = true;
    EXPECT_TRUE(has_dw) << abbr;
  }
}

TEST(WorkloadZoo, TransformersUseBatchedGemms) {
  for (const char* abbr : {"VT", "MVT", "LM"}) {
    const Network net = workload_by_abbr(abbr);
    bool has_batched = false;
    for (const auto& l : net.layers())
      if (l.kind == LayerKind::kGemm && l.batch > 1) has_batched = true;
    EXPECT_TRUE(has_batched) << abbr;
  }
}

}  // namespace
}  // namespace rota::nn
