#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "arch/config.hpp"
#include "nn/workloads.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "sched/mapper.hpp"
#include "svc/cache.hpp"
#include "svc/engine.hpp"
#include "svc/jsonv.hpp"
#include "svc/request.hpp"
#include "util/result.hpp"

namespace rota::svc {
namespace {

using util::ErrorCode;

/// Unique scratch directory, removed on destruction.
struct TempDir {
  std::filesystem::path path;

  TempDir() {
    static std::atomic<int> counter{0};
    path = std::filesystem::temp_directory_path() /
           ("rota_svc_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter.fetch_add(1)));
    std::filesystem::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

sched::LayerSchedule sample_schedule(std::int64_t tiles) {
  sched::LayerSchedule s;
  s.layer_name = "conv1";  // must NOT survive caching
  s.shape_key = "k" + std::to_string(tiles);
  s.space = {4, 3};
  s.tiles = tiles;
  s.output_tiles = tiles * 2;
  s.allocations_per_tile = 2;
  s.reduction_steps = 3;
  s.scatter_words = 128;
  s.compute_macs_per_pe = 99;
  s.gather_words = 17;
  s.macs = 123456789;
  s.accesses.macs = 1;
  s.accesses.lb_accesses = 2;
  s.accesses.inter_pe_hops = 3;
  s.accesses.glb_accesses = 4;
  s.accesses.dram_accesses = 5;
  // Values with no short decimal representation: round-tripping them
  // exactly requires the hexfloat encoding.
  s.energy = 0.1 + 0.2;
  s.cycles = 1.0e17 / 3.0;
  return s;
}

ScheduleCacheKey key_of_shape(std::int64_t out_channels,
                              std::int64_t width = 14,
                              std::int64_t height = 12,
                              int mapper_version = sched::kMapperVersion) {
  arch::AcceleratorConfig accel = arch::rota_like();
  accel.array_width = width;
  accel.array_height = height;
  sched::LayerShapeKey shape;
  shape.kind = 1;
  shape.batch = 1;
  shape.out_channels = out_channels;
  shape.in_channels = 3;
  shape.in_h = 32;
  shape.in_w = 32;
  shape.kernel_h = 3;
  shape.kernel_w = 3;
  shape.stride_h = 1;
  shape.stride_w = 1;
  shape.groups = 1;
  return ScheduleCacheKey::of(accel, shape, sched::MapperOptions{},
                              sched::ObjectiveSpec{}, "live", mapper_version);
}

/// N distinct keys that all land in the same shard, so LRU ordering is
/// observable (kShards = 8; shard selection is hash % 8).
std::vector<ScheduleCacheKey> same_shard_keys(std::size_t n) {
  std::vector<ScheduleCacheKey> keys;
  const std::uint64_t want = key_of_shape(1).hash % 8;
  for (std::int64_t c = 1; keys.size() < n; ++c) {
    ScheduleCacheKey key = key_of_shape(c);
    if (key.hash % 8 == want) keys.push_back(std::move(key));
  }
  return keys;
}

// ------------------------------------------------------------- JSON reader

TEST(SvcJson, ParsesTheProtocolSubset) {
  auto doc = JsonValue::parse(
      R"({"schema_version":2,"id":"a\n\"b","n":-3.5,"t":true,)"
      R"("u":null,"arr":[1,2,3]})");
  ASSERT_TRUE(doc.ok());
  const JsonValue& v = doc.value();
  EXPECT_EQ(v.find("schema_version")->as_int64().value(), 2);
  EXPECT_EQ(v.find("id")->str(), "a\n\"b");
  EXPECT_DOUBLE_EQ(v.find("n")->number(), -3.5);
  EXPECT_TRUE(v.find("t")->boolean());
  EXPECT_TRUE(v.find("u")->is_null());
  ASSERT_TRUE(v.find("arr")->is_array());
  EXPECT_EQ(v.find("arr")->array().size(), 3u);
  EXPECT_EQ(v.find("absent"), nullptr);
}

TEST(SvcJson, RejectsGarbageWithoutThrowing) {
  EXPECT_FALSE(JsonValue::parse("").ok());
  EXPECT_FALSE(JsonValue::parse("{").ok());
  EXPECT_FALSE(JsonValue::parse("{\"a\":1} trailing").ok());
  EXPECT_FALSE(JsonValue::parse("{'a':1}").ok());
  EXPECT_FALSE(JsonValue::parse("{\"a\":01}").ok());
  // Nesting past max_depth is refused, not stack-overflowed.
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(JsonValue::parse(deep, 32).ok());
}

// -------------------------------------------------------- request parsing

TEST(SvcRequest, ParsesFullRequest) {
  auto parsed = parse_request(
      R"({"schema_version":2,"id":"r1","op":"wear","workload":"Sqz",)"
      R"("array":"8x6","iters":25,"seed":7,"policy":"RWL",)"
      R"("metric":"cycles","deadline_ms":5000})",
      1 << 20);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  const Request& req = parsed.value();
  EXPECT_EQ(req.id, "r1");
  EXPECT_EQ(req.op, RequestOp::kWear);
  EXPECT_EQ(req.workload, "Sqz");
  EXPECT_EQ(req.array_width, 8);
  EXPECT_EQ(req.array_height, 6);
  EXPECT_EQ(req.iterations, 25);
  EXPECT_EQ(req.seed, 7u);
  EXPECT_EQ(req.policy, wear::PolicyKind::kRwl);
  EXPECT_EQ(req.metric, wear::WearMetric::kActiveCycles);
  EXPECT_EQ(req.deadline_ms, 5000);
}

TEST(SvcRequest, StructuredRejections) {
  const auto code_of = [](std::string_view line) {
    auto parsed = parse_request(line, 1 << 20);
    EXPECT_FALSE(parsed.ok()) << line;
    return parsed.ok() ? ErrorCode::kInternal : parsed.error().code;
  };
  // Version gate: missing, wrong, and non-integer versions all refuse.
  EXPECT_EQ(code_of(R"({"op":"ping"})"), ErrorCode::kInvalidArgument);
  EXPECT_EQ(code_of(R"({"schema_version":1,"op":"ping"})"),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(code_of(R"({"schema_version":"2","op":"ping"})"),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(code_of("not json at all"), ErrorCode::kInvalidArgument);
  EXPECT_EQ(code_of(R"([1,2,3])"), ErrorCode::kInvalidArgument);
  EXPECT_EQ(code_of(R"({"schema_version":2,"op":"explode"})"),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(code_of(R"({"schema_version":2,"op":"schedule"})"),
            ErrorCode::kInvalidArgument);  // needs workload
  EXPECT_EQ(code_of(R"({"schema_version":2,"op":"wear","workload":"Sqz",)"
                    R"("array":"0x9"})"),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(code_of(R"({"schema_version":2,"op":"wear","workload":"Sqz",)"
                    R"("iters":0})"),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(code_of(R"({"schema_version":2,"op":"wear","workload":"Sqz",)"
                    R"("deadline_ms":-5})"),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(code_of(R"({"schema_version":2,"op":"wear","workload":"Sqz",)"
                    R"("policy":"Nope"})"),
            ErrorCode::kInvalidArgument);

  // The byte budget maps to resource_exhausted.
  std::string oversized = R"({"schema_version":2,"op":"ping","pad":")" +
                          std::string(600, 'x') + "\"}";
  auto parsed = parse_request(oversized, 256);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error().code, ErrorCode::kResourceExhausted);
}

TEST(SvcRequest, SalvagesIdFromBrokenRequests) {
  // Valid JSON but invalid request: the id is still recoverable.
  EXPECT_EQ(salvage_request_id(R"({"id":"r9","op":"explode"})"), "r9");
  EXPECT_EQ(salvage_request_id("{{{"), "");
  EXPECT_EQ(salvage_request_id(R"({"id":7})"), "");
}

TEST(SvcRequest, ResponseJsonRoundTrips) {
  Response ok;
  ok.id = "a";
  ok.ok = true;
  ok.payload_json = "{\"pong\":true}";
  ok.wall_seconds = 0.5;
  const std::string line = to_json(ok);
  auto doc = JsonValue::parse(line);
  ASSERT_TRUE(doc.ok()) << line;
  EXPECT_EQ(doc.value().find("schema_version")->as_int64().value(),
            obs::kSchemaVersion);
  EXPECT_TRUE(doc.value().find("ok")->boolean());
  EXPECT_TRUE(doc.value().find("result")->find("pong")->boolean());

  Response err;
  err.error = {ErrorCode::kDeadlineExceeded, "too \"slow\""};
  auto edoc = JsonValue::parse(to_json(err));
  ASSERT_TRUE(edoc.ok());
  EXPECT_TRUE(edoc.value().find("id")->is_null());
  EXPECT_FALSE(edoc.value().find("ok")->boolean());
  EXPECT_EQ(edoc.value().find("error")->find("code")->str(),
            "deadline_exceeded");
  EXPECT_EQ(edoc.value().find("error")->find("message")->str(),
            "too \"slow\"");
}

// ------------------------------------------------------------- cache keys

TEST(ScheduleCacheKeyTest, SensitiveToEveryKeyedInput) {
  const ScheduleCacheKey base = key_of_shape(64);
  EXPECT_EQ(base.fingerprint, key_of_shape(64).fingerprint);
  EXPECT_EQ(base.hash, key_of_shape(64).hash);

  // Layer shape.
  EXPECT_NE(base.fingerprint, key_of_shape(65).fingerprint);
  // Array geometry — both dimensions independently.
  EXPECT_NE(base.fingerprint, key_of_shape(64, 16, 12).fingerprint);
  EXPECT_NE(base.fingerprint, key_of_shape(64, 14, 16).fingerprint);
  // 14x12 and 12x14 must not alias.
  EXPECT_NE(key_of_shape(64, 14, 12).fingerprint,
            key_of_shape(64, 12, 14).fingerprint);
  // Mapper version: a new search algorithm invalidates old entries.
  EXPECT_NE(base.fingerprint,
            key_of_shape(64, 14, 12, sched::kMapperVersion + 1).fingerprint);

  // Mapper options steer the search too.
  arch::AcceleratorConfig accel = arch::rota_like();
  sched::LayerShapeKey shape;
  shape.out_channels = 64;
  sched::MapperOptions exact;
  sched::MapperOptions generalized;
  generalized.exact_factors_only = false;
  EXPECT_NE(ScheduleCacheKey::of(accel, shape, exact).fingerprint,
            ScheduleCacheKey::of(accel, shape, generalized).fingerprint);
  // Thread count is NOT part of the key (results are lane-invariant).
  sched::MapperOptions threaded;
  threaded.threads = 8;
  EXPECT_EQ(ScheduleCacheKey::of(accel, shape, exact).fingerprint,
            ScheduleCacheKey::of(accel, shape, threaded).fingerprint);
}

TEST(ScheduleCacheKeyTest, ObjectiveAndArrayStateNeverAlias) {
  arch::AcceleratorConfig accel = arch::rota_like();
  sched::LayerShapeKey shape;
  shape.out_channels = 64;
  const sched::MapperOptions options;
  const ScheduleCacheKey base = ScheduleCacheKey::of(accel, shape, options);
  // The defaults ARE the energy objective on an intact array: existing
  // call sites and existing disk caches stay valid.
  EXPECT_EQ(base.fingerprint,
            ScheduleCacheKey::of(accel, shape, options,
                                 sched::ObjectiveSpec::energy(), "live")
                .fingerprint);
  // A different objective changes the key…
  const ScheduleCacheKey lifetime = ScheduleCacheKey::of(
      accel, shape, options, sched::ObjectiveSpec::lifetime());
  EXPECT_NE(base.fingerprint, lifetime.fingerprint);
  EXPECT_NE(base.hash, lifetime.hash);
  // …as do weighted scalarization weights, not just the kind…
  EXPECT_NE(ScheduleCacheKey::of(accel, shape, options,
                                 sched::ObjectiveSpec::weighted(1, 1, 0))
                .fingerprint,
            ScheduleCacheKey::of(accel, shape, options,
                                 sched::ObjectiveSpec::weighted(1, 1, 1))
                .fingerprint);
  // …and so does a degraded-array digest.
  const ScheduleCacheKey degraded =
      ScheduleCacheKey::of(accel, shape, options, sched::ObjectiveSpec{},
                           "fnv1a:00000000deadbeef");
  EXPECT_NE(base.fingerprint, degraded.fingerprint);
  EXPECT_NE(base.hash, degraded.hash);
}

TEST(ScheduleCacheKeyTest, StableHashIsFixedForever) {
  // The disk file name derives from this hash; changing the function
  // orphans every cache directory in existence.
  EXPECT_EQ(stable_fingerprint_hash(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(stable_fingerprint_hash("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(stable_fingerprint_hash("rota"), 0xa3aa001ff10cacddULL);
}

// -------------------------------------------------------- in-memory tier

TEST(ScheduleCacheTest, HitMissAndEvictionFollowLruOrder) {
  // capacity 16 over 8 shards = 2 entries per shard; use keys pinned to
  // one shard so the eviction order is deterministic.
  ScheduleCache cache({.capacity = 16, .disk_dir = ""});
  const auto keys = same_shard_keys(3);

  EXPECT_FALSE(cache.lookup(keys[0]).has_value());  // cold miss
  cache.insert(keys[0], sample_schedule(10));
  cache.insert(keys[1], sample_schedule(20));
  ASSERT_TRUE(cache.lookup(keys[0]).has_value());  // promotes 0 to MRU
  EXPECT_EQ(cache.lookup(keys[0])->tiles, 10);
  EXPECT_TRUE(cache.lookup(keys[0])->layer_name.empty());

  cache.insert(keys[2], sample_schedule(30));  // shard full: evicts LRU = 1
  EXPECT_TRUE(cache.lookup(keys[0]).has_value());
  EXPECT_FALSE(cache.lookup(keys[1]).has_value());
  EXPECT_TRUE(cache.lookup(keys[2]).has_value());

  const ScheduleCacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_EQ(stats.misses, 2);       // cold probe + evicted probe
  EXPECT_EQ(stats.hits_memory, 5);
  EXPECT_EQ(stats.hits_disk, 0);
  EXPECT_EQ(cache.size(), 2u);

  // Reinserting an existing key refreshes instead of duplicating.
  cache.insert(keys[0], sample_schedule(10));
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ScheduleCacheTest, CapacityFloorIsOneEntryPerShard) {
  ScheduleCache cache({.capacity = 0, .disk_dir = ""});
  EXPECT_EQ(cache.options().capacity, 8u);  // clamped to kShards
  const auto keys = same_shard_keys(2);
  cache.insert(keys[0], sample_schedule(1));
  cache.insert(keys[1], sample_schedule(2));  // same shard: evicts keys[0]
  EXPECT_FALSE(cache.lookup(keys[0]).has_value());
  EXPECT_EQ(cache.lookup(keys[1])->tiles, 2);
}

// ------------------------------------------------------------- disk tier

TEST(ScheduleCacheTest, DiskRoundTripIsBitExact) {
  const TempDir dir;
  const ScheduleCacheKey key = key_of_shape(64);
  const sched::LayerSchedule original = sample_schedule(12);
  {
    ScheduleCache writer({.capacity = 64, .disk_dir = dir.path.string()});
    writer.insert(key, original);
    EXPECT_TRUE(std::filesystem::exists(writer.disk_path(key)));
  }
  // A fresh process (fresh cache object) finds the entry on disk.
  ScheduleCache reader({.capacity = 64, .disk_dir = dir.path.string()});
  const auto loaded = reader.lookup(key);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(reader.stats().hits_disk, 1);
  EXPECT_TRUE(loaded->layer_name.empty());
  EXPECT_EQ(loaded->shape_key, original.shape_key);
  EXPECT_EQ(loaded->space.x, original.space.x);
  EXPECT_EQ(loaded->space.y, original.space.y);
  EXPECT_EQ(loaded->tiles, original.tiles);
  EXPECT_EQ(loaded->output_tiles, original.output_tiles);
  EXPECT_EQ(loaded->allocations_per_tile, original.allocations_per_tile);
  EXPECT_EQ(loaded->reduction_steps, original.reduction_steps);
  EXPECT_EQ(loaded->scatter_words, original.scatter_words);
  EXPECT_EQ(loaded->compute_macs_per_pe, original.compute_macs_per_pe);
  EXPECT_EQ(loaded->gather_words, original.gather_words);
  EXPECT_EQ(loaded->macs, original.macs);
  EXPECT_EQ(loaded->accesses.dram_accesses, original.accesses.dram_accesses);
  // Bit-exact doubles (hexfloat encoding), not approximately equal.
  EXPECT_EQ(loaded->energy, original.energy);
  EXPECT_EQ(loaded->cycles, original.cycles);

  // A disk hit is promoted: the second probe is a memory hit.
  (void)reader.lookup(key);
  EXPECT_EQ(reader.stats().hits_memory, 1);
  EXPECT_EQ(reader.stats().hits_disk, 1);
}

TEST(ScheduleCacheTest, CorruptAndTruncatedFilesDegradeToMisses) {
  const TempDir dir;
  const ScheduleCacheKey key = key_of_shape(64);
  ScheduleCache cache({.capacity = 64, .disk_dir = dir.path.string()});
  cache.insert(key, sample_schedule(12));
  const std::string path = cache.disk_path(key);
  std::string good;
  {
    std::ifstream in(path);
    std::ostringstream buf;
    buf << in.rdbuf();
    good = buf.str();
  }

  const auto overwrite = [&](const std::string& content) {
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out << content;
  };
  const auto probe_fresh = [&] {
    // Fresh cache each time so the memory tier cannot mask the disk read.
    ScheduleCache fresh({.capacity = 64, .disk_dir = dir.path.string()});
    const auto got = fresh.lookup(key);
    return std::make_pair(got.has_value(), fresh.stats());
  };

  overwrite("complete garbage\n");
  auto [hit1, stats1] = probe_fresh();
  EXPECT_FALSE(hit1);
  EXPECT_EQ(stats1.disk_corrupt, 1);
  EXPECT_EQ(stats1.misses, 1);

  overwrite(good.substr(0, good.size() / 2));  // truncated mid-entry
  auto [hit2, stats2] = probe_fresh();
  EXPECT_FALSE(hit2);
  EXPECT_EQ(stats2.disk_corrupt, 1);

  // Entry written under a *different* key (hash collision / stale file):
  // the embedded fingerprint mismatches and the load degrades to a miss.
  overwrite(encode_cache_entry(key_of_shape(65), sample_schedule(12)));
  auto [hit3, stats3] = probe_fresh();
  EXPECT_FALSE(hit3);
  EXPECT_EQ(stats3.disk_corrupt, 1);

  // Recovery: recompute-and-insert rewrites the file and serves again.
  cache.insert(key, sample_schedule(12));
  ScheduleCache healed({.capacity = 64, .disk_dir = dir.path.string()});
  EXPECT_TRUE(healed.lookup(key).has_value());
}

TEST(ScheduleCacheTest, UnwritableDiskDirDegradesToMemoryOnly) {
  // A file where the directory should be: create_directories fails, the
  // write is counted, and the memory tier still works.
  const TempDir dir;
  const std::string blocked = (dir.path / "not_a_dir").string();
  { std::ofstream out(blocked); out << "x"; }
  ScheduleCache cache({.capacity = 64, .disk_dir = blocked});
  const ScheduleCacheKey key = key_of_shape(64);
  cache.insert(key, sample_schedule(12));
  EXPECT_EQ(cache.stats().disk_write_failures, 1);
  EXPECT_TRUE(cache.lookup(key).has_value());
}

// ------------------------------------------------- cached network path

TEST(CachedScheduleNetwork, BitIdenticalToMapperAndSkipsSearchWhenWarm) {
  const nn::Network net = nn::make_squeezenet();
  arch::AcceleratorConfig accel = arch::rota_like();
  sched::Mapper mapper(accel, sched::ObjectiveSpec{});
  const sched::NetworkSchedule direct = mapper.schedule_network(net);

  ScheduleCache cache({.capacity = 4096, .disk_dir = ""});
  sched::Mapper cold_mapper(accel, sched::ObjectiveSpec{});
  const sched::NetworkSchedule first =
      cached_schedule_network(cold_mapper, net, cache);
  const auto after_first = cache.stats();
  EXPECT_GT(after_first.misses, 0);

  // Second pass: every layer must come from the cache, no mapper search.
  sched::Mapper unused_mapper(accel, sched::ObjectiveSpec{});
  const sched::NetworkSchedule second =
      cached_schedule_network(unused_mapper, net, cache);
  const auto after_second = cache.stats();
  EXPECT_EQ(after_second.misses, after_first.misses);
  EXPECT_EQ(after_second.hits_memory - after_first.hits_memory,
            static_cast<std::int64_t>(net.layer_count()));

  ASSERT_EQ(direct.layers.size(), first.layers.size());
  ASSERT_EQ(direct.layers.size(), second.layers.size());
  for (std::size_t i = 0; i < direct.layers.size(); ++i) {
    const ScheduleCacheKey probe = key_of_shape(1);  // any key: encoding only
    // encode_cache_entry covers every cached field with hexfloat doubles,
    // so string equality == bit-identical schedules.
    EXPECT_EQ(encode_cache_entry(probe, direct.layers[i]),
              encode_cache_entry(probe, first.layers[i]))
        << "layer " << i << " diverged on the cold pass";
    EXPECT_EQ(encode_cache_entry(probe, direct.layers[i]),
              encode_cache_entry(probe, second.layers[i]))
        << "layer " << i << " diverged on the warm pass";
    EXPECT_EQ(direct.layers[i].layer_name, second.layers[i].layer_name);
  }
  EXPECT_EQ(direct.total_tiles(), second.total_tiles());
  EXPECT_EQ(direct.total_energy(), second.total_energy());
  EXPECT_EQ(direct.total_cycles(), second.total_cycles());
}

// ---------------------------------------------------------------- engine

Request quick_request(std::string id, RequestOp op) {
  Request req;
  req.id = std::move(id);
  req.op = op;
  req.workload = "Sqz";
  req.array_width = 8;
  req.array_height = 8;
  req.iterations = 20;
  return req;
}

TEST(EngineTest, RepeatedBatchesAreCachedAndBitIdentical) {
  EngineOptions options;
  options.threads = 4;
  Engine engine(options);

  const auto run_batch = [&] {
    std::vector<std::future<Response>> futures;
    for (int i = 0; i < 3; ++i) {
      futures.push_back(engine.submit(
          quick_request("b" + std::to_string(i), RequestOp::kLifetime)));
    }
    std::vector<Response> replies;
    for (auto& f : futures) replies.push_back(f.get());
    return replies;
  };

  const auto pass1 = run_batch();
  const auto warm = engine.cache_stats();
  EXPECT_GT(warm.misses, 0);
  const auto pass2 = run_batch();
  const auto after = engine.cache_stats();
  EXPECT_EQ(after.misses, warm.misses) << "second pass must not re-search";
  EXPECT_GT(after.hits_memory, warm.hits_memory);

  ASSERT_EQ(pass1.size(), 3u);
  for (const Response& r : pass1) {
    EXPECT_TRUE(r.ok) << r.error.message;
    // Identical requests (bar id) are bit-identical across lanes...
    EXPECT_EQ(r.payload_json, pass1.front().payload_json);
  }
  // ...and across cold/warm passes.
  for (std::size_t i = 0; i < pass1.size(); ++i) {
    EXPECT_EQ(pass1[i].payload_json, pass2[i].payload_json);
    // Built with append rather than "b" + to_string(i): GCC 12 at -O3
    // raises a spurious -Wrestrict on operator+(const char*, string&&).
    std::string expected_id = "b";
    expected_id += std::to_string(i);
    EXPECT_EQ(pass2[i].id, expected_id);
  }
}

TEST(EngineTest, EngineMatchesSerialExperimentNumbers) {
  Engine engine(EngineOptions{});
  Request req = quick_request("x", RequestOp::kWear);
  req.policy = wear::PolicyKind::kRwlRo;
  const Response resp = engine.execute(req);
  ASSERT_TRUE(resp.ok) << resp.error.message;

  // Reproduce the serial CLI path by hand and compare the statistics.
  arch::AcceleratorConfig accel = arch::rota_like();
  accel.array_width = 8;
  accel.array_height = 8;
  sched::Mapper mapper(accel, sched::ObjectiveSpec{});
  const sched::NetworkSchedule ns =
      mapper.schedule_network(nn::make_squeezenet());
  auto policy = wear::make_policy(wear::PolicyKind::kRwlRo, 8, 8, req.seed);
  wear::WearSimulator sim(accel, {true, req.metric});
  sim.run_iterations(ns, *policy, req.iterations);
  const wear::UsageStats expect = sim.tracker().stats();

  auto doc = JsonValue::parse(resp.payload_json);
  ASSERT_TRUE(doc.ok()) << resp.payload_json;
  const JsonValue* stats = doc.value().find("stats");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->find("min")->as_int64().value(), expect.min);
  EXPECT_EQ(stats->find("max")->as_int64().value(), expect.max);
  EXPECT_EQ(stats->find("d_max")->as_int64().value(), expect.max_diff);
}

TEST(EngineTest, StructuredErrorsNeverUnwindTheEngine) {
  Engine engine(EngineOptions{});
  Request unknown = quick_request("u", RequestOp::kSchedule);
  unknown.workload = "Zzz";
  const Response bad = engine.execute(unknown);
  EXPECT_FALSE(bad.ok);
  EXPECT_EQ(bad.error.code, ErrorCode::kInvalidArgument);
  EXPECT_EQ(bad.id, "u");

  Request bad_geometry = quick_request("g", RequestOp::kSchedule);
  bad_geometry.array_width = -3;
  EXPECT_FALSE(engine.execute(bad_geometry).ok);

  // The engine still serves correctly after errors.
  EXPECT_TRUE(engine.execute(quick_request("p", RequestOp::kPing)).ok);
}

TEST(EngineTest, CancelledRequestsAnswerWithoutExecuting) {
  Engine engine(EngineOptions{});
  Request req = quick_request("c", RequestOp::kLifetime);
  req.cancel = std::make_shared<std::atomic<bool>>(true);  // pre-cancelled
  const Response resp = engine.submit(std::move(req)).get();
  EXPECT_FALSE(resp.ok);
  EXPECT_EQ(resp.error.code, ErrorCode::kCancelled);
  EXPECT_EQ(engine.cache_stats().misses, 0) << "must not have scheduled";
}

TEST(EngineTest, QueuedDeadlineExpiryIsStructured) {
  EngineOptions options;
  options.threads = 1;  // serial lanes: the heavy job blocks the queue
  Engine engine(options);
  // A cold YOLOv3 schedule takes far longer than 1 ms, so the second
  // request always expires while queued behind it.
  Request heavy = quick_request("h", RequestOp::kSchedule);
  heavy.workload = "YL";
  heavy.array_width = 14;
  heavy.array_height = 12;
  auto heavy_future = engine.submit(std::move(heavy));
  Request doomed = quick_request("d", RequestOp::kLifetime);
  doomed.deadline_ms = 1;
  const Response late = engine.submit(std::move(doomed)).get();
  EXPECT_FALSE(late.ok);
  EXPECT_EQ(late.error.code, ErrorCode::kDeadlineExceeded);
  EXPECT_TRUE(heavy_future.get().ok);
}

TEST(EngineTest, ShutdownDrainsThenRefuses) {
  Engine engine(EngineOptions{});
  auto accepted = engine.submit(quick_request("a", RequestOp::kPing));
  engine.shutdown();
  EXPECT_TRUE(accepted.get().ok) << "accepted work must be answered";
  const Response refused =
      engine.submit(quick_request("z", RequestOp::kPing)).get();
  EXPECT_FALSE(refused.ok);
  EXPECT_EQ(refused.error.code, ErrorCode::kUnavailable);
  engine.shutdown();  // idempotent
}

// ------------------------------------------------------------ serve loop

std::vector<JsonValue> serve_lines(Engine& engine, const std::string& input,
                                   int* exit_code = nullptr) {
  std::istringstream in(input);
  std::ostringstream out;
  const int code = engine.serve(in, out);
  if (exit_code != nullptr) *exit_code = code;
  std::vector<JsonValue> replies;
  std::istringstream lines(out.str());
  std::string line;
  while (std::getline(lines, line)) {
    auto doc = JsonValue::parse(line);
    EXPECT_TRUE(doc.ok()) << "reply is not valid JSON: " << line;
    if (doc.ok()) replies.push_back(std::move(doc).take());
  }
  return replies;
}

TEST(ServeTest, AnswersInInputOrderWithStructuredErrors) {
  EngineOptions options;
  options.threads = 2;
  options.max_request_bytes = 512;
  Engine engine(options);
  std::string batch;
  batch += R"({"schema_version":2,"id":"r1","op":"ping"})" "\n";
  batch += "\n";  // blank lines are skipped, not answered
  batch += "this is not json\n";
  batch += R"({"schema_version":1,"id":"r3","op":"ping"})" "\n";
  batch += R"({"schema_version":2,"id":"r4","op":"ping","pad":")" +
           std::string(600, 'x') + "\"}\n";
  batch += R"({"schema_version":2,"id":"r5","op":"schedule",)"
           R"("workload":"Sqz","array":"8x8"})" "\n";
  batch += R"({"schema_version":2,"id":"r6","op":"schedule",)"
           R"("workload":"Zzz"})" "\n";

  int code = -1;
  const auto replies = serve_lines(engine, batch, &code);
  EXPECT_EQ(code, 0);
  ASSERT_EQ(replies.size(), 6u);

  const auto id_of = [&](std::size_t i) {
    const JsonValue* id = replies[i].find("id");
    return id->is_string() ? id->str() : std::string("<null>");
  };
  const auto code_of = [&](std::size_t i) {
    return replies[i].find("error")->find("code")->str();
  };
  EXPECT_EQ(id_of(0), "r1");
  EXPECT_TRUE(replies[0].find("ok")->boolean());
  EXPECT_EQ(id_of(1), "<null>");  // unparseable: no id to salvage
  EXPECT_EQ(code_of(1), "invalid_argument");
  EXPECT_EQ(id_of(2), "r3");  // wrong version, id still salvaged
  EXPECT_EQ(code_of(2), "invalid_argument");
  EXPECT_EQ(id_of(3), "r4");
  EXPECT_EQ(code_of(3), "resource_exhausted");
  EXPECT_EQ(id_of(4), "r5");
  EXPECT_TRUE(replies[4].find("ok")->boolean());
  EXPECT_GT(replies[4].find("result")->find("layers")->number(), 0.0);
  EXPECT_EQ(id_of(5), "r6");
  EXPECT_EQ(code_of(5), "invalid_argument");

  for (const JsonValue& reply : replies) {
    EXPECT_EQ(reply.find("schema_version")->as_int64().value(),
              obs::kSchemaVersion);
  }
}

TEST(ServeTest, ShutdownOpDrainsAndStopsTheLoop) {
  Engine engine(EngineOptions{});
  std::string batch;
  batch += R"({"schema_version":2,"id":"s1","op":"ping"})" "\n";
  batch += R"({"schema_version":2,"id":"s2","op":"shutdown"})" "\n";
  batch += R"({"schema_version":2,"id":"s3","op":"ping"})" "\n";  // unread

  const auto replies = serve_lines(engine, batch);
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_EQ(replies[0].find("id")->str(), "s1");
  EXPECT_EQ(replies[1].find("id")->str(), "s2");
  EXPECT_TRUE(replies[1].find("result")->find("stopping")->boolean());
  // The engine is drained: later submissions are refused.
  const Response refused =
      engine.submit(quick_request("z", RequestOp::kPing)).get();
  EXPECT_EQ(refused.error.code, ErrorCode::kUnavailable);
}

TEST(ServeTest, WarmCacheServesRepeatedWorkloadWithoutResearch) {
  Engine engine(EngineOptions{});
  const std::string line =
      R"({"schema_version":2,"id":"w","op":"schedule",)"
      R"("workload":"Sqz","array":"8x8"})" "\n";
  std::istringstream in(line + line + line);
  std::ostringstream out;
  EXPECT_EQ(engine.serve(in, out), 0);
  const auto stats = engine.cache_stats();
  // Exactly one cold pass: misses == unique shapes, hits cover the rest.
  EXPECT_GT(stats.hits_memory, 0);
  EXPECT_GE(stats.hits_memory, stats.misses);
}

// ------------------------------------------------- malformed corpus ----

// --------------------------------------------------------- live telemetry

/// The request-scoped telemetry writes to the global registry; tests that
/// enable it must restore the disabled default.
struct MetricsGuard {
  MetricsGuard() {
    obs::MetricsRegistry::global().reset();
    obs::MetricsRegistry::global().set_enabled(true);
  }
  ~MetricsGuard() {
    obs::MetricsRegistry::global().reset();
    obs::MetricsRegistry::global().set_enabled(false);
  }
};

TEST(EngineTest, ResponsesCarryEngineAssignedRequestSeq) {
  Engine engine(EngineOptions{});
  const Response first = engine.submit(quick_request("a", RequestOp::kPing)).get();
  const Response second =
      engine.submit(quick_request("b", RequestOp::kPing)).get();
  EXPECT_EQ(first.seq, 1u);
  EXPECT_EQ(second.seq, 2u);
}

TEST(EngineTest, StatsOpReturnsLiveSnapshotInBand) {
  MetricsGuard metrics;
  Engine engine(EngineOptions{});
  ASSERT_TRUE(engine.execute(quick_request("warm", RequestOp::kPing)).ok);

  const Response resp =
      engine.execute(quick_request("s1", RequestOp::kStats));
  ASSERT_TRUE(resp.ok) << resp.error.message;
  auto doc = JsonValue::parse(resp.payload_json);
  ASSERT_TRUE(doc.ok()) << resp.payload_json;
  EXPECT_EQ(doc.value().find("schema_version")->as_int64().value(),
            obs::kSchemaVersion);
  EXPECT_EQ(doc.value().find("kind")->str(),
            "metrics_snapshot");
  EXPECT_EQ(doc.value().find("seq")->as_int64().value(), 1);
  ASSERT_NE(doc.value().find("metrics"), nullptr);

  // The snapshot seq is per-engine and monotonic.
  const Response again =
      engine.execute(quick_request("s2", RequestOp::kStats));
  auto doc2 = JsonValue::parse(again.payload_json);
  ASSERT_TRUE(doc2.ok());
  EXPECT_EQ(doc2.value().find("seq")->as_int64().value(), 2);
}

TEST(ServeTest, RequestPhasesLandInLatencyHistograms) {
  MetricsGuard metrics;
  EngineOptions options;
  options.threads = 2;
  Engine engine(options);
  std::string batch;
  for (int i = 0; i < 4; ++i)
    batch += R"({"schema_version":2,"id":"p)" + std::to_string(i) +
             R"(","op":"ping"})" "\n";
  const std::vector<JsonValue> replies = serve_lines(engine, batch);
  ASSERT_EQ(replies.size(), 4u);

  const obs::MetricsExport ex = obs::MetricsRegistry::global().export_all();
  for (const char* name :
       {"svc.queue_wait_ms", "svc.compute_ms", "svc.reply_ms"}) {
    const auto it = ex.histograms.find(name);
    ASSERT_NE(it, ex.histograms.end()) << name;
    EXPECT_GE(it->second.count, 4) << name;
    EXPECT_GE(it->second.p99, it->second.p50) << name;
  }
  // The depth/inflight gauges were exercised and settled back to idle.
  const auto depth = ex.gauges.find("svc.queue_depth");
  ASSERT_NE(depth, ex.gauges.end());
  EXPECT_DOUBLE_EQ(depth->second, 0.0);
  ASSERT_NE(ex.gauges.find("svc.inflight"), ex.gauges.end());
}

/// Every file in tests/corpus/jsonv is a hand-written malformed (or
/// pathological) payload: truncations, deep nesting, non-finite numbers,
/// raw control characters, stray bytes.  The parser must reject them with
/// a structured error — never crash, hang, or throw — and the request
/// layer must refuse all of them (none carries a valid schema_version).
TEST(JsonTest, MalformedCorpusIsRejectedWithoutCrashing) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(ROTA_TEST_CORPUS_DIR) / "jsonv";
  ASSERT_TRUE(fs::is_directory(dir)) << dir;

  int files = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    ++files;
    std::ifstream in(entry.path(), std::ios::binary);
    ASSERT_TRUE(in.is_open()) << entry.path();
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();

    const auto parsed = JsonValue::parse(text);
    // jsonv deliberately passes non-control bytes through without UTF-8
    // validation, so the invalid-UTF-8 sample parses at this level; every
    // other corpus entry must fail with a diagnostic.
    if (entry.path().filename() != "invalid_utf8.json") {
      EXPECT_FALSE(parsed.ok()) << entry.path();
      if (!parsed.ok()) {
        EXPECT_FALSE(parsed.error().message.empty()) << entry.path();
      }
    }

    const auto request = parse_request(text, 1 << 20);
    EXPECT_FALSE(request.ok()) << entry.path();
  }
  // Guard against the corpus silently disappearing from the tree.
  EXPECT_GE(files, 20) << "corpus directory lost files: " << dir;
}

}  // namespace
}  // namespace rota::svc
