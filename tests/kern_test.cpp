/// Tests of the vectorized-kernel layer (src/kern, DESIGN.md §14):
/// accuracy of the Cephes log/exp cores against libm, special-value
/// handling, the 4-lane reduction-tree contract, and — the load-bearing
/// property — bit-identity between the scalar and AVX2 paths over sweeps
/// that include denormal inputs and extreme Weibull shapes.

#include "kern/kern.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "obs/manifest.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace {

using rota::kern::Isa;

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Pin the dispatch to one ISA for a scope, restoring the default after.
class IsaGuard {
 public:
  explicit IsaGuard(Isa isa) : saved_(rota::kern::active_isa()) {
    rota::kern::force_isa(isa);
  }
  ~IsaGuard() { rota::kern::force_isa(saved_); }
  IsaGuard(const IsaGuard&) = delete;
  IsaGuard& operator=(const IsaGuard&) = delete;

 private:
  Isa saved_;
};

std::uint64_t bits_of(double x) { return std::bit_cast<std::uint64_t>(x); }

double rel_err(double got, double want) {
  if (want == 0.0) return std::abs(got);
  return std::abs((got - want) / want);
}

// ---------------------------------------------------------------- element ops

TEST(KernElementOps, LogMatchesLibmToAFewUlp) {
  rota::util::SplitMix64 rng(0x6b65726e);
  for (int i = 0; i < 20000; ++i) {
    // Log-uniform over the full normal range plus a denormal band.
    const double ex = rng.next_double() * 1400.0 - 1075.0;
    const double x = std::exp2(ex) * (0.5 + rng.next_double());
    if (x == 0.0 || std::isinf(x)) continue;
    const double got = rota::kern::log1(x);
    const double want = std::log(x);
    // Near x == 1 the log is ~0 and relative error blows up on the exact
    // zero crossing; bound the absolute error there instead.
    if (std::abs(want) < 1e-3) {
      EXPECT_NEAR(got, want, 1e-16) << "x=" << x;
    } else {
      EXPECT_LT(rel_err(got, want), 1e-13) << "x=" << x;
    }
  }
}

TEST(KernElementOps, LogSpecialValues) {
  EXPECT_EQ(rota::kern::log1(0.0), -kInf);
  EXPECT_EQ(rota::kern::log1(1.0), 0.0);
  // Smallest positive denormal: log(2^-1074) = -1074·ln2.
  const double tiny = std::bit_cast<double>(std::uint64_t{1});
  EXPECT_LT(rel_err(rota::kern::log1(tiny), std::log(tiny)), 1e-13);
  EXPECT_LT(rel_err(rota::kern::log1(std::numeric_limits<double>::min()),
                    std::log(std::numeric_limits<double>::min())),
            1e-13);
}

TEST(KernElementOps, ExpMatchesLibmToAFewUlp) {
  rota::util::SplitMix64 rng(0x6578702e);
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.next_double() * 1400.0 - 700.0;
    const double got = rota::kern::exp1(x);
    const double want = std::exp(x);
    EXPECT_LT(rel_err(got, want), 1e-13) << "x=" << x;
  }
}

TEST(KernElementOps, ExpSaturation) {
  EXPECT_EQ(rota::kern::exp1(-kInf), 0.0);
  EXPECT_EQ(rota::kern::exp1(kInf), kInf);
  EXPECT_EQ(rota::kern::exp1(-1000.0), 0.0);
  EXPECT_EQ(rota::kern::exp1(1000.0), kInf);
  EXPECT_EQ(rota::kern::exp1(0.0), 1.0);
}

TEST(KernElementOps, PowMatchesLibm) {
  rota::util::SplitMix64 rng(0x706f7731);
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.next_double() * 100.0 + 1e-6;
    const double p = rng.next_double() * 20.0 + 0.05;
    EXPECT_LT(rel_err(rota::kern::pow1(x, p), std::pow(x, p)), 1e-12)
        << "x=" << x << " p=" << p;
  }
  EXPECT_EQ(rota::kern::pow1(0.0, 2.5), 0.0);
  EXPECT_EQ(rota::kern::pow1(1.0, 7.0), 1.0);
}

// ------------------------------------------------------------ batch kernels

TEST(KernBatch, SumPowFollowsReductionTreeContract) {
  // The documented contract: element i feeds lane i mod 4, final fold is
  // (l0 + l1) + (l2 + l3). Recompute by hand from the element op.
  std::vector<double> x = {1.5, 2.25, 0.75, 3.5, 4.25, 0.0, 1.0e-3};
  const double p = 2.75;
  double lanes[4] = {0.0, 0.0, 0.0, 0.0};
  for (std::size_t i = 0; i < x.size(); ++i) {
    lanes[i % 4] += rota::kern::pow1(x[i], p);
  }
  const double want = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  EXPECT_EQ(bits_of(rota::kern::sum_pow(x.data(), p, x.size())),
            bits_of(want));
}

TEST(KernBatch, SumPowMatchesStdPowReference) {
  rota::util::SplitMix64 rng(0x73756d70);
  for (int rep = 0; rep < 50; ++rep) {
    const std::size_t n = 1 + rng.next_below(200);
    const double p = 0.25 + rng.next_double() * 10.0;
    std::vector<double> x(n);
    double want = 0.0;
    for (auto& v : x) {
      v = rng.next_double() * 8.0;
      want += std::pow(v, p);
    }
    const double got = rota::kern::sum_pow(x.data(), p, n);
    EXPECT_LT(rel_err(got, want), 1e-12) << "n=" << n << " p=" << p;
  }
}

TEST(KernBatch, SumExpAffineMatchesReference) {
  rota::util::SplitMix64 rng(0x73756d65);
  const std::size_t n = 137;
  std::vector<double> a(n);
  std::vector<double> w(n);
  const double m = 3.25;
  double want = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = rng.next_double() * 4.0 - 2.0;
    w[i] = rng.next_double() * 0.5 - 0.25;
    want += std::exp(m * (a[i] + w[i]));
  }
  EXPECT_LT(rel_err(rota::kern::sum_exp_affine(a.data(), w.data(), m, n),
                    want),
            1e-12);
  // -inf activity (log of zero) contributes exactly nothing.
  a[0] = -kInf;
  const double got = rota::kern::sum_exp_affine(a.data(), w.data(), m, n);
  EXPECT_TRUE(std::isfinite(got));
}

TEST(KernBatch, WeibullMinMatchesPowSampler) {
  // pow1(weibull_min, 1/beta) must equal min_i c_i·(−log(1−u_i))^{1/beta}
  // to reference accuracy (the sampler it replaces in rel::monte_carlo);
  // the min commutes with the monotone map x^{1/beta}.
  rota::util::SplitMix64 rng(0x77656962);
  const std::size_t n = 53;
  std::vector<double> u(n);
  std::vector<double> c_pow(n);
  std::vector<double> c(n);
  const double beta = 2.0;
  for (std::size_t i = 0; i < n; ++i) {
    u[i] = rng.next_double();
    c[i] = 0.125 + rng.next_double() * 4.0;
    c_pow[i] = std::pow(c[i], beta);
  }
  double want = kInf;
  for (std::size_t i = 0; i < n; ++i) {
    want = std::min(want, c[i] * std::pow(-std::log(1.0 - u[i]), 1.0 / beta));
  }
  const double got = rota::kern::pow1(
      rota::kern::weibull_min(u.data(), c_pow.data(), n), 1.0 / beta);
  EXPECT_LT(rel_err(got, want), 1e-12);
}

TEST(KernBatch, WeibullMinZeroDrawGivesZeroSample) {
  // u == 0 means −log(1−u) == 0: a zero failure time, like the pow
  // sampler produced — even against a DBL_MAX-clamped scale factor.
  const double u[] = {0.0, 0.5};
  const double c_pow[] = {std::numeric_limits<double>::max(), 1.0};
  const double m = rota::kern::weibull_min(u, c_pow, 2);
  EXPECT_EQ(m, 0.0);
  EXPECT_EQ(rota::kern::pow1(m, 0.5), 0.0);
}

TEST(KernBatch, EmptyBatches) {
  EXPECT_EQ(rota::kern::sum_pow(nullptr, 1.0, 0), 0.0);
  EXPECT_EQ(rota::kern::sum_exp_affine(nullptr, nullptr, 1.0, 0), 0.0);
  EXPECT_EQ(rota::kern::weibull_min(nullptr, nullptr, 0), kInf);
}

TEST(KernBatch, Int64Kernels) {
  std::vector<std::int64_t> dst = {1, 2, 3, 4, 5, 6, 7};
  const std::vector<std::int64_t> src = {10, 20, 30, 40, 50, 60, 70};
  rota::kern::add_i64(dst.data(), src.data(), dst.size());
  EXPECT_EQ(dst, (std::vector<std::int64_t>{11, 22, 33, 44, 55, 66, 77}));
  rota::kern::add_scalar_i64(dst.data(), -11, dst.size());
  EXPECT_EQ(dst[0], 0);
  EXPECT_EQ(dst[6], 66);
  const auto s = rota::kern::minmax_sum_i64(dst.data(), dst.size());
  EXPECT_EQ(s.min, 0);
  EXPECT_EQ(s.max, 66);
  EXPECT_EQ(s.sum, 0 + 11 + 22 + 33 + 44 + 55 + 66);
}

// ------------------------------------------------------------------ dispatch

TEST(KernDispatch, CompiledModeIsReported) {
  const auto mode = rota::kern::compiled_simd();
  EXPECT_TRUE(mode == "avx2" || mode == "off") << mode;
  if (mode == "off") {
    EXPECT_FALSE(rota::kern::avx2_available());
  }
}

TEST(KernDispatch, ForceScalarAlwaysWorks) {
  const IsaGuard guard(Isa::kScalar);
  EXPECT_EQ(rota::kern::active_isa(), Isa::kScalar);
  EXPECT_EQ(rota::kern::isa_name(rota::kern::active_isa()), "scalar");
}

TEST(KernDispatch, ForcingUnavailableAvx2Throws) {
  if (rota::kern::avx2_available()) GTEST_SKIP() << "AVX2 available here";
  EXPECT_THROW(rota::kern::force_isa(Isa::kAvx2),
               rota::util::precondition_error);
}

TEST(KernDispatch, ManifestRecordsSimdFields) {
  const auto manifest = rota::obs::make_run_manifest("kern_test", "");
  ASSERT_TRUE(manifest.extra.count("kern.simd_compiled"));
  ASSERT_TRUE(manifest.extra.count("kern.simd_active"));
  EXPECT_EQ(manifest.extra.at("kern.simd_compiled"),
            rota::kern::compiled_simd());
  EXPECT_EQ(manifest.extra.at("kern.simd_active"),
            rota::kern::isa_name(rota::kern::active_isa()));
}

// ------------------------------------------------------------- bit identity

/// The tentpole contract: with AVX2 available, every batch kernel returns
/// the exact same bits as the scalar path — including denormal inputs,
/// extreme Weibull shapes and saturating magnitudes.
class KernBitIdentity : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!rota::kern::avx2_available()) {
      GTEST_SKIP() << "AVX2 path not compiled in or not supported";
    }
  }

  template <typename Fn>
  void expect_same_bits(const Fn& run, const char* what) {
    double scalar_result = 0.0;
    double avx2_result = 0.0;
    {
      const IsaGuard guard(Isa::kScalar);
      scalar_result = run();
    }
    {
      const IsaGuard guard(Isa::kAvx2);
      avx2_result = run();
    }
    EXPECT_EQ(bits_of(scalar_result), bits_of(avx2_result))
        << what << ": scalar=" << scalar_result << " avx2=" << avx2_result;
  }
};

TEST_F(KernBitIdentity, SumPowSweep) {
  rota::util::SplitMix64 rng(0x62697431);
  // Shapes from gentle to extreme: beta = 50 drives large powers toward
  // saturation, beta = 0.02 (p = 50 on the closed form's 1/beta) the
  // other way.
  const double exponents[] = {0.5, 1.0, 2.0, 3.3, 50.0, 0.02};
  for (const double p : exponents) {
    for (std::size_t n : {std::size_t{1}, std::size_t{3}, std::size_t{4},
                          std::size_t{7}, std::size_t{64},
                          std::size_t{169}}) {
      std::vector<double> x(n);
      for (auto& v : x) {
        const std::uint64_t kind = rng.next_below(8);
        if (kind == 0) {
          v = 0.0;
        } else if (kind == 1) {
          v = 1e-310 * (1.0 + rng.next_double());  // denormal
        } else if (kind == 2) {
          v = 1e300 * rng.next_double();
        } else {
          v = rng.next_double() * 16.0;
        }
      }
      expect_same_bits(
          [&] { return rota::kern::sum_pow(x.data(), p, n); }, "sum_pow");
    }
  }
}

TEST_F(KernBitIdentity, SumExpAffineSweep) {
  rota::util::SplitMix64 rng(0x62697432);
  for (int rep = 0; rep < 20; ++rep) {
    const std::size_t n = 1 + rng.next_below(170);
    const double m = (rep % 2 == 0) ? 0.5 + rng.next_double() * 4.0 : 50.0;
    std::vector<double> a(n);
    std::vector<double> w(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = (rng.next_below(10) == 0) ? -kInf
                                       : rng.next_double() * 20.0 - 10.0;
      w[i] = rng.next_double() * 2.0 - 1.0;
    }
    expect_same_bits(
        [&] { return rota::kern::sum_exp_affine(a.data(), w.data(), m, n); },
        "sum_exp_affine");
  }
}

TEST_F(KernBitIdentity, WeibullMinSweep) {
  rota::util::SplitMix64 rng(0x62697433);
  // Scale factors spanning the shapes the sampler precomputes: (η/α)^β
  // from deep underflow territory up to the DBL_MAX clamp.
  const double scales[] = {1e-300, 1e-8, 1.0, 7.7, 1e12,
                           std::numeric_limits<double>::max()};
  for (const double scale : scales) {
    for (int rep = 0; rep < 8; ++rep) {
      const std::size_t n = 1 + rng.next_below(170);
      std::vector<double> u(n);
      std::vector<double> c_pow(n);
      for (std::size_t i = 0; i < n; ++i) {
        // Include the u == 0 edge (zero sample) and u → 1 extremes.
        const std::uint64_t kind = rng.next_below(16);
        if (kind == 0) {
          u[i] = 0.0;
        } else if (kind == 1) {
          u[i] = 1.0 - 0x1p-53;
        } else {
          u[i] = rng.next_double();
        }
        c_pow[i] = std::min(scale * (0.5 + rng.next_double()),
                            std::numeric_limits<double>::max());
      }
      expect_same_bits(
          [&] { return rota::kern::weibull_min(u.data(), c_pow.data(), n); },
          "weibull_min");
    }
  }
}

TEST_F(KernBitIdentity, ElementOpsAreDispatchFree) {
  // log1/exp1/pow1 never dispatch: forcing either ISA must not change
  // their bits (they are the scalar core by definition).
  rota::util::SplitMix64 rng(0x62697434);
  for (int i = 0; i < 100; ++i) {
    const double x = rng.next_double() * 100.0;
    expect_same_bits([&] { return rota::kern::log1(x + 1e-9); }, "log1");
    expect_same_bits([&] { return rota::kern::exp1(x - 50.0); }, "exp1");
  }
}

TEST_F(KernBitIdentity, Int64Sweep) {
  rota::util::SplitMix64 rng(0x62697435);
  for (std::size_t n : {std::size_t{1}, std::size_t{5}, std::size_t{128},
                        std::size_t{1001}}) {
    std::vector<std::int64_t> a(n);
    std::vector<std::int64_t> b(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = static_cast<std::int64_t>(rng.next_below(1u << 30));
      b[i] = static_cast<std::int64_t>(rng.next_below(1u << 30)) - (1 << 29);
    }
    std::vector<std::int64_t> scalar_dst = a;
    std::vector<std::int64_t> avx2_dst = a;
    rota::kern::I64Stats scalar_stats;
    rota::kern::I64Stats avx2_stats;
    {
      const IsaGuard guard(Isa::kScalar);
      rota::kern::add_i64(scalar_dst.data(), b.data(), n);
      rota::kern::add_scalar_i64(scalar_dst.data(), 17, n);
      scalar_stats = rota::kern::minmax_sum_i64(scalar_dst.data(), n);
    }
    {
      const IsaGuard guard(Isa::kAvx2);
      rota::kern::add_i64(avx2_dst.data(), b.data(), n);
      rota::kern::add_scalar_i64(avx2_dst.data(), 17, n);
      avx2_stats = rota::kern::minmax_sum_i64(avx2_dst.data(), n);
    }
    EXPECT_EQ(scalar_dst, avx2_dst);
    EXPECT_EQ(scalar_stats.min, avx2_stats.min);
    EXPECT_EQ(scalar_stats.max, avx2_stats.max);
    EXPECT_EQ(scalar_stats.sum, avx2_stats.sum);
  }
}

}  // namespace
