#include <gtest/gtest.h>

#include <cmath>

#include "core/experiment.hpp"
#include "nn/workloads.hpp"
#include "reliability/array_reliability.hpp"
#include "sim/engine.hpp"
#include "wear/rwl_math.hpp"

/// Cross-module integration and end-to-end property tests: these exercise
/// the full stack (workloads → mapper → wear simulator → reliability) the
/// same way the benches do, with scaled-down iteration counts.

namespace rota {
namespace {

using wear::PolicyKind;

// ----------------------------------------------------- work conservation ----

TEST(Integration, TrackerTotalsMatchScheduleArithmetic) {
  Experiment exp({arch::rota_like(), 7});
  const auto res = exp.run(nn::make_mobilenet_v3(),
                           {PolicyKind::kBaseline, PolicyKind::kRwlRo});
  std::int64_t expected = 0;
  for (const auto& l : res.schedule.layers)
    expected += l.tiles * l.space.x * l.space.y;
  expected *= res.iterations;
  for (const auto& run : res.runs) {
    std::int64_t sum = 0;
    for (std::int64_t v : run.usage.cells()) sum += v;
    EXPECT_EQ(sum, expected) << run.policy_name;
  }
}

// -------------------------------------------- per-layer upper bound (Fig 9) ----

TEST(Integration, PerLayerImprovementRespectsTheoreticalBound) {
  // Run per-layer RWL on single-layer "networks" and compare the measured
  // improvement with the §V-C bound utilization^{1/β−1}.
  Experiment exp({arch::rota_like(), 100});
  sched::Mapper& mapper = exp.mapper();
  const auto net = nn::make_squeezenet();
  for (const auto& layer : net.layers()) {
    const auto ls = mapper.schedule_layer(layer);
    nn::Network single("single:" + layer.name, "one",
                       nn::Domain::kLightweight);
    single.add(layer);
    const auto res =
        exp.run(single, {PolicyKind::kBaseline, PolicyKind::kRwl});
    const double gain = res.improvement_over_baseline(PolicyKind::kRwl);
    const double bound = rel::perfect_wl_upper_bound(
        ls.utilization(exp.config().accel), exp.config().beta);
    EXPECT_LE(gain, bound * (1.0 + 1e-9)) << layer.name;
    EXPECT_GE(gain, 1.0 - 1e-9) << layer.name;
  }
}

TEST(Integration, RwlApproachesBoundOnDivisorFriendlyLayer) {
  // An 7×12 space on the 14×12 array levels perfectly (X = 2): per-layer
  // RWL should sit essentially on the bound.
  Experiment exp({arch::rota_like(), 50});
  nn::Network single("divisor", "one", nn::Domain::kLightweight);
  single.add(nn::gemm("g", 12, 7 * 64, 256));
  const auto res = exp.run(single, {PolicyKind::kBaseline, PolicyKind::kRwl});
  const auto& ls = res.schedule.layers.at(0);
  const double gain = res.improvement_over_baseline(PolicyKind::kRwl);
  const double bound = rel::perfect_wl_upper_bound(
      ls.utilization(exp.config().accel), exp.config().beta);
  EXPECT_GT(gain, 0.9 * bound);
}

// ---------------------------------------------------- policy comparisons ----

TEST(Integration, PolicyOrderingOnLightweightNetwork) {
  // Paper Fig. 8 discussion: on small networks residual accumulation hurts
  // RWL-only, so Baseline <= RWL <= RWL+RO after enough iterations.
  Experiment exp({arch::rota_like(), 400});
  const auto res = exp.run(
      nn::make_mobilenet_v3(),
      {PolicyKind::kBaseline, PolicyKind::kRwl, PolicyKind::kRwlRo});
  const double rwl = res.improvement_over_baseline(PolicyKind::kRwl);
  const double ro = res.improvement_over_baseline(PolicyKind::kRwlRo);
  EXPECT_GT(rwl, 1.0);
  EXPECT_GE(ro, rwl - 1e-9);
}

TEST(Integration, RandomStartLevelsWorseThanRwlRo) {
  // Random anchoring levels in expectation but keeps a √t spread; the
  // deterministic lattice should dominate it at equal work.
  Experiment exp({arch::rota_like(), 60});
  const auto res = exp.run(nn::make_squeezenet(),
                           {PolicyKind::kBaseline, PolicyKind::kRwlRo,
                            PolicyKind::kRandomStart});
  const double ro = res.improvement_over_baseline(PolicyKind::kRwlRo);
  const double rnd = res.improvement_over_baseline(PolicyKind::kRandomStart);
  EXPECT_GT(rnd, 1.0);       // random still beats the fixed corner
  EXPECT_GE(ro, rnd - 1e-9); // but not the rotational lattice
  EXPECT_LE(res.run(PolicyKind::kRwlRo).stats.max_diff,
            res.run(PolicyKind::kRandomStart).stats.max_diff);
}

TEST(Integration, DiagonalStrideLeavesLatticeGapsOnAlignedGeometry) {
  // The diagonal ablation shows why the paper's band-major order matters:
  // when x | w and y | h and the strides advance together, the origin
  // visits only the diagonal sub-lattice {(i·x, i·y)} and entire regions
  // of the array are never touched. Band-major RWL+RO covers the full
  // product lattice. A 12×12 array with a 6×6 space is the minimal case:
  // diagonal hits (0,0) and (6,6) only, so (0..5, 6..11) stays cold.
  arch::AcceleratorConfig cfg = arch::rota_like();
  cfg.array_width = 12;
  cfg.array_height = 12;
  // Aggregate-initialize: assigning the short strings after default
  // construction trips a GCC 12 -Wmaybe-uninitialized false positive at
  // -O3.
  sched::NetworkSchedule ns{"aligned", "al", cfg, {}};
  sched::LayerSchedule l;
  l.layer_name = "l0";
  l.space = {6, 6};
  l.tiles = 400;
  ns.layers.push_back(l);

  wear::WearSimulator diag_sim(cfg);
  auto diag = wear::make_policy(PolicyKind::kDiagonalStride, 12, 12);
  diag_sim.run_iteration(ns, *diag);
  wear::WearSimulator ro_sim(cfg);
  auto ro = wear::make_policy(PolicyKind::kRwlRo, 12, 12);
  ro_sim.run_iteration(ns, *ro);

  EXPECT_EQ(diag_sim.tracker().stats().min, 0);  // cold quadrants
  EXPECT_GT(ro_sim.tracker().stats().min, 0);
  EXPECT_LT(ro_sim.tracker().stats().max_diff,
            diag_sim.tracker().stats().max_diff);
}

// ----------------------------------------------------- Fig. 10 trend ----

TEST(Integration, LargerArraysGiveMoreImprovement) {
  const auto net = nn::make_squeezenet();
  auto improvement_at = [&](std::int64_t side) {
    ExperimentConfig cfg;
    cfg.accel = arch::scaled_array(side, arch::TopologyKind::kTorus2D);
    cfg.iterations = 60;
    Experiment exp(cfg);
    const auto res =
        exp.run(net, {PolicyKind::kBaseline, PolicyKind::kRwlRo});
    return res.improvement_over_baseline(PolicyKind::kRwlRo);
  };
  const double at8 = improvement_at(8);
  const double at24 = improvement_at(24);
  EXPECT_GT(at24, at8);
}

// -------------------------------------------- timing is policy-independent ----

TEST(Integration, WearLevelingCostsZeroCycles) {
  // Same schedule, mesh vs torus: identical execution cycles, and the
  // counter update hides under compute in every layer (paper §V-D).
  sched::Mapper mapper(arch::eyeriss_like(), sched::ObjectiveSpec{});
  const auto ns = mapper.schedule_network(nn::make_efficientnet_b0());
  const sim::ExecutionEngine mesh_engine(arch::eyeriss_like());
  const sim::ExecutionEngine torus_engine(arch::rota_like());
  EXPECT_DOUBLE_EQ(mesh_engine.network_cycles(ns),
                   torus_engine.network_cycles(ns));
  for (const auto& layer : ns.layers) {
    EXPECT_TRUE(torus_engine.estimate_layer(layer).controller_update_hidden);
  }
}

// ------------------------------------------------------- RWL math anchor ----

TEST(Integration, ScheduledLayersSatisfyRwlBoundsEndToEnd) {
  // Take real scheduled utilization spaces (not synthetic ones) and check
  // the Eq. 9 / Eq. 10 bounds against fresh per-layer RWL simulation.
  sched::Mapper mapper(arch::rota_like(), sched::ObjectiveSpec{});
  const auto ns = mapper.schedule_network(nn::make_squeezenet());
  for (const auto& l : ns.layers) {
    const std::int64_t z = std::min<std::int64_t>(l.tiles, 5000);
    const wear::RwlParams params{14, 12, l.space.x, l.space.y, z};
    const wear::RwlDerived d = wear::rwl_derive(params);
    wear::UsageTracker t(14, 12);
    auto policy = wear::make_policy(PolicyKind::kRwl, 14, 12);
    const sched::UtilSpace space{l.space.x, l.space.y};
    policy->begin_layer(space);
    for (std::int64_t i = 0; i < z; ++i) {
      const auto at = policy->next_origin(space);
      t.add_space(at.u, at.v, space.x, space.y, 1, true);
    }
    const auto st = t.stats();
    EXPECT_LE(st.max_diff, d.d_max_bound) << l.layer_name;
    EXPECT_GE(st.min, d.min_a_pe) << l.layer_name;
  }
}

// ----------------------------------------------------------- full sweep ----

TEST(Integration, AllNineWorkloadsImproveUnderRwlRo) {
  // Scaled-down Fig. 8: every Table II workload must gain from RWL+RO.
  for (const auto& net : nn::all_workloads()) {
    Experiment exp({arch::rota_like(), 12});
    const auto res =
        exp.run(net, {PolicyKind::kBaseline, PolicyKind::kRwlRo});
    const double gain = res.improvement_over_baseline(PolicyKind::kRwlRo);
    EXPECT_GT(gain, 1.05) << net.name();
    EXPECT_LT(gain, 4.0) << net.name();
  }
}

}  // namespace
}  // namespace rota
