#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <numeric>
#include <sstream>

#include "util/arena.hpp"
#include "util/check.hpp"
#include "util/csv.hpp"
#include "util/grid.hpp"
#include "util/heatmap.hpp"
#include "util/io.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"
#include "util/safe_math.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace rota::util {
namespace {

// ---------------------------------------------------------------- check ----

TEST(Check, RequireThrowsPreconditionError) {
  EXPECT_THROW(ROTA_REQUIRE(false, "boom"), precondition_error);
  EXPECT_NO_THROW(ROTA_REQUIRE(true, "fine"));
}

TEST(Check, EnsureThrowsInvariantError) {
  EXPECT_THROW(ROTA_ENSURE(false, "broken"), invariant_error);
  EXPECT_NO_THROW(ROTA_ENSURE(true, "held"));
}

TEST(Check, MessageCarriesContext) {
  try {
    ROTA_REQUIRE(1 == 2, "one is not two");
    FAIL() << "should have thrown";
  } catch (const precondition_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("one is not two"), std::string::npos);
  }
}

// ----------------------------------------------------------------- math ----

TEST(Math, GcdLcmBasics) {
  EXPECT_EQ(gcd(14, 8), 2);
  EXPECT_EQ(lcm(14, 8), 56);
  EXPECT_EQ(gcd(7, 7), 7);
  EXPECT_EQ(lcm(1, 9), 9);
}

TEST(Math, GcdLcmRejectNonPositive) {
  EXPECT_THROW((void)gcd(0, 3), precondition_error);
  EXPECT_THROW((void)lcm(3, 0), precondition_error);
  EXPECT_THROW((void)gcd(-2, 3), precondition_error);
}

TEST(Math, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 5), 0);
  EXPECT_EQ(ceil_div(1, 5), 1);
  EXPECT_EQ(ceil_div(5, 5), 1);
  EXPECT_EQ(ceil_div(6, 5), 2);
  EXPECT_THROW((void)ceil_div(1, 0), precondition_error);
  EXPECT_THROW((void)ceil_div(-1, 2), precondition_error);
}

TEST(Math, RoundUp) {
  EXPECT_EQ(round_up(0, 4), 0);
  EXPECT_EQ(round_up(13, 4), 16);
  EXPECT_EQ(round_up(16, 4), 16);
}

TEST(Math, DivisorsOfTwelve) {
  const std::vector<std::int64_t> expected{1, 2, 3, 4, 6, 12};
  EXPECT_EQ(divisors(12), expected);
}

TEST(Math, DivisorsOfPrime) {
  const std::vector<std::int64_t> expected{1, 97};
  EXPECT_EQ(divisors(97), expected);
}

TEST(Math, DivisorsOfOne) {
  EXPECT_EQ(divisors(1), std::vector<std::int64_t>{1});
}

TEST(Math, DivisorsIntoAppendsAfterExistingContents) {
  std::vector<std::int64_t> out{-7};
  divisors_into(36, out);
  const std::vector<std::int64_t> expected{-7, 1, 2, 3, 4, 6, 9, 12, 18, 36};
  EXPECT_EQ(out, expected);  // perfect square: 6 emitted once
}

TEST(Arena, AllocationsAreAlignedAndDisjoint) {
  Arena arena(64);  // small first block to force growth
  std::vector<std::pair<std::byte*, std::size_t>> chunks;
  std::size_t sizes[] = {1, 7, 64, 3, 256, 40};
  for (std::size_t size : sizes) {
    auto* p = static_cast<std::byte*>(arena.allocate(size, 16));
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 16, 0u);
    for (std::size_t i = 0; i < size; ++i) p[i] = std::byte{0xAB};
    chunks.push_back({p, size});
  }
  for (std::size_t a = 0; a < chunks.size(); ++a) {
    for (std::size_t b = a + 1; b < chunks.size(); ++b) {
      const bool disjoint = chunks[a].first + chunks[a].second <= chunks[b].first ||
                            chunks[b].first + chunks[b].second <= chunks[a].first;
      EXPECT_TRUE(disjoint) << "chunks " << a << " and " << b << " overlap";
    }
  }
}

TEST(Arena, ResetRetainsBlocksAndReusesThem) {
  Arena arena(128);
  (void)arena.allocate(1000, 8);
  const std::size_t reserved = arena.bytes_reserved();
  EXPECT_GE(reserved, 1000u);
  arena.reset();
  (void)arena.allocate(1000, 8);
  EXPECT_EQ(arena.bytes_reserved(), reserved);  // no new blocks needed
}

TEST(Arena, RejectsNonPowerOfTwoAlignment) {
  Arena arena;
  EXPECT_THROW((void)arena.allocate(8, 3), precondition_error);
}

TEST(Arena, VectorsDrawFromArena) {
  Arena arena(64);
  ArenaVector<std::int64_t> v{ArenaAllocator<std::int64_t>(arena)};
  for (std::int64_t i = 0; i < 1000; ++i) v.push_back(i);
  for (std::int64_t i = 0; i < 1000; ++i) ASSERT_EQ(v[static_cast<std::size_t>(i)], i);
  EXPECT_GE(arena.bytes_reserved(), 1000 * sizeof(std::int64_t));

  // divisors_into works against arena-backed containers unchanged.
  ArenaVector<std::int64_t> divs{ArenaAllocator<std::int64_t>(arena)};
  divisors_into(12, divs);
  const std::vector<std::int64_t> expected{1, 2, 3, 4, 6, 12};
  EXPECT_TRUE(std::equal(divs.begin(), divs.end(), expected.begin(),
                         expected.end()));
}

class GcdLcmProperty : public ::testing::TestWithParam<
                           std::tuple<std::int64_t, std::int64_t>> {};

TEST_P(GcdLcmProperty, ProductIdentity) {
  const auto [a, b] = GetParam();
  EXPECT_EQ(gcd(a, b) * lcm(a, b), a * b);
  EXPECT_EQ(a % gcd(a, b), 0);
  EXPECT_EQ(b % gcd(a, b), 0);
  EXPECT_EQ(lcm(a, b) % a, 0);
  EXPECT_EQ(lcm(a, b) % b, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GcdLcmProperty,
    ::testing::Combine(::testing::Values<std::int64_t>(1, 2, 3, 8, 12, 14,
                                                       15, 56, 97),
                       ::testing::Values<std::int64_t>(1, 4, 7, 9, 12, 14,
                                                       32, 56)));

class DivisorsProperty : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(DivisorsProperty, EveryEntryDividesSortedUnique) {
  const std::int64_t n = GetParam();
  const auto divs = divisors(n);
  ASSERT_FALSE(divs.empty());
  EXPECT_EQ(divs.front(), 1);
  EXPECT_EQ(divs.back(), n);
  for (std::size_t i = 0; i < divs.size(); ++i) {
    EXPECT_EQ(n % divs[i], 0);
    if (i > 0) {
      EXPECT_LT(divs[i - 1], divs[i]);
    }
  }
  // Count check against the naive reference.
  std::int64_t count = 0;
  for (std::int64_t d = 1; d <= n; ++d)
    if (n % d == 0) ++count;
  EXPECT_EQ(static_cast<std::int64_t>(divs.size()), count);
}

INSTANTIATE_TEST_SUITE_P(Sweep, DivisorsProperty,
                         ::testing::Values(1, 2, 6, 12, 36, 97, 100, 168, 255,
                                           1024));

// ------------------------------------------------------------ safe math ----

TEST(SafeMath, CheckedOpsAgreeWithPlainArithmeticInRange) {
  EXPECT_EQ(checked_add(3, 4), 7);
  EXPECT_EQ(checked_sub(3, 4), -1);
  EXPECT_EQ(checked_mul(-6, 7), -42);
  EXPECT_EQ(checked_lcm(14, 8), 56);
  // Largest exactly representable products still work.
  const std::int64_t big = std::numeric_limits<std::int64_t>::max();
  EXPECT_EQ(checked_add(big - 1, 1), big);
  EXPECT_EQ(checked_mul(big / 2, 2), big - 1);
}

TEST(SafeMath, CheckedOpsThrowInsteadOfWrapping) {
  const std::int64_t big = std::numeric_limits<std::int64_t>::max();
  const std::int64_t small = std::numeric_limits<std::int64_t>::min();
  EXPECT_THROW((void)checked_add(big, 1), invariant_error);
  EXPECT_THROW((void)checked_sub(small, 1), invariant_error);
  EXPECT_THROW((void)checked_mul(big / 2 + 1, 2), invariant_error);
  EXPECT_THROW((void)checked_mul(small, -1), invariant_error);
}

TEST(SafeMath, CheckedLcmOverflowThrows) {
  // gcd(2^62, 3) = 1, so the lcm is 3·2^62 > INT64_MAX.
  EXPECT_THROW((void)checked_lcm(std::int64_t{1} << 62, 3), invariant_error);
  EXPECT_THROW((void)checked_lcm(3, std::int64_t{1} << 62), invariant_error);
  // Equal operands never multiply, so no overflow however large.
  EXPECT_EQ(checked_lcm(std::int64_t{1} << 62, std::int64_t{1} << 62),
            std::int64_t{1} << 62);
  EXPECT_THROW((void)checked_lcm(0, 3), precondition_error);
}

TEST(SafeMath, LcmOverflowRegression) {
  // util::lcm used to call std::lcm, which silently wraps; it must now
  // throw on operands whose lcm exceeds INT64_MAX.
  EXPECT_THROW((void)lcm(std::int64_t{1} << 62, 3), invariant_error);
  // Coprime Mersenne pair just below the limit: 2^31 · (2^31 − 1) fits.
  const std::int64_t p = std::int64_t{1} << 31;
  EXPECT_EQ(lcm(p, p - 1), p * (p - 1));
}

TEST(Math, WeibullMeanFactorKnownValues) {
  // Γ(2) = 1 for β = 1 (exponential distribution).
  EXPECT_NEAR(weibull_mean_factor(1.0), 1.0, 1e-12);
  // Γ(1.5) = √π/2 for β = 2 (Rayleigh).
  EXPECT_NEAR(weibull_mean_factor(2.0), std::sqrt(M_PI) / 2.0, 1e-12);
  // β = 3.4 (JEDEC): Γ(1 + 1/3.4) ≈ 0.89843.
  EXPECT_NEAR(weibull_mean_factor(3.4), std::tgamma(1.0 + 1.0 / 3.4), 0.0);
  EXPECT_THROW((void)weibull_mean_factor(0.0), precondition_error);
}

TEST(Math, PowerSumRootMatchesDirectComputation) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  const double p = 3.4;
  double direct = 0.0;
  for (double x : v) direct += std::pow(x, p);
  direct = std::pow(direct, 1.0 / p);
  EXPECT_NEAR(power_sum_root(v, p), direct, 1e-9);
}

TEST(Math, PowerSumRootIsScaleHomogeneous) {
  const std::vector<double> v{0.5, 7.0, 2.25, 0.0};
  std::vector<double> scaled;
  for (double x : v) scaled.push_back(x * 1e6);
  EXPECT_NEAR(power_sum_root(scaled, 3.4), 1e6 * power_sum_root(v, 3.4),
              1e-3);
}

TEST(Math, PowerSumRootAllZeros) {
  EXPECT_EQ(power_sum_root({0.0, 0.0}, 2.0), 0.0);
}

TEST(Math, PowerSumRootRejectsNegative) {
  EXPECT_THROW((void)power_sum_root({1.0, -1.0}, 2.0), precondition_error);
}

TEST(Math, PowerSumRootDominatedByMax) {
  // The p-norm is at least the max and at most max·n^{1/p}.
  const std::vector<double> v{3.0, 1.0, 2.0, 9.0};
  const double r = power_sum_root(v, 3.4);
  EXPECT_GE(r, 9.0);
  EXPECT_LE(r, 9.0 * std::pow(4.0, 1.0 / 3.4) + 1e-9);
}

// ---------------------------------------------------------------- stats ----

TEST(Stats, RunningStatsMatchesDirect) {
  const std::vector<double> xs{3.0, 1.5, 4.0, 1.0, 5.5, 9.0, 2.5};
  RunningStats rs;
  for (double x : xs) rs.add(x);
  const double mean =
      std::accumulate(xs.begin(), xs.end(), 0.0) / static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size());
  EXPECT_EQ(rs.count(), static_cast<std::int64_t>(xs.size()));
  EXPECT_NEAR(rs.mean(), mean, 1e-12);
  EXPECT_NEAR(rs.variance(), var, 1e-12);
  EXPECT_NEAR(rs.stddev(), std::sqrt(var), 1e-12);
  EXPECT_EQ(rs.min(), 1.0);
  EXPECT_EQ(rs.max(), 9.0);
}

TEST(Stats, EmptyStatsThrow) {
  RunningStats rs;
  EXPECT_THROW((void)rs.mean(), precondition_error);
  EXPECT_THROW((void)rs.min(), precondition_error);
  EXPECT_THROW((void)rs.max(), precondition_error);
  EXPECT_EQ(rs.variance(), 0.0);
}

TEST(Stats, SummarizeAndGeomean) {
  const Summary s = summarize({2.0, 8.0});
  EXPECT_EQ(s.min, 2.0);
  EXPECT_EQ(s.max, 8.0);
  EXPECT_EQ(s.mean, 5.0);
  EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
  EXPECT_THROW((void)summarize({}), precondition_error);
  EXPECT_THROW((void)geomean({1.0, 0.0}), precondition_error);
}

// ----------------------------------------------------------------- grid ----

TEST(Grid, IndexingIsColumnRow) {
  Grid<int> g(3, 2, 0);
  g.at(2, 1) = 7;
  EXPECT_EQ(g(2, 1), 7);
  // Row-major backing store: row 1 starts at index 3.
  EXPECT_EQ(g.cells()[1 * 3 + 2], 7);
}

TEST(Grid, BoundsCheckedAccessorThrows) {
  Grid<int> g(3, 2);
  EXPECT_THROW(g.at(3, 0), precondition_error);
  EXPECT_THROW(g.at(0, 2), precondition_error);
}

TEST(Grid, FillAndEquality) {
  Grid<int> a(4, 4, 1);
  Grid<int> b(4, 4, 1);
  EXPECT_TRUE(a == b);
  b.at(0, 0) = 2;
  EXPECT_FALSE(a == b);
  b.fill(1);
  EXPECT_TRUE(a == b);
}

TEST(Grid, RejectsEmptyDimensions) {
  EXPECT_THROW(Grid<int>(0, 3), precondition_error);
  EXPECT_THROW(Grid<int>(3, 0), precondition_error);
}

// ---------------------------------------------------------------- table ----

TEST(Table, AlignsColumnsAndCountsRows) {
  TextTable t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  EXPECT_EQ(t.rows(), 2u);
  const std::string s = t.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), precondition_error);
}

TEST(Table, Formatters) {
  EXPECT_EQ(fmt(1.23456, 2), "1.23");
  EXPECT_EQ(fmt(2.0, 0), "2");
  EXPECT_EQ(fmt_pct(0.558), "55.8%");
  EXPECT_EQ(fmt_pct(1.0, 0), "100%");
}

// ------------------------------------------------------------------ csv ----

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, WritesHeaderAndRows) {
  std::ostringstream os;
  CsvWriter w(os, {"x", "y"});
  w.row({"1", "2"});
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
  EXPECT_THROW(w.row({"too", "many", "cells"}), precondition_error);
}

TEST(Csv, FailedStreamRaisesIoErrorInsteadOfTruncating) {
  std::ostringstream os;
  os.setstate(std::ios::failbit);
  EXPECT_THROW(CsvWriter(os, {"x"}), io_error);
}

TEST(Csv, IoErrorNamesTheSink) {
  std::ostringstream os;
  CsvWriter w(os, {"x"}, "results.csv");
  os.setstate(std::ios::badbit);
  try {
    w.row({"1"});
    FAIL() << "should have thrown";
  } catch (const io_error& e) {
    EXPECT_NE(std::string(e.what()).find("results.csv"), std::string::npos);
  }
}

// ------------------------------------------------------------------- io ----

TEST(Io, WriteTextFileRoundTrips) {
  const std::string path = ::testing::TempDir() + "rota_util_io.txt";
  write_text_file(path, "hello\nworld\n");
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), "hello\nworld\n");
  std::remove(path.c_str());
}

TEST(Io, WriteTextFileThrowsNamingUnwritablePath) {
  const std::string path = "/nonexistent-dir/out.txt";
  try {
    write_text_file(path, "x");
    FAIL() << "should have thrown";
  } catch (const io_error& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos);
  }
}

// -------------------------------------------------------------- heatmap ----

TEST(Heatmap, AsciiHasOneLinePerRowPlusScale) {
  Grid<double> g(4, 3, 0.0);
  g.at(0, 0) = 10.0;
  const std::string s = ascii_heatmap(g);
  const auto lines = std::count(s.begin(), s.end(), '\n');
  EXPECT_EQ(lines, 4);  // 3 rows + scale line
  // Max-valued cell renders as '@'; it is at the lower-left, so it appears
  // at the start of the *last* row line (row 0 printed last).
  EXPECT_NE(s.find('@'), std::string::npos);
}

TEST(Heatmap, AllZeroGridRendersBlanks) {
  Grid<double> g(2, 2, 0.0);
  const std::string s = ascii_heatmap(g);
  // Both row lines (everything before the scale line) must be blank.
  const std::size_t scale_pos = s.find("scale:");
  ASSERT_NE(scale_pos, std::string::npos);
  const std::string rows = s.substr(0, scale_pos);
  EXPECT_EQ(rows.find_first_not_of(" \n"), std::string::npos);
}

TEST(Heatmap, PgmRoundTripHeader) {
  Grid<double> g(5, 4, 0.0);
  g.at(4, 3) = 2.0;
  const std::string path = ::testing::TempDir() + "/rota_heatmap_test.pgm";
  ASSERT_TRUE(write_pgm(g, path));
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::string magic;
  int w = 0;
  int h = 0;
  int maxval = 0;
  in >> magic >> w >> h >> maxval;
  EXPECT_EQ(magic, "P5");
  EXPECT_EQ(w, 5);
  EXPECT_EQ(h, 4);
  EXPECT_EQ(maxval, 255);
  in.get();  // single whitespace after header
  std::vector<unsigned char> px(20);
  in.read(reinterpret_cast<char*>(px.data()), 20);
  ASSERT_TRUE(in.good());
  // Row h-1 is written first; its last pixel is the max (255).
  EXPECT_EQ(px[4], 255);
  std::remove(path.c_str());
}

TEST(Heatmap, DeviationScaleRevealsResidualStructure) {
  // A nearly-level grid renders all-'@' on the absolute scale but shows
  // its min/max structure on the deviation scale.
  Grid<std::int64_t> g(3, 2, 1000000);
  g.at(0, 0) = 1000001;  // +1 residual peak
  const std::string abs = ascii_heatmap(g);
  const std::string dev = ascii_heatmap_deviation(g);
  // Absolute: every cell saturates.
  EXPECT_EQ(std::count(abs.begin(), abs.end(), '@'),
            6 + 1);  // 6 cells + the scale line's '@'
  // Deviation: exactly the peak saturates.
  EXPECT_EQ(std::count(dev.begin(), dev.end(), '@'), 1 + 1);
  EXPECT_NE(dev.find("min(1000000)"), std::string::npos);
}

TEST(Heatmap, DeviationOfConstantGridIsMidShade) {
  Grid<std::int64_t> g(2, 2, 7);
  const std::string dev = ascii_heatmap_deviation(g);
  // No cell saturates: the only '@' sits inside the trailing scale line.
  EXPECT_GT(dev.find('@'), dev.find("scale:"));
  EXPECT_NE(dev.find('='), std::string::npos);  // mid shade used
}

TEST(Heatmap, IntegerOverloadMatchesDoubleRendering) {
  Grid<std::int64_t> gi(3, 3, 0);
  Grid<double> gd(3, 3, 0.0);
  gi.at(1, 1) = 5;
  gd.at(1, 1) = 5.0;
  EXPECT_EQ(ascii_heatmap(gi), ascii_heatmap(gd));
}

// ------------------------------------------------------------------ rng ----

TEST(Rng, DeterministicPerSeed) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int differing = 0;
  for (int i = 0; i < 16; ++i)
    if (a.next() != b.next()) ++differing;
  EXPECT_GT(differing, 12);
}

TEST(Rng, BoundedValuesInRange) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(14), 14u);
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BoundedValuesRoughlyUniform) {
  SplitMix64 rng(11);
  std::vector<int> counts(12, 0);
  constexpr int kDraws = 60000;
  for (int i = 0; i < kDraws; ++i)
    ++counts[rng.next_below(12)];
  for (int c : counts) {
    EXPECT_GT(c, kDraws / 12 - kDraws / 60);  // within 20% of uniform
    EXPECT_LT(c, kDraws / 12 + kDraws / 60);
  }
}

}  // namespace
}  // namespace rota::util
