#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/build_info.hpp"
#include "obs/json.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace rota::obs {
namespace {

// ----------------------------------------------------------------- json ----

TEST(Json, EscapeHandlesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_quote("x"), "\"x\"");
}

TEST(Json, NumberRendersNonFiniteAsNull) {
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_number(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_TRUE(json_valid(json_number(0.1)));
  EXPECT_TRUE(json_valid(json_number(-3e-9)));
}

TEST(Json, ValidatorAcceptsWellFormedDocuments) {
  EXPECT_TRUE(json_valid("{}"));
  EXPECT_TRUE(json_valid("[]"));
  EXPECT_TRUE(json_valid(R"({"a": [1, 2.5, -3e4], "b": {"c": null},)"
                         R"( "d": "x\ny", "e": true})"));
}

TEST(Json, ValidatorRejectsMalformedDocuments) {
  EXPECT_FALSE(json_valid(""));
  EXPECT_FALSE(json_valid("{"));
  EXPECT_FALSE(json_valid("{} trailing"));
  EXPECT_FALSE(json_valid("{'single': 1}"));
  EXPECT_FALSE(json_valid("[1,]"));
  EXPECT_FALSE(json_valid("{\"a\":}"));
  EXPECT_FALSE(json_valid("nan"));
}

// -------------------------------------------------------------- metrics ----

TEST(Metrics, DisabledRegistryRecordsNothing) {
  MetricsRegistry reg;
  ASSERT_FALSE(reg.enabled());
  reg.add("c");
  reg.gauge("g", 1.0);
  reg.observe("h", 1.0);
  EXPECT_TRUE(reg.names().empty());
  EXPECT_EQ(reg.counter("c"), 0);
}

TEST(Metrics, CounterGaugeHistogramSemantics) {
  MetricsRegistry reg;
  reg.set_enabled(true);
  reg.add("c");
  reg.add("c", 41);
  reg.gauge("g", 1.5);
  reg.gauge("g", 2.5);  // last write wins
  for (int i = 1; i <= 100; ++i) reg.observe("h", static_cast<double>(i));

  EXPECT_EQ(reg.counter("c"), 42);
  EXPECT_DOUBLE_EQ(reg.gauge_value("g"), 2.5);
  const HistogramSummary h = reg.histogram("h");
  EXPECT_EQ(h.count, 100);
  EXPECT_DOUBLE_EQ(h.min, 1.0);
  EXPECT_DOUBLE_EQ(h.max, 100.0);
  EXPECT_DOUBLE_EQ(h.p50, 50.0);  // nearest-rank
  EXPECT_DOUBLE_EQ(h.p95, 95.0);
  EXPECT_DOUBLE_EQ(h.sum, 5050.0);
  EXPECT_EQ(reg.names(), (std::vector<std::string>{"c", "g", "h"}));
}

TEST(Metrics, ResetDropsDataButKeepsEnabledFlag) {
  MetricsRegistry reg;
  reg.set_enabled(true);
  reg.add("c", 7);
  reg.reset();
  EXPECT_TRUE(reg.enabled());
  EXPECT_TRUE(reg.names().empty());
}

TEST(Metrics, JsonIsValidAndCarriesTypes) {
  MetricsRegistry reg;
  reg.set_enabled(true);
  reg.add("mapper.layers", 3);
  reg.gauge("rate", 12.5);
  reg.observe("seconds", 0.25);
  const std::string json = reg.json();
  EXPECT_TRUE(json_valid(json)) << json;
  EXPECT_NE(json.find("\"mapper.layers\""), std::string::npos);
  EXPECT_NE(json.find("\"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
}

TEST(Metrics, TableListsEveryMetric) {
  MetricsRegistry reg;
  reg.set_enabled(true);
  reg.add("hits", 9);
  reg.observe("lat", 1.0);
  const std::string table = reg.table();
  EXPECT_NE(table.find("hits"), std::string::npos);
  EXPECT_NE(table.find("lat"), std::string::npos);
}

TEST(Metrics, ScopedTimerRecordsOneSample) {
  MetricsRegistry reg;
  reg.set_enabled(true);
  {
    ScopedTimer t("op.seconds", reg);
  }
  EXPECT_EQ(reg.histogram("op.seconds").count, 1);
  {
    ScopedTimer t("op.seconds", reg);
    t.stop();
    t.stop();  // idempotent
  }
  EXPECT_EQ(reg.histogram("op.seconds").count, 2);
}

TEST(Metrics, ScopedTimerOnDisabledRegistryIsNoOp) {
  MetricsRegistry reg;
  {
    ScopedTimer t("op.seconds", reg);
  }
  EXPECT_EQ(reg.histogram("op.seconds").count, 0);
}

TEST(Metrics, ConcurrentHammerIsDataRaceFree) {
  // Exercised under -fsanitize=thread by the tsan preset: writers mix
  // counters/gauges/histograms while a reader snapshots JSON and a toggler
  // flips the enabled bit.
  MetricsRegistry reg;
  reg.set_enabled(true);
  constexpr int kWriters = 4;
  constexpr int kOpsPerWriter = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kWriters + 2);
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&reg, w] {
      for (int i = 0; i < kOpsPerWriter; ++i) {
        reg.add("hammer.count");
        reg.gauge("hammer.gauge", static_cast<double>(w));
        reg.observe("hammer.hist", static_cast<double>(i));
      }
    });
  }
  threads.emplace_back([&reg] {
    for (int i = 0; i < 200; ++i) {
      const std::string snapshot = reg.json();
      ASSERT_TRUE(json_valid(snapshot));
    }
  });
  threads.emplace_back([&reg] {
    for (int i = 0; i < 500; ++i) reg.set_enabled(i % 2 == 0);
  });
  for (auto& t : threads) t.join();
  reg.set_enabled(true);
  // The toggler makes the exact count nondeterministic; bounds still hold.
  EXPECT_GT(reg.counter("hammer.count"), 0);
  EXPECT_LE(reg.counter("hammer.count"), kWriters * kOpsPerWriter);
}

// ---------------------------------------------------------------- trace ----

TEST(Trace, DisabledTracerRecordsNothing) {
  Tracer tracer;
  {
    TraceSpan span("s", "cat", tracer);
  }
  tracer.instant("i", "cat");
  EXPECT_EQ(tracer.event_count(), 0u);
}

TEST(Trace, SpansProduceValidChromeTraceJson) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    TraceSpan outer("outer", "test", tracer);
    {
      TraceSpan inner("inner", "test", tracer);
    }
  }
  tracer.instant("marker", "test");
  EXPECT_EQ(tracer.event_count(), 3u);

  const std::string json = tracer.json();
  EXPECT_TRUE(json_valid(json)) << json;
  // Perfetto essentials in the versioned object form: the schema_version
  // envelope wrapping a traceEvents array, process metadata first,
  // complete events with ts+dur, instant with a scope.
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"schema_version\":" +
                      std::to_string(kSchemaVersion)),
            std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"inner\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
}

TEST(Trace, InnerSpanNestsInsideOuter) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    TraceSpan outer("outer", "test", tracer);
    {
      TraceSpan inner("inner", "test", tracer);
    }
  }
  // Events are recorded at destruction: inner first.
  std::ostringstream os;
  tracer.write_json(os);
  const std::string json = os.str();
  const std::size_t inner_pos = json.find("\"inner\"");
  const std::size_t outer_pos = json.find("\"outer\"");
  ASSERT_NE(inner_pos, std::string::npos);
  ASSERT_NE(outer_pos, std::string::npos);
  EXPECT_LT(inner_pos, outer_pos);
}

TEST(Trace, ResetDropsEventsAndWriteFileChecksErrors) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.instant("x", "t");
  tracer.reset();
  EXPECT_EQ(tracer.event_count(), 0u);
  EXPECT_TRUE(tracer.enabled());
  EXPECT_THROW(tracer.write_file("/nonexistent-dir/trace.json"),
               util::io_error);
}

TEST(Trace, WriteFileRoundTrips) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.instant("x", "t");
  const std::string path = ::testing::TempDir() + "rota_obs_trace.json";
  tracer.write_file(path);
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_TRUE(json_valid(buf.str()));
  std::remove(path.c_str());
}

// ------------------------------------------------------------- manifest ----

TEST(Manifest, ToJsonCarriesEveryField) {
  RunManifest m = make_run_manifest("rota", "wear Sqz --iters 10");
  m.workload = "Sqz";
  m.policy = "RWL+RO";
  m.metric = "alloc";
  m.array_width = 14;
  m.array_height = 12;
  m.iterations = 10;
  m.seed = 0x526f5441;
  m.wall_seconds = 1.25;
  m.extra["spares"] = "0";

  const std::string json = m.to_json();
  EXPECT_TRUE(json_valid(json)) << json;
  for (const char* key :
       {"\"tool\"", "\"command\"", "\"workload\"", "\"policy\"", "\"metric\"",
        "\"array_width\"", "\"array_height\"", "\"iterations\"", "\"seed\"",
        "\"version\"", "\"git_sha\"", "\"build_type\"", "\"timestamp_utc\"",
        "\"wall_seconds\"", "\"spares\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  // ISO-8601 UTC: "YYYY-MM-DDTHH:MM:SSZ".
  EXPECT_EQ(m.timestamp_utc.size(), 20u);
  EXPECT_EQ(m.timestamp_utc[10], 'T');
  EXPECT_EQ(m.timestamp_utc.back(), 'Z');
}

TEST(Manifest, MetricsReportJsonHasManifestAndMetrics) {
  MetricsRegistry reg;
  reg.set_enabled(true);
  reg.add("n", 5);
  const RunManifest m = make_run_manifest("test", "cmd");
  const std::string report = metrics_report_json(m, reg);
  EXPECT_TRUE(json_valid(report)) << report;
  EXPECT_NE(report.find("\"schema_version\":" +
                        std::to_string(kSchemaVersion)),
            std::string::npos);
  EXPECT_NE(report.find("\"manifest\""), std::string::npos);
  EXPECT_NE(report.find("\"metrics\""), std::string::npos);
  EXPECT_NE(report.find("\"n\""), std::string::npos);
}

// ----------------------------------------------------------- build info ----

TEST(BuildInfo, FieldsAreNonEmptyAndComposeTheLine) {
  EXPECT_NE(std::string(version()), "");
  EXPECT_NE(std::string(git_sha()), "");
  EXPECT_NE(std::string(build_type()), "");
  const std::string line = build_info_line();
  EXPECT_NE(line.find("rota "), std::string::npos);
  EXPECT_NE(line.find(version()), std::string::npos);
  EXPECT_NE(line.find(git_sha()), std::string::npos);
}

// ------------------------------------------------------------- progress ----

class CerrCapture {
 public:
  CerrCapture() : old_(std::cerr.rdbuf(buffer_.rdbuf())) {}
  ~CerrCapture() { std::cerr.rdbuf(old_); }
  [[nodiscard]] std::string str() const { return buffer_.str(); }

 private:
  std::ostringstream buffer_;
  std::streambuf* old_;
};

TEST(Progress, SilentWhenGateClosed) {
  ProgressReporter::set_enabled(false);
  CerrCapture capture;
  {
    ProgressReporter progress("quiet", 10);
    for (int i = 0; i < 10; ++i) progress.tick();
  }
  EXPECT_EQ(capture.str(), "");
}

TEST(Progress, ReportsWhenEnabledAndTtyForced) {
  ProgressReporter::set_enabled(true);
  ProgressReporter::force_tty(true);
  CerrCapture capture;
  {
    ProgressReporter progress("wear Sqz", 4);
    for (int i = 0; i < 4; ++i) progress.tick();
  }
  ProgressReporter::force_tty(false);
  ProgressReporter::set_enabled(false);
  const std::string out = capture.str();
  EXPECT_NE(out.find("wear Sqz"), std::string::npos);
  EXPECT_NE(out.find("100%"), std::string::npos);
  EXPECT_EQ(out.back(), '\n');  // finish() terminates the line
}

TEST(Progress, ZeroTotalNeverPrints) {
  ProgressReporter::set_enabled(true);
  ProgressReporter::force_tty(true);
  CerrCapture capture;
  {
    ProgressReporter progress("empty", 0);
    progress.tick();
  }
  ProgressReporter::force_tty(false);
  ProgressReporter::set_enabled(false);
  EXPECT_EQ(capture.str(), "");
}

}  // namespace
}  // namespace rota::obs
