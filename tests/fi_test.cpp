#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <future>
#include <sstream>
#include <string>
#include <vector>

#include "arch/config.hpp"
#include "cli/commands.hpp"
#include "cli/options.hpp"
#include "cli/signals.hpp"
#include "fi/checkpoint.hpp"
#include "fi/hooks.hpp"
#include "fi/inject.hpp"
#include "fi/plan.hpp"
#include "nn/workloads.hpp"
#include "par/parallel.hpp"
#include "sched/mapper.hpp"
#include "svc/engine.hpp"
#include "util/io.hpp"
#include "util/result.hpp"
#include "util/retry.hpp"

namespace rota::fi {
namespace {

using util::ErrorCode;

/// Unique scratch directory, removed on destruction.
struct TempDir {
  std::filesystem::path path;

  TempDir() {
    static std::atomic<int> counter{0};
    path = std::filesystem::temp_directory_path() /
           ("rota_fi_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter.fetch_add(1)));
    std::filesystem::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  [[nodiscard]] std::string file(const std::string& name) const {
    return (path / name).string();
  }
};

/// Hooks are process-global; every test that arms must disarm.
struct ArmGuard {
  explicit ArmGuard(const SoftwarePlan& plan) { Hooks::arm(plan); }
  ~ArmGuard() { Hooks::disarm(); }
};

// ------------------------------------------------------------ plan parsing

TEST(FiPlan, SoftwareSpecRoundTrips) {
  auto parsed = parse_software_plan(
      "read=0.1,write=0.2,corrupt=0.05,stall=0.5,stall_ms=7,alloc=0.01,"
      "seed=42,match=schedule-cache");
  ASSERT_TRUE(parsed.ok());
  const SoftwarePlan plan = std::move(parsed).take();
  EXPECT_DOUBLE_EQ(plan.read_fail_rate, 0.1);
  EXPECT_DOUBLE_EQ(plan.write_fail_rate, 0.2);
  EXPECT_DOUBLE_EQ(plan.corrupt_rate, 0.05);
  EXPECT_DOUBLE_EQ(plan.stall_rate, 0.5);
  EXPECT_EQ(plan.stall_ms, 7);
  EXPECT_DOUBLE_EQ(plan.alloc_fail_rate, 0.01);
  EXPECT_EQ(plan.seed, 42u);
  EXPECT_EQ(plan.path_match, "schedule-cache");
  EXPECT_TRUE(plan.any());

  auto reparsed = parse_software_plan(plan.to_spec());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed.value().to_spec(), plan.to_spec());
}

TEST(FiPlan, EmptySpecIsAllZero) {
  auto parsed = parse_software_plan("");
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed.value().any());
}

TEST(FiPlan, SoftwareSpecRejectsBadInput) {
  EXPECT_FALSE(parse_software_plan("bogus=1").ok());
  EXPECT_FALSE(parse_software_plan("read=1.5").ok());
  EXPECT_FALSE(parse_software_plan("read=-0.1").ok());
  EXPECT_FALSE(parse_software_plan("read=abc").ok());
  EXPECT_FALSE(parse_software_plan("read").ok());
  EXPECT_FALSE(parse_software_plan("stall_ms=-3").ok());
  EXPECT_FALSE(parse_software_plan("match=").ok());
  EXPECT_EQ(parse_software_plan("read=2").error().code,
            ErrorCode::kInvalidArgument);
}

TEST(FiPlan, HardwareFaultGrammarRoundTrips) {
  for (const char* spec :
       {"pe=3,4@10", "pe=0,0@1+5", "rank=2@100", "weibull=6"}) {
    auto parsed = parse_hardware_fault(spec);
    ASSERT_TRUE(parsed.ok()) << spec;
    EXPECT_EQ(to_string(parsed.value()), spec);
  }
  auto transient = parse_hardware_fault("pe=1,2@30+4");
  ASSERT_TRUE(transient.ok());
  EXPECT_EQ(transient.value().kind, HardwareFaultKind::kCoordinate);
  EXPECT_EQ(transient.value().u, 1);
  EXPECT_EQ(transient.value().v, 2);
  EXPECT_EQ(transient.value().iteration, 30);
  EXPECT_EQ(transient.value().restore_after, 4);
}

TEST(FiPlan, HardwareFaultRejectsBadSpecs) {
  for (const char* spec :
       {"", "pe=3,4", "pe=3@10", "pe=-1,2@10", "pe=1,2@0", "pe=1,2@5+0",
        "rank=-1@10", "rank=1", "weibull=0", "weibull=x", "die=1@2"}) {
    auto parsed = parse_hardware_fault(spec);
    EXPECT_FALSE(parsed.ok()) << spec;
  }
}

// ----------------------------------------------------------- fi::Hooks

TEST(FiHooks, ArmingNoFaultPlanIsANoOp) {
  SoftwarePlan idle;
  Hooks::arm(idle);
  EXPECT_FALSE(Hooks::armed());
  EXPECT_FALSE(util::io_fault_hook_armed());
}

TEST(FiHooks, CertainWriteFaultsThrowAndCount) {
  TempDir dir;
  SoftwarePlan plan;
  plan.write_fail_rate = 1.0;
  ArmGuard guard(plan);
  EXPECT_THROW(util::write_text_file(dir.file("a.txt"), "x"),
               util::io_error);
  EXPECT_THROW(util::write_file_atomic(dir.file("b.txt"), "x"),
               util::io_error);
  EXPECT_GE(Hooks::counters().write_faults, 2);
}

TEST(FiHooks, ReadFaultPatternIsDeterministicPerSeed) {
  TempDir dir;
  const std::string path = dir.file("data.txt");
  util::write_text_file(path, "payload");

  SoftwarePlan plan;
  plan.read_fail_rate = 0.5;
  plan.seed = 9;
  const auto pattern_of = [&] {
    std::vector<bool> threw;
    for (int i = 0; i < 32; ++i) {
      try {
        (void)util::read_text_file(path);
        threw.push_back(false);
      } catch (const util::io_error&) {
        threw.push_back(true);
      }
    }
    return threw;
  };

  std::vector<bool> first;
  std::vector<bool> second;
  {
    ArmGuard guard(plan);
    first = pattern_of();
  }
  {
    ArmGuard guard(plan);  // re-arm resets the operation counters
    second = pattern_of();
  }
  EXPECT_EQ(first, second);
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), false), 0);
}

TEST(FiHooks, CorruptionFlipsExactlyOneByte) {
  TempDir dir;
  const std::string path = dir.file("data.txt");
  const std::string original = "schedule cache entry payload";
  util::write_text_file(path, original);

  SoftwarePlan plan;
  plan.corrupt_rate = 1.0;
  ArmGuard guard(plan);
  const std::string corrupted = util::read_text_file(path);
  ASSERT_EQ(corrupted.size(), original.size());
  int diffs = 0;
  for (std::size_t i = 0; i < original.size(); ++i)
    diffs += corrupted[i] != original[i];
  EXPECT_EQ(diffs, 1);
  EXPECT_GE(Hooks::counters().corruptions, 1);
}

TEST(FiHooks, PathMatchScopesIoFaults) {
  TempDir dir;
  const std::string hit = dir.file("cache-entry.rsc");
  const std::string spared = dir.file("artifact.csv");
  SoftwarePlan plan;
  plan.write_fail_rate = 1.0;
  plan.path_match = "cache-entry";
  ArmGuard guard(plan);
  EXPECT_THROW(util::write_text_file(hit, "x"), util::io_error);
  EXPECT_NO_THROW(util::write_text_file(spared, "x"));
}

TEST(FiHooks, StalledWorkersRunToCompletionAndCount) {
  SoftwarePlan plan;
  plan.stall_rate = 1.0;
  plan.stall_ms = 1;
  ArmGuard guard(plan);
  std::atomic<int> ran{0};
  par::parallel_for(8, 2, [&](std::int64_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 8);
  EXPECT_GE(Hooks::counters().stalls, 1);
}

TEST(FiHooks, AllocFaultQueryFollowsThePlan) {
  EXPECT_FALSE(Hooks::should_fail_alloc("test.site"));  // disarmed
  SoftwarePlan plan;
  plan.alloc_fail_rate = 1.0;
  ArmGuard guard(plan);
  EXPECT_TRUE(Hooks::should_fail_alloc("test.site"));
  EXPECT_GE(Hooks::counters().alloc_faults, 1);
}

TEST(FiHooks, ArmFromEnvParsesOrFailsLoudly) {
  ASSERT_EQ(::unsetenv("ROTA_FI"), 0);
  EXPECT_FALSE(Hooks::arm_from_env());
  EXPECT_FALSE(Hooks::armed());

  ASSERT_EQ(::setenv("ROTA_FI", "read=0.25,seed=3", 1), 0);
  EXPECT_TRUE(Hooks::arm_from_env());
  EXPECT_TRUE(Hooks::armed());
  EXPECT_DOUBLE_EQ(Hooks::plan().read_fail_rate, 0.25);
  Hooks::disarm();

  ASSERT_EQ(::setenv("ROTA_FI", "read=7", 1), 0);
  EXPECT_THROW(Hooks::arm_from_env(), util::precondition_error);
  ASSERT_EQ(::unsetenv("ROTA_FI"), 0);
  Hooks::disarm();
}

// ------------------------------------------------------- retry / backoff

TEST(FiRetry, BackoffDoublesJittersAndCaps) {
  util::RetryOptions options;
  options.base_delay_ms = 4;
  options.max_delay_ms = 16;
  std::int64_t ceiling = 4;
  for (int attempt = 1; attempt <= 6; ++attempt) {
    const std::int64_t d = util::backoff_delay_ms(options, attempt, 77);
    EXPECT_GE(d, ceiling / 2) << attempt;
    EXPECT_LE(d, ceiling) << attempt;
    // Deterministic per (options, salt, attempt).
    EXPECT_EQ(d, util::backoff_delay_ms(options, attempt, 77));
    if (ceiling < options.max_delay_ms) ceiling *= 2;
  }
}

TEST(FiRetry, RetryIoRecoversAfterTransientFailures) {
  util::RetryOptions options;
  options.max_attempts = 4;
  options.base_delay_ms = 0;  // no sleeping in tests
  int calls = 0;
  int observed = 0;
  const int value = util::retry_io(
      options, 1,
      [&] {
        if (++calls < 3) throw util::io_error("transient");
        return 42;
      },
      [&](int attempt, const util::io_error&) { observed = attempt; });
  EXPECT_EQ(value, 42);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(observed, 2);  // two failed attempts were observed
}

TEST(FiRetry, ExhaustedRetriesRethrowTheLastError) {
  util::RetryOptions options;
  options.max_attempts = 3;
  options.base_delay_ms = 0;
  int calls = 0;
  EXPECT_THROW(util::retry_io(options, 1,
                              [&]() -> int {
                                ++calls;
                                throw util::io_error("permanent");
                              }),
               util::io_error);
  EXPECT_EQ(calls, 3);
}

TEST(FiRetry, NonIoErrorsPropagateImmediately) {
  util::RetryOptions options;
  options.max_attempts = 5;
  options.base_delay_ms = 0;
  int calls = 0;
  EXPECT_THROW(util::retry_io(options, 1,
                              [&]() -> int {
                                ++calls;
                                throw std::runtime_error("not transient");
                              }),
               std::runtime_error);
  EXPECT_EQ(calls, 1);
}

// ----------------------------------------------------------- checkpoints

TEST(FiCheckpoint, EncodeDecodeRoundTripsBinaryFields) {
  Checkpoint cp;
  cp.kind = "sweep";
  cp.fingerprint = "sweep|Res|RWL|14x12|1000";
  cp.progress = 7;
  cp.fields["csv"] = "a,b\n1,2\n";
  cp.fields["blob"] = std::string("\x00\x01\xff\nraw", 8);

  auto decoded = decode_checkpoint(encode_checkpoint(cp));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().kind, cp.kind);
  EXPECT_EQ(decoded.value().fingerprint, cp.fingerprint);
  EXPECT_EQ(decoded.value().progress, 7);
  EXPECT_EQ(decoded.value().fields, cp.fields);
}

TEST(FiCheckpoint, DecodeRejectsEveryCorruption) {
  Checkpoint cp;
  cp.kind = "mc";
  cp.fingerprint = "mc|Sqz";
  cp.progress = 3;
  cp.fields["sum"] = "0x1p+3";
  const std::string good = encode_checkpoint(cp);
  ASSERT_TRUE(decode_checkpoint(good).ok());

  EXPECT_FALSE(decode_checkpoint("").ok());
  EXPECT_FALSE(decode_checkpoint("not-a-checkpoint v1\n").ok());
  EXPECT_FALSE(decode_checkpoint("rota-checkpoint v2\nkind mc\n").ok());
  // Truncation anywhere must fail, never half-apply.
  for (std::size_t cut = 1; cut < good.size(); cut += 7)
    EXPECT_FALSE(decode_checkpoint(good.substr(0, cut)).ok()) << cut;
  EXPECT_FALSE(decode_checkpoint(good + "trailing").ok());
  EXPECT_EQ(decode_checkpoint("junk").error().code,
            ErrorCode::kInvalidArgument);
}

TEST(FiCheckpoint, SaveLoadRoundTripsAndMissingIsNotFound) {
  TempDir dir;
  const std::string path = dir.file("run.ckpt");

  auto missing = load_checkpoint(path);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.error().code, ErrorCode::kNotFound);

  Checkpoint cp;
  cp.kind = "sweep";
  cp.fingerprint = "f";
  cp.progress = 2;
  cp.fields["csv"] = "rows";
  save_checkpoint(path, cp);
  auto loaded = load_checkpoint(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().fields.at("csv"), "rows");

  util::write_text_file(path, "garbage");
  EXPECT_EQ(load_checkpoint(path).error().code, ErrorCode::kInvalidArgument);
}

TEST(FiCheckpoint, SavesSurviveInjectedIoFaultsViaRetry) {
  TempDir dir;
  const std::string path = dir.file("run.ckpt");
  SoftwarePlan plan;
  plan.write_fail_rate = 0.3;
  plan.read_fail_rate = 0.3;
  plan.seed = 5;
  ArmGuard guard(plan);

  util::RetryOptions retry;
  retry.base_delay_ms = 0;
  Checkpoint cp;
  cp.kind = "mc";
  cp.fingerprint = "f";
  for (int round = 0; round < 20; ++round) {
    cp.progress = round;
    save_checkpoint(path, cp, retry);
    auto loaded = load_checkpoint(path, retry);
    ASSERT_TRUE(loaded.ok()) << round;
    EXPECT_EQ(loaded.value().progress, round);
  }
  // The deterministic 30% fault pattern must actually have fired.
  EXPECT_GE(Hooks::counters().write_faults + Hooks::counters().read_faults,
            1);
}

// ------------------------------------------------- hardware injection

InjectOptions small_inject(std::int64_t iterations, std::int64_t spares) {
  InjectOptions options;
  options.iterations = iterations;
  options.spares = spares;
  options.seed = 11;
  return options;
}

struct InjectFixture {
  arch::AcceleratorConfig accel = arch::rota_like();
  sched::NetworkSchedule ns;

  InjectFixture() {
    sched::Mapper mapper(accel, sched::ObjectiveSpec{}, {},
                         sched::MapperOptions{true, 1});
    ns = mapper.schedule_network(nn::workload_by_abbr("Sqz"));
  }

  [[nodiscard]] FaultRunReport run(const InjectOptions& options,
                                   std::uint64_t policy_seed = 1) const {
    auto policy =
        wear::make_policy(wear::PolicyKind::kRwlRo, accel.array_width,
                          accel.array_height, policy_seed);
    return run_fault_injection(accel, ns, *policy, options);
  }
};

TEST(FiInject, CoordinateFaultRedirectsWorkToASpare) {
  InjectFixture fx;
  InjectOptions options = small_inject(64, 2);
  options.faults.push_back(parse_hardware_fault("pe=3,4@10").value());
  const FaultRunReport report = fx.run(options);

  EXPECT_EQ(report.iterations_run, 64);
  EXPECT_EQ(report.faults_injected, 1);
  EXPECT_EQ(report.spare_stats.remaps, 1);
  EXPECT_EQ(report.spare_stats.spares_in_service, 1);
  EXPECT_GT(report.redirected_units, 0);
  EXPECT_EQ(report.lost_units, 0);
  EXPECT_GT(report.redirect_fraction, 0.0);
  EXPECT_GT(report.baseline_mttf, 0.0);
  EXPECT_GT(report.degraded_mttf, 0.0);
  // One spare spent out of two: the degraded array cannot beat the
  // full-pool one.
  EXPECT_LE(report.mttf_ratio, 1.0);
  ASSERT_EQ(report.spare_usage.size(), 2u);
  EXPECT_GT(report.spare_usage[0], 0);
}

TEST(FiInject, ExhaustedPoolLosesWork) {
  InjectFixture fx;
  InjectOptions options = small_inject(64, 0);
  options.faults.push_back(parse_hardware_fault("pe=3,4@10").value());
  const FaultRunReport report = fx.run(options);
  EXPECT_EQ(report.spare_stats.unmapped, 1);
  EXPECT_GT(report.lost_units, 0);
  EXPECT_EQ(report.redirected_units, 0);
}

TEST(FiInject, TransientFaultRestoresThePrimary) {
  InjectFixture fx;
  InjectOptions options = small_inject(64, 1);
  options.faults.push_back(parse_hardware_fault("pe=2,2@10+5").value());
  const FaultRunReport report = fx.run(options);
  EXPECT_EQ(report.transient_restores, 1);
  EXPECT_EQ(report.spare_stats.restores, 1);
  // After the restore the spare returns to the pool.
  EXPECT_EQ(report.spare_stats.spares_in_service, 0);
  EXPECT_EQ(report.spare_stats.spares_free, 1);
}

TEST(FiInject, RankAndWeibullFaultsAreDeterministic) {
  InjectFixture fx;
  InjectOptions options = small_inject(96, 4);
  options.faults.push_back(parse_hardware_fault("rank=0@20").value());
  options.faults.push_back(parse_hardware_fault("weibull=3").value());

  const FaultRunReport a = fx.run(options);
  const FaultRunReport b = fx.run(options);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.redirected_units, b.redirected_units);
  EXPECT_EQ(a.faults_injected, 4);  // 1 rank + 3 weibull

  InjectOptions other = options;
  other.seed = 12345;
  const FaultRunReport c = fx.run(other);
  // A different seed moves the weibull strikes (rank stays declarative).
  EXPECT_EQ(c.faults_injected, 4);
}

// ------------------------------------- acceptance: end-to-end scenarios

std::vector<std::string> engine_payloads(svc::Engine& engine) {
  std::vector<std::string> payloads;
  for (const char* workload : {"Sqz", "Mb", "Res"}) {
    svc::Request req;
    req.op = svc::RequestOp::kSchedule;
    req.workload = workload;
    const svc::Response resp = engine.execute(req);
    EXPECT_TRUE(resp.ok) << resp.error.message;
    payloads.push_back(resp.payload_json);
  }
  // A wear request exercises the simulator path on a warm cache.
  svc::Request wear_req;
  wear_req.op = svc::RequestOp::kWear;
  wear_req.workload = "Sqz";
  wear_req.iterations = 50;
  const svc::Response resp = engine.execute(wear_req);
  EXPECT_TRUE(resp.ok) << resp.error.message;
  payloads.push_back(resp.payload_json);
  return payloads;
}

TEST(FiAcceptance, ServeBatchBitIdenticalUnderDiskFaultsWithRetries) {
  TempDir clean_dir;
  TempDir faulty_dir;

  const auto run_cold_then_warm = [](const std::string& dir) {
    std::vector<std::string> all;
    for (int round = 0; round < 2; ++round) {
      svc::EngineOptions eo;
      eo.cache.disk_dir = dir;
      eo.cache.retry.base_delay_ms = 0;
      svc::Engine engine(eo);
      const auto payloads = engine_payloads(engine);
      all.insert(all.end(), payloads.begin(), payloads.end());
    }
    return all;
  };

  const std::vector<std::string> clean = run_cold_then_warm(
      clean_dir.path.string());

  SoftwarePlan plan;
  plan.read_fail_rate = 0.1;
  plan.write_fail_rate = 0.1;
  plan.corrupt_rate = 0.3;
  plan.seed = 21;
  plan.path_match = faulty_dir.path.filename().string();
  std::vector<std::string> faulty;
  HookCounters injected;
  {
    ArmGuard guard(plan);
    faulty = run_cold_then_warm(faulty_dir.path.string());
    injected = Hooks::counters();
  }

  // Bit-identical replies, and the faults actually fired (absorbed by
  // retry or by recomputing the corrupted entry).
  EXPECT_EQ(clean, faulty);
  EXPECT_GE(injected.read_faults + injected.write_faults +
                injected.corruptions,
            1);
}

TEST(FiAcceptance, EngineShedsBeyondTheQueueBoundWithoutDropping) {
  svc::EngineOptions eo;
  eo.max_queue = 1;
  svc::Engine engine(eo);

  std::vector<std::future<svc::Response>> futures;
  for (int i = 0; i < 8; ++i) {
    svc::Request req;
    req.id = std::to_string(i);
    req.op = svc::RequestOp::kWear;
    req.workload = "Sqz";
    req.iterations = 100;
    futures.push_back(engine.submit(std::move(req)));
  }
  int answered = 0;
  int shed = 0;
  for (auto& f : futures) {
    const svc::Response resp = f.get();  // shed or answered — never lost
    ++answered;
    if (!resp.ok) {
      EXPECT_EQ(resp.error.code, ErrorCode::kOverloaded);
      ++shed;
    }
  }
  EXPECT_EQ(answered, 8);
  EXPECT_GE(shed, 1);
  EXPECT_EQ(engine.shed_count(), shed);
}

TEST(FiAcceptance, AllocFaultsAreContainedPerRequest) {
  SoftwarePlan plan;
  plan.alloc_fail_rate = 1.0;
  ArmGuard guard(plan);
  svc::Engine engine;

  svc::Request ping;
  ping.op = svc::RequestOp::kPing;
  EXPECT_TRUE(engine.execute(ping).ok);  // control ops stay reachable

  svc::Request wear_req;
  wear_req.op = svc::RequestOp::kWear;
  wear_req.workload = "Sqz";
  wear_req.iterations = 10;
  const svc::Response resp = engine.execute(wear_req);
  EXPECT_FALSE(resp.ok);
  EXPECT_EQ(resp.error.code, ErrorCode::kResourceExhausted);
}

TEST(FiAcceptance, ServeDrainsOnInterruptFlagAndReturns4) {
  svc::Engine engine;
  std::atomic<bool> interrupt{true};
  std::istringstream in(
      R"({"schema_version":2,"id":"x","op":"ping"})"
      "\n");
  std::ostringstream out;
  EXPECT_EQ(engine.serve(in, out, &interrupt), 4);
}

/// Run `rota <args>` in-process, returning {exit code, stdout}.
std::pair<int, std::string> run_cli(const std::vector<std::string>& args) {
  const cli::Options options = cli::parse(args);
  std::ostringstream out;
  const int rc = cli::run(options, out);
  return {rc, out.str()};
}

TEST(FiAcceptance, SweepInterruptAndResumeReproduceTheExactCsv) {
  TempDir dir;
  const std::string ref_csv = dir.file("ref.csv");
  const std::string resumed_csv = dir.file("resumed.csv");
  const std::string ckpt = dir.file("sweep.ckpt");

  auto [ref_rc, ref_out] =
      run_cli({"sweep", "--iters", "30", "--csv", ref_csv});
  ASSERT_EQ(ref_rc, 0);

  // Interrupt after two workload cells, exactly as a first SIGINT would.
  cli::clear_interrupt();
  cli::simulate_interrupt_after(2);
  auto [killed_rc, killed_out] = run_cli({"sweep", "--iters", "30", "--csv",
                                          resumed_csv, "--checkpoint", ckpt});
  EXPECT_EQ(killed_rc, cli::kExitInterrupted);
  EXPECT_TRUE(std::filesystem::exists(ckpt));
  EXPECT_FALSE(std::filesystem::exists(resumed_csv));

  cli::clear_interrupt();
  auto [resumed_rc, resumed_out] = run_cli(
      {"sweep", "--iters", "30", "--csv", resumed_csv, "--checkpoint", ckpt});
  ASSERT_EQ(resumed_rc, 0);
  EXPECT_EQ(util::read_text_file(ref_csv), util::read_text_file(resumed_csv));
  // A finished run leaves no stale checkpoint behind.
  EXPECT_FALSE(std::filesystem::exists(ckpt));
}

TEST(FiAcceptance, McInterruptAndResumeAreBitIdentical) {
  TempDir dir;
  const std::string ckpt = dir.file("mc.ckpt");
  const std::vector<std::string> base_args = {"mc",       "Sqz",
                                              "--iters",  "20",
                                              "--trials", "100000"};

  auto [ref_rc, ref_out] = run_cli(base_args);
  ASSERT_EQ(ref_rc, 0);

  std::vector<std::string> ckpt_args = base_args;
  ckpt_args.insert(ckpt_args.end(), {"--checkpoint", ckpt});
  cli::clear_interrupt();
  cli::simulate_interrupt_after(1);  // one 8-chunk step, then interrupt
  auto [killed_rc, killed_out] = run_cli(ckpt_args);
  EXPECT_EQ(killed_rc, cli::kExitInterrupted);
  EXPECT_TRUE(std::filesystem::exists(ckpt));

  cli::clear_interrupt();
  auto [resumed_rc, resumed_out] = run_cli(ckpt_args);
  ASSERT_EQ(resumed_rc, 0);
  EXPECT_EQ(ref_out, resumed_out);  // includes the hexfloat "exact:" line
  EXPECT_FALSE(std::filesystem::exists(ckpt));
}

TEST(FiAcceptance, CheckpointForDifferentWorkIsRefused) {
  TempDir dir;
  const std::string ckpt = dir.file("mc.ckpt");
  Checkpoint cp;
  cp.kind = "mc";
  cp.fingerprint = "mc|other-work";
  cp.progress = 1;
  cp.fields["sum"] = "0x0p+0";
  cp.fields["sum_sq"] = "0x0p+0";
  save_checkpoint(ckpt, cp);

  cli::clear_interrupt();
  EXPECT_THROW(run_cli({"mc", "Sqz", "--iters", "20", "--trials", "100000",
                        "--checkpoint", ckpt}),
               util::precondition_error);
}

// ---------------------------------------- static dead-PE map from faults ----

TEST(FiInject, ArrayStateFromFaultsFoldsPermanentCoordinates) {
  std::vector<HardwareFault> faults;
  faults.push_back(parse_hardware_fault("pe=3,3@1").value());
  faults.push_back(parse_hardware_fault("pe=10,2@7").value());
  faults.push_back(parse_hardware_fault("pe=3,3@9").value());  // same PE again
  const auto state = array_state_from_faults(14, 12, faults);
  ASSERT_TRUE(state.ok()) << state.error().message;
  EXPECT_EQ(state.value().dead_count(), 2);
  EXPECT_TRUE(state.value().dead(3, 3));
  EXPECT_TRUE(state.value().dead(10, 2));
  EXPECT_EQ(state.value().live_count(14, 12), 166);

  // A big enough spare pool absorbs every fault: the mapper sees an
  // intact array (spared PEs still carry their work).
  const auto spared = array_state_from_faults(14, 12, faults, 2);
  ASSERT_TRUE(spared.ok());
  EXPECT_EQ(spared.value().digest(), "live");
  // One spare covers the first fault; the second distinct PE stays dead.
  const auto one = array_state_from_faults(14, 12, faults, 1);
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one.value().dead_count(), 1);
}

TEST(FiInject, ArrayStateFromFaultsRejectsDynamicOrOutOfRangeSpecs) {
  const std::vector<HardwareFault> ok = {
      parse_hardware_fault("pe=1,1@1").value()};
  EXPECT_FALSE(array_state_from_faults(0, 12, ok).ok());
  EXPECT_FALSE(array_state_from_faults(14, 0, ok).ok());
  EXPECT_FALSE(array_state_from_faults(14, 12, ok, -1).ok());
  // Wear-rank, weibull and transient faults depend on runtime wear state —
  // they have no static dead-PE reading.
  for (const char* spec : {"rank=0@5", "weibull=3", "pe=2,2@4+6"}) {
    const std::vector<HardwareFault> faults = {
        parse_hardware_fault(spec).value()};
    const auto state = array_state_from_faults(14, 12, faults);
    ASSERT_FALSE(state.ok()) << spec;
    EXPECT_EQ(state.error().code, ErrorCode::kInvalidArgument);
  }
  const std::vector<HardwareFault> outside = {
      parse_hardware_fault("pe=14,0@1").value()};
  EXPECT_FALSE(array_state_from_faults(14, 12, outside).ok());
}

}  // namespace
}  // namespace rota::fi
